// Vectoradd reproduces the paper's vadd observation (Section 5.4): TRIPS
// has four DT memory ports against the Alpha's two, so a streaming,
// bandwidth-bound kernel favors the distributed design — while the serial
// sha kernel favors the centralized core.
//
//	go run ./examples/vectoradd
package main

import (
	"fmt"
	"log"

	"trips/internal/eval"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

func main() {
	for _, name := range []string{"vadd", "sha"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		hand, err := eval.RunTRIPS(w.Build(true), eval.TRIPSOptions{Mode: tcc.Hand})
		if err != nil {
			log.Fatal(err)
		}
		comp, err := eval.RunTRIPS(w.Build(false), eval.TRIPSOptions{Mode: tcc.Compiled})
		if err != nil {
			log.Fatal(err)
		}
		al, err := eval.RunAlpha(w.Build(false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  Alpha 21264-class:      %7d cycles  (IPC %.2f, 2 L1 ports)\n", al.Cycles, al.IPC)
		fmt.Printf("  TRIPS compiled (TCC):   %7d cycles  (IPC %.2f)   speedup %.2f\n",
			comp.Cycles, comp.IPC, float64(al.Cycles)/float64(comp.Cycles))
		fmt.Printf("  TRIPS hand-optimized:   %7d cycles  (IPC %.2f, 4 DT ports)   speedup %.2f\n",
			hand.Cycles, hand.IPC, float64(al.Cycles)/float64(hand.Cycles))
		fmt.Println()
	}
	fmt.Println("vadd streams the L1 and wins on TRIPS's doubled memory bandwidth;")
	fmt.Println("sha is an almost entirely serial chain the Alpha already mines, so")
	fmt.Println("TRIPS pays the block overheads for nothing (paper Section 5.4).")
}
