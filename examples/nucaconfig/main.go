// Nucaconfig demonstrates the configurable secondary memory system (paper
// Section 3.6): the same sixteen memory tiles serve as one shared 1MB L2,
// as two independent 512KB L2s, or as on-chip scratchpad memory, and the
// static-NUCA property — banks nearer the requesting port respond faster.
//
//	go run ./examples/nucaconfig
package main

import (
	"fmt"

	"trips/internal/mem"
	"trips/internal/nuca"
	"trips/internal/proc"
)

// access runs one transaction and returns its latency in OCN cycles.
func access(s *nuca.System, p proc.MemPort, req *proc.MemRequest) int {
	done := false
	prev := req.Done
	req.Done = func(d []byte) {
		done = true
		if prev != nil {
			prev(d)
		}
	}
	for !p.Submit(req) {
		s.Tick()
	}
	n := 0
	for !done {
		s.Tick()
		n++
	}
	return n
}

func main() {
	fmt.Println("== one shared 1MB L2 ==")
	{
		backing := mem.New()
		backing.Write(0x1000, 8, 42)
		s := nuca.New(nuca.Config{Backing: backing})
		p := s.Port("dt0")
		cold := access(s, p, &proc.MemRequest{Addr: 0x1000, N: 8})
		warm := access(s, p, &proc.MemRequest{Addr: 0x1000, N: 8})
		fmt.Printf("  cold read (SDRAM fill): %3d cycles\n", cold)
		fmt.Printf("  warm read (L2 hit):     %3d cycles\n", warm)
	}

	fmt.Println("== static NUCA: near vs far banks (warm hits) ==")
	{
		s := nuca.New(nuca.Config{Backing: mem.New()})
		p := s.Port("dt0")
		// Probe sixteen consecutive lines — one per MT — twice; the second
		// pass shows per-bank hit latency.
		for line := 0; line < nuca.NumMTs; line++ {
			access(s, p, &proc.MemRequest{Addr: uint64(line) * nuca.LineBytes, N: 8})
		}
		min, max := 1<<30, 0
		for line := 0; line < nuca.NumMTs; line++ {
			c := access(s, p, &proc.MemRequest{Addr: uint64(line) * nuca.LineBytes, N: 8})
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		fmt.Printf("  nearest bank: %d cycles, farthest bank: %d cycles\n", min, max)
	}

	fmt.Println("== two independent 512KB L2s (one per processor) ==")
	{
		s := nuca.New(nuca.Config{Backing: mem.New(), Partition: true})
		p0 := s.Port("dt0")
		p1 := s.Port("p1:dt0")
		access(s, p0, &proc.MemRequest{Addr: 0x2000, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}, IsWrite: true})
		fmt.Printf("  processor 0 home bank for 0x2000: MT %d\n", s.MTFor(0x2000))
		c := access(s, p1, &proc.MemRequest{Addr: 0x2000, N: 8})
		fmt.Printf("  processor 1 reads 0x2000 through ITS half (miss to SDRAM): %d cycles\n", c)
	}

	fmt.Println("== 1MB on-chip scratchpad (no L2) ==")
	{
		s := nuca.New(nuca.Config{Backing: mem.New(), Scratchpad: true})
		p := s.Port("dt0")
		access(s, p, &proc.MemRequest{Addr: 0x3000, Data: []byte{9, 9, 9, 9, 9, 9, 9, 9}, IsWrite: true})
		c := access(s, p, &proc.MemRequest{Addr: 0x3000, N: 8})
		fmt.Printf("  scratchpad read: %d cycles (never touches SDRAM)\n", c)
		if got := s.Port("dt0"); got != p {
			fmt.Println("  (port identity stable)")
		}
	}
}
