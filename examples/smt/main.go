// SMT runs the core in its multithreaded mode (paper Section 3: "up to
// 4-way multithreaded ... two blocks per thread if four threads are
// running") — four independent accumulation loops share the tiles, block
// frames and networks of one core.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
)

// loopBlock builds a self-looping block: r13 += r8; r8 += 1; loop while
// r8 < r18.
func loopBlock(addr uint64) *isa.Block {
	b := &isa.Block{Addr: addr, Name: "smt-loop"}
	b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
	b.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(1)}
	b.Reads[2] = isa.ReadInst{Valid: true, GR: 18, RT0: isa.ToRight(2)}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
	b.Writes[1] = isa.WriteInst{Valid: true, GR: 13}
	b.Insts = []isa.Inst{
		{Op: isa.ADDI, Imm: 1, T0: isa.ToLeft(4)},
		{Op: isa.ADD, T0: isa.ToWrite(1)},
		{Op: isa.TLT, T0: isa.ToPred(5), T1: isa.ToPred(6)},
		{Op: isa.NOP},
		{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToLeft(7)},
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 0},
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: int32(-(int64(addr) / isa.ChunkBytes))},
		{Op: isa.MOV, T0: isa.ToRight(1), T1: isa.ToLeft(2)},
	}
	return b
}

func run(threads int) {
	var blocks []*isa.Block
	var entries []uint64
	for t := 0; t < threads; t++ {
		addr := uint64(0x10000 + t*0x1000)
		blocks = append(blocks, loopBlock(addr))
		entries = append(entries, addr)
	}
	prog, err := proc.NewProgram(entries[0], blocks)
	if err != nil {
		log.Fatal(err)
	}
	m := mem.New()
	if err := prog.Image(m); err != nil {
		log.Fatal(err)
	}
	core, err := proc.NewCore(proc.Config{
		Program: prog,
		Mem:     proc.NewFixedLatencyMem(m, 20),
		Entries: entries,
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < threads; t++ {
		core.SetRegister(t, 18, uint64(100*(t+1))) // per-thread loop bound
	}
	res, err := core.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d thread(s): %6d cycles, %4d blocks, aggregate IPC %.2f\n",
		threads, res.Cycles, res.CommittedBlocks, res.IPC)
	for t := 0; t < threads; t++ {
		n := uint64(100 * (t + 1))
		want := n * (n + 1) / 2
		got := core.Register(t, 13)
		status := "ok"
		if got != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("  thread %d: sum(1..%d) = %d  %s\n", t, n, got, status)
	}
	fmt.Println()
}

func main() {
	fmt.Println("SMT mode: per-thread register files, partitioned block frames")
	fmt.Println("(1 thread: 8 frames, 7 speculative; 4 threads: 2 frames each)")
	fmt.Println()
	run(1)
	run(2)
	run(4)
}
