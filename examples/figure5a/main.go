// Figure5a reproduces the paper's worked execution example (Figure 5a): a
// TRIPS block whose predicate selects between a load/store path and a
// nullified store, built directly at the ISA level and executed on the
// distributed core.
//
//	go run ./examples/figure5a
package main

import (
	"fmt"
	"log"

	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
)

func buildFigure5a() (*proc.Program, error) {
	// The paper's code sequence:
	//
	//	R[0]  read R4       -> N[1,L] N[2,L]
	//	N[0]  movi #0       -> N[1,R]
	//	N[1]  teq           -> N[2,P] N[3,P]
	//	N[2]  muli_f #4     -> N[32,L]
	//	N[3]  null_t        -> N[34,L] N[34,R]
	//	N[32] lw #8         -> N[33,L]        (LSID=0)
	//	N[33] mov           -> N[34,L] N[34,R]
	//	N[34] sw #0                           (LSID=1)
	//	N[35] callo $func1
	main := &isa.Block{Addr: 0x10000, Name: "figure5a"}
	main.Reads[0] = isa.ReadInst{Valid: true, GR: 4, RT0: isa.ToLeft(1), RT1: isa.ToLeft(2)}
	main.Insts = make([]isa.Inst, 36)
	for i := range main.Insts {
		main.Insts[i] = isa.Inst{Op: isa.NOP}
	}
	main.Insts[0] = isa.Inst{Op: isa.MOVI, Imm: 0, T0: isa.ToRight(1)}
	main.Insts[1] = isa.Inst{Op: isa.TEQ, T0: isa.ToPred(2), T1: isa.ToPred(3)}
	main.Insts[2] = isa.Inst{Op: isa.MULI, Pred: isa.PredOnFalse, Imm: 4, T0: isa.ToLeft(32)}
	main.Insts[3] = isa.Inst{Op: isa.NULL, Pred: isa.PredOnTrue, T0: isa.ToLeft(34), T1: isa.ToRight(34)}
	main.Insts[32] = isa.Inst{Op: isa.LW, Imm: 8, LSID: 0, T0: isa.ToLeft(33)}
	main.Insts[33] = isa.Inst{Op: isa.MOV, T0: isa.ToLeft(34), T1: isa.ToRight(34)}
	main.Insts[34] = isa.Inst{Op: isa.SW, Imm: 0, LSID: 1}
	callee := uint64(0x20000)
	main.Insts[35] = isa.Inst{Op: isa.CALLO, Exit: 0, Offset: int32((callee - main.Addr) / isa.ChunkBytes)}

	halt := &isa.Block{Addr: callee, Name: "func1"}
	halt.Insts = []isa.Inst{{Op: isa.BRO, Exit: 0, Offset: int32(-(int64(callee) / isa.ChunkBytes))}}
	return proc.NewProgram(main.Addr, []*isa.Block{main, halt})
}

func run(r4 uint64) {
	prog, err := buildFigure5a()
	if err != nil {
		log.Fatal(err)
	}
	m := mem.New()
	m.Write(4*4+8, 4, 0x1234) // the word the taken path loads
	if err := prog.Image(m); err != nil {
		log.Fatal(err)
	}
	core, err := proc.NewCore(proc.Config{
		Program:        prog,
		Mem:            proc.NewFixedLatencyMem(m, 20),
		RecordTimeline: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	core.SetRegister(0, 4, r4)
	res, err := core.Run()
	if err != nil {
		log.Fatal(err)
	}
	core.FlushCaches()

	fmt.Printf("R4 = %d:\n", r4)
	if r4 != 0 {
		fmt.Printf("  teq produced 0 -> muli fired, lw read mem[%d] = %#x,\n", r4*4+8, uint64(0x1234))
		fmt.Printf("  mov fanned it to the store: mem[0x1234] = %#x\n", m.Read(0x1234, 4, false))
	} else {
		fmt.Printf("  teq produced 1 -> null fired, store issued NULLIFIED\n")
		fmt.Printf("  (memory untouched, but the DT still counted the store so the block completed)\n")
	}
	for _, bt := range core.Timeline {
		fmt.Printf("  block %d @%#x: dispatch %d, complete %d, commit %d, acked %d\n",
			bt.Seq, bt.Addr, bt.Dispatch, bt.Complete, bt.CommitCmd, bt.Acked)
	}
	fmt.Printf("  total: %d cycles, %d blocks committed\n\n", res.Cycles, res.CommittedBlocks)
}

func main() {
	fmt.Println("Paper Figure 5a: predicated load/store vs nullified store")
	fmt.Println()
	run(4) // predicate false path: the real store executes
	run(0) // predicate true path: the store is nullified
}
