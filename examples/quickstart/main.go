// Quickstart: write a small program in TIR, compile it with the TCC
// compiler into TRIPS blocks, and run it on the cycle-level model of the
// distributed TRIPS core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trips/internal/eval"
	"trips/internal/tcc"
	"trips/internal/tir"
	"trips/internal/workloads"
)

func main() {
	// A TIR program: sum of squares 1..n.
	f := tir.NewFunc("sumsq")
	n := f.NewReg()
	i := f.NewReg()
	sum := f.NewReg()

	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: sum, Imm: 0})
	entry.Jump(loop)
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	sq := loop.Op(f, tir.Mul, i, i)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: sum, A: sum, B: sq})
	c := loop.Op(f, tir.SetLT, i, n)
	loop.Branch(c, loop, done)
	done.Ret()
	f.Keep(sum)

	spec := &workloads.Spec{F: f, Init: map[tir.Reg]uint64{n: 100}, Outputs: []tir.Reg{sum}}

	// Run it three ways: compiled TRIPS code, hand-optimized TRIPS code
	// (if-converted hyperblocks + greedy placement), and the golden
	// interpreter.
	gold, _, _, err := eval.RunGolden(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden: sum of squares 1..100 = %d\n\n", gold[sum])

	for _, mode := range []struct {
		name string
		m    tcc.Mode
	}{{"compiled (TCC)", tcc.Compiled}, {"hand-optimized", tcc.Hand}} {
		r, err := eval.RunTRIPS(spec, eval.TRIPSOptions{Mode: mode.m, TrackCritPath: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("TRIPS %-15s sum=%d  cycles=%d  blocks=%d  IPC=%.2f  avg block=%.1f insts\n",
			mode.name+":", r.Regs[sum], r.Cycles, r.Blocks, r.IPC, r.BlockSize)
		fmt.Printf("  critical path: %s\n\n", critSummary(r))
	}
}

func critSummary(r *eval.TRIPSResult) string {
	rep := r.Crit
	return fmt.Sprintf("ifetch %.0f%%, opn hops %.0f%%, opn contention %.0f%%, fanout %.0f%%, complete %.0f%%, commit %.0f%%, other %.0f%%",
		rep.Percent(0), rep.Percent(1), rep.Percent(2), rep.Percent(3), rep.Percent(4), rep.Percent(5), rep.Percent(6))
}
