#!/usr/bin/env bash
# bench.sh — simulator performance harness.
#
# Runs the checked-in benchmark suite and refreshes the machine-readable
# baselines: BENCH_table3.json (per-row Table 3 results + host throughput)
# and BENCH_chip.json (chip-stepping host-time A/B: bounded-lag vs the
# sequential stepper on the chip benchmarks, plus derived speedups).
#
#   scripts/bench.sh            quick smoke: Table 3 once + Figure 5b + chip
#                               benches, JSON refresh
#   scripts/bench.sh full       adds multi-iteration Figure 5b and the ablations
#   scripts/bench.sh compare    fresh runs into temp files, diffed against the
#                               checked-in baselines: exits nonzero if any
#                               simulated cycle count drifted (host-time
#                               deltas and speedups are informational)
#   scripts/bench.sh sweep 1 2 4
#                               GOMAXPROCS scaling sweep: re-runs the chip
#                               stepping benches pinned to each listed core
#                               count and records the speedup-vs-cores series
#                               into BENCH_chip.json (sweep array; the main
#                               rows are left untouched)
#
# The simulated results in both files are deterministic; only the host-time
# fields (wall_ns, ns_per_op, speedups, ...) vary by machine.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-smoke}"

if [ "$mode" = "sweep" ]; then
  shift
  [ $# -gt 0 ] || { echo "usage: scripts/bench.sh sweep <procs>..." >&2; exit 2; }
  # A sweep point pinned to more GOMAXPROCS than the host has physical
  # cores measures scheduler thrash, not scaling; refuse rather than record
  # junk speedups into BENCH_chip.json.
  cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
  for n in "$@"; do
    case "$n" in
      ''|*[!0-9]*) echo "bench.sh: sweep proc count '$n' is not a positive integer" >&2; exit 2 ;;
    esac
    [ "$n" -ge 1 ] || { echo "bench.sh: sweep proc count must be >= 1, got $n" >&2; exit 2; }
    if [ "$n" -gt "$cores" ]; then
      echo "bench.sh: sweep point $n exceeds the $cores cores this host has;" >&2
      echo "  an oversubscribed pin would record junk into BENCH_chip.json — refusing" >&2
      exit 2
    fi
  done
  # The merge stamps host_cpus into BENCH_chip.json so a reader can judge
  # whether the seq-vs-lag host-time speedups were measured on a host that
  # can actually run the two cores in parallel. A 1-CPU host can't — warn,
  # but still record (the simulated cycles stay valid either way).
  if [ "$cores" -le 1 ]; then
    echo "bench.sh: WARNING: this host has $cores CPU; seq-vs-lag host-time" >&2
    echo "  speedups measured here are meaningless (recorded as host_cpus=$cores)" >&2
  fi
  for n in "$@"; do
    echo "== chip stepping benches @ GOMAXPROCS=$n -> BENCH_chip.json sweep (host: $cores CPUs) =="
    GOMAXPROCS="$n" BENCH_CHIP_SWEEP=1 BENCH_CHIP_JSON="$PWD/BENCH_chip.json" \
      go test -run '^$' -bench 'ChipDMAStream|NUCAvsPerfectL2' -benchtime=3x
  done
  echo "sweep recorded for GOMAXPROCS in: $* (host_cpus=$cores stamped into BENCH_chip.json)"
  exit 0
fi

echo "== go vet =="
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck =="
  staticcheck ./...
fi

echo "== build =="
go build ./...

echo "== race: proc + micronet + chip + nuca =="
go test -race ./internal/proc/ ./internal/micronet/ ./internal/chip/ ./internal/nuca/

if [ "$mode" = "compare" ]; then
  # Install the cleanup handler before mktemp so an interrupt between the
  # two can't leak the temp files; INT/TERM also go through it.
  fresh=""
  freshchip=""
  trap '[ -z "$fresh" ] || rm -f "$fresh"; [ -z "$freshchip" ] || rm -f "$freshchip"' EXIT INT TERM
  fresh="$(mktemp /tmp/bench_table3.XXXXXX.json)"
  freshchip="$(mktemp /tmp/bench_chip.XXXXXX.json)"
  echo "== Table 3 (once) + Figure 5b, fresh baseline -> $fresh =="
  BENCH_TABLE3_JSON="$fresh" \
    go test -run '^$' -bench 'Table3$|Figure5bCommitPipeline' -benchtime=1x -benchmem
  echo "== chip stepping benches, fresh baseline -> $freshchip =="
  BENCH_CHIP_JSON="$freshchip" \
    go test -run '^$' -bench 'ChipDMAStream|NUCAvsPerfectL2' -benchtime=1x
  echo "== compare against checked-in BENCH_table3.json =="
  go run ./cmd/bench-compare BENCH_table3.json "$fresh"
  echo "== compare against checked-in BENCH_chip.json =="
  go run ./cmd/bench-compare -chip BENCH_chip.json "$freshchip"
  echo "compare OK: simulated cycles match the baselines"
  exit 0
fi

echo "== Table 3 (once) + Figure 5b, emitting BENCH_table3.json =="
BENCH_TABLE3_JSON="$PWD/BENCH_table3.json" \
  go test -run '^$' -bench 'Table3$|Figure5bCommitPipeline' -benchtime=1x -benchmem

echo "== chip stepping benches, emitting BENCH_chip.json =="
BENCH_CHIP_JSON="$PWD/BENCH_chip.json" \
  go test -run '^$' -bench 'ChipDMAStream|NUCAvsPerfectL2' -benchtime=20x

if [ "$mode" = "full" ]; then
  echo "== Figure 5b (timed, multi-iteration) =="
  go test -run '^$' -bench 'Figure5bCommitPipeline' -benchtime=2s -benchmem
  echo "== ablations =="
  go test -run '^$' -bench 'Ablation' -benchtime=1x
fi

echo "done; baselines written to BENCH_table3.json and BENCH_chip.json"
