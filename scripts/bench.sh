#!/usr/bin/env bash
# bench.sh — simulator performance harness.
#
# Runs the checked-in benchmark suite and refreshes the machine-readable
# Table 3 baseline (BENCH_table3.json: per-row results + host throughput).
#
#   scripts/bench.sh            quick smoke: Table 3 once + Figure 5b, JSON refresh
#   scripts/bench.sh full       adds multi-iteration Figure 5b and the ablations
#   scripts/bench.sh compare    fresh run into a temp file, diffed against the
#                               checked-in baseline: exits nonzero if any
#                               simulated cycle count drifted (host-throughput
#                               deltas are informational)
#
# The simulated results in BENCH_table3.json are deterministic; only the
# host-throughput fields (wall_ns, sim_cycles_per_sec, ...) vary by machine.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-smoke}"

echo "== go vet =="
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck =="
  staticcheck ./...
fi

echo "== build =="
go build ./...

echo "== race: proc + micronet + chip + nuca =="
go test -race ./internal/proc/ ./internal/micronet/ ./internal/chip/ ./internal/nuca/

if [ "$mode" = "compare" ]; then
  # Install the cleanup handler before mktemp so an interrupt between the
  # two can't leak the temp file; INT/TERM also go through it.
  fresh=""
  trap '[ -z "$fresh" ] || rm -f "$fresh"' EXIT INT TERM
  fresh="$(mktemp /tmp/bench_table3.XXXXXX.json)"
  echo "== Table 3 (once) + Figure 5b, fresh baseline -> $fresh =="
  BENCH_TABLE3_JSON="$fresh" \
    go test -run '^$' -bench 'Table3$|Figure5bCommitPipeline' -benchtime=1x -benchmem
  echo "== compare against checked-in BENCH_table3.json =="
  go run ./cmd/bench-compare BENCH_table3.json "$fresh"
  echo "compare OK: simulated cycles match the baseline"
  exit 0
fi

echo "== Table 3 (once) + Figure 5b, emitting BENCH_table3.json =="
BENCH_TABLE3_JSON="$PWD/BENCH_table3.json" \
  go test -run '^$' -bench 'Table3$|Figure5bCommitPipeline' -benchtime=1x -benchmem

if [ "$mode" = "full" ]; then
  echo "== Figure 5b (timed, multi-iteration) =="
  go test -run '^$' -bench 'Figure5bCommitPipeline' -benchtime=2s -benchmem
  echo "== ablations =="
  go test -run '^$' -bench 'Ablation' -benchtime=1x
fi

echo "done; baseline written to BENCH_table3.json"
