package critpath

import (
	"testing"
	"testing/quick"
)

func TestChainAccumulates(t *testing.T) {
	root := Root()
	var s1 Split
	s1[CatIFetch] = 10
	e1 := New(10, root, s1, CatOther)
	var s2 Split
	s2[CatOPNHop] = 3
	s2[CatOPNContention] = 2
	e2 := New(17, e1, s2, CatOther) // 7 cycles: 3 hop + 2 contention + 2 other
	r := Finish(e2)
	if r.TotalCycles != 17 {
		t.Fatalf("total = %d", r.TotalCycles)
	}
	want := Split{}
	want[CatIFetch] = 10
	want[CatOPNHop] = 3
	want[CatOPNContention] = 2
	want[CatOther] = 2
	if r.Cycles != want {
		t.Fatalf("cycles = %v, want %v", r.Cycles, want)
	}
}

func TestOverApportionedSplitClamps(t *testing.T) {
	var s Split
	s[CatOPNHop] = 100 // edge is only 5 cycles long
	e := New(5, Root(), s, CatOther)
	if e.Cum[CatOPNHop] != 5 || e.Cum[CatOther] != 0 {
		t.Fatalf("cum = %v", e.Cum)
	}
}

func TestBackwardTimeClamps(t *testing.T) {
	e1 := New(10, Root(), Split{}, CatOther)
	e2 := New(5, e1, Split{}, CatOther) // cannot precede its dependency
	if e2.Cycle != 10 {
		t.Fatalf("cycle = %d, want clamped to 10", e2.Cycle)
	}
}

func TestLatest(t *testing.T) {
	a := New(5, Root(), Split{}, CatOther)
	b := New(9, Root(), Split{}, CatOther)
	if Latest(a, b) != b || Latest(b, a) != b {
		t.Error("Latest did not pick the later event")
	}
	if Latest(nil, a) != a || Latest(a, nil) != a {
		t.Error("Latest not nil-safe")
	}
}

func TestQuickTotalsAlwaysSumToElapsed(t *testing.T) {
	// Invariant: for any chain, the category totals sum exactly to the
	// final cycle — no cycles lost or double-counted.
	f := func(steps []uint8) bool {
		e := Root()
		for i, s := range steps {
			if i > 200 {
				break
			}
			var sp Split
			sp[Cat(int(s)%int(NumCats))] = int64(s % 7)
			e = New(e.Cycle+int64(s%13), e, sp, CatOther)
		}
		var sum int64
		for c := Cat(0); c < NumCats; c++ {
			sum += e.Cum[c]
		}
		return sum == e.Cycle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercent(t *testing.T) {
	var s Split
	s[CatCommit] = 25
	e := New(100, Root(), s, CatOther)
	r := Finish(e)
	if got := r.Percent(CatCommit); got != 25 {
		t.Errorf("Percent(commit) = %v", got)
	}
	if got := r.Percent(CatOther); got != 75 {
		t.Errorf("Percent(other) = %v", got)
	}
	if (Report{}).Percent(CatOther) != 0 {
		t.Error("empty report percent should be 0")
	}
}

func TestCategoryNames(t *testing.T) {
	names := map[Cat]string{
		CatIFetch: "IFetch", CatOPNHop: "OPN Hops", CatOPNContention: "OPN Cont.",
		CatFanout: "Fanout Ops", CatComplete: "Block Complete",
		CatCommit: "Block Commit", CatOther: "Other",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Cat(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
