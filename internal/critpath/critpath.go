// Package critpath implements the critical-path accounting of Fields et
// al. used by the paper (Section 5.4) to attribute each cycle of a
// program's critical path to a microarchitectural activity: instruction
// distribution (IFetch), operand network hop latency, operand network
// contention, operand fanout instructions, block-completion detection,
// block-commit latency, and everything a conventional core would also pay
// (Other: ALU execution, cache access, misses).
//
// The simulator constructs one Event per microarchitectural happening
// (dispatch, issue, completion, arrival, commit...). The time of an event
// is determined by its last-arriving dependency; the simulator passes that
// dependency as the parent together with a categorized decomposition of the
// edge. Because event times in a cycle-accurate simulator are exactly
// "max over parents + edge latency", the chain of last-arriving parents IS
// the critical path, so each event can carry cumulative per-category totals
// and the analysis needs O(1) memory per live event.
package critpath

import "fmt"

// Cat is a critical-path cycle category (the columns of paper Table 3).
type Cat int

const (
	// CatIFetch: instruction distribution delay — fetch pipeline, GDN
	// dispatch, refills.
	CatIFetch Cat = iota
	// CatOPNHop: operand network hop latency between dependent instructions.
	CatOPNHop
	// CatOPNContention: cycles operands spent blocked in OPN routers.
	CatOPNContention
	// CatFanout: execution of fanout (mov) instructions that only replicate
	// operands.
	CatFanout
	// CatComplete: waiting for the GT to learn that all block outputs have
	// been produced (GSN daisy chains, DSN store tracking).
	CatComplete
	// CatCommit: the block commit protocol — GCN command, architectural
	// drain, GSN acknowledgment.
	CatCommit
	// CatOther: components a conventional core also has — ALU execution,
	// ALU contention, cache hits and misses.
	CatOther
	NumCats
)

func (c Cat) String() string {
	switch c {
	case CatIFetch:
		return "IFetch"
	case CatOPNHop:
		return "OPN Hops"
	case CatOPNContention:
		return "OPN Cont."
	case CatFanout:
		return "Fanout Ops"
	case CatComplete:
		return "Block Complete"
	case CatCommit:
		return "Block Commit"
	case CatOther:
		return "Other"
	}
	return fmt.Sprintf("Cat(%d)", int(c))
}

// Split is a categorized decomposition of one dependency edge's latency.
type Split [NumCats]int64

// Event is a node on the dependence graph, carrying cumulative
// per-category totals along its critical (last-arrival) chain.
type Event struct {
	Cycle int64
	Cum   Split
}

// Root returns the time-zero event.
func Root() *Event { return &Event{} }

// New creates an event at the given cycle whose last-arriving dependency is
// parent. split apportions the edge latency (cycle - parent.Cycle) among
// categories; any unapportioned remainder is charged to rem. Negative or
// over-apportioned splits are clamped so totals always equal elapsed time.
func New(cycle int64, parent *Event, split Split, rem Cat) *Event {
	if parent == nil {
		parent = Root()
	}
	if cycle < parent.Cycle {
		cycle = parent.Cycle
	}
	edge := cycle - parent.Cycle
	e := &Event{Cycle: cycle, Cum: parent.Cum}
	left := edge
	for c := Cat(0); c < NumCats; c++ {
		take := split[c]
		if take < 0 {
			take = 0
		}
		if take > left {
			take = left
		}
		e.Cum[c] += take
		left -= take
	}
	e.Cum[rem] += left
	return e
}

// Latest returns the later of two events (nil-safe), used to find the
// last-arriving dependency.
func Latest(a, b *Event) *Event {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.Cycle > a.Cycle {
		return b
	}
	return a
}

// Report is the per-category share of the critical path.
type Report struct {
	TotalCycles int64
	Cycles      Split
}

// Finish produces the report for a terminal event.
func Finish(e *Event) Report {
	return Report{TotalCycles: e.Cycle, Cycles: e.Cum}
}

// Percent returns category c's share of the critical path in percent.
func (r Report) Percent(c Cat) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return 100 * float64(r.Cycles[c]) / float64(r.TotalCycles)
}
