// Package area encodes the physical-design database of the TRIPS prototype
// chip (paper Section 5, Table 1, Table 2, Figure 6): per-tile cell counts,
// array bits, silicon area and replication counts for the 170M-transistor,
// 18.30mm x 18.37mm 130nm ASIC, plus the derived area-overhead breakdown of
// Section 5.2.
package area

import (
	"fmt"
	"strings"

	"trips/internal/micronet"
)

// TileSpec is one row of paper Table 1.
type TileSpec struct {
	Name      string
	Role      string
	CellCount int     // placeable instances
	ArrayBits int     // dense register/SRAM array bits
	SizeMM2   float64 // area of one tile instance
	Count     int     // instances across the chip
	PctArea   float64 // % of total chip area (paper's reported figure)
}

// Table1 is the paper's Table 1. Cell counts are in thousands in the paper;
// stored here as absolute values.
var Table1 = []TileSpec{
	{"GT", "global control tile", 52_000, 93_000, 3.1, 2, 1.8},
	{"RT", "register tile", 26_000, 14_000, 1.2, 8, 2.9},
	{"IT", "instruction tile", 5_000, 135_000, 1.0, 10, 2.9},
	{"DT", "data tile", 119_000, 89_000, 8.8, 8, 21.0},
	{"ET", "execution tile", 84_000, 13_000, 2.9, 32, 28.0},
	{"MT", "memory tile", 60_000, 542_000, 6.5, 16, 30.7},
	{"NT", "network tile", 23_000, 0, 1.0, 24, 7.1},
	{"SDC", "SDRAM controller", 64_000, 6_000, 5.8, 2, 3.4},
	{"DMA", "DMA controller", 30_000, 4_000, 1.3, 2, 0.8},
	{"EBC", "external bus controller", 29_000, 0, 1.0, 1, 0.3},
	{"C2C", "chip-to-chip controller", 48_000, 0, 2.2, 1, 0.7},
}

// Chip-level constants (paper Section 5.1).
const (
	ChipWidthMM    = 18.30
	ChipHeightMM   = 18.37
	Transistors    = 170_000_000
	TotalCellCount = 5_800_000
	TotalArrayBits = 11_500_000
	TotalAreaMM2   = 334.0
	TileTypes      = 11
	TotalTiles     = 106
)

// TotalTileArea returns sum(size * count) — the area covered by tiles.
func TotalTileArea() float64 {
	var a float64
	for _, t := range Table1 {
		a += t.SizeMM2 * float64(t.Count)
	}
	return a
}

// DerivedPct returns each tile type's share of the total chip area computed
// from the size/count columns (cross-checked against the paper's reported
// percentages in tests).
func DerivedPct(t TileSpec) float64 {
	return 100 * t.SizeMM2 * float64(t.Count) / TotalAreaMM2
}

// Overheads of the distributed design (paper Section 5.2).
const (
	// OPNPctProcessorArea: routers + buffering at 25 of the 30 processor
	// tiles, eight links per tile — about 12% of the processor area.
	OPNPctProcessorArea = 12.0
	// OCNPctChipArea: 4-ported routers with four virtual channels — about
	// 14% of the chip.
	OCNPctChipArea = 14.0
	// LSQPctProcessorArea: the replicated 256-entry LSQs — about 13% of
	// the processor core area (and 40% of each DT, Section 7).
	LSQPctProcessorArea = 13.0
	LSQPctOfDT          = 40.0
)

// FormatTable1 renders Table 1 the way the paper prints it.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %11s %9s %6s %8s\n", "Tile", "Cell Count", "Array Bits", "Size mm2", "Count", "% Area")
	for _, t := range Table1 {
		fmt.Fprintf(&b, "%-5s %9dK %10dK %9.1f %6d %8.1f\n",
			t.Name, t.CellCount/1000, t.ArrayBits/1000, t.SizeMM2, t.Count, t.PctArea)
	}
	fmt.Fprintf(&b, "%-5s %9.1fM %9.1fM %9.0f %6d %8.1f\n",
		"Chip", float64(TotalCellCount)/1e6, float64(TotalArrayBits)/1e6, TotalAreaMM2, TotalTiles, 100.0)
	return b.String()
}

// FormatTable2 renders the paper's Table 2 from the micronet specs.
func FormatTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-18s %s\n", "Network", "Use", "Bits")
	for _, n := range micronet.Table2 {
		bits := fmt.Sprintf("%d", n.Bits)
		if n.LinksPerTile > 1 {
			bits = fmt.Sprintf("%d (x%d)", n.Bits, n.LinksPerTile)
		}
		fmt.Fprintf(&b, "%-28s %-18s %s\n", n.Name+" ("+n.Abbrev+")", n.Use, bits)
	}
	return b.String()
}

// Floorplan renders the Figure 6 tile arrangement as ASCII art: the
// secondary memory system's MT/NT columns on the left, the two processors
// (each a GT/RT row, IT column and DT/ET array) on the right, and the I/O
// controllers around the edge.
func Floorplan() string {
	proc := func() []string {
		return []string{
			"GT RT RT RT RT",
			"IT DT ET ET ET ET",
			"IT DT ET ET ET ET",
			"IT DT ET ET ET ET",
			"IT DT ET ET ET ET",
		}
	}
	var b strings.Builder
	b.WriteString("+------------------------------------------------------------+\n")
	b.WriteString("| DMA  EBC |                PROC 0                           |\n")
	left := []string{
		"MT MT NT", "MT MT NT", "MT MT NT", "MT MT NT",
		"MT MT NT", "MT MT NT", "MT MT NT", "MT MT NT",
	}
	p0 := proc()
	p1 := proc()
	rows := 10
	for r := 0; r < rows; r++ {
		var l, rgt string
		if r < len(left) {
			l = left[r]
		} else {
			l = "SDC  C2C"
		}
		switch {
		case r < 5:
			rgt = p0[r] + "   (IT column feeds each row)"
		case r == 5:
			rgt = strings.Repeat("-", 20)
		default:
			rgt = p1[r-6] + "   PROC 1"
		}
		fmt.Fprintf(&b, "| %-9s| %-47s|\n", l, rgt)
	}
	b.WriteString("| SDC DMA  |   OCN: 4x10 wormhole mesh, 4 VCs, 16B links     |\n")
	b.WriteString("+------------------------------------------------------------+\n")
	fmt.Fprintf(&b, "chip: %.2fmm x %.2fmm, %dM transistors, %d tiles of %d types\n",
		ChipWidthMM, ChipHeightMM, Transistors/1_000_000, TotalTiles, TileTypes)
	return b.String()
}
