package area

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Totals(t *testing.T) {
	if len(Table1) != TileTypes {
		t.Fatalf("Table 1 lists %d tile types, want %d", len(Table1), TileTypes)
	}
	tiles := 0
	for _, ts := range Table1 {
		tiles += ts.Count
	}
	if tiles != TotalTiles {
		t.Errorf("tile count sums to %d, want %d (paper Table 1)", tiles, TotalTiles)
	}
	// Reported per-type area percentages must sum to ~100 (the paper rounds).
	var pct float64
	for _, ts := range Table1 {
		pct += ts.PctArea
	}
	if math.Abs(pct-100) > 2.0 {
		t.Errorf("reported area percentages sum to %.1f", pct)
	}
}

func TestDerivedAreaMatchesReported(t *testing.T) {
	// size x count / total must land near the paper's reported share for
	// every tile type (the paper's own columns are internally consistent
	// to within rounding).
	for _, ts := range Table1 {
		got := DerivedPct(ts)
		if math.Abs(got-ts.PctArea) > 1.5 {
			t.Errorf("%s: derived %.1f%%, paper reports %.1f%%", ts.Name, got, ts.PctArea)
		}
	}
	// Tiles don't cover the full die (routing channels, pads): covered
	// area must be less than but comparable to the chip area.
	covered := TotalTileArea()
	if covered > 1.02*TotalAreaMM2 || covered < 0.8*TotalAreaMM2 {
		t.Errorf("tile-covered area %.1f vs chip %.1f", covered, TotalAreaMM2)
	}
	if die := ChipWidthMM * ChipHeightMM; math.Abs(die-TotalAreaMM2) > 3 {
		t.Errorf("die %.1f mm2 vs total %.1f", die, TotalAreaMM2)
	}
}

func TestLSQShareOfDT(t *testing.T) {
	// Section 7: the LSQs occupy 40% of the DTs; the DTs are 21% of the
	// chip and the processors are ~57%; 13% of processor core area checks
	// out roughly: 0.4 * (DT area share of processor).
	var dt, procArea float64
	for _, ts := range Table1 {
		a := ts.SizeMM2 * float64(ts.Count)
		switch ts.Name {
		case "GT", "RT", "IT", "DT", "ET":
			procArea += a
		}
		if ts.Name == "DT" {
			dt = a
		}
	}
	lsqShare := 100 * (LSQPctOfDT / 100) * dt / procArea
	if math.Abs(lsqShare-LSQPctProcessorArea) > 3 {
		t.Errorf("LSQ share of processor area derived %.1f%%, paper says ~%.0f%%", lsqShare, LSQPctProcessorArea)
	}
}

func TestFormatters(t *testing.T) {
	t1 := FormatTable1()
	for _, want := range []string{"GT", "MT", "30.7", "5.8M", "106"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, t1)
		}
	}
	t2 := FormatTable2()
	for _, want := range []string{"GDN", "205", "OPN", "141 (x8)", "Commit/flush"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, t2)
		}
	}
	fp := Floorplan()
	for _, want := range []string{"PROC 0", "PROC 1", "MT MT NT", "GT RT RT RT RT", "18.30mm"} {
		if !strings.Contains(fp, want) {
			t.Errorf("floorplan missing %q:\n%s", want, fp)
		}
	}
}
