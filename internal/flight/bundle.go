package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"trips/internal/ckpt"
	"trips/internal/obs"
)

// BundleFormat versions the bundle layout; bump on breaking changes.
const BundleFormat = 1

// Manifest is the bundle's self-description (manifest.json).
type Manifest struct {
	Format    int    `json:"format"`
	Tool      string `json:"tool,omitempty"`
	Trigger   string `json:"trigger"`
	Reason    string `json:"reason,omitempty"`
	DumpCycle int64  `json:"dump_cycle"`
	// ContentHash is the run's checkpoint compatibility hash, hex-encoded;
	// replay recomputes it from Meta and refuses a mismatched bundle.
	ContentHash string            `json:"content_hash,omitempty"`
	Checkpoint  *CheckpointInfo   `json:"checkpoint,omitempty"`
	Windows     []WindowInfo      `json:"windows,omitempty"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
	// Meta is the workload/config identity the producer recorded —
	// everything replay needs to rebuild the machine.
	Meta map[string]string `json:"meta,omitempty"`
	// Kinds maps numeric event kinds to names so the events files are
	// interpretable without this codebase.
	Kinds map[uint8]string `json:"kinds,omitempty"`
}

// CheckpointInfo describes the bundled checkpoint frame.
type CheckpointInfo struct {
	File  string `json:"file"`
	Cycle int64  `json:"cycle"`
	Bytes int    `json:"bytes"`
}

// WindowInfo describes one bundled trace window.
type WindowInfo struct {
	Name       string `json:"name"`
	File       string `json:"file"`
	Events     int    `json:"events"`
	Dropped    uint64 `json:"dropped"`
	FirstCycle int64  `json:"first_cycle"`
	LastCycle  int64  `json:"last_cycle"`
}

// eventsFile is the on-disk window format.
type eventsFile struct {
	Format int         `json:"format"`
	Name   string      `json:"name"`
	Events []obs.Event `json:"events"`
}

func kindLegend() map[uint8]string {
	m := make(map[uint8]string)
	for k := obs.KindBlockFetch; k <= obs.KindCkpt; k++ {
		m[uint8(k)] = k.String()
	}
	return m
}

// writeBundle stages every bundle file into dir (already created).
func (r *Recorder) writeBundle(dir, trigger, reason string, cycle int64) error {
	man := Manifest{
		Format:      BundleFormat,
		Tool:        r.cfg.Tool,
		Trigger:     trigger,
		Reason:      reason,
		DumpCycle:   cycle,
		ContentHash: r.cfg.Hash.String(),
		Counters:    r.counters(),
		Meta:        r.cfg.Meta,
		Kinds:       kindLegend(),
	}
	if ckCycle, payload, ok := r.NearestBefore(cycle); ok {
		f, err := os.Create(filepath.Join(dir, "checkpoint.ckpt"))
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		werr := ckpt.WriteFile(f, r.cfg.Hash, payload)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("flight: writing checkpoint: %w", werr)
		}
		man.Checkpoint = &CheckpointInfo{File: "checkpoint.ckpt", Cycle: ckCycle, Bytes: len(payload)}
	}
	for _, w := range r.windows {
		evs := w.tr.Events()
		name := fmt.Sprintf("window-%s.events.json", sanitize(w.name))
		if err := WriteEvents(filepath.Join(dir, name), w.name, evs); err != nil {
			return err
		}
		wi := WindowInfo{Name: w.name, File: name, Events: len(evs), Dropped: w.tr.Dropped()}
		if len(evs) > 0 {
			wi.FirstCycle = evs[0].Cycle
			wi.LastCycle = evs[len(evs)-1].Cycle
		}
		man.Windows = append(man.Windows, wi)
	}
	if r.cfg.StatsText != nil {
		if err := os.WriteFile(filepath.Join(dir, "stats.txt"), []byte(r.cfg.StatsText()), 0o644); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
	}
	mb, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

// WriteEvents writes a trace window to path as self-describing JSON.
func WriteEvents(path, name string, evs []obs.Event) error {
	b, err := json.Marshal(&eventsFile{Format: BundleFormat, Name: name, Events: evs})
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

// ReadEvents reads a trace window written by WriteEvents.
func ReadEvents(path string) ([]obs.Event, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	var f eventsFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", path, err)
	}
	if f.Format != BundleFormat {
		return nil, fmt.Errorf("flight: %s: format %d, this build reads %d", path, f.Format, BundleFormat)
	}
	return f.Events, nil
}

// Bundle is a dump bundle opened for reading.
type Bundle struct {
	Dir      string
	Manifest Manifest
}

// ReadBundle opens a bundle directory and parses its manifest.
func ReadBundle(dir string) (*Bundle, error) {
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", dir, err)
	}
	if man.Format != BundleFormat {
		return nil, fmt.Errorf("flight: %s: bundle format %d, this build reads %d", dir, man.Format, BundleFormat)
	}
	return &Bundle{Dir: dir, Manifest: man}, nil
}

// CheckpointPath returns the bundled checkpoint's path ("" if none).
func (b *Bundle) CheckpointPath() string {
	if b.Manifest.Checkpoint == nil {
		return ""
	}
	return filepath.Join(b.Dir, b.Manifest.Checkpoint.File)
}

// Window reads the named trace window ("" with exactly one window means
// that window).
func (b *Bundle) Window(name string) ([]obs.Event, error) {
	if name == "" && len(b.Manifest.Windows) == 1 {
		name = b.Manifest.Windows[0].Name
	}
	for _, w := range b.Manifest.Windows {
		if w.Name == name {
			return ReadEvents(filepath.Join(b.Dir, w.File))
		}
	}
	return nil, fmt.Errorf("flight: bundle %s has no window %q", b.Dir, name)
}
