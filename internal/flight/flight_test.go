package flight

import (
	"os"
	"strings"
	"testing"

	"trips/internal/ckpt"
	"trips/internal/obs"
)

func testRecorder(t *testing.T, depth int, save func(w *ckpt.Writer) error) *Recorder {
	t.Helper()
	return New(Config{
		Depth:    depth,
		Interval: 100,
		Dir:      t.TempDir(),
		Name:     "test",
		Tool:     "flight_test",
		Meta:     map[string]string{"bench": "fake"},
		Hash:     ckpt.HashContent([]byte("prog"), []byte("cfg")),
		Save:     save,
	})
}

func TestRingRotationAndNearestBefore(t *testing.T) {
	var stamp byte
	r := testRecorder(t, 3, func(w *ckpt.Writer) error {
		w.U8(stamp)
		return nil
	})
	for i, cycle := range []int64{100, 200, 300, 400, 500} {
		stamp = byte(i)
		if err := r.Capture(cycle); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CheckpointsHeld(); got != 3 {
		t.Fatalf("CheckpointsHeld = %d, want 3 (depth)", got)
	}
	if got := r.Captures(); got != 5 {
		t.Fatalf("Captures = %d, want 5", got)
	}
	// Ring holds cycles 300, 400, 500 (stamps 2, 3, 4).
	for _, tc := range []struct {
		at    int64
		cycle int64
		stamp byte
	}{
		{450, 400, 3},
		{400, 400, 3},
		{10_000, 500, 4},
		// Everything held is later than 50: earliest held is the best
		// available.
		{50, 300, 2},
	} {
		cy, payload, ok := r.NearestBefore(tc.at)
		if !ok {
			t.Fatalf("NearestBefore(%d): no frame", tc.at)
		}
		if cy != tc.cycle || payload[0] != tc.stamp {
			t.Fatalf("NearestBefore(%d) = cycle %d stamp %d, want cycle %d stamp %d", tc.at, cy, payload[0], tc.cycle, tc.stamp)
		}
	}
}

// Once every slot has been written, captures of steady-size frames must
// recycle slot buffers rather than allocate.
func TestCaptureRecyclesBuffers(t *testing.T) {
	payload := make([]byte, 4096)
	r := testRecorder(t, 4, func(w *ckpt.Writer) error {
		w.Bytes(payload)
		return nil
	})
	var cycle int64
	for i := 0; i < 8; i++ { // warm every slot twice
		cycle += 100
		if err := r.Capture(cycle); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		cycle += 100
		if err := r.Capture(cycle); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state Capture allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestDumpBundleRoundTrip(t *testing.T) {
	r := testRecorder(t, 2, func(w *ckpt.Writer) error {
		w.Section("fake")
		w.U64(42)
		return nil
	})
	r.cfg.StatsText = func() string { return "stats snapshot\n" }
	r.cfg.Counters = func() map[string]uint64 { return map[string]uint64{"extra.counter": 7} }
	tr := r.NewWindow("core0")
	for i := 0; i < 10; i++ {
		tr.Emit(obs.Event{Cycle: int64(1000 + i), Seq: uint64(i), Kind: obs.KindBlockFetch, Addr: 0x100})
	}
	if err := r.Capture(900); err != nil {
		t.Fatal(err)
	}
	if err := r.Capture(1004); err != nil {
		t.Fatal(err)
	}

	dir, err := r.Dump(TriggerRollback, "injected fault", 1009)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dumps() != 1 || r.LastDump() != dir {
		t.Fatalf("dump bookkeeping: dumps=%d last=%q dir=%q", r.Dumps(), r.LastDump(), dir)
	}

	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := b.Manifest
	if man.Trigger != TriggerRollback || man.Reason != "injected fault" || man.DumpCycle != 1009 {
		t.Fatalf("manifest trigger/reason/cycle wrong: %+v", man)
	}
	if man.Checkpoint == nil || man.Checkpoint.Cycle != 1004 {
		t.Fatalf("manifest checkpoint: %+v", man.Checkpoint)
	}
	if man.Meta["bench"] != "fake" {
		t.Fatalf("manifest meta lost: %+v", man.Meta)
	}
	if man.Counters["extra.counter"] != 7 {
		t.Fatalf("extra counters lost: %v", man.Counters)
	}
	if man.Counters["flight.captures"] != 2 {
		t.Fatalf("flight.captures = %d, want 2", man.Counters["flight.captures"])
	}
	if man.Kinds[uint8(obs.KindNetHop)] != "hop" {
		t.Fatalf("kind legend missing: %v", man.Kinds)
	}

	// The bundled checkpoint restores through the standard framed reader
	// with the same content-hash gate as -restore.
	f, err := os.Open(b.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload, err := ckpt.ReadFile(f, r.cfg.Hash)
	if err != nil {
		t.Fatal(err)
	}
	pr := ckpt.NewReader(payload)
	pr.Section("fake")
	if got := pr.U64(); got != 42 {
		t.Fatalf("checkpoint payload round trip: got %d, want 42", got)
	}

	evs, err := b.Window("")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 || evs[0].Cycle != 1000 || evs[9].Cycle != 1009 {
		t.Fatalf("window round trip: %d events, first %v", len(evs), evs[0])
	}
	if evs[3] != (obs.Event{Cycle: 1003, Seq: 3, Kind: obs.KindBlockFetch, Addr: 0x100}) {
		t.Fatalf("event fields lost in JSON round trip: %+v", evs[3])
	}

	// A second dump at the same cycle must not clobber the first.
	dir2, err := r.Dump(TriggerRollback, "again", 1009)
	if err != nil {
		t.Fatal(err)
	}
	if dir2 == dir {
		t.Fatalf("second dump reused directory %s", dir)
	}
	// No temp staging directories survive.
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("staging directory leaked: %s", e.Name())
		}
	}
}

func TestDumpWithoutCheckpoints(t *testing.T) {
	r := New(Config{Dir: t.TempDir(), Name: "bare", Tool: "flight_test"})
	tr := r.NewWindow("w")
	tr.Emit(obs.Event{Cycle: 5, Kind: obs.KindBlockFetch})
	dir, err := r.Dump(TriggerPanic, "boom", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Checkpoint != nil {
		t.Fatalf("expected no checkpoint, got %+v", b.Manifest.Checkpoint)
	}
	if b.CheckpointPath() != "" {
		t.Fatalf("CheckpointPath = %q, want empty", b.CheckpointPath())
	}
	if evs, err := b.Window("w"); err != nil || len(evs) != 1 {
		t.Fatalf("window: %v %v", evs, err)
	}
}

func TestNormalizeFlowIDsAndCompare(t *testing.T) {
	mk := func(ids ...uint64) []obs.Event {
		var evs []obs.Event
		for i, id := range ids {
			evs = append(evs, obs.Event{Cycle: int64(i), Kind: obs.KindNetHop, Net: obs.NetOCN, Seq: id, Addr: obs.PackCoord(1, 2)})
		}
		return evs
	}
	// Same flow structure under different raw ids normalizes identically.
	a := mk(500, 500, 7, 500, 7)
	b := mk(1, 1, 2, 1, 2)
	if d := Compare(a, b); d != nil {
		t.Fatalf("identical flow structure reported divergent: %s", d.Reason)
	}
	// Different interleaving is caught.
	c := mk(1, 2, 2, 1, 2)
	d := Compare(a, c)
	if d == nil {
		t.Fatal("divergent interleaving not caught")
	}
	if d.Index != 1 {
		t.Fatalf("divergence at index %d, want 1", d.Index)
	}
	// Block events keep their architectural Seq.
	blk := []obs.Event{{Cycle: 1, Kind: obs.KindBlockDispatch, Seq: 99}}
	if got := NormalizeFlowIDs(blk); got[0].Seq != 99 {
		t.Fatalf("block seq remapped: %+v", got[0])
	}
	// Length mismatch.
	if d := Compare(a, a[:3]); d == nil || d.Index != 3 {
		t.Fatalf("length mismatch not localized: %+v", d)
	}
	// Equal windows: nil.
	if d := Compare(nil, nil); d != nil {
		t.Fatalf("empty windows divergent: %+v", d)
	}
}

func TestWindowFrom(t *testing.T) {
	var evs []obs.Event
	for _, cy := range []int64{10, 20, 20, 30} {
		evs = append(evs, obs.Event{Cycle: cy})
	}
	if got := WindowFrom(evs, 20); len(got) != 3 || got[0].Cycle != 20 {
		t.Fatalf("WindowFrom(20) = %v", got)
	}
	if got := WindowFrom(evs, 31); len(got) != 0 {
		t.Fatalf("WindowFrom(31) = %v", got)
	}
	if got := WindowFrom(evs, 0); len(got) != 4 {
		t.Fatalf("WindowFrom(0) = %v", got)
	}
}

func TestArmReArms(t *testing.T) {
	r := testRecorder(t, 4, func(w *ckpt.Writer) error {
		w.U8(1)
		return nil
	})
	m := &fakeMachine{}
	r.Arm(m, 0)
	if m.at != 100 {
		t.Fatalf("first arm at %d, want Interval 100", m.at)
	}
	// Simulate commit boundaries past each arm point.
	for i := 0; i < 3; i++ {
		fn := m.fn
		m.fn = nil
		if err := fn(m.at + 7); err != nil {
			t.Fatal(err)
		}
		if m.fn == nil {
			t.Fatalf("capture %d did not re-arm", i)
		}
	}
	if r.Captures() != 3 {
		t.Fatalf("Captures = %d, want 3", r.Captures())
	}
	// Fired at 107, 214, 321; each re-arms Interval ahead of the capture.
	if m.at != 321+100 {
		t.Fatalf("re-arm at %d, want %d", m.at, 321+100)
	}
}

type fakeMachine struct {
	at int64
	fn func(int64) error
}

func (m *fakeMachine) SetCheckpointHook(at int64, fn func(int64) error) {
	m.at, m.fn = at, fn
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"rollback": "rollback", "block=12": "block_12", "": "trigger", "a/b": "a_b",
	} {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
