// Package flight is the simulator's flight recorder: during any run it
// keeps a rolling ring of the last K block-commit checkpoints (reusing
// internal/ckpt frames, bounded memory) plus bounded in-memory trace
// windows of recent protocol events, and on a trigger — panic, cycle-limit
// overrun, bit-identity divergence, bounded-lag rollback, or an explicit
// -dump-on request — atomically writes a self-describing dump bundle
// (manifest JSON + nearest-prior checkpoint + trace windows + counters
// snapshot) that cmd/trips-debug can replay and diff.
//
// The recorder rides entirely on the zero-perturbation observability
// substrate: trace windows are ordinary obs.Tracer rings (nil-gated,
// allocation-free Emit), and checkpoint captures fire through the same
// SetCheckpointHook block-commit boundaries the -checkpoint-out path uses,
// re-arming themselves from inside the callback. Ring slot buffers are
// recycled, so steady-state captures stop allocating once every slot has
// been written once.
package flight

import (
	"fmt"
	"os"
	"path/filepath"

	"trips/internal/ckpt"
	"trips/internal/obs"
)

// Triggers classify why a dump was written. Free-form strings are allowed
// (e.g. "block=12", "cycle=9000"); these are the well-known ones.
const (
	TriggerPanic      = "panic"
	TriggerLimit      = "cycle-limit"
	TriggerRollback   = "rollback"
	TriggerDivergence = "divergence"
	TriggerEnd        = "end"
	TriggerError      = "error"
)

// Config parameterizes a Recorder.
type Config struct {
	// Depth is the checkpoint ring size K (default 4).
	Depth int
	// Interval is the target cycle spacing between rolling checkpoint
	// captures when the recorder arms itself via Arm (default 50_000).
	// Captures land on the first block-commit boundary past each multiple.
	Interval int64
	// WindowCap is the per-window tracer ring capacity in events
	// (default 1<<16). A window holds roughly the last N blocks' protocol
	// events; at ~100 events per block the default covers several hundred
	// blocks.
	WindowCap int
	// Dir is the directory dump bundles are written into (default
	// "flight-dumps").
	Dir string
	// Name prefixes bundle directory names, e.g. the workload name
	// (default "flight").
	Name string
	// Tool records the producing binary in the manifest ("tsim",
	// "trips-eval", a test name).
	Tool string
	// Meta is workload/config identity recorded verbatim in the manifest —
	// everything trips-debug replay needs to rebuild the machine (bench
	// name, mode, placement, opn, nuca, ...).
	Meta map[string]string
	// Hash is the run's checkpoint content hash; dumped frames are framed
	// with it so restore performs the same compatibility check as -restore.
	Hash ckpt.Hash
	// Save captures full machine state into w at a block-commit boundary —
	// the same saver the -checkpoint-out path uses.
	Save func(w *ckpt.Writer) error
	// StatsText, when non-nil, renders a human-readable stats snapshot
	// (nuca report, sampler summary) included in the bundle as stats.txt.
	StatsText func() string
	// Counters, when non-nil, contributes extra named counters to the
	// manifest snapshot (merged with the recorder's own and ckpt package
	// counters).
	Counters func() map[string]uint64
}

// frame is one checkpoint ring slot; w's buffer is recycled across laps.
type frame struct {
	cycle int64
	valid bool
	w     ckpt.Writer
}

type window struct {
	name string
	tr   *obs.Tracer
}

// Recorder is the flight recorder. It is single-goroutine, like the
// tracers it owns: under parallel fan-out each machine needs its own.
type Recorder struct {
	cfg      Config
	frames   []frame
	captures uint64 // total checkpoint captures ever
	windows  []window
	dumps    uint64
	lastDump string // directory of the most recent bundle
}

// New builds a Recorder. Zero-valued Config fields take the documented
// defaults; Save may be nil for a windows-only recorder (no checkpoints).
func New(cfg Config) *Recorder {
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50_000
	}
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 1 << 16
	}
	if cfg.Dir == "" {
		cfg.Dir = "flight-dumps"
	}
	if cfg.Name == "" {
		cfg.Name = "flight"
	}
	return &Recorder{cfg: cfg, frames: make([]frame, cfg.Depth)}
}

// Bind attaches the machine-dependent callbacks that only exist once the
// machine is built: the checkpoint content hash, the state saver, and the
// optional stats snapshotters. Windows may be created before Bind, so a
// recorder can supply the run's tracer during machine construction.
func (r *Recorder) Bind(hash ckpt.Hash, save func(w *ckpt.Writer) error, statsText func() string, counters func() map[string]uint64) {
	r.cfg.Hash = hash
	r.cfg.Save = save
	r.cfg.StatsText = statsText
	r.cfg.Counters = counters
}

// NewWindow creates a bounded trace window owned by the recorder and
// returns its tracer for attachment to a core/chip config. name labels the
// window in the bundle ("core0", "ocn").
func (r *Recorder) NewWindow(name string) *obs.Tracer {
	tr := obs.NewTracer(r.cfg.WindowCap)
	r.windows = append(r.windows, window{name: name, tr: tr})
	return tr
}

// ObserveWindow registers an existing tracer (e.g. the -trace tracer the
// run already carries) as a named window, so dumps include it without a
// second ring.
func (r *Recorder) ObserveWindow(name string, tr *obs.Tracer) {
	if tr == nil {
		return
	}
	r.windows = append(r.windows, window{name: name, tr: tr})
}

// Windows returns the registered window tracers keyed by name.
func (r *Recorder) Windows() map[string]*obs.Tracer {
	m := make(map[string]*obs.Tracer, len(r.windows))
	for _, w := range r.windows {
		m[w.name] = w.tr
	}
	return m
}

// checkpointTarget is satisfied by *proc.Core and *chip.Chip.
type checkpointTarget interface {
	SetCheckpointHook(at int64, fn func(cycle int64) error)
}

// Arm installs a self-re-arming rolling-checkpoint hook on m: the first
// capture lands on the first block-commit boundary past from+Interval, and
// each capture re-arms the hook Interval cycles ahead. Requires cfg.Save.
func (r *Recorder) Arm(m checkpointTarget, from int64) {
	if r.cfg.Save == nil {
		return
	}
	var fire func(cycle int64) error
	fire = func(cycle int64) error {
		if err := r.Capture(cycle); err != nil {
			return err
		}
		m.SetCheckpointHook(cycle+r.cfg.Interval, fire)
		return nil
	}
	m.SetCheckpointHook(from+r.cfg.Interval, fire)
}

// Capture writes a checkpoint frame into the next ring slot, evicting the
// oldest once the ring is full. The slot's buffer is recycled, so once the
// ring has lapped, captures allocate only what the machine saver itself
// appends beyond the largest frame seen so far.
func (r *Recorder) Capture(cycle int64) error {
	if r.cfg.Save == nil {
		return fmt.Errorf("flight: recorder has no machine saver")
	}
	f := &r.frames[r.captures%uint64(len(r.frames))]
	f.w.Reset()
	if err := r.cfg.Save(&f.w); err != nil {
		f.valid = false
		return fmt.Errorf("flight: capture at cycle %d: %w", cycle, err)
	}
	f.cycle = cycle
	f.valid = true
	r.captures++
	return nil
}

// CheckpointsHeld reports how many valid frames the ring currently holds.
func (r *Recorder) CheckpointsHeld() int {
	n := 0
	for i := range r.frames {
		if r.frames[i].valid {
			n++
		}
	}
	return n
}

// Captures reports the total number of checkpoint captures ever taken.
func (r *Recorder) Captures() uint64 { return r.captures }

// RingBytes reports the memory bound actually in use by the ring: the sum
// of slot buffer capacities.
func (r *Recorder) RingBytes() int {
	n := 0
	for i := range r.frames {
		n += cap(r.frames[i].w.Payload())
	}
	return n
}

// WindowEvents reports the total events currently retained across windows.
func (r *Recorder) WindowEvents() int {
	n := 0
	for _, w := range r.windows {
		n += len(w.tr.Events())
	}
	return n
}

// Dumps reports how many bundles this recorder has written.
func (r *Recorder) Dumps() uint64 { return r.dumps }

// LastDump returns the directory of the most recent bundle ("" if none).
func (r *Recorder) LastDump() string { return r.lastDump }

// NearestBefore returns the held frame with the largest capture cycle not
// after the given cycle — the restore point a replay of the window around
// `cycle` wants. When every held frame is later (the event predates the
// ring), the earliest held frame is returned as the best available.
func (r *Recorder) NearestBefore(cycle int64) (frameCycle int64, payload []byte, ok bool) {
	bestBefore, earliest := -1, -1
	for i := range r.frames {
		f := &r.frames[i]
		if !f.valid {
			continue
		}
		if f.cycle <= cycle && (bestBefore < 0 || f.cycle > r.frames[bestBefore].cycle) {
			bestBefore = i
		}
		if earliest < 0 || f.cycle < r.frames[earliest].cycle {
			earliest = i
		}
	}
	pick := bestBefore
	if pick < 0 {
		pick = earliest
	}
	if pick < 0 {
		return 0, nil, false
	}
	return r.frames[pick].cycle, r.frames[pick].w.Payload(), true
}

// Dump atomically writes a bundle into cfg.Dir and returns its directory.
// trigger classifies the cause (TriggerPanic, "block=12", ...), reason
// carries the human detail (panic message, error text), and cycle is the
// simulated cycle at which the trigger fired (the nearest-prior checkpoint
// is chosen against it). The bundle is staged in a hidden temp directory
// and renamed into place, so readers never see a partial bundle.
func (r *Recorder) Dump(trigger, reason string, cycle int64) (string, error) {
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	base := fmt.Sprintf("%s-%s-c%d", r.cfg.Name, sanitize(trigger), cycle)
	final := filepath.Join(r.cfg.Dir, base)
	for i := 2; ; i++ {
		if _, err := os.Stat(final); os.IsNotExist(err) {
			break
		}
		final = filepath.Join(r.cfg.Dir, fmt.Sprintf("%s-%d", base, i))
	}
	tmp := filepath.Join(r.cfg.Dir, ".tmp-"+filepath.Base(final))
	if err := os.RemoveAll(tmp); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	if err := r.writeBundle(tmp, trigger, reason, cycle); err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return "", fmt.Errorf("flight: %w", err)
	}
	r.dumps++
	r.lastDump = final
	return final, nil
}

// counters merges the recorder's own state, the ckpt package counters, and
// the caller-provided extras into one manifest snapshot.
func (r *Recorder) counters() map[string]uint64 {
	m := map[string]uint64{
		"flight.checkpoints_held": uint64(r.CheckpointsHeld()),
		"flight.captures":         r.captures,
		"flight.ring_bytes":       uint64(r.RingBytes()),
		"flight.window_events":    uint64(r.WindowEvents()),
		"flight.dumps":            r.dumps,
	}
	cs := ckpt.Stats()
	m["ckpt.frames_written"] = cs.FramesWritten
	m["ckpt.bytes_written"] = cs.BytesWritten
	m["ckpt.frames_read"] = cs.FramesRead
	m["ckpt.bytes_read"] = cs.BytesRead
	m["ckpt.hash_checks"] = cs.HashChecks
	m["ckpt.hash_failures"] = cs.HashFailures
	if r.cfg.Counters != nil {
		for k, v := range r.cfg.Counters() {
			m[k] = v
		}
	}
	return m
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "trigger"
	}
	return string(out)
}
