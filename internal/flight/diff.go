package flight

import (
	"fmt"
	"sort"

	"trips/internal/obs"
)

// Trace windows from different runs of the same simulation are bit-identical
// in every protocol observable, but two emission artifacts leak host-side
// state into the raw streams:
//
//   - Message trace ids: the tracer's id allocator restarts at 1 in a
//     restored run while in-flight messages keep their checkpointed ids, so
//     the same flow can carry different Seq values in two otherwise
//     identical windows.
//   - Intra-cycle order: all events within one cycle describe simultaneous
//     micronet activity, and the order the routers happen to be visited in
//     (event-wheel bucket order, channel iteration) is not preserved across
//     checkpoint/restore even though every simulated observable is.
//
// Comparison therefore canonicalizes both: events are sorted within each
// cycle by their protocol content, and net-event ids are remapped densely by
// order of first canonical appearance. After that, two windows of the same
// simulated region must match event-for-event, and the first mismatch
// localizes the first divergent protocol event.

func isNetKind(k obs.Kind) bool {
	return k == obs.KindNetInject || k == obs.KindNetHop || k == obs.KindNetDeliver
}

// NormalizeFlowIDs returns a copy of evs with each net event's Seq (the
// message trace id) remapped to a dense id assigned in order of first
// appearance. Block-protocol events (whose Seq is the architectural block
// sequence number) are untouched.
func NormalizeFlowIDs(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, len(evs))
	remap := make(map[uint64]uint64)
	var next uint64
	for i, ev := range evs {
		if isNetKind(ev.Kind) {
			id, ok := remap[ev.Seq]
			if !ok {
				next++
				id = next
				remap[ev.Seq] = id
			}
			ev.Seq = id
		}
		out[i] = ev
	}
	return out
}

// WindowFrom returns the suffix of evs with Cycle >= from (events are
// emitted in nondecreasing cycle order).
func WindowFrom(evs []obs.Event, from int64) []obs.Event {
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if evs[mid].Cycle < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return evs[lo:]
}

// eventLess orders two events by protocol content. withSeq includes Seq as
// the final tiebreaker — valid only once flow ids are normalized (raw net
// Seq values are a host artifact).
func eventLess(a, b obs.Event, withSeq bool) bool {
	switch {
	case a.Cycle != b.Cycle:
		return a.Cycle < b.Cycle
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Net != b.Net:
		return a.Net < b.Net
	case a.Addr != b.Addr:
		return a.Addr < b.Addr
	case a.Arg != b.Arg:
		return a.Arg < b.Arg
	case a.Slot != b.Slot:
		return a.Slot < b.Slot
	case a.Cat != b.Cat:
		return a.Cat < b.Cat
	}
	if withSeq {
		return a.Seq < b.Seq
	}
	return false
}

// Canonicalize returns a copy of evs in comparison-canonical form: events
// sorted within each cycle by protocol content, and net-event flow ids
// remapped densely by first canonical appearance. Two windows of the same
// simulated region canonicalize to equal sequences regardless of how the
// producing runs interleaved their per-cycle emissions or allocated their
// trace ids.
func Canonicalize(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, len(evs))
	copy(out, evs)
	// First pass orders by content alone so flow-id assignment below cannot
	// depend on the producer's raw ids or emission interleaving.
	sort.SliceStable(out, func(i, j int) bool { return eventLess(out[i], out[j], false) })
	out = NormalizeFlowIDs(out)
	// Second pass breaks content ties by the now-normalized flow id.
	sort.SliceStable(out, func(i, j int) bool { return eventLess(out[i], out[j], true) })
	return out
}

// Divergence reports the first event-level mismatch between two windows.
type Divergence struct {
	Index  int        // position in the normalized sequences
	A, B   *obs.Event // the mismatched events (nil when one side ran out)
	Reason string
}

// Compare canonicalizes both windows (see Canonicalize) and returns the
// first divergence, or nil when the windows match event-for-event.
func Compare(a, b []obs.Event) *Divergence {
	na, nb := Canonicalize(a), Canonicalize(b)
	n := len(na)
	if len(nb) < n {
		n = len(nb)
	}
	for i := 0; i < n; i++ {
		if na[i] != nb[i] {
			ea, eb := na[i], nb[i]
			return &Divergence{
				Index:  i,
				A:      &ea,
				B:      &eb,
				Reason: fmt.Sprintf("event %d differs:\n  a: %s\n  b: %s", i, FormatEvent(ea), FormatEvent(eb)),
			}
		}
	}
	if len(na) != len(nb) {
		d := &Divergence{Index: n}
		if len(na) > n {
			ea := na[n]
			d.A = &ea
			d.Reason = fmt.Sprintf("a has %d extra event(s) after %d matching; first extra: %s", len(na)-n, n, FormatEvent(ea))
		} else {
			eb := nb[n]
			d.B = &eb
			d.Reason = fmt.Sprintf("b has %d extra event(s) after %d matching; first extra: %s", len(nb)-n, n, FormatEvent(eb))
		}
		return d
	}
	return nil
}

// FormatEvent renders one event for terminal diff output.
func FormatEvent(ev obs.Event) string {
	switch ev.Kind {
	case obs.KindNetInject:
		sr, sc := obs.UnpackCoord(ev.Addr)
		dr, dc := obs.UnpackCoord(ev.Arg)
		return fmt.Sprintf("cycle %d %s %s flow %d (%d,%d)->(%d,%d)", ev.Cycle, obs.NetName(ev.Net), ev.Kind, ev.Seq, sr, sc, dr, dc)
	case obs.KindNetHop, obs.KindNetDeliver:
		r, c := obs.UnpackCoord(ev.Addr)
		return fmt.Sprintf("cycle %d %s %s flow %d at (%d,%d)", ev.Cycle, obs.NetName(ev.Net), ev.Kind, ev.Seq, r, c)
	case obs.KindOperand:
		hops, waits := obs.UnpackPair(ev.Arg)
		return fmt.Sprintf("cycle %d block seq %d slot %d %s hops=%d waits=%d", ev.Cycle, ev.Seq, ev.Slot, ev.Kind, hops, waits)
	case obs.KindFlushWave:
		return fmt.Sprintf("cycle %d flush wave oldest seq %d slot-mask %#x", ev.Cycle, ev.Seq, ev.Arg)
	case obs.KindCkpt:
		return fmt.Sprintf("cycle %d ckpt %d bytes", ev.Cycle, ev.Arg)
	default:
		return fmt.Sprintf("cycle %d block %#x seq %d slot %d %s", ev.Cycle, ev.Addr, ev.Seq, ev.Slot, ev.Kind)
	}
}
