package workloads

import (
	"math"

	"trips/internal/mem"
	"trips/internal/tir"
)

// MCF models 181.mcf's network-simplex inner loop: pointer chasing through
// arc lists with cost comparisons — latency-bound, cache-unfriendly, low
// ILP.
func MCF(hand bool) *Spec {
	const nodes = 1024
	const hops = 4096
	f := tir.NewFunc("mcf")
	heap := f.NewReg()
	cur := f.NewReg()
	costSum := f.NewReg()
	improved := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: costSum, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: improved, Imm: 0})
	// Node record: [next(8) cost(8)] = 16 bytes.
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("chase")
	entry.Jump(loop)
	rec := loop.OpI(f, tir.ShlI, cur, 4)
	p := loop.Op(f, tir.Add, heap, rec)
	next := loop.Load(f, p, 0, 8, false)
	cost := loop.Load(f, p, 8, 8, false)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: costSum, A: costSum, B: cost})
	c := loop.OpI(f, tir.SetLTI, cost, 100)
	imp := f.NewBB("improve")
	join := f.NewBB("join")
	loop.Branch(c, imp, join)
	imp.Emit(tir.Inst{Op: tir.AddI, Dst: improved, A: improved, Imm: 1})
	imp.Jump(join)
	join.Emit(tir.Inst{Op: tir.Mov, Dst: cur, A: next})
	join.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, iReg, hops)
	done := f.NewBB("done")
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(costSum, improved, cur)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{heap: baseA, cur: 0},
		SetupMem: func(m *mem.Memory) {
			l := lcg(61)
			for i := 0; i < nodes; i++ {
				m.Write(baseA+uint64(i)*16, 8, uint64(l.intn(nodes)))
				m.Write(baseA+uint64(i)*16+8, 8, uint64(l.intn(300)))
			}
		},
		Outputs: []tir.Reg{costSum, improved, cur},
	}
}

// Parser models 197.parser's dictionary matching: nested scan loops with
// early exits over variable-length byte strings — very branchy, irregular.
func Parser(hand bool) *Spec {
	const words = 128
	const wlen = 16
	const queries = 96
	f := tir.NewFunc("parser")
	dict := f.NewReg()
	qs := f.NewReg()
	found := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: found, Imm: 0})
	qReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: qReg, Imm: 0})
	qLoop := f.NewBB("q")
	entry.Jump(qLoop)
	qOff := qLoop.OpI(f, tir.MulI, qReg, wlen)
	pq := qLoop.Op(f, tir.Add, qs, qOff)
	wReg := f.NewReg()
	qLoop.Emit(tir.Inst{Op: tir.ConstI, Dst: wReg, Imm: 0})
	wLoop := f.NewBB("w")
	qLoop.Jump(wLoop)
	// Compare 16 bytes as two 8-byte words; mismatch -> next word.
	wOff := wLoop.OpI(f, tir.MulI, wReg, wlen)
	pw := wLoop.Op(f, tir.Add, dict, wOff)
	q0 := wLoop.Load(f, pq, 0, 8, false)
	q1 := wLoop.Load(f, pq, 8, 8, false)
	d0 := wLoop.Load(f, pw, 0, 8, false)
	d1 := wLoop.Load(f, pw, 8, 8, false)
	x0 := wLoop.Op(f, tir.Xor, q0, d0)
	x1 := wLoop.Op(f, tir.Xor, q1, d1)
	diff := wLoop.Op(f, tir.Or, x0, x1)
	isMatch := wLoop.OpI(f, tir.SetEQI, diff, 0)
	hit := f.NewBB("hit")
	miss := f.NewBB("miss")
	wLoop.Branch(isMatch, hit, miss)
	hit.Emit(tir.Inst{Op: tir.AddI, Dst: found, A: found, Imm: 1})
	qTail := f.NewBB("qtail")
	hit.Jump(qTail)
	miss.Emit(tir.Inst{Op: tir.AddI, Dst: wReg, A: wReg, Imm: 1})
	mc := miss.OpI(f, tir.SetLTI, wReg, words)
	miss.Branch(mc, wLoop, qTail)
	qTail.Emit(tir.Inst{Op: tir.AddI, Dst: qReg, A: qReg, Imm: 1})
	qc := qTail.OpI(f, tir.SetLTI, qReg, queries)
	done := f.NewBB("done")
	qTail.Branch(qc, qLoop, done)
	done.Ret()
	f.Keep(found)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{dict: baseA, qs: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(67)
			for i := 0; i < words; i++ {
				m.Write(baseA+uint64(i*wlen), 8, l.next())
				m.Write(baseA+uint64(i*wlen)+8, 8, l.next())
			}
			// Queries: half present in the dictionary, half absent.
			l2 := lcg(67)
			vals := make([][2]uint64, words)
			for i := 0; i < words; i++ {
				vals[i] = [2]uint64{l2.next(), l2.next()}
			}
			l3 := lcg(71)
			for i := 0; i < queries; i++ {
				if i%2 == 0 {
					w := vals[l3.intn(words)]
					m.Write(baseB+uint64(i*wlen), 8, w[0])
					m.Write(baseB+uint64(i*wlen)+8, 8, w[1])
				} else {
					m.Write(baseB+uint64(i*wlen), 8, l3.next())
					m.Write(baseB+uint64(i*wlen)+8, 8, l3.next())
				}
			}
		},
		Outputs: []tir.Reg{found},
	}
}

// BZip2 models 256.bzip2's entropy-front-end: a byte histogram plus a
// move-to-front pass — byte loads and data-dependent updates.
func BZip2(hand bool) *Spec {
	const n = 3072
	f := tir.NewFunc("bzip2")
	data := f.NewReg()
	hist := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	h1 := counted(f, "hist", entry, n, 1, func(bb *tir.BB, i tir.Reg) {
		p := bb.Op(f, tir.Add, data, i)
		b := bb.Load(f, p, 0, 1, false)
		hOff := bb.OpI(f, tir.ShlI, b, 3)
		ph := bb.Op(f, tir.Add, hist, hOff)
		cnt := bb.Load(f, ph, 0, 8, false)
		inc := bb.OpI(f, tir.AddI, cnt, 1)
		bb.Store(ph, 0, inc, 8)
	})
	// Weighted checksum over the histogram.
	done := counted(f, "sum", h1, 256, 1, func(bb *tir.BB, i tir.Reg) {
		hOff := bb.OpI(f, tir.ShlI, i, 3)
		ph := bb.Op(f, tir.Add, hist, hOff)
		cnt := bb.Load(f, ph, 0, 8, false)
		w := bb.Op(f, tir.Mul, cnt, i)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: w})
	})
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{data: baseA, hist: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(73)
			for i := 0; i < n; i++ {
				m.Write(baseA+uint64(i), 1, uint64(l.intn(200)))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// Twolf models 300.twolf's placement-swap evaluation: load two cells'
// coordinates, compute the wire-length delta, and conditionally accept.
func Twolf(hand bool) *Spec {
	const cells = 512
	const swaps = 1024
	f := tir.NewFunc("twolf")
	cellsR := f.NewReg()
	seed := f.NewReg()
	accepted := f.NewReg()
	wire := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: accepted, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: wire, Imm: 100000})
	lcgA := entry.Const(f, 1103515245)
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("swap")
	entry.Jump(loop)
	t := loop.Op(f, tir.Mul, seed, lcgA)
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: seed, A: t, Imm: 12345})
	r1 := loop.OpI(f, tir.ShrI, seed, 16)
	i1 := loop.OpI(f, tir.AndI, r1, cells-1)
	r2 := loop.OpI(f, tir.ShrI, seed, 32)
	i2 := loop.OpI(f, tir.AndI, r2, cells-1)
	o1 := loop.OpI(f, tir.ShlI, i1, 4)
	o2 := loop.OpI(f, tir.ShlI, i2, 4)
	p1 := loop.Op(f, tir.Add, cellsR, o1)
	p2 := loop.Op(f, tir.Add, cellsR, o2)
	x1 := loop.Load(f, p1, 0, 8, false)
	y1 := loop.Load(f, p1, 8, 8, false)
	x2 := loop.Load(f, p2, 0, 8, false)
	y2 := loop.Load(f, p2, 8, 8, false)
	dx := loop.Op(f, tir.Sub, x1, x2)
	dy := loop.Op(f, tir.Sub, y1, y2)
	zero := loop.Const(f, 0)
	ndx := loop.Op(f, tir.Sub, zero, dx)
	ady := loop.Op(f, tir.Sub, zero, dy)
	adx := loop.Op(f, tir.Max, dx, ndx)
	ady2 := loop.Op(f, tir.Max, dy, ady)
	delta := loop.Op(f, tir.Add, adx, ady2)
	c := loop.OpI(f, tir.SetLTI, delta, 200)
	acc := f.NewBB("accept")
	join := f.NewBB("join")
	loop.Branch(c, acc, join)
	// Accept: swap the two cells' x coordinates and shorten the wire.
	acc.Store(p1, 0, x2, 8)
	acc.Store(p2, 0, x1, 8)
	acc.Emit(tir.Inst{Op: tir.AddI, Dst: accepted, A: accepted, Imm: 1})
	acc.Emit(tir.Inst{Op: tir.Sub, Dst: wire, A: wire, B: delta})
	acc.Jump(join)
	join.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, iReg, swaps)
	done := f.NewBB("done")
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(accepted, wire)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{cellsR: baseA, seed: 7},
		SetupMem: func(m *mem.Memory) {
			l := lcg(79)
			for i := 0; i < cells; i++ {
				m.Write(baseA+uint64(i)*16, 8, uint64(l.intn(1000)))
				m.Write(baseA+uint64(i)*16+8, 8, uint64(l.intn(1000)))
			}
		},
		Outputs: []tir.Reg{accepted, wire},
	}
}

// MGrid models 172.mgrid's smoother: a 7-point 3-D stencil sweep over a
// grid — FP streaming with high spatial locality.
func MGrid(hand bool) *Spec {
	const dim = 12 // dim^3 grid
	f := tir.NewFunc("mgrid")
	grid := f.NewReg()
	out := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	w0 := entry.Const(f, fbits(0.5))
	w1 := entry.Const(f, fbits(1.0/12))
	const plane = dim * dim
	// Iterate interior points linearly; neighbors at +-1, +-dim, +-plane.
	total := int64((dim - 2) * (dim - 2) * (dim - 2))
	innerDim := int64(dim - 2)
	done := counted(f, "pt", entry, total, 1, func(bb *tir.BB, i tir.Reg) {
		// Decompose i -> (x, y, z) over the interior.
		z := bb.Op(f, tir.Div, i, bb.Const(f, innerDim*innerDim))
		rem := bb.Op(f, tir.Mod, i, bb.Const(f, innerDim*innerDim))
		y := bb.Op(f, tir.Div, rem, bb.Const(f, innerDim))
		x := bb.Op(f, tir.Mod, rem, bb.Const(f, innerDim))
		x1 := bb.OpI(f, tir.AddI, x, 1)
		y1 := bb.OpI(f, tir.AddI, y, 1)
		z1 := bb.OpI(f, tir.AddI, z, 1)
		zp := bb.OpI(f, tir.MulI, z1, plane)
		yp := bb.OpI(f, tir.MulI, y1, dim)
		idx := bb.Op(f, tir.Add, zp, yp)
		idx2 := bb.Op(f, tir.Add, idx, x1)
		off := bb.OpI(f, tir.ShlI, idx2, 3)
		p := bb.Op(f, tir.Add, grid, off)
		cv := bb.Load(f, p, 0, 8, false)
		n1 := bb.Load(f, p, 8, 8, false)
		n2 := bb.Load(f, p, -8, 8, false)
		n3 := bb.Load(f, p, dim*8, 8, false)
		n4 := bb.Load(f, p, -dim*8, 8, false)
		n5 := bb.Load(f, p, plane*8, 8, false)
		n6 := bb.Load(f, p, -plane*8, 8, false)
		s1 := bb.Op(f, tir.FAdd, n1, n2)
		s2 := bb.Op(f, tir.FAdd, n3, n4)
		s3 := bb.Op(f, tir.FAdd, n5, n6)
		s12 := bb.Op(f, tir.FAdd, s1, s2)
		sn := bb.Op(f, tir.FAdd, s12, s3)
		wc := bb.Op(f, tir.FMul, cv, w0)
		wn := bb.Op(f, tir.FMul, sn, w1)
		res := bb.Op(f, tir.FAdd, wc, wn)
		po := bb.Op(f, tir.Add, out, off)
		bb.Store(po, 0, res, 8)
		ri := bb.Op(f, tir.FToI, res, 0)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: ri})
	})
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{grid: baseA, out: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(83)
			for i := 0; i < dim*dim*dim; i++ {
				m.Write(baseA+uint64(i)*8, 8, math.Float64bits(float64(l.intn(64))))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}
