// Package workloads implements the paper's benchmark suite (Section 5.4) in
// TIR: the microbenchmarks (dct8x8, matrix, sha, vadd), the signal
// processing kernels (cfar, conv, ct, genalg, pm, qr, svd), the EEMBC-class
// programs (a2time01, bezier02, basefp01, rspeed01, tblook01), and
// SPEC-class fragments (181.mcf, 197.parser, 256.bzip2, 300.twolf,
// 172.mgrid). The originals are proprietary or toolchain-bound, so each is
// re-implemented with the same dataflow character — serial chains for sha,
// streaming for vadd/conv, blocked arithmetic for dct/matrix, pointer
// chasing for mcf, and so on — which is what the paper's evaluation
// actually exercises (see DESIGN.md's substitution table).
package workloads

import (
	"fmt"

	"trips/internal/mem"
	"trips/internal/tir"
)

// Spec is one runnable benchmark instance.
type Spec struct {
	F *tir.Func
	// Init preloads virtual registers.
	Init map[tir.Reg]uint64
	// SetupMem initializes the data segment.
	SetupMem func(*mem.Memory)
	// Outputs are registers whose final values verify the run (also
	// marked Keep on F).
	Outputs []tir.Reg
}

// Workload is a named benchmark generator. hand selects the hand-optimized
// shape (more unrolling), mirroring the paper's hand-optimized codes.
type Workload struct {
	Name  string
	Class string // "micro", "kernel", "eembc", "spec"
	Build func(hand bool) *Spec
}

// All returns the full 21-benchmark suite in the paper's Table 3 order.
func All() []Workload {
	return []Workload{
		{"dct8x8", "micro", DCT8x8},
		{"matrix", "micro", Matrix},
		{"sha", "micro", SHA},
		{"vadd", "micro", VAdd},
		{"cfar", "kernel", CFAR},
		{"conv", "kernel", Conv},
		{"ct", "kernel", CT},
		{"genalg", "kernel", GenAlg},
		{"pm", "kernel", PM},
		{"qr", "kernel", QR},
		{"svd", "kernel", SVD},
		{"a2time01", "eembc", A2Time01},
		{"bezier02", "eembc", Bezier02},
		{"basefp01", "eembc", BaseFP01},
		{"rspeed01", "eembc", RSpeed01},
		{"tblook01", "eembc", TBLook01},
		{"181.mcf", "spec", MCF},
		{"197.parser", "spec", Parser},
		{"256.bzip2", "spec", BZip2},
		{"300.twolf", "spec", Twolf},
		{"172.mgrid", "spec", MGrid},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Data-segment base addresses. Kept well away from code (tcc lays code at
// 0x10000 upward) and spread so streams hit all four DT banks.
const (
	baseA = 0x10_0000
	baseB = 0x18_0000
	baseC = 0x20_0000
	baseD = 0x28_0000
)

// counted builds the canonical counted loop: for i = 0; i < n; i += step.
// body emits the loop body given (block, i). Returns the exit block.
func counted(f *tir.Func, label string, entry *tir.BB, n int64, step int64, body func(b *tir.BB, i tir.Reg)) *tir.BB {
	i := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	loop := f.NewBB(label)
	done := f.NewBB(label + ".done")
	entry.Jump(loop)
	body(loop, i)
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: step})
	c := loop.OpI(f, tir.SetLTI, i, n)
	loop.Branch(c, loop, done)
	return done
}

// lcg seeds a deterministic pseudo-random sequence for data generation on
// the host side.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 17
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// fillWords writes n 8-byte pseudo-random words at base.
func fillWords(m *mem.Memory, base uint64, n int, seed uint64) {
	l := lcg(seed)
	for i := 0; i < n; i++ {
		m.Write(base+uint64(i)*8, 8, l.next()%1_000_000)
	}
}
