package workloads

import (
	"math"

	"trips/internal/mem"
	"trips/internal/tir"
)

// A2Time01 models the EEMBC automotive angle-to-time kernel: per-sample
// table indexing, scaling arithmetic and range conditionals.
func A2Time01(hand bool) *Spec {
	const n = 512
	f := tir.NewFunc("a2time01")
	samples := f.NewReg()
	table := f.NewReg()
	outSum := f.NewReg()
	alarms := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: outSum, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: alarms, Imm: 0})
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("loop")
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, iReg, 3)
	ps := loop.Op(f, tir.Add, samples, off)
	angle := loop.Load(f, ps, 0, 8, false)
	// tooth = angle / 60 (via multiply-shift), index the timing table
	scaled := loop.OpI(f, tir.MulI, angle, 17476) // ~2^20/60
	tooth := loop.OpI(f, tir.ShrI, scaled, 20)
	ti := loop.OpI(f, tir.AndI, tooth, 63)
	toff := loop.OpI(f, tir.ShlI, ti, 3)
	pt := loop.Op(f, tir.Add, table, toff)
	base := loop.Load(f, pt, 0, 8, false)
	rem := loop.OpI(f, tir.AndI, angle, 59)
	adj := loop.OpI(f, tir.MulI, rem, 7)
	t := loop.Op(f, tir.Add, base, adj)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: outSum, A: outSum, B: t})
	// Alarm when the computed time exceeds a bound.
	c := loop.OpI(f, tir.SetGEI, t, 6000)
	alarm := f.NewBB("alarm")
	join := f.NewBB("join")
	loop.Branch(c, alarm, join)
	alarm.Emit(tir.Inst{Op: tir.AddI, Dst: alarms, A: alarms, Imm: 1})
	alarm.Jump(join)
	join.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, iReg, n)
	done := f.NewBB("done")
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(outSum, alarms)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{samples: baseA, table: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(41)
			for i := 0; i < n; i++ {
				m.Write(baseA+uint64(i)*8, 8, uint64(l.intn(3600)))
			}
			for i := 0; i < 64; i++ {
				m.Write(baseB+uint64(i)*8, 8, uint64(i*90))
			}
		},
		Outputs: []tir.Reg{outSum, alarms},
	}
}

// Bezier02 evaluates cubic Bezier curve points: dense FP polynomial
// arithmetic per parameter step.
func Bezier02(hand bool) *Spec {
	const steps = 256
	f := tir.NewFunc("bezier02")
	ctrl := f.NewReg()
	out := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	one := entry.Const(f, fbits(1.0))
	dt := entry.Const(f, fbits(1.0/steps))
	tReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: tReg, Imm: fbits(0)})
	done := counted(f, "step", entry, steps, 1, func(bb *tir.BB, i tir.Reg) {
		p0 := bb.Load(f, ctrl, 0, 8, false)
		p1 := bb.Load(f, ctrl, 8, 8, false)
		p2 := bb.Load(f, ctrl, 16, 8, false)
		p3 := bb.Load(f, ctrl, 24, 8, false)
		u := bb.Op(f, tir.FSub, one, tReg)
		uu := bb.Op(f, tir.FMul, u, u)
		uuu := bb.Op(f, tir.FMul, uu, u)
		tt := bb.Op(f, tir.FMul, tReg, tReg)
		ttt := bb.Op(f, tir.FMul, tt, tReg)
		a := bb.Op(f, tir.FMul, uuu, p0)
		b3 := bb.Op(f, tir.FMul, uu, tReg)
		b := bb.Op(f, tir.FMul, b3, p1)
		c3 := bb.Op(f, tir.FMul, u, tt)
		c := bb.Op(f, tir.FMul, c3, p2)
		d := bb.Op(f, tir.FMul, ttt, p3)
		ab := bb.Op(f, tir.FAdd, a, b)
		abc := bb.Op(f, tir.FAdd, ab, b)
		abc2 := bb.Op(f, tir.FAdd, abc, c)
		abcd := bb.Op(f, tir.FAdd, abc2, c)
		pt := bb.Op(f, tir.FAdd, abcd, d)
		ooff := bb.OpI(f, tir.ShlI, i, 3)
		po := bb.Op(f, tir.Add, out, ooff)
		bb.Store(po, 0, pt, 8)
		pi := bb.Op(f, tir.FToI, pt, 0)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: pi})
		bb.Emit(tir.Inst{Op: tir.FAdd, Dst: tReg, A: tReg, B: dt})
	})
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{ctrl: baseA, out: baseB},
		SetupMem: func(m *mem.Memory) {
			for i, v := range []float64{10, 200, 50, 300} {
				m.Write(baseA+uint64(i)*8, 8, math.Float64bits(v))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// BaseFP01 is the EEMBC basic floating point mix: alternating adds,
// multiplies and accumulations over an array.
func BaseFP01(hand bool) *Spec {
	const n = 512
	f := tir.NewFunc("basefp01")
	x := f.NewReg()
	accA := f.NewReg()
	accM := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: accA, Imm: fbits(0)})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: accM, Imm: fbits(1.0)})
	half := entry.Const(f, fbits(0.5))
	unroll := int64(1)
	if hand {
		unroll = 4
	}
	done := counted(f, "i", entry, n, unroll, func(bb *tir.BB, i tir.Reg) {
		off := bb.OpI(f, tir.ShlI, i, 3)
		p := bb.Op(f, tir.Add, x, off)
		for u := int64(0); u < unroll; u++ {
			v := bb.Load(f, p, u*8, 8, false)
			s := bb.Op(f, tir.FMul, v, half)
			bb.Emit(tir.Inst{Op: tir.FAdd, Dst: accA, A: accA, B: s})
			m1 := bb.Op(f, tir.FAdd, s, half)
			bb.Emit(tir.Inst{Op: tir.FMul, Dst: accM, A: accM, B: m1})
		}
	})
	chkA := done.Op(f, tir.FToI, accA, 0)
	chk := f.NewReg()
	done.Emit(tir.Inst{Op: tir.Mov, Dst: chk, A: chkA})
	done.Ret()
	f.Keep(chk)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{x: baseA},
		SetupMem: func(m *mem.Memory) {
			l := lcg(47)
			for i := 0; i < n; i++ {
				m.Write(baseA+uint64(i)*8, 8, math.Float64bits(float64(l.intn(100))/64+0.5))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// RSpeed01 models the EEMBC road speed calculation: pulse-interval deltas,
// integer division, and hysteresis conditionals.
func RSpeed01(hand bool) *Spec {
	const n = 256
	f := tir.NewFunc("rspeed01")
	pulses := f.NewReg()
	speedSum := f.NewReg()
	shifts := f.NewReg()
	prevSpeed := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: speedSum, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: shifts, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: prevSpeed, Imm: 0})
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("loop")
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, iReg, 3)
	p := loop.Op(f, tir.Add, pulses, off)
	t0 := loop.Load(f, p, 0, 8, false)
	t1 := loop.Load(f, p, 8, 8, false)
	dt := loop.Op(f, tir.Sub, t1, t0)
	k := loop.Const(f, 360000)
	speed := loop.Op(f, tir.Div, k, dt)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: speedSum, A: speedSum, B: speed})
	// Gear-shift hysteresis: count threshold crossings.
	dlt := loop.Op(f, tir.Sub, speed, prevSpeed)
	zero := loop.Const(f, 0)
	neg := loop.Op(f, tir.Sub, zero, dlt)
	mag := loop.Op(f, tir.Max, dlt, neg)
	c := loop.OpI(f, tir.SetGEI, mag, 50)
	shift := f.NewBB("shift")
	join := f.NewBB("join")
	loop.Branch(c, shift, join)
	shift.Emit(tir.Inst{Op: tir.AddI, Dst: shifts, A: shifts, Imm: 1})
	shift.Jump(join)
	join.Emit(tir.Inst{Op: tir.Mov, Dst: prevSpeed, A: speed})
	join.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, iReg, n)
	done := f.NewBB("done")
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(speedSum, shifts)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{pulses: baseA},
		SetupMem: func(m *mem.Memory) {
			l := lcg(53)
			t := uint64(1000)
			for i := 0; i < n+1; i++ {
				m.Write(baseA+uint64(i)*8, 8, t)
				t += uint64(100 + l.intn(900))
			}
		},
		Outputs: []tir.Reg{speedSum, shifts},
	}
}

// TBLook01 is the EEMBC table-lookup-and-interpolation kernel: a short
// binary search followed by linear interpolation — branchy with
// data-dependent control.
func TBLook01(hand bool) *Spec {
	const n, tsize = 384, 64
	f := tir.NewFunc("tblook01")
	keysR := f.NewReg()
	tkeys := f.NewReg()
	tvals := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("loop")
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, iReg, 3)
	pk := loop.Op(f, tir.Add, keysR, off)
	key := loop.Load(f, pk, 0, 8, false)
	// Six binary-search refinement steps (unrolled, branch-free compare:
	// idx = idx + step * (tkeys[idx+step] <= key)).
	idx := loop.Const(f, 0)
	for step := int64(tsize / 2); step >= 1; step /= 2 {
		probe := loop.OpI(f, tir.AddI, idx, step)
		pOff := loop.OpI(f, tir.ShlI, probe, 3)
		pp := loop.Op(f, tir.Add, tkeys, pOff)
		tv := loop.Load(f, pp, 0, 8, false)
		le := loop.Op(f, tir.SetGEU, key, tv)
		stepv := loop.OpI(f, tir.MulI, le, step)
		idx = loop.Op(f, tir.Add, idx, stepv)
	}
	// Interpolate between idx and idx+1.
	iOff := loop.OpI(f, tir.ShlI, idx, 3)
	pv := loop.Op(f, tir.Add, tvals, iOff)
	v0 := loop.Load(f, pv, 0, 8, false)
	v1 := loop.Load(f, pv, 8, 8, false)
	pk2 := loop.Op(f, tir.Add, tkeys, iOff)
	k0 := loop.Load(f, pk2, 0, 8, false)
	frac := loop.Op(f, tir.Sub, key, k0)
	fr := loop.OpI(f, tir.AndI, frac, 63)
	dv := loop.Op(f, tir.Sub, v1, v0)
	adj := loop.Op(f, tir.Mul, dv, fr)
	adj2 := loop.OpI(f, tir.SraI, adj, 6)
	val := loop.Op(f, tir.Add, v0, adj2)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: val})
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := loop.OpI(f, tir.SetLTI, iReg, n)
	done := f.NewBB("done")
	loop.Branch(cc, loop, done)
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{keysR: baseA, tkeys: baseB, tvals: baseC},
		SetupMem: func(m *mem.Memory) {
			l := lcg(59)
			for i := 0; i < n; i++ {
				m.Write(baseA+uint64(i)*8, 8, uint64(l.intn(4000)))
			}
			for i := 0; i < tsize+1; i++ {
				m.Write(baseB+uint64(i)*8, 8, uint64(i*64))
				m.Write(baseC+uint64(i)*8, 8, uint64(i*i+7))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}
