package workloads_test

import (
	"testing"

	"trips/internal/eval"
	"trips/internal/workloads"
)

// TestAllWorkloadsVerify cross-checks every benchmark on the golden
// interpreter, the TRIPS core (both compilation modes) and the Alpha
// baseline. This is the repository's heaviest integration test.
func TestAllWorkloadsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload verification is slow")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			if err := eval.Verify(w); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	all := workloads.All()
	if len(all) != 21 {
		t.Fatalf("suite has %d benchmarks, want the paper's 21", len(all))
	}
	classes := map[string]int{}
	for _, w := range all {
		classes[w.Class]++
		if _, err := workloads.ByName(w.Name); err != nil {
			t.Errorf("ByName(%q): %v", w.Name, err)
		}
	}
	want := map[string]int{"micro": 4, "kernel": 7, "eembc": 5, "spec": 5}
	for c, n := range want {
		if classes[c] != n {
			t.Errorf("class %s has %d benchmarks, want %d", c, classes[c], n)
		}
	}
	if _, err := workloads.ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestSpecsBuildAndValidate(t *testing.T) {
	for _, w := range workloads.All() {
		for _, hand := range []bool{false, true} {
			spec := w.Build(hand)
			if err := spec.F.Validate(); err != nil {
				t.Errorf("%s (hand=%v): %v", w.Name, hand, err)
			}
			if len(spec.Outputs) == 0 {
				t.Errorf("%s: no declared outputs", w.Name)
			}
		}
	}
}

// TestGoldenDeterminism: the same spec built twice interprets identically.
func TestGoldenDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		s1 := w.Build(false)
		s2 := w.Build(false)
		r1, _, _, err := eval.RunGolden(s1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r2, _, _, err := eval.RunGolden(s2)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, out := range s1.Outputs {
			if r1[out] != r2[out] {
				t.Errorf("%s: nondeterministic golden output r%d", w.Name, out)
			}
		}
	}
}
