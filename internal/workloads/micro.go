package workloads

import (
	"math"

	"trips/internal/mem"
	"trips/internal/tir"
)

// VAdd is the streaming microbenchmark: c[i] = a[i] + b[i]. It is L1
// bandwidth bound, which is why the paper reports a speedup near two for
// TRIPS (four DT ports against the Alpha's two, Section 5.4).
func VAdd(hand bool) *Spec {
	const n = 2048
	f := tir.NewFunc("vadd")
	a := f.NewReg()
	b := f.NewReg()
	c := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	unroll := int64(1)
	if hand {
		unroll = 8
	}
	done := counted(f, "loop", entry, n, unroll, func(bb *tir.BB, i tir.Reg) {
		off := bb.OpI(f, tir.ShlI, i, 3)
		pa := bb.Op(f, tir.Add, a, off)
		pb := bb.Op(f, tir.Add, b, off)
		pc := bb.Op(f, tir.Add, c, off)
		for u := int64(0); u < unroll; u++ {
			va := bb.Load(f, pa, u*8, 8, false)
			vb := bb.Load(f, pb, u*8, 8, false)
			vc := bb.Op(f, tir.Add, va, vb)
			bb.Store(pc, u*8, vc, 8)
			if u == unroll-1 {
				bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: vc})
			}
		}
	})
	done.Ret()
	f.Keep(chk)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{a: baseA, b: baseB, c: baseC},
		SetupMem: func(m *mem.Memory) {
			fillWords(m, baseA, n, 1)
			fillWords(m, baseB, n, 2)
		},
		Outputs: []tir.Reg{chk},
	}
}

// Matrix multiplies two 16x16 integer matrices (row-major, 8-byte
// elements): blocked arithmetic with reuse.
func Matrix(hand bool) *Spec {
	const n = 16
	f := tir.NewFunc("matrix")
	a := f.NewReg()
	b := f.NewReg()
	c := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	// for i: for j: c[i][j] = sum_k a[i][k]*b[k][j]
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	iLoop := f.NewBB("i")
	entry.Jump(iLoop)
	jReg := f.NewReg()
	iLoop.Emit(tir.Inst{Op: tir.ConstI, Dst: jReg, Imm: 0})
	jLoop := f.NewBB("j")
	iLoop.Jump(jLoop)
	acc := f.NewReg()
	jLoop.Emit(tir.Inst{Op: tir.ConstI, Dst: acc, Imm: 0})
	kReg := f.NewReg()
	jLoop.Emit(tir.Inst{Op: tir.ConstI, Dst: kReg, Imm: 0})
	kLoop := f.NewBB("k")
	jLoop.Jump(kLoop)
	unroll := int64(1)
	if hand {
		unroll = 4
	}
	// a[i][k]: a + (i*16+k)*8 ; b[k][j]: b + (k*16+j)*8
	rowOff := kLoop.OpI(f, tir.ShlI, iReg, 7) // i*16*8
	aRow := kLoop.Op(f, tir.Add, a, rowOff)
	jOff := kLoop.OpI(f, tir.ShlI, jReg, 3)
	bCol := kLoop.Op(f, tir.Add, b, jOff)
	for u := int64(0); u < unroll; u++ {
		ku := kLoop.OpI(f, tir.AddI, kReg, u)
		kOff := kLoop.OpI(f, tir.ShlI, ku, 3)
		pa := kLoop.Op(f, tir.Add, aRow, kOff)
		va := kLoop.Load(f, pa, 0, 8, false)
		kRow := kLoop.OpI(f, tir.ShlI, ku, 7)
		pb := kLoop.Op(f, tir.Add, bCol, kRow)
		vb := kLoop.Load(f, pb, 0, 8, false)
		prod := kLoop.Op(f, tir.Mul, va, vb)
		kLoop.Emit(tir.Inst{Op: tir.Add, Dst: acc, A: acc, B: prod})
	}
	kLoop.Emit(tir.Inst{Op: tir.AddI, Dst: kReg, A: kReg, Imm: unroll})
	kc := kLoop.OpI(f, tir.SetLTI, kReg, n)
	jTail := f.NewBB("jtail")
	kLoop.Branch(kc, kLoop, jTail)
	// c[i][j] = acc
	rowOff2 := jTail.OpI(f, tir.ShlI, iReg, 7)
	cRow := jTail.Op(f, tir.Add, c, rowOff2)
	jOff2 := jTail.OpI(f, tir.ShlI, jReg, 3)
	pc := jTail.Op(f, tir.Add, cRow, jOff2)
	jTail.Store(pc, 0, acc, 8)
	jTail.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: acc})
	jTail.Emit(tir.Inst{Op: tir.AddI, Dst: jReg, A: jReg, Imm: 1})
	jc := jTail.OpI(f, tir.SetLTI, jReg, n)
	iTail := f.NewBB("itail")
	jTail.Branch(jc, jLoop, iTail)
	iTail.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	ic := iTail.OpI(f, tir.SetLTI, iReg, n)
	end := f.NewBB("end")
	iTail.Branch(ic, iLoop, end)
	end.Ret()
	f.Keep(chk)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{a: baseA, b: baseB, c: baseC},
		SetupMem: func(m *mem.Memory) {
			l := lcg(7)
			for i := 0; i < n*n; i++ {
				m.Write(baseA+uint64(i)*8, 8, l.next()%1000)
				m.Write(baseB+uint64(i)*8, 8, l.next()%1000)
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// SHA is the serial microbenchmark: a strict dependence chain of rotates,
// xors and adds over message words. The paper reports a TRIPS slowdown on
// sha — "an almost entirely serial benchmark" whose tiny concurrency the
// Alpha already mines (Section 5.4).
func SHA(hand bool) *Spec {
	const rounds = 1024
	f := tir.NewFunc("sha")
	msg := f.NewReg()
	h0 := f.NewReg()
	h1 := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: h0, Imm: 0x67452301})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: h1, Imm: int64(0xefcdab89)})
	unroll := int64(1)
	if hand {
		unroll = 4
	}
	done := counted(f, "rounds", entry, rounds, unroll, func(bb *tir.BB, i tir.Reg) {
		off := bb.OpI(f, tir.AndI, i, 63)
		woff := bb.OpI(f, tir.ShlI, off, 3)
		p := bb.Op(f, tir.Add, msg, woff)
		w := bb.Load(f, p, 0, 8, false)
		for u := int64(0); u < unroll; u++ {
			// h0 = rotl(h0,5) ^ h1 + w ; h1 = rotl(h1,13) + (h0 & w)
			hi := bb.OpI(f, tir.ShlI, h0, 5)
			lo := bb.OpI(f, tir.ShrI, h0, 59)
			rot := bb.Op(f, tir.Or, hi, lo)
			x := bb.Op(f, tir.Xor, rot, h1)
			nh0 := bb.Op(f, tir.Add, x, w)
			hi2 := bb.OpI(f, tir.ShlI, h1, 13)
			lo2 := bb.OpI(f, tir.ShrI, h1, 51)
			rot2 := bb.Op(f, tir.Or, hi2, lo2)
			msk := bb.Op(f, tir.And, nh0, w)
			nh1 := bb.Op(f, tir.Add, rot2, msk)
			bb.Emit(tir.Inst{Op: tir.Mov, Dst: h0, A: nh0})
			bb.Emit(tir.Inst{Op: tir.Mov, Dst: h1, A: nh1})
		}
	})
	done.Ret()
	f.Keep(h0, h1)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{msg: baseA},
		SetupMem: func(m *mem.Memory) {
			fillWords(m, baseA, 64, 3)
		},
		Outputs: []tir.Reg{h0, h1},
	}
}

// DCT8x8 runs an 8x8 integer DCT-style butterfly transform over a sequence
// of blocks: row pass then column pass with fixed-point coefficient
// multiplies — wide per-block parallelism.
func DCT8x8(hand bool) *Spec {
	const blocks = 24
	f := tir.NewFunc("dct8x8")
	src := f.NewReg()
	dst := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	// Coefficients (scaled cos values).
	c1 := entry.Const(f, 251) // cos(pi/16)*256
	c2 := entry.Const(f, 237)
	c3 := entry.Const(f, 213)

	pass := func(bb *tir.BB, base tir.Reg, out tir.Reg, stride, elem int64) {
		// One 8-point butterfly along a row/column.
		var v [8]tir.Reg
		for k := int64(0); k < 8; k++ {
			v[k] = bb.Load(f, base, k*stride, 8, true)
		}
		s07 := bb.Op(f, tir.Add, v[0], v[7])
		d07 := bb.Op(f, tir.Sub, v[0], v[7])
		s16 := bb.Op(f, tir.Add, v[1], v[6])
		d16 := bb.Op(f, tir.Sub, v[1], v[6])
		s25 := bb.Op(f, tir.Add, v[2], v[5])
		d25 := bb.Op(f, tir.Sub, v[2], v[5])
		s34 := bb.Op(f, tir.Add, v[3], v[4])
		d34 := bb.Op(f, tir.Sub, v[3], v[4])
		e0 := bb.Op(f, tir.Add, s07, s34)
		e1 := bb.Op(f, tir.Add, s16, s25)
		o0 := bb.Op(f, tir.Mul, d07, c1)
		o1 := bb.Op(f, tir.Mul, d16, c2)
		o2 := bb.Op(f, tir.Mul, d25, c3)
		o3 := bb.OpI(f, tir.ShlI, d34, 7)
		r0 := bb.Op(f, tir.Add, e0, e1)
		r1 := bb.Op(f, tir.Sub, e0, e1)
		r2 := bb.Op(f, tir.Add, o0, o1)
		r3 := bb.Op(f, tir.Sub, o2, o3)
		r2s := bb.OpI(f, tir.SraI, r2, 8)
		r3s := bb.OpI(f, tir.SraI, r3, 8)
		outs := []tir.Reg{r0, r2s, r1, r3s, r0, r2s, r1, r3s}
		for k := int64(0); k < 8; k++ {
			bb.Store(out, k*elem, outs[k], 8)
		}
	}
	// Explicit loop: each butterfly pass gets its own TIR block so no
	// block exceeds the 32-memory-op TRIPS budget.
	i := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	p1 := f.NewBB("pass1")
	p2 := f.NewBB("pass2")
	p3 := f.NewBB("pass3")
	tail := f.NewBB("tail")
	done := f.NewBB("done")
	entry.Jump(p1)
	sb := f.NewReg()
	db := f.NewReg()
	boff := p1.OpI(f, tir.ShlI, i, 9) // 64 words * 8B per block
	p1.Emit(tir.Inst{Op: tir.Add, Dst: sb, A: src, B: boff})
	p1.Emit(tir.Inst{Op: tir.Add, Dst: db, A: dst, B: boff})
	pass(p1, sb, db, 8, 8)
	p1.Jump(p2)
	sb2 := p2.OpI(f, tir.AddI, sb, 64)
	db2 := p2.OpI(f, tir.AddI, db, 64)
	pass(p2, sb2, db2, 8, 8)
	p2.Jump(p3)
	pass(p3, sb, db, 64, 64)
	p3.Jump(tail)
	v := tail.Load(f, db, 0, 8, false)
	tail.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: v})
	tail.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	c := tail.OpI(f, tir.SetLTI, i, blocks)
	tail.Branch(c, p1, done)
	done.Ret()
	f.Keep(chk)
	_ = hand // the butterfly is already fully unrolled in both modes
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{src: baseA, dst: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(11)
			for i := 0; i < blocks*64; i++ {
				m.Write(baseA+uint64(i)*8, 8, uint64(l.intn(255)))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// fbits converts a float constant for TIR immediates.
func fbits(v float64) int64 { return int64(math.Float64bits(v)) }
