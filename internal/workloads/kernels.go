package workloads

import (
	"math"

	"trips/internal/mem"
	"trips/internal/tir"
)

// Conv is a 1-D FIR convolution: y[i] = Σ_t h[t] * x[i+t], 16 taps. Like
// vadd, it streams the L1 and benefits from TRIPS's four DT ports.
func Conv(hand bool) *Spec {
	const n, taps = 512, 12
	f := tir.NewFunc("conv")
	x := f.NewReg()
	h := f.NewReg()
	y := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	unroll := 4
	if hand {
		unroll = 8
	}
	done := counted(f, "i", entry, n, 1, func(bb *tir.BB, i tir.Reg) {
		off := bb.OpI(f, tir.ShlI, i, 3)
		px := bb.Op(f, tir.Add, x, off)
		acc := bb.Const(f, 0)
		for t0 := 0; t0 < taps; t0 += unroll {
			for u := 0; u < unroll && t0+u < taps; u++ {
				t := int64(t0 + u)
				vx := bb.Load(f, px, t*8, 8, false)
				vh := bb.Load(f, h, t*8, 8, false)
				p := bb.Op(f, tir.Mul, vx, vh)
				acc = bb.Op(f, tir.Add, acc, p)
			}
		}
		py := bb.Op(f, tir.Add, y, off)
		bb.Store(py, 0, acc, 8)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: acc})
	})
	done.Ret()
	f.Keep(chk)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{x: baseA, h: baseB, y: baseC},
		SetupMem: func(m *mem.Memory) {
			fillWords(m, baseA, n+taps, 5)
			l := lcg(6)
			for i := 0; i < taps; i++ {
				m.Write(baseB+uint64(i)*8, 8, uint64(l.intn(16)))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// CFAR is a constant-false-alarm-rate detector: a sliding noise-window sum
// with a threshold compare per cell — data-dependent branching that the
// hand-optimized mode predicates away.
func CFAR(hand bool) *Spec {
	const n, guard, win = 768, 2, 8
	f := tir.NewFunc("cfar")
	x := f.NewReg()
	hits := f.NewReg()
	sumR := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: hits, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: sumR, Imm: 0})
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	loop := f.NewBB("cell")
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, iReg, 3)
	p := loop.Op(f, tir.Add, x, off)
	cell := loop.Load(f, p, 0, 8, false)
	acc := loop.Const(f, 0)
	for k := 0; k < win; k++ {
		v := loop.Load(f, p, int64((guard+1+k)*8), 8, false)
		acc = loop.Op(f, tir.Add, acc, v)
	}
	// threshold = (windowSum / win) * 4
	avg := loop.OpI(f, tir.ShrI, acc, 3)
	thr := loop.OpI(f, tir.ShlI, avg, 2)
	c := loop.Op(f, tir.SetGT, cell, thr)
	det := f.NewBB("det")
	join := f.NewBB("join")
	loop.Branch(c, det, join)
	det.Emit(tir.Inst{Op: tir.AddI, Dst: hits, A: hits, Imm: 1})
	det.Emit(tir.Inst{Op: tir.Add, Dst: sumR, A: sumR, B: cell})
	det.Jump(join)
	join.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, iReg, n)
	done := f.NewBB("done")
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(hits, sumR)
	_ = hand // if-conversion of the detect triangle is the hand-mode win
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{x: baseA},
		SetupMem: func(m *mem.Memory) {
			l := lcg(9)
			for i := 0; i < n+guard+win+2; i++ {
				v := uint64(l.intn(100))
				if l.intn(16) == 0 {
					v += 4000 // sparse targets
				}
				m.Write(baseA+uint64(i)*8, 8, v)
			}
		},
		Outputs: []tir.Reg{hits, sumR},
	}
}

// CT is the corner turn: a blocked matrix transpose — pure memory system
// exercise with no arithmetic reuse.
func CT(hand bool) *Spec {
	const n = 48 // n x n words
	f := tir.NewFunc("ct")
	src := f.NewReg()
	dst := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	blk := int64(2)
	if hand {
		blk = 4
	}
	iReg := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: iReg, Imm: 0})
	iLoop := f.NewBB("i")
	entry.Jump(iLoop)
	jReg := f.NewReg()
	iLoop.Emit(tir.Inst{Op: tir.ConstI, Dst: jReg, Imm: 0})
	jLoop := f.NewBB("j")
	iLoop.Jump(jLoop)
	// Transpose a blk x blk tile at (i, j).
	rowOff := jLoop.OpI(f, tir.MulI, iReg, n*8)
	jOff := jLoop.OpI(f, tir.ShlI, jReg, 3)
	sBase := jLoop.Op(f, tir.Add, src, rowOff)
	sTile := jLoop.Op(f, tir.Add, sBase, jOff)
	colOff := jLoop.OpI(f, tir.MulI, jReg, n*8)
	iOff := jLoop.OpI(f, tir.ShlI, iReg, 3)
	dBase := jLoop.Op(f, tir.Add, dst, colOff)
	dTile := jLoop.Op(f, tir.Add, dBase, iOff)
	var last tir.Reg
	for a := int64(0); a < blk; a++ {
		for b := int64(0); b < blk; b++ {
			v := jLoop.Load(f, sTile, (a*n+b)*8, 8, false)
			jLoop.Store(dTile, (b*n+a)*8, v, 8)
			last = v
		}
	}
	jLoop.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: last})
	jLoop.Emit(tir.Inst{Op: tir.AddI, Dst: jReg, A: jReg, Imm: blk})
	jc := jLoop.OpI(f, tir.SetLTI, jReg, n)
	iTail := f.NewBB("itail")
	jLoop.Branch(jc, jLoop, iTail)
	iTail.Emit(tir.Inst{Op: tir.AddI, Dst: iReg, A: iReg, Imm: blk})
	ic := iTail.OpI(f, tir.SetLTI, iReg, n)
	end := f.NewBB("end")
	iTail.Branch(ic, iLoop, end)
	end.Ret()
	f.Keep(chk)
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{src: baseA, dst: baseB},
		SetupMem: func(m *mem.Memory) {
			fillWords(m, baseA, n*n, 13)
		},
		Outputs: []tir.Reg{chk},
	}
}

// GenAlg runs one tournament-selection generation of a genetic algorithm:
// fitness evaluation plus conditional winner copying (branchy, with an LCG
// onboard).
func GenAlg(hand bool) *Spec {
	const pop = 256
	f := tir.NewFunc("genalg")
	genes := f.NewReg()
	out := f.NewReg()
	seed := f.NewReg()
	best := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: best, Imm: 0})
	lcgA := entry.Const(f, 1103515245)
	done := counted(f, "ind", entry, pop, 1, func(bb *tir.BB, i tir.Reg) {
		// seed = seed*A + 12345 (data-dependent "randomness")
		t := bb.Op(f, tir.Mul, seed, lcgA)
		bb.Emit(tir.Inst{Op: tir.AddI, Dst: seed, A: t, Imm: 12345})
		r1 := bb.OpI(f, tir.ShrI, seed, 16)
		idx1 := bb.OpI(f, tir.AndI, r1, pop-1)
		r2 := bb.OpI(f, tir.ShrI, seed, 32)
		idx2 := bb.OpI(f, tir.AndI, r2, pop-1)
		o1 := bb.OpI(f, tir.ShlI, idx1, 3)
		o2 := bb.OpI(f, tir.ShlI, idx2, 3)
		p1 := bb.Op(f, tir.Add, genes, o1)
		p2 := bb.Op(f, tir.Add, genes, o2)
		g1 := bb.Load(f, p1, 0, 8, false)
		g2 := bb.Load(f, p2, 0, 8, false)
		// fitness = popcount-ish: g & 0xff + (g>>8) & 0xff
		f1a := bb.OpI(f, tir.AndI, g1, 255)
		f1b := bb.OpI(f, tir.ShrI, g1, 8)
		f1c := bb.OpI(f, tir.AndI, f1b, 255)
		fit1 := bb.Op(f, tir.Add, f1a, f1c)
		f2a := bb.OpI(f, tir.AndI, g2, 255)
		f2b := bb.OpI(f, tir.ShrI, g2, 8)
		f2c := bb.OpI(f, tir.AndI, f2b, 255)
		fit2 := bb.Op(f, tir.Add, f2a, f2c)
		// winner = fit1 > fit2 ? g1 : g2 (Min/Max keeps it block-friendly)
		cGT := bb.Op(f, tir.SetGT, fit1, fit2)
		nGT := bb.OpI(f, tir.XorI, cGT, 1)
		w1 := bb.Op(f, tir.Mul, g1, cGT)
		w2 := bb.Op(f, tir.Mul, g2, nGT)
		win := bb.Op(f, tir.Or, w1, w2)
		oOut := bb.OpI(f, tir.ShlI, i, 3)
		pOut := bb.Op(f, tir.Add, out, oOut)
		bb.Store(pOut, 0, win, 8)
		fw := bb.Op(f, tir.Max, fit1, fit2)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: best, A: best, B: fw})
	})
	done.Ret()
	f.Keep(best, seed)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{genes: baseA, out: baseB, seed: 42},
		SetupMem: func(m *mem.Memory) {
			fillWords(m, baseA, pop, 17)
		},
		Outputs: []tir.Reg{best, seed},
	}
}

// PM is pattern match: slide a 16-word template over a stream counting
// near-matches (absolute-difference sum under threshold).
func PM(hand bool) *Spec {
	const n, tlen = 512, 8
	f := tir.NewFunc("pm")
	x := f.NewReg()
	tpl := f.NewReg()
	matches := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: matches, Imm: 0})
	done := counted(f, "pos", entry, n, 1, func(bb *tir.BB, i tir.Reg) {
		off := bb.OpI(f, tir.ShlI, i, 3)
		px := bb.Op(f, tir.Add, x, off)
		acc := bb.Const(f, 0)
		for t := int64(0); t < tlen; t++ {
			vx := bb.Load(f, px, t*8, 8, false)
			vt := bb.Load(f, tpl, t*8, 8, false)
			d := bb.Op(f, tir.Sub, vx, vt)
			mx := bb.Op(f, tir.Max, d, bb.Op(f, tir.Sub, vt, vx))
			acc = bb.Op(f, tir.Add, acc, mx)
		}
		hit := bb.OpI(f, tir.SetLTI, acc, 2000)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: matches, A: matches, B: hit})
	})
	done.Ret()
	f.Keep(matches)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{x: baseA, tpl: baseB},
		SetupMem: func(m *mem.Memory) {
			l := lcg(21)
			for i := 0; i < n+tlen; i++ {
				m.Write(baseA+uint64(i)*8, 8, uint64(l.intn(200)))
			}
			for i := 0; i < tlen; i++ {
				m.Write(baseB+uint64(i)*8, 8, uint64(100))
			}
		},
		Outputs: []tir.Reg{matches},
	}
}

// QR applies Givens-style plane rotations down the first column of a small
// matrix — floating-point multiply/add chains with moderate parallelism.
func QR(hand bool) *Spec {
	const n = 24 // rows; 5 columns of rotation work per block
	const cols = 5
	f := tir.NewFunc("qr")
	a := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	cosv := entry.Const(f, fbits(0.8))
	sinv := entry.Const(f, fbits(0.6))
	done := counted(f, "row", entry, n-1, 1, func(bb *tir.BB, i tir.Reg) {
		// Rotate rows i and i+1 with a fixed rotation (cos, sin).
		stride := bb.OpI(f, tir.MulI, i, cols*8)
		r0 := bb.Op(f, tir.Add, a, stride)
		var first tir.Reg
		for c := int64(0); c < cols; c++ {
			x := bb.Load(f, r0, c*8, 8, false)
			y := bb.Load(f, r0, (cols+c)*8, 8, false)
			cx := bb.Op(f, tir.FMul, cosv, x)
			sy := bb.Op(f, tir.FMul, sinv, y)
			nx := bb.Op(f, tir.FAdd, cx, sy)
			sx := bb.Op(f, tir.FMul, sinv, x)
			cy := bb.Op(f, tir.FMul, cosv, y)
			ny := bb.Op(f, tir.FSub, cy, sx)
			bb.Store(r0, c*8, nx, 8)
			bb.Store(r0, (cols+c)*8, ny, 8)
			if c == 0 {
				first = nx
			}
		}
		asInt := bb.Op(f, tir.FToI, first, 0)
		bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: asInt})
	})
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{a: baseA},
		SetupMem: func(m *mem.Memory) {
			l := lcg(31)
			for i := 0; i < n*cols; i++ {
				m.Write(baseA+uint64(i)*8, 8, math.Float64bits(float64(l.intn(100))))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}

// SVD runs Jacobi-style 2x2 sweeps over column pairs — FP-heavy with
// longer dependence chains than QR.
func SVD(hand bool) *Spec {
	const n = 16 // n x n
	f := tir.NewFunc("svd")
	a := f.NewReg()
	chk := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: chk, Imm: 0})
	cosv := entry.Const(f, fbits(0.96))
	sinv := entry.Const(f, fbits(0.28))
	done := counted(f, "pair", entry, n-1, 1, func(bb *tir.BB, p tir.Reg) {
		// Rotate column pair (p, p+1) across a strided row subset.
		cOff := bb.OpI(f, tir.ShlI, p, 3)
		base := bb.Op(f, tir.Add, a, cOff)
		for r := int64(0); r < n; r += 4 {
			x := bb.Load(f, base, r*n*8, 8, false)
			y := bb.Load(f, base, r*n*8+8, 8, false)
			cx := bb.Op(f, tir.FMul, cosv, x)
			sy := bb.Op(f, tir.FMul, sinv, y)
			nx := bb.Op(f, tir.FAdd, cx, sy)
			sx := bb.Op(f, tir.FMul, sinv, x)
			cy := bb.Op(f, tir.FMul, cosv, y)
			ny := bb.Op(f, tir.FSub, cy, sx)
			d := bb.Op(f, tir.FMul, nx, ny)
			di := bb.Op(f, tir.FToI, d, 0)
			bb.Emit(tir.Inst{Op: tir.Add, Dst: chk, A: chk, B: di})
			bb.Store(base, r*n*8, nx, 8)
			bb.Store(base, r*n*8+8, ny, 8)
		}
	})
	done.Ret()
	f.Keep(chk)
	_ = hand
	return &Spec{
		F:    f,
		Init: map[tir.Reg]uint64{a: baseA},
		SetupMem: func(m *mem.Memory) {
			l := lcg(37)
			for i := 0; i < n*n; i++ {
				m.Write(baseA+uint64(i)*8, 8, math.Float64bits(float64(l.intn(50))+1))
			}
		},
		Outputs: []tir.Reg{chk},
	}
}
