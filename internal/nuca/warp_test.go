package nuca

import (
	"bytes"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

// TestSystemWarpParityOnRoundTrip drives one cold read — port injection,
// request transit, SDRAM access, multi-flit response transit — under two
// clocking disciplines: ticking every cycle, and warping to each drain
// deadline the way Core.Run/Chip.tryWarp do (jump to NextEventCycle-1 when
// Quiet, then tick). The completion cycle, returned data, and every counter
// must match, and the warped run must skip most of the round trip.
func TestSystemWarpParityOnRoundTrip(t *testing.T) {
	run := func(warp bool) (total, ticked, warped int64, data []byte, s *System) {
		backing := mem.New()
		backing.Write(0x4000, 8, 0xdeadbeef)
		s = New(Config{Backing: backing})
		p := s.Port("dt0")
		var got []byte
		req := &proc.MemRequest{Addr: 0x4000, N: 8, Done: func(d []byte) { got = d }}
		if !p.Submit(req) {
			t.Fatal("submit refused")
		}
		for got == nil {
			if warp && s.Quiet() {
				if mh := s.NextEventCycle(); mh != horizonNever && mh-1 > s.cycle {
					delta := mh - 1 - s.cycle
					s.Warp(delta)
					warped += delta
				}
			}
			s.Tick()
			ticked++
			if ticked > 5000 {
				t.Fatal("request never completed")
			}
		}
		return s.cycle, ticked, warped, got, s
	}
	totA, tickA, _, dataA, sysA := run(false)
	totB, tickB, warpB, dataB, sysB := run(true)
	if totA != totB {
		t.Errorf("completion at backend cycle %d warped, %d stepped", totB, totA)
	}
	if !bytes.Equal(dataA, dataB) {
		t.Errorf("data %x warped, %x stepped", dataB, dataA)
	}
	if warpB == 0 {
		t.Error("warp never engaged across an OCN round trip")
	}
	if tickB+warpB != tickA {
		t.Errorf("warped run: %d ticks + %d warped != %d stepped cycles", tickB, warpB, tickA)
	}
	// The round trip is dominated by solo transits and the SDRAM access;
	// only injection cycles and delivery boundaries need real ticks.
	if tickB*2 > tickA {
		t.Errorf("warped run still stepped %d of %d cycles", tickB, tickA)
	}
	hA, mA := sysA.Stats()
	hB, mB := sysB.Stats()
	if hA != hB || mA != mB || sysA.Requests != sysB.Requests || sysA.LineTransfers != sysB.LineTransfers {
		t.Errorf("stats diverged: hits %d/%d misses %d/%d requests %d/%d transfers %d/%d",
			hB, hA, mB, mA, sysB.Requests, sysA.Requests, sysB.LineTransfers, sysA.LineTransfers)
	}
	for _, s := range []*System{sysA, sysB} {
		if n := s.Outstanding(); n != 0 {
			t.Errorf("%d transactions still pending after completion", n)
		}
	}
}

// TestOutstandingTracksSplitTransactions exercises the pending/pendSplit
// bookkeeping the end-of-run leak assertion guards: a line-crossing request
// registers one entry per part, all of which must drain on completion, for
// reads and writes alike.
func TestOutstandingTracksSplitTransactions(t *testing.T) {
	s := New(Config{Backing: mem.New()})
	p := s.Port("dt0")
	payload := make([]byte, 96) // crosses a 64-byte line boundary
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	done := false
	wr := &proc.MemRequest{Addr: 0x7020, Data: payload, IsWrite: true, Done: func([]byte) { done = true }}
	if !p.Submit(wr) {
		t.Fatal("submit refused")
	}
	// The injection register takes one part per tick, so both parts are
	// registered after two drains.
	s.Tick()
	if n := s.Outstanding(); n != 1 {
		t.Errorf("after one drain: Outstanding() = %d, want 1", n)
	}
	s.Tick()
	if n := s.Outstanding(); n != 2 {
		t.Errorf("split write in flight: Outstanding() = %d, want 2", n)
	}
	for i := 0; !done && i < 5000; i++ {
		s.Tick()
	}
	if !done {
		t.Fatal("split write never completed")
	}
	if n := s.Outstanding(); n != 0 {
		t.Errorf("after split write: Outstanding() = %d, want 0", n)
	}
	var got []byte
	rd := &proc.MemRequest{Addr: 0x7020, N: 96, Done: func(d []byte) { got = d }}
	if !p.Submit(rd) {
		t.Fatal("submit refused")
	}
	for i := 0; got == nil && i < 5000; i++ {
		s.Tick()
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("split read returned %v", got)
	}
	if n := s.Outstanding(); n != 0 {
		t.Errorf("after split read: Outstanding() = %d, want 0", n)
	}
}
