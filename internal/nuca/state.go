package nuca

import (
	"sort"

	"trips/internal/ckpt"
	"trips/internal/micronet"
	"trips/internal/proc"
)

// Checkpoint serialization for the secondary memory system.
//
// Aliasing is the whole difficulty here: a split client request shares one
// *pending across several pendSplit ids and any still-staged outItems, and
// one *proc.MemRequest is referenced by every part of its split plus the
// pending tables. SaveState therefore collects the distinct requests and
// split-assembly records into local tables (in deterministic order: port
// queues in port order, then the pending tables by ascending id) and
// serializes references as table indices, so a restore rebuilds the exact
// sharing structure.
//
// ocnMsg instances, by contrast, are singly owned — each lives in exactly
// one container (mesh resident, delayed queue, SDC queue, MT waiter list,
// MT output queue, or a staged outItem) — so they are encoded in place.

func encCoord(w *ckpt.Writer, c micronet.Coord) {
	w.Int(c.Row)
	w.Int(c.Col)
}

func decCoord(r *ckpt.Reader) micronet.Coord {
	return micronet.Coord{Row: r.Int(), Col: r.Int()}
}

func encOCNMsg(w *ckpt.Writer, m *ocnMsg) {
	encCoord(w, m.dst)
	w.U8(uint8(m.kind))
	w.U64(m.addr)
	w.Int(m.n)
	w.Bool(m.data != nil)
	if m.data != nil {
		w.Bytes(m.data)
	}
	w.Bool(m.write)
	w.Int(m.id)
	encCoord(w, m.origin)
	encCoord(w, m.mt)
	w.Int(m.flits)
	w.Int(m.hops)
	w.Int(m.waits)
	w.U64(m.tid)
}

func decOCNMsg(r *ckpt.Reader) *ocnMsg {
	m := &ocnMsg{}
	m.dst = decCoord(r)
	m.kind = msgKind(r.U8())
	m.addr = r.U64()
	m.n = r.Int()
	if r.Bool() {
		m.data = r.Bytes()
	}
	m.write = r.Bool()
	m.id = r.Int()
	m.origin = decCoord(r)
	m.mt = decCoord(r)
	m.flits = r.Int()
	m.hops = r.Int()
	m.waits = r.Int()
	m.tid = r.U64()
	r.NoteID(m.tid)
	return m
}

func sortedPendingIDs(m map[int]pending) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func sortedSplitIDs(m map[int]*pending) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// SaveState serializes the system's complete mutable state at a backend
// cycle boundary (between Ticks): the backing SDRAM, the OCN mesh, every
// MT bank and MSHR, the SDC and delay queues, the staged port queues, and
// the pending-transaction tables with their sharing structure intact.
// Memoized horizon/deadline scans and the message recycle pool are derived
// or transient state and are recomputed on load.
func (s *System) SaveState(w *ckpt.Writer) {
	w.Section("nuca")
	w.I64(s.cycle)
	w.Int(s.nextID)

	// Port roster: names in creation order. Lazily created ports (the DMA
	// controllers') get their mesh coordinates from their position in this
	// order, so a restore replays any missing names through Port().
	w.Int(len(s.order))
	for _, p := range s.order {
		w.String(p.name)
	}
	portIdx := make(map[*ntPort]int, len(s.order))
	for i, p := range s.order {
		portIdx[p] = i
	}

	// Shared-object tables (see the package comment above).
	var reqs []*proc.MemRequest
	var reqPort []int
	reqIdx := make(map[*proc.MemRequest]int)
	addReq := func(rq *proc.MemRequest, port int) {
		if _, ok := reqIdx[rq]; ok {
			return
		}
		reqIdx[rq] = len(reqs)
		reqs = append(reqs, rq)
		reqPort = append(reqPort, port)
	}
	var pds []*pending
	pdIdx := make(map[*pending]int)
	addPd := func(pd *pending) {
		if _, ok := pdIdx[pd]; ok {
			return
		}
		pdIdx[pd] = len(pds)
		pds = append(pds, pd)
		addReq(pd.req, portIdx[pd.port])
	}
	for pi, p := range s.order {
		for i := 0; i < p.outQ.Len(); i++ {
			it := p.outQ.At(i)
			addReq(it.req, pi)
			if it.pd != nil {
				addPd(it.pd)
			}
		}
	}
	pendIDs := sortedPendingIDs(s.pending)
	for _, id := range pendIDs {
		pd := s.pending[id]
		addReq(pd.req, portIdx[pd.port])
	}
	splitIDs := sortedSplitIDs(s.pendSplit)
	for _, id := range splitIDs {
		addPd(s.pendSplit[id])
	}

	w.Int(len(reqs))
	for i, rq := range reqs {
		w.Int(reqPort[i])
		proc.EncodeMemRequest(w, rq)
	}
	w.Int(len(pds))
	for _, pd := range pds {
		w.Int(reqIdx[pd.req])
		w.Int(portIdx[pd.port])
		w.Int(pd.left)
		w.U64(pd.base)
		w.Bool(pd.buf != nil)
		if pd.buf != nil {
			w.Bytes(pd.buf)
		}
		ids := make([]int, 0, len(pd.parts))
		for id := range pd.parts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		w.Int(len(ids))
		for _, id := range ids {
			pt := pd.parts[id]
			w.Int(id)
			w.Int(pt.off)
			w.Int(pt.n)
		}
	}

	s.cfg.Backing.SaveState(w)
	s.mesh.SaveState(w, encOCNMsg)

	w.Int(len(s.delayed))
	for _, d := range s.delayed {
		encOCNMsg(w, d.msg)
		w.I64(d.readyAt)
	}
	for sdc := 0; sdc < 2; sdc++ {
		w.Int(len(s.sdcQ[sdc]))
		for _, j := range s.sdcQ[sdc] {
			encOCNMsg(w, j.msg)
			w.I64(j.readyAt)
		}
	}
	for _, mt := range s.mts {
		mt.bank.SaveState(w)
		w.Bool(mt.busy)
		w.U64(mt.waitLine)
		w.I64(mt.fillDeadline)
		w.Int(len(mt.waiters))
		for _, m := range mt.waiters {
			encOCNMsg(w, m)
		}
		mt.outQ.SaveState(w, encOCNMsg)
		w.U64(mt.Hits)
		w.U64(mt.Misses)
		w.U64(mt.MSHRCoalesced)
		w.U64(mt.MSHRBlocked)
	}

	w.Int(len(pendIDs))
	for _, id := range pendIDs {
		p := s.pending[id]
		w.Int(id)
		w.Int(reqIdx[p.req])
		w.Int(portIdx[p.port])
	}
	w.Int(len(splitIDs))
	for _, id := range splitIDs {
		w.Int(id)
		w.Int(pdIdx[s.pendSplit[id]])
	}
	rdIDs := make([]int, 0, len(s.respDeadline))
	for id := range s.respDeadline {
		rdIDs = append(rdIDs, id)
	}
	sort.Ints(rdIDs)
	w.Int(len(rdIDs))
	for _, id := range rdIDs {
		e := s.respDeadline[id]
		w.Int(id)
		w.I64(e.at)
		w.Int(portIdx[e.port])
	}

	for _, p := range s.order {
		p.outQ.SaveState(w, func(w *ckpt.Writer, it outItem) {
			encOCNMsg(w, it.msg)
			w.Int(reqIdx[it.req])
			if it.pd != nil {
				w.Int(pdIdx[it.pd])
			} else {
				w.Int(-1)
			}
			w.Int(it.off)
			w.Int(it.n)
			w.I64(it.stamp)
		})
	}

	w.U64(s.Requests)
	w.U64(s.LineTransfers)
	w.U64(s.SDRAMReads)
	w.U64(s.SDRAMWrites)
}

// LoadState restores a checkpoint into a system built with an identical
// Config, after the client cores have been restored (origin resolution
// reads their tile state). res maps a port name to the resolver that
// rebuilds Done callbacks for requests submitted on that port — the port is
// the only record of which client a request belongs to.
//
// Ports the clients create at construction must already exist, in the same
// order; ports created lazily during the checkpointed run (DMA) are
// re-created here by replaying the saved name order, which reproduces their
// mesh coordinates.
func (s *System) LoadState(r *ckpt.Reader, res func(portName string) proc.OriginResolver) {
	r.Section("nuca")
	s.cycle = r.I64()
	s.nextID = r.Int()

	np := r.Int()
	if r.Err() != nil {
		return
	}
	for i := 0; i < np; i++ {
		name := r.String()
		if i < len(s.order) {
			if s.order[i].name != name {
				r.Failf("nuca: port %d is %q, checkpoint has %q", i, s.order[i].name, name)
				return
			}
		} else {
			s.Port(name)
		}
	}
	if np != len(s.order) {
		r.Failf("nuca: checkpoint has %d ports, live system %d", np, len(s.order))
		return
	}

	nr := r.Int()
	if r.Err() != nil {
		return
	}
	reqs := make([]*proc.MemRequest, nr)
	for i := range reqs {
		pi := r.Int()
		if pi < 0 || pi >= len(s.order) {
			r.Failf("nuca: request %d has port index %d of %d", i, pi, len(s.order))
			return
		}
		var resolver proc.OriginResolver
		if res != nil {
			resolver = res(s.order[pi].name)
		}
		reqs[i] = proc.DecodeMemRequest(r, resolver)
	}
	npd := r.Int()
	if r.Err() != nil {
		return
	}
	pds := make([]*pending, npd)
	for i := range pds {
		pd := &pending{}
		ri, pi := r.Int(), r.Int()
		if ri < 0 || ri >= len(reqs) || pi < 0 || pi >= len(s.order) {
			r.Failf("nuca: split record %d has bad indices (req %d, port %d)", i, ri, pi)
			return
		}
		pd.req = reqs[ri]
		pd.port = s.order[pi]
		pd.left = r.Int()
		pd.base = r.U64()
		if r.Bool() {
			pd.buf = r.Bytes()
		}
		nparts := r.Int()
		if r.Err() != nil {
			return
		}
		pd.parts = make(map[int]part, nparts)
		for j := 0; j < nparts; j++ {
			id := r.Int()
			pd.parts[id] = part{off: r.Int(), n: r.Int()}
		}
		pds[i] = pd
	}

	s.cfg.Backing.LoadState(r)
	s.mesh.LoadState(r, decOCNMsg)

	nd := r.Int()
	if r.Err() != nil {
		return
	}
	s.delayed = s.delayed[:0]
	for i := 0; i < nd; i++ {
		m := decOCNMsg(r)
		s.delayed = append(s.delayed, delayedMsg{msg: m, readyAt: r.I64()})
	}
	for sdc := 0; sdc < 2; sdc++ {
		n := r.Int()
		if r.Err() != nil {
			return
		}
		s.sdcQ[sdc] = s.sdcQ[sdc][:0]
		for i := 0; i < n; i++ {
			m := decOCNMsg(r)
			s.sdcQ[sdc] = append(s.sdcQ[sdc], sdcJob{msg: m, readyAt: r.I64()})
		}
	}
	s.mtStaged = 0
	for _, mt := range s.mts {
		mt.bank.LoadState(r)
		mt.busy = r.Bool()
		mt.waitLine = r.U64()
		mt.fillDeadline = r.I64()
		nw := r.Int()
		if r.Err() != nil {
			return
		}
		mt.waiters = mt.waiters[:0]
		for i := 0; i < nw; i++ {
			mt.waiters = append(mt.waiters, decOCNMsg(r))
		}
		mt.outQ.LoadState(r, decOCNMsg)
		s.mtStaged += mt.outQ.Len()
		mt.Hits = r.U64()
		mt.Misses = r.U64()
		mt.MSHRCoalesced = r.U64()
		mt.MSHRBlocked = r.U64()
	}

	n := r.Int()
	if r.Err() != nil {
		return
	}
	s.pending = make(map[int]pending, n)
	for i := 0; i < n; i++ {
		id, ri, pi := r.Int(), r.Int(), r.Int()
		if ri < 0 || ri >= len(reqs) || pi < 0 || pi >= len(s.order) {
			r.Failf("nuca: pending %d has bad indices (req %d, port %d)", id, ri, pi)
			return
		}
		s.pending[id] = pending{req: reqs[ri], port: s.order[pi]}
	}
	n = r.Int()
	if r.Err() != nil {
		return
	}
	s.pendSplit = make(map[int]*pending, n)
	for i := 0; i < n; i++ {
		id, di := r.Int(), r.Int()
		if di < 0 || di >= len(pds) {
			r.Failf("nuca: split id %d has bad record index %d", id, di)
			return
		}
		s.pendSplit[id] = pds[di]
	}
	n = r.Int()
	if r.Err() != nil {
		return
	}
	s.respDeadline = make(map[int]rdEntry, n)
	for i := 0; i < n; i++ {
		id := r.Int()
		at := r.I64()
		pi := r.Int()
		if pi < 0 || pi >= len(s.order) {
			r.Failf("nuca: deadline %d has bad port index %d", id, pi)
			return
		}
		s.respDeadline[id] = rdEntry{at: at, port: s.order[pi]}
	}

	s.stagedUnowned = 0
	for i := range s.stagedByOwner {
		s.stagedByOwner[i] = 0
	}
	for _, p := range s.order {
		p.outQ.LoadState(r, func(r *ckpt.Reader) outItem {
			var it outItem
			it.msg = decOCNMsg(r)
			ri := r.Int()
			if ri >= 0 && ri < len(reqs) {
				it.req = reqs[ri]
			} else {
				r.Failf("nuca: staged item has bad request index %d", ri)
			}
			di := r.Int()
			if di >= 0 {
				if di < len(pds) {
					it.pd = pds[di]
				} else {
					r.Failf("nuca: staged item has bad split index %d", di)
				}
			}
			it.off = r.Int()
			it.n = r.Int()
			it.stamp = r.I64()
			return it
		})
		if p.owner >= 0 {
			s.stagedByOwner[p.owner] += int64(p.outQ.Len())
		} else {
			s.stagedUnowned += int64(p.outQ.Len())
		}
	}

	s.Requests = r.U64()
	s.LineTransfers = r.U64()
	s.SDRAMReads = r.U64()
	s.SDRAMWrites = r.U64()

	// Derived and transient state: per-owner in-flight counts fall out of
	// the restored pending tables; the memo caches and the recycle pool
	// restart cold.
	for i := range s.pendingByOwner {
		s.pendingByOwner[i] = 0
	}
	for _, p := range s.pending {
		if p.port.owner >= 0 {
			s.pendingByOwner[p.port.owner]++
		}
	}
	for _, pd := range s.pendSplit {
		if pd.port.owner >= 0 {
			s.pendingByOwner[pd.port.owner]++
		}
	}
	s.free = nil
	s.inTick = false
	s.lagCache = 0
	s.horizonAt = -1
	s.deadlineAt = -1
	// Resume the trace-id allocator past every restored in-flight message so
	// post-restore allocations never collide with checkpointed ids.
	s.cfg.Trace.ReserveIDs(r.MaxID())
}
