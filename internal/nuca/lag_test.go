package nuca

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

// TestCrossCoreLagPropertyFuzz validates the visibility horizon L that the
// bounded-lag coordinator builds its strides on: a core submitting a request
// at local cycle t can never observe the response's effects before backend
// cycle t+L. The test fuzzes the placement inputs L is derived from — port
// count (which moves the NT rows), partitioning (which restricts reachable
// MTs), scratchpad mode, and a random request mix including line-splitting
// sizes — and asserts the bound on every completed transaction. If a future
// change shortens the OCN round trip (fewer hops, faster banks) without
// CrossCoreLag tracking it, this fails before the coordinator silently
// starts missing rollbacks.
func TestCrossCoreLagPropertyFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			partition := seed%2 == 0
			scratch := seed%3 == 0
			sys := New(Config{Backing: mem.New(), Partition: partition, Scratchpad: scratch})
			nPorts := 1 + rng.Intn(5)
			var ports []proc.MemPort
			for i := 0; i < nPorts; i++ {
				name := fmt.Sprintf("fz%d", i)
				if partition && i%2 == 1 {
					name = "p1:" + name
				}
				ports = append(ports, sys.Port(name))
			}
			sys.AssignOwners(func(name string) int {
				if strings.HasPrefix(name, "p1:") {
					return 1
				}
				return 0
			})
			var clock [2]int64
			sys.BindClock(0, func() int64 { return clock[0] })
			sys.BindClock(1, func() int64 { return clock[1] })
			L := sys.CrossCoreLag()
			if L < 5 {
				t.Fatalf("CrossCoreLag = %d, below the geometric minimum 5 (ports on col 3, MTs on cols 0-1)", L)
			}

			checked := 0
			observe := func(submitCycle int64) func([]byte) {
				return func([]byte) {
					if got := sys.Cycle() - submitCycle; got < L {
						t.Errorf("response effect %d cycles after submit, horizon promises >= %d", got, L)
					}
					checked++
				}
			}
			for cyc := int64(0); cyc < 600; cyc++ {
				clock[0], clock[1] = cyc, cyc
				for _, p := range ports {
					if rng.Intn(4) != 0 {
						continue
					}
					addr := uint64(rng.Intn(1 << 18))
					n := 1 + rng.Intn(2*LineBytes)
					req := &proc.MemRequest{Addr: addr, Done: observe(cyc)}
					if rng.Intn(2) == 0 {
						data := make([]byte, n)
						rng.Read(data)
						req.IsWrite = true
						req.Data = data
					} else {
						req.N = n
					}
					p.Submit(req) // refusals (full port queue) just drop the probe
				}
				sys.Tick()
			}
			for i := 0; i < 100_000 && sys.Outstanding() > 0; i++ {
				sys.Tick()
			}
			if n := sys.Outstanding(); n != 0 {
				t.Fatalf("%d transactions never completed", n)
			}
			if checked < 100 {
				t.Fatalf("only %d transactions observed — fuzz mix too thin to trust", checked)
			}
		})
	}
}

// TestResponseDeadlinePropertyFuzz validates the per-transaction response
// deadlines the bounded-lag coordinator strides on: no response may ever
// dispatch at a port before any deadline the system reported for it — not
// just the final value, but every intermediate ratchet (drain seed, MSHR
// fetch, SDC acceptance, in-mesh tightening), since the coordinator may have
// built a stride on any of them. The test fuzzes the inputs the deadlines
// are derived from — port count and rows, partitioning, scratchpad mode,
// SDRAM latency, and a request mix with line-splitting sizes — and, after
// every tick, ratchets a shadow copy of the live per-id deadlines; an id
// leaving the table means its response dispatched this very tick, which must
// be at or after the shadow bound. It also pins the aggregation contract:
// an owner with outstanding work always has a finite deadline.
func TestResponseDeadlinePropertyFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			partition := seed%2 == 0
			scratch := seed%3 == 0
			lat := 1 + rng.Intn(90)
			sys := New(Config{Backing: mem.New(), Partition: partition, Scratchpad: scratch, SDRAMLatency: lat})
			nPorts := 1 + rng.Intn(5)
			var ports []proc.MemPort
			for i := 0; i < nPorts; i++ {
				name := fmt.Sprintf("fz%d", i)
				if partition && i%2 == 1 {
					name = "p1:" + name
				}
				ports = append(ports, sys.Port(name))
			}
			sys.AssignOwners(func(name string) int {
				if strings.HasPrefix(name, "p1:") {
					return 1
				}
				return 0
			})
			var clock [2]int64
			sys.BindClock(0, func() int64 { return clock[0] })
			sys.BindClock(1, func() int64 { return clock[1] })

			shadow := make(map[int]int64) // id -> max deadline ever reported
			checked := 0
			audit := func() {
				for id, e := range sys.respDeadline {
					if e.at > shadow[id] {
						shadow[id] = e.at
					}
				}
				for id, dl := range shadow {
					if _, live := sys.respDeadline[id]; live {
						continue
					}
					// The id left the table: its response dispatched during
					// the tick that just ran, i.e. at the current cycle.
					if sys.cycle < dl {
						t.Errorf("response %d dispatched at cycle %d, before its reported deadline %d", id, sys.cycle, dl)
					}
					delete(shadow, id)
					checked++
				}
				for owner := 0; owner < maxOwners; owner++ {
					if sys.OutstandingFor(owner) > 0 && sys.ResponseDeadlineFor(owner) == horizonNever {
						t.Fatalf("owner %d has %d outstanding transactions but no finite response deadline", owner, sys.OutstandingFor(owner))
					}
				}
			}
			drive := func(cyc int64) {
				clock[0], clock[1] = cyc, cyc
				for _, p := range ports {
					if rng.Intn(4) != 0 {
						continue
					}
					addr := uint64(rng.Intn(1 << 18))
					n := 1 + rng.Intn(2*LineBytes)
					req := &proc.MemRequest{Addr: addr}
					if rng.Intn(2) == 0 {
						data := make([]byte, n)
						rng.Read(data)
						req.IsWrite = true
						req.Data = data
					} else {
						req.N = n
					}
					p.Submit(req) // refusals (full port queue) just drop the probe
				}
			}
			for cyc := int64(0); cyc < 800; cyc++ {
				drive(cyc)
				sys.Tick()
				audit()
			}
			for i := 0; i < 100_000 && sys.Outstanding() > 0; i++ {
				sys.Tick()
				audit()
			}
			if n := sys.Outstanding(); n != 0 {
				t.Fatalf("%d transactions never completed", n)
			}
			if len(sys.respDeadline) != 0 {
				t.Fatalf("%d deadline entries leaked past their responses", len(sys.respDeadline))
			}
			if checked < 100 {
				t.Fatalf("only %d transactions audited — fuzz mix too thin to trust", checked)
			}
		})
	}
}
