package nuca

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"trips/internal/mem"
	"trips/internal/proc"
)

// runOne submits a request and ticks until its callback fires.
func runOne(t *testing.T, s *System, p proc.MemPort, req *proc.MemRequest) (int, []byte) {
	t.Helper()
	var got []byte
	fired := false
	inner := req.Done
	req.Done = func(data []byte) {
		got = data
		fired = true
		if inner != nil {
			inner(data)
		}
	}
	for !p.Submit(req) {
		s.Tick()
	}
	cycles := 0
	for !fired {
		s.Tick()
		cycles++
		if cycles > 5000 {
			t.Fatal("request never completed")
		}
	}
	return cycles, got
}

func TestReadThroughL2(t *testing.T) {
	backing := mem.New()
	backing.Write(0x4000, 8, 0xdeadbeef)
	s := New(Config{Backing: backing})
	p := s.Port("dt0")
	// Cold read: misses the L2, fetches from the SDC.
	cold, data := runOne(t, s, p, &proc.MemRequest{Addr: 0x4000, N: 8})
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(data[i])
	}
	if v != 0xdeadbeef {
		t.Fatalf("read = %#x", v)
	}
	// Warm read hits the bank: must be much faster than the cold one.
	warm, _ := runOne(t, s, p, &proc.MemRequest{Addr: 0x4000, N: 8})
	if !(cold > warm+s.cfg.SDRAMLatency/2) {
		t.Errorf("cold = %d cycles, warm = %d: L2 hit should skip the SDRAM", cold, warm)
	}
	h, m := s.Stats()
	if h == 0 || m == 0 {
		t.Errorf("stats: hits=%d misses=%d", h, m)
	}
}

func TestWriteThenReadBack(t *testing.T) {
	s := New(Config{Backing: mem.New()})
	p := s.Port("dt1")
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	runOne(t, s, p, &proc.MemRequest{Addr: 0x9000, Data: payload, IsWrite: true})
	_, got := runOne(t, s, p, &proc.MemRequest{Addr: 0x9000, N: 8})
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %v", got)
	}
	// Flush pushes dirty lines to the backing store.
	s.Flush()
	if got := s.cfg.Backing.ReadBytes(0x9000, 8); !bytes.Equal(got, payload) {
		t.Fatalf("backing after flush: %v", got)
	}
}

func TestLineInterleavingAcrossMTs(t *testing.T) {
	s := New(Config{Backing: mem.New()})
	seen := map[int]bool{}
	for line := 0; line < NumMTs; line++ {
		seen[s.MTFor(uint64(line)*LineBytes)] = true
	}
	if len(seen) != NumMTs {
		t.Errorf("16 consecutive lines hit only %d distinct MTs", len(seen))
	}
	// Same line, different offsets: same MT.
	if s.MTFor(0x1000) != s.MTFor(0x1038) {
		t.Error("same-line addresses map to different MTs")
	}
}

func TestNUCANonUniformity(t *testing.T) {
	// The N in NUCA: a bank near the port must respond faster than a far
	// bank. Find the nearest and farthest MTs from port dt0 and compare
	// warm (hit) latencies.
	s := New(Config{Backing: mem.New()})
	p := s.Port("dt0").(*ntPort)
	near, far := -1, -1
	nd, fd := 1<<30, -1
	for i, mt := range s.mts {
		d := p.at.Manhattan(mt.at)
		if d < nd {
			nd, near = d, i
		}
		if d > fd {
			fd, far = d, i
		}
	}
	addrFor := func(mtIdx int) uint64 {
		for a := uint64(0); ; a += LineBytes {
			if s.MTFor(a) == mtIdx {
				return a
			}
		}
	}
	measure := func(addr uint64) int {
		runOne(t, s, p, &proc.MemRequest{Addr: addr, N: 8}) // warm the bank
		c, _ := runOne(t, s, p, &proc.MemRequest{Addr: addr, N: 8})
		return c
	}
	cNear := measure(addrFor(near))
	cFar := measure(addrFor(far))
	if cFar <= cNear {
		t.Errorf("far bank (%d cycles) should be slower than near bank (%d): NUCA", cFar, cNear)
	}
}

func TestPartitionedHalves(t *testing.T) {
	s := New(Config{Backing: mem.New(), Partition: true})
	p0 := s.Port("dt0").(*ntPort)
	p1 := s.Port("p1:dt0").(*ntPort)
	// Each half's ports must route every address into its own eight banks.
	for a := uint64(0); a < 64*LineBytes; a += LineBytes {
		at0 := s.route(p0.half, a)
		at1 := s.route(p1.half, a)
		i0, i1 := -1, -1
		for i, mt := range s.mts {
			if mt.at == at0 {
				i0 = i
			}
			if mt.at == at1 {
				i1 = i
			}
		}
		if i0 >= NumMTs/2 {
			t.Fatalf("processor 0 address %#x routed to bank %d", a, i0)
		}
		if i1 < NumMTs/2 {
			t.Fatalf("processor 1 address %#x routed to bank %d", a, i1)
		}
	}
	// The two halves are independent: same address, different storage...
	// both ultimately back onto the same SDRAM, so writes from one half
	// are visible to the other only after a flush — write, flush, read.
	payload := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	runOne(t, s, p0, &proc.MemRequest{Addr: 0x5000, Data: payload, IsWrite: true})
	s.Flush()
	_, got := runOne(t, s, p1, &proc.MemRequest{Addr: 0x5000, N: 8})
	if !bytes.Equal(got, payload) {
		t.Fatalf("cross-half read after flush: %v", got)
	}
}

func TestScratchpadMode(t *testing.T) {
	// Scratchpad banks never touch the SDRAM.
	s := New(Config{Backing: mem.New(), Scratchpad: true})
	p := s.Port("dt0")
	payload := []byte{0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3, 4}
	runOne(t, s, p, &proc.MemRequest{Addr: 0x7000, Data: payload, IsWrite: true})
	_, got := runOne(t, s, p, &proc.MemRequest{Addr: 0x7000, N: 8})
	if !bytes.Equal(got, payload) {
		t.Fatalf("scratchpad read %v", got)
	}
	if h, m := s.Stats(); h != 0 || m != 0 {
		t.Errorf("scratchpad should not count cache hits/misses: %d/%d", h, m)
	}
	if got := s.cfg.Backing.ReadBytes(0x7000, 8); bytes.Equal(got, payload) {
		t.Error("scratchpad write leaked to SDRAM")
	}
}

func TestQuickMemorySystemMirrorsFlat(t *testing.T) {
	// Property: any interleaving of line-sized reads/writes through the
	// NUCA system matches a flat memory after flush.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		backing := mem.New()
		golden := mem.New()
		s := New(Config{Backing: backing})
		ports := []proc.MemPort{s.Port("dt0"), s.Port("dt1"), s.Port("it0")}
		for i := 0; i < 40; i++ {
			addr := uint64(r.Intn(64)) * LineBytes
			p := ports[r.Intn(len(ports))]
			if r.Intn(2) == 0 {
				line := make([]byte, LineBytes)
				r.Read(line)
				golden.WriteBytes(addr, line)
				done := false
				req := &proc.MemRequest{Addr: addr, Data: line, IsWrite: true, Done: func([]byte) { done = true }}
				for !p.Submit(req) {
					s.Tick()
				}
				for !done {
					s.Tick()
				}
			} else {
				var got []byte
				req := &proc.MemRequest{Addr: addr, N: LineBytes, Done: func(d []byte) { got = d }}
				for !p.Submit(req) {
					s.Tick()
				}
				for got == nil {
					s.Tick()
				}
				if !bytes.Equal(got, golden.ReadBytes(addr, LineBytes)) {
					return false
				}
			}
		}
		s.Flush()
		for a := uint64(0); a < 64*LineBytes; a += LineBytes {
			if !bytes.Equal(backing.ReadBytes(a, LineBytes), golden.ReadBytes(a, LineBytes)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
