// Package nuca implements the TRIPS secondary memory system (paper
// Section 3.6): a 1MB static NUCA array of sixteen memory tiles (MTs), each
// a 4-way 64KB bank with an on-chip-network router and a single-entry MSHR,
// embedded in a 4x10 wormhole-routed OCN mesh with 16-byte links. Network
// tiles (NTs) around the array hold programmable routing tables that
// translate memory-system requests, letting a programmer configure the
// array as a single shared L2, as two independent 512KB L2s, or as on-chip
// scratchpad memory. Two SDRAM controllers (SDCs) sit at the mesh ends.
//
// The package satisfies proc.MemBackend, so a core's DT and IT ports plug
// directly into the OCN, each IT/DT pair getting its own private port as in
// the prototype.
package nuca

import (
	"fmt"
	"math"

	"trips/internal/cache"
	"trips/internal/mem"
	"trips/internal/micronet"
	"trips/internal/obs"
	"trips/internal/proc"
)

// horizonNever means no deadline-held event is outstanding (matches the
// sentinel convention of proc.EventHorizon).
const horizonNever = int64(math.MaxInt64)

// Mesh geometry (paper Section 3.6, Figure 2): 4 columns x 10 rows. The
// sixteen MTs occupy columns 0-1 of rows 1-8's even positions — concretely
// rows 1..8 in columns 0 and 1. Processor-facing NTs occupy columns 2-3;
// the SDCs attach at rows 0 and 9.
const (
	Rows      = 10
	Cols      = 4
	NumMTs    = 16
	LineBytes = 64
	// FlitBytes is the OCN link width; a 64-byte line moves as 4 flits
	// (Section 3.6: 16-byte data links).
	FlitBytes = 16
)

// Mode selects what an MT bank does.
type Mode int

const (
	// ModeL2: the bank caches DRAM lines.
	ModeL2 Mode = iota
	// ModeScratchpad: the bank is directly addressed on-chip memory
	// (no refills; the bank is the backing store for its range).
	ModeScratchpad
)

// Config parameterizes the memory system.
type Config struct {
	// Backing is the SDRAM contents.
	Backing *mem.Memory
	// SDRAMLatency is the SDC access time in OCN cycles.
	SDRAMLatency int
	// Partition splits the MTs between the two processors: 0 = one shared
	// L2 (any port may reach any MT); 1 = two independent halves.
	Partition bool
	// Scratchpad switches every MT to scratchpad mode.
	Scratchpad bool
	// Trace, when non-nil, records per-message OCN transport events.
	Trace *obs.Tracer
	// Metrics, when non-nil, samples OCN occupancy and MSHR/SDRAM queue
	// depth once per sample interval of ticked cycles.
	Metrics *obs.Sampler
}

// msgKind discriminates OCN transactions.
type msgKind uint8

const (
	mkReq msgKind = iota
	mkResp
	mkSDCReq
	mkSDCResp
)

// ocnMsg is one OCN transaction. Multi-flit payloads are modeled as a
// serialization delay added at delivery (flits - 1 cycles), a documented
// approximation of wormhole flit pipelining.
type ocnMsg struct {
	dst    micronet.Coord
	kind   msgKind
	addr   uint64
	n      int
	data   []byte
	write  bool
	id     int
	origin micronet.Coord // requester NT for the reply
	mt     micronet.Coord // MT awaiting an SDC response
	flits  int
	hops   int
	waits  int
	tid    uint64 // trace id stamped by a traced mesh at Inject
}

func (m *ocnMsg) Dest() micronet.Coord { return m.dst }
func (m *ocnMsg) NoteHop()             { m.hops++ }
func (m *ocnMsg) NoteWait()            { m.waits++ }

// SetTraceID / TraceID implement micronet.TraceIdent.
func (m *ocnMsg) SetTraceID(id uint64) { m.tid = id }
func (m *ocnMsg) TraceID() uint64      { return m.tid }

// pending tracks an outstanding client request, possibly split across
// several line-sized OCN transactions (a 128-byte I-cache chunk spans two
// interleaved MT banks).
type pending struct {
	req  *proc.MemRequest
	port *ntPort
	// Assembly state for split reads.
	left  int
	buf   []byte
	base  uint64
	parts map[int]part // transaction id -> slice position
}

type part struct {
	off, n int
}

// ntPort is one client port (an NT on the processor-facing columns).
type ntPort struct {
	sys  *System
	name string
	at   micronet.Coord
	outQ micronet.Queue[outItem]
	// half selects the MT partition this port may address (when the
	// system is partitioned).
	half int
}

// outItem is a staged transaction awaiting injection. Submit builds the
// message but leaves the transaction id unassigned and the system-wide
// pending tables untouched: ports are driven from per-core step code, which
// the chip may run in parallel goroutines, so Submit must touch only
// port-local state. Ids are assigned and pending entries registered when the
// serial Tick drains the queue, in fixed port order.
type outItem struct {
	msg    *ocnMsg
	req    *proc.MemRequest
	pd     *pending // nil for unsplit requests
	off, n int
}

// Submit implements proc.MemPort. Requests that cross line boundaries are
// split into per-line OCN transactions, since consecutive lines live on
// different MTs; the port reassembles read data before completing.
func (p *ntPort) Submit(req *proc.MemRequest) bool {
	if p.outQ.Len() >= 8 {
		return false
	}
	n := req.N
	if req.IsWrite {
		n = len(req.Data)
	}
	start := req.Addr
	end := req.Addr + uint64(n)
	firstLine := start / LineBytes
	lastLine := (end - 1) / LineBytes
	if firstLine == lastLine {
		p.submitPart(req, nil, req.Addr, n, 0)
		return true
	}
	pd := &pending{req: req, port: p, base: start, parts: make(map[int]part)}
	if !req.IsWrite {
		pd.buf = make([]byte, n)
	}
	for line := firstLine; line <= lastLine; line++ {
		a := line * LineBytes
		if a < start {
			a = start
		}
		e := (line + 1) * LineBytes
		if e > end {
			e = end
		}
		pd.left++
		p.submitPart(req, pd, a, int(e-a), int(a-start))
	}
	return true
}

// submitPart stages one line-contained transaction. pd is nil for unsplit
// requests. route() reads only construction-time state, so this is safe
// from a parallel core step.
func (p *ntPort) submitPart(req *proc.MemRequest, pd *pending, addr uint64, n, off int) {
	mt := p.sys.route(p.half, addr)
	msg := &ocnMsg{
		dst: mt, kind: mkReq, addr: addr, n: n,
		write: req.IsWrite, origin: p.at,
		flits: 1 + (n+FlitBytes-1)/FlitBytes,
	}
	if req.IsWrite {
		msg.data = req.Data[off : off+n]
	}
	p.outQ.Push(outItem{msg: msg, req: req, pd: pd, off: off, n: n})
}

// mtState is one memory tile.
type mtState struct {
	at   micronet.Coord
	bank *cache.Bank
	mode Mode
	// Single-entry MSHR (Section 3.6): one outstanding SDC fetch.
	busy     bool
	waiters  []*ocnMsg
	waitLine uint64
	outQ     micronet.Queue[*ocnMsg]
	// Stats.
	Hits, Misses uint64
	// MSHRCoalesced counts misses absorbed by the in-flight fetch for the
	// same line; MSHRBlocked counts misses to a different line that had to
	// wait behind the single-entry MSHR (Section 3.6).
	MSHRCoalesced, MSHRBlocked uint64
}

// System is the full secondary memory system.
type System struct {
	cfg       Config
	mesh      *micronet.Mesh[*ocnMsg]
	mts       []*mtState
	mtAt      map[micronet.Coord]*mtState
	ports     map[string]*ntPort
	order     []*ntPort
	sdcs      [2]micronet.Coord
	sdcQ      map[int][]sdcJob // per-SDC in-flight jobs
	pending   map[int]pending
	pendSplit map[int]*pending
	nextID    int
	cycle     int64
	// delivery delay queue for multi-flit serialization
	delayed []delayedMsg

	// Stats.
	Requests, LineTransfers uint64
	// SDRAMReads/Writes count jobs accepted by the two SDCs (counted at
	// dispatch so a backpressured response retry is not double-counted).
	SDRAMReads, SDRAMWrites uint64

	metrics *obs.Sampler
}

type sdcJob struct {
	msg     *ocnMsg
	readyAt int64
}

type delayedMsg struct {
	msg     *ocnMsg
	readyAt int64
}

// New builds the memory system.
func New(cfg Config) *System {
	if cfg.Backing == nil {
		cfg.Backing = mem.New()
	}
	if cfg.SDRAMLatency == 0 {
		cfg.SDRAMLatency = 60
	}
	s := &System{
		cfg:       cfg,
		mesh:      micronet.NewMesh[*ocnMsg]("ocn", Rows, Cols),
		mtAt:      make(map[micronet.Coord]*mtState),
		ports:     make(map[string]*ntPort),
		pending:   make(map[int]pending),
		pendSplit: make(map[int]*pending),
		sdcQ:      make(map[int][]sdcJob),
	}
	s.mesh.DeliveryCap = 2
	mode := ModeL2
	if cfg.Scratchpad {
		mode = ModeScratchpad
	}
	for i := 0; i < NumMTs; i++ {
		at := micronet.Coord{Row: 1 + i/2, Col: i % 2}
		mt := &mtState{at: at, bank: cache.NewBank(64<<10, 4, LineBytes), mode: mode}
		s.mts = append(s.mts, mt)
		s.mtAt[at] = mt
	}
	s.sdcs = [2]micronet.Coord{{Row: 0, Col: 0}, {Row: Rows - 1, Col: 0}}
	s.mesh.Attach(cfg.Trace, obs.NetOCN)
	if sm := cfg.Metrics; sm != nil {
		s.metrics = sm
		sm.Register("ocn.occupancy", func() int64 { return int64(s.mesh.Occupancy()) })
		sm.Register("ocn.links_busy", func() int64 { return int64(s.mesh.LinksBusy()) })
		sm.Register("mshr.busy_mts", func() int64 {
			n := 0
			for _, mt := range s.mts {
				if mt.busy {
					n++
				}
			}
			return int64(n)
		})
		sm.Register("sdram.queue", func() int64 {
			return int64(len(s.sdcQ[0]) + len(s.sdcQ[1]))
		})
	}
	return s
}

// Port implements proc.MemBackend. Port names follow the proc convention
// ("dt0".."dt3", "it0".."it4"), optionally prefixed "p1:" for the second
// processor, which attaches to the east column's southern half.
func (s *System) Port(name string) proc.MemPort {
	if p, ok := s.ports[name]; ok {
		return p
	}
	half := 0
	base := name
	if len(name) > 3 && name[:3] == "p1:" {
		half = 1
		base = name[3:]
	}
	row := 1 + len(s.orderForHalf(half))%(Rows-2)
	_ = base
	at := micronet.Coord{Row: row, Col: 3}
	p := &ntPort{sys: s, name: name, at: at, half: half}
	s.ports[name] = p
	s.order = append(s.order, p)
	return p
}

func (s *System) orderForHalf(h int) []*ntPort {
	var out []*ntPort
	for _, p := range s.order {
		if p.half == h {
			out = append(out, p)
		}
	}
	return out
}

// route maps an address to its home MT. The default policy interleaves
// 64-byte lines across the sixteen banks; a partitioned system restricts
// each half's ports to its eight banks (Section 3.6's "two independent
// 512KB level-2 caches").
func (s *System) route(half int, addr uint64) micronet.Coord {
	line := addr / LineBytes
	if s.cfg.Partition {
		idx := int(line % (NumMTs / 2))
		if half == 1 {
			idx += NumMTs / 2
		}
		return s.mts[idx].at
	}
	return s.mts[int(line%NumMTs)].at
}

// MTFor exposes the routing decision (used by tests and tools).
func (s *System) MTFor(addr uint64) int {
	at := s.route(0, addr)
	for i, mt := range s.mts {
		if mt.at == at {
			return i
		}
	}
	return -1
}

// Tick implements proc.MemBackend: one OCN cycle.
func (s *System) Tick() {
	s.cycle++
	// Deliver delayed (multi-flit) messages whose serialization elapsed.
	kept := s.delayed[:0]
	for _, d := range s.delayed {
		if d.readyAt <= s.cycle {
			s.dispatch(d.msg)
		} else {
			kept = append(kept, d)
		}
	}
	s.delayed = kept

	s.mesh.Tick()
	// Drain deliveries at every node (skipped outright on cycles where the
	// mesh delivered nothing — the common case on a memory-idle OCN).
	if s.mesh.PendingDeliveries() > 0 {
		for r := 0; r < Rows; r++ {
			for c := 0; c < Cols; c++ {
				at := micronet.Coord{Row: r, Col: c}
				for {
					msg, ok := s.mesh.Deliver(at)
					if !ok {
						break
					}
					s.mesh.Pop(at)
					if msg.flits > 1 {
						s.delayed = append(s.delayed, delayedMsg{msg: msg, readyAt: s.cycle + int64(msg.flits-1)})
					} else {
						s.dispatch(msg)
					}
				}
			}
		}
	}
	// SDC completions.
	for sdc := 0; sdc < 2; sdc++ {
		var still []sdcJob
		for _, j := range s.sdcQ[sdc] {
			if j.readyAt > s.cycle {
				still = append(still, j)
				continue
			}
			m := j.msg
			if m.write {
				s.cfg.Backing.WriteBytes(m.addr, m.data)
				continue
			}
			resp := &ocnMsg{
				dst: m.mt, kind: mkSDCResp, addr: m.addr, n: m.n,
				data: s.cfg.Backing.ReadBytes(m.addr, m.n), id: m.id,
				origin: m.origin, mt: m.mt,
				flits: 1 + (m.n+FlitBytes-1)/FlitBytes,
			}
			if !s.mesh.Inject(s.sdcs[sdc], resp) {
				still = append(still, sdcJob{msg: m, readyAt: s.cycle + 1})
				continue
			}
		}
		s.sdcQ[sdc] = still
	}
	// MT output queues.
	for _, mt := range s.mts {
		for !mt.outQ.Empty() {
			if !s.mesh.Inject(mt.at, mt.outQ.Front()) {
				break
			}
			mt.outQ.Pop()
		}
	}
	// Port output queues: transaction ids are assigned here, at the serial
	// drain in fixed port order, so Submit stays safe from parallel core
	// steps. Ids are correlation keys only (map lookups, echoed in
	// responses), so the assignment point does not affect simulated timing.
	for _, p := range s.order {
		for !p.outQ.Empty() {
			if !s.mesh.CanInject(p.at) {
				break
			}
			it := p.outQ.Pop()
			id := s.nextID
			s.nextID++
			it.msg.id = id
			if it.pd == nil {
				s.pending[id] = pending{req: it.req, port: p}
			} else {
				it.pd.parts[id] = part{off: it.off, n: it.n}
				s.pendSplit[id] = it.pd
			}
			s.mesh.Inject(p.at, it.msg)
			s.Requests++
		}
	}
	// Sample before the propagate pass latches links into router buffers:
	// at this point linkBusy still counts the messages the routers sent
	// this cycle, which is the OCN link-utilization signal.
	if sm := s.metrics; sm != nil {
		sm.Sample(s.cycle)
	}
	s.mesh.Propagate()
}

// Quiet implements proc.EventHorizon. All outstanding OCN work is held
// behind computable drain deadlines rather than boolean busy flags: a single
// in-transit message drains at a known cycle (mesh.TransitBound — it can
// neither lose arbitration nor stall), staged injections in MT/port output
// queues drain on the very next tick, and multi-flit serializations and
// SDRAM jobs carry explicit readyAt stamps. All of those are reported by
// NextEventCycle instead of blocking quiescence. Only a mesh with two or
// more resident messages — whose future arbitration interleaving per-cycle
// routing must resolve — makes the system non-quiet.
func (s *System) Quiet() bool {
	if s.mesh.Quiet() {
		return true
	}
	_, ok := s.mesh.TransitBound()
	return ok
}

// NextEventCycle implements proc.EventHorizon: the earliest drain deadline
// across delayed multi-flit deliveries, in-flight SDRAM jobs, the mesh's
// solo in-transit message, and staged MT/port injections, in the backend
// cycle domain (serviced during the owner's step one cycle earlier). A
// staged injection drains on the next tick, so any non-empty output queue
// pins the horizon to cycle+1 — the owner cannot warp past it, which keeps
// the post-injection (no longer solo) mesh stepping cycle-by-cycle.
func (s *System) NextEventCycle() int64 {
	h := horizonNever
	for _, d := range s.delayed {
		if d.readyAt < h {
			h = d.readyAt
		}
	}
	for sdc := 0; sdc < 2; sdc++ {
		for _, j := range s.sdcQ[sdc] {
			if j.readyAt < h {
				h = j.readyAt
			}
		}
	}
	if t, ok := s.mesh.TransitBound(); ok {
		if d := s.cycle + t; d < h {
			h = d
		}
	}
	staged := false
	for _, mt := range s.mts {
		if !mt.outQ.Empty() {
			staged = true
			break
		}
	}
	if !staged {
		for _, p := range s.order {
			if !p.outQ.Empty() {
				staged = true
				break
			}
		}
	}
	if staged && s.cycle+1 < h {
		h = s.cycle + 1
	}
	return h
}

// Warp implements proc.EventHorizon: advance the clock and replay the mesh's
// skipped-cycle state changes (arbitration counter, and — when a solo message
// is in transit — its per-hop movement). The caller guarantees delta stays
// below every deadline NextEventCycle reported, so the warp can never jump
// a message past its delivery or an SDRAM job past its completion.
func (s *System) Warp(delta int64) {
	s.cycle += delta
	s.mesh.SkipTicks(delta)
}

// Outstanding returns the number of client transactions still registered in
// the pending tables (unsplit and split parts). A drained system — all
// requests completed, nothing in flight — must report zero; a nonzero value
// after a run means a response was lost or a pending entry leaked.
func (s *System) Outstanding() int {
	return len(s.pending) + len(s.pendSplit)
}

// dispatch handles a message arriving at its destination node.
func (s *System) dispatch(msg *ocnMsg) {
	switch msg.kind {
	case mkReq:
		s.mtRequest(msg)
	case mkSDCResp:
		s.mtFill(msg)
	case mkSDCReq:
		sdc := 0
		if msg.dst == s.sdcs[1] {
			sdc = 1
		}
		if msg.write {
			s.SDRAMWrites++
		} else {
			s.SDRAMReads++
		}
		s.sdcQ[sdc] = append(s.sdcQ[sdc], sdcJob{msg: msg, readyAt: s.cycle + int64(s.cfg.SDRAMLatency)})
	case mkResp:
		if pd, ok := s.pendSplit[msg.id]; ok {
			delete(s.pendSplit, msg.id)
			pt := pd.parts[msg.id]
			if !pd.req.IsWrite {
				copy(pd.buf[pt.off:pt.off+pt.n], msg.data)
			}
			pd.left--
			if pd.left == 0 && pd.req.Done != nil {
				pd.req.Done(pd.buf)
			}
			return
		}
		p, ok := s.pending[msg.id]
		if !ok {
			panic("nuca: response for unknown request")
		}
		delete(s.pending, msg.id)
		if p.req.Done != nil {
			p.req.Done(msg.data)
		}
	}
}

// nearestSDC picks the SDC closer to an MT.
func (s *System) nearestSDC(at micronet.Coord) micronet.Coord {
	if at.Row <= Rows/2 {
		return s.sdcs[0]
	}
	return s.sdcs[1]
}

// mtRequest services a client request at its home MT.
func (s *System) mtRequest(msg *ocnMsg) {
	mt := s.mtAt[msg.dst]
	if mt == nil {
		panic(fmt.Sprintf("nuca: request routed to non-MT node %v", msg.dst))
	}
	if mt.mode == ModeScratchpad {
		s.scratchAccess(mt, msg)
		return
	}
	if msg.write {
		if mt.bank.Write(msg.addr, msg.data) {
			mt.Hits++
			mt.outQ.Push(&ocnMsg{dst: msg.origin, kind: mkResp, id: msg.id, flits: 1})
			return
		}
	} else if data, ok := s.bankRead(mt, msg.addr, msg.n); ok {
		mt.Hits++
		mt.outQ.Push(&ocnMsg{
			dst: msg.origin, kind: mkResp, id: msg.id, data: data,
			flits: 1 + (msg.n+FlitBytes-1)/FlitBytes,
		})
		return
	}
	// Miss: single-entry MSHR — a second missing line stalls behind the
	// first (retried on fill).
	mt.Misses++
	line := mt.bank.LineAddr(msg.addr)
	if mt.busy {
		if line == mt.waitLine {
			mt.MSHRCoalesced++
			mt.waiters = append(mt.waiters, msg)
		} else {
			// Retry by self-requeueing into the MT next cycle.
			mt.MSHRBlocked++
			mt.waiters = append(mt.waiters, msg)
		}
		return
	}
	mt.busy = true
	mt.waitLine = line
	mt.waiters = append(mt.waiters, msg)
	sdc := s.nearestSDC(mt.at)
	mt.outQ.Push(&ocnMsg{
		dst: sdc, kind: mkSDCReq, addr: line, n: LineBytes,
		id: msg.id, origin: msg.origin, mt: mt.at, flits: 1,
	})
}

// bankRead reads n bytes, splitting line-straddling accesses.
func (s *System) bankRead(mt *mtState, addr uint64, n int) ([]byte, bool) {
	la := mt.bank.LineAddr(addr)
	if mt.bank.LineAddr(addr+uint64(n)-1) == la {
		return mt.bank.Read(addr, n)
	}
	first := int(la + LineBytes - addr)
	d1, ok := mt.bank.Read(addr, first)
	if !ok {
		return nil, false
	}
	d2, ok := mt.bank.Read(addr+uint64(first), n-first)
	if !ok {
		return nil, false
	}
	return append(d1, d2...), true
}

// mtFill installs a refilled line and replays waiters.
func (s *System) mtFill(msg *ocnMsg) {
	mt := s.mtAt[msg.mt]
	if v := mt.bank.Fill(msg.addr, msg.data); v.Valid {
		sdc := s.nearestSDC(mt.at)
		mt.outQ.Push(&ocnMsg{dst: sdc, kind: mkSDCReq, addr: v.Addr, data: v.Data, write: true, flits: 1 + LineBytes/FlitBytes})
	}
	s.LineTransfers++
	mt.busy = false
	waiters := mt.waiters
	mt.waiters = nil
	for _, w := range waiters {
		s.mtRequest(w)
	}
}

// scratchAccess services a scratchpad-mode access: the bank IS the memory
// for its interleaved slice; untouched lines are zero-filled on first use.
func (s *System) scratchAccess(mt *mtState, msg *ocnMsg) {
	line := mt.bank.LineAddr(msg.addr)
	if !mt.bank.Probe(line) {
		mt.bank.Fill(line, make([]byte, LineBytes))
	}
	end := mt.bank.LineAddr(msg.addr + uint64(msg.n) - 1)
	if end != line && !mt.bank.Probe(end) {
		mt.bank.Fill(end, make([]byte, LineBytes))
	}
	if msg.write {
		mt.bank.Write(msg.addr, msg.data)
		mt.outQ.Push(&ocnMsg{dst: msg.origin, kind: mkResp, id: msg.id, flits: 1})
		return
	}
	data, _ := s.bankRead(mt, msg.addr, msg.n)
	mt.outQ.Push(&ocnMsg{
		dst: msg.origin, kind: mkResp, id: msg.id, data: data,
		flits: 1 + (msg.n+FlitBytes-1)/FlitBytes,
	})
}

// Flush writes every dirty L2 line back to the backing store (test and
// shutdown aid).
func (s *System) Flush() {
	for _, mt := range s.mts {
		if mt.mode == ModeScratchpad {
			continue
		}
		for _, v := range mt.bank.DirtyLines() {
			s.cfg.Backing.WriteBytes(v.Addr, v.Data)
		}
	}
}

// Stats returns per-MT hit/miss counters.
func (s *System) Stats() (hits, misses uint64) {
	for _, mt := range s.mts {
		hits += mt.Hits
		misses += mt.Misses
	}
	return
}

// StatsReport aggregates the memory system's counters for reporting.
type StatsReport struct {
	Requests      uint64 // client transactions injected at the NT ports
	LineTransfers uint64 // SDC line fills installed at MTs
	OCNInjected   uint64 // messages entering the OCN mesh
	OCNDelivered  uint64 // messages delivered by the OCN mesh
	Hits, Misses  uint64 // MT bank hits/misses
	MSHRCoalesced uint64 // misses absorbed by an in-flight fetch of the same line
	MSHRBlocked   uint64 // misses stalled behind the single-entry MSHR
	SDRAMReads    uint64 // read jobs accepted by the SDCs
	SDRAMWrites   uint64 // write(-back) jobs accepted by the SDCs
}

// Report snapshots the system-wide counters.
func (s *System) Report() StatsReport {
	r := StatsReport{
		Requests:      s.Requests,
		LineTransfers: s.LineTransfers,
		OCNInjected:   s.mesh.Injected(),
		OCNDelivered:  s.mesh.Delivered(),
		SDRAMReads:    s.SDRAMReads,
		SDRAMWrites:   s.SDRAMWrites,
	}
	for _, mt := range s.mts {
		r.Hits += mt.Hits
		r.Misses += mt.Misses
		r.MSHRCoalesced += mt.MSHRCoalesced
		r.MSHRBlocked += mt.MSHRBlocked
	}
	return r
}

func (r StatsReport) String() string {
	return fmt.Sprintf(
		"NUCA: requests=%d hits=%d misses=%d line-fills=%d\n"+
			"OCN:  injected=%d delivered=%d\n"+
			"MSHR: coalesced=%d blocked=%d\n"+
			"SDRAM: reads=%d writes=%d",
		r.Requests, r.Hits, r.Misses, r.LineTransfers,
		r.OCNInjected, r.OCNDelivered,
		r.MSHRCoalesced, r.MSHRBlocked,
		r.SDRAMReads, r.SDRAMWrites)
}
