// Package nuca implements the TRIPS secondary memory system (paper
// Section 3.6): a 1MB static NUCA array of sixteen memory tiles (MTs), each
// a 4-way 64KB bank with an on-chip-network router and a single-entry MSHR,
// embedded in a 4x10 wormhole-routed OCN mesh with 16-byte links. Network
// tiles (NTs) around the array hold programmable routing tables that
// translate memory-system requests, letting a programmer configure the
// array as a single shared L2, as two independent 512KB L2s, or as on-chip
// scratchpad memory. Two SDRAM controllers (SDCs) sit at the mesh ends.
//
// The package satisfies proc.MemBackend, so a core's DT and IT ports plug
// directly into the OCN, each IT/DT pair getting its own private port as in
// the prototype.
package nuca

import (
	"fmt"
	"math"

	"trips/internal/cache"
	"trips/internal/mem"
	"trips/internal/micronet"
	"trips/internal/obs"
	"trips/internal/proc"
)

// horizonNever means no deadline-held event is outstanding (matches the
// sentinel convention of proc.EventHorizon).
const horizonNever = int64(math.MaxInt64)

// Mesh geometry (paper Section 3.6, Figure 2): 4 columns x 10 rows. The
// sixteen MTs occupy columns 0-1 of rows 1-8's even positions — concretely
// rows 1..8 in columns 0 and 1. Processor-facing NTs occupy columns 2-3;
// the SDCs attach at rows 0 and 9.
const (
	Rows      = 10
	Cols      = 4
	NumMTs    = 16
	LineBytes = 64
	// FlitBytes is the OCN link width; a 64-byte line moves as 4 flits
	// (Section 3.6: 16-byte data links).
	FlitBytes = 16
)

// Mode selects what an MT bank does.
type Mode int

const (
	// ModeL2: the bank caches DRAM lines.
	ModeL2 Mode = iota
	// ModeScratchpad: the bank is directly addressed on-chip memory
	// (no refills; the bank is the backing store for its range).
	ModeScratchpad
)

// Config parameterizes the memory system.
type Config struct {
	// Backing is the SDRAM contents.
	Backing *mem.Memory
	// SDRAMLatency is the SDC access time in OCN cycles.
	SDRAMLatency int
	// Partition splits the MTs between the two processors: 0 = one shared
	// L2 (any port may reach any MT); 1 = two independent halves.
	Partition bool
	// Scratchpad switches every MT to scratchpad mode.
	Scratchpad bool
	// Trace, when non-nil, records per-message OCN transport events.
	Trace *obs.Tracer
	// Metrics, when non-nil, samples OCN occupancy and MSHR/SDRAM queue
	// depth once per sample interval of ticked cycles.
	Metrics *obs.Sampler
}

// msgKind discriminates OCN transactions.
type msgKind uint8

const (
	mkReq msgKind = iota
	mkResp
	mkSDCReq
	mkSDCResp
)

// ocnMsg is one OCN transaction. Multi-flit payloads are modeled as a
// serialization delay added at delivery (flits - 1 cycles), a documented
// approximation of wormhole flit pipelining.
type ocnMsg struct {
	dst    micronet.Coord
	kind   msgKind
	addr   uint64
	n      int
	data   []byte
	write  bool
	id     int
	origin micronet.Coord // requester NT for the reply
	mt     micronet.Coord // MT awaiting an SDC response
	flits  int
	hops   int
	waits  int
	tid    uint64 // trace id stamped by a traced mesh at Inject
}

func (m *ocnMsg) Dest() micronet.Coord { return m.dst }
func (m *ocnMsg) NoteHop()             { m.hops++ }
func (m *ocnMsg) NoteWait()            { m.waits++ }

// SetTraceID / TraceID implement micronet.TraceIdent.
func (m *ocnMsg) SetTraceID(id uint64) { m.tid = id }
func (m *ocnMsg) TraceID() uint64      { return m.tid }

// pending tracks an outstanding client request, possibly split across
// several line-sized OCN transactions (a 128-byte I-cache chunk spans two
// interleaved MT banks).
type pending struct {
	req  *proc.MemRequest
	port *ntPort
	// Assembly state for split reads.
	left  int
	buf   []byte
	base  uint64
	parts map[int]part // transaction id -> slice position
}

type part struct {
	off, n int
}

// ntPort is one client port (an NT on the processor-facing columns).
type ntPort struct {
	sys  *System
	name string
	at   micronet.Coord
	outQ micronet.Queue[outItem]
	// half selects the MT partition this port may address (when the
	// system is partitioned).
	half int
	// owner identifies the core this port belongs to for bounded-lag
	// stepping (-1: unowned, e.g. a DMA port — always drained immediately).
	owner int
	// clock, when non-nil, stamps staged transactions with the owning
	// core's local cycle so the serial drain can replay the sequential
	// injection schedule even when the core has run ahead of the memory
	// clock.
	clock func() int64
	// mtDist[i] is the wormhole Manhattan distance from this port to MT i,
	// precomputed at port creation: the per-(bank, port) generalization of
	// the single CrossCoreLag minimum, used to seed per-transaction response
	// deadlines at drain time.
	mtDist [NumMTs]int64
}

// outItem is a staged transaction awaiting injection. Submit builds the
// message but leaves the transaction id unassigned and the system-wide
// pending tables untouched: ports are driven from per-core step code, which
// the chip may run in parallel goroutines, so Submit must touch only
// port-local state. Ids are assigned and pending entries registered when the
// serial Tick drains the queue, in fixed port order.
type outItem struct {
	msg    *ocnMsg
	req    *proc.MemRequest
	pd     *pending // nil for unsplit requests
	off, n int
	// stamp is the submitting clock's cycle at Submit time (0 when the port
	// has no bound clock). The serial drain only injects an item once the
	// backend clock has passed its stamp, which reproduces the sequential
	// drain schedule when the submitting core has run ahead under
	// bounded-lag stepping.
	stamp int64
}

// Submit implements proc.MemPort. Requests that cross line boundaries are
// split into per-line OCN transactions, since consecutive lines live on
// different MTs; the port reassembles read data before completing.
func (p *ntPort) Submit(req *proc.MemRequest) bool {
	if p.outQ.Len() >= 8 {
		return false
	}
	n := req.N
	if req.IsWrite {
		n = len(req.Data)
	}
	start := req.Addr
	end := req.Addr + uint64(n)
	firstLine := start / LineBytes
	lastLine := (end - 1) / LineBytes
	if firstLine == lastLine {
		p.submitPart(req, nil, req.Addr, n, 0)
		return true
	}
	pd := &pending{req: req, port: p, base: start, parts: make(map[int]part)}
	if !req.IsWrite {
		pd.buf = make([]byte, n)
	}
	for line := firstLine; line <= lastLine; line++ {
		a := line * LineBytes
		if a < start {
			a = start
		}
		e := (line + 1) * LineBytes
		if e > end {
			e = end
		}
		pd.left++
		p.submitPart(req, pd, a, int(e-a), int(a-start))
	}
	return true
}

// submitPart stages one line-contained transaction. pd is nil for unsplit
// requests. route() reads only construction-time state, so this is safe
// from a parallel core step.
func (p *ntPort) submitPart(req *proc.MemRequest, pd *pending, addr uint64, n, off int) {
	mt := p.sys.route(p.half, addr)
	msg := &ocnMsg{
		dst: mt, kind: mkReq, addr: addr, n: n,
		write: req.IsWrite, origin: p.at,
		flits: 1 + (n+FlitBytes-1)/FlitBytes,
	}
	if req.IsWrite {
		msg.data = req.Data[off : off+n]
	}
	var stamp int64
	switch {
	case p.sys.inTick:
		// Submission issued from inside a Done callback during the serial
		// backend tick (e.g. a line fill evicting a dirty victim). The
		// sequential schedule drains it later in this same tick, but the
		// owning core's clock already reads the current backend cycle under
		// lockstep, so stamping from the clock would delay it one tick.
		// Stamp one behind the backend cycle to replay the sequential drain.
		stamp = p.sys.cycle - 1
	case p.clock != nil:
		stamp = p.clock()
	}
	p.outQ.Push(outItem{msg: msg, req: req, pd: pd, off: off, n: n, stamp: stamp})
	if p.owner >= 0 {
		// Owner counters are per-port-owner cells: each core goroutine only
		// touches its own cell, and drains (which decrement) run in the
		// serial memory phase, barrier-ordered against core steps.
		p.sys.stagedByOwner[p.owner]++
	} else {
		// Unowned (DMA) ports submit from the serial chip phase only, so a
		// plain shared counter is safe.
		p.sys.stagedUnowned++
	}
}

// mtState is one memory tile.
type mtState struct {
	at    micronet.Coord
	index int // position in System.mts (partition half, distance tables)
	bank  *cache.Bank
	mode  Mode
	// sdcDist is the Manhattan distance to this MT's nearest SDC,
	// precomputed at construction for the fill-deadline terms.
	sdcDist int64
	// Single-entry MSHR (Section 3.6): one outstanding SDC fetch.
	busy     bool
	waiters  []*ocnMsg
	waitLine uint64
	// fillDeadline, while busy, is a lower bound (backend cycles) on the
	// tick at which the in-flight SDC fetch can install its line: staged
	// fetch transit + SDRAM latency + return transit, raised to the exact
	// completion time once the SDC accepts the job. Waiter response
	// deadlines build on it.
	fillDeadline int64
	outQ         micronet.Queue[*ocnMsg]
	// Stats.
	Hits, Misses uint64
	// MSHRCoalesced counts misses absorbed by the in-flight fetch for the
	// same line; MSHRBlocked counts misses to a different line that had to
	// wait behind the single-entry MSHR (Section 3.6).
	MSHRCoalesced, MSHRBlocked uint64
}

// maxOwners bounds the per-owner accounting arrays (the prototype has two
// processors per chip).
const maxOwners = 2

// System is the full secondary memory system.
type System struct {
	cfg       Config
	mesh      *micronet.Mesh[*ocnMsg]
	mts       []*mtState
	mtGrid    [Rows][2]*mtState // MT lookup by coordinate (MTs live in cols 0-1)
	ports     map[string]*ntPort
	order     []*ntPort
	sdcs      [2]micronet.Coord
	sdcQ      [2][]sdcJob // per-SDC in-flight jobs
	pending   map[int]pending
	pendSplit map[int]*pending
	nextID    int
	cycle     int64
	// delivery delay queue for multi-flit serialization
	delayed []delayedMsg
	// free is the ocnMsg recycle list. Messages created and consumed inside
	// the serial Tick/dispatch path (responses, SDC traffic) cycle through
	// it; Submit-side request shells may enter it when consumed but are
	// never taken from it, because Submit runs on parallel core goroutines
	// while the pool is serial-only.
	free []*ocnMsg
	// inTick is set for the duration of the serial Tick so submissions
	// issued from inside Done callbacks (serviced by this very tick) can be
	// stamped to drain on the sequential schedule rather than the owning
	// core's already-advanced clock.
	inTick bool
	// mtStaged counts staged messages across all MT output queues, and
	// stagedUnowned counts staged port transactions on unowned (DMA) ports;
	// together with the per-owner staging cells they make the empty-queue
	// checks in Tick and horizon O(1). Unowned ports submit only from the
	// serial chip phase, so a plain counter is race-free.
	mtStaged      int
	stagedUnowned int64

	// Bounded-lag support: per-owner outstanding-work accounting, the
	// memoized cross-core visibility lag, and the optional effect gate a
	// bounded-lag coordinator installs to detect responses that would land
	// behind a core's already-simulated cycles (rollback trigger).
	ownerFn        func(name string) int
	stagedByOwner  [maxOwners]int64
	pendingByOwner [maxOwners]int
	lagCache       int64
	gate           func(owner int, effectCycle int64)

	// Per-transaction response deadlines for owned-port transactions: a
	// lower bound (backend cycles) on the tick at which the transaction's
	// response can dispatch at its port. Seeded at drain from the
	// per-(bank, port) distance table, ratcheted upward as the transaction's
	// slow path reveals itself (MSHR fetch, SDC acceptance), and checked
	// against the actual dispatch cycle before deletion. Unowned (DMA)
	// transactions are never tracked, keeping the DMA hot path untouched.
	respDeadline map[int]rdEntry
	deadlineAt   int64 // memo key for deadlineFor (-1: dirty)
	deadlineFor  [maxOwners]int64

	// Horizon memoization: Quiet and NextEventCycle are consulted together
	// on every coordinator iteration; both derive from one scan of the
	// deadline sources, cached per backend cycle.
	horizonAt    int64
	horizonQuiet bool
	horizonNEC   int64

	// Stats.
	Requests, LineTransfers uint64
	// SDRAMReads/Writes count jobs accepted by the two SDCs (counted at
	// dispatch so a backpressured response retry is not double-counted).
	SDRAMReads, SDRAMWrites uint64

	metrics *obs.Sampler
}

// newMsg takes a recycled message shell from the pool (serial contexts
// only) and freeMsg returns a fully consumed one, dropping its payload
// reference. Callers always overwrite every field on allocation, so reuse
// cannot leak state between transactions.
func (s *System) newMsg() *ocnMsg {
	if n := len(s.free); n > 0 {
		m := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return m
	}
	return &ocnMsg{}
}

func (s *System) freeMsg(m *ocnMsg) {
	*m = ocnMsg{}
	s.free = append(s.free, m)
}

// mtPush stages a message on an MT output queue, keeping the system-wide
// staged count that lets Tick and horizon skip the per-MT scan when every
// queue is empty.
func (s *System) mtPush(mt *mtState, m *ocnMsg) {
	mt.outQ.Push(m)
	s.mtStaged++
}

// rdEntry is one tracked transaction's response deadline: the bound itself
// and the owning port (whose distance table prices waiter re-deadlines).
type rdEntry struct {
	at   int64
	port *ntPort
}

type sdcJob struct {
	msg     *ocnMsg
	readyAt int64
}

type delayedMsg struct {
	msg     *ocnMsg
	readyAt int64
}

// New builds the memory system.
func New(cfg Config) *System {
	if cfg.Backing == nil {
		cfg.Backing = mem.New()
	}
	if cfg.SDRAMLatency == 0 {
		cfg.SDRAMLatency = 60
	}
	s := &System{
		cfg:          cfg,
		mesh:         micronet.NewMesh[*ocnMsg]("ocn", Rows, Cols),
		ports:        make(map[string]*ntPort),
		pending:      make(map[int]pending),
		pendSplit:    make(map[int]*pending),
		respDeadline: make(map[int]rdEntry),
		horizonAt:    -1,
		deadlineAt:   -1,
	}
	s.mesh.DeliveryCap = 2
	mode := ModeL2
	if cfg.Scratchpad {
		mode = ModeScratchpad
	}
	for i := 0; i < NumMTs; i++ {
		at := micronet.Coord{Row: 1 + i/2, Col: i % 2}
		mt := &mtState{at: at, index: i, bank: cache.NewBank(64<<10, 4, LineBytes), mode: mode}
		s.mts = append(s.mts, mt)
		s.mtGrid[at.Row][at.Col] = mt
	}
	s.sdcs = [2]micronet.Coord{{Row: 0, Col: 0}, {Row: Rows - 1, Col: 0}}
	for _, mt := range s.mts {
		mt.sdcDist = int64(mt.at.Manhattan(s.nearestSDC(mt.at)))
	}
	s.mesh.Attach(cfg.Trace, obs.NetOCN)
	if sm := cfg.Metrics; sm != nil {
		s.metrics = sm
		sm.Register("ocn.occupancy", func() int64 { return int64(s.mesh.Occupancy()) })
		sm.Register("ocn.links_busy", func() int64 { return int64(s.mesh.LinksBusy()) })
		sm.Register("mshr.busy_mts", func() int64 {
			n := 0
			for _, mt := range s.mts {
				if mt.busy {
					n++
				}
			}
			return int64(n)
		})
		sm.Register("sdram.queue", func() int64 {
			return int64(len(s.sdcQ[0]) + len(s.sdcQ[1]))
		})
	}
	return s
}

// Port implements proc.MemBackend. Port names follow the proc convention
// ("dt0".."dt3", "it0".."it4"), optionally prefixed "p1:" for the second
// processor, which attaches to the east column's southern half.
func (s *System) Port(name string) proc.MemPort {
	if p, ok := s.ports[name]; ok {
		return p
	}
	half := 0
	base := name
	if len(name) > 3 && name[:3] == "p1:" {
		half = 1
		base = name[3:]
	}
	row := 1 + len(s.orderForHalf(half))%(Rows-2)
	_ = base
	at := micronet.Coord{Row: row, Col: 3}
	p := &ntPort{sys: s, name: name, at: at, half: half, owner: -1}
	for _, mt := range s.mts {
		p.mtDist[mt.index] = int64(p.at.Manhattan(mt.at))
	}
	if s.ownerFn != nil {
		p.owner = s.ownerFn(name)
	}
	s.ports[name] = p
	s.order = append(s.order, p)
	s.lagCache = 0 // port set changed: recompute the cross-core lag
	return p
}

// AssignOwners maps port names to bounded-lag owners (core indices 0..1, or
// -1 for unowned ports such as the DMA controllers'). The function is applied
// to every existing port and remembered for ports created later.
func (s *System) AssignOwners(fn func(name string) int) {
	s.ownerFn = fn
	for _, p := range s.order {
		p.owner = fn(p.name)
	}
	s.lagCache = 0
}

// BindClock attaches a local-cycle stamp source to every port of the given
// owner. Staged submissions carry the clock's value so the serial drain can
// replay the sequential injection schedule while the core runs ahead.
func (s *System) BindClock(owner int, clock func() int64) {
	for _, p := range s.order {
		if p.owner == owner {
			p.clock = clock
		}
	}
}

// SetEffectGate installs the bounded-lag coordinator's response observer: it
// is called with the owning core and the backend cycle at which each client
// response's effects become core-visible, before the response's Done callback
// runs. A coordinator uses it to detect (and roll back from) responses that
// land behind a core's already-simulated cycles. nil uninstalls.
func (s *System) SetEffectGate(fn func(owner int, effectCycle int64)) { s.gate = fn }

// StagedFor returns the number of staged (not yet drained) transactions
// across the owner's ports, and OutstandingFor adds the in-flight ones: a
// core with OutstandingFor == 0 has no memory transaction anywhere in the
// system, so no response can reach it without a future Submit.
func (s *System) StagedFor(owner int) int { return int(s.stagedByOwner[owner]) }

// OutstandingFor returns staged plus in-flight transactions for one owner.
func (s *System) OutstandingFor(owner int) int {
	return int(s.stagedByOwner[owner]) + s.pendingByOwner[owner]
}

// ResponseDeadlineFor returns the earliest backend cycle at which any of the
// owner's outstanding transactions can have its response dispatch at the
// owning core's port — the per-owner aggregation of the per-transaction
// deadlines, which a bounded-lag coordinator may use directly as a stride
// horizon in place of one-cycle lockstep. Returns horizonNever (MaxInt64)
// when the owner has no outstanding transactions. Memoized per backend cycle
// alongside the horizon scan; HorizonDirty invalidates.
func (s *System) ResponseDeadlineFor(owner int) int64 {
	if s.deadlineAt != s.cycle {
		s.scanDeadlines()
	}
	return s.deadlineFor[owner]
}

// scanDeadlines recomputes the per-owner deadline minima. Before folding, it
// tightens tracked per-transaction deadlines from the live state whose
// timing is now better known than at seed time: responses resident in the
// mesh cannot dispatch sooner than their remaining Manhattan transit (the
// multi-message earliest-arrival bound — position-now implies a permanent
// floor, so ratcheting the stored entry is sound under any later
// contention), and responses in multi-flit serialization dispatch exactly at
// their readyAt. Staged (undrained) port transactions are priced on the fly
// from their drain stamp plus round-trip transit, mirroring the drain-time
// seeding without registering ids early.
func (s *System) scanDeadlines() {
	for i := range s.deadlineFor {
		s.deadlineFor[i] = horizonNever
	}
	if len(s.respDeadline) > 0 {
		s.mesh.VisitResidents(func(m *ocnMsg, at micronet.Coord) {
			if m.kind != mkResp {
				return
			}
			if e, ok := s.respDeadline[m.id]; ok {
				if nd := s.cycle + int64(at.Manhattan(m.dst)); nd > e.at {
					e.at = nd
					s.respDeadline[m.id] = e
				}
			}
		})
		for _, d := range s.delayed {
			if d.msg.kind != mkResp {
				continue
			}
			if e, ok := s.respDeadline[d.msg.id]; ok && d.readyAt > e.at {
				e.at = d.readyAt
				s.respDeadline[d.msg.id] = e
			}
		}
		for _, e := range s.respDeadline {
			if e.at < s.deadlineFor[e.port.owner] {
				s.deadlineFor[e.port.owner] = e.at
			}
		}
	}
	if s.stagedByOwner[0] > 0 || s.stagedByOwner[1] > 0 {
		for _, p := range s.order {
			if p.owner < 0 || p.outQ.Empty() {
				continue
			}
			for i := 0; i < p.outQ.Len(); i++ {
				it := p.outQ.At(i)
				t := it.stamp
				if t < s.cycle {
					t = s.cycle
				}
				mt := s.mtGrid[it.msg.dst.Row][it.msg.dst.Col]
				if d := t + 1 + 2*p.mtDist[mt.index]; d < s.deadlineFor[p.owner] {
					s.deadlineFor[p.owner] = d
				}
			}
		}
	}
	s.deadlineAt = s.cycle
}

// CrossCoreLag returns L, the bounded-lag visibility horizon: a core whose
// memory system holds none of its transactions cannot observe any response
// effect for at least L cycles after a Submit. The fastest possible effect
// chain is a single-flit write hit: injection on the tick after the stamp,
// one hop per tick to the nearest reachable MT (Manhattan distance D >= 2 —
// ports sit on column 3, MTs on columns 0-1), a same-tick bank hit and
// response injection, D hops back, and a delivery tick — effects become
// visible 2D+3 cycles after the stamp. L = 2D+1 keeps a two-cycle safety
// margin and is asserted against observed response timing by a property
// test. The value is memoized and recomputed when the port set changes.
func (s *System) CrossCoreLag() int64 {
	if s.lagCache > 0 {
		return s.lagCache
	}
	minD := int64(-1)
	for _, p := range s.order {
		if p.owner < 0 {
			continue
		}
		for _, mt := range s.mts {
			if s.cfg.Partition && s.mtHalf(mt) != p.half {
				continue
			}
			if d := p.mtDist[mt.index]; minD < 0 || d < minD {
				minD = d
			}
		}
	}
	if minD < 0 {
		minD = 2 // no owned ports yet: the geometric minimum (|Δrow|=0, col 3 -> col 1)
	}
	s.lagCache = 2*minD + 1
	return s.lagCache
}

// mtHalf returns which partition half an MT belongs to (mts[0..7] are half
// 0, mts[8..15] half 1 — the route() interleave).
func (s *System) mtHalf(mt *mtState) int {
	if mt.index >= NumMTs/2 {
		return 1
	}
	return 0
}

func (s *System) orderForHalf(h int) []*ntPort {
	var out []*ntPort
	for _, p := range s.order {
		if p.half == h {
			out = append(out, p)
		}
	}
	return out
}

// route maps an address to its home MT. The default policy interleaves
// 64-byte lines across the sixteen banks; a partitioned system restricts
// each half's ports to its eight banks (Section 3.6's "two independent
// 512KB level-2 caches").
func (s *System) route(half int, addr uint64) micronet.Coord {
	line := addr / LineBytes
	if s.cfg.Partition {
		idx := int(line % (NumMTs / 2))
		if half == 1 {
			idx += NumMTs / 2
		}
		return s.mts[idx].at
	}
	return s.mts[int(line%NumMTs)].at
}

// MTFor exposes the routing decision (used by tests and tools).
func (s *System) MTFor(addr uint64) int {
	at := s.route(0, addr)
	for i, mt := range s.mts {
		if mt.at == at {
			return i
		}
	}
	return -1
}

// Tick implements proc.MemBackend: one OCN cycle.
func (s *System) Tick() {
	s.cycle++
	s.inTick = true
	// Deliver delayed (multi-flit) messages whose serialization elapsed.
	kept := s.delayed[:0]
	for _, d := range s.delayed {
		if d.readyAt <= s.cycle {
			s.dispatch(d.msg)
		} else {
			kept = append(kept, d)
		}
	}
	s.delayed = kept

	s.mesh.Tick()
	// Drain deliveries at every node (skipped outright on cycles where the
	// mesh delivered nothing — the common case on a memory-idle OCN).
	if s.mesh.PendingDeliveries() > 0 {
		for r := 0; r < Rows; r++ {
			for c := 0; c < Cols; c++ {
				at := micronet.Coord{Row: r, Col: c}
				for {
					msg, ok := s.mesh.Deliver(at)
					if !ok {
						break
					}
					s.mesh.Pop(at)
					if msg.flits > 1 {
						s.delayed = append(s.delayed, delayedMsg{msg: msg, readyAt: s.cycle + int64(msg.flits-1)})
					} else {
						s.dispatch(msg)
					}
				}
			}
		}
	}
	// SDC completions. Filtered in place: jobs wait out the full SDRAM
	// latency here, so a fresh slice per tick would reallocate once per
	// waiting cycle per job.
	for sdc := 0; sdc < 2; sdc++ {
		if len(s.sdcQ[sdc]) == 0 {
			continue
		}
		still := s.sdcQ[sdc][:0]
		for _, j := range s.sdcQ[sdc] {
			if j.readyAt > s.cycle {
				still = append(still, j)
				continue
			}
			m := j.msg
			if m.write {
				s.cfg.Backing.WriteBytes(m.addr, m.data)
				s.freeMsg(m)
				continue
			}
			resp := s.newMsg()
			*resp = ocnMsg{
				dst: m.mt, kind: mkSDCResp, addr: m.addr, n: m.n,
				data: s.cfg.Backing.ReadBytes(m.addr, m.n), id: m.id,
				origin: m.origin, mt: m.mt,
				flits: 1 + (m.n+FlitBytes-1)/FlitBytes,
			}
			if !s.mesh.Inject(s.sdcs[sdc], resp) {
				s.freeMsg(resp)
				still = append(still, sdcJob{msg: m, readyAt: s.cycle + 1})
				continue
			}
			s.freeMsg(m)
		}
		s.sdcQ[sdc] = still
	}
	// MT output queues (skipped outright when nothing is staged anywhere).
	if s.mtStaged > 0 {
		for _, mt := range s.mts {
			for !mt.outQ.Empty() {
				if !s.mesh.Inject(mt.at, mt.outQ.Front()) {
					break
				}
				mt.outQ.Pop()
				s.mtStaged--
			}
		}
	}
	// Port output queues: transaction ids are assigned here, at the serial
	// drain in fixed port order, so Submit stays safe from parallel core
	// steps. Ids are correlation keys only (map lookups, echoed in
	// responses), so the assignment point does not affect simulated timing.
	// Stamped items (bounded-lag cores that ran ahead) wait until the
	// backend clock passes their stamp, replaying the sequential injection
	// schedule.
	if s.stagedUnowned > 0 || s.stagedByOwner[0] > 0 || s.stagedByOwner[1] > 0 {
		for _, p := range s.order {
			for !p.outQ.Empty() {
				if p.outQ.Front().stamp >= s.cycle || !s.mesh.CanInject(p.at) {
					break
				}
				it := p.outQ.Pop()
				id := s.nextID
				s.nextID++
				it.msg.id = id
				if it.pd == nil {
					s.pending[id] = pending{req: it.req, port: p}
				} else {
					it.pd.parts[id] = part{off: it.off, n: it.n}
					s.pendSplit[id] = it.pd
				}
				if p.owner >= 0 {
					s.stagedByOwner[p.owner]--
					s.pendingByOwner[p.owner]++
					// Seed the response deadline: a request injected this tick
					// needs D hops out, and its response D hops back, before it
					// can dispatch at the port — the fastest chain (single-flit
					// hit) dispatches at cycle+2D+2, so cycle+2D keeps the same
					// two-cycle safety margin CrossCoreLag documents. Slow
					// paths (MSHR miss, SDRAM) ratchet the bound upward later.
					mt := s.mtGrid[it.msg.dst.Row][it.msg.dst.Col]
					s.respDeadline[id] = rdEntry{at: s.cycle + 2*p.mtDist[mt.index], port: p}
				} else {
					s.stagedUnowned--
				}
				s.mesh.Inject(p.at, it.msg)
				s.Requests++
			}
		}
	}
	// Sample before the propagate pass latches links into router buffers:
	// at this point linkBusy still counts the messages the routers sent
	// this cycle, which is the OCN link-utilization signal.
	if sm := s.metrics; sm != nil {
		sm.Sample(s.cycle)
	}
	s.mesh.Propagate()
	s.inTick = false
}

// horizon computes quiescence and the next-event deadline in one scan,
// memoized per backend cycle: coordinators consult Quiet and NextEventCycle
// together on every iteration, and both derive from the same deadline
// sources. The cache is keyed on s.cycle (every Tick or Warp moves it);
// callers that stage new submissions without ticking — bounded-lag core
// strides — must call HorizonDirty before re-reading.
func (s *System) horizon() (bool, int64) {
	if s.horizonAt == s.cycle {
		return s.horizonQuiet, s.horizonNEC
	}
	// All outstanding OCN work is held behind computable drain deadlines
	// rather than boolean busy flags: resident messages whose trajectories
	// are provably conflict-free advance one hop per tick until the bound
	// (mesh.TransitBoundMulti), staged injections in MT/port output queues
	// drain once the backend clock passes their stamp, and multi-flit
	// serializations and SDRAM jobs carry explicit readyAt stamps. Only a
	// mesh state whose future arbitration must be resolved by per-cycle
	// routing (a message mid-link, an unpopped delivery, contending
	// trajectories past their window) makes the system non-quiet.
	quiet := true
	h := horizonNever
	if !s.mesh.Quiet() {
		if t, ok := s.mesh.TransitBoundMulti(); ok {
			h = micronet.MinHorizon(h, s.cycle+t)
		} else {
			// Contended trajectories must be resolved by per-cycle routing,
			// so warping stays unsound (quiet stays false) — but the earliest
			// possible arrival still floors the next event: no delivery can
			// surface before it, so coordinators waiting on this domain need
			// not treat the horizon as "now".
			quiet = false
			if ea := s.mesh.EarliestArrival(); ea != micronet.HorizonNever {
				h = micronet.MinHorizon(h, s.cycle+ea)
			}
		}
	}
	for _, d := range s.delayed {
		h = micronet.MinHorizon(h, d.readyAt)
	}
	for sdc := 0; sdc < 2; sdc++ {
		for _, j := range s.sdcQ[sdc] {
			h = micronet.MinHorizon(h, j.readyAt)
		}
	}
	if s.mtStaged > 0 && s.cycle+1 < h {
		h = s.cycle + 1
	}
	if s.stagedUnowned > 0 || s.stagedByOwner[0] > 0 || s.stagedByOwner[1] > 0 {
		for _, p := range s.order {
			if p.outQ.Empty() {
				continue
			}
			// A stamped item drains on the tick after its stamp; an unstamped
			// one (stamp 0) on the very next tick.
			d := p.outQ.Front().stamp + 1
			if d < s.cycle+1 {
				d = s.cycle + 1
			}
			if d < h {
				h = d
			}
		}
	}
	s.horizonAt, s.horizonQuiet, s.horizonNEC = s.cycle, quiet, h
	return quiet, h
}

// HorizonDirty invalidates the memoized Quiet/NextEventCycle scan and the
// per-owner deadline aggregation. Tick and Warp invalidate implicitly (both
// caches are keyed on the backend cycle); bounded-lag coordinators call this
// after core strides stage new submissions without moving the backend clock.
func (s *System) HorizonDirty() {
	s.horizonAt = -1
	s.deadlineAt = -1
}

// Cycle returns the backend clock. The backend runs one tick ahead of the
// chip cycle whose step it services: between ticks, Cycle() is the index of
// the next chip cycle the memory system will execute.
func (s *System) Cycle() int64 { return s.cycle }

// Quiet implements proc.EventHorizon: every resident piece of OCN work has
// a computable drain deadline (see horizon), so clock-warping is sound.
func (s *System) Quiet() bool {
	q, _ := s.horizon()
	return q
}

// NextEventCycle implements proc.EventHorizon: the earliest drain deadline
// across delayed multi-flit deliveries, in-flight SDRAM jobs, in-transit
// messages, and staged MT/port injections, in the backend cycle domain
// (serviced during the owner's step one cycle earlier). Even when Quiet is
// false — contended mesh trajectories needing per-cycle routing — the result
// is a sound next-event floor via the mesh's earliest-arrival bound; warping
// remains gated on Quiet.
func (s *System) NextEventCycle() int64 {
	_, h := s.horizon()
	return h
}

// Warp implements proc.EventHorizon: advance the clock and replay the mesh's
// skipped-cycle state changes (arbitration counter, and the per-hop movement
// of resident messages inside their conflict-free transit window). The
// caller guarantees delta stays below every deadline NextEventCycle
// reported, so the warp can never jump a message past its delivery, a
// trajectory into a link conflict, or an SDRAM job past its completion.
func (s *System) Warp(delta int64) {
	s.cycle += delta
	s.mesh.SkipTicks(delta)
}

// Outstanding returns the number of client transactions still registered in
// the pending tables (unsplit and split parts). A drained system — all
// requests completed, nothing in flight — must report zero; a nonzero value
// after a run means a response was lost or a pending entry leaked.
func (s *System) Outstanding() int {
	return len(s.pending) + len(s.pendSplit)
}

// dispatch handles a message arriving at its destination node.
func (s *System) dispatch(msg *ocnMsg) {
	switch msg.kind {
	case mkReq:
		s.mtRequest(msg)
	case mkSDCResp:
		s.mtFill(msg)
	case mkSDCReq:
		sdc := 0
		if msg.dst == s.sdcs[1] {
			sdc = 1
		}
		if msg.write {
			s.SDRAMWrites++
		} else {
			s.SDRAMReads++
			// The SDC accepted the fetch: its completion time is now exact,
			// so raise the MT's fill deadline from the staged-transit estimate
			// to completion plus return transit, and re-price every waiter's
			// response deadline on top of it.
			if mt := s.mtGrid[msg.mt.Row][msg.mt.Col]; mt != nil && mt.busy {
				if nd := s.cycle + int64(s.cfg.SDRAMLatency) + mt.sdcDist; nd > mt.fillDeadline {
					mt.fillDeadline = nd
					for _, w := range mt.waiters {
						s.raiseDeadline(w.id, mt)
					}
				}
			}
		}
		s.sdcQ[sdc] = append(s.sdcQ[sdc], sdcJob{msg: msg, readyAt: s.cycle + int64(s.cfg.SDRAMLatency)})
	case mkResp:
		if e, ok := s.respDeadline[msg.id]; ok {
			if s.cycle < e.at {
				panic(fmt.Sprintf("nuca: response %d dispatched at cycle %d, before its computed deadline %d", msg.id, s.cycle, e.at))
			}
			delete(s.respDeadline, msg.id)
		}
		if pd, ok := s.pendSplit[msg.id]; ok {
			delete(s.pendSplit, msg.id)
			s.respArrived(pd.port)
			pt := pd.parts[msg.id]
			if !pd.req.IsWrite {
				copy(pd.buf[pt.off:pt.off+pt.n], msg.data)
			}
			pd.left--
			if pd.left == 0 && pd.req.Done != nil {
				pd.req.Done(pd.buf)
			}
			s.freeMsg(msg)
			return
		}
		p, ok := s.pending[msg.id]
		if !ok {
			panic("nuca: response for unknown request")
		}
		delete(s.pending, msg.id)
		s.respArrived(p.port)
		if p.req.Done != nil {
			p.req.Done(msg.data)
		}
		s.freeMsg(msg)
	}
}

// respArrived updates per-owner accounting for a completed transaction and
// notifies the bounded-lag effect gate. Response effects (Done callbacks,
// request completion) become visible to the owning core at the current
// backend cycle — the tick executing now services the owner's step one cycle
// earlier, whose effects the core observes on its next cycle, which is
// exactly s.cycle.
func (s *System) respArrived(p *ntPort) {
	if p == nil || p.owner < 0 {
		return
	}
	s.pendingByOwner[p.owner]--
	if s.gate != nil {
		s.gate(p.owner, s.cycle)
	}
}

// nearestSDC picks the SDC closer to an MT.
func (s *System) nearestSDC(at micronet.Coord) micronet.Coord {
	if at.Row <= Rows/2 {
		return s.sdcs[0]
	}
	return s.sdcs[1]
}

// mtRequest services a client request at its home MT.
func (s *System) mtRequest(msg *ocnMsg) {
	mt := s.mtGrid[msg.dst.Row][msg.dst.Col]
	if mt == nil {
		panic(fmt.Sprintf("nuca: request routed to non-MT node %v", msg.dst))
	}
	if mt.mode == ModeScratchpad {
		s.scratchAccess(mt, msg)
		return
	}
	if msg.write {
		if mt.bank.Write(msg.addr, msg.data) {
			mt.Hits++
			resp := s.newMsg()
			*resp = ocnMsg{dst: msg.origin, kind: mkResp, id: msg.id, flits: 1}
			s.mtPush(mt, resp)
			s.freeMsg(msg)
			return
		}
	} else if data, ok := s.bankRead(mt, msg.addr, msg.n); ok {
		mt.Hits++
		resp := s.newMsg()
		*resp = ocnMsg{
			dst: msg.origin, kind: mkResp, id: msg.id, data: data,
			flits: 1 + (msg.n+FlitBytes-1)/FlitBytes,
		}
		s.mtPush(mt, resp)
		s.freeMsg(msg)
		return
	}
	// Miss: single-entry MSHR — a second missing line stalls behind the
	// first (retried on fill).
	mt.Misses++
	line := mt.bank.LineAddr(msg.addr)
	if mt.busy {
		if line == mt.waitLine {
			mt.MSHRCoalesced++
			mt.waiters = append(mt.waiters, msg)
		} else {
			// Retry by self-requeueing into the MT next cycle.
			mt.MSHRBlocked++
			mt.waiters = append(mt.waiters, msg)
		}
		// Either way the request cannot answer before the in-flight fetch
		// fills (a blocked different-line waiter then needs its own fetch on
		// top — the current fill stays a valid lower bound).
		s.raiseDeadline(msg.id, mt)
		return
	}
	mt.busy = true
	mt.waitLine = line
	mt.waiters = append(mt.waiters, msg)
	// Fill lower bound for the fetch staged this tick: the fetch needs
	// sdcDist hops plus a delivery tick to reach the SDC, the SDRAM latency,
	// and sdcDist hops back — cycle + 2*sdcDist + latency undercounts the
	// delivery ticks and flit serialization, keeping it a sound bound. The
	// SDC acceptance raises it to the exact completion time later.
	mt.fillDeadline = s.cycle + 2*mt.sdcDist + int64(s.cfg.SDRAMLatency)
	s.raiseDeadline(msg.id, mt)
	sdc := s.nearestSDC(mt.at)
	fetch := s.newMsg()
	*fetch = ocnMsg{
		dst: sdc, kind: mkSDCReq, addr: line, n: LineBytes,
		id: msg.id, origin: msg.origin, mt: mt.at, flits: 1,
	}
	s.mtPush(mt, fetch)
}

// raiseDeadline ratchets a tracked transaction's response deadline to the
// MT's fill deadline plus the return transit to its port: a waiter's response
// cannot dispatch before the line it waits on (or the fetch ahead of it)
// fills and the response crosses back. Untracked ids (unowned DMA traffic)
// are skipped; deadlines only ever move up, so replayed waiters that miss
// again simply ratchet further.
func (s *System) raiseDeadline(id int, mt *mtState) {
	e, ok := s.respDeadline[id]
	if !ok {
		return
	}
	if nd := mt.fillDeadline + e.port.mtDist[mt.index]; nd > e.at {
		e.at = nd
		s.respDeadline[id] = e
	}
}

// bankRead reads n bytes, splitting line-straddling accesses.
func (s *System) bankRead(mt *mtState, addr uint64, n int) ([]byte, bool) {
	la := mt.bank.LineAddr(addr)
	if mt.bank.LineAddr(addr+uint64(n)-1) == la {
		return mt.bank.Read(addr, n)
	}
	first := int(la + LineBytes - addr)
	d1, ok := mt.bank.Read(addr, first)
	if !ok {
		return nil, false
	}
	d2, ok := mt.bank.Read(addr+uint64(first), n-first)
	if !ok {
		return nil, false
	}
	return append(d1, d2...), true
}

// mtFill installs a refilled line and replays waiters.
func (s *System) mtFill(msg *ocnMsg) {
	mt := s.mtGrid[msg.mt.Row][msg.mt.Col]
	if v := mt.bank.Fill(msg.addr, msg.data); v.Valid {
		sdc := s.nearestSDC(mt.at)
		wb := s.newMsg()
		*wb = ocnMsg{dst: sdc, kind: mkSDCReq, addr: v.Addr, data: v.Data, write: true, flits: 1 + LineBytes/FlitBytes}
		s.mtPush(mt, wb)
	}
	s.LineTransfers++
	mt.busy = false
	mt.fillDeadline = 0
	waiters := mt.waiters
	mt.waiters = nil
	for _, w := range waiters {
		s.mtRequest(w)
	}
	s.freeMsg(msg)
}

// scratchAccess services a scratchpad-mode access: the bank IS the memory
// for its interleaved slice; untouched lines are zero-filled on first use.
func (s *System) scratchAccess(mt *mtState, msg *ocnMsg) {
	line := mt.bank.LineAddr(msg.addr)
	if !mt.bank.Probe(line) {
		mt.bank.Fill(line, make([]byte, LineBytes))
	}
	end := mt.bank.LineAddr(msg.addr + uint64(msg.n) - 1)
	if end != line && !mt.bank.Probe(end) {
		mt.bank.Fill(end, make([]byte, LineBytes))
	}
	if msg.write {
		mt.bank.Write(msg.addr, msg.data)
		resp := s.newMsg()
		*resp = ocnMsg{dst: msg.origin, kind: mkResp, id: msg.id, flits: 1}
		s.mtPush(mt, resp)
		s.freeMsg(msg)
		return
	}
	data, _ := s.bankRead(mt, msg.addr, msg.n)
	resp := s.newMsg()
	*resp = ocnMsg{
		dst: msg.origin, kind: mkResp, id: msg.id, data: data,
		flits: 1 + (msg.n+FlitBytes-1)/FlitBytes,
	}
	s.mtPush(mt, resp)
	s.freeMsg(msg)
}

// Flush writes every dirty L2 line back to the backing store (test and
// shutdown aid).
func (s *System) Flush() {
	for _, mt := range s.mts {
		if mt.mode == ModeScratchpad {
			continue
		}
		for _, v := range mt.bank.DirtyLines() {
			s.cfg.Backing.WriteBytes(v.Addr, v.Data)
		}
	}
}

// Stats returns per-MT hit/miss counters.
func (s *System) Stats() (hits, misses uint64) {
	for _, mt := range s.mts {
		hits += mt.Hits
		misses += mt.Misses
	}
	return
}

// StatsReport aggregates the memory system's counters for reporting.
type StatsReport struct {
	Requests      uint64 // client transactions injected at the NT ports
	LineTransfers uint64 // SDC line fills installed at MTs
	OCNInjected   uint64 // messages entering the OCN mesh
	OCNDelivered  uint64 // messages delivered by the OCN mesh
	Hits, Misses  uint64 // MT bank hits/misses
	MSHRCoalesced uint64 // misses absorbed by an in-flight fetch of the same line
	MSHRBlocked   uint64 // misses stalled behind the single-entry MSHR
	SDRAMReads    uint64 // read jobs accepted by the SDCs
	SDRAMWrites   uint64 // write(-back) jobs accepted by the SDCs
}

// Report snapshots the system-wide counters.
func (s *System) Report() StatsReport {
	r := StatsReport{
		Requests:      s.Requests,
		LineTransfers: s.LineTransfers,
		OCNInjected:   s.mesh.Injected(),
		OCNDelivered:  s.mesh.Delivered(),
		SDRAMReads:    s.SDRAMReads,
		SDRAMWrites:   s.SDRAMWrites,
	}
	for _, mt := range s.mts {
		r.Hits += mt.Hits
		r.Misses += mt.Misses
		r.MSHRCoalesced += mt.MSHRCoalesced
		r.MSHRBlocked += mt.MSHRBlocked
	}
	return r
}

func (r StatsReport) String() string {
	return fmt.Sprintf(
		"NUCA: requests=%d hits=%d misses=%d line-fills=%d\n"+
			"OCN:  injected=%d delivered=%d\n"+
			"MSHR: coalesced=%d blocked=%d\n"+
			"SDRAM: reads=%d writes=%d",
		r.Requests, r.Hits, r.Misses, r.LineTransfers,
		r.OCNInjected, r.OCNDelivered,
		r.MSHRCoalesced, r.MSHRBlocked,
		r.SDRAMReads, r.SDRAMWrites)
}
