package eval

import (
	"fmt"
	"os"

	"trips/internal/ckpt"
	"trips/internal/flight"
	"trips/internal/obs"
	"trips/internal/workloads"
)

// ReplayOptions parameterizes ReplayBundle.
type ReplayOptions struct {
	// ToCycle stops the replay once the core clock reaches it (0 = no cycle
	// bound). ToBlock stops once that many blocks have committed (0 = no
	// block bound). With neither set the replay runs to completion.
	ToCycle int64
	ToBlock uint64
	// TracerCap sizes the replay tracer ring (0 = obs.DefaultTracerCap).
	TracerCap int
	// FromStart ignores the bundled checkpoint and re-simulates from the
	// entry block — slower, but the only way to carry critical-path
	// attribution into the window (the checkpointed event graph cannot be
	// restored). Deterministic stepping makes the window identical either
	// way.
	FromStart bool
	// TrackCritPath tags replayed events with critical-path categories.
	// Requires FromStart.
	TrackCritPath bool
}

// ReplayResult is the outcome of a replay: where the machine stopped and
// the full trace window the replay recorded.
type ReplayResult struct {
	Cycles int64
	Blocks uint64
	Insts  uint64
	// RestoredAt is the checkpoint cycle the replay resumed from (0 when
	// FromStart).
	RestoredAt int64
	// Tracer holds the replay's trace ring for Chrome export; Events is its
	// unrolled window.
	Tracer *obs.Tracer
	Events []obs.Event
}

// ReplayBundle restores a dump bundle's nearest-prior checkpoint into a
// freshly built machine and deterministically re-runs it to the window of
// interest with full tracing enabled — at zero cost to the original run,
// which may have executed with no tracer at all. The machine identity comes
// from the bundle manifest; the checkpoint's content hash is re-verified on
// restore exactly as tsim -restore does. Stepping is the sequential
// interleave (bit-identical to every other discipline by construction), so
// the replayed window matches the same simulated region of any other run
// of this configuration event-for-event (message trace ids aside — see
// flight.NormalizeFlowIDs).
func ReplayBundle(b *flight.Bundle, ro ReplayOptions) (*ReplayResult, error) {
	meta := b.Manifest.Meta
	bench := meta["bench"]
	if bench == "" {
		return nil, fmt.Errorf("eval: bundle %s has no bench in meta; cannot rebuild the machine", b.Dir)
	}
	w, err := workloads.ByName(bench)
	if err != nil {
		return nil, fmt.Errorf("eval: replay %s: %w", b.Dir, err)
	}
	spec := w.Build(meta["hand"] == "true")
	opt, err := metaOptions(meta)
	if err != nil {
		return nil, err
	}
	if ro.TrackCritPath && !ro.FromStart {
		return nil, fmt.Errorf("eval: critical-path replay must run from the start (-from-start): the checkpointed event graph cannot be restored")
	}
	opt.SeqStep = true
	opt.TrackCritPath = ro.TrackCritPath
	tracer := obs.NewTracer(ro.TracerCap)
	opt.Trace = tracer
	t, err := buildTRIPS(spec, opt)
	if err != nil {
		return nil, err
	}
	if want := b.Manifest.ContentHash; want != "" && t.hash(opt).String() != want {
		return nil, fmt.Errorf("eval: replay %s: rebuilt machine hash %s does not match bundle %s (workload registry or simulator changed since the dump)", b.Dir, t.hash(opt), want)
	}
	res := &ReplayResult{Tracer: tracer}
	if !ro.FromStart {
		path := b.CheckpointPath()
		if path == "" {
			return nil, fmt.Errorf("eval: bundle %s holds no checkpoint; use -from-start", b.Dir)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("eval: replay: %w", err)
		}
		payload, err := ckpt.ReadFile(f, t.hash(opt))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("eval: replay %s: %w", b.Dir, err)
		}
		if err := t.load(payload); err != nil {
			return nil, fmt.Errorf("eval: replay %s: %w", b.Dir, err)
		}
		res.RestoredAt = t.core.Cycle()
	}
	if ro.ToCycle > 0 && ro.ToCycle <= t.core.Cycle() {
		return nil, fmt.Errorf("eval: replay target cycle %d is not after the restore point %d", ro.ToCycle, t.core.Cycle())
	}
	const limit = 200_000_000
	for !t.core.Done() {
		if ro.ToCycle > 0 && t.core.Cycle() >= ro.ToCycle {
			break
		}
		if ro.ToBlock > 0 && t.core.CommittedBlocks >= ro.ToBlock {
			break
		}
		if t.core.Cycle() > limit {
			return nil, fmt.Errorf("eval: replay: cycle limit %d exceeded", int64(limit))
		}
		t.core.Step()
	}
	if t.core.Done() {
		// Mirror a real run's epilogue: the cache flush and NUCA drain emit
		// traced writeback traffic that belongs to the window.
		t.core.FlushCaches()
		if t.sys != nil {
			t.sys.Flush()
		}
	}
	res.Cycles = t.core.Cycle()
	res.Blocks = t.core.CommittedBlocks
	res.Insts = t.core.CommittedInsts
	res.Events = tracer.Events()
	return res, nil
}
