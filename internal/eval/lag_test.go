package eval

import (
	"reflect"
	"testing"

	"trips/internal/tcc"
	"trips/internal/workloads"
)

// TestNUCASteppingModesBitIdentical runs a NUCA-backed workload under the
// sequential stepper and every bounded-lag variant and requires identical
// cycle counts and final registers. vadd is the load-bearing workload here:
// its working set evicts dirty L2 lines, and a victim writeback is submitted
// from inside a response's Done callback during the backend tick — the one
// submission whose drain stamp cannot come from the owning core's clock
// (the clock already reads the in-progress tick) and must be phased to
// replay the sequential drain schedule. Stepping-mode divergence on this
// test means the stamp phasing broke.
func TestNUCASteppingModesBitIdentical(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand, UseNUCA: true, SeqStep: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name string
		opt  TRIPSOptions
	}{
		{"lag", TRIPSOptions{Mode: tcc.Hand, UseNUCA: true}},
		{"lag+nowarp", TRIPSOptions{Mode: tcc.Hand, UseNUCA: true, NoWarp: true}},
		{"lag+nofastpath", TRIPSOptions{Mode: tcc.Hand, UseNUCA: true, NoFastPath: true}},
		{"lag+stride1", TRIPSOptions{Mode: tcc.Hand, UseNUCA: true, ParStride: 1}},
	} {
		got, err := RunTRIPS(w.Build(true), m.opt)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if got.Cycles != ref.Cycles {
			t.Errorf("%s: %d cycles, sequential stepper %d", m.name, got.Cycles, ref.Cycles)
		}
		if !reflect.DeepEqual(got.Regs, ref.Regs) {
			t.Errorf("%s: final registers diverge from sequential stepper", m.name)
		}
	}
}
