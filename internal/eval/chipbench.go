package eval

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strings"
)

// ChipBenchRow is one (benchmark, variant) cell of the chip-stepping
// host-time baseline: the measured host time per op and the simulated cycle
// count the run produced. Cycle counts are deterministic and any drift
// against the checked-in baseline is a correctness failure; host time is
// machine-dependent and compared informationally.
type ChipBenchRow struct {
	Bench   string  `json:"bench"`
	Variant string  `json:"variant"`
	NsPerOp float64 `json:"ns_per_op"`
	Cycles  int64   `json:"cycles"`
	// SkipCoverage is the fraction of per-tile ticks the event-driven doze
	// overlay elided (TileSkips / (TileTicks+TileSkips)), when the variant
	// records it. Deterministic for a given variant, so drift is meaningful;
	// compared informationally like host time.
	SkipCoverage float64 `json:"skip_coverage,omitempty"`
}

// ChipBenchReport is the machine-readable form written to BENCH_chip.json:
// the bounded-lag vs sequential stepping A/B for the chip benchmarks, plus
// the derived host-time speedups (sequential time / bounded-lag time at
// identical simulated cycles) and the optional GOMAXPROCS scaling sweep.
type ChipBenchReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// HostCPUs records the measuring machine's logical CPU count: a 1-CPU
	// host serializes the parallel stepper, making seq-vs-lag host-time
	// speedups meaningless (bench.sh warns on it).
	HostCPUs int                `json:"host_cpus,omitempty"`
	Rows     []ChipBenchRow     `json:"rows"`
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// Sweep is the speedup-vs-cores series recorded by `bench.sh sweep`:
	// the same (bench, variant) cells re-measured at several GOMAXPROCS
	// settings. Cycles must match the main rows exactly — the stepper is
	// bit-identical across host parallelism — so sweep points participate
	// in drift checking.
	Sweep []ChipSweepPoint `json:"sweep,omitempty"`
}

// ChipSweepPoint is one (GOMAXPROCS, bench, variant) measurement of the
// scaling sweep. Speedup is against the sequential counterpart measured at
// the same GOMAXPROCS, when both are present.
type ChipSweepPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Bench      string  `json:"bench"`
	Variant    string  `json:"variant"`
	NsPerOp    float64 `json:"ns_per_op"`
	Cycles     int64   `json:"cycles"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// seqCounterpart returns the row that measures the same configuration under
// the sequential stepper, if the variant naming marks one: "x" pairs with
// "seq-x" (chip benchmarks) or "x-seq" (eval benchmarks).
func seqCounterpart(rows []ChipBenchRow, r ChipBenchRow) (ChipBenchRow, bool) {
	for _, s := range rows {
		if s.Bench == r.Bench && (s.Variant == "seq-"+r.Variant || s.Variant == r.Variant+"-seq") {
			return s, true
		}
	}
	return ChipBenchRow{}, false
}

// isSeqVariant reports whether a variant name marks a sequential-stepper
// measurement under the pairing convention seqCounterpart implements.
func isSeqVariant(v string) bool {
	return strings.HasPrefix(v, "seq-") || strings.HasSuffix(v, "-seq")
}

// baseOfSeq strips the sequential marker, returning the paired variant name.
func baseOfSeq(v string) string {
	if strings.HasPrefix(v, "seq-") {
		return strings.TrimPrefix(v, "seq-")
	}
	return strings.TrimSuffix(v, "-seq")
}

// MissingSeqPairings audits a report's rows against the pairing convention:
// chip-bench cells come in seq/lag A/B pairs, so a missing half means a
// partial bench run (an interrupted -bench filter, a crashed variant) that
// must not masquerade as a clean baseline. A seq row without its base row in
// rows is always an error. A base row must have its seq counterpart when ref
// (typically the union of both compared files' rows) shows one exists for
// that cell — some cells, like the standalone -nowarp ablations, legitimately
// have none. Returns one human-readable description per unpaired row, sorted.
func MissingSeqPairings(rows, ref []ChipBenchRow) []string {
	have := make(map[string]bool, len(rows))
	for _, r := range rows {
		have[r.Bench+"/"+r.Variant] = true
	}
	var miss []string
	for _, r := range rows {
		if isSeqVariant(r.Variant) {
			if !have[r.Bench+"/"+baseOfSeq(r.Variant)] {
				miss = append(miss, r.Bench+"/"+r.Variant+": no paired row "+r.Bench+"/"+baseOfSeq(r.Variant))
			}
			continue
		}
		if _, expected := seqCounterpart(ref, r); !expected {
			continue
		}
		if _, ok := seqCounterpart(rows, r); !ok {
			miss = append(miss, r.Bench+"/"+r.Variant+": no seq counterpart row")
		}
	}
	sort.Strings(miss)
	return miss
}

// MergeChipBenchJSON folds rows into the report at path, replacing cells
// with the same (bench, variant) key and recomputing the speedup table.
// Merging (rather than overwriting) lets each benchmark family contribute
// its rows independently of -bench filters and run order.
func MergeChipBenchJSON(path string, rows []ChipBenchRow) error {
	var rep ChipBenchReport
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &rep)
	}
	for _, r := range rows {
		replaced := false
		for i := range rep.Rows {
			if rep.Rows[i].Bench == r.Bench && rep.Rows[i].Variant == r.Variant {
				rep.Rows[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Rows = append(rep.Rows, r)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Bench != rep.Rows[j].Bench {
			return rep.Rows[i].Bench < rep.Rows[j].Bench
		}
		return rep.Rows[i].Variant < rep.Rows[j].Variant
	})
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.HostCPUs = runtime.NumCPU()
	rep.Speedups = map[string]float64{}
	for _, r := range rep.Rows {
		if s, ok := seqCounterpart(rep.Rows, r); ok && r.NsPerOp > 0 {
			rep.Speedups[r.Bench+"/"+r.Variant] = s.NsPerOp / r.NsPerOp
		}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MergeChipSweepJSON folds rows measured at the given GOMAXPROCS into the
// report's scaling sweep, replacing points with the same (procs, bench,
// variant) key and recomputing each point's speedup against its sequential
// counterpart at the same procs. The main rows, recorded at the machine's
// default parallelism, are left untouched so a sweep never perturbs the
// drift baseline it is compared against.
func MergeChipSweepJSON(path string, procs int, rows []ChipBenchRow) error {
	var rep ChipBenchReport
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &rep)
	}
	for _, r := range rows {
		pt := ChipSweepPoint{GOMAXPROCS: procs, Bench: r.Bench, Variant: r.Variant, NsPerOp: r.NsPerOp, Cycles: r.Cycles}
		replaced := false
		for i := range rep.Sweep {
			if rep.Sweep[i].GOMAXPROCS == procs && rep.Sweep[i].Bench == r.Bench && rep.Sweep[i].Variant == r.Variant {
				rep.Sweep[i] = pt
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Sweep = append(rep.Sweep, pt)
		}
	}
	sort.Slice(rep.Sweep, func(i, j int) bool {
		a, b := rep.Sweep[i], rep.Sweep[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.GOMAXPROCS < b.GOMAXPROCS
	})
	for i := range rep.Sweep {
		rep.Sweep[i].Speedup = 0
		p := rep.Sweep[i]
		group := make([]ChipBenchRow, 0, len(rep.Sweep))
		for _, q := range rep.Sweep {
			if q.GOMAXPROCS == p.GOMAXPROCS {
				group = append(group, ChipBenchRow{Bench: q.Bench, Variant: q.Variant, NsPerOp: q.NsPerOp, Cycles: q.Cycles})
			}
		}
		if s, ok := seqCounterpart(group, ChipBenchRow{Bench: p.Bench, Variant: p.Variant, NsPerOp: p.NsPerOp}); ok && p.NsPerOp > 0 {
			rep.Sweep[i].Speedup = s.NsPerOp / p.NsPerOp
		}
	}
	rep.HostCPUs = runtime.NumCPU()
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
