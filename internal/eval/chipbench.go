package eval

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
)

// ChipBenchRow is one (benchmark, variant) cell of the chip-stepping
// host-time baseline: the measured host time per op and the simulated cycle
// count the run produced. Cycle counts are deterministic and any drift
// against the checked-in baseline is a correctness failure; host time is
// machine-dependent and compared informationally.
type ChipBenchRow struct {
	Bench   string  `json:"bench"`
	Variant string  `json:"variant"`
	NsPerOp float64 `json:"ns_per_op"`
	Cycles  int64   `json:"cycles"`
}

// ChipBenchReport is the machine-readable form written to BENCH_chip.json:
// the bounded-lag vs sequential stepping A/B for the chip benchmarks, plus
// the derived host-time speedups (sequential time / bounded-lag time at
// identical simulated cycles).
type ChipBenchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Rows       []ChipBenchRow     `json:"rows"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

// seqCounterpart returns the row that measures the same configuration under
// the sequential stepper, if the variant naming marks one: "x" pairs with
// "seq-x" (chip benchmarks) or "x-seq" (eval benchmarks).
func seqCounterpart(rows []ChipBenchRow, r ChipBenchRow) (ChipBenchRow, bool) {
	for _, s := range rows {
		if s.Bench == r.Bench && (s.Variant == "seq-"+r.Variant || s.Variant == r.Variant+"-seq") {
			return s, true
		}
	}
	return ChipBenchRow{}, false
}

// MergeChipBenchJSON folds rows into the report at path, replacing cells
// with the same (bench, variant) key and recomputing the speedup table.
// Merging (rather than overwriting) lets each benchmark family contribute
// its rows independently of -bench filters and run order.
func MergeChipBenchJSON(path string, rows []ChipBenchRow) error {
	var rep ChipBenchReport
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &rep)
	}
	for _, r := range rows {
		replaced := false
		for i := range rep.Rows {
			if rep.Rows[i].Bench == r.Bench && rep.Rows[i].Variant == r.Variant {
				rep.Rows[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Rows = append(rep.Rows, r)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Bench != rep.Rows[j].Bench {
			return rep.Rows[i].Bench < rep.Rows[j].Bench
		}
		return rep.Rows[i].Variant < rep.Rows[j].Variant
	})
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Speedups = map[string]float64{}
	for _, r := range rep.Rows {
		if s, ok := seqCounterpart(rep.Rows, r); ok && r.NsPerOp > 0 {
			rep.Speedups[r.Bench+"/"+r.Variant] = s.NsPerOp / r.NsPerOp
		}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
