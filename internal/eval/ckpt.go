package eval

import (
	"fmt"
	"runtime"
	"sync"

	"trips/internal/ckpt"
	"trips/internal/mem"
	"trips/internal/nuca"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/tir"
	"trips/internal/workloads"
)

// trips is one built TRIPS machine: the compiled program imaged into memory,
// the core, and whichever memory backend the options selected. RunTRIPS runs
// one to completion; RunSampled builds one per restored interval.
type trips struct {
	name string
	prog *proc.Program
	meta *tcc.Meta
	m    *mem.Memory
	core *proc.Core
	sys  *nuca.System
	flm  *proc.FixedLatencyMem
	lat  int
	lag  bool
}

// buildTRIPS compiles spec and assembles the machine RunTRIPS would run.
func buildTRIPS(spec *workloads.Spec, opt TRIPSOptions) (*trips, error) {
	prog, meta, err := tcc.Compile(spec.F, tcc.Options{Mode: opt.Mode, Placement: opt.Placement})
	if err != nil {
		return nil, fmt.Errorf("eval: compile %s: %w", spec.F.Name, err)
	}
	m := mem.New()
	if spec.SetupMem != nil {
		spec.SetupMem(m)
	}
	if err := prog.Image(m); err != nil {
		return nil, err
	}
	lat := opt.MemLatency
	if lat == 0 {
		lat = 20
	}
	t := &trips{name: spec.F.Name, prog: prog, meta: meta, m: m, lat: lat}
	t.lag = opt.UseNUCA && !opt.SeqStep
	var backend proc.MemBackend
	if opt.UseNUCA {
		t.sys = nuca.New(nuca.Config{Backing: m, Trace: opt.Trace, Metrics: opt.Metrics})
		if t.lag {
			// Bounded-lag stepping needs every port tagged with the single
			// core's owner id so the staged-submission gate and the effect
			// gate see its traffic.
			t.sys.AssignOwners(func(string) int { return 0 })
		}
		backend = t.sys
	} else {
		t.flm = proc.NewFixedLatencyMem(m, lat)
		backend = t.flm
	}
	core, err := proc.NewCore(proc.Config{
		Program:           prog,
		Mem:               backend,
		TrackCritPath:     opt.TrackCritPath,
		OPNChannels:       opt.OPNChannels,
		ConservativeLoads: opt.ConservativeLoads,
		SlowOPNRouter:     opt.SlowOPNRouter,
		NoFastPath:        opt.NoFastPath,
		NoWarp:            opt.NoWarp,
		NoEventDriven:     opt.NoEventDriven,
		ExternalMemTick:   t.lag,
		MaxCycles:         opt.MaxCycles,
		Trace:             opt.Trace,
		Metrics:           opt.Metrics,
	})
	if err != nil {
		return nil, err
	}
	for v, val := range spec.Init {
		if gr, ok := meta.RegOf[v]; ok {
			core.SetRegister(0, gr, val)
		}
	}
	if opt.LagHorizonOverride > 0 || opt.LagDeadlinePad > 0 {
		core.SetLagFaults(opt.LagHorizonOverride, opt.LagDeadlinePad)
	}
	t.core = core
	return t, nil
}

// hash binds a checkpoint to the exact program image and the configuration
// knobs that shape simulated behavior. Stepping discipline (SeqStep,
// ParStride, NoFastPath, NoWarp, NoEventDriven) is deliberately excluded:
// all disciplines are bit-identical by construction, so a checkpoint taken
// under one may be restored under another.
func (t *trips) hash(opt TRIPSOptions) ckpt.Hash {
	cfg := fmt.Sprintf("eval:%s mode=%v placement=%v opn=%d conservative=%v slowopn=%v memlat=%d nuca=%v",
		t.name, opt.Mode, opt.Placement, opt.OPNChannels, opt.ConservativeLoads,
		opt.SlowOPNRouter, t.lat, opt.UseNUCA)
	return ckpt.HashContent(t.prog.CanonicalBytes(), []byte(cfg))
}

// save serializes the whole machine: the core (tiles, micronets, LSQs,
// predictor, event wheel) followed by the memory backend (which carries the
// backing memory image).
func (t *trips) save(w *ckpt.Writer) error {
	if err := t.core.SaveState(w); err != nil {
		return err
	}
	if t.sys != nil {
		t.sys.SaveState(w)
	} else {
		t.flm.SaveState(w)
	}
	return nil
}

// load restores a checkpoint payload into a freshly built machine. The core
// restores first: origin resolution for in-flight memory transactions reads
// restored tile state.
func (t *trips) load(payload []byte) error {
	pr := ckpt.NewReader(payload)
	if err := t.core.LoadState(pr); err != nil {
		return err
	}
	if t.sys != nil {
		t.sys.LoadState(pr, func(string) proc.OriginResolver { return t.core })
	} else {
		t.flm.LoadState(pr, t.core)
	}
	return pr.Close()
}

// finish drains and summarizes a completed run (shared by RunTRIPS and the
// RunSampled profiling pass).
func (t *trips) finish(res proc.Result, lagStats *proc.LagStats) (*TRIPSResult, error) {
	t.core.FlushCaches()
	if t.sys != nil {
		// Leak assertion: a completed run must have drained the OCN pending
		// tables — every transaction (split or not) saw its response. A
		// residue here means a response was dropped or a pending entry
		// leaked, which would surface much later as an id collision.
		if n := t.sys.Outstanding(); n != 0 {
			return nil, fmt.Errorf("eval: %s: %d OCN transactions still pending after completion", t.name, n)
		}
		t.sys.Flush()
	}
	regs := make(map[tir.Reg]uint64, len(t.meta.RegOf))
	for v, gr := range t.meta.RegOf {
		regs[v] = t.core.Register(0, gr)
	}
	var nucaRep *nuca.StatsReport
	if t.sys != nil {
		rep := t.sys.Report()
		nucaRep = &rep
	}
	return &TRIPSResult{
		Cycles:    res.Cycles,
		Insts:     res.CommittedInsts,
		Blocks:    res.CommittedBlocks,
		IPC:       res.IPC,
		Flushes:   res.Flushes,
		Crit:      res.CritPath,
		Regs:      regs,
		Mem:       t.m,
		BlockSize: t.meta.AvgBlockSize,
		Stats:     t.core.TileStats(),

		Warps:         t.core.Warps,
		WarpedCycles:  t.core.WarpedCycles,
		TileTicks:     t.core.TileTicks,
		TileSkips:     t.core.TileSkips,
		SteppedCycles: t.core.SteppedCycles,
		NUCA:          nucaRep,
		Lag:           lagStats,
	}, nil
}

// SampleInterval is one measured interval of a sampled run.
type SampleInterval struct {
	Index      int
	StartCycle int64 // the commit boundary the interval's checkpoint captured
	EndCycle   int64 // StartCycle + the interval length, or earlier if the program ended
	Insts      uint64
	IPC        float64
}

// SampledResult is the outcome of RunSampled: the full-length profiling
// pass plus the per-interval measurements replayed from its checkpoints.
type SampledResult struct {
	Full      *TRIPSResult
	Warmup    int64
	Interval  int64
	Samples   []SampleInterval
	CkptBytes int64 // total checkpoint payload bytes held in memory
}

// RunSampled runs spec once end-to-end, capturing in-memory checkpoints at
// block-commit boundaries — the first after `warmup` cycles, then every
// `interval` cycles, up to maxSamples — and then fans the intervals across a
// worker pool SimPoint-style: each worker restores its checkpoint into a
// fresh machine and re-simulates exactly one interval, yielding per-interval
// IPC without a second serial pass. workers <= 0 means GOMAXPROCS.
//
// The machines run on the sequential core/memory interleave regardless of
// opt.SeqStep: every stepping discipline is bit-identical by construction,
// and the sequential one both supports re-arming the commit hook and lets a
// restored interval be driven cycle-by-cycle. A program that retires before
// `warmup` yields Samples of length zero.
func RunSampled(spec *workloads.Spec, opt TRIPSOptions, warmup, interval int64, maxSamples, workers int) (*SampledResult, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("eval: sampled %s: interval must be positive, got %d", spec.F.Name, interval)
	}
	if maxSamples <= 0 {
		return nil, fmt.Errorf("eval: sampled %s: maxSamples must be positive, got %d", spec.F.Name, maxSamples)
	}
	if warmup < 0 {
		return nil, fmt.Errorf("eval: sampled %s: warmup must be non-negative, got %d", spec.F.Name, warmup)
	}
	if opt.TrackCritPath {
		return nil, fmt.Errorf("eval: sampled %s: incompatible with critical-path tracking (the event graph cannot be serialized)", spec.F.Name)
	}
	if opt.CheckpointTo != nil || opt.RestoreFrom != nil {
		return nil, fmt.Errorf("eval: sampled %s: cannot combine with explicit checkpoint/restore", spec.F.Name)
	}
	if opt.Flight != nil {
		return nil, fmt.Errorf("eval: sampled %s: the flight recorder and SimPoint sampling both own the commit hook; use one", spec.F.Name)
	}
	opt.SeqStep = true
	opt.CheckpointAt = 0
	// A Tracer/Sampler is single-goroutine; the interval machines run
	// concurrently, so observability stays on the profiling pass only.
	intervalOpt := opt
	intervalOpt.Trace, intervalOpt.Metrics = nil, nil

	ref, err := buildTRIPS(spec, opt)
	if err != nil {
		return nil, err
	}
	type ck struct {
		cycle   int64
		payload []byte
	}
	var cks []ck
	var totalBytes int64
	var capture func(cycle int64) error
	capture = func(cycle int64) error {
		pw := &ckpt.Writer{}
		if err := ref.save(pw); err != nil {
			return err
		}
		cks = append(cks, ck{cycle: cycle, payload: pw.Payload()})
		totalBytes += int64(pw.Len())
		if len(cks) < maxSamples {
			ref.core.SetCheckpointHook(cycle+interval, capture)
		}
		return nil
	}
	ref.core.SetCheckpointHook(warmup, capture)
	res, err := ref.core.Run()
	if err != nil {
		return nil, fmt.Errorf("eval: sampled %s: %w", spec.F.Name, err)
	}
	full, err := ref.finish(res, nil)
	if err != nil {
		return nil, err
	}

	out := &SampledResult{Full: full, Warmup: warmup, Interval: interval, CkptBytes: totalBytes}
	if len(cks) == 0 {
		return out, nil
	}
	samples := make([]SampleInterval, len(cks))
	errs := make([]error, len(cks))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cks) {
		workers = len(cks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				samples[i], errs[i] = runInterval(spec, intervalOpt, cks[i].payload, interval)
				samples[i].Index = i
			}
		}()
	}
	for i := range cks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: sampled %s: %w", spec.F.Name, err)
		}
	}
	out.Samples = samples
	return out, nil
}

// runInterval restores one checkpoint into a fresh machine and steps it for
// one interval (or until the program retires).
func runInterval(spec *workloads.Spec, opt TRIPSOptions, payload []byte, interval int64) (SampleInterval, error) {
	t, err := buildTRIPS(spec, opt)
	if err != nil {
		return SampleInterval{}, err
	}
	if err := t.load(payload); err != nil {
		return SampleInterval{}, err
	}
	start := t.core.Cycle()
	startInsts := t.core.CommittedInsts
	end := start + interval
	for !t.core.Done() && t.core.Cycle() < end {
		t.core.Step()
	}
	s := SampleInterval{StartCycle: start, EndCycle: t.core.Cycle(), Insts: t.core.CommittedInsts - startInsts}
	if d := s.EndCycle - s.StartCycle; d > 0 {
		s.IPC = float64(s.Insts) / float64(d)
	}
	return s, nil
}
