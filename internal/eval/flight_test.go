package eval

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trips/internal/flight"
	"trips/internal/obs"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// clipCkpt drops KindCkpt marker events (emitted only by checkpointing
// runs) so windows from checkpointing and non-checkpointing runs compare.
func clipCkpt(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind != obs.KindCkpt {
			out = append(out, ev)
		}
	}
	return out
}

// TestFlightRecorderBitIdentity extends the zero-perturbation guarantee to
// the flight recorder: an armed recorder (rolling checkpoint ring + trace
// window + end-of-run dump) must not move a single simulated observable.
func TestFlightRecorderBitIdentity(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	for _, useNUCA := range []bool{false, true} {
		base := TRIPSOptions{Mode: tcc.Hand, UseNUCA: useNUCA}
		plain, err := RunTRIPS(w.Build(true), base)
		if err != nil {
			t.Fatal(err)
		}
		armed := base
		armed.Flight = &FlightOptions{
			Dir: t.TempDir(), Depth: 3, Interval: 400,
			DumpOn: "end", Tool: "eval_test", Bench: "vadd", Hand: true,
		}
		rec, err := RunTRIPS(w.Build(true), armed)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cycles != rec.Cycles || plain.Blocks != rec.Blocks || plain.Insts != rec.Insts {
			t.Errorf("nuca=%v: recorder-armed run %d cycles/%d blocks/%d insts, plain %d/%d/%d — the recorder perturbed the simulation",
				useNUCA, rec.Cycles, rec.Blocks, rec.Insts, plain.Cycles, plain.Blocks, plain.Insts)
		}
		for r, v := range plain.Regs {
			if rec.Regs[r] != v {
				t.Errorf("nuca=%v: recorder-armed r%d = %d, plain %d", useNUCA, r, rec.Regs[r], v)
			}
		}
		if len(rec.FlightDumps) != 1 {
			t.Fatalf("nuca=%v: expected 1 end-of-run dump, got %v", useNUCA, rec.FlightDumps)
		}
		b, err := flight.ReadBundle(rec.FlightDumps[0])
		if err != nil {
			t.Fatal(err)
		}
		if b.Manifest.Trigger != flight.TriggerEnd {
			t.Errorf("nuca=%v: trigger %q, want end", useNUCA, b.Manifest.Trigger)
		}
		if b.Manifest.Checkpoint == nil {
			t.Errorf("nuca=%v: end-of-run bundle holds no checkpoint frame", useNUCA)
		}
		if len(b.Manifest.Windows) != 1 || b.Manifest.Windows[0].Events == 0 {
			t.Errorf("nuca=%v: bundle window empty: %+v", useNUCA, b.Manifest.Windows)
		}
		if b.Manifest.Meta["bench"] != "vadd" || b.Manifest.Meta["hand"] != "true" {
			t.Errorf("nuca=%v: bundle meta wrong: %v", useNUCA, b.Manifest.Meta)
		}
		if got := b.Manifest.Counters["flight.captures"]; got == 0 {
			t.Errorf("nuca=%v: no rolling captures recorded", useNUCA)
		}
	}
}

// TestFlightReplayBitIdenticalWindow is the acceptance check for
// trips-debug replay: restoring a dump bundle's mid-run checkpoint and
// re-running deterministically must reproduce, event for event, the same
// window an uninterrupted traced run records for that simulated region.
func TestFlightReplayBitIdenticalWindow(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	for _, useNUCA := range []bool{false, true} {
		// Uninterrupted traced reference run.
		ref := TRIPSOptions{Mode: tcc.Hand, UseNUCA: useNUCA, Trace: obs.NewTracer(0)}
		full, err := RunTRIPS(w.Build(true), ref)
		if err != nil {
			t.Fatal(err)
		}
		// Flight-armed run: dump on a mid-run cycle trigger.
		armed := TRIPSOptions{Mode: tcc.Hand, UseNUCA: useNUCA}
		armed.Flight = &FlightOptions{
			Dir: t.TempDir(), Depth: 4, Interval: 300,
			DumpOn: "cycle=1200", Tool: "eval_test", Bench: "vadd", Hand: true,
		}
		res, err := RunTRIPS(w.Build(true), armed)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FlightDumps) == 0 {
			t.Fatalf("nuca=%v: cycle trigger produced no dump (run was %d cycles)", useNUCA, res.Cycles)
		}
		b, err := flight.ReadBundle(res.FlightDumps[0])
		if err != nil {
			t.Fatal(err)
		}
		if b.Manifest.Checkpoint == nil {
			t.Fatalf("nuca=%v: bundle holds no checkpoint", useNUCA)
		}
		rep, err := ReplayBundle(b, ReplayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RestoredAt != b.Manifest.Checkpoint.Cycle {
			t.Errorf("nuca=%v: restored at %d, checkpoint says %d", useNUCA, rep.RestoredAt, b.Manifest.Checkpoint.Cycle)
		}
		if rep.Cycles != full.Cycles || rep.Blocks != full.Blocks {
			t.Errorf("nuca=%v: replay finished at %d cycles/%d blocks, reference %d/%d",
				useNUCA, rep.Cycles, rep.Blocks, full.Cycles, full.Blocks)
		}
		// The checkpoint fires mid-cycle at a commit boundary: boundary-cycle
		// events split into a pre-capture half (only in the uninterrupted
		// trace) and a post-capture half, so the windows align from the first
		// full cycle after the boundary.
		want := flight.WindowFrom(ref.Trace.Events(), rep.RestoredAt+1)
		got := flight.WindowFrom(rep.Events, rep.RestoredAt+1)
		if len(want) == 0 {
			t.Fatalf("nuca=%v: reference window empty", useNUCA)
		}
		if d := flight.Compare(want, got); d != nil {
			t.Errorf("nuca=%v: replayed window diverges from uninterrupted run: %s", useNUCA, d.Reason)
		}
	}
}

// TestRestoredTraceWindowMatches is the -restore trace-origin regression
// test: a run restored from a checkpoint and traced must stamp events with
// absolute simulated cycles and reproduce exactly the window the
// uninterrupted traced run records from the capture boundary on.
func TestRestoredTraceWindowMatches(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	for _, useNUCA := range []bool{false, true} {
		var ck bytes.Buffer
		full := TRIPSOptions{
			Mode: tcc.Hand, UseNUCA: useNUCA, Trace: obs.NewTracer(0),
			CheckpointAt: 500, CheckpointTo: &ck,
		}
		fres, err := RunTRIPS(w.Build(true), full)
		if err != nil {
			t.Fatal(err)
		}
		// The KindCkpt marker records the actual capture boundary.
		var capCycle int64 = -1
		for _, ev := range full.Trace.Events() {
			if ev.Kind == obs.KindCkpt {
				capCycle = ev.Cycle
				break
			}
		}
		if capCycle < 500 {
			t.Fatalf("nuca=%v: no checkpoint marker in trace (capCycle %d)", useNUCA, capCycle)
		}
		restored := TRIPSOptions{
			Mode: tcc.Hand, UseNUCA: useNUCA, Trace: obs.NewTracer(0),
			RestoreFrom: bytes.NewReader(ck.Bytes()),
		}
		rres, err := RunTRIPS(w.Build(true), restored)
		if err != nil {
			t.Fatal(err)
		}
		if rres.Cycles != fres.Cycles || rres.Blocks != fres.Blocks {
			t.Fatalf("nuca=%v: restored run %d cycles/%d blocks, full %d/%d",
				useNUCA, rres.Cycles, rres.Blocks, fres.Cycles, fres.Blocks)
		}
		revs := restored.Trace.Events()
		if len(revs) == 0 {
			t.Fatalf("nuca=%v: restored run emitted no events", useNUCA)
		}
		// Absolute cycle origin: nothing may be stamped before the restore
		// boundary (a cycles-since-restore bug would stamp from 0).
		if first := revs[0].Cycle; first < capCycle {
			t.Errorf("nuca=%v: restored trace starts at cycle %d, before the capture boundary %d — relative stamping", useNUCA, first, capCycle)
		}
		// Boundary-cycle events split across the capture point (see the
		// replay test above); windows align from capCycle+1 on.
		want := clipCkpt(flight.WindowFrom(full.Trace.Events(), capCycle+1))
		got := flight.WindowFrom(revs, capCycle+1)
		if d := flight.Compare(want, got); d != nil {
			t.Errorf("nuca=%v: restored-run window diverges from uninterrupted run: %s", useNUCA, d.Reason)
		}
	}
}

// TestFlightDeadlineViolationDump fault-injects padded response deadlines.
// On a single-core eval run the core always has real work in flight while a
// padded response is pending, so its overshoot past the true effect cycle
// is genuinely stepped — the effect gate detects a horizon violation and
// panics rather than rolling back (warp-only overshoot, the rollback shape,
// needs a multi-core chip chase; see TestChipRollbackHookObserves). The
// armed recorder must classify that panic as a deadline-violation dump and
// re-raise it.
func TestFlightDeadlineViolationDump(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := TRIPSOptions{
		Mode: tcc.Hand, UseNUCA: true,
		LagDeadlinePad: 64,
		Flight: &FlightOptions{
			Dir: dir, Depth: 2, Interval: 50,
			Tool: "eval_test", Bench: "vadd", Hand: true,
		},
	}
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				if !strings.Contains(fmt.Sprint(r), "horizon violated") {
					t.Errorf("unexpected panic: %v", r)
				}
			}
		}()
		_, _ = RunTRIPS(w.Build(true), opt)
	}()
	if !panicked {
		t.Fatal("deadline pad 64 did not trip the horizon check; the fault-injection walkthrough depends on this")
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 dump bundle, found %v", entries)
	}
	b, err := flight.ReadBundle(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger != "deadline-violation" {
		t.Errorf("trigger %q, want deadline-violation", b.Manifest.Trigger)
	}
	if !strings.Contains(b.Manifest.Reason, "horizon violated") {
		t.Errorf("reason %q does not carry the panic message", b.Manifest.Reason)
	}
	// The bundle directory is complete: manifest + window.
	for _, f := range []string{"manifest.json", "window-core.events.json"} {
		if _, err := os.Stat(filepath.Join(b.Dir, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
}

// TestFlightLimitDump checks the cycle-limit-overrun trigger: a run that
// trips MaxCycles dumps a bundle even though RunTRIPS returns an error.
func TestFlightLimitDump(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := TRIPSOptions{Mode: tcc.Hand, UseNUCA: true}
	opt.Flight = &FlightOptions{Dir: dir, Interval: 200, Tool: "eval_test", Bench: "vadd", Hand: true}
	// Force a limit overrun well below the workload's natural length.
	opt.MaxCycles = 1000
	_, err = RunTRIPS(w.Build(true), opt)
	if err == nil {
		t.Fatal("expected a cycle-limit error")
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 dump bundle, found %v", entries)
	}
	b, err := flight.ReadBundle(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger != flight.TriggerLimit {
		t.Errorf("trigger %q, want cycle-limit", b.Manifest.Trigger)
	}
	if b.Manifest.Reason == "" {
		t.Error("limit dump has no reason")
	}
}
