package eval

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMissingSeqPairings pins the partial-run audit bench-compare builds on:
// a seq row without its base row always flags, a base row flags only when
// the reference set shows its seq counterpart exists, and standalone
// ablation rows (no counterpart anywhere) pass.
func TestMissingSeqPairings(t *testing.T) {
	full := []ChipBenchRow{
		{Bench: "ChipDMAStream", Variant: "warp"},
		{Bench: "ChipDMAStream", Variant: "seq-warp"},
		{Bench: "NUCAvsPerfectL2", Variant: "nuca"},
		{Bench: "NUCAvsPerfectL2", Variant: "nuca-seq"},
		{Bench: "NUCAvsPerfectL2", Variant: "nuca-nowarp"}, // standalone ablation
	}
	if miss := MissingSeqPairings(full, full); len(miss) != 0 {
		t.Fatalf("fully paired rows flagged: %v", miss)
	}

	// Partial run lost the seq halves: both base rows flag against the full
	// reference, the ablation still passes.
	partial := []ChipBenchRow{full[0], full[2], full[4]}
	miss := MissingSeqPairings(partial, full)
	want := []string{
		"ChipDMAStream/warp: no seq counterpart row",
		"NUCAvsPerfectL2/nuca: no seq counterpart row",
	}
	if len(miss) != len(want) || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("partial-run audit = %v, want %v", miss, want)
	}

	// A seq row whose base row is gone flags even with no reference help.
	orphan := []ChipBenchRow{{Bench: "ChipDMAStream", Variant: "seq-warp"}}
	miss = MissingSeqPairings(orphan, orphan)
	if len(miss) != 1 || miss[0] != "ChipDMAStream/seq-warp: no paired row ChipDMAStream/warp" {
		t.Fatalf("orphan seq row audit = %v", miss)
	}
}

// TestMergeChipSweepJSON checks the scaling-sweep merge: points replace by
// (procs, bench, variant), per-procs speedups are recomputed against the seq
// counterpart measured at the same procs, and the main rows plus their
// speedup table survive untouched.
func TestMergeChipSweepJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chip.json")
	main := []ChipBenchRow{
		{Bench: "ChipDMAStream", Variant: "warp", NsPerOp: 100, Cycles: 42},
		{Bench: "ChipDMAStream", Variant: "seq-warp", NsPerOp: 200, Cycles: 42},
	}
	if err := MergeChipBenchJSON(path, main); err != nil {
		t.Fatal(err)
	}
	sweep2 := []ChipBenchRow{
		{Bench: "ChipDMAStream", Variant: "warp", NsPerOp: 50, Cycles: 42},
		{Bench: "ChipDMAStream", Variant: "seq-warp", NsPerOp: 200, Cycles: 42},
	}
	if err := MergeChipSweepJSON(path, 2, sweep2); err != nil {
		t.Fatal(err)
	}
	// Re-merging the same procs replaces rather than duplicates.
	if err := MergeChipSweepJSON(path, 2, sweep2); err != nil {
		t.Fatal(err)
	}
	if err := MergeChipSweepJSON(path, 4, []ChipBenchRow{
		{Bench: "ChipDMAStream", Variant: "warp", NsPerOp: 25, Cycles: 42},
	}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ChipBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || rep.Speedups["ChipDMAStream/warp"] != 2.0 {
		t.Fatalf("main rows perturbed by sweep merge: rows=%d speedups=%v", len(rep.Rows), rep.Speedups)
	}
	if len(rep.Sweep) != 3 {
		t.Fatalf("sweep has %d points, want 3 (replace, not append): %+v", len(rep.Sweep), rep.Sweep)
	}
	bySweep := map[string]ChipSweepPoint{}
	for _, p := range rep.Sweep {
		bySweep[p.Variant+"@"+string(rune('0'+p.GOMAXPROCS))] = p
	}
	if got := bySweep["warp@2"].Speedup; got != 4.0 {
		t.Fatalf("warp@2procs speedup = %v, want 4.0 (seq 200 / lag 50)", got)
	}
	if got := bySweep["warp@4"].Speedup; got != 0 {
		t.Fatalf("warp@4procs speedup = %v, want 0 (no seq row at 4 procs)", got)
	}
	if got := bySweep["seq-warp@2"].Speedup; got != 0 {
		t.Fatalf("seq row speedup = %v, want 0", got)
	}
}
