package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"trips/internal/obs"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// TestTraceBitIdentity runs the same workload with tracing off and on and
// requires identical simulated results: observation must never perturb the
// machine.
func TestTraceBitIdentity(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	for _, useNUCA := range []bool{false, true} {
		base := TRIPSOptions{Mode: tcc.Hand, TrackCritPath: true, UseNUCA: useNUCA}
		plain, err := RunTRIPS(w.Build(true), base)
		if err != nil {
			t.Fatal(err)
		}
		traced := base
		traced.Trace = obs.NewTracer(0)
		traced.Metrics = obs.NewSampler(0)
		obsRun, err := RunTRIPS(w.Build(true), traced)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cycles != obsRun.Cycles {
			t.Errorf("nuca=%v: traced run took %d cycles, untraced %d — tracing perturbed the simulation",
				useNUCA, obsRun.Cycles, plain.Cycles)
		}
		if plain.Blocks != obsRun.Blocks || plain.Insts != obsRun.Insts {
			t.Errorf("nuca=%v: traced run committed %d blocks/%d insts, untraced %d/%d",
				useNUCA, obsRun.Blocks, obsRun.Insts, plain.Blocks, plain.Insts)
		}
		for r, v := range plain.Regs {
			if obsRun.Regs[r] != v {
				t.Errorf("nuca=%v: traced r%d = %d, untraced %d", useNUCA, r, obsRun.Regs[r], v)
			}
		}
		if traced.Trace.Total() == 0 {
			t.Errorf("nuca=%v: traced run emitted no events", useNUCA)
		}

		// Armed flight recorder: rolling checkpoints and the bounded window
		// must be exactly as invisible as a plain tracer. (TrackCritPath is
		// dropped — the recorder is incompatible with it — but the critical
		// path analyzer is itself pure observation, so the plain run remains
		// the reference.)
		armed := TRIPSOptions{Mode: tcc.Hand, UseNUCA: useNUCA,
			Flight: &FlightOptions{Dir: t.TempDir(), Depth: 3, Interval: 500}}
		flightRun, err := RunTRIPS(w.Build(true), armed)
		if err != nil {
			t.Fatal(err)
		}
		if flightRun.Cycles != plain.Cycles {
			t.Errorf("nuca=%v: recorder-armed run took %d cycles, plain %d — the recorder perturbed the simulation",
				useNUCA, flightRun.Cycles, plain.Cycles)
		}
		if flightRun.Blocks != plain.Blocks || flightRun.Insts != plain.Insts {
			t.Errorf("nuca=%v: recorder-armed run committed %d blocks/%d insts, plain %d/%d",
				useNUCA, flightRun.Blocks, flightRun.Insts, plain.Blocks, plain.Insts)
		}
		for r, v := range plain.Regs {
			if flightRun.Regs[r] != v {
				t.Errorf("nuca=%v: recorder-armed r%d = %d, plain %d", useNUCA, r, flightRun.Regs[r], v)
			}
		}
	}
}

// TestTraceOrderingInvariants checks the protocol causality encoded in the
// trace: per block, dispatch precedes operand arrival precedes completion
// precedes the commit command precedes the final ack; per micronet message,
// inject/hop/deliver timestamps are monotone.
func TestTraceOrderingInvariants(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(0)
	sm := obs.NewSampler(0)
	res, err := RunTRIPS(w.Build(true), TRIPSOptions{
		Mode: tcc.Hand, TrackCritPath: true, UseNUCA: true,
		Trace: tr, Metrics: sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Fatal("workload committed no blocks")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; the invariant checks need the full trace", tr.Dropped())
	}

	type lifecycle struct {
		dispatch, firstOperand, complete, commitCmd, acked int64
		haveDispatch, haveAcked                            bool
	}
	blocks := map[uint64]*lifecycle{}
	type msgKey struct {
		net uint8
		seq uint64
	}
	type msgState struct {
		lastTs               int64
		injects, delivers    int
		sawHopOrDeliverFirst bool
	}
	msgs := map[msgKey]*msgState{}

	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.KindNetInject, obs.KindNetHop, obs.KindNetDeliver:
			k := msgKey{ev.Net, ev.Seq}
			m := msgs[k]
			if m == nil {
				m = &msgState{lastTs: ev.Cycle}
				msgs[k] = m
				if ev.Kind != obs.KindNetInject {
					m.sawHopOrDeliverFirst = true
				}
			}
			if ev.Cycle < m.lastTs {
				t.Fatalf("message %s-%d: %s at cycle %d after cycle %d — hop timestamps not monotone",
					obs.NetName(ev.Net), ev.Seq, ev.Kind, ev.Cycle, m.lastTs)
			}
			m.lastTs = ev.Cycle
			switch ev.Kind {
			case obs.KindNetInject:
				m.injects++
			case obs.KindNetDeliver:
				m.delivers++
			}
		case obs.KindBlockDispatch:
			b := lifecycleOf(blocks, ev.Seq)
			b.dispatch = ev.Cycle
			b.haveDispatch = true
		case obs.KindOperand:
			b := lifecycleOf(blocks, ev.Seq)
			if b.firstOperand == 0 {
				b.firstOperand = ev.Cycle
			}
		case obs.KindBlockComplete:
			lifecycleOf(blocks, ev.Seq).complete = ev.Cycle
		case obs.KindCommitCmd:
			lifecycleOf(blocks, ev.Seq).commitCmd = ev.Cycle
		case obs.KindBlockAcked:
			b := lifecycleOf(blocks, ev.Seq)
			b.acked = ev.Cycle
			b.haveAcked = true
		}
	}

	// Block lifecycle ordering — only blocks that ran to ack (flushed blocks
	// legitimately stop partway).
	checked := 0
	for seq, b := range blocks {
		if !b.haveDispatch || !b.haveAcked {
			continue
		}
		checked++
		if b.firstOperand != 0 && b.firstOperand < b.dispatch {
			t.Errorf("seq %d: first operand at %d before dispatch at %d", seq, b.firstOperand, b.dispatch)
		}
		if b.complete < b.dispatch {
			t.Errorf("seq %d: complete at %d before dispatch at %d", seq, b.complete, b.dispatch)
		}
		if b.commitCmd < b.complete {
			t.Errorf("seq %d: commit command at %d before completion at %d", seq, b.commitCmd, b.complete)
		}
		if b.acked <= b.dispatch {
			t.Errorf("seq %d: acked at %d not after dispatch at %d", seq, b.acked, b.dispatch)
		}
		if b.acked < b.commitCmd {
			t.Errorf("seq %d: acked at %d before commit command at %d", seq, b.acked, b.commitCmd)
		}
	}
	if checked == 0 {
		t.Error("no block ran dispatch-to-ack; lifecycle tracing broken")
	}

	// Message sanity: every traced flow begins with its inject and ends with
	// exactly one deliver.
	flows := 0
	for k, m := range msgs {
		flows++
		if m.sawHopOrDeliverFirst {
			t.Errorf("message %s-%d: first event was not inject", obs.NetName(k.net), k.seq)
		}
		if m.injects != 1 || m.delivers != 1 {
			t.Errorf("message %s-%d: %d injects / %d delivers, want 1/1",
				obs.NetName(k.net), k.seq, m.injects, m.delivers)
		}
	}
	if flows == 0 {
		t.Error("no micronet messages traced")
	}

	// The Chrome export of the same trace must decode and keep the async
	// begin/end events balanced (what Perfetto groups into flows).
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, tr, sm); err != nil {
		t.Fatal(err)
	}
	var f obs.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	open := map[string]int{}
	counters := 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "b":
			open[ev.Cat+ev.ID]++
		case "e":
			open[ev.Cat+ev.ID]--
		case "C":
			counters++
		}
	}
	for id, n := range open {
		if n != 0 {
			t.Errorf("async flow %q: %+d unbalanced begin/end events", id, n)
		}
	}
	if counters == 0 {
		t.Error("no counter samples in the export despite an attached sampler")
	}
}

func lifecycleOf[V any](m map[uint64]*V, seq uint64) *V {
	v := m[seq]
	if v == nil {
		v = new(V)
		m[seq] = v
	}
	return v
}

// TestNUCAReportCounters checks the -stats NUCA report against the run.
func TestNUCAReportCounters(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand, UseNUCA: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.NUCA
	if rep == nil {
		t.Fatal("UseNUCA run returned no NUCA report")
	}
	if rep.Requests == 0 {
		t.Error("NUCA saw no requests on a memory-bound workload")
	}
	if rep.OCNInjected == 0 || rep.OCNInjected != rep.OCNDelivered {
		t.Errorf("OCN injected %d / delivered %d, want equal and nonzero after drain",
			rep.OCNInjected, rep.OCNDelivered)
	}
	// Every request eventually hits (a missing request parks in the MSHR and
	// retries after the fill), so hits == requests after the drain; misses
	// count the first-touch attempts separately.
	if rep.Hits != rep.Requests {
		t.Errorf("hits %d != requests %d (every drained request must retire as a hit)",
			rep.Hits, rep.Requests)
	}
	if rep.Misses == 0 {
		t.Error("no NUCA misses on cold banks")
	}
	if rep.SDRAMReads == 0 {
		t.Error("no SDRAM reads despite cold NUCA banks")
	}
	for _, want := range []string{"NUCA:", "OCN:", "MSHR:", "SDRAM:"} {
		if !bytes.Contains([]byte(rep.String()), []byte(want)) {
			t.Errorf("report missing %q section:\n%s", want, rep.String())
		}
	}
	// The perfect-L2 configuration must not fabricate a report.
	plain, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NUCA != nil {
		t.Error("perfect-L2 run returned a NUCA report")
	}
	_ = fmt.Sprintf("%+v", rep) // report must be printf-able
}
