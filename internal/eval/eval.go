// Package eval runs benchmarks on the three machines of the paper's
// evaluation — the TRIPS core with compiled code (TCC), the TRIPS core with
// hand-optimized code, and the Alpha 21264-class baseline — and assembles
// the rows of paper Table 3: distributed-protocol overheads as a percentage
// of the critical path, plus speedups and IPCs.
package eval

import (
	"fmt"
	"io"

	"trips/internal/alpha"
	"trips/internal/ckpt"
	"trips/internal/critpath"
	"trips/internal/mem"
	"trips/internal/nuca"
	"trips/internal/obs"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/tir"
	"trips/internal/workloads"
)

// TRIPSOptions tunes a TRIPS-side run (ablations).
type TRIPSOptions struct {
	Mode              tcc.Mode
	Placement         tcc.Placement
	OPNChannels       int
	ConservativeLoads bool
	SlowOPNRouter     bool
	TrackCritPath     bool
	MemLatency        int // L1-miss latency to the perfect L2 (default 20)
	// UseNUCA replaces the paper's perfect-L2 normalization with the full
	// secondary memory system: the 16-bank NUCA array on the 4x10 OCN with
	// SDRAM behind it.
	UseNUCA bool
	// NoFastPath disables the quiescence-aware stepping fast paths and
	// ticks every tile every cycle. Results must be bit-identical either
	// way; the flag exists for regression tests and debugging.
	NoFastPath bool
	// NoWarp disables clock-warping over quiescent stretches while keeping
	// the stepping fast paths. Results must be bit-identical either way.
	NoWarp bool
	// NoEventDriven disables the per-tile doze overlay (event-driven tile
	// clocks) while keeping the whole-core fast paths. Results must be
	// bit-identical either way. NoFastPath implies it.
	NoEventDriven bool
	// SeqStep forces the sequential core-drives-backend interleave for
	// UseNUCA runs instead of the default bounded-lag coordinator (core and
	// memory system as separate clock domains). Results must be bit-identical
	// either way; the flag exists for A/B verification and host-time
	// baselines. Without UseNUCA the run is always sequential.
	SeqStep bool
	// ParStride, when positive, caps bounded-lag stride length below the
	// automatically derived visibility horizon (0 = auto). Always safe and
	// always bit-identical; exists for A/B experiments on stride length.
	ParStride int64
	// Trace, when non-nil, records block-protocol and micronet events for
	// export as a Chrome/Perfetto timeline. Never changes simulated cycles.
	Trace *obs.Tracer
	// Metrics, when non-nil, samples occupancy series during the run.
	Metrics *obs.Sampler
	// CheckpointAt / CheckpointTo arm a one-shot checkpoint: at the first
	// block-commit boundary after cycle CheckpointAt — commit is the quiesce
	// point of the distributed protocols — the complete machine state (core
	// tiles, micronets, LSQ, predictor, event wheel, and the memory backend
	// with its backing image) is framed and written to CheckpointTo,
	// content-hashed to the program image and configuration. Incompatible
	// with TrackCritPath: the critical-path event graph cannot be
	// serialized.
	CheckpointAt int64
	CheckpointTo io.Writer
	// RestoreFrom, when non-nil, resumes from a checkpoint instead of
	// starting at the entry block. The checkpoint must carry the same
	// program/configuration hash; a mismatch fails loudly before any state
	// is touched. The resumed run's final result is bit-identical to the
	// uninterrupted run's.
	RestoreFrom io.Reader
	// Flight, when non-nil, arms the flight recorder: a rolling ring of
	// block-commit checkpoints plus a bounded trace window, dumped as a
	// self-describing bundle on panic, cycle-limit overrun, bounded-lag
	// rollback, or the configured DumpOn trigger. Incompatible with
	// TrackCritPath and with explicit CheckpointTo.
	Flight *FlightOptions
	// MaxCycles caps the run's simulated length (0 = the simulator default,
	// 200M). A run that reaches the cap fails with a cycle-limit error —
	// which, with the flight recorder armed, dumps a bundle on the way out.
	MaxCycles int64
	// LagHorizonOverride / LagDeadlinePad are bounded-lag fault-injection
	// knobs (see proc.LagConfig): they make rollbacks reachable on demand
	// while results stay bit-identical. Debug/test only — they exist so a
	// tsim walkthrough can force the rollback path and watch the flight
	// recorder catch it.
	LagHorizonOverride int64
	LagDeadlinePad     int64
}

// TRIPSResult is one TRIPS run's outcome.
type TRIPSResult struct {
	Cycles    int64
	Insts     uint64
	Blocks    uint64
	IPC       float64
	Flushes   uint64
	Crit      critpath.Report
	Regs      map[tir.Reg]uint64
	Mem       *mem.Memory
	BlockSize float64
	Stats     proc.TileStats
	// Warps / WarpedCycles report clock-warp engagement: how many times the
	// core jumped its clock and how many simulated cycles those jumps
	// covered. Host-side observability only — never part of simulated-state
	// comparisons (a warped and an unwarped run differ here by design).
	Warps        uint64
	WarpedCycles int64
	// TileTicks / TileSkips / SteppedCycles report the event-driven tile
	// clock split: tile ticks executed vs elided by the doze overlay across
	// SteppedCycles per-core Step calls (warped cycles excluded). Host-side
	// observability only, like Warps.
	TileTicks     uint64
	TileSkips     uint64
	SteppedCycles int64
	// NUCA carries the secondary memory system's counters when UseNUCA.
	NUCA *nuca.StatsReport
	// Lag carries bounded-lag coordinator telemetry (stride histogram,
	// stall reasons, rollbacks) when the run used bounded-lag stepping.
	Lag *proc.LagStats
	// FlightDumps lists dump-bundle directories the flight recorder wrote
	// during the run (nil when the recorder was off or never triggered).
	FlightDumps []string
}

// RunTRIPS compiles and executes a workload spec on the TRIPS core.
func RunTRIPS(spec *workloads.Spec, opt TRIPSOptions) (*TRIPSResult, error) {
	if (opt.CheckpointTo != nil || opt.RestoreFrom != nil) && opt.TrackCritPath {
		return nil, fmt.Errorf("eval: %s: checkpoint/restore is incompatible with critical-path tracking (the event graph cannot be serialized)", spec.F.Name)
	}
	if opt.CheckpointTo != nil && opt.CheckpointAt <= 0 {
		return nil, fmt.Errorf("eval: %s: checkpoint requested without a positive capture cycle", spec.F.Name)
	}
	fr, err := newFlightRun(spec, &opt)
	if err != nil {
		return nil, err
	}
	t, err := buildTRIPS(spec, opt)
	if err != nil {
		return nil, err
	}
	fr.bind(t, opt)
	if opt.RestoreFrom != nil {
		payload, err := ckpt.ReadFile(opt.RestoreFrom, t.hash(opt))
		if err != nil {
			return nil, fmt.Errorf("eval: restore %s: %w", spec.F.Name, err)
		}
		if err := t.load(payload); err != nil {
			return nil, fmt.Errorf("eval: restore %s: %w", spec.F.Name, err)
		}
	}
	if sm := opt.Metrics; sm != nil {
		registerCkptSeries(sm)
	}
	capture := func(cycle int64) error {
		pw := &ckpt.Writer{}
		if err := t.save(pw); err != nil {
			return err
		}
		if err := ckpt.WriteFile(opt.CheckpointTo, t.hash(opt), pw.Payload()); err != nil {
			return err
		}
		opt.Trace.Emit(obs.Event{Cycle: cycle, Kind: obs.KindCkpt, Arg: uint64(pw.Len())})
		return nil
	}
	var res proc.Result
	var lagStats *proc.LagStats
	err = fr.guard(func() error {
		var err error
		if t.lag {
			lagStats = &proc.LagStats{}
			if sm := opt.Metrics; sm != nil {
				sm.Register("lag.strides", func() int64 { return int64(lagStats.TotalStrides()) })
				sm.Register("lag.rollbacks", func() int64 { return int64(lagStats.TotalRollbacks()) })
				sm.Register("lag.deadline_strides", func() int64 {
					var n uint64
					for i := range lagStats.Core {
						n += lagStats.Core[i].DeadlineLimited
					}
					return int64(n)
				})
				sm.Register("lag.mem_warped_cycles", func() int64 { return lagStats.MemWarpedCycles })
			}
			switch {
			case opt.CheckpointTo != nil:
				res, err = t.core.RunLagWithCheckpoint(t.sys, opt.ParStride, lagStats, opt.CheckpointAt, capture)
			case fr.armed():
				// The recorder pre-armed a self-re-arming rolling hook.
				res, err = t.core.RunLagCheckpointed(t.sys, opt.ParStride, lagStats)
			default:
				res, err = t.core.RunLag(t.sys, opt.ParStride, lagStats)
			}
		} else {
			if opt.CheckpointTo != nil {
				t.core.SetCheckpointHook(opt.CheckpointAt, capture)
			}
			res, err = t.core.Run()
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("eval: %s: %w", spec.F.Name, err)
	}
	fr.finish()
	out, err := t.finish(res, lagStats)
	if err != nil {
		return nil, err
	}
	out.FlightDumps = fr.dumpDirs()
	return out, nil
}

// registerCkptSeries exposes the checkpoint save/restore counters as
// sampled series so -stats and /metrics see checkpoint traffic over time.
func registerCkptSeries(sm *obs.Sampler) {
	sm.Register("ckpt.frames_written", func() int64 { return int64(ckpt.Stats().FramesWritten) })
	sm.Register("ckpt.bytes_written", func() int64 { return int64(ckpt.Stats().BytesWritten) })
	sm.Register("ckpt.restores", func() int64 { return int64(ckpt.Stats().FramesRead) })
	sm.Register("ckpt.hash_checks", func() int64 { return int64(ckpt.Stats().HashChecks) })
}

// AlphaResult is one baseline run's outcome.
type AlphaResult struct {
	Cycles int64
	Insts  uint64
	IPC    float64
	Regs   []uint64
	Mem    *mem.Memory
}

// RunAlpha executes a workload spec on the baseline.
func RunAlpha(spec *workloads.Spec) (*AlphaResult, error) {
	code, err := alpha.Flatten(spec.F)
	if err != nil {
		return nil, err
	}
	m := mem.New()
	if spec.SetupMem != nil {
		spec.SetupMem(m)
	}
	mc := alpha.New(alpha.DefaultConfig(), code, spec.F.NumRegs(), m)
	for v, val := range spec.Init {
		mc.SetReg(v, val)
	}
	res, err := mc.Run()
	if err != nil {
		return nil, fmt.Errorf("eval: alpha %s: %w", spec.F.Name, err)
	}
	mc.FlushCache()
	regs := make([]uint64, spec.F.NumRegs())
	for i := range regs {
		regs[i] = mc.Reg(tir.Reg(i))
	}
	return &AlphaResult{Cycles: res.Cycles, Insts: res.Committed, IPC: res.IPC, Regs: regs, Mem: m}, nil
}

// RunGolden interprets a workload spec (the reference semantics).
func RunGolden(spec *workloads.Spec) ([]uint64, *mem.Memory, tir.InterpResult, error) {
	m := mem.New()
	if spec.SetupMem != nil {
		spec.SetupMem(m)
	}
	regs := make([]uint64, spec.F.NumRegs())
	for v, val := range spec.Init {
		regs[v] = val
	}
	res, err := tir.Interp(spec.F, m, regs, 100_000_000)
	return regs, m, res, err
}

// Verify runs a workload on all three machines and checks the declared
// outputs against the golden interpreter.
func Verify(w workloads.Workload) error {
	for _, hand := range []bool{false, true} {
		spec := w.Build(hand)
		gold, _, _, err := RunGolden(spec)
		if err != nil {
			return fmt.Errorf("%s golden: %w", w.Name, err)
		}
		mode := tcc.Compiled
		if hand {
			mode = tcc.Hand
		}
		tr, err := RunTRIPS(spec, TRIPSOptions{Mode: mode})
		if err != nil {
			return err
		}
		for _, out := range spec.Outputs {
			got, tracked := tr.Regs[out]
			if !tracked {
				return fmt.Errorf("%s: output r%d not architecturally visible", w.Name, out)
			}
			if got != gold[out] {
				return fmt.Errorf("%s (hand=%v): TRIPS r%d = %d, golden %d", w.Name, hand, out, got, gold[out])
			}
		}
		if !hand {
			ar, err := RunAlpha(spec)
			if err != nil {
				return err
			}
			for _, out := range spec.Outputs {
				if ar.Regs[out] != gold[out] {
					return fmt.Errorf("%s: alpha r%d = %d, golden %d", w.Name, out, ar.Regs[out], gold[out])
				}
			}
		}
	}
	return nil
}

// Table3Row is one row of paper Table 3.
type Table3Row struct {
	Name string
	// Left half: distributed network overheads as % of the critical path
	// (hand-optimized configuration, as the paper's methodology implies).
	IFetch, OPNHops, OPNCont, Fanout, Complete, Commit, Other float64
	// Right half: preliminary performance.
	SpeedupTCC  float64 // TRIPS compiled vs Alpha (cycles ratio)
	SpeedupHand float64
	IPCTCC      float64
	IPCHand     float64
	IPCAlpha    float64
	// Raw cycle counts behind the ratios, kept for the machine-readable
	// baseline and for host-throughput accounting (total simulated cycles
	// per row = CyclesHand + CyclesTCC + CyclesAlpha).
	CyclesHand  int64
	CyclesTCC   int64
	CyclesAlpha int64
}

// Stepping selects a simulator stepping discipline for a Table 3 run.
// The zero value is the default (fast paths and clock-warping on); every
// discipline must produce bit-identical simulated results, so the knobs
// exist for A/B verification and host-throughput measurement.
type Stepping struct {
	NoFastPath bool
	NoWarp     bool
	// NoEventDriven disables the per-tile doze overlay (see TRIPSOptions).
	NoEventDriven bool
	// UseNUCA swaps the perfect-L2 normalization for the full secondary
	// memory system on the TRIPS runs (the Alpha baseline is unaffected).
	UseNUCA bool
	// SeqStep / ParStride select the core/memory interleave for UseNUCA
	// runs: sequential lockstep vs bounded-lag with an optional stride cap.
	// See TRIPSOptions.
	SeqStep   bool
	ParStride int64
	// FlightDir, when non-empty, arms the flight recorder on the
	// compiled-TRIPS run of each row (the hand run keeps the critical-path
	// analyzer, which the recorder is incompatible with): a crash or
	// cycle-limit overrun in a long suite run dumps a replayable bundle
	// under this directory instead of evaporating.
	FlightDir string
}

// Table3 computes one benchmark's row. An optional Stepping overrides the
// simulator discipline for the two TRIPS runs.
func Table3(w workloads.Workload, step ...Stepping) (Table3Row, error) {
	row := Table3Row{Name: w.Name}
	var st Stepping
	if len(step) > 0 {
		st = step[0]
	}

	handSpec := w.Build(true)
	hand, err := RunTRIPS(handSpec, TRIPSOptions{Mode: tcc.Hand, TrackCritPath: true, NoFastPath: st.NoFastPath, NoWarp: st.NoWarp, NoEventDriven: st.NoEventDriven, UseNUCA: st.UseNUCA, SeqStep: st.SeqStep, ParStride: st.ParStride})
	if err != nil {
		return row, err
	}
	compSpec := w.Build(false)
	copt := TRIPSOptions{Mode: tcc.Compiled, NoFastPath: st.NoFastPath, NoWarp: st.NoWarp, NoEventDriven: st.NoEventDriven, UseNUCA: st.UseNUCA, SeqStep: st.SeqStep, ParStride: st.ParStride}
	if st.FlightDir != "" {
		copt.Flight = &FlightOptions{Dir: st.FlightDir, Tool: "trips-eval", Bench: w.Name}
	}
	comp, err := RunTRIPS(compSpec, copt)
	if err != nil {
		return row, err
	}
	al, err := RunAlpha(w.Build(false))
	if err != nil {
		return row, err
	}

	row.IFetch = hand.Crit.Percent(critpath.CatIFetch)
	row.OPNHops = hand.Crit.Percent(critpath.CatOPNHop)
	row.OPNCont = hand.Crit.Percent(critpath.CatOPNContention)
	row.Fanout = hand.Crit.Percent(critpath.CatFanout)
	row.Complete = hand.Crit.Percent(critpath.CatComplete)
	row.Commit = hand.Crit.Percent(critpath.CatCommit)
	row.Other = hand.Crit.Percent(critpath.CatOther)

	if comp.Cycles > 0 {
		row.SpeedupTCC = float64(al.Cycles) / float64(comp.Cycles)
	}
	if hand.Cycles > 0 {
		row.SpeedupHand = float64(al.Cycles) / float64(hand.Cycles)
	}
	row.IPCTCC = comp.IPC
	row.IPCHand = hand.IPC
	row.IPCAlpha = al.IPC
	row.CyclesHand = hand.Cycles
	row.CyclesTCC = comp.Cycles
	row.CyclesAlpha = al.Cycles
	return row, nil
}
