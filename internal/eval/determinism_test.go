package eval

import (
	"testing"

	"trips/internal/chip"
	"trips/internal/critpath"
	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// microNames are the paper's four microbenchmarks — small enough to run
// repeatedly in a unit test.
var microNames = []string{"dct8x8", "matrix", "sha", "vadd"}

// summarize flattens the result fields that must be bit-identical across
// replays and across the fast-path ablation.
type runSummary struct {
	Cycles  int64
	Blocks  uint64
	Insts   uint64
	Flushes uint64
	IPC     float64
	Crit    critpath.Report
	Stats   proc.TileStats
}

func summarize(r *TRIPSResult) runSummary {
	return runSummary{
		Cycles:  r.Cycles,
		Blocks:  r.Blocks,
		Insts:   r.Insts,
		Flushes: r.Flushes,
		IPC:     r.IPC,
		Crit:    r.Crit,
		Stats:   r.Stats,
	}
}

// TestDeterministicReplay runs each microbenchmark twice with identical
// options and requires every simulated statistic — cycles, committed
// blocks/instructions, flushes, the critical-path breakdown, and all tile
// stats — to match exactly. The simulator holds no hidden host-dependent
// state (maps iterated for side effects, pointers compared for order, ...),
// so a replay must be a bit-identical re-execution.
func TestDeterministicReplay(t *testing.T) {
	for _, name := range microNames {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := TRIPSOptions{Mode: tcc.Hand, TrackCritPath: true}
		first, err := RunTRIPS(w.Build(true), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		second, err := RunTRIPS(w.Build(true), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a, b := summarize(first), summarize(second); a != b {
			t.Errorf("%s: replay diverged:\n  first:  %+v\n  second: %+v", name, a, b)
		}
	}
}

// TestFastPathBitIdentical is the tentpole invariant, checked four ways:
// full stepping (NoFastPath — every tile ticked every cycle, as the
// original loop did), the quiescence-aware fast paths with both warping and
// the per-tile doze overlay disabled, the fast paths with doze but no warp,
// and everything on (doze plus clock-warping over quiescent stretches).
// All four may change host time only: cycles, stats, critical path and
// architectural registers must match exactly.
func TestFastPathBitIdentical(t *testing.T) {
	variants := []struct {
		name string
		opt  TRIPSOptions
	}{
		{"full", TRIPSOptions{NoFastPath: true}},
		{"fastpath", TRIPSOptions{NoWarp: true, NoEventDriven: true}},
		{"fastpath+doze", TRIPSOptions{NoWarp: true}},
		{"fastpath+doze+warp", TRIPSOptions{}},
	}
	for _, name := range microNames {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []tcc.Mode{tcc.Hand, tcc.Compiled} {
			hand := mode == tcc.Hand
			var ref *TRIPSResult
			for _, v := range variants {
				opt := v.opt
				opt.Mode = mode
				opt.TrackCritPath = true
				res, err := RunTRIPS(w.Build(hand), opt)
				if err != nil {
					t.Fatalf("%s (%s): %v", name, v.name, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if a, b := summarize(ref), summarize(res); a != b {
					t.Errorf("%s (mode %v): %s diverged from full stepping:\n  full: %+v\n  %s: %+v",
						name, mode, v.name, a, v.name, b)
				}
				for reg, val := range ref.Regs {
					if res.Regs[reg] != val {
						t.Errorf("%s (mode %v): r%d = %d full, %d %s", name, mode, reg, val, res.Regs[reg], v.name)
					}
				}
			}
		}
	}
}

// TestNUCAFastPathBitIdentical repeats the four-way check behind the full
// NUCA secondary memory system, where the core's warp and doze decisions
// must also respect OCN deadlines delivered from outside Core.Step.
func TestNUCAFastPathBitIdentical(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	var ref *TRIPSResult
	for _, v := range []struct {
		name string
		opt  TRIPSOptions
	}{
		{"full", TRIPSOptions{NoFastPath: true}},
		{"fastpath", TRIPSOptions{NoWarp: true, NoEventDriven: true}},
		{"fastpath+doze", TRIPSOptions{NoWarp: true}},
		{"fastpath+doze+warp", TRIPSOptions{}},
	} {
		opt := v.opt
		opt.Mode = tcc.Hand
		opt.UseNUCA = true
		opt.TrackCritPath = true
		res, err := RunTRIPS(w.Build(true), opt)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if a, b := summarize(ref), summarize(res); a != b {
			t.Errorf("NUCA %s diverged:\n  full: %+v\n  %s: %+v", v.name, a, v.name, b)
		}
	}
}

// chipRun executes one workload under the full chip loop (core behind the
// NUCA secondary memory system, chip ticking the OCN and memory) and
// returns the chip cycle count plus the core's result snapshot.
func chipRun(t *testing.T, w workloads.Workload) (int64, proc.Result) {
	t.Helper()
	spec := w.Build(true)
	prog, meta, err := tcc.Compile(spec.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	backing := mem.New()
	if spec.SetupMem != nil {
		spec.SetupMem(backing)
	}
	c, err := chip.New(chip.Config{
		Programs:  [2]*proc.Program{prog, nil},
		Backing:   backing,
		MaxCycles: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range spec.Init {
		if gr, ok := meta.RegOf[v]; ok {
			c.Cores[0].SetRegister(0, gr, val)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.Cycle(), c.Cores[0].Result()
}

// TestChipLoopDeterministic replays one microbenchmark under the chip loop
// (the externally-ticked memory configuration, which exercises the fast
// paths with deliveries arriving from outside Core.Step) and requires the
// chip cycle count and all core statistics to match across runs.
func TestChipLoopDeterministic(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	cyc1, res1 := chipRun(t, w)
	cyc2, res2 := chipRun(t, w)
	if cyc1 != cyc2 {
		t.Errorf("chip cycles diverged: %d vs %d", cyc1, cyc2)
	}
	if res1 != res2 {
		t.Errorf("chip core result diverged:\n  first:  %+v\n  second: %+v", res1, res2)
	}
	if res1.CommittedBlocks == 0 {
		t.Error("chip run committed no blocks")
	}
}
