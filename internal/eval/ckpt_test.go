package eval

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"trips/internal/ckpt"
	"trips/internal/workloads"
)

// ckptCompare requires two runs to agree on every simulated observable.
// Warps/WarpedCycles and Lag are host-side telemetry and differ by design
// across stepping disciplines and phase seams; Mem and Crit are excluded
// (Mem is a live pointer, Crit is empty without the analyzer).
func ckptCompare(t *testing.T, label string, got, want *TRIPSResult) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
	if got.Insts != want.Insts {
		t.Errorf("%s: insts %d, want %d", label, got.Insts, want.Insts)
	}
	if got.Blocks != want.Blocks {
		t.Errorf("%s: blocks %d, want %d", label, got.Blocks, want.Blocks)
	}
	if got.Flushes != want.Flushes {
		t.Errorf("%s: flushes %d, want %d", label, got.Flushes, want.Flushes)
	}
	if !reflect.DeepEqual(got.Regs, want.Regs) {
		t.Errorf("%s: architectural registers diverged:\n  got:  %v\n  want: %v", label, got.Regs, want.Regs)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Errorf("%s: tile stats diverged", label)
	}
	if !reflect.DeepEqual(got.NUCA, want.NUCA) {
		t.Errorf("%s: NUCA counters diverged:\n  got:  %+v\n  want: %+v", label, got.NUCA, want.NUCA)
	}
}

// roundTrip runs spec uninterrupted, then with a mid-run checkpoint, then
// restored from that checkpoint, and requires all three outcomes identical.
func roundTrip(t *testing.T, spec *workloads.Spec, opt TRIPSOptions, label string) {
	t.Helper()
	want, err := RunTRIPS(spec, opt)
	if err != nil {
		t.Fatalf("%s reference: %v", label, err)
	}

	ckOpt := opt
	ckOpt.CheckpointAt = want.Cycles / 2
	if ckOpt.CheckpointAt == 0 {
		ckOpt.CheckpointAt = 1
	}
	var buf bytes.Buffer
	ckOpt.CheckpointTo = &buf
	got, err := RunTRIPS(spec, ckOpt)
	if err != nil {
		t.Fatalf("%s checkpointed: %v", label, err)
	}
	ckptCompare(t, label+" checkpointed run", got, want)
	if buf.Len() == 0 {
		t.Fatalf("%s: no checkpoint captured (last commit before cycle %d?)", label, ckOpt.CheckpointAt)
	}

	rsOpt := opt
	rsOpt.RestoreFrom = bytes.NewReader(buf.Bytes())
	restored, err := RunTRIPS(spec, rsOpt)
	if err != nil {
		t.Fatalf("%s restored: %v", label, err)
	}
	ckptCompare(t, label+" restored run", restored, want)
}

// ckptMatrix is the stepping/warp matrix the acceptance criteria call for:
// sequential vs bounded-lag (NUCA) and warp vs no-warp, plus the perfect-L2
// backend.
var ckptMatrix = []struct {
	name string
	opt  TRIPSOptions
}{
	{"l2", TRIPSOptions{}},
	{"l2-nowarp", TRIPSOptions{NoWarp: true}},
	{"nuca-seq", TRIPSOptions{UseNUCA: true, SeqStep: true}},
	{"nuca-seq-nowarp", TRIPSOptions{UseNUCA: true, SeqStep: true, NoWarp: true}},
	{"nuca-lag", TRIPSOptions{UseNUCA: true}},
	{"nuca-lag-nowarp", TRIPSOptions{UseNUCA: true, NoWarp: true}},
}

// TestCheckpointRoundTrip covers a representative workload subset in the
// tier-1 run; set TRIPS_CKPT_FULL=1 to sweep the whole Table 3 suite.
func TestCheckpointRoundTrip(t *testing.T) {
	names := []string{"vadd", "dct8x8", "256.bzip2"}
	if os.Getenv("TRIPS_CKPT_FULL") != "" {
		names = nil
		for _, w := range workloads.All() {
			names = append(names, w.Name)
		}
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := w.Build(true)
		for _, m := range ckptMatrix {
			roundTrip(t, spec, m.opt, name+"/"+m.name)
		}
	}
}

// TestCheckpointRoundTripFuzzed is the property test: random workload,
// random configuration, random capture cycle — the restored run must always
// be bit-identical to the uninterrupted one. The seed is fixed so failures
// reproduce.
func TestCheckpointRoundTripFuzzed(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7219))
	names := []string{"vadd", "conv", "matrix", "dct8x8"}
	for i := 0; i < 8; i++ {
		name := names[rng.Intn(len(names))]
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := TRIPSOptions{
			UseNUCA:           rng.Intn(2) == 0,
			SeqStep:           rng.Intn(2) == 0,
			NoWarp:            rng.Intn(2) == 0,
			NoFastPath:        rng.Intn(4) == 0,
			OPNChannels:       1 + rng.Intn(2),
			ConservativeLoads: rng.Intn(2) == 0,
		}
		spec := w.Build(rng.Intn(2) == 0)
		want, err := RunTRIPS(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		at := 1 + rng.Int63n(want.Cycles-1)
		label := name + "/fuzz"

		ckOpt := opt
		ckOpt.CheckpointAt = at
		var buf bytes.Buffer
		ckOpt.CheckpointTo = &buf
		got, err := RunTRIPS(spec, ckOpt)
		if err != nil {
			t.Fatalf("%s (at=%d): %v", label, at, err)
		}
		ckptCompare(t, label+" checkpointed", got, want)
		if buf.Len() == 0 {
			// The arm cycle landed after the last block commit; there is
			// no boundary left to capture at. Legal, nothing to restore.
			continue
		}
		rsOpt := opt
		rsOpt.RestoreFrom = bytes.NewReader(buf.Bytes())
		restored, err := RunTRIPS(spec, rsOpt)
		if err != nil {
			t.Fatalf("%s (at=%d) restore: %v", label, at, err)
		}
		ckptCompare(t, label+" restored", restored, want)
	}
}

// TestRestoreRejectsMismatchAndCorruption: the frame must refuse a
// mismatched program/config loudly and turn truncation or bit-flips into
// clean errors.
func TestRestoreRejectsMismatchAndCorruption(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Build(true)
	var buf bytes.Buffer
	if _, err := RunTRIPS(spec, TRIPSOptions{CheckpointAt: 500, CheckpointTo: &buf}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Different configuration: OPN width changes simulated behavior.
	rs := TRIPSOptions{OPNChannels: 2, RestoreFrom: bytes.NewReader(raw)}
	if _, err := RunTRIPS(spec, rs); !errors.Is(err, ckpt.ErrContentHash) {
		t.Fatalf("restore under -opn 2: err = %v, want ErrContentHash", err)
	}
	// Different program.
	other, err := workloads.ByName("conv")
	if err != nil {
		t.Fatal(err)
	}
	rs = TRIPSOptions{RestoreFrom: bytes.NewReader(raw)}
	if _, err := RunTRIPS(other.Build(true), rs); !errors.Is(err, ckpt.ErrContentHash) {
		t.Fatalf("restore onto conv: err = %v, want ErrContentHash", err)
	}
	// Truncations.
	for _, cut := range []int{0, 7, len(raw) / 3, len(raw) - 1} {
		rs = TRIPSOptions{RestoreFrom: bytes.NewReader(raw[:cut])}
		if _, err := RunTRIPS(spec, rs); err == nil {
			t.Fatalf("restore of %d/%d bytes succeeded", cut, len(raw))
		}
	}
	// Bit flip in the payload.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0x01
	rs = TRIPSOptions{RestoreFrom: bytes.NewReader(corrupt)}
	if _, err := RunTRIPS(spec, rs); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("restore of corrupted frame: err = %v, want ErrCorrupt", err)
	}

	// Option validation.
	if _, err := RunTRIPS(spec, TRIPSOptions{TrackCritPath: true, CheckpointAt: 10, CheckpointTo: &bytes.Buffer{}}); err == nil {
		t.Fatal("checkpoint with critical-path tracking succeeded")
	}
	if _, err := RunTRIPS(spec, TRIPSOptions{CheckpointTo: &bytes.Buffer{}}); err == nil {
		t.Fatal("checkpoint without a capture cycle succeeded")
	}
}

// TestRunSampled: the profiling pass must match an uninterrupted run, the
// intervals must be deterministic across invocations and consistent with
// the full run's shape.
func TestRunSampled(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Build(true)
	want, err := RunTRIPS(spec, TRIPSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSampled(spec, TRIPSOptions{}, 500, 1000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ckptCompare(t, "sampled profiling pass", sr.Full, want)
	if len(sr.Samples) == 0 {
		t.Fatal("no intervals sampled")
	}
	var prevEnd int64
	var total uint64
	for _, s := range sr.Samples {
		if s.StartCycle <= 500 && s.Index == 0 {
			t.Errorf("interval 0 starts at %d, want after warmup 500", s.StartCycle)
		}
		if s.StartCycle < prevEnd {
			t.Errorf("interval %d starts at %d, before previous end %d", s.Index, s.StartCycle, prevEnd)
		}
		if s.EndCycle > s.StartCycle+1000 {
			t.Errorf("interval %d spans %d cycles, want <= 1000", s.Index, s.EndCycle-s.StartCycle)
		}
		prevEnd = s.EndCycle
		total += s.Insts
	}
	if total == 0 || total > want.Insts {
		t.Errorf("sampled insts %d, full run %d", total, want.Insts)
	}
	// Determinism across worker counts.
	sr2, err := RunSampled(spec, TRIPSOptions{}, 500, 1000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Samples, sr2.Samples) {
		t.Errorf("samples differ across worker counts:\n  %+v\n  %+v", sr.Samples, sr2.Samples)
	}
}
