package eval

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trips/internal/tcc"
	"trips/internal/workloads"
)

// Progress exposes the evaluation fan-out's live counters. The workers add
// to them as rows finish, and a debug HTTP endpoint (expvar) can read them
// concurrently — hence the atomics.
var Progress struct {
	// Rows is the number of completed Table 3 rows across all calls.
	Rows atomic.Int64
	// SimCycles is the total simulated cycles those rows covered.
	SimCycles atomic.Int64
}

// HostMetrics captures host-side throughput for one Table 3 row: how fast
// the simulator chewed through the row's three runs (TRIPS hand, TRIPS
// compiled, Alpha) on the machine running the evaluation. Simulated cycle
// counts are deterministic; everything else here is host wall-clock.
type HostMetrics struct {
	Workload     string  `json:"workload"`
	SimCycles    int64   `json:"sim_cycles"` // total simulated cycles across the row's runs
	WallNS       int64   `json:"wall_ns"`    // host wall-clock for the row
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
	NSPerCycle   float64 `json:"host_ns_per_sim_cycle"`
}

func hostMetrics(name string, simCycles int64, wall time.Duration) HostMetrics {
	h := HostMetrics{Workload: name, SimCycles: simCycles, WallNS: wall.Nanoseconds()}
	if wall > 0 {
		h.CyclesPerSec = float64(simCycles) / wall.Seconds()
	}
	if simCycles > 0 {
		h.NSPerCycle = float64(wall.Nanoseconds()) / float64(simCycles)
	}
	return h
}

// Table3Report is the full Table 3 evaluation plus host throughput — the
// machine-readable form written to BENCH_table3.json so performance work on
// the simulator can be compared against a checked-in baseline.
type Table3Report struct {
	// Rows are in workloads.All() order regardless of worker scheduling.
	Rows []Table3Row   `json:"rows"`
	Host []HostMetrics `json:"host"`

	Workers         int     `json:"workers"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	TotalSimCycles  int64   `json:"total_sim_cycles"`
	TotalWallNS     int64   `json:"total_wall_ns"` // wall-clock for the whole fan-out
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Table3All computes every benchmark's Table 3 row, fanning the independent
// rows across a bounded worker pool. workers <= 0 selects GOMAXPROCS.
// Row order and all simulated results are independent of the worker count:
// each row is a self-contained trio of runs (no shared mutable state), so
// parallelism changes host time only.
func Table3All(workers int, step ...Stepping) (*Table3Report, error) {
	return table3Subset(workloads.All(), workers, step...)
}

// Table3Rows computes rows for a named subset, with the same pooling.
func Table3Rows(names []string, workers int, step ...Stepping) (*Table3Report, error) {
	var ws []workloads.Workload
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return table3Subset(ws, workers, step...)
}

func table3Subset(ws []workloads.Workload, workers int, step ...Stepping) (*Table3Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ws) {
		workers = len(ws)
	}
	rep := &Table3Report{
		Rows:       make([]Table3Row, len(ws)),
		Host:       make([]HostMetrics, len(ws)),
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	errs := make([]error, len(ws))
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				row, err := Table3(ws[i], step...)
				if err != nil {
					errs[i] = err
					continue
				}
				rep.Rows[i] = row
				sim := row.CyclesHand + row.CyclesTCC + row.CyclesAlpha
				rep.Host[i] = hostMetrics(row.Name, sim, time.Since(t0))
				Progress.Rows.Add(1)
				Progress.SimCycles.Add(sim)
			}
		}()
	}
	for i := range ws {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)
	rep.TotalWallNS = wall.Nanoseconds()
	for _, h := range rep.Host {
		rep.TotalSimCycles += h.SimCycles
	}
	if wall > 0 {
		rep.SimCyclesPerSec = float64(rep.TotalSimCycles) / wall.Seconds()
	}
	return rep, nil
}

// AblationRow is one benchmark's design-choice ablation sweep (paper
// Sections 5.3 and 7): cycle counts under each configuration.
type AblationRow struct {
	Name         string `json:"name"`
	Naive        int64  `json:"naive_placement"`
	Greedy       int64  `json:"greedy_placement"`
	OPN1         int64  `json:"opn_1x"`
	OPN2         int64  `json:"opn_2x"`
	Aggressive   int64  `json:"aggressive_loads"`
	Conservative int64  `json:"conservative_loads"`
}

// ablationConfigs lists the sweep in column order.
var ablationConfigs = []struct {
	set func(*AblationRow, int64)
	opt TRIPSOptions
}{
	{func(r *AblationRow, c int64) { r.Naive = c }, TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceNaive}},
	{func(r *AblationRow, c int64) { r.Greedy = c }, TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceGreedy}},
	{func(r *AblationRow, c int64) { r.OPN1 = c }, TRIPSOptions{Mode: tcc.Hand, OPNChannels: 1}},
	{func(r *AblationRow, c int64) { r.OPN2 = c }, TRIPSOptions{Mode: tcc.Hand, OPNChannels: 2}},
	{func(r *AblationRow, c int64) { r.Aggressive = c }, TRIPSOptions{Mode: tcc.Hand}},
	{func(r *AblationRow, c int64) { r.Conservative = c }, TRIPSOptions{Mode: tcc.Hand, ConservativeLoads: true}},
}

// Ablations runs the design-choice sweep for the named benchmarks across a
// bounded worker pool (workers <= 0 selects GOMAXPROCS). The unit of work
// is one benchmark x configuration cell, so even a single benchmark's sweep
// parallelizes.
func Ablations(names []string, workers int) ([]AblationRow, error) {
	rows := make([]AblationRow, len(names))
	type cell struct{ bench, cfg int }
	var cells []cell
	for b, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			return nil, err
		}
		rows[b].Name = w.Name
		for c := range ablationConfigs {
			cells = append(cells, cell{b, c})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]error, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cl := cells[i]
				w, _ := workloads.ByName(rows[cl.bench].Name)
				res, err := RunTRIPS(w.Build(true), ablationConfigs[cl.cfg].opt)
				if err != nil {
					errs[i] = err
					continue
				}
				ablationConfigs[cl.cfg].set(&rows[cl.bench], res.Cycles)
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WriteBenchJSON writes the report as indented JSON, the checked-in
// BENCH_table3.json baseline format.
func WriteBenchJSON(path string, rep *Table3Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
