package eval

import (
	"testing"

	"trips/internal/tcc"
	"trips/internal/workloads"
)

// TestPaperShapes locks in the qualitative results of paper Table 3 and
// Sections 5.4/7: who wins, in which direction, and which overheads
// dominate. Absolute numbers differ from the paper (our substrate is a
// reimplementation, see EXPERIMENTS.md); these shapes must not.
func TestPaperShapes(t *testing.T) {
	row := func(name string) Table3Row {
		t.Helper()
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Table3(w)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// sha is almost entirely serial: TRIPS must lose to the Alpha
	// (paper: "sha sees a slowdown on TRIPS").
	sha := row("sha")
	if sha.SpeedupHand >= 1 {
		t.Errorf("sha hand speedup = %.2f, want < 1 (serial benchmark)", sha.SpeedupHand)
	}

	// vadd is L1-bandwidth-bound: TRIPS's four DT ports must win
	// (paper: speedup close to two, upper-bounded by the port ratio).
	vadd := row("vadd")
	if vadd.SpeedupHand <= 1.5 {
		t.Errorf("vadd hand speedup = %.2f, want > 1.5 (4 vs 2 L1 ports)", vadd.SpeedupHand)
	}

	// Operand routing is the dominant protocol overhead (paper: hops up
	// to 34%%, contention up to 25%%; control protocols mostly small).
	for _, name := range []string{"vadd", "conv", "matrix"} {
		r := row(name)
		opn := r.OPNHops + r.OPNCont
		if opn < r.Complete+r.Commit {
			t.Errorf("%s: OPN overhead %.1f%% should exceed control-protocol overhead %.1f%%",
				name, opn, r.Complete+r.Commit)
		}
		if r.OPNHops < 10 {
			t.Errorf("%s: OPN hops = %.1f%%, expected a dominant contributor", name, r.OPNHops)
		}
	}

	// Hand-optimized code must beat compiled code (paper: "Compiled TRIPS
	// code does not fare as well").
	for _, name := range []string{"vadd", "matrix", "cfar", "300.twolf"} {
		r := row(name)
		if r.SpeedupHand <= r.SpeedupTCC {
			t.Errorf("%s: hand speedup %.2f should exceed compiled %.2f", name, r.SpeedupHand, r.SpeedupTCC)
		}
	}
}

// TestAblationShapes locks in the Section 7 design-choice directions.
func TestAblationShapes(t *testing.T) {
	w, err := workloads.ByName("matrix")
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(opt TRIPSOptions) int64 {
		r, err := RunTRIPS(w.Build(true), opt)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	naive := cycles(TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceNaive})
	greedy := cycles(TRIPSOptions{Mode: tcc.Hand, Placement: tcc.PlaceGreedy})
	if greedy >= naive {
		t.Errorf("greedy placement (%d cycles) should beat naive (%d): scheduling reduces hop counts", greedy, naive)
	}
	// OPN bandwidth helps where operand traffic is the bottleneck; assert
	// it on the bandwidth-bound kernel (the paper's proposed extension is
	// motivated by exactly these codes).
	wv, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	vcycles := func(opt TRIPSOptions) int64 {
		r, err := RunTRIPS(wv.Build(true), opt)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	one := vcycles(TRIPSOptions{Mode: tcc.Hand, OPNChannels: 1})
	two := vcycles(TRIPSOptions{Mode: tcc.Hand, OPNChannels: 2})
	if two >= one {
		t.Errorf("2-channel OPN (%d cycles) should beat 1-channel (%d) on vadd", two, one)
	}
	fast := cycles(TRIPSOptions{Mode: tcc.Hand})
	slow := cycles(TRIPSOptions{Mode: tcc.Hand, SlowOPNRouter: true})
	if slow <= fast {
		t.Errorf("an extra cycle of OPN router latency (%d cycles) must hurt (%d): Section 5.3", slow, fast)
	}
}

// TestVerifySample runs the full three-machine verification for a couple of
// benchmarks (the whole suite runs in internal/workloads).
func TestVerifySample(t *testing.T) {
	for _, name := range []string{"vadd", "tblook01"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(w); err != nil {
			t.Error(err)
		}
	}
}

// TestNUCABackedCore runs a workload with the full secondary memory system
// behind the core instead of the perfect L2, verifying end-to-end
// integration (DT/IT ports -> OCN -> MT banks -> SDC) and that the slower
// memory system costs cycles.
func TestNUCABackedCore(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Build(true)
	gold, _, _, err := RunGolden(spec)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand})
	if err != nil {
		t.Fatal(err)
	}
	nucaRun, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand, UseNUCA: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range spec.Outputs {
		if nucaRun.Regs[out] != gold[out] {
			t.Errorf("NUCA run r%d = %d, golden %d", out, nucaRun.Regs[out], gold[out])
		}
	}
	if nucaRun.Cycles <= perfect.Cycles {
		t.Errorf("NUCA-backed run (%d cycles) should be slower than the perfect L2 (%d)",
			nucaRun.Cycles, perfect.Cycles)
	}
}

// TestRegisterBandwidthReduction checks the paper's Section 3.3 claim:
// because def-use pairs become intra-block temporaries on the operand
// network, register-file traffic is far below the ~2 accesses per
// instruction of a RISC core (the paper reports ~70% fewer).
func TestRegisterBandwidthReduction(t *testing.T) {
	w, err := workloads.ByName("matrix")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTRIPS(w.Build(true), TRIPSOptions{Mode: tcc.Hand})
	if err != nil {
		t.Fatal(err)
	}
	regAccesses := r.Stats.RTReadsForwarded + r.Stats.RTReadsFromFile + r.Stats.RTReadsBuffered
	perInst := float64(regAccesses) / float64(r.Insts)
	if perInst > 0.8 {
		t.Errorf("register reads per instruction = %.2f; direct operand communication should keep this well below RISC's ~2 (paper 3.3)", perInst)
	}
	if r.Stats.RegisterForwardRate() == 0 {
		t.Error("no reads were forwarded from in-flight write queues (dynamic renaming, paper 4.2)")
	}
	if r.Stats.LocalBypassRate() == 0 {
		t.Error("greedy placement should produce some same-ET bypasses")
	}
}
