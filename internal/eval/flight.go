package eval

import (
	"fmt"
	"strconv"
	"strings"

	"trips/internal/flight"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// FlightOptions arms the flight recorder on a RunTRIPS call: a rolling
// ring of block-commit checkpoints plus a bounded trace window, dumped as
// a self-describing bundle (manifest + nearest-prior checkpoint + window +
// stats snapshot) when the run panics, exceeds its cycle limit, or hits
// the configured DumpOn trigger.
type FlightOptions struct {
	// Dir receives dump bundles (default "flight-dumps").
	Dir string
	// Depth / Interval / WindowCap size the recorder (see flight.Config).
	Depth     int
	Interval  int64
	WindowCap int
	// DumpOn is an explicit trigger: "" (none), "rollback" (first
	// bounded-lag effect-gate rewind), "end" (successful completion),
	// "block=N" (first commit boundary with >= N blocks committed), or
	// "cycle=N" (first commit boundary at or past cycle N). Panics and
	// cycle-limit overruns always dump while the recorder is armed.
	DumpOn string
	// Tool names the producing binary in the manifest.
	Tool string
	// Bench / Hand identify the workload for trips-debug replay: the bundle
	// records them so a replay can rebuild the same machine. Bench defaults
	// to the spec's function name (which for registry workloads is the
	// workload name).
	Bench string
	Hand  bool
}

// flightRun is the per-run recorder wiring. The zero value (nil rec) is a
// disarmed recorder whose methods are all no-ops, so RunTRIPS calls them
// unconditionally.
type flightRun struct {
	rec       *flight.Recorder
	t         *trips
	interval  int64
	trigCycle int64  // dump-on cycle=N
	trigBlock uint64 // dump-on block=N
	dumpEnd   bool
	dumpRoll  bool
	fired     bool // the explicit trigger dumped already
	rollbacks uint64
	dirs      []string
	dumpErr   error
}

// newFlightRun validates opt.Flight and builds the recorder. It may mutate
// opt: a run without its own tracer gets the recorder's bounded window as
// opt.Trace so the machine is built with tracing attached.
func newFlightRun(spec *workloads.Spec, opt *TRIPSOptions) (*flightRun, error) {
	fo := opt.Flight
	if fo == nil {
		return &flightRun{}, nil
	}
	if opt.TrackCritPath {
		return nil, fmt.Errorf("eval: %s: flight recorder is incompatible with critical-path tracking (checkpoints cannot serialize the event graph)", spec.F.Name)
	}
	if opt.CheckpointTo != nil {
		return nil, fmt.Errorf("eval: %s: flight recorder and explicit -checkpoint-out both own the commit hook; use one", spec.F.Name)
	}
	f := &flightRun{interval: fo.Interval}
	if f.interval <= 0 {
		f.interval = 50_000
	}
	switch {
	case fo.DumpOn == "":
	case fo.DumpOn == "rollback":
		f.dumpRoll = true
	case fo.DumpOn == "end":
		f.dumpEnd = true
	case strings.HasPrefix(fo.DumpOn, "block="):
		n, err := strconv.ParseUint(fo.DumpOn[len("block="):], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("eval: bad -dump-on %q: want block=<positive count>", fo.DumpOn)
		}
		f.trigBlock = n
	case strings.HasPrefix(fo.DumpOn, "cycle="):
		n, err := strconv.ParseInt(fo.DumpOn[len("cycle="):], 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("eval: bad -dump-on %q: want cycle=<positive cycle>", fo.DumpOn)
		}
		f.trigCycle = n
	default:
		return nil, fmt.Errorf("eval: bad -dump-on %q: want rollback, end, block=N, or cycle=N", fo.DumpOn)
	}
	bench := fo.Bench
	if bench == "" {
		bench = spec.F.Name
	}
	f.rec = flight.New(flight.Config{
		Depth:     fo.Depth,
		Interval:  f.interval,
		WindowCap: fo.WindowCap,
		Dir:       fo.Dir,
		Name:      bench,
		Tool:      fo.Tool,
		Meta:      flightMeta(bench, fo.Hand, *opt),
	})
	if opt.Trace == nil {
		opt.Trace = f.rec.NewWindow("core")
	} else {
		f.rec.ObserveWindow("core", opt.Trace)
	}
	return f, nil
}

// flightMeta records the machine identity a replay needs. Raw option
// values are stored (MemLatency 0 means the default), so a replay that
// feeds them back through buildTRIPS recomputes the identical content
// hash.
func flightMeta(bench string, hand bool, opt TRIPSOptions) map[string]string {
	return map[string]string{
		"bench":        bench,
		"hand":         strconv.FormatBool(hand),
		"mode":         strconv.Itoa(int(opt.Mode)),
		"placement":    strconv.Itoa(int(opt.Placement)),
		"opn":          strconv.Itoa(opt.OPNChannels),
		"conservative": strconv.FormatBool(opt.ConservativeLoads),
		"slowopn":      strconv.FormatBool(opt.SlowOPNRouter),
		"memlat":       strconv.Itoa(opt.MemLatency),
		"nuca":         strconv.FormatBool(opt.UseNUCA),
	}
}

// metaOptions rebuilds the TRIPSOptions a bundle's meta recorded.
func metaOptions(meta map[string]string) (TRIPSOptions, error) {
	atoi := func(k string) (int, error) {
		if meta[k] == "" {
			return 0, nil
		}
		return strconv.Atoi(meta[k])
	}
	var opt TRIPSOptions
	var err error
	var v int
	if v, err = atoi("mode"); err == nil {
		opt.Mode = tcc.Mode(v)
	}
	if err == nil {
		if v, err = atoi("placement"); err == nil {
			opt.Placement = tcc.Placement(v)
		}
	}
	if err == nil {
		if v, err = atoi("opn"); err == nil {
			opt.OPNChannels = v
		}
	}
	if err == nil {
		if v, err = atoi("memlat"); err == nil {
			opt.MemLatency = v
		}
	}
	if err != nil {
		return opt, fmt.Errorf("eval: bundle meta: %w", err)
	}
	opt.ConservativeLoads = meta["conservative"] == "true"
	opt.SlowOPNRouter = meta["slowopn"] == "true"
	opt.UseNUCA = meta["nuca"] == "true"
	return opt, nil
}

// armed reports whether the recorder is live.
func (f *flightRun) armed() bool { return f.rec != nil }

// Recorder exposes the underlying recorder (nil when disarmed).
func (f *flightRun) Recorder() *flight.Recorder { return f.rec }

// bind attaches the built machine: the saver/hash/stats callbacks, the
// self-re-arming rolling-checkpoint hook (trigger-aware), the rollback
// hook, and the obs sampler series for recorder state.
func (f *flightRun) bind(t *trips, opt TRIPSOptions) {
	if f.rec == nil {
		return
	}
	f.t = t
	f.rec.Bind(t.hash(opt), t.save,
		func() string {
			var b strings.Builder
			if t.sys != nil {
				rep := t.sys.Report()
				b.WriteString(rep.String())
			}
			if opt.Metrics != nil {
				b.WriteString(opt.Metrics.Summary())
			}
			return b.String()
		},
		func() map[string]uint64 {
			return map[string]uint64{
				"core.cycles":   uint64(t.core.Cycle()),
				"core.blocks":   t.core.CommittedBlocks,
				"core.insts":    t.core.CommittedInsts,
				"lag.rollbacks": f.rollbacks,
			}
		})
	var fire func(cycle int64) error
	fire = func(cycle int64) error {
		if err := f.rec.Capture(cycle); err != nil {
			return err
		}
		if !f.fired && f.trigBlock > 0 && t.core.CommittedBlocks >= f.trigBlock {
			f.fired = true
			f.dump(fmt.Sprintf("block=%d", f.trigBlock),
				fmt.Sprintf("%d blocks committed at commit boundary cycle %d", t.core.CommittedBlocks, cycle), cycle)
		}
		if !f.fired && f.trigCycle > 0 && cycle >= f.trigCycle {
			f.fired = true
			f.dump(fmt.Sprintf("cycle=%d", f.trigCycle),
				fmt.Sprintf("commit boundary cycle %d reached trigger", cycle), cycle)
		}
		next := cycle + f.interval
		// Land a capture right on the cycle trigger so the dumped window
		// starts as close to it as a commit boundary allows.
		if f.trigCycle > cycle && f.trigCycle < next {
			next = f.trigCycle
		}
		t.core.SetCheckpointHook(next, fire)
		return nil
	}
	first := f.interval
	if f.trigCycle > 0 && f.trigCycle < first {
		first = f.trigCycle
	}
	t.core.SetCheckpointHook(first, fire)
	t.core.SetRollbackHook(func(owner int, from, effect int64) {
		f.rollbacks++
		if f.dumpRoll && f.rollbacks == 1 {
			f.dump(flight.TriggerRollback,
				fmt.Sprintf("core %d rolled back from cycle %d to effect cycle %d", owner, from, effect), from)
		}
	})
	if sm := opt.Metrics; sm != nil {
		sm.Register("flight.captures", func() int64 { return int64(f.rec.Captures()) })
		sm.Register("flight.checkpoints_held", func() int64 { return int64(f.rec.CheckpointsHeld()) })
		sm.Register("flight.window_events", func() int64 { return int64(f.rec.WindowEvents()) })
		sm.Register("flight.dumps", func() int64 { return int64(f.rec.Dumps()) })
	}
}

// guard runs the machine, converting panics and errors into dump bundles.
// Panics are re-raised after the dump; the "bounded-lag horizon violated"
// panic is classified as a deadline violation.
func (f *flightRun) guard(run func() error) error {
	if f.rec == nil {
		return run()
	}
	defer func() {
		if r := recover(); r != nil {
			trigger := flight.TriggerPanic
			if strings.Contains(fmt.Sprint(r), "horizon violated") {
				trigger = "deadline-violation"
			}
			f.dump(trigger, fmt.Sprint(r), f.t.core.Cycle())
			panic(r)
		}
	}()
	err := run()
	if err != nil {
		trigger := flight.TriggerError
		if strings.Contains(err.Error(), "cycle limit") {
			trigger = flight.TriggerLimit
		}
		f.dump(trigger, err.Error(), f.t.core.Cycle())
	}
	return err
}

// finish fires the end-of-run trigger.
func (f *flightRun) finish() {
	if f.rec == nil {
		return
	}
	if f.dumpEnd {
		f.dump(flight.TriggerEnd, "run completed", f.t.core.Cycle())
	}
}

func (f *flightRun) dump(trigger, reason string, cycle int64) {
	dir, err := f.rec.Dump(trigger, reason, cycle)
	if err != nil {
		if f.dumpErr == nil {
			f.dumpErr = err
		}
		return
	}
	f.dirs = append(f.dirs, dir)
}

func (f *flightRun) dumpDirs() []string { return f.dirs }
