package chip

import (
	"runtime"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

// dmaChip builds a chip whose dominant traffic is a DMA stream: two short
// core programs retire almost immediately, after which the DMA streams n
// bytes line-by-line through the OCN (port -> MT -> SDC round trips) while
// both cores sit idle — the drain-deadline warping target.
func dmaChip(t *testing.T, noWarp, noParallel bool, limit int64, n int) *Chip {
	t.Helper()
	backing := mem.New()
	for i := 0; i < n/8; i++ {
		backing.Write(0x700000+uint64(i)*8, 8, uint64(i+1))
	}
	p0 := countProgram(t, 0x100000, 3)
	p1 := countProgram(t, 0x200000, 2)
	c, err := New(Config{
		Programs:   [2]*proc.Program{p0, p1},
		Backing:    backing,
		MaxCycles:  limit,
		NoWarp:     noWarp,
		NoParallel: noParallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.DMA[0].Program(0x700000, 0x740000, n)
	return c
}

// TestChipDMAWarpBitIdentical streams 16KB of DMA traffic through the OCN
// under all four stepping modes — {parallel, sequential} x {warp, no-warp} —
// and requires identical simulated outcomes: chip cycles, core snapshots,
// and the copied bytes. The warped runs must actually engage: nearly all of
// the DMA phase is solo-transit or SDRAM-deadline time, so the warp counter
// has to cover the bulk of the run.
func TestChipDMAWarpBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	const bytes = 16 << 10
	run := func(noWarp, noParallel bool) (*Chip, proc.Result, proc.Result) {
		c := dmaChip(t, noWarp, noParallel, 10_000_000, bytes)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if c.DMA[0].Moved != bytes {
			t.Fatalf("dma moved %d bytes, want %d", c.DMA[0].Moved, bytes)
		}
		return c, c.Cores[0].Result(), c.Cores[1].Result()
	}
	ref, ref0, ref1 := run(true, true)
	for _, m := range []struct {
		name               string
		noWarp, noParallel bool
	}{
		{"parallel+warp", false, false},
		{"parallel+nowarp", true, false},
		{"sequential+warp", false, true},
	} {
		c, r0, r1 := run(m.noWarp, m.noParallel)
		if c.Cycle() != ref.Cycle() {
			t.Errorf("%s: chip cycles %d, want %d", m.name, c.Cycle(), ref.Cycle())
		}
		if r0 != ref0 {
			t.Errorf("%s: core 0 diverged:\n  got:  %+v\n  want: %+v", m.name, r0, ref0)
		}
		if r1 != ref1 {
			t.Errorf("%s: core 1 diverged:\n  got:  %+v\n  want: %+v", m.name, r1, ref1)
		}
		if m.noWarp {
			if c.Warps != 0 {
				t.Errorf("%s: %d warps recorded with warping disabled", m.name, c.Warps)
			}
		} else {
			if c.Warps == 0 {
				t.Errorf("%s: warp never engaged on a DMA-only phase", m.name)
			}
			if c.WarpedCycles*2 < c.Cycle() {
				t.Errorf("%s: warp covered only %d of %d cycles — DMA transit legs are not warping",
					m.name, c.WarpedCycles, c.Cycle())
			}
		}
	}
}

// TestChipLimitBoundaryWarpParity sweeps MaxCycles across the exact
// completion boundary and requires a warped and an unwarped run to agree on
// the outcome and the final cycle at every limit. A chip finishing its last
// step during cycle `limit` (final Cycle() == limit+1) must succeed; one
// needing more must report the limit error from both modes at the same
// cycle. Regression for the warp-onto-the-clamped-horizon boundary: tryWarp
// lands exactly on `limit`, and the step at that cycle must still run.
func TestChipLimitBoundaryWarpParity(t *testing.T) {
	scenarios := []struct {
		name string
		make func(noWarp bool, limit int64) *Chip
	}{
		{"dma", func(noWarp bool, limit int64) *Chip {
			return dmaChip(t, noWarp, true, limit, 256)
		}},
		{"cores", func(noWarp bool, limit int64) *Chip {
			p0 := countProgram(t, 0x100000, 40)
			p1 := countProgram(t, 0x200000, 15)
			c, err := New(Config{Programs: [2]*proc.Program{p0, p1}, MaxCycles: limit, NoWarp: noWarp, NoParallel: true})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			c := sc.make(true, 5_000_000)
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			n := c.Cycle() // the final step ran at cycle n-1
			for lim := n - 3; lim <= n+1; lim++ {
				cw := sc.make(false, lim)
				errW := cw.Run()
				cn := sc.make(true, lim)
				errN := cn.Run()
				if (errW == nil) != (errN == nil) || cw.Cycle() != cn.Cycle() {
					t.Errorf("limit=%d: warp cyc=%d err=%v | nowarp cyc=%d err=%v",
						lim, cw.Cycle(), errW, cn.Cycle(), errN)
					continue
				}
				if wantOK := lim >= n-1; (errN == nil) != wantOK {
					t.Errorf("limit=%d (completion step at %d): err=%v, want success=%v",
						lim, n-1, errN, wantOK)
				}
			}
		})
	}
}
