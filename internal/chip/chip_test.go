package chip

import (
	"runtime"
	"testing"

	"trips/internal/eval"
	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// countProgram builds a block chain that adds `iters` to r8 and halts.
func countProgram(t *testing.T, base uint64, iters int) *proc.Program {
	t.Helper()
	var blocks []*isa.Block
	for i := 0; i < iters; i++ {
		addr := base + uint64(i)*0x100
		b := &isa.Block{Addr: addr, Name: "count"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		off := int32(2) // next block, 2 chunks away
		if i == iters-1 {
			off = int32(-(int64(addr) / isa.ChunkBytes))
		}
		b.Insts = []isa.Inst{
			{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
			{Op: isa.BRO, Exit: 0, Offset: off},
		}
		blocks = append(blocks, b)
	}
	p, err := proc.NewProgram(base, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTwoCoresRunConcurrently(t *testing.T) {
	p0 := countProgram(t, 0x100000, 20)
	p1 := countProgram(t, 0x200000, 12)
	c, err := New(Config{Programs: [2]*proc.Program{p0, p1}, MaxCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Cores[0].Register(0, 8); got != 20 {
		t.Errorf("core 0 r8 = %d, want 20", got)
	}
	if got := c.Cores[1].Register(0, 8); got != 12 {
		t.Errorf("core 1 r8 = %d, want 12", got)
	}
	r0 := c.Cores[0].Result()
	r1 := c.Cores[1].Result()
	if r0.CommittedBlocks != 20 || r1.CommittedBlocks != 12 {
		t.Errorf("committed %d/%d blocks", r0.CommittedBlocks, r1.CommittedBlocks)
	}
}

func TestCoresCommunicateThroughSecondaryMemory(t *testing.T) {
	// Core 0 stores a value then a flag to UNCACHEABLE addresses (which
	// travel the OCN to the shared L2); core 1 spins on the flag and then
	// reads the value (paper Section 3: "The two processors can
	// communicate through the secondary memory system").
	//
	// Uncached addresses carry proc.UncachedBit (bit 40): the GENC/APPC
	// chains below build 0x100_0050_0000 | offset.
	w := &isa.Block{Addr: 0x100000, Name: "writer"}
	w.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(3)} // value
	w.Insts = []isa.Inst{
		{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(1)},
		{Op: isa.APPC, Imm: 0x0050, T0: isa.ToLeft(2)},
		{Op: isa.APPC, Imm: 0x0040, T0: isa.ToLeft(3)}, // value address
		{Op: isa.SD, Imm: 0, LSID: 0},                  // [val] = r8
		{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(5)},
		{Op: isa.APPC, Imm: 0x0050, T0: isa.ToLeft(6)},
		{Op: isa.APPC, Imm: 0x0000, T0: isa.ToLeft(8)}, // flag address
		{Op: isa.MOVI, Imm: 1, T0: isa.ToRight(8)},
		{Op: isa.SD, Imm: 0, LSID: 1}, // [flag] = 1
		{Op: isa.BRO, Exit: 0, Offset: -(0x100000 / isa.ChunkBytes)},
	}
	progW, err := proc.NewProgram(w.Addr, []*isa.Block{w})
	if err != nil {
		t.Fatal(err)
	}

	// Core 1: spin until [flag] != 0, then load [val] into r16.
	spin := &isa.Block{Addr: 0x200000, Name: "spin"}
	spin.Insts = []isa.Inst{
		{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(1)},
		{Op: isa.APPC, Imm: 0x0050, T0: isa.ToLeft(2)},
		{Op: isa.APPC, Imm: 0x0000, T0: isa.ToLeft(3)},
		{Op: isa.LD, Imm: 0, LSID: 0, T0: isa.ToLeft(4)},
		{Op: isa.TNEI, Imm: 0, T0: isa.ToLeft(7)},
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 2},  // -> read block
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: 0}, // spin
		{Op: isa.MOV, T0: isa.ToPred(5), T1: isa.ToPred(6)},      // fan the predicate
	}
	read := &isa.Block{Addr: 0x200100, Name: "read"}
	read.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
	read.Insts = []isa.Inst{
		{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(1)},
		{Op: isa.APPC, Imm: 0x0050, T0: isa.ToLeft(2)},
		{Op: isa.APPC, Imm: 0x0040, T0: isa.ToLeft(3)},
		{Op: isa.LD, Imm: 0, LSID: 0, T0: isa.ToWrite(0)},
		{Op: isa.BRO, Exit: 0, Offset: -(0x200100 / isa.ChunkBytes)},
	}
	progR, err := proc.NewProgram(spin.Addr, []*isa.Block{spin, read})
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(Config{Programs: [2]*proc.Program{progW, progR}, MaxCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	c.Cores[0].SetRegister(0, 8, 0xfeed)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Cores[1].Register(0, 16); got != 0xfeed {
		t.Errorf("core 1 read %#x through the L2, want 0xfeed", got)
	}
}

func TestDMATransfer(t *testing.T) {
	backing := mem.New()
	for i := 0; i < 32; i++ {
		backing.Write(0x700000+uint64(i)*8, 8, uint64(i+1))
	}
	p0 := countProgram(t, 0x100000, 2)
	c, err := New(Config{Programs: [2]*proc.Program{p0, nil}, Backing: backing, MaxCycles: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	c.DMA[0].Program(0x700000, 0x740000, 256)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	c.Mem.Flush()
	for i := 0; i < 32; i++ {
		if got := backing.Read(0x740000+uint64(i)*8, 8, false); got != uint64(i+1) {
			t.Fatalf("dma copy word %d = %d", i, got)
		}
	}
	if c.DMA[0].Moved != 256 {
		t.Errorf("dma moved %d bytes", c.DMA[0].Moved)
	}
}

// TestChipStepModesBitIdentical runs the same dual-core chip under all four
// stepping modes — {parallel, sequential} x {warp, no-warp} — and requires
// identical chip cycle counts and core results. GOMAXPROCS is raised to 2 so
// the parallel two-phase step actually takes the worker-goroutine path even
// on a single-CPU host (Step falls back to sequential at GOMAXPROCS 1). The
// core programs have different lengths so one core retires first, covering
// the worker teardown and the parallel->sequential transition mid-run.
func TestChipStepModesBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	run := func(noWarp, noParallel bool) (int64, proc.Result, proc.Result) {
		p0 := countProgram(t, 0x100000, 40)
		p1 := countProgram(t, 0x200000, 15)
		c, err := New(Config{
			Programs:   [2]*proc.Program{p0, p1},
			MaxCycles:  5_000_000,
			NoWarp:     noWarp,
			NoParallel: noParallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Cycle(), c.Cores[0].Result(), c.Cores[1].Result()
	}
	refCyc, ref0, ref1 := run(true, true) // sequential, no warp: the baseline
	for _, m := range []struct {
		name               string
		noWarp, noParallel bool
	}{
		{"parallel+warp", false, false},
		{"parallel+nowarp", true, false},
		{"sequential+warp", false, true},
	} {
		cyc, r0, r1 := run(m.noWarp, m.noParallel)
		if cyc != refCyc {
			t.Errorf("%s: chip cycles %d, want %d", m.name, cyc, refCyc)
		}
		if r0 != ref0 {
			t.Errorf("%s: core 0 diverged:\n  got:  %+v\n  want: %+v", m.name, r0, ref0)
		}
		if r1 != ref1 {
			t.Errorf("%s: core 1 diverged:\n  got:  %+v\n  want: %+v", m.name, r1, ref1)
		}
	}
}

// TestDualCoreWorkloads compiles a real benchmark and runs it on BOTH
// cores simultaneously, each with its own code copy, private L1s and a
// private half of the partitioned NUCA L2, sharing only the SDRAM.
func TestDualCoreWorkloads(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	spec0 := w.Build(true)
	spec1 := w.Build(true)
	gold, _, _, err := eval.RunGolden(w.Build(true))
	if err != nil {
		t.Fatal(err)
	}
	prog0, meta0, err := tcc.Compile(spec0.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	prog1, meta1, err := tcc.Compile(spec1.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x40000})
	if err != nil {
		t.Fatal(err)
	}
	backing := mem.New()
	spec0.SetupMem(backing) // both cores read the same input arrays
	c, err := New(Config{
		Programs:  [2]*proc.Program{prog0, prog1},
		Backing:   backing,
		Partition: true,
		MaxCycles: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range spec0.Init {
		if gr, ok := meta0.RegOf[v]; ok {
			c.Cores[0].SetRegister(0, gr, val)
		}
	}
	for v, val := range spec1.Init {
		if gr, ok := meta1.RegOf[v]; ok {
			c.Cores[1].SetRegister(0, gr, val)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for ci, meta := range []*tcc.Meta{meta0, meta1} {
		for _, out := range spec0.Outputs {
			gr, ok := meta.RegOf[out]
			if !ok {
				t.Fatalf("core %d: output r%d untracked", ci, out)
			}
			if got := c.Cores[ci].Register(0, gr); got != gold[out] {
				t.Errorf("core %d: r%d = %d, golden %d", ci, out, got, gold[out])
			}
		}
	}
	r0, r1 := c.Cores[0].Result(), c.Cores[1].Result()
	if r0.CommittedBlocks == 0 || r1.CommittedBlocks == 0 {
		t.Errorf("cores committed %d / %d blocks", r0.CommittedBlocks, r1.CommittedBlocks)
	}
}
