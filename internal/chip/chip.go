// Package chip assembles the full TRIPS prototype of paper Figure 2: two
// 16-wide processor cores, the 1MB NUCA secondary memory system on the
// on-chip network, two DMA controllers, the chip-to-chip controller and the
// external bus controller. The OCN carries all inter-processor, L2, DRAM,
// I/O and DMA traffic (Section 3.6); the two processors communicate through
// the secondary memory system.
package chip

import (
	"fmt"
	"runtime"
	"strings"

	"trips/internal/mem"
	"trips/internal/micronet"
	"trips/internal/nuca"
	"trips/internal/obs"
	"trips/internal/proc"
)

// horizonNever means no deadline-held event is outstanding (the shared
// sentinel convention; see micronet.HorizonNever).
const horizonNever = micronet.HorizonNever

// Stepping selects the chip's run-loop scheduler.
type Stepping int

const (
	// StepLag (the default) is the bounded-lag coordinator: each core runs
	// ahead on its own local clock in strides bounded by the provable
	// cross-core visibility horizon, with locally quiet cores warping even
	// while others are busy. Bit-identical to StepSeq.
	StepLag Stepping = iota
	// StepSeq forces the legacy globally synchronous stepper (one chip
	// cycle at a time, whole-machine warp gate).
	StepSeq
)

// Config parameterizes a chip instance.
type Config struct {
	// Programs for the two cores; nil leaves a core powered down.
	Programs [2]*proc.Program
	// Backing is the SDRAM image (programs are loaded into it by the EBC
	// before boot).
	Backing *mem.Memory
	// Partition splits the NUCA array into two private 512KB L2s.
	Partition bool
	// Scratchpad configures the MTs as on-chip memory.
	Scratchpad bool
	MaxCycles  int64
	// NoWarp disables clock-warping over chip-wide quiescent stretches
	// (for A/B bit-identity checks, mirroring proc.Config.NoWarp).
	NoWarp bool
	// NoEventDriven disables the per-tile doze overlay inside each core
	// (for A/B bit-identity checks, mirroring proc.Config.NoEventDriven).
	NoEventDriven bool
	// NoParallel forces the two cores to step sequentially on one host
	// thread instead of the deterministic two-phase parallel step.
	NoParallel bool
	// Stepping selects the run-loop scheduler (default bounded-lag).
	Stepping Stepping
	// LagHorizonOverride is a test-only fault-injection hook: when
	// positive, bounded-lag strides use G+n as their horizon instead of
	// the provably safe bounds, making rollbacks reachable.
	LagHorizonOverride int64
	// LagDeadlinePad is a test-only fault-injection hook: when positive,
	// every computed response deadline is padded by n cycles past the
	// provable bound, so cores waiting on memory overshoot the true effect
	// cycle and exercise the rollback path.
	LagDeadlinePad int64
	// Trace holds one optional tracer per core. The entries must be
	// distinct objects: the compute phase steps the two cores on
	// concurrent goroutines, and a Tracer is single-goroutine.
	Trace [2]*obs.Tracer
	// OCNTrace optionally records the shared OCN's per-message transport
	// events (emitted from the serial exchange phase).
	OCNTrace *obs.Tracer
	// Metrics optionally samples chip-level series (OCN occupancy, MSHR
	// and SDRAM queue depth, DMA progress, warp engagement). It is driven
	// from the serial exchange phase only, never from a core's parallel
	// compute step.
	Metrics *obs.Sampler
}

// Chip is one TRIPS prototype chip.
type Chip struct {
	Cores [2]*proc.Core
	Mem   *nuca.System
	DMA   [2]*DMA
	C2C   *C2C
	cfg   Config
	cycle int64

	// Warps counts successful chip-wide clock warps; WarpedCycles the
	// simulated cycles they skipped. Together with the per-core counters
	// they make warp engagement observable without a trace. Under
	// bounded-lag stepping these aggregate the coordinator's joint and
	// memory-domain warps.
	Warps        uint64
	WarpedCycles int64

	// Lag holds the bounded-lag coordinator's telemetry (stride lengths,
	// stall reasons, rollbacks); zero after a StepSeq run.
	Lag proc.LagStats

	// step1/done1 drive a persistent worker goroutine for core 1 during
	// parallel stepping: spawning a goroutine per cycle costs ~2µs, a
	// channel ping-pong a few hundred ns. The worker is started lazily on
	// the first parallel step and stopped as soon as either core finishes.
	step1, done1 chan struct{}

	// Checkpoint hook: ckptFn fires once at the first chip cycle past
	// ckptAt on which a block commits on any core, then disarms. Both
	// steppers honor it; the bounded-lag stepper parks every clock at
	// ckptAt and locksteps to the commit boundary first.
	ckptAt int64
	ckptFn func(cycle int64) error
	// Rollback hook: forwarded to LagConfig.OnRollback so observers (the
	// flight recorder) see effect-gate rewinds under StepLag.
	onRollback func(owner int, from, effect int64)
}

// SetCheckpointHook arms fn to run once at the first block-commit boundary
// past cycle at. Commits are the chip's quiesce points: the hook fires
// between cycles, when every tile, network and memory structure is a pure
// function of the architectural state SaveState serializes.
func (c *Chip) SetCheckpointHook(at int64, fn func(cycle int64) error) {
	c.ckptAt = at
	c.ckptFn = fn
}

// SetRollbackHook arms fn to observe bounded-lag effect-gate rewinds under
// StepLag: owner is the memory-port owner id (core index), from the cycle
// the core had run ahead to, effect the rewound-to cycle. Observability
// only — fn must not touch simulated state.
func (c *Chip) SetRollbackHook(fn func(owner int, from, effect int64)) {
	c.onRollback = fn
}

// committedBlocks sums block commits across the active cores.
func (c *Chip) committedBlocks() uint64 {
	var n uint64
	for _, core := range c.Cores {
		if core != nil {
			n += core.CommittedBlocks
		}
	}
	return n
}

// startWorker launches the core-1 step worker.
func (c *Chip) startWorker() {
	c.step1 = make(chan struct{})
	c.done1 = make(chan struct{})
	go func() {
		for range c.step1 {
			c.Cores[1].Step()
			c.done1 <- struct{}{}
		}
		close(c.done1)
	}()
}

// stopWorker tears down the core-1 step worker, if running.
func (c *Chip) stopWorker() {
	if c.step1 == nil {
		return
	}
	close(c.step1)
	<-c.done1
	c.step1, c.done1 = nil, nil
}

// New builds and boots a chip: the external bus controller's PowerPC host
// loads the program images into SDRAM (paper Section 5.1: "we chose to
// off-load much of the operating system and runtime control to this
// PowerPC"), then the cores come up at their entry addresses.
func New(cfg Config) (*Chip, error) {
	if cfg.Backing == nil {
		cfg.Backing = mem.New()
	}
	c := &Chip{cfg: cfg}
	c.Mem = nuca.New(nuca.Config{
		Backing:    cfg.Backing,
		Partition:  cfg.Partition,
		Scratchpad: cfg.Scratchpad,
		Trace:      cfg.OCNTrace,
		Metrics:    cfg.Metrics,
	})
	for i, prog := range cfg.Programs {
		if prog == nil {
			continue
		}
		if err := prog.Image(cfg.Backing); err != nil {
			return nil, err
		}
		backend := &coreBackend{sys: c.Mem, prefix: ""}
		if i == 1 {
			backend.prefix = "p1:"
		}
		core, err := proc.NewCore(proc.Config{
			Program:         prog,
			Mem:             backend,
			ExternalMemTick: true,
			MaxCycles:       cfg.MaxCycles,
			NoEventDriven:   cfg.NoEventDriven,
			Trace:           cfg.Trace[i],
		})
		if err != nil {
			return nil, err
		}
		c.Cores[i] = core
	}
	c.DMA[0] = &DMA{chip: c, id: 0}
	c.DMA[1] = &DMA{chip: c, id: 1}
	c.C2C = &C2C{}
	// Port owners map each port to the core whose steps may touch it. Both
	// steppers rely on this: the parallel compute phase keeps each core's
	// staging counters on per-owner cells (two cores incrementing one shared
	// counter would race), and the bounded-lag coordinator additionally gates
	// drains and strides per owner. The DMA controllers stay ownerless — they
	// submit from the serial memory phase itself.
	c.Mem.AssignOwners(func(name string) int {
		if strings.HasPrefix(name, "p1:") {
			return 1
		}
		if strings.HasPrefix(name, "dma") {
			return -1
		}
		return 0
	})
	if sm := cfg.Metrics; sm != nil {
		// These closures read core and DMA state, which is safe because the
		// sampler fires from the OCN tick in the serial exchange phase.
		sm.Register("chip.warped_cycles", func() int64 { return c.WarpedCycles })
		sm.Register("dma.moved", func() int64 {
			return int64(c.DMA[0].Moved + c.DMA[1].Moved)
		})
		sm.Register("dma.completions", func() int64 {
			return int64(c.DMA[0].Completions + c.DMA[1].Completions)
		})
		// Bounded-lag coordinator series: a bad horizon bound shows up here
		// as a rollback storm instead of a silent slowdown.
		sm.Register("lag.strides", func() int64 { return int64(c.Lag.TotalStrides()) })
		sm.Register("lag.rollbacks", func() int64 { return int64(c.Lag.TotalRollbacks()) })
		sm.Register("lag.horizon_stalls", func() int64 {
			var n uint64
			for i := range c.Lag.Core {
				n += c.Lag.Core[i].HorizonLimited
			}
			return int64(n)
		})
		sm.Register("lag.deadline_strides", func() int64 {
			var n uint64
			for i := range c.Lag.Core {
				n += c.Lag.Core[i].DeadlineLimited
			}
			return int64(n)
		})
		sm.Register("lag.quiesce_stalls", func() int64 {
			var n uint64
			for i := range c.Lag.Core {
				n += c.Lag.Core[i].QuiesceLimited
			}
			return int64(n)
		})
		sm.Register("lag.mem_warped_cycles", func() int64 { return c.Lag.MemWarpedCycles })
	}
	return c, nil
}

// coreBackend namespaces one core's ports on the shared OCN and defers
// ticking to the chip loop.
type coreBackend struct {
	sys    *nuca.System
	prefix string
}

func (b *coreBackend) Port(name string) proc.MemPort { return b.sys.Port(b.prefix + name) }
func (b *coreBackend) Tick()                         {} // the chip ticks the OCN once per cycle

// Step advances the whole chip one cycle as a deterministic two-phase
// step. Compute phase: the two cores step concurrently — they share only
// the OCN, whose port Submit paths touch port-local state only. Exchange
// phase: DMA ticks and the OCN tick (which drains port queues and assigns
// transaction ids in fixed order) run serialized, so every cross-core
// interaction happens in the same order as a sequential step.
func (c *Chip) Step() {
	run0 := c.Cores[0] != nil && !c.Cores[0].Done()
	run1 := c.Cores[1] != nil && !c.Cores[1].Done()
	// On a single-thread host the worker goroutine can only add ping-pong
	// overhead, so fall back to sequential stepping (the two orders are
	// outcome-identical: the compute phase has no cross-core interaction).
	if run0 && run1 && !c.cfg.NoParallel && runtime.GOMAXPROCS(0) > 1 {
		if c.step1 == nil {
			c.startWorker()
		}
		c.step1 <- struct{}{}
		c.Cores[0].Step()
		<-c.done1
	} else {
		c.stopWorker()
		if run0 {
			c.Cores[0].Step()
		}
		if run1 {
			c.Cores[1].Step()
		}
	}
	for _, d := range c.DMA {
		d.tick()
	}
	c.Mem.Tick()
	c.cycle++
}

// Done reports whether every active core has retired and the DMAs are idle.
func (c *Chip) Done() bool {
	for _, core := range c.Cores {
		if core != nil && !core.Done() {
			return false
		}
	}
	for _, d := range c.DMA {
		if d.Busy() {
			return false
		}
	}
	return true
}

// Run executes until completion under the configured stepper. Both
// steppers are bit-identical for every observable: identical cycle counts,
// registers, stats, and identical errors at identical cycles on the limit
// boundary.
func (c *Chip) Run() error {
	if c.cfg.Stepping == StepSeq {
		return c.runSeq()
	}
	return c.runLag()
}

// runSeq executes until completion one globally synchronous cycle at a
// time, warping the clock over chip-wide quiescent stretches. The check
// order at the cycle-limit boundary matters: the step at cycle == limit is
// still executed (a chip completing during that very cycle succeeds rather
// than reporting a spurious limit error), and the error fires only once the
// clock has passed the limit with work still outstanding. tryWarp clamps
// its horizon to limit, so a warped run lands on exactly the boundary cycle
// an unwarped run steps to, executes the same final step, and reports the
// limit error at the same cycle.
func (c *Chip) runSeq() error {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	defer c.stopWorker()
	lastBlocks := c.committedBlocks()
	for !c.Done() {
		if !c.cfg.NoWarp {
			c.tryWarp(limit)
		}
		if c.cycle > limit {
			return fmt.Errorf("chip: cycle limit %d exceeded", limit)
		}
		c.Step()
		if c.ckptFn != nil {
			if nb := c.committedBlocks(); nb != lastBlocks {
				lastBlocks = nb
				if c.cycle > c.ckptAt {
					fn := c.ckptFn
					c.ckptFn = nil
					if err := fn(c.cycle); err != nil {
						return fmt.Errorf("chip: checkpoint at cycle %d: %w", c.cycle, err)
					}
				}
			}
		}
	}
	return nil
}

// runLag executes until completion under the bounded-lag coordinator:
// per-core local clocks, per-core warps on locally quiet cores, and a
// serial memory catch-up that replays the sequential drain schedule. The
// port owners assigned at construction gate each owned port's drains by its
// core's clock.
func (c *Chip) runLag() error {
	// Checkpoint capture under bounded-lag stepping: park every clock at
	// the arm cycle (LagConfig.StopAt aligns core and backend clocks at a
	// lockstep boundary), lockstep sequentially to the next block-commit
	// boundary, capture, and resume the coordinator. fn may re-arm the hook
	// via SetCheckpointHook for rolling captures (the flight recorder). The
	// composition is observable-identical to an uninterrupted bounded-lag
	// run; only the warp telemetry may differ across the phase seams.
	for c.ckptFn != nil {
		at := c.ckptAt
		if err := c.runLagPhase(at); err != nil {
			return err
		}
		last := c.committedBlocks()
		var guard int64
		for !c.Done() && c.committedBlocks() == last {
			c.Step()
			if guard++; guard > 400_000 {
				return fmt.Errorf("chip: no block commit within %d lockstep cycles after checkpoint arm cycle %d", guard-1, at)
			}
		}
		fn := c.ckptFn
		c.ckptFn = nil
		if err := fn(c.cycle); err != nil {
			return fmt.Errorf("chip: checkpoint at cycle %d: %w", c.cycle, err)
		}
		// A finished chip cannot reach another commit boundary: drop any
		// re-arm rather than spin on the terminal state.
		if c.Done() {
			c.ckptFn = nil
		}
	}
	return c.runLagPhase(0)
}

// runLagPhase runs the bounded-lag coordinator until completion, or until
// every clock parks at stopAt (stopAt > 0). Warp accounting is by delta:
// the coordinator accumulates into c.Lag across phases.
func (c *Chip) runLagPhase(stopAt int64) error {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	var cores []proc.LagCore
	for i, core := range c.Cores {
		if core != nil {
			cores = append(cores, proc.LagCore{Core: core, Owner: i})
		}
	}
	preWarps := c.Lag.JointWarps + c.Lag.MemWarps
	preWarped := c.Lag.JointWarpedCycles + c.Lag.MemWarpedCycles
	g, err := proc.RunBoundedLag(c.Mem, cores, proc.LagConfig{
		Limit:           limit,
		NoWarp:          c.cfg.NoWarp,
		Parallel:        !c.cfg.NoParallel,
		HorizonOverride: c.cfg.LagHorizonOverride,
		DeadlinePad:     c.cfg.LagDeadlinePad,
		OnRollback:      c.onRollback,
		StopAt:          stopAt,
		PreTick: func(int64) {
			for _, d := range c.DMA {
				d.tick()
			}
		},
		ExtraBusy: func() bool {
			return c.DMA[0].Busy() || c.DMA[1].Busy()
		},
		CanWarpExtra: func() bool {
			for _, d := range c.DMA {
				// Same gate as tryWarp: a DMA between OCN transactions
				// issues on the very next tick, so no warp is possible.
				if d.Busy() && !d.inFlight {
					return false
				}
			}
			return true
		},
		Stats: &c.Lag,
		LimitErr: func(l int64) error {
			return fmt.Errorf("chip: cycle limit %d exceeded", l)
		},
	})
	c.cycle = g
	c.Warps += c.Lag.JointWarps + c.Lag.MemWarps - preWarps
	c.WarpedCycles += c.Lag.JointWarpedCycles + c.Lag.MemWarpedCycles - preWarped
	return err
}

// tryWarp jumps the chip clock to the next event horizon when every
// component's future is deadline-describable: each running core quiescent,
// the memory system quiet (fully drained, or holding only deadline-bounded
// work — a solo in-transit OCN message, staged injections, multi-flit
// serializations, SDRAM jobs), and every busy DMA a pure waiter on an OCN
// round-trip. The horizon is the minimum of the cores' scheduled events and
// the memory system's drain deadlines (backend events at cycle R are
// serviced during the chip step at R-1).
//
// Boundary handling: the horizon is clamped to limit after the minimum is
// taken, which also converts a horizonNever result (nothing scheduled
// anywhere — a deadlock) into a warp straight to the boundary; in both
// cases a warped run then steps and errors at exactly the cycles an
// unwarped run would, so the clamp must stay downstream of every other
// horizon source (see the A/B limit-boundary tests).
func (c *Chip) tryWarp(limit int64) {
	if !c.Mem.Quiet() {
		return
	}
	for _, d := range c.DMA {
		// A DMA between OCN transactions (line boundary, or a Submit that
		// was refused) issues its next request on the very next tick: its
		// deadline is "now", so no warp is possible. In flight it is a pure
		// waiter — its Done closure fires from the serial OCN tick, which
		// the memory system's deadlines cover.
		if d.Busy() && !d.inFlight {
			return
		}
	}
	h := horizonNever
	for _, core := range c.Cores {
		if core == nil || core.Done() {
			continue
		}
		if !core.Quiescent() {
			return
		}
		h = micronet.MinHorizon(h, core.NextEventCycle())
	}
	h = micronet.FoldBackendHorizon(h, c.Mem.NextEventCycle())
	if h > limit {
		h = limit
	}
	if h <= c.cycle {
		return
	}
	for _, core := range c.Cores {
		if core != nil && !core.Done() {
			core.WarpTo(h)
		}
	}
	c.Warps++
	c.WarpedCycles += h - c.cycle
	c.Mem.Warp(h - c.cycle)
	c.cycle = h
}

// Cycle returns the chip cycle count.
func (c *Chip) Cycle() int64 { return c.cycle }

// TileActivity sums the per-core tile stepping telemetry: ticks (tile ticks
// actually executed), skips (tile ticks elided by the event-driven doze
// overlay), and stepped (per-core Step invocations; warped cycles excluded).
// ticks+skips == 30*stepped always; the skip share is the doze coverage.
func (c *Chip) TileActivity() (ticks, skips uint64, stepped int64) {
	for _, core := range c.Cores {
		if core == nil {
			continue
		}
		ticks += core.TileTicks
		skips += core.TileSkips
		stepped += core.SteppedCycles
	}
	return
}

// DMA is one of the two direct memory access controllers: programmable to
// transfer data between any two regions of the physical address space
// (paper Section 5.1), implemented as an OCN client moving one cache line
// per transaction.
type DMA struct {
	chip *Chip
	id   int
	port proc.MemPort

	src, dst uint64
	left     int
	inFlight bool
	buf      []byte
	phase    int // 0 idle, 1 reading, 2 writing
	Moved    uint64
	// Completions counts finished line transfers (read + write round trips).
	Completions uint64

	// rdReq/wrReq are persistent request records: the Done closures are
	// bound once, so a long transfer issues thousands of transactions
	// without allocating per line.
	rdReq, wrReq *proc.MemRequest
}

// onReadDone and onWriteDone are the transaction completion actions. They
// are methods (not closure bodies) so a checkpoint restore can rebuild the
// Done callback of an in-flight request to the exact live behavior.
func (d *DMA) onReadDone(data []byte) {
	d.buf = data
	d.inFlight = false
	d.phase = 2
}

func (d *DMA) onWriteDone() {
	d.inFlight = false
	d.phase = 1
	d.Moved += uint64(len(d.buf))
	d.Completions++
	d.src += uint64(len(d.buf))
	d.dst += uint64(len(d.buf))
	d.left -= len(d.buf)
	if d.left <= 0 {
		d.phase = 0
	}
}

// bind lazily creates the DMA's OCN port and its persistent request
// records: the Done closures are bound once, so a long transfer issues
// thousands of transactions without allocating per line.
func (d *DMA) bind() {
	if d.port == nil {
		d.port = d.chip.Mem.Port(fmt.Sprintf("dma%d", d.id))
	}
	if d.rdReq == nil {
		d.rdReq = &proc.MemRequest{
			Origin: proc.Origin{Kind: proc.OriginDMARead, Tile: d.id},
			Done:   d.onReadDone,
		}
		d.wrReq = &proc.MemRequest{
			IsWrite: true,
			Origin:  proc.Origin{Kind: proc.OriginDMAWrite, Tile: d.id},
			Done:    func([]byte) { d.onWriteDone() },
		}
	}
}

// Program arms the DMA to copy n bytes (line-aligned) from src to dst.
func (d *DMA) Program(src, dst uint64, n int) {
	d.bind()
	d.src, d.dst, d.left = src, dst, n
	d.phase = 0
}

// Busy reports whether a transfer is in progress.
func (d *DMA) Busy() bool { return d.left > 0 || d.inFlight }

func (d *DMA) tick() {
	if d.inFlight || (d.left <= 0 && d.phase == 0) {
		return
	}
	switch d.phase {
	case 0, 1:
		if d.left <= 0 {
			return
		}
		n := nuca.LineBytes
		if d.left < n {
			n = d.left
		}
		d.rdReq.Addr = d.src
		d.rdReq.N = n
		if d.port.Submit(d.rdReq) {
			d.inFlight = true
		}
	case 2:
		d.wrReq.Addr = d.dst
		d.wrReq.Data = d.buf
		if d.port.Submit(d.wrReq) {
			d.inFlight = true
		}
	}
}

// C2C is the chip-to-chip controller: it extends the OCN to a four-port
// mesh router gluelessly connecting other TRIPS chips at up to half the
// core clock (paper Section 5.1). Multi-chip simulation is out of scope;
// the controller is modeled as a counted endpoint.
type C2C struct {
	MessagesOut uint64
}
