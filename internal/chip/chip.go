// Package chip assembles the full TRIPS prototype of paper Figure 2: two
// 16-wide processor cores, the 1MB NUCA secondary memory system on the
// on-chip network, two DMA controllers, the chip-to-chip controller and the
// external bus controller. The OCN carries all inter-processor, L2, DRAM,
// I/O and DMA traffic (Section 3.6); the two processors communicate through
// the secondary memory system.
package chip

import (
	"fmt"

	"trips/internal/mem"
	"trips/internal/nuca"
	"trips/internal/proc"
)

// Config parameterizes a chip instance.
type Config struct {
	// Programs for the two cores; nil leaves a core powered down.
	Programs [2]*proc.Program
	// Backing is the SDRAM image (programs are loaded into it by the EBC
	// before boot).
	Backing *mem.Memory
	// Partition splits the NUCA array into two private 512KB L2s.
	Partition bool
	// Scratchpad configures the MTs as on-chip memory.
	Scratchpad bool
	MaxCycles  int64
}

// Chip is one TRIPS prototype chip.
type Chip struct {
	Cores [2]*proc.Core
	Mem   *nuca.System
	DMA   [2]*DMA
	C2C   *C2C
	cfg   Config
	cycle int64
}

// New builds and boots a chip: the external bus controller's PowerPC host
// loads the program images into SDRAM (paper Section 5.1: "we chose to
// off-load much of the operating system and runtime control to this
// PowerPC"), then the cores come up at their entry addresses.
func New(cfg Config) (*Chip, error) {
	if cfg.Backing == nil {
		cfg.Backing = mem.New()
	}
	c := &Chip{cfg: cfg}
	c.Mem = nuca.New(nuca.Config{
		Backing:    cfg.Backing,
		Partition:  cfg.Partition,
		Scratchpad: cfg.Scratchpad,
	})
	for i, prog := range cfg.Programs {
		if prog == nil {
			continue
		}
		if err := prog.Image(cfg.Backing); err != nil {
			return nil, err
		}
		backend := &coreBackend{sys: c.Mem, prefix: ""}
		if i == 1 {
			backend.prefix = "p1:"
		}
		core, err := proc.NewCore(proc.Config{
			Program:         prog,
			Mem:             backend,
			ExternalMemTick: true,
			MaxCycles:       cfg.MaxCycles,
		})
		if err != nil {
			return nil, err
		}
		c.Cores[i] = core
	}
	c.DMA[0] = &DMA{chip: c, id: 0}
	c.DMA[1] = &DMA{chip: c, id: 1}
	c.C2C = &C2C{}
	return c, nil
}

// coreBackend namespaces one core's ports on the shared OCN and defers
// ticking to the chip loop.
type coreBackend struct {
	sys    *nuca.System
	prefix string
}

func (b *coreBackend) Port(name string) proc.MemPort { return b.sys.Port(b.prefix + name) }
func (b *coreBackend) Tick()                         {} // the chip ticks the OCN once per cycle

// Step advances the whole chip one cycle.
func (c *Chip) Step() {
	for _, core := range c.Cores {
		if core != nil && !core.Done() {
			core.Step()
		}
	}
	for _, d := range c.DMA {
		d.tick()
	}
	c.Mem.Tick()
	c.cycle++
}

// Done reports whether every active core has retired and the DMAs are idle.
func (c *Chip) Done() bool {
	for _, core := range c.Cores {
		if core != nil && !core.Done() {
			return false
		}
	}
	for _, d := range c.DMA {
		if d.Busy() {
			return false
		}
	}
	return true
}

// Run executes until completion.
func (c *Chip) Run() error {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	for !c.Done() {
		if c.cycle >= limit {
			return fmt.Errorf("chip: cycle limit %d exceeded", limit)
		}
		c.Step()
	}
	return nil
}

// Cycle returns the chip cycle count.
func (c *Chip) Cycle() int64 { return c.cycle }

// DMA is one of the two direct memory access controllers: programmable to
// transfer data between any two regions of the physical address space
// (paper Section 5.1), implemented as an OCN client moving one cache line
// per transaction.
type DMA struct {
	chip *Chip
	id   int
	port proc.MemPort

	src, dst uint64
	left     int
	inFlight bool
	buf      []byte
	phase    int // 0 idle, 1 reading, 2 writing
	Moved    uint64

	// rdReq/wrReq are persistent request records: the Done closures are
	// bound once, so a long transfer issues thousands of transactions
	// without allocating per line.
	rdReq, wrReq *proc.MemRequest
}

// Program arms the DMA to copy n bytes (line-aligned) from src to dst.
func (d *DMA) Program(src, dst uint64, n int) {
	if d.port == nil {
		d.port = d.chip.Mem.Port(fmt.Sprintf("dma%d", d.id))
	}
	if d.rdReq == nil {
		d.rdReq = &proc.MemRequest{Done: func(data []byte) {
			d.buf = data
			d.inFlight = false
			d.phase = 2
		}}
		d.wrReq = &proc.MemRequest{IsWrite: true, Done: func([]byte) {
			d.inFlight = false
			d.phase = 1
			d.Moved += uint64(len(d.buf))
			d.src += uint64(len(d.buf))
			d.dst += uint64(len(d.buf))
			d.left -= len(d.buf)
			if d.left <= 0 {
				d.phase = 0
			}
		}}
	}
	d.src, d.dst, d.left = src, dst, n
	d.phase = 0
}

// Busy reports whether a transfer is in progress.
func (d *DMA) Busy() bool { return d.left > 0 || d.inFlight }

func (d *DMA) tick() {
	if d.inFlight || (d.left <= 0 && d.phase == 0) {
		return
	}
	switch d.phase {
	case 0, 1:
		if d.left <= 0 {
			return
		}
		n := nuca.LineBytes
		if d.left < n {
			n = d.left
		}
		d.rdReq.Addr = d.src
		d.rdReq.N = n
		if d.port.Submit(d.rdReq) {
			d.inFlight = true
		}
	case 2:
		d.wrReq.Addr = d.dst
		d.wrReq.Data = d.buf
		if d.port.Submit(d.wrReq) {
			d.inFlight = true
		}
	}
}

// C2C is the chip-to-chip controller: it extends the OCN to a four-port
// mesh router gluelessly connecting other TRIPS chips at up to half the
// core clock (paper Section 5.1). Multi-chip simulation is out of scope;
// the controller is modeled as a counted endpoint.
type C2C struct {
	MessagesOut uint64
}
