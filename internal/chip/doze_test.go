package chip

import (
	"runtime"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

// tileActivity bundles the chip's aggregated tile stepping telemetry for
// equality comparison across host configurations.
type tileActivity struct {
	ticks, skips uint64
	stepped      int64
}

func activity(c *Chip) tileActivity {
	ticks, skips, stepped := c.TileActivity()
	return tileActivity{ticks, skips, stepped}
}

// TestChipTileSkipGOMAXPROCSParity proves the doze overlay's decisions are
// host-independent: the per-tile tick/skip counters (incremented only inside
// Core.Step, never during warps or rollback replay) must be identical across
// GOMAXPROCS 1, 2 and 4, alongside the simulated outcome. It also pins that
// the overlay actually engages on a real workload — an accounting identity
// (ticks+skips == 30*stepped) with zero skips would mean the tentpole is
// silently dead.
func TestChipTileSkipGOMAXPROCSParity(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	type full struct {
		out chipOutcome
		act tileActivity
	}
	run := func() full {
		c := chipScenario(t, "vadd", func(cfg *Config) {})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return full{
			out: chipOutcome{
				cycles: c.Cycle(),
				r0:     c.Cores[0].Result(),
				r1:     c.Cores[1].Result(),
				moved:  c.DMA[0].Moved + c.DMA[1].Moved,
			},
			act: activity(c),
		}
	}
	ref := run()
	if ref.act.skips == 0 {
		t.Error("vadd chip run skipped no tile ticks — the doze overlay never engaged")
	}
	if got, want := ref.act.ticks+ref.act.skips, uint64(proc.NumTiles)*uint64(ref.act.stepped); got != want {
		t.Errorf("tile accounting broken: ticks+skips = %d, want %d (%d tiles x %d stepped cycles)",
			got, want, proc.NumTiles, ref.act.stepped)
	}
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		if got := run(); got != ref {
			t.Errorf("GOMAXPROCS=%d diverged:\n  got:  %+v\n  want: %+v", procs, got, ref)
		}
	}
}

// TestChipLimitBoundaryDozeParity sweeps MaxCycles across the exact
// completion boundary and requires a dozing and a non-dozing run to agree on
// the outcome and the final cycle at every limit — the doze analogue of
// TestChipLimitBoundaryWarpParity. A dozing tile skipped at the limit cycle
// must not change where the limit error fires or whether the final step
// completes the program.
func TestChipLimitBoundaryDozeParity(t *testing.T) {
	scenarios := []struct {
		name string
		make func(noDoze bool, limit int64) *Chip
	}{
		{"dma", func(noDoze bool, limit int64) *Chip {
			backing := mem.New()
			for i := 0; i < 256/8; i++ {
				backing.Write(0x700000+uint64(i)*8, 8, uint64(i+1))
			}
			p0 := countProgram(t, 0x100000, 3)
			p1 := countProgram(t, 0x200000, 2)
			c, err := New(Config{
				Programs:      [2]*proc.Program{p0, p1},
				Backing:       backing,
				MaxCycles:     limit,
				NoEventDriven: noDoze,
				NoParallel:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			c.DMA[0].Program(0x700000, 0x740000, 256)
			return c
		}},
		{"cores", func(noDoze bool, limit int64) *Chip {
			p0 := countProgram(t, 0x100000, 40)
			p1 := countProgram(t, 0x200000, 15)
			c, err := New(Config{Programs: [2]*proc.Program{p0, p1}, MaxCycles: limit, NoEventDriven: noDoze, NoParallel: true})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			c := sc.make(true, 5_000_000)
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			n := c.Cycle() // the final step ran at cycle n-1
			for lim := n - 3; lim <= n+1; lim++ {
				cd := sc.make(false, lim)
				errD := cd.Run()
				cn := sc.make(true, lim)
				errN := cn.Run()
				if (errD == nil) != (errN == nil) || cd.Cycle() != cn.Cycle() {
					t.Errorf("limit=%d: doze cyc=%d err=%v | nodoze cyc=%d err=%v",
						lim, cd.Cycle(), errD, cn.Cycle(), errN)
					continue
				}
				if wantOK := lim >= n-1; (errN == nil) != wantOK {
					t.Errorf("limit=%d (completion step at %d): err=%v, want success=%v",
						lim, n-1, errN, wantOK)
				}
			}
		})
	}
}
