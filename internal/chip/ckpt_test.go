package chip

import (
	"bytes"
	"errors"
	"testing"

	"trips/internal/ckpt"
	"trips/internal/mem"
	"trips/internal/proc"
)

// ckptChipConfig builds the round-trip scenario: two cores of different
// lengths (one retires mid-run), a DMA stream in flight through the OCN,
// and a seeded backing memory, under the requested stepper.
func ckptChipConfig(t *testing.T, stepping Stepping, noWarp bool) Config {
	t.Helper()
	backing := mem.New()
	for i := 0; i < 64; i++ {
		backing.Write(0x700000+uint64(i)*8, 8, uint64(i)*3+1)
	}
	return Config{
		Programs:  [2]*proc.Program{countProgram(t, 0x100000, 60), countProgram(t, 0x200000, 25)},
		Backing:   backing,
		MaxCycles: 5_000_000,
		Stepping:  stepping,
		NoWarp:    noWarp,
	}
}

type ckptOutcome struct {
	cycles int64
	r0, r1 proc.Result
	moved  uint64
	words  [64]uint64
}

func ckptFinishChip(t *testing.T, c *Chip) ckptOutcome {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	c.Mem.Flush()
	out := ckptOutcome{cycles: c.Cycle(), r0: c.Cores[0].Result(), r1: c.Cores[1].Result(), moved: c.DMA[0].Moved}
	for i := range out.words {
		out.words[i] = c.cfg.Backing.Read(0x740000+uint64(i)*8, 8, false)
	}
	return out
}

func ckptCompareOutcomes(t *testing.T, label string, got, want ckptOutcome) {
	t.Helper()
	if got.cycles != want.cycles {
		t.Errorf("%s: cycles %d, want %d", label, got.cycles, want.cycles)
	}
	if got.r0 != want.r0 {
		t.Errorf("%s: core 0 diverged:\n  got:  %+v\n  want: %+v", label, got.r0, want.r0)
	}
	if got.r1 != want.r1 {
		t.Errorf("%s: core 1 diverged:\n  got:  %+v\n  want: %+v", label, got.r1, want.r1)
	}
	if got.moved != want.moved {
		t.Errorf("%s: dma moved %d, want %d", label, got.moved, want.moved)
	}
	if got.words != want.words {
		t.Errorf("%s: dma destination words diverged", label)
	}
}

// TestChipCheckpointRoundTrip checkpoints a dual-core chip mid-run — DMA
// stream in flight, both cores live — and requires the restored chip to
// finish bit-identically to the uninterrupted reference, under both
// steppers and with cross-stepper restores (a checkpoint taken under one
// stepper restored under the other).
func TestChipCheckpointRoundTrip(t *testing.T) {
	steppers := []struct {
		name string
		s    Stepping
	}{{"seq", StepSeq}, {"lag", StepLag}}
	for _, save := range steppers {
		// Uninterrupted reference.
		ref, err := New(ckptChipConfig(t, save.s, false))
		if err != nil {
			t.Fatal(err)
		}
		ref.DMA[0].Program(0x700000, 0x740000, 512)
		want := ckptFinishChip(t, ref)

		// Checkpointed run: capture at the first commit after cycle 300
		// (the DMA stream is still moving), then continue to completion.
		c, err := New(ckptChipConfig(t, save.s, false))
		if err != nil {
			t.Fatal(err)
		}
		c.DMA[0].Program(0x700000, 0x740000, 512)
		var buf bytes.Buffer
		var capturedAt int64
		c.SetCheckpointHook(300, func(cycle int64) error {
			capturedAt = cycle
			return c.Checkpoint(&buf)
		})
		got := ckptFinishChip(t, c)
		ckptCompareOutcomes(t, save.name+" checkpointed run", got, want)
		if capturedAt <= 300 {
			t.Fatalf("%s: checkpoint hook fired at cycle %d", save.name, capturedAt)
		}
		if c.DMA[0].Moved >= 512 && capturedAt < want.cycles/4 {
			t.Logf("%s: note: DMA already done at capture cycle %d", save.name, capturedAt)
		}

		for _, restore := range steppers {
			rc, err := RestoreChip(bytes.NewReader(buf.Bytes()), ckptChipConfig(t, restore.s, false))
			if err != nil {
				t.Fatalf("restore %s->%s: %v", save.name, restore.name, err)
			}
			if rc.Cycle() != capturedAt {
				t.Fatalf("restore %s->%s: resumed at cycle %d, want %d", save.name, restore.name, rc.Cycle(), capturedAt)
			}
			got := ckptFinishChip(t, rc)
			ckptCompareOutcomes(t, save.name+"->"+restore.name+" restored run", got, want)
		}

		// No-warp restore must also agree (warp telemetry differs by
		// design; every simulated observable must not).
		rc, err := RestoreChip(bytes.NewReader(buf.Bytes()), ckptChipConfig(t, save.s, true))
		if err != nil {
			t.Fatal(err)
		}
		got = ckptFinishChip(t, rc)
		ckptCompareOutcomes(t, save.name+" nowarp restored run", got, want)
	}
}

// TestChipRestoreRejectsMismatch: a checkpoint restored onto a chip with a
// different program or configuration must fail with ErrContentHash before
// any state is touched.
func TestChipRestoreRejectsMismatch(t *testing.T) {
	c, err := New(ckptChipConfig(t, StepSeq, false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.SetCheckpointHook(100, func(int64) error { return c.Checkpoint(&buf) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	other := ckptChipConfig(t, StepSeq, false)
	other.Programs[1] = countProgram(t, 0x200000, 26) // one extra block
	if _, err := RestoreChip(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, ckpt.ErrContentHash) {
		t.Fatalf("restore onto a different program: err = %v, want ErrContentHash", err)
	}

	// Truncation anywhere in the frame must be a clean error, not a panic.
	raw := buf.Bytes()
	for _, cut := range []int{0, 4, len(raw) / 2, len(raw) - 1} {
		if _, err := RestoreChip(bytes.NewReader(raw[:cut]), ckptChipConfig(t, StepSeq, false)); err == nil {
			t.Fatalf("restore of %d/%d bytes succeeded", cut, len(raw))
		}
	}

	// Flipping a payload byte must be caught by the frame checksum.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := RestoreChip(bytes.NewReader(corrupt), ckptChipConfig(t, StepSeq, false)); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("restore of corrupted frame: err = %v, want ErrCorrupt", err)
	}
}
