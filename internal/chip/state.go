package chip

import (
	"fmt"
	"io"
	"strings"

	"trips/internal/ckpt"
	"trips/internal/proc"
)

// contentHash binds a checkpoint to the program images and the
// behavior-relevant configuration. Stepping mode, warp gating and host
// parallelism are deliberately excluded: all steppers are bit-identical, so
// a checkpoint taken under one may be restored under another.
func (c *Chip) contentHash() ckpt.Hash {
	var parts [][]byte
	for _, p := range c.cfg.Programs {
		if p == nil {
			parts = append(parts, nil)
			continue
		}
		parts = append(parts, p.CanonicalBytes())
	}
	cfgStr := fmt.Sprintf("chip:partition=%v scratchpad=%v maxcycles=%d",
		c.cfg.Partition, c.cfg.Scratchpad, c.cfg.MaxCycles)
	parts = append(parts, []byte(cfgStr))
	return ckpt.HashContent(parts...)
}

// SaveState serializes the whole chip's mutable state at a cycle boundary:
// both cores, the secondary memory system (with the backing SDRAM), the DMA
// controllers, and the C2C counter.
func (c *Chip) SaveState(w *ckpt.Writer) error {
	w.Section("chip")
	w.I64(c.cycle)
	w.U64(c.Warps)
	w.I64(c.WarpedCycles)
	for _, core := range c.Cores {
		w.Bool(core != nil)
		if core != nil {
			if err := core.SaveState(w); err != nil {
				return err
			}
		}
	}
	c.Mem.SaveState(w)
	for _, d := range c.DMA {
		w.Bool(d.port != nil)
		w.U64(d.src)
		w.U64(d.dst)
		w.Int(d.left)
		w.Bool(d.inFlight)
		w.Bool(d.buf != nil)
		if d.buf != nil {
			w.Bytes(d.buf)
		}
		w.Int(d.phase)
		w.U64(d.Moved)
		w.U64(d.Completions)
	}
	w.U64(c.C2C.MessagesOut)
	return nil
}

// resolverFor routes a decoded in-flight request to the component that can
// rebuild its Done callback. The port name is the only record of the
// request's owner: both cores share tile indices, so Origin alone cannot
// distinguish them.
func (c *Chip) resolverFor(name string) proc.OriginResolver {
	if strings.HasPrefix(name, "dma") {
		return proc.ResolverFunc(func(req *proc.MemRequest) {
			t := req.Origin.Tile
			if t < 0 || t >= len(c.DMA) {
				return
			}
			d := c.DMA[t]
			switch req.Origin.Kind {
			case proc.OriginDMARead:
				req.Done = d.onReadDone
			case proc.OriginDMAWrite:
				req.Done = func([]byte) { d.onWriteDone() }
			}
		})
	}
	if strings.HasPrefix(name, "p1:") {
		return c.Cores[1]
	}
	return c.Cores[0]
}

// LoadState restores a checkpoint into a chip built with an identical
// Config. Cores restore before the memory system: origin resolution for
// in-flight transactions reads restored tile state.
func (c *Chip) LoadState(r *ckpt.Reader) error {
	r.Section("chip")
	c.cycle = r.I64()
	c.Warps = r.U64()
	c.WarpedCycles = r.I64()
	for i, core := range c.Cores {
		has := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if has != (core != nil) {
			r.Failf("chip: core %d present in checkpoint but not in config (or vice versa)", i)
			return r.Err()
		}
		if core != nil {
			if err := core.LoadState(r); err != nil {
				return err
			}
		}
	}
	c.Mem.LoadState(r, c.resolverFor)
	for _, d := range c.DMA {
		if r.Bool() {
			d.bind()
		}
		d.src = r.U64()
		d.dst = r.U64()
		d.left = r.Int()
		d.inFlight = r.Bool()
		d.buf = nil
		if r.Bool() {
			d.buf = r.Bytes()
		}
		d.phase = r.Int()
		d.Moved = r.U64()
		d.Completions = r.U64()
	}
	c.C2C.MessagesOut = r.U64()
	return r.Err()
}

// Checkpoint writes a complete framed checkpoint of the chip to w,
// content-hashed to the chip's programs and configuration.
func (c *Chip) Checkpoint(w io.Writer) error {
	pw := &ckpt.Writer{}
	if err := c.SaveState(pw); err != nil {
		return err
	}
	return ckpt.WriteFile(w, c.contentHash(), pw.Payload())
}

// RestoreChip builds a chip from cfg and restores a checkpoint into it. The
// checkpoint must have been taken with the same programs and configuration;
// a mismatch fails with ckpt.ErrContentHash before any state is touched.
func RestoreChip(r io.Reader, cfg Config) (*Chip, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	payload, err := ckpt.ReadFile(r, c.contentHash())
	if err != nil {
		return nil, err
	}
	pr := ckpt.NewReader(payload)
	if err := c.LoadState(pr); err != nil {
		return nil, err
	}
	if err := pr.Close(); err != nil {
		return nil, err
	}
	return c, nil
}
