package chip

import (
	"runtime"
	"testing"

	"trips/internal/eval"
	"trips/internal/isa"
	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tcc"
	"trips/internal/workloads"
)

// chaseProgram builds a pointer chase as a single self-looping block: load
// the next pointer from uncached memory into r12, loop while it is nonzero.
// Every hop is a full OCN round trip the core must block on before it can
// issue the next, and the one-block footprint means the I-cache is warm
// after the first iteration — so in steady state the core has exactly one
// transaction outstanding at a time and is quiescent while it waits. That
// blocking-wait shape is what makes warp-overshoot (and therefore rollback
// under fault injection) reachable.
func chaseProgram(t *testing.T, base uint64) *proc.Program {
	t.Helper()
	b := &isa.Block{Addr: base, Name: "chase"}
	b.Reads[0] = isa.ReadInst{Valid: true, GR: 12, RT0: isa.ToLeft(0)}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 12}
	b.Insts = []isa.Inst{
		{Op: isa.LD, Imm: 0, LSID: 0, T0: isa.ToLeft(1)},
		{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToLeft(2)},
		{Op: isa.TNEI, Imm: 0, T0: isa.ToLeft(3)},
		{Op: isa.MOV, T0: isa.ToPred(4), T1: isa.ToPred(5)},
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 0, Offset: 0},
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 1, Offset: int32(-(int64(base) / isa.ChunkBytes))},
	}
	p, err := proc.NewProgram(base, []*isa.Block{b})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chaseChain seeds backing memory with a linked chain of uncached pointers
// ending in a 0 terminator and returns the head pointer to preload into r12.
func chaseChain(backing *mem.Memory, head uint64, hops int) uint64 {
	ptr := func(i int) uint64 { return proc.Uncached(head + uint64(i)*0x40) }
	for i := 0; i < hops-1; i++ {
		backing.Write(head+uint64(i)*0x40, 8, ptr(i+1))
	}
	backing.Write(head+uint64(hops-1)*0x40, 8, 0)
	return ptr(0)
}

// chipScenario builds a chip for one of the parity workloads. The three
// cover distinct traffic shapes: pure core compute (count), DMA-dominated
// OCN streaming (dma), and a real benchmark on both cores with L1 misses,
// dirty evictions and writebacks through the partitioned NUCA (vadd) — the
// eviction path is the one where a response's Done callback submits new
// OCN work from inside the serial tick, historically the subtlest drain
// schedule to replay.
func chipScenario(t *testing.T, name string, mut func(*Config)) *Chip {
	t.Helper()
	switch name {
	case "count":
		p0 := countProgram(t, 0x100000, 40)
		p1 := countProgram(t, 0x200000, 15)
		cfg := Config{Programs: [2]*proc.Program{p0, p1}, MaxCycles: 5_000_000}
		mut(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	case "dma":
		const bytes = 4 << 10
		backing := mem.New()
		for i := 0; i < bytes/8; i++ {
			backing.Write(0x700000+uint64(i)*8, 8, uint64(i+1))
		}
		p0 := countProgram(t, 0x100000, 3)
		p1 := countProgram(t, 0x200000, 2)
		cfg := Config{Programs: [2]*proc.Program{p0, p1}, Backing: backing, MaxCycles: 10_000_000}
		mut(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.DMA[0].Program(0x700000, 0x740000, bytes)
		return c
	case "chase":
		const hops = 24
		backing := mem.New()
		head0 := chaseChain(backing, 0x600000, hops)
		head1 := chaseChain(backing, 0x680000, hops)
		p0 := chaseProgram(t, 0x100000)
		p1 := chaseProgram(t, 0x200000)
		cfg := Config{Programs: [2]*proc.Program{p0, p1}, Backing: backing, MaxCycles: 10_000_000}
		mut(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Cores[0].SetRegister(0, 12, head0)
		c.Cores[1].SetRegister(0, 12, head1)
		return c
	case "vadd":
		w, err := workloads.ByName("vadd")
		if err != nil {
			t.Fatal(err)
		}
		spec0, spec1 := w.Build(true), w.Build(true)
		prog0, meta0, err := tcc.Compile(spec0.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x10000})
		if err != nil {
			t.Fatal(err)
		}
		prog1, meta1, err := tcc.Compile(spec1.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x40000})
		if err != nil {
			t.Fatal(err)
		}
		backing := mem.New()
		spec0.SetupMem(backing)
		cfg := Config{
			Programs:  [2]*proc.Program{prog0, prog1},
			Backing:   backing,
			Partition: true,
			MaxCycles: 50_000_000,
		}
		mut(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v, val := range spec0.Init {
			if gr, ok := meta0.RegOf[v]; ok {
				c.Cores[0].SetRegister(0, gr, val)
			}
		}
		for v, val := range spec1.Init {
			if gr, ok := meta1.RegOf[v]; ok {
				c.Cores[1].SetRegister(0, gr, val)
			}
		}
		return c
	}
	t.Fatalf("unknown scenario %q", name)
	return nil
}

type chipOutcome struct {
	cycles int64
	r0, r1 proc.Result
	moved  uint64
}

func runScenario(t *testing.T, scenario string, mut func(*Config)) chipOutcome {
	t.Helper()
	c := chipScenario(t, scenario, mut)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return chipOutcome{
		cycles: c.Cycle(),
		r0:     c.Cores[0].Result(),
		r1:     c.Cores[1].Result(),
		moved:  c.DMA[0].Moved + c.DMA[1].Moved,
	}
}

// TestChipSteppingThreeWayBitIdentical is the tentpole's ground-truth sweep:
// the globally synchronous stepper, the bounded-lag coordinator without
// warps, and the bounded-lag coordinator with per-core warping must produce
// identical simulated outcomes on every traffic shape — chip cycles, full
// core snapshots, and DMA byte counts. The nodoze legs repeat the sweep's
// endpoints with the per-tile event-driven doze overlay disabled, making the
// fine-grained tile clocks a fourth compared discipline.
func TestChipSteppingThreeWayBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for _, scenario := range []string{"count", "dma", "chase", "vadd"} {
		t.Run(scenario, func(t *testing.T) {
			ref := runScenario(t, scenario, func(cfg *Config) {
				cfg.Stepping = StepSeq
				cfg.NoWarp = true
				cfg.NoParallel = true
			})
			for _, m := range []struct {
				name string
				mut  func(*Config)
			}{
				{"seq+warp", func(cfg *Config) { cfg.Stepping = StepSeq }},
				{"seq+nodoze", func(cfg *Config) {
					cfg.Stepping = StepSeq
					cfg.NoWarp = true
					cfg.NoParallel = true
					cfg.NoEventDriven = true
				}},
				{"lag+nowarp", func(cfg *Config) { cfg.NoWarp = true }},
				{"lag+warp", func(cfg *Config) {}},
				{"lag+warp+serial", func(cfg *Config) { cfg.NoParallel = true }},
				{"lag+warp+nodoze", func(cfg *Config) { cfg.NoEventDriven = true }},
			} {
				got := runScenario(t, scenario, m.mut)
				if got != ref {
					t.Errorf("%s diverged:\n  got:  %+v\n  want: %+v", m.name, got, ref)
				}
			}
		})
	}
}

// TestChipLagGOMAXPROCSParity proves host worker count never changes
// simulated results: the same bounded-lag chip run at GOMAXPROCS 1 (which
// collapses to serial striding), 2, and 4 must be bit-identical.
func TestChipLagGOMAXPROCSParity(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	ref := runScenario(t, "vadd", func(cfg *Config) {})
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		if got := runScenario(t, "vadd", func(cfg *Config) {}); got != ref {
			t.Errorf("GOMAXPROCS=%d diverged:\n  got:  %+v\n  want: %+v", procs, got, ref)
		}
	}
}

// TestChipLagRollbackInjectionBitIdentical disables the provable horizon via
// the fault-injection override, letting quiescent cores warp past their
// visibility bound so early-arriving responses trigger real rollbacks — and
// requires the rolled-back runs to remain bit-identical to the sequential
// stepper. The chase workload is the one shape where this is reachable:
// cores block on every hop, so the overshoot past a response's effect cycle
// is pure warp, which the coordinator can cheaply rewind. With the derived
// horizon rollbacks are structurally impossible, which the zero-rollback
// assertion on the normal run cross-checks.
func TestChipLagRollbackInjectionBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	ref := runScenario(t, "chase", func(cfg *Config) {
		cfg.Stepping = StepSeq
		cfg.NoWarp = true
		cfg.NoParallel = true
	})
	normal := chipScenario(t, "chase", func(cfg *Config) {})
	if err := normal.Run(); err != nil {
		t.Fatal(err)
	}
	if n := normal.Lag.TotalRollbacks(); n != 0 {
		t.Fatalf("derived horizon produced %d rollbacks — the bound no longer proves safety", n)
	}
	faulted := chipScenario(t, "chase", func(cfg *Config) {
		cfg.LagHorizonOverride = 64
	})
	if err := faulted.Run(); err != nil {
		t.Fatal(err)
	}
	got := chipOutcome{
		cycles: faulted.Cycle(),
		r0:     faulted.Cores[0].Result(),
		r1:     faulted.Cores[1].Result(),
		moved:  faulted.DMA[0].Moved + faulted.DMA[1].Moved,
	}
	if got != ref {
		t.Errorf("faulted run diverged:\n  got:  %+v\n  want: %+v", got, ref)
	}
	if faulted.Lag.TotalRollbacks() == 0 {
		t.Errorf("horizon override 64 never triggered a rollback — fault injection is dead")
	}
}

// TestChipLagDeadlinePadRollbackBitIdentical fault-injects the response
// deadlines themselves: LagDeadlinePad stretches every computed deadline
// past the provable bound, so a core blocked on a pointer-chase load warps
// beyond the true effect cycle and the effect gate must roll it back. The
// run must stay bit-identical to the sequential stepper — rollback recovery,
// not just rollback detection — and the unpadded run must keep rollbacks at
// zero, pinning that the deadlines themselves never overshoot.
func TestChipLagDeadlinePadRollbackBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	ref := runScenario(t, "chase", func(cfg *Config) {
		cfg.Stepping = StepSeq
		cfg.NoWarp = true
		cfg.NoParallel = true
	})
	faulted := chipScenario(t, "chase", func(cfg *Config) {
		cfg.LagDeadlinePad = 64
	})
	if err := faulted.Run(); err != nil {
		t.Fatal(err)
	}
	got := chipOutcome{
		cycles: faulted.Cycle(),
		r0:     faulted.Cores[0].Result(),
		r1:     faulted.Cores[1].Result(),
		moved:  faulted.DMA[0].Moved + faulted.DMA[1].Moved,
	}
	if got != ref {
		t.Errorf("deadline-padded run diverged:\n  got:  %+v\n  want: %+v", got, ref)
	}
	if faulted.Lag.TotalRollbacks() == 0 {
		t.Errorf("deadline pad 64 never triggered a rollback — fault injection is dead")
	}
}

// TestChipLagDeadlineCountersPopulated runs the memory-bound chase normally
// and requires the deadline-stride telemetry to be live: a core blocking on
// OCN round trips must end strides at computed response deadlines (not
// one-cycle lockstep) and must do so without a single rollback.
func TestChipLagDeadlineCountersPopulated(t *testing.T) {
	c := chipScenario(t, "chase", func(cfg *Config) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var deadline uint64
	for i := range c.Lag.Core {
		deadline += c.Lag.Core[i].DeadlineLimited
	}
	if deadline == 0 {
		t.Errorf("chase run ended no strides at a response deadline — the computed-horizon leg is dead")
	}
	if c.Lag.TotalStrides() == 0 {
		t.Errorf("chase run recorded no strides")
	}
	if n := c.Lag.TotalRollbacks(); n != 0 {
		t.Errorf("derived deadlines produced %d rollbacks — a bound overshoots", n)
	}
}

// TestChipRollbackHookObserves pins the OnRollback observability hook the
// flight recorder hangs on: under horizon-override fault injection every
// effect-gate rewind must invoke the hook with a sane (from > effect) pair,
// and the hook count must match the coordinator's rollback telemetry.
func TestChipRollbackHookObserves(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	c := chipScenario(t, "chase", func(cfg *Config) {
		cfg.LagHorizonOverride = 64
	})
	var fired uint64
	c.SetRollbackHook(func(owner int, from, effect int64) {
		fired++
		if from <= effect {
			t.Errorf("rollback hook: from %d <= effect %d", from, effect)
		}
		if owner != 0 && owner != 1 {
			t.Errorf("rollback hook: bogus owner %d", owner)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n := c.Lag.TotalRollbacks(); n == 0 {
		t.Fatalf("horizon override produced no rollbacks — cannot exercise the hook")
	} else if fired != n {
		t.Errorf("rollback hook fired %d times, coordinator counted %d", fired, n)
	}
}

// TestChipLagLimitBoundaryParity sweeps MaxCycles across the completion
// boundary and requires the sequential and bounded-lag steppers to agree on
// outcome (success vs limit error) and final cycle at every limit.
func TestChipLagLimitBoundaryParity(t *testing.T) {
	base := chipScenario(t, "count", func(cfg *Config) {
		cfg.Stepping = StepSeq
		cfg.NoWarp = true
		cfg.NoParallel = true
	})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	n := base.Cycle()
	for lim := n - 3; lim <= n+1; lim++ {
		lim := lim
		cs := chipScenario(t, "count", func(cfg *Config) {
			cfg.Stepping = StepSeq
			cfg.MaxCycles = lim
		})
		errS := cs.Run()
		cl := chipScenario(t, "count", func(cfg *Config) {
			cfg.MaxCycles = lim
		})
		errL := cl.Run()
		if (errS == nil) != (errL == nil) || cs.Cycle() != cl.Cycle() {
			t.Errorf("limit=%d: seq cyc=%d err=%v | lag cyc=%d err=%v",
				lim, cs.Cycle(), errS, cl.Cycle(), errL)
			continue
		}
		if errS != nil && errL != nil && errS.Error() != errL.Error() {
			t.Errorf("limit=%d: error wording differs: %q vs %q", lim, errS, errL)
		}
	}
}

// TestChipLagVaddMatchesGolden anchors the bounded-lag chip against the
// golden interpreter directly: bit-identity between steppers proves nothing
// if both drift from correct outputs together.
func TestChipLagVaddMatchesGolden(t *testing.T) {
	w, err := workloads.ByName("vadd")
	if err != nil {
		t.Fatal(err)
	}
	gold, _, _, err := eval.RunGolden(w.Build(true))
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Build(true)
	_, meta, err := tcc.Compile(spec.F, tcc.Options{Mode: tcc.Hand, BaseAddr: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	c := chipScenario(t, "vadd", func(cfg *Config) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, out := range spec.Outputs {
		gr, ok := meta.RegOf[out]
		if !ok {
			t.Fatalf("output r%d untracked", out)
		}
		if got := c.Cores[0].Register(0, gr); got != gold[out] {
			t.Errorf("bounded-lag core 0: r%d = %d, golden %d", out, got, gold[out])
		}
	}
}
