package lsq

// DepPredictor is the memory-side dependence predictor co-located with each
// data cache bank (paper Section 3.5): a 1024-entry bit vector. When an
// aggressively issued load causes a dependence misprediction (and pipeline
// flush), the bit its address hashes to is set; any later load hashing to a
// set bit stalls until all prior stores have completed. Because individual
// bits cannot be cleared, the whole vector is flash-cleared every 10,000
// blocks of execution.
type DepPredictor struct {
	bits   [1024]bool
	blocks int

	// ClearInterval is the flash-clear period in committed blocks.
	ClearInterval int

	// Stats.
	Stalls, Trainings, Clears uint64
}

// NewDepPredictor returns a predictor with the paper's 10,000-block clear
// interval.
func NewDepPredictor() *DepPredictor {
	return &DepPredictor{ClearInterval: 10000}
}

func (d *DepPredictor) index(addr uint64) int {
	// Fold the address down to 10 bits, ignoring byte-in-word bits.
	h := addr >> 3
	h ^= h >> 10
	h ^= h >> 20
	return int(h & 1023)
}

// Aggressive reports whether a load to addr may issue before earlier store
// addresses are known. A false result stalls the load until all prior
// stores have completed across the DTs.
func (d *DepPredictor) Aggressive(addr uint64) bool {
	if d.bits[d.index(addr)] {
		d.Stalls++
		return false
	}
	return true
}

// Mispredicted records a dependence misprediction for the load at addr.
func (d *DepPredictor) Mispredicted(addr uint64) {
	d.bits[d.index(addr)] = true
	d.Trainings++
}

// OnBlockCommit advances the flash-clear counter.
func (d *DepPredictor) OnBlockCommit() {
	d.blocks++
	if d.blocks >= d.ClearInterval {
		d.blocks = 0
		d.bits = [1024]bool{}
		d.Clears++
	}
}
