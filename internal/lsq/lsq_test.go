package lsq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrderKeyOrdering(t *testing.T) {
	// Keys order first by block sequence, then by LSID.
	if OrderKey(1, 31) >= OrderKey(2, 0) {
		t.Error("later block with LSID 0 must follow earlier block with LSID 31")
	}
	if OrderKey(5, 3) >= OrderKey(5, 4) {
		t.Error("LSIDs must order within a block")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	q := New()
	if _, err := q.InsertStore(OrderKey(1, 0), 1, 0x100, 8, 0xdeadbeefcafef00d, false); err != nil {
		t.Fatal(err)
	}
	res, data, err := q.InsertLoad(OrderKey(1, 1), 1, 0x100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res != LoadForwarded || data != 0xdeadbeefcafef00d {
		t.Fatalf("load = (%v, %#x), want forwarded full value", res, data)
	}
	// Narrow load inside the store's range extracts the right bytes.
	res, data, _ = q.InsertLoad(OrderKey(1, 2), 1, 0x104, 4)
	if res != LoadForwarded || data != 0xdeadbeef {
		t.Fatalf("narrow load = (%v, %#x), want forwarded 0xdeadbeef", res, data)
	}
}

func TestForwardFromYoungestEarlierStore(t *testing.T) {
	q := New()
	q.InsertStore(OrderKey(1, 0), 1, 0x100, 8, 1, false)
	q.InsertStore(OrderKey(1, 2), 1, 0x100, 8, 2, false)
	res, data, _ := q.InsertLoad(OrderKey(1, 3), 1, 0x100, 8)
	if res != LoadForwarded || data != 2 {
		t.Fatalf("load = (%v, %d), want value from youngest earlier store", res, data)
	}
	// A load ordered between the stores sees only the first.
	res, data, _ = q.InsertLoad(OrderKey(1, 1), 1, 0x100, 8)
	if res != LoadForwarded || data != 1 {
		t.Fatalf("middle load = (%v, %d), want 1", res, data)
	}
}

func TestNullifiedStoreNeverForwards(t *testing.T) {
	q := New()
	q.InsertStore(OrderKey(1, 0), 1, 0x100, 8, 99, true)
	res, _, _ := q.InsertLoad(OrderKey(1, 1), 1, 0x100, 8)
	if res != LoadFromCache {
		t.Fatalf("load after nullified store = %v, want LoadFromCache", res)
	}
}

func TestPartialOverlapConflicts(t *testing.T) {
	q := New()
	q.InsertStore(OrderKey(1, 0), 1, 0x102, 2, 0xffff, false)
	res, _, _ := q.InsertLoad(OrderKey(1, 1), 1, 0x100, 8)
	if res != LoadConflict {
		t.Fatalf("partially-overlapped load = %v, want LoadConflict", res)
	}
	// The conflicted load replays once the store drains at commit.
	if got := q.PendingConflicts(); len(got) != 0 {
		t.Fatalf("conflict should still be blocked; pending = %d", len(got))
	}
	q.CommitBlock(1)
	// Committing removed the load too (same block). Re-create the shape
	// across blocks: store in block 1, load in block 2.
	q.InsertStore(OrderKey(1, 0), 1, 0x102, 2, 0xffff, false)
	res, _, _ = q.InsertLoad(OrderKey(2, 0), 2, 0x100, 8)
	if res != LoadConflict {
		t.Fatalf("cross-block overlapped load = %v, want LoadConflict", res)
	}
	q.CommitBlock(1)
	pend := q.PendingConflicts()
	if len(pend) != 1 || pend[0].Key != OrderKey(2, 0) {
		t.Fatalf("pending after drain = %v", pend)
	}
	q.MarkIssued(pend[0].Key)
	if len(q.PendingConflicts()) != 0 {
		t.Fatal("load still pending after MarkIssued")
	}
}

func TestViolationDetection(t *testing.T) {
	q := New()
	// A later load issues aggressively, then an earlier store to the same
	// address arrives: ordering violation.
	res, _, _ := q.InsertLoad(OrderKey(2, 3), 2, 0x200, 8)
	if res != LoadFromCache {
		t.Fatalf("aggressive load = %v", res)
	}
	violated, err := q.InsertStore(OrderKey(1, 5), 1, 0x200, 8, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(violated) != 1 || violated[0].Key != OrderKey(2, 3) {
		t.Fatalf("violations = %v, want the aggressive load", violated)
	}
	if q.Violations != 1 {
		t.Errorf("violation counter = %d", q.Violations)
	}
}

func TestNoViolationWhenStoreIsYounger(t *testing.T) {
	q := New()
	q.InsertLoad(OrderKey(2, 3), 2, 0x200, 8)
	violated, _ := q.InsertStore(OrderKey(3, 0), 3, 0x200, 8, 7, false)
	if len(violated) != 0 {
		t.Fatalf("younger store reported violations %v", violated)
	}
	// Nullified earlier stores never violate.
	violated, _ = q.InsertStore(OrderKey(1, 0), 1, 0x200, 8, 7, true)
	if len(violated) != 0 {
		t.Fatalf("nullified store reported violations %v", violated)
	}
}

func TestCommitDrainsStoresInOrder(t *testing.T) {
	q := New()
	q.InsertStore(OrderKey(1, 7), 1, 0x300, 8, 3, false)
	q.InsertStore(OrderKey(1, 2), 1, 0x308, 8, 1, false)
	q.InsertStore(OrderKey(1, 4), 1, 0x310, 8, 2, true) // nullified
	q.InsertLoad(OrderKey(1, 9), 1, 0x400, 8)
	stores := q.CommitBlock(1)
	if len(stores) != 2 {
		t.Fatalf("drained %d stores, want 2 (nullified excluded)", len(stores))
	}
	if stores[0].Key != OrderKey(1, 2) || stores[1].Key != OrderKey(1, 7) {
		t.Fatalf("stores out of LSID order: %v, %v", stores[0].Key, stores[1].Key)
	}
	if q.Len() != 0 {
		t.Fatalf("LSQ still holds %d entries after commit", q.Len())
	}
}

func TestFlushFromRemovesYoungBlocks(t *testing.T) {
	q := New()
	q.InsertStore(OrderKey(1, 0), 1, 0x100, 8, 1, false)
	q.InsertLoad(OrderKey(2, 0), 2, 0x200, 8)
	q.InsertLoad(OrderKey(3, 0), 3, 0x300, 8)
	q.FlushFrom(2)
	if q.Len() != 1 {
		t.Fatalf("after flush, %d entries remain, want 1", q.Len())
	}
	// The old block's store is still there.
	if stores := q.CommitBlock(1); len(stores) != 1 {
		t.Fatal("old block's store lost by flush")
	}
}

func TestCapacity(t *testing.T) {
	q := New()
	for i := 0; i < Capacity; i++ {
		if _, _, err := q.InsertLoad(OrderKey(uint64(i/32), i%32), uint64(i/32), uint64(0x1000+i*8), 8); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if !q.Full() {
		t.Fatal("LSQ should be full at 256 entries")
	}
	if _, _, err := q.InsertLoad(OrderKey(99, 0), 99, 0x9000, 8); err == nil {
		t.Fatal("insert past capacity succeeded")
	}
	if q.Occupancy() != 1.0 {
		t.Errorf("occupancy = %v", q.Occupancy())
	}
}

// TestQuickForwardingMatchesGoldenMemory cross-checks LSQ forwarding
// against a simple sequential-memory model for single-address traffic.
func TestQuickForwardingMatchesGoldenMemory(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New()
		golden := map[uint64]uint64{} // addr -> last stored value
		base := uint64(0x1000)
		key := uint64(0)
		for i := 0; i < 100; i++ {
			addr := base + uint64(r.Intn(8))*8
			key++
			if r.Intn(2) == 0 {
				v := r.Uint64()
				if _, err := q.InsertStore(key, key>>5, addr, 8, v, false); err != nil {
					return false
				}
				golden[addr] = v
			} else {
				res, data, err := q.InsertLoad(key, key>>5, addr, 8)
				if err != nil {
					return false
				}
				want, stored := golden[addr]
				switch res {
				case LoadForwarded:
					if !stored || data != want {
						return false
					}
				case LoadFromCache:
					// Correct only if no store to addr is buffered.
					if stored {
						return false
					}
				default:
					return false // aligned same-width traffic never conflicts
				}
			}
			if q.Len() > Capacity-2 {
				q.CommitBlock(key >> 5)
				// Cache now holds those stores; golden keeps them visible,
				// so drop them from the "buffered" view.
				for a := range golden {
					delete(golden, a)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDepPredictorLearnsAndClears(t *testing.T) {
	d := NewDepPredictor()
	d.ClearInterval = 100
	if !d.Aggressive(0x1000) {
		t.Fatal("cold predictor must allow aggressive issue")
	}
	d.Mispredicted(0x1000)
	if d.Aggressive(0x1000) {
		t.Fatal("trained address still issues aggressively")
	}
	// Different addresses (different hash buckets) are unaffected.
	if !d.Aggressive(0x2008) {
		t.Fatal("unrelated address was stalled")
	}
	// Flash clear after the configured number of blocks.
	for i := 0; i < 100; i++ {
		d.OnBlockCommit()
	}
	if !d.Aggressive(0x1000) {
		t.Fatal("predictor not cleared after ClearInterval blocks")
	}
	if d.Clears != 1 {
		t.Errorf("clear count = %d", d.Clears)
	}
}
