package lsq

import "trips/internal/ckpt"

// EncodeEntry serializes one LSQ record. Exported because the DT also holds
// entries outside the queue (commit drains, the write buffer) and must
// serialize them with the identical layout.
func EncodeEntry(w *ckpt.Writer, e *Entry) {
	w.U64(e.Key)
	w.U64(e.BlockSeq)
	w.Bool(e.IsStore)
	w.U64(e.Addr)
	w.Int(e.Width)
	w.U64(e.Data)
	w.Bool(e.Issued)
	w.Bool(e.Null)
}

// DecodeEntry reverses EncodeEntry into a fresh record.
func DecodeEntry(r *ckpt.Reader) *Entry {
	e := &Entry{}
	e.Key = r.U64()
	e.BlockSeq = r.U64()
	e.IsStore = r.Bool()
	e.Addr = r.U64()
	e.Width = r.Int()
	e.Data = r.U64()
	e.Issued = r.Bool()
	e.Null = r.Bool()
	return e
}

// SaveState serializes the queue contents (already key-sorted) and stats.
func (q *LSQ) SaveState(w *ckpt.Writer) {
	w.Section("lsq")
	w.U64(q.Forwards)
	w.U64(q.Violations)
	w.U64(q.Conflicts)
	w.Int(len(q.entries))
	for _, e := range q.entries {
		EncodeEntry(w, e)
	}
}

// LoadState restores the queue with fresh entries.
func (q *LSQ) LoadState(r *ckpt.Reader) {
	r.Section("lsq")
	q.Forwards = r.U64()
	q.Violations = r.U64()
	q.Conflicts = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	q.entries = make(entryList, 0, n)
	for i := 0; i < n; i++ {
		q.entries = append(q.entries, DecodeEntry(r))
	}
}

// SaveState serializes the dependence predictor: the bit vector packed
// eight per byte, the flash-clear countdown, and stats. ClearInterval is
// construction-time configuration and is not saved.
func (d *DepPredictor) SaveState(w *ckpt.Writer) {
	w.Section("deppred")
	packed := make([]byte, len(d.bits)/8)
	for i, b := range d.bits {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	w.Bytes(packed)
	w.Int(d.blocks)
	w.U64(d.Stalls)
	w.U64(d.Trainings)
	w.U64(d.Clears)
}

// LoadState restores the dependence predictor.
func (d *DepPredictor) LoadState(r *ckpt.Reader) {
	r.Section("deppred")
	packed := r.Bytes()
	d.bits = [1024]bool{}
	if len(packed) == len(d.bits)/8 {
		for i := range d.bits {
			d.bits[i] = packed[i/8]&(1<<(i%8)) != 0
		}
	}
	d.blocks = r.Int()
	d.Stalls = r.U64()
	d.Trainings = r.U64()
	d.Clears = r.U64()
}
