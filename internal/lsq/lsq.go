// Package lsq implements the TRIPS load/store queue and the memory-side
// dependence predictor (paper Section 3.5). The prototype replicates a full
// 256-entry LSQ at every DT — the paper's admittedly brute-force solution
// to distributing disambiguation ("wasteful and not scalable ... but the
// least complex alternative for the prototype"). Because virtual addresses
// interleave across DTs by cache line, a load and any conflicting earlier
// store always meet at the same DT, so forwarding and violation detection
// are local.
//
// Memory operations are ordered by a global key composed of the block's
// dynamic sequence number and the operation's five-bit LSID within the
// block (up to 8 blocks x 32 operations = 256 in flight, paper 3.5).
package lsq

import "fmt"

// entryList keeps LSQ entries sorted by Key. Keys embed the block sequence
// number in the high bits, so one block's operations occupy a contiguous
// span: age-ordered scans run oldest-to-youngest with early exit, and
// commit/flush are range deletions instead of whole-queue sweeps.
type entryList []*Entry

// search returns the index of the first entry with Key >= key.
func (l entryList) search(key uint64) int {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert places e at its sorted position and reports whether the key was
// already present.
func (l *entryList) insert(e *Entry) bool {
	i := l.search(e.Key)
	if i < len(*l) && (*l)[i].Key == e.Key {
		return false
	}
	*l = append(*l, nil)
	copy((*l)[i+1:], (*l)[i:])
	(*l)[i] = e
	return true
}

// cut removes the half-open index range [i, j).
func (l *entryList) cut(i, j int) {
	n := copy((*l)[i:], (*l)[j:])
	tail := (*l)[i+n:]
	for k := range tail {
		tail[k] = nil
	}
	*l = (*l)[:i+n]
}

// Capacity is the number of LSQ entries (paper Section 3.5).
const Capacity = 256

// OrderKey totally orders in-flight memory operations: block sequence
// number then LSID.
func OrderKey(blockSeq uint64, lsid int) uint64 {
	return blockSeq<<5 | uint64(lsid)&31
}

// Entry is one LSQ record.
type Entry struct {
	Key      uint64
	BlockSeq uint64
	IsStore  bool
	Addr     uint64
	Width    int
	Data     uint64 // store data
	Issued   bool   // load has read the cache / forwarded
	Null     bool   // nullified store: counts for ordering, never writes
}

func (e *Entry) overlaps(addr uint64, width int) bool {
	return e.Addr < addr+uint64(width) && addr < e.Addr+uint64(e.Width)
}

func (e *Entry) covers(addr uint64, width int) bool {
	return e.Addr <= addr && addr+uint64(width) <= e.Addr+uint64(e.Width)
}

// LoadResult describes how a load may proceed.
type LoadResult int

const (
	// LoadFromCache: no earlier conflicting store is buffered; read the
	// data cache (speculatively, if earlier store addresses are unknown).
	LoadFromCache LoadResult = iota
	// LoadForwarded: an earlier store covers the load; Data is valid.
	LoadForwarded
	// LoadConflict: an earlier store overlaps but does not cover the load;
	// the load must wait until prior stores drain to the cache.
	LoadConflict
)

// LSQ is one DT's replica of the load/store queue.
type LSQ struct {
	entries entryList

	// Stats.
	Forwards, Violations, Conflicts uint64
}

// New returns an empty LSQ.
func New() *LSQ {
	return &LSQ{}
}

// Len returns the number of buffered operations.
func (q *LSQ) Len() int { return len(q.entries) }

// Full reports whether the queue is at capacity.
func (q *LSQ) Full() bool { return len(q.entries) >= Capacity }

// InsertLoad records an arriving load and resolves it against earlier
// buffered stores. It returns the forwarding decision and, for
// LoadForwarded, the data.
func (q *LSQ) InsertLoad(key, blockSeq uint64, addr uint64, width int) (LoadResult, uint64, error) {
	if q.Full() {
		return 0, 0, fmt.Errorf("lsq: full")
	}
	e := &Entry{Key: key, BlockSeq: blockSeq, Addr: addr, Width: width, Issued: true}
	if !q.entries.insert(e) {
		return 0, 0, fmt.Errorf("lsq: duplicate key %#x", key)
	}

	// Find the youngest earlier store overlapping the load: walk down from
	// the load's position and stop at the first match.
	var best *Entry
	for i := q.entries.search(key) - 1; i >= 0; i-- {
		s := q.entries[i]
		if s.IsStore && !s.Null && s.overlaps(addr, width) {
			best = s
			break
		}
	}
	if best == nil {
		return LoadFromCache, 0, nil
	}
	if best.covers(addr, width) {
		q.Forwards++
		// Extract the load's bytes from the store's value.
		shift := (addr - best.Addr) * 8
		v := best.Data >> shift
		if width < 8 {
			v &= 1<<(uint(width)*8) - 1
		}
		return LoadForwarded, v, nil
	}
	q.Conflicts++
	e.Issued = false // will re-issue from the cache after stores drain
	return LoadConflict, 0, nil
}

// InsertStore records an arriving store and returns the issued later loads
// whose data it invalidates (memory-ordering violations), oldest first. The
// DT reports the oldest violating load's block to the GT, which flushes it
// and all younger blocks (paper Section 4.3).
func (q *LSQ) InsertStore(key, blockSeq uint64, addr uint64, width int, data uint64, null bool) ([]*Entry, error) {
	if q.Full() {
		return nil, fmt.Errorf("lsq: full")
	}
	e := &Entry{Key: key, BlockSeq: blockSeq, IsStore: true, Addr: addr, Width: width, Data: data, Null: null}
	if !q.entries.insert(e) {
		return nil, fmt.Errorf("lsq: duplicate key %#x", key)
	}
	if null {
		return nil, nil
	}
	// Later entries sit above the store's position, already oldest-first.
	var violated []*Entry
	for i := q.entries.search(key) + 1; i < len(q.entries); i++ {
		l := q.entries[i]
		if !l.IsStore && l.Issued && l.overlaps(addr, width) {
			violated = append(violated, l)
		}
	}
	if len(violated) > 0 {
		q.Violations++
	}
	return violated, nil
}

// PendingConflicts returns buffered loads (oldest first) that hit
// LoadConflict and are now free of overlapping earlier stores — i.e. those
// stores have drained — so the DT can replay them from the cache.
func (q *LSQ) PendingConflicts() []*Entry {
	var out []*Entry
	for i, l := range q.entries {
		if l.IsStore || l.Issued {
			continue
		}
		blocked := false
		for _, s := range q.entries[:i] {
			if s.IsStore && !s.Null && s.overlaps(l.Addr, l.Width) {
				blocked = true
				break
			}
		}
		if !blocked {
			out = append(out, l)
		}
	}
	return out
}

// MarkIssued marks a replayed load as issued.
func (q *LSQ) MarkIssued(key uint64) {
	if i := q.entries.search(key); i < len(q.entries) && q.entries[i].Key == key {
		q.entries[i].Issued = true
	}
}

// blockSpan returns the index range [i, j) holding blockSeq's entries.
func (q *LSQ) blockSpan(blockSeq uint64) (int, int) {
	return q.entries.search(OrderKey(blockSeq, 0)), q.entries.search(OrderKey(blockSeq+1, 0))
}

// CommitBlock removes all of blockSeq's entries and returns its
// non-nullified stores in LSID order for the DT to drain into the cache.
func (q *LSQ) CommitBlock(blockSeq uint64) []*Entry {
	i, j := q.blockSpan(blockSeq)
	var stores []*Entry
	for _, e := range q.entries[i:j] {
		if e.IsStore && !e.Null {
			stores = append(stores, e)
		}
	}
	q.entries.cut(i, j)
	return stores
}

// FlushFrom removes all entries belonging to blockSeq or younger blocks
// (the flush protocol discards the mis-speculated block and everything
// after it, paper Section 4.3).
func (q *LSQ) FlushFrom(blockSeq uint64) {
	q.entries.cut(q.entries.search(OrderKey(blockSeq, 0)), len(q.entries))
}

// FlushBlock removes exactly one block's entries (used when the GCN flush
// mask names specific frames).
func (q *LSQ) FlushBlock(blockSeq uint64) {
	i, j := q.blockSpan(blockSeq)
	q.entries.cut(i, j)
}

// MaxOccupancy is exported for the area/utilization ablation: the paper
// notes maximum occupancy of all replicated LSQs is 25%.
func (q *LSQ) Occupancy() float64 { return float64(len(q.entries)) / Capacity }
