package micronet

import "testing"

func TestMinHorizonSentinel(t *testing.T) {
	cases := []struct {
		name          string
		h, cand, want int64
	}{
		{"both-never", HorizonNever, HorizonNever, HorizonNever},
		{"candidate-never", 42, HorizonNever, 42},
		{"horizon-never", HorizonNever, 42, 42},
		{"candidate-earlier", 100, 7, 7},
		{"candidate-later", 7, 100, 7},
		{"equal", 9, 9, 9},
		{"zero-candidate", 5, 0, 0},
		{"negative-candidate", 5, -1, -1},
	}
	for _, c := range cases {
		if got := MinHorizon(c.h, c.cand); got != c.want {
			t.Errorf("%s: MinHorizon(%d, %d) = %d, want %d", c.name, c.h, c.cand, got, c.want)
		}
	}
}

func TestFoldBackendHorizonSentinel(t *testing.T) {
	cases := []struct {
		name             string
		h, backend, want int64
	}{
		// A HorizonNever backend must fold as identity, not as MaxInt64-1.
		{"backend-never", 10, HorizonNever, 10},
		{"both-never", HorizonNever, HorizonNever, HorizonNever},
		// Backend event at R is serviced during the owner step at R-1.
		{"backend-wins", HorizonNever, 5, 4},
		{"backend-earlier", 10, 5, 4},
		{"backend-later", 3, 5, 3},
		{"backend-tie", 4, 5, 4},
		// backend-1 == h-…: fold picks the strictly earlier cycle.
		{"off-by-one", 5, 5, 4},
	}
	for _, c := range cases {
		if got := FoldBackendHorizon(c.h, c.backend); got != c.want {
			t.Errorf("%s: FoldBackendHorizon(%d, %d) = %d, want %d", c.name, c.h, c.backend, got, c.want)
		}
	}
}
