package micronet

// NetworkSpec describes one TRIPS control or data network as reported in
// paper Table 2.
type NetworkSpec struct {
	Abbrev string
	Name   string
	Use    string
	// Bits is the link width in wires; LinksPerTile is the multiplier shown
	// as (x8) in Table 2 for the routed networks.
	Bits         int
	LinksPerTile int
}

// Table2 is the paper's Table 2: the seven processor micronetworks plus the
// on-chip network, with their link widths.
var Table2 = []NetworkSpec{
	{"GDN", "Global Dispatch Network", "I-fetch", 205, 1},
	{"GSN", "Global Status Network", "Block status", 6, 1},
	{"GCN", "Global Control Network", "Commit/flush", 13, 1},
	{"GRN", "Global Refill Network", "I-cache refill", 36, 1},
	{"DSN", "Data Status Network", "Store completion", 72, 1},
	{"ESN", "External Store Network", "L1 misses", 10, 1},
	{"OPN", "Operand Network", "Operand routing", 141, 8},
	{"OCN", "On-chip Network", "Memory traffic", 138, 8},
}

// SpecByAbbrev returns the Table 2 row for a network abbreviation.
func SpecByAbbrev(abbrev string) (NetworkSpec, bool) {
	for _, s := range Table2 {
		if s.Abbrev == abbrev {
			return s, true
		}
	}
	return NetworkSpec{}, false
}

// Core mesh geometry (paper Section 3): the OPN connects the GT, RTs, DTs
// and ETs in a 5x5 mesh; the OCN is a 4x10 mesh threaded through the
// secondary memory system.
const (
	OPNRows = 5
	OPNCols = 5
	OCNRows = 10
	OCNCols = 4
	// OCNVirtualChannels is the number of OCN virtual channels (Section 3.6).
	OCNVirtualChannels = 4
	// OCNLinkBytes is the OCN data link width in bytes (Section 3.6).
	OCNLinkBytes = 16
)
