package micronet

import "testing"

func TestLinkOneCycleLatency(t *testing.T) {
	l := NewLink[int]("t")
	if !l.Send(42) {
		t.Fatal("send refused on empty link")
	}
	if _, ok := l.Recv(); ok {
		t.Fatal("message visible in the same cycle it was sent")
	}
	l.Propagate()
	v, ok := l.Recv()
	if !ok || v != 42 {
		t.Fatalf("Recv = %d, %v; want 42, true", v, ok)
	}
	l.Pop()
	if _, ok := l.Recv(); ok {
		t.Fatal("message still visible after Pop")
	}
}

func TestLinkBackpressure(t *testing.T) {
	l := NewLink[int]("t")
	l.Send(1)
	if l.Send(2) {
		t.Fatal("second send in one cycle accepted")
	}
	l.Propagate() // 1 moves to out
	if !l.Send(2) {
		t.Fatal("send refused after propagate freed the input register")
	}
	l.Propagate() // out still holds 1 (not popped), 2 stays in input
	if l.Send(3) {
		t.Fatal("send accepted while input register still holds 2")
	}
	v, _ := l.Recv()
	if v != 1 {
		t.Fatalf("head of link = %d, want 1", v)
	}
	l.Pop()
	l.Propagate()
	v, ok := l.Recv()
	if !ok || v != 2 {
		t.Fatalf("after pop+propagate head = %d, %v; want 2", v, ok)
	}
	if l.Stalls() != 2 {
		t.Errorf("stall count = %d, want 2", l.Stalls())
	}
	if l.Sent() != 2 {
		t.Errorf("sent count = %d, want 2", l.Sent())
	}
}

func TestLinkOrderPreserved(t *testing.T) {
	l := NewLink[int]("t")
	var got []int
	next := 0
	for cycle := 0; cycle < 20; cycle++ {
		if l.CanSend() && next < 10 {
			l.Send(next)
			next++
		}
		if v, ok := l.Recv(); ok {
			got = append(got, v)
			l.Pop()
		}
		l.Propagate()
	}
	if len(got) != 10 {
		t.Fatalf("received %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: got[%d] = %d", i, v)
		}
	}
}
