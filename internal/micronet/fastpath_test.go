package micronet

import "testing"

// The quiescence fast paths (O(1) Quiet, skip-idle Tick/Propagate) must agree
// with the networks' actual state at every point of a message's life: before
// injection, on a link, buffered in a router, and delivered-but-unpopped.

func TestMeshQuietFastPath(t *testing.T) {
	m := NewMesh[*testMsg]("opn", 5, 5)
	if !m.Quiet() {
		t.Fatal("fresh mesh not quiet")
	}
	// A quiet tick+propagate must be a no-op apart from the arbitration
	// counter.
	m.Tick()
	m.Propagate()
	if !m.Quiet() {
		t.Fatal("quiet mesh became non-quiet after idle tick")
	}

	msg := &testMsg{id: 1, dest: Coord{2, 2}}
	if !m.Inject(Coord{0, 0}, msg) {
		t.Fatal("inject failed")
	}
	for cycle := 0; cycle < 32; cycle++ {
		if m.Quiet() {
			t.Fatalf("mesh quiet at cycle %d with message in flight", cycle)
		}
		m.Tick()
		m.Propagate()
		if _, ok := m.Deliver(Coord{2, 2}); ok {
			break
		}
	}
	if m.Quiet() {
		t.Fatal("mesh quiet with delivered message awaiting Pop")
	}
	if got := m.PendingDeliveries(); got != 1 {
		t.Fatalf("PendingDeliveries = %d, want 1", got)
	}
	m.Pop(Coord{2, 2})
	if !m.Quiet() {
		t.Fatal("mesh not quiet after final Pop")
	}
	if got := m.PendingDeliveries(); got != 0 {
		t.Fatalf("PendingDeliveries = %d after Pop, want 0", got)
	}
}

// Arbitration fairness must not depend on whether idle cycles were skipped:
// the mesh-wide rotation counter advances even when Tick early-returns.
func TestMeshIdleTicksPreserveArbitrationRotation(t *testing.T) {
	run := func(idlePrefix int) []int {
		m := NewMesh[*testMsg]("opn", 3, 3)
		for i := 0; i < idlePrefix; i++ {
			m.Tick()
			m.Propagate()
		}
		// Two messages from opposite sides compete for the same output
		// link at the center column; arrival order depends on the
		// round-robin offset at contention time.
		a := &testMsg{id: 1, dest: Coord{2, 1}}
		b := &testMsg{id: 2, dest: Coord{2, 1}}
		m.Inject(Coord{0, 0}, a)
		m.Inject(Coord{0, 2}, b)
		var order []int
		for cycle := 0; cycle < 32 && len(order) < 2; cycle++ {
			m.Tick()
			for {
				msg, ok := m.Deliver(Coord{2, 1})
				if !ok {
					break
				}
				order = append(order, msg.id)
				m.Pop(Coord{2, 1})
			}
			m.Propagate()
		}
		if len(order) != 2 {
			t.Fatalf("idlePrefix=%d: delivered %d of 2 messages", idlePrefix, len(order))
		}
		return order
	}
	// Odd and even idle prefixes land on different rotation offsets; each
	// must match a fresh mesh ticked the same total number of times. The
	// reference meshes here never skip (they carry traffic from cycle 0 in
	// runMesh-style tests), so equality shows skipped ticks still advance
	// the counter.
	for _, idle := range []int{0, 1, 2, 3, 7} {
		got := run(idle)
		// Re-run with explicit per-cycle ticking (no fast path exercised
		// differently — the mesh API has no way to bypass it, so this
		// checks run-to-run determinism of the rotation).
		again := run(idle)
		if got[0] != again[0] || got[1] != again[1] {
			t.Fatalf("idlePrefix=%d: order %v != %v across runs", idle, got, again)
		}
	}
}

func TestBroadcastQuietFastPath(t *testing.T) {
	b := NewBroadcast[int]("gcn", 5, 5)
	if !b.Quiet() {
		t.Fatal("fresh broadcast not quiet")
	}
	b.Tick()
	b.Propagate()
	if !b.Quiet() {
		t.Fatal("idle tick made broadcast non-quiet")
	}
	if !b.Inject(42) {
		t.Fatal("inject failed")
	}
	if b.Quiet() {
		t.Fatal("broadcast quiet with wave in flight")
	}
	// Run the wave to completion: max distance (4+4) hops.
	for cycle := 0; cycle < 16 && !b.Quiet(); cycle++ {
		b.Tick()
		b.Propagate()
	}
	if !b.Quiet() {
		t.Fatal("wave never drained")
	}
	// Every node must have received the command exactly once.
	want := 5 * 5
	if got := b.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			v, ok := b.Deliver(Coord{r, c})
			if !ok || v != 42 {
				t.Fatalf("node (%d,%d): got (%v,%v)", r, c, v, ok)
			}
			b.Pop(Coord{r, c})
		}
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending = %d after draining, want 0", got)
	}
}

func TestChainQuietFastPath(t *testing.T) {
	c := NewChain[int]("gsn", 4)
	if !c.Quiet() {
		t.Fatal("fresh chain not quiet")
	}
	c.Propagate()
	if !c.Quiet() {
		t.Fatal("idle propagate made chain non-quiet")
	}
	if !c.Send(3, 7) {
		t.Fatal("send failed")
	}
	if c.Quiet() {
		t.Fatal("chain quiet with message on a link")
	}
	c.Propagate()
	v, ok := c.Recv(2)
	if !ok || v != 7 {
		t.Fatalf("Recv(2) = (%v,%v), want (7,true)", v, ok)
	}
	if c.Quiet() {
		t.Fatal("chain quiet before Pop")
	}
	c.Pop(2)
	if !c.Quiet() {
		t.Fatal("chain not quiet after Pop")
	}
	// Pop with nothing arriving must not corrupt the counter.
	c.Pop(2)
	if !c.Quiet() {
		t.Fatal("empty Pop corrupted quiescence counter")
	}
}

func TestBiChainQuietFastPath(t *testing.T) {
	b := NewBiChain[int]("dsn", 4)
	if !b.Quiet() {
		t.Fatal("fresh bichain not quiet")
	}
	b.Tick()
	b.Propagate()
	if !b.Quiet() {
		t.Fatal("idle tick made bichain non-quiet")
	}
	if !b.Inject(1, 99) {
		t.Fatal("inject failed")
	}
	if b.Quiet() {
		t.Fatal("bichain quiet with broadcast in flight")
	}
	for cycle := 0; cycle < 16 && !b.Quiet(); cycle++ {
		b.Propagate()
		b.Tick()
	}
	if !b.Quiet() {
		t.Fatal("bichain broadcast never drained")
	}
	if got := b.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3 (all nodes but the sender)", got)
	}
	for _, i := range []int{0, 2, 3} {
		v, ok := b.Deliver(i)
		if !ok || v != 99 {
			t.Fatalf("node %d: got (%v,%v)", i, v, ok)
		}
		b.Pop(i)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending = %d after draining, want 0", got)
	}
}

// Link backpressure accounting: Sent counts accepted messages only, Stalls
// counts every refused Send.
func TestLinkStallsAndSentUnderContention(t *testing.T) {
	l := NewLink[int]("x")
	if !l.Send(1) {
		t.Fatal("first send refused")
	}
	// Input register now occupied: every further Send this cycle stalls.
	for i := 0; i < 3; i++ {
		if l.Send(2) {
			t.Fatal("send accepted into occupied register")
		}
	}
	if l.Sent() != 1 || l.Stalls() != 3 {
		t.Fatalf("Sent=%d Stalls=%d, want 1/3", l.Sent(), l.Stalls())
	}
	l.Propagate()
	// Output occupied, input free: one send accepted, then stalls again.
	if !l.Send(2) {
		t.Fatal("send refused with free input register")
	}
	if l.Send(3) {
		t.Fatal("send accepted into occupied register")
	}
	// Receiver never pops: propagate cannot advance, input stays full.
	l.Propagate()
	if l.Send(3) {
		t.Fatal("send accepted while receiver backpressures")
	}
	if l.Sent() != 2 || l.Stalls() != 5 {
		t.Fatalf("Sent=%d Stalls=%d, want 2/5", l.Sent(), l.Stalls())
	}
	if v, ok := l.Recv(); !ok || v != 1 {
		t.Fatalf("Recv = (%v,%v), want (1,true)", v, ok)
	}
	l.Pop()
	l.Propagate()
	if v, ok := l.Recv(); !ok || v != 2 {
		t.Fatalf("Recv = (%v,%v), want (2,true)", v, ok)
	}
}

// Mesh contention must surface in the messages' Tracked accounting and the
// shared link's stall counter.
func TestMeshBackpressureAccounting(t *testing.T) {
	m := NewMesh[*testMsg]("opn", 3, 3)
	// Messages from (0,0) and (0,2) both route X-first to column 1 and then
	// converge at router (0,1) in the same cycle, competing for its South
	// output port.
	a := &testMsg{id: 1, dest: Coord{2, 1}}
	b := &testMsg{id: 2, dest: Coord{2, 1}}
	m.Inject(Coord{0, 0}, a)
	m.Inject(Coord{0, 2}, b)
	collect := map[Coord][]*testMsg{}
	runMesh(t, m, 32, collect)
	got := collect[Coord{2, 1}]
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if a.hops != 3 || b.hops != 3 {
		t.Fatalf("hops a=%d b=%d, want 3/3", a.hops, b.hops)
	}
	// One of the two lost arbitration or found the shared link busy at
	// least once.
	if a.waits+b.waits == 0 {
		t.Fatal("no contention recorded for serialized messages")
	}
}

// Queue is the backing store for every delivery/output queue: exercise the
// head-index FIFO including PushFront, Filter and the rewind-on-drain path.
func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 50; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if q.Front() != 50 || q.At(3) != 53 || q.Len() != 50 {
		t.Fatalf("Front=%d At(3)=%d Len=%d", q.Front(), q.At(3), q.Len())
	}
	q.PushFront(49)
	if q.Front() != 49 || q.Len() != 51 {
		t.Fatalf("after PushFront: Front=%d Len=%d", q.Front(), q.Len())
	}
	q.Filter(func(v int) bool { return v%2 == 0 })
	// Before the filter the queue held 49,50..99; the evens are 50..98.
	if q.Len() != 25 {
		t.Fatalf("after Filter: Len=%d, want 25", q.Len())
	}
	for i := 0; i < 25; i++ {
		if v := q.Pop(); v != 50+2*i {
			t.Fatalf("Pop = %d, want %d", v, 50+2*i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
	// Drained queue rewinds: pushes reuse the buffer.
	q.Push(7)
	if q.Front() != 7 || q.Len() != 1 {
		t.Fatal("rewound queue broken")
	}
	// PushFront on head==0 grows and shifts.
	q.PushFront(6)
	if q.Pop() != 6 || q.Pop() != 7 {
		t.Fatal("PushFront at head==0 broken")
	}
	q.Push(1)
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset left elements")
	}
}
