package micronet

import "fmt"

// Coord is a (row, column) position on a mesh.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Manhattan returns the hop distance between two coordinates on a mesh.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.Row-o.Row) + abs(c.Col-o.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Dir is a router port direction.
type Dir int

const (
	North Dir = iota
	South
	East
	West
	Local
	numDirs
)

func (d Dir) String() string {
	return [...]string{"N", "S", "E", "W", "L"}[d]
}

// Routable is a message that a Mesh can deliver.
type Routable interface {
	Dest() Coord
}

// Tracked is optionally implemented by messages that want per-hop
// accounting: NoteHop is called once per link traversal, NoteWait once per
// cycle the message loses arbitration or is blocked by a busy link. The
// critical-path analyzer uses these to separate OPN hop latency from OPN
// contention (paper Table 3).
type Tracked interface {
	NoteHop()
	NoteWait()
}

// router is one mesh node: per-input-port single-entry buffers plus a local
// injection register and a local delivery queue.
type router[T Routable] struct {
	at       Coord
	inBuf    [numDirs]T
	inFull   [numDirs]bool
	outQ     []T // delivered messages awaiting the tile
	rrOffset int // round-robin arbitration state
}

// Mesh is a dimension-ordered (X then Y) wormhole mesh of single-flit
// messages: one message per link per cycle, round-robin arbitration per
// output port, one hop per cycle. The TRIPS operand network is a 5x5
// instance (paper Section 3); the on-chip network a 4x10 instance with
// wider payloads (Section 3.6).
type Mesh[T Routable] struct {
	Name       string
	Rows, Cols int
	routers    [][]router[T]
	// links[d][r][c] is the link leaving node (r,c) in direction d.
	links [numDirs][][]*Link[T]
	// DeliveryCap bounds messages delivered to one tile per cycle
	// (default 1).
	DeliveryCap int

	delivered uint64
	injected  uint64
}

// NewMesh builds a Rows x Cols mesh.
func NewMesh[T Routable](name string, rows, cols int) *Mesh[T] {
	m := &Mesh[T]{Name: name, Rows: rows, Cols: cols, DeliveryCap: 1}
	m.routers = make([][]router[T], rows)
	for r := range m.routers {
		m.routers[r] = make([]router[T], cols)
		for c := range m.routers[r] {
			m.routers[r][c] = router[T]{at: Coord{r, c}}
		}
	}
	for d := North; d < Local; d++ {
		m.links[d] = make([][]*Link[T], rows)
		for r := 0; r < rows; r++ {
			m.links[d][r] = make([]*Link[T], cols)
			for c := 0; c < cols; c++ {
				if nr, nc, ok := step(r, c, d, rows, cols); ok {
					m.links[d][r][c] = NewLink[T](fmt.Sprintf("%s %v->%v", name, Coord{r, c}, Coord{nr, nc}))
				}
			}
		}
	}
	return m
}

func step(r, c int, d Dir, rows, cols int) (int, int, bool) {
	switch d {
	case North:
		r--
	case South:
		r++
	case East:
		c++
	case West:
		c--
	}
	if r < 0 || r >= rows || c < 0 || c >= cols {
		return 0, 0, false
	}
	return r, c, true
}

// route returns the output direction for a message at (r,c): X (columns)
// first, then Y (rows) — deterministic and deadlock-free.
func route(at, dest Coord) Dir {
	switch {
	case dest.Col > at.Col:
		return East
	case dest.Col < at.Col:
		return West
	case dest.Row > at.Row:
		return South
	case dest.Row < at.Row:
		return North
	default:
		return Local
	}
}

// CanInject reports whether node at can accept a new message this cycle.
func (m *Mesh[T]) CanInject(at Coord) bool {
	return !m.routers[at.Row][at.Col].inFull[Local]
}

// Inject offers a message into the network at the given node. It returns
// false if the node's injection register is busy.
func (m *Mesh[T]) Inject(at Coord, msg T) bool {
	rt := &m.routers[at.Row][at.Col]
	if rt.inFull[Local] {
		if tr, ok := any(msg).(Tracked); ok {
			tr.NoteWait()
		}
		return false
	}
	rt.inBuf[Local] = msg
	rt.inFull[Local] = true
	m.injected++
	return true
}

// Deliver peeks at the oldest message delivered to the given node.
func (m *Mesh[T]) Deliver(at Coord) (T, bool) {
	rt := &m.routers[at.Row][at.Col]
	if len(rt.outQ) == 0 {
		var zero T
		return zero, false
	}
	return rt.outQ[0], true
}

// Pop consumes the oldest delivered message at the node.
func (m *Mesh[T]) Pop(at Coord) {
	rt := &m.routers[at.Row][at.Col]
	if len(rt.outQ) > 0 {
		var zero T
		rt.outQ[0] = zero
		rt.outQ = rt.outQ[1:]
	}
}

// Tick runs one routing cycle: every router arbitrates its buffered
// messages onto output links (or local delivery), round-robin per output
// port. Call once per cycle before Propagate.
func (m *Mesh[T]) Tick() {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.tickRouter(&m.routers[r][c])
		}
	}
}

func (m *Mesh[T]) tickRouter(rt *router[T]) {
	// Collect claims: for each output direction, the input ports wanting it.
	var claimed [numDirs]bool
	delivered := 0
	for k := 0; k < int(numDirs); k++ {
		// Rotate the starting input port each cycle for fairness.
		in := Dir((k + rt.rrOffset) % int(numDirs))
		if !rt.inFull[in] {
			continue
		}
		msg := rt.inBuf[in]
		out := route(rt.at, msg.Dest())
		if out == Local {
			if delivered < m.DeliveryCap {
				rt.outQ = append(rt.outQ, msg)
				var zero T
				rt.inBuf[in] = zero
				rt.inFull[in] = false
				delivered++
				m.delivered++
			} else if tr, ok := any(msg).(Tracked); ok {
				tr.NoteWait()
			}
			continue
		}
		link := m.links[out][rt.at.Row][rt.at.Col]
		if link == nil {
			// Message routed off the edge: drop loudly. Should be
			// impossible for in-range destinations.
			panic(fmt.Sprintf("micronet: %s: message at %v routed %v off mesh (dest %v)", m.Name, rt.at, out, msg.Dest()))
		}
		if claimed[out] || !link.CanSend() {
			if tr, ok := any(msg).(Tracked); ok {
				tr.NoteWait()
			}
			continue
		}
		link.Send(msg)
		claimed[out] = true
		if tr, ok := any(msg).(Tracked); ok {
			tr.NoteHop()
		}
		var zero T
		rt.inBuf[in] = zero
		rt.inFull[in] = false
	}
	rt.rrOffset = (rt.rrOffset + 1) % int(numDirs)
}

// Propagate advances all links one cycle and latches arriving messages into
// router input buffers. Call once per cycle after Tick.
func (m *Mesh[T]) Propagate() {
	for d := North; d < Local; d++ {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if l := m.links[d][r][c]; l != nil {
					l.Propagate()
				}
			}
		}
	}
	// Latch link outputs into the receiving router's input buffer for the
	// opposite direction, if that buffer is free.
	for d := North; d < Local; d++ {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				l := m.links[d][r][c]
				if l == nil {
					continue
				}
				msg, ok := l.Recv()
				if !ok {
					continue
				}
				nr, nc, _ := step(r, c, d, m.Rows, m.Cols)
				in := opposite(d)
				rt := &m.routers[nr][nc]
				if rt.inFull[in] {
					if tr, okt := any(msg).(Tracked); okt {
						tr.NoteWait()
					}
					continue // backpressure: stays on the link
				}
				rt.inBuf[in] = msg
				rt.inFull[in] = true
				l.Pop()
			}
		}
	}
}

func opposite(d Dir) Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// Quiet reports whether no messages are anywhere in the network.
func (m *Mesh[T]) Quiet() bool {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			rt := &m.routers[r][c]
			if len(rt.outQ) > 0 {
				return false
			}
			for d := Dir(0); d < numDirs; d++ {
				if rt.inFull[d] {
					return false
				}
			}
		}
	}
	for d := North; d < Local; d++ {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if l := m.links[d][r][c]; l != nil && l.Busy() {
					return false
				}
			}
		}
	}
	return true
}

// Injected and Delivered return lifetime message counts.
func (m *Mesh[T]) Injected() uint64  { return m.injected }
func (m *Mesh[T]) Delivered() uint64 { return m.delivered }
