package micronet

import (
	"fmt"

	"trips/internal/obs"
)

// Coord is a (row, column) position on a mesh.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Manhattan returns the hop distance between two coordinates on a mesh.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.Row-o.Row) + abs(c.Col-o.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Dir is a router port direction.
type Dir int

const (
	North Dir = iota
	South
	East
	West
	Local
	numDirs
)

func (d Dir) String() string {
	return [...]string{"N", "S", "E", "W", "L"}[d]
}

// Routable is a message that a Mesh can deliver.
type Routable interface {
	Dest() Coord
}

// Tracked is optionally implemented by messages that want per-hop
// accounting: NoteHop is called once per link traversal, NoteWait once per
// cycle the message loses arbitration or is blocked by a busy link. The
// critical-path analyzer uses these to separate OPN hop latency from OPN
// contention (paper Table 3).
type Tracked interface {
	NoteHop()
	NoteWait()
}

// TraceIdent is optionally implemented by messages that can carry a trace
// identity: Attach-ed meshes stamp a fresh id at injection so the event
// tracer can correlate a message's inject/hop/deliver events.
type TraceIdent interface {
	SetTraceID(uint64)
	TraceID() uint64
}

func traceIDOf[T Routable](msg T) uint64 {
	if ti, ok := any(msg).(TraceIdent); ok {
		return ti.TraceID()
	}
	return 0
}

// router is one mesh node: per-input-port single-entry buffers plus a local
// injection register and a local delivery queue.
type router[T Routable] struct {
	at     Coord
	inBuf  [numDirs]T
	inFull [numDirs]bool
	occ    int8 // occupied entries of inBuf (fast skip for idle routers)
	// listed marks membership in the mesh's occupied-router list (see
	// Mesh.occRouters); it may lag occ going to zero until the next Tick
	// compacts the list.
	listed bool
	outQ   Queue[T] // delivered messages awaiting the tile
}

// Mesh is a dimension-ordered (X then Y) wormhole mesh of single-flit
// messages: one message per link per cycle, round-robin arbitration per
// output port, one hop per cycle. The TRIPS operand network is a 5x5
// instance (paper Section 3); the on-chip network a 4x10 instance with
// wider payloads (Section 3.6).
type Mesh[T Routable] struct {
	Name       string
	Rows, Cols int
	routers    [][]router[T]
	// links[d][r][c] is the link leaving node (r,c) in direction d.
	links [numDirs][][]*Link[T]
	// edges flattens the existing links in (direction, row, column) order —
	// the exact order the nested Propagate scan visited them — so the
	// per-cycle link walk touches only real links, with the destination
	// router and input port precomputed.
	edges []meshEdge[T]
	// busyEdges tracks edges whose link currently holds a message, so
	// Propagate walks only those. Each edge latches into its own dedicated
	// (router, input-port) buffer, so the walk order cannot affect state.
	busyEdges []*meshEdge[T]
	// occRouters tracks routers with occupied input buffers, so Tick visits
	// only those instead of scanning the grid. Routing decisions, claims,
	// and delivery caps are all per-router, and each output link has exactly
	// one source router, so the visit order cannot affect state (the same
	// argument as busyEdges). Stale entries (occ back to zero) are dropped
	// at the next Tick.
	occRouters []*router[T]
	// edgeOf[d][r][c] locates the edge record for links[d][r][c].
	edgeOf [numDirs][][]*meshEdge[T]
	// DeliveryCap bounds messages delivered to one tile per cycle
	// (default 1).
	DeliveryCap int

	delivered uint64
	injected  uint64

	// Quiescence accounting: together these make Quiet() O(1) so the core
	// can skip routing and delivery scans on idle cycles. tickCount replaces
	// the per-router round-robin offset — every router used to advance its
	// offset once per Tick in lockstep, so a single mesh-wide counter
	// (advanced even on skipped idle ticks) yields bit-identical arbitration.
	tickCount    int
	bufOcc       int // occupied router input buffers
	linkBusy     int // messages resident on links (sent, not yet latched)
	pendingDeliv int // delivered messages awaiting Pop

	// trace is the optional event tracer (nil = off; see Attach). Every
	// hot-path emission site is gated on one nil check, and emission never
	// mutates routing state, so a traced run is cycle-identical.
	trace *obs.Tracer
	netID uint8
}

// meshEdge is one physical link plus its latch target.
type meshEdge[T Routable] struct {
	link *Link[T]
	dst  *router[T] // receiving router
	in   Dir        // input port at the receiver (opposite of the link's direction)
}

// NewMesh builds a Rows x Cols mesh.
func NewMesh[T Routable](name string, rows, cols int) *Mesh[T] {
	m := &Mesh[T]{Name: name, Rows: rows, Cols: cols, DeliveryCap: 1}
	m.routers = make([][]router[T], rows)
	for r := range m.routers {
		m.routers[r] = make([]router[T], cols)
		for c := range m.routers[r] {
			m.routers[r][c] = router[T]{at: Coord{r, c}}
		}
	}
	for d := North; d < Local; d++ {
		m.links[d] = make([][]*Link[T], rows)
		for r := 0; r < rows; r++ {
			m.links[d][r] = make([]*Link[T], cols)
			for c := 0; c < cols; c++ {
				if nr, nc, ok := step(r, c, d, rows, cols); ok {
					l := NewLink[T](fmt.Sprintf("%s %v->%v", name, Coord{r, c}, Coord{nr, nc}))
					m.links[d][r][c] = l
					m.edges = append(m.edges, meshEdge[T]{link: l, dst: &m.routers[nr][nc], in: opposite(d)})
				}
			}
		}
	}
	// Second pass (edges is fully grown, pointers are stable): index the
	// edge records by (direction, row, column) for the busy-edge tracking.
	for d := North; d < Local; d++ {
		m.edgeOf[d] = make([][]*meshEdge[T], rows)
		for r := 0; r < rows; r++ {
			m.edgeOf[d][r] = make([]*meshEdge[T], cols)
		}
	}
	i := 0
	for d := North; d < Local; d++ {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.links[d][r][c] != nil {
					m.edgeOf[d][r][c] = &m.edges[i]
					i++
				}
			}
		}
	}
	return m
}

func step(r, c int, d Dir, rows, cols int) (int, int, bool) {
	switch d {
	case North:
		r--
	case South:
		r++
	case East:
		c++
	case West:
		c--
	}
	if r < 0 || r >= rows || c < 0 || c >= cols {
		return 0, 0, false
	}
	return r, c, true
}

// route returns the output direction for a message at (r,c): X (columns)
// first, then Y (rows) — deterministic and deadlock-free.
func route(at, dest Coord) Dir {
	switch {
	case dest.Col > at.Col:
		return East
	case dest.Col < at.Col:
		return West
	case dest.Row > at.Row:
		return South
	case dest.Row < at.Row:
		return North
	default:
		return Local
	}
}

// CanInject reports whether node at can accept a new message this cycle.
func (m *Mesh[T]) CanInject(at Coord) bool {
	return !m.routers[at.Row][at.Col].inFull[Local]
}

// Inject offers a message into the network at the given node. It returns
// false if the node's injection register is busy.
func (m *Mesh[T]) Inject(at Coord, msg T) bool {
	rt := &m.routers[at.Row][at.Col]
	if rt.inFull[Local] {
		if tr, ok := any(msg).(Tracked); ok {
			tr.NoteWait()
		}
		return false
	}
	rt.inBuf[Local] = msg
	rt.inFull[Local] = true
	rt.occ++
	m.noteOcc(rt)
	m.bufOcc++
	m.injected++
	if m.trace != nil {
		m.traceInject(at, msg)
	}
	return true
}

// Attach connects an event tracer (nil detaches). net identifies the mesh
// in trace output (obs.NetOPN0, obs.NetOCN, ...).
func (m *Mesh[T]) Attach(tr *obs.Tracer, net uint8) {
	m.trace = tr
	m.netID = net
}

// traceInject stamps a fresh trace id on the message (when it can carry
// one) and records the injection. Tick advances tickCount before tiles
// inject, so the current cycle is tickCount-1.
func (m *Mesh[T]) traceInject(at Coord, msg T) {
	var id uint64
	if ti, ok := any(msg).(TraceIdent); ok {
		id = m.trace.NextID()
		ti.SetTraceID(id)
	}
	m.trace.Emit(obs.Event{
		Cycle: int64(m.tickCount) - 1, Kind: obs.KindNetInject, Net: m.netID,
		Seq: id, Addr: obs.PackCoord(at.Row, at.Col),
		Arg: obs.PackCoord(msg.Dest().Row, msg.Dest().Col),
	})
}

// Deliver peeks at the oldest message delivered to the given node.
func (m *Mesh[T]) Deliver(at Coord) (T, bool) {
	rt := &m.routers[at.Row][at.Col]
	if rt.outQ.Empty() {
		var zero T
		return zero, false
	}
	return rt.outQ.Front(), true
}

// Pop consumes the oldest delivered message at the node.
func (m *Mesh[T]) Pop(at Coord) {
	rt := &m.routers[at.Row][at.Col]
	if !rt.outQ.Empty() {
		rt.outQ.Pop()
		m.pendingDeliv--
	}
}

// Tick runs one routing cycle: every router arbitrates its buffered
// messages onto output links (or local delivery), round-robin per output
// port. Call once per cycle before Propagate. An idle mesh (no buffered
// messages) advances only the arbitration counter.
func (m *Mesh[T]) Tick() {
	off := m.tickCount
	m.tickCount++
	if m.bufOcc == 0 {
		return
	}
	kept := m.occRouters[:0]
	for _, rt := range m.occRouters {
		if rt.occ > 0 {
			m.tickRouter(rt, off)
		}
		if rt.occ > 0 {
			kept = append(kept, rt)
		} else {
			rt.listed = false
		}
	}
	tail := m.occRouters[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	m.occRouters = kept
}

// noteOcc registers a router in the occupied list when a buffer fills. A
// router already listed (possibly as a stale entry from a previous cycle)
// is not re-added; Tick compacts entries whose buffers have drained.
func (m *Mesh[T]) noteOcc(rt *router[T]) {
	if !rt.listed {
		rt.listed = true
		m.occRouters = append(m.occRouters, rt)
	}
}

func (m *Mesh[T]) tickRouter(rt *router[T], off int) {
	// Collect claims: for each output direction, the input ports wanting it.
	var claimed [numDirs]bool
	delivered := 0
	for k := 0; k < int(numDirs); k++ {
		// Rotate the starting input port each cycle for fairness.
		in := Dir((k + off) % int(numDirs))
		if !rt.inFull[in] {
			continue
		}
		msg := rt.inBuf[in]
		out := route(rt.at, msg.Dest())
		if out == Local {
			if delivered < m.DeliveryCap {
				rt.outQ.Push(msg)
				var zero T
				rt.inBuf[in] = zero
				rt.inFull[in] = false
				rt.occ--
				m.bufOcc--
				m.pendingDeliv++
				delivered++
				m.delivered++
				if m.trace != nil {
					m.trace.Emit(obs.Event{
						Cycle: int64(off), Kind: obs.KindNetDeliver, Net: m.netID,
						Seq: traceIDOf(msg), Addr: obs.PackCoord(rt.at.Row, rt.at.Col),
					})
				}
			} else if tr, ok := any(msg).(Tracked); ok {
				tr.NoteWait()
			}
			continue
		}
		link := m.links[out][rt.at.Row][rt.at.Col]
		if link == nil {
			// Message routed off the edge: drop loudly. Should be
			// impossible for in-range destinations.
			panic(fmt.Sprintf("micronet: %s: message at %v routed %v off mesh (dest %v)", m.Name, rt.at, out, msg.Dest()))
		}
		if claimed[out] || !link.CanSend() {
			if tr, ok := any(msg).(Tracked); ok {
				tr.NoteWait()
			}
			continue
		}
		if !link.Busy() {
			m.busyEdges = append(m.busyEdges, m.edgeOf[out][rt.at.Row][rt.at.Col])
		}
		link.Send(msg)
		claimed[out] = true
		m.linkBusy++
		if tr, ok := any(msg).(Tracked); ok {
			tr.NoteHop()
		}
		if m.trace != nil {
			m.trace.Emit(obs.Event{
				Cycle: int64(off), Kind: obs.KindNetHop, Net: m.netID,
				Seq: traceIDOf(msg), Addr: obs.PackCoord(rt.at.Row, rt.at.Col),
			})
		}
		var zero T
		rt.inBuf[in] = zero
		rt.inFull[in] = false
		rt.occ--
		m.bufOcc--
	}
}

// Propagate advances all busy links one cycle and latches arriving messages
// into router input buffers. Call once per cycle after Tick. Only edges
// whose link holds a message are visited; since every edge latches into its
// own dedicated (router, input-port) buffer, the visit order cannot change
// any outcome.
func (m *Mesh[T]) Propagate() {
	if len(m.busyEdges) == 0 {
		return
	}
	kept := m.busyEdges[:0]
	for _, e := range m.busyEdges {
		e.link.Propagate()
		if msg, ok := e.link.Recv(); ok {
			rt := e.dst
			if rt.inFull[e.in] {
				// Backpressure: the message stays on the link.
				if tr, okt := any(msg).(Tracked); okt {
					tr.NoteWait()
				}
			} else {
				rt.inBuf[e.in] = msg
				rt.inFull[e.in] = true
				rt.occ++
				m.noteOcc(rt)
				m.bufOcc++
				m.linkBusy--
				e.link.Pop()
			}
		}
		if e.link.Busy() {
			kept = append(kept, e)
		}
	}
	tail := m.busyEdges[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	m.busyEdges = kept
}

func opposite(d Dir) Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// soloTransit locates the single in-transit message when the mesh holds
// exactly one: one occupied input buffer, nothing resident on a link, and no
// delivered messages awaiting Pop. Between Propagate and the next Tick a lone
// message is always latched in some router's input buffer (backpressure needs
// a second message), so this is the complete "exactly one message" state.
func (m *Mesh[T]) soloTransit() (*router[T], Dir, bool) {
	if m.bufOcc != 1 || m.linkBusy != 0 || m.pendingDeliv != 0 {
		return nil, Local, false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			rt := &m.routers[r][c]
			if rt.occ == 0 {
				continue
			}
			for d := North; d < numDirs; d++ {
				if rt.inFull[d] {
					return rt, d, true
				}
			}
		}
	}
	return nil, Local, false
}

// TransitBound returns the exact number of future Ticks after which the
// mesh's single in-transit message is delivered to its destination's output
// queue (its drain deadline), and ok=false when no such bound is computable:
// the mesh is empty, holds more than one message (future arbitration depends
// on interleaving), or has an unpopped delivery. A solo message never loses
// arbitration and never sees backpressure, so it moves exactly one hop per
// Tick — remaining Manhattan distance plus one delivery Tick.
func (m *Mesh[T]) TransitBound() (int64, bool) {
	rt, in, ok := m.soloTransit()
	if !ok {
		return 0, false
	}
	return int64(rt.at.Manhattan(rt.inBuf[in].Dest())) + 1, true
}

// maxTransitSet caps how many co-resident messages the multi-message transit
// analysis considers. Beyond a handful the window is almost always conflict
// limited anyway, and the per-call scan cost grows with k².
const maxTransitSet = 6

// transitMsg is one resident message located during a multi-message transit
// scan: its current router input buffer and destination.
type transitMsg[T Routable] struct {
	msg  T
	pos  Coord
	in   Dir
	dest Coord
}

// transitSet collects every resident message when all of them are latched in
// router input buffers — nothing on links, nothing awaiting Pop — and there
// are between 1 and maxTransitSet of them. In that state each message's
// future is governed only by dimension-ordered routing and arbitration
// between the collected messages themselves.
func (m *Mesh[T]) transitSet() (set [maxTransitSet]transitMsg[T], n int, ok bool) {
	if m.linkBusy != 0 || m.pendingDeliv != 0 || m.bufOcc == 0 || m.bufOcc > maxTransitSet {
		return set, 0, false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			rt := &m.routers[r][c]
			if rt.occ == 0 {
				continue
			}
			for d := North; d <= Local; d++ {
				if rt.inFull[d] {
					set[n] = transitMsg[T]{msg: rt.inBuf[d], pos: rt.at, in: d, dest: rt.inBuf[d].Dest()}
					n++
				}
			}
		}
	}
	return set, n, true
}

// transitWindow returns the number of future Ticks over which every message
// in the set provably advances exactly one hop per Tick: no two messages
// claim the same output link on the same Tick (link-disjoint trajectories
// under deterministic X-then-Y routing), and no message reaches its
// destination inside the window (delivery arbitration is excluded, so the
// window is also capped at the minimum remaining Manhattan distance).
// Within such a window no arbitration loss, link stall, or buffer
// backpressure can occur, so the mesh evolution is a pure per-hop replay.
func transitWindow[T Routable](set []transitMsg[T], rows, cols int) int64 {
	w := -1
	for _, t := range set {
		if d := t.pos.Manhattan(t.dest); w < 0 || d < w {
			w = d
		}
	}
	if w <= 0 {
		return 0
	}
	var pos [maxTransitSet]Coord
	for i, t := range set {
		pos[i] = t.pos
	}
	for tick := 0; tick < w; tick++ {
		var outs [8]Dir
		for i := range set {
			out := route(pos[i], set[i].dest)
			outs[i] = out
			for j := 0; j < i; j++ {
				if pos[j] == pos[i] && outs[j] == out {
					return int64(tick) // two messages claim the same link this Tick
				}
			}
		}
		for i := range set {
			nr, nc, _ := step(pos[i].Row, pos[i].Col, outs[i], rows, cols)
			pos[i] = Coord{Row: nr, Col: nc}
		}
	}
	return int64(w)
}

// TransitBoundMulti generalizes TransitBound to up to maxTransitSet resident
// messages: it returns the next Tick (counted from now) at which the mesh's
// evolution stops being a pure one-hop-per-message replay — either the
// nearest message's delivery Tick or the first Tick where two trajectories
// contend for a link. Warping callers may SkipTicks up to bound-1 cycles and
// must step the bound-th Tick. ok=false when the mesh is empty, a message is
// mid-link or awaiting Pop, or more than maxTransitSet messages are resident.
func (m *Mesh[T]) TransitBoundMulti() (int64, bool) {
	if m.bufOcc == 1 {
		return m.TransitBound() // solo fast path: no window simulation needed
	}
	set, n, ok := m.transitSet()
	if !ok {
		return 0, false
	}
	return transitWindow(set[:n], m.Rows, m.Cols) + 1, true
}

// SkipTicks advances the mesh by n cycles without per-cycle routing, replaying
// exactly the state n Ticks would have produced. On an empty mesh that is just
// the round-robin arbitration counter. With a single message in transit the
// message is teleported n hops along its dimension-ordered route (n must not
// exceed its remaining hop count — callers bound the warp by TransitBound),
// replaying the per-hop accounting a stepped run would have made: one NoteHop
// and one link send per traversed link, and the latch into the next router's
// opposite input port. A solo message can neither lose arbitration nor stall,
// so no NoteWait and no link stall can occur on the skipped cycles.
// Clock-warping callers rely on this replay being bit-exact.
func (m *Mesh[T]) SkipTicks(n int64) {
	start := int64(m.tickCount)
	m.tickCount += int(n)
	if n <= 0 || m.bufOcc == 0 && m.linkBusy == 0 && m.pendingDeliv == 0 {
		return
	}
	set, nset, ok := m.transitSet()
	if !ok {
		panic(fmt.Sprintf("micronet: %s: SkipTicks(%d) on a mesh that is not fully buffer-latched (bufOcc=%d linkBusy=%d pendingDeliv=%d)",
			m.Name, n, m.bufOcc, m.linkBusy, m.pendingDeliv))
	}
	if w := transitWindow(set[:nset], m.Rows, m.Cols); w < n {
		panic(fmt.Sprintf("micronet: %s: SkipTicks(%d) exceeds the %d-message conflict-free transit window (%d)",
			m.Name, n, nset, w))
	}
	// Lift every message out of its buffer, then replay each trajectory n
	// hops. The window check above guarantees the trajectories are
	// link-disjoint per Tick and deliver nothing, so per-message replay in
	// any order reproduces exactly the state n stepped Ticks would build.
	var zero T
	for _, t := range set[:nset] {
		rt := &m.routers[t.pos.Row][t.pos.Col]
		rt.inBuf[t.in] = zero
		rt.inFull[t.in] = false
		rt.occ--
	}
	for _, t := range set[:nset] {
		msg, pos, in := t.msg, t.pos, t.in
		tr, tracked := any(msg).(Tracked)
		for i := int64(0); i < n; i++ {
			out := route(pos, t.dest)
			m.links[out][pos.Row][pos.Col].sent++
			if tracked {
				tr.NoteHop()
			}
			if m.trace != nil {
				// Replay the hop trace a stepped run would have emitted: the
				// i-th skipped tick would have stamped cycle start+i, keeping
				// per-message hop timestamps monotone across warps.
				m.trace.Emit(obs.Event{
					Cycle: start + i, Kind: obs.KindNetHop, Net: m.netID,
					Seq: traceIDOf(msg), Addr: obs.PackCoord(pos.Row, pos.Col),
				})
			}
			nr, nc, _ := step(pos.Row, pos.Col, out, m.Rows, m.Cols)
			pos = Coord{Row: nr, Col: nc}
			in = opposite(out)
		}
		nrt := &m.routers[pos.Row][pos.Col]
		nrt.inBuf[in] = msg
		nrt.inFull[in] = true
		nrt.occ++
		m.noteOcc(nrt)
	}
}

// RewindTicks moves the arbitration clock backwards by n cycles. It is the
// inverse of SkipTicks on a quiet mesh and exists solely for bounded-lag
// rollback: a core whose stride was pure warp (no Step executed) rewinds its
// local clock, and its network clocks must follow so a replayed stride sees
// identical arbitration rotation. Rewinding a mesh with resident messages
// would desynchronize per-hop accounting, so that is a hard error.
func (m *Mesh[T]) RewindTicks(n int64) {
	if n <= 0 {
		return
	}
	if !m.Quiet() {
		panic(fmt.Sprintf("micronet: %s: RewindTicks(%d) on a non-quiet mesh (bufOcc=%d linkBusy=%d pendingDeliv=%d)",
			m.Name, n, m.bufOcc, m.linkBusy, m.pendingDeliv))
	}
	m.tickCount -= int(n)
}

// MinTransit returns a lower bound on the number of Ticks a message injected
// at from needs before it can be delivered at to: the Manhattan distance (one
// hop per cycle is the mesh's maximum speed) plus the delivery Tick. The bound
// holds under arbitrary contention — arbitration losses, link stalls, and
// buffer backpressure only delay a message, never accelerate it — which is
// what makes it usable as a response-deadline term: it can be computed from
// endpoint coordinates alone, before the message is even injected.
func (m *Mesh[T]) MinTransit(from, to Coord) int64 {
	return int64(from.Manhattan(to)) + 1
}

// VisitResidents calls fn once for every message currently resident in the
// mesh, extending the solo-transit bound toward multi-message earliest-arrival
// analysis: at reports a position the message must still traverse from, chosen
// so that at.Manhattan(msg.Dest()) is a sound lower bound on the Ticks
// remaining before the message can be delivered — its router for buffered
// messages and delivered-awaiting-Pop messages, and the receiving router for
// messages resident on a link (the link crossing itself is not counted, which
// only weakens the bound). Unlike TransitBoundMulti this never fails on
// contended states: contention delays messages, so per-message Manhattan
// remainders stay valid lower bounds no matter how arbitration resolves.
func (m *Mesh[T]) VisitResidents(fn func(msg T, at Coord)) {
	if m.bufOcc == 0 && m.linkBusy == 0 && m.pendingDeliv == 0 {
		return
	}
	if m.bufOcc > 0 || m.pendingDeliv > 0 {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				rt := &m.routers[r][c]
				for d := North; d <= Local; d++ {
					if rt.inFull[d] {
						fn(rt.inBuf[d], rt.at)
					}
				}
				for i := 0; i < rt.outQ.Len(); i++ {
					fn(rt.outQ.At(i), rt.at)
				}
			}
		}
	}
	for _, e := range m.busyEdges {
		if e.link.hasIn {
			fn(e.link.in, e.dst.at)
		}
		if e.link.hasOut {
			fn(e.link.out, e.dst.at)
		}
	}
}

// EarliestArrival returns a lower bound on the number of future Ticks before
// any resident message can be delivered: zero when a delivery is already
// awaiting Pop, otherwise the minimum over resident messages of the
// per-message Manhattan remainder plus the delivery Tick (the VisitResidents
// bound), and HorizonNever on an empty mesh. Unlike TransitBoundMulti the
// bound never fails on contended multi-message states — contention only
// delays messages — but it is correspondingly weaker: it bounds when the
// next delivery CAN happen, not when the mesh state stops needing per-cycle
// routing, so it must never be used to SkipTicks. Callers use it as a
// next-event floor while Quiet stays false.
func (m *Mesh[T]) EarliestArrival() int64 {
	if m.pendingDeliv > 0 {
		return 0
	}
	h := HorizonNever
	m.VisitResidents(func(msg T, at Coord) {
		if b := int64(at.Manhattan(msg.Dest())) + 1; b < h {
			h = b
		}
	})
	return h
}

// Quiet reports whether no messages are anywhere in the network: no occupied
// router buffers, nothing resident on a link, and no delivered messages
// awaiting Pop. O(1) via the quiescence counters.
func (m *Mesh[T]) Quiet() bool {
	return m.bufOcc == 0 && m.linkBusy == 0 && m.pendingDeliv == 0
}

// PendingDeliveries returns the number of delivered messages that tiles have
// not yet popped. The core's delivery pump skips its grid scan when zero.
func (m *Mesh[T]) PendingDeliveries() int { return m.pendingDeliv }

// Injected and Delivered return lifetime message counts.
func (m *Mesh[T]) Injected() uint64  { return m.injected }
func (m *Mesh[T]) Delivered() uint64 { return m.delivered }

// Occupancy returns the number of messages currently resident in the mesh
// (router buffers plus links), a cheap O(1) sampling source.
func (m *Mesh[T]) Occupancy() int { return m.bufOcc + m.linkBusy }

// LinksBusy returns the number of links currently carrying a message.
func (m *Mesh[T]) LinksBusy() int { return m.linkBusy }

// NumLinks returns the number of physical links in the mesh.
func (m *Mesh[T]) NumLinks() int { return len(m.edges) }
