// Package micronet implements the microarchitectural network substrate of
// the TRIPS prototype (paper Section 3, Figure 3, Table 2): point-to-point,
// nearest-neighbor links that move one message per hop per cycle, a
// dimension-ordered routed mesh with per-port arbitration (the operand
// network and on-chip network), a broadcast wave network (global control
// and dispatch), and daisy chains (global status and data status).
//
// The simulation discipline is two-phase: during a cycle, tiles and routers
// Send into links and Recv/Pop from them; after all tiles have ticked, every
// link Propagates, making this cycle's sends visible next cycle. That gives
// exactly the paper's one-tile-per-cycle message propagation with no global
// wires.
package micronet

import "fmt"

// Link is a one-cycle, single-entry pipeline register between two
// endpoints. A value sent in cycle t is receivable in cycle t+1. If the
// receiver does not pop, the value stays and the link backpressures the
// sender — flow control without credits, sufficient for single-flit
// micronets.
type Link[T any] struct {
	name    string
	in, out T
	hasIn   bool
	hasOut  bool
	sent    uint64 // lifetime messages accepted
	stalled uint64 // lifetime cycles a send was refused
}

// NewLink creates a named link. The name appears in debug dumps only.
func NewLink[T any](name string) *Link[T] {
	return &Link[T]{name: name}
}

// CanSend reports whether the link can accept a message this cycle.
func (l *Link[T]) CanSend() bool { return !l.hasIn }

// Send places v on the link. It returns false — and counts a stall — if the
// link's input register is occupied.
func (l *Link[T]) Send(v T) bool {
	if l.hasIn {
		l.stalled++
		return false
	}
	l.in = v
	l.hasIn = true
	l.sent++
	return true
}

// Recv peeks at the message deliverable this cycle without consuming it.
func (l *Link[T]) Recv() (T, bool) { return l.out, l.hasOut }

// Pop consumes the deliverable message.
func (l *Link[T]) Pop() {
	var zero T
	l.out = zero
	l.hasOut = false
}

// Propagate advances the link by one cycle: the input register moves to the
// output register if the output is free. Call exactly once per cycle, after
// all endpoints have ticked.
func (l *Link[T]) Propagate() {
	if l.hasIn && !l.hasOut {
		l.out, l.hasOut = l.in, true
		var zero T
		l.in = zero
		l.hasIn = false
	}
}

// Busy reports whether any message is in flight on the link.
func (l *Link[T]) Busy() bool { return l.hasIn || l.hasOut }

// Sent returns the number of messages the link has accepted.
func (l *Link[T]) Sent() uint64 { return l.sent }

// Stalls returns the number of refused sends (backpressure events).
func (l *Link[T]) Stalls() uint64 { return l.stalled }

func (l *Link[T]) String() string {
	return fmt.Sprintf("link %s (in=%v out=%v)", l.name, l.hasIn, l.hasOut)
}
