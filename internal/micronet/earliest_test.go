package micronet

import (
	"math/rand"
	"testing"
)

func TestEarliestArrivalBasics(t *testing.T) {
	m := NewMesh[*testMsg]("ocn", 5, 5)
	if ea := m.EarliestArrival(); ea != HorizonNever {
		t.Errorf("empty mesh EarliestArrival = %d, want HorizonNever", ea)
	}
	m.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{3, 4}}) // distance 7
	if ea := m.EarliestArrival(); ea != 8 {
		t.Errorf("solo EarliestArrival = %d, want 8", ea)
	}
	// A nearer second message tightens the bound even though the contended
	// pair has no TransitBoundMulti (converging trajectories stay bounded).
	m.Inject(Coord{1, 4}, &testMsg{id: 2, dest: Coord{3, 4}}) // distance 2
	if ea := m.EarliestArrival(); ea != 3 {
		t.Errorf("pair EarliestArrival = %d, want 3", ea)
	}
	// An unpopped delivery means a tile can observe a message now.
	m2 := NewMesh[*testMsg]("ocn", 5, 5)
	m2.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{0, 1}})
	for i := 0; i < 2; i++ {
		m2.Tick()
		m2.Propagate()
	}
	if _, ok := m2.Deliver(Coord{0, 1}); !ok {
		t.Fatal("message not delivered after distance+1 ticks")
	}
	if ea := m2.EarliestArrival(); ea != 0 {
		t.Errorf("pending-delivery EarliestArrival = %d, want 0", ea)
	}
}

// TestEarliestArrivalPropertyFuzz drives random contended traffic and checks
// the defining property of the bound: whenever EarliestArrival reports k at a
// cycle boundary, no delivery may surface in fewer than k further Ticks. The
// bound is recomputed every boundary and ratcheted to the tightest bound
// issued since the previous delivery — but only across injection-free
// boundaries: a bound speaks for the residents it saw, and a message injected
// later may legitimately arrive sooner.
func TestEarliestArrivalPropertyFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		m := NewMesh[*testMsg]("ocn", 4, 4)
		injected, delivered := 0, 0
		var count, allowed int64
		holdPop := 0 // cycles to leave deliveries unpopped (exercises ea == 0)
		for cycle := 0; cycle < 400; cycle++ {
			if cycle < 200 {
				for k := rng.Intn(3); k > 0; k-- {
					src := Coord{rng.Intn(4), rng.Intn(4)}
					dst := Coord{rng.Intn(4), rng.Intn(4)}
					if src == dst {
						continue
					}
					if m.Inject(src, &testMsg{id: injected + 1, dest: dst}) {
						injected++
						allowed = 0 // a fresh message invalidates older bounds
					}
				}
			}
			if ea := m.EarliestArrival(); ea != HorizonNever {
				if a := count + ea; a > allowed {
					allowed = a
				}
			} else if m.Occupancy() != 0 || m.PendingDeliveries() != 0 {
				t.Fatalf("trial %d cycle %d: EarliestArrival = never on a non-empty mesh", trial, cycle)
			}
			m.Tick()
			count++
			got := false
			if holdPop > 0 {
				holdPop--
			} else {
				for r := 0; r < m.Rows; r++ {
					for c := 0; c < m.Cols; c++ {
						at := Coord{r, c}
						for {
							if _, ok := m.Deliver(at); !ok {
								break
							}
							m.Pop(at)
							delivered++
							got = true
						}
					}
				}
				if rng.Intn(10) == 0 {
					holdPop = rng.Intn(3)
				}
			}
			if got {
				if count < allowed {
					t.Fatalf("trial %d: delivery after %d ticks beats EarliestArrival bound %d", trial, count, allowed)
				}
				allowed = 0
			}
			m.Propagate()
		}
		// Drain: everything injected must eventually arrive, still respecting
		// the ratcheted bound on every remaining delivery.
		for cycle := 0; cycle < 200 && !m.Quiet(); cycle++ {
			if ea := m.EarliestArrival(); ea != HorizonNever {
				if a := count + ea; a > allowed {
					allowed = a
				}
			}
			m.Tick()
			count++
			got := false
			for r := 0; r < m.Rows; r++ {
				for c := 0; c < m.Cols; c++ {
					at := Coord{r, c}
					for {
						if _, ok := m.Deliver(at); !ok {
							break
						}
						m.Pop(at)
						delivered++
						got = true
					}
				}
			}
			if got {
				if count < allowed {
					t.Fatalf("trial %d drain: delivery after %d ticks beats EarliestArrival bound %d", trial, count, allowed)
				}
				allowed = 0
			}
			m.Propagate()
		}
		if delivered != injected {
			t.Fatalf("trial %d: delivered %d of %d injected", trial, delivered, injected)
		}
	}
}
