package micronet

import "testing"

// meshState flattens every piece of mesh state a skipped-vs-stepped
// comparison must agree on: the arbitration counter, the quiescence
// counters, lifetime stats, and each link's accept/stall counters.
func meshState(m *Mesh[*testMsg]) map[string]int64 {
	s := map[string]int64{
		"tick":      int64(m.tickCount),
		"bufOcc":    int64(m.bufOcc),
		"linkBusy":  int64(m.linkBusy),
		"pending":   int64(m.pendingDeliv),
		"injected":  int64(m.injected),
		"delivered": int64(m.delivered),
	}
	for d := North; d < Local; d++ {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if l := m.links[d][r][c]; l != nil {
					s[l.name+"/sent"] = int64(l.sent)
					s[l.name+"/stalled"] = int64(l.stalled)
				}
			}
		}
	}
	return s
}

func TestTransitBound(t *testing.T) {
	m := NewMesh[*testMsg]("opn", 5, 5)
	if _, ok := m.TransitBound(); ok {
		t.Error("empty mesh reported a transit bound")
	}
	msg := &testMsg{id: 1, dest: Coord{3, 4}}
	m.Inject(Coord{0, 0}, msg)
	// Distance 7, plus one delivery tick.
	if b, ok := m.TransitBound(); !ok || b != 8 {
		t.Errorf("bound after inject = %d,%v, want 8,true", b, ok)
	}
	m.Tick()
	m.Propagate()
	if b, ok := m.TransitBound(); !ok || b != 7 {
		t.Errorf("bound after one hop = %d,%v, want 7,true", b, ok)
	}
	// A second resident message makes the bound incomputable.
	m.Inject(Coord{4, 0}, &testMsg{id: 2, dest: Coord{0, 2}})
	if _, ok := m.TransitBound(); ok {
		t.Error("two-message mesh reported a transit bound")
	}
}

// TestSkipTicksSoloReplayBitIdentical checks the clock-warp replay: skipping
// j ticks of a solo transit must leave the mesh in exactly the state j
// stepped ticks produce — message position, hop count, per-link counters,
// arbitration counter — and the message must still be delivered at the same
// absolute cycle.
func TestSkipTicksSoloReplayBitIdentical(t *testing.T) {
	cases := []struct {
		src, dst Coord
		skip     int64
	}{
		{Coord{0, 0}, Coord{4, 4}, 1},
		{Coord{0, 0}, Coord{4, 4}, 8}, // the full transit
		{Coord{0, 0}, Coord{4, 4}, 5}, // partial: X leg plus part of Y
		{Coord{4, 0}, Coord{0, 4}, 3},
		{Coord{1, 3}, Coord{3, 1}, 4},
		{Coord{2, 2}, Coord{2, 2}, 0}, // distance 0: nothing to skip
	}
	for _, tc := range cases {
		dist := int64(tc.src.Manhattan(tc.dst))
		run := func(skip int64) (*Mesh[*testMsg], *testMsg, int) {
			m := NewMesh[*testMsg]("opn", 5, 5)
			msg := &testMsg{id: 1, dest: tc.dst}
			m.Inject(tc.src, msg)
			m.SkipTicks(skip)
			cycle := int(skip)
			for ; cycle < 100; cycle++ {
				m.Tick()
				if got, ok := m.Deliver(tc.dst); ok {
					if got != msg {
						t.Fatalf("%v->%v: delivered wrong message", tc.src, tc.dst)
					}
					m.Pop(tc.dst)
					m.Propagate()
					return m, msg, cycle
				}
				m.Propagate()
			}
			t.Fatalf("%v->%v skip=%d: never delivered", tc.src, tc.dst, skip)
			return nil, nil, 0
		}
		mA, msgA, cycA := run(0)
		mB, msgB, cycB := run(tc.skip)
		if cycA != cycB {
			t.Errorf("%v->%v skip=%d: delivered at cycle %d, stepped run at %d",
				tc.src, tc.dst, tc.skip, cycB, cycA)
		}
		if msgA.hops != msgB.hops || int64(msgA.hops) != dist {
			t.Errorf("%v->%v skip=%d: hops %d vs stepped %d (dist %d)",
				tc.src, tc.dst, tc.skip, msgB.hops, msgA.hops, dist)
		}
		if msgA.waits != 0 || msgB.waits != 0 {
			t.Errorf("%v->%v skip=%d: solo message recorded waits %d/%d",
				tc.src, tc.dst, tc.skip, msgA.waits, msgB.waits)
		}
		sA, sB := meshState(mA), meshState(mB)
		for k, v := range sA {
			if sB[k] != v {
				t.Errorf("%v->%v skip=%d: state %q = %d, stepped run %d",
					tc.src, tc.dst, tc.skip, k, sB[k], v)
			}
		}
	}
}

func TestSkipTicksContractViolationsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("overshoot", func() {
		m := NewMesh[*testMsg]("opn", 5, 5)
		m.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{0, 2}})
		m.SkipTicks(3) // distance is 2
	})
	mustPanic("conflicting trajectories", func() {
		m := NewMesh[*testMsg]("opn", 5, 5)
		// Both head for (3,1): X-then-Y routing merges them at (1,1) on the
		// second tick, where they claim the same South link — the conflict-free
		// window is 1 tick, so a 2-tick skip must refuse.
		m.Inject(Coord{1, 0}, &testMsg{id: 1, dest: Coord{3, 1}})
		m.Inject(Coord{0, 1}, &testMsg{id: 2, dest: Coord{3, 1}})
		m.SkipTicks(2)
	})
	mustPanic("mid-link", func() {
		m := NewMesh[*testMsg]("opn", 5, 5)
		m.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{0, 2}})
		m.Inject(Coord{4, 4}, &testMsg{id: 2, dest: Coord{0, 2}})
		m.Tick() // both messages move onto links: not a fully latched state
		m.SkipTicks(1)
	})
}

func TestTransitBoundMulti(t *testing.T) {
	m := NewMesh[*testMsg]("ocn", 5, 5)
	if _, ok := m.TransitBoundMulti(); ok {
		t.Error("empty mesh reported a multi-transit bound")
	}
	m.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{3, 4}}) // distance 7
	if b, ok := m.TransitBoundMulti(); !ok || b != 8 {
		t.Errorf("solo bound = %d,%v, want 8,true", b, ok)
	}
	// A second message with a disjoint trajectory: the window is capped by
	// the nearer message's remaining distance (2), so the bound is 3.
	m.Inject(Coord{4, 4}, &testMsg{id: 2, dest: Coord{4, 2}})
	if b, ok := m.TransitBoundMulti(); !ok || b != 3 {
		t.Errorf("disjoint pair bound = %d,%v, want 3,true", b, ok)
	}
	// Converging messages: both claim (1,1)'s South link on the second tick,
	// so only one conflict-free tick remains — bound 2.
	m2 := NewMesh[*testMsg]("ocn", 5, 5)
	m2.Inject(Coord{1, 0}, &testMsg{id: 1, dest: Coord{3, 1}})
	m2.Inject(Coord{0, 1}, &testMsg{id: 2, dest: Coord{3, 1}})
	if b, ok := m2.TransitBoundMulti(); !ok || b != 2 {
		t.Errorf("conflicting pair bound = %d,%v, want 2,true", b, ok)
	}
	// A message mid-link makes the bound incomputable.
	m2.Tick()
	if _, ok := m2.TransitBoundMulti(); ok {
		t.Error("mid-link mesh reported a multi-transit bound")
	}
}

// TestSkipTicksMultiReplayBitIdentical is the multi-message version of the
// solo replay test: skipping j ticks with several link-disjoint messages in
// flight must leave the mesh bit-identical to j stepped ticks, and every
// message must still be delivered at the same absolute cycle with the same
// hop/wait counters.
func TestSkipTicksMultiReplayBitIdentical(t *testing.T) {
	type injection struct {
		src, dst Coord
	}
	cases := []struct {
		name string
		inj  []injection
		skip int64
	}{
		{"two-disjoint", []injection{{Coord{0, 0}, Coord{4, 4}}, {Coord{4, 4}, Coord{0, 0}}}, 4},
		{"three-parallel-rows", []injection{{Coord{0, 0}, Coord{0, 4}}, {Coord{2, 0}, Coord{2, 4}}, {Coord{4, 0}, Coord{4, 4}}}, 4},
		{"follower-chain", []injection{{Coord{0, 0}, Coord{0, 4}}, {Coord{0, 1}, Coord{0, 4}}}, 3},
		{"converging-partial", []injection{{Coord{1, 0}, Coord{3, 1}}, {Coord{0, 1}, Coord{3, 1}}}, 1},
	}
	for _, tc := range cases {
		run := func(skip int64) (*Mesh[*testMsg], map[int]int) {
			m := NewMesh[*testMsg]("ocn", 5, 5)
			msgs := make([]*testMsg, len(tc.inj))
			for i, in := range tc.inj {
				msgs[i] = &testMsg{id: i + 1, dest: in.dst}
				if !m.Inject(in.src, msgs[i]) {
					t.Fatalf("%s: inject %d refused", tc.name, i)
				}
			}
			m.SkipTicks(skip)
			delivered := map[int]int{}
			for cycle := int(skip); cycle < 100 && len(delivered) < len(msgs); cycle++ {
				m.Tick()
				for _, in := range tc.inj {
					for {
						got, ok := m.Deliver(in.dst)
						if !ok {
							break
						}
						delivered[got.id] = cycle
						m.Pop(in.dst)
					}
				}
				m.Propagate()
			}
			if len(delivered) != len(msgs) {
				t.Fatalf("%s skip=%d: only %d/%d messages delivered", tc.name, skip, len(delivered), len(msgs))
			}
			return m, delivered
		}
		mA, delA := run(0)
		mB, delB := run(tc.skip)
		for id, cyc := range delA {
			if delB[id] != cyc {
				t.Errorf("%s skip=%d: message %d delivered at cycle %d, stepped run at %d",
					tc.name, tc.skip, id, delB[id], cyc)
			}
		}
		sA, sB := meshState(mA), meshState(mB)
		for k, v := range sA {
			if sB[k] != v {
				t.Errorf("%s skip=%d: state %q = %d, stepped run %d", tc.name, tc.skip, k, sB[k], v)
			}
		}
	}
}

func TestRewindTicks(t *testing.T) {
	m := NewMesh[*testMsg]("opn", 5, 5)
	m.SkipTicks(10)
	m.RewindTicks(4)
	if m.tickCount != 6 {
		t.Errorf("tickCount after skip 10 / rewind 4 = %d, want 6", m.tickCount)
	}
	defer func() {
		if recover() == nil {
			t.Error("RewindTicks on a non-quiet mesh did not panic")
		}
	}()
	m.Inject(Coord{0, 0}, &testMsg{id: 1, dest: Coord{0, 2}})
	m.RewindTicks(1)
}
