package micronet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testMsg implements Routable and Tracked for mesh tests.
type testMsg struct {
	id    int
	dest  Coord
	hops  int
	waits int
}

func (m *testMsg) Dest() Coord { return m.dest }
func (m *testMsg) NoteHop()    { m.hops++ }
func (m *testMsg) NoteWait()   { m.waits++ }

func runMesh(t *testing.T, m *Mesh[*testMsg], maxCycles int, collect map[Coord][]*testMsg) int {
	t.Helper()
	cycles := 0
	for ; cycles < maxCycles; cycles++ {
		m.Tick()
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				at := Coord{r, c}
				for {
					msg, ok := m.Deliver(at)
					if !ok {
						break
					}
					collect[at] = append(collect[at], msg)
					m.Pop(at)
				}
			}
		}
		m.Propagate()
		if m.Quiet() {
			break
		}
	}
	return cycles
}

func TestMeshDeliversAtManhattanDistance(t *testing.T) {
	// With no contention, a message injected at cycle 0 arrives after
	// exactly one cycle per hop plus the final local delivery.
	cases := []struct{ src, dst Coord }{
		{Coord{0, 0}, Coord{4, 4}},
		{Coord{0, 0}, Coord{0, 1}},
		{Coord{2, 2}, Coord{2, 2}},
		{Coord{4, 0}, Coord{0, 4}},
		{Coord{1, 3}, Coord{3, 1}},
	}
	for _, c := range cases {
		m := NewMesh[*testMsg]("opn", 5, 5)
		msg := &testMsg{id: 1, dest: c.dst}
		if !m.Inject(c.src, msg) {
			t.Fatalf("inject at %v refused", c.src)
		}
		got := map[Coord][]*testMsg{}
		runMesh(t, m, 100, got)
		delivered := got[c.dst]
		if len(delivered) != 1 {
			t.Fatalf("%v->%v: delivered %d messages", c.src, c.dst, len(delivered))
		}
		if want := c.src.Manhattan(c.dst); msg.hops != want {
			t.Errorf("%v->%v: hops = %d, want %d", c.src, c.dst, msg.hops, want)
		}
		if msg.waits != 0 {
			t.Errorf("%v->%v: unexpected contention waits %d", c.src, c.dst, msg.waits)
		}
	}
}

func TestMeshContentionSerializesSharedLink(t *testing.T) {
	// Two messages injected the same cycle from the same node to the same
	// destination must share every link: the second records waits.
	m := NewMesh[*testMsg]("opn", 5, 5)
	a := &testMsg{id: 1, dest: Coord{0, 4}}
	b := &testMsg{id: 2, dest: Coord{0, 4}}
	if !m.Inject(Coord{0, 0}, a) {
		t.Fatal("first inject refused")
	}
	if m.Inject(Coord{0, 0}, b) {
		t.Fatal("second inject in the same cycle should be refused (one injection register)")
	}
	if b.waits == 0 {
		t.Error("refused injection should record a wait")
	}
	m.Tick()
	m.Propagate()
	if !m.Inject(Coord{0, 0}, b) {
		t.Fatal("second inject refused after a cycle")
	}
	got := map[Coord][]*testMsg{}
	runMesh(t, m, 100, got)
	if len(got[Coord{0, 4}]) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got[Coord{0, 4}]))
	}
}

func TestMeshManyToOneAllDelivered(t *testing.T) {
	// Every node sends to the center; all messages must arrive despite
	// heavy contention, and total hops must be at least the sum of
	// distances (contention never shortens a path).
	m := NewMesh[*testMsg]("opn", 5, 5)
	center := Coord{2, 2}
	var msgs []*testMsg
	pending := []func() bool{}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if (Coord{r, c}) == center {
				continue
			}
			msg := &testMsg{id: r*5 + c, dest: center}
			msgs = append(msgs, msg)
			src := Coord{r, c}
			pending = append(pending, func() bool { return m.Inject(src, msg) })
		}
	}
	got := map[Coord][]*testMsg{}
	for cycle := 0; cycle < 300; cycle++ {
		var still []func() bool
		for _, try := range pending {
			if !try() {
				still = append(still, try)
			}
		}
		pending = still
		m.Tick()
		for {
			msg, ok := m.Deliver(center)
			if !ok {
				break
			}
			got[center] = append(got[center], msg)
			m.Pop(center)
		}
		m.Propagate()
		if len(pending) == 0 && m.Quiet() {
			break
		}
	}
	if len(got[center]) != len(msgs) {
		t.Fatalf("delivered %d of %d messages", len(got[center]), len(msgs))
	}
	totalWait := 0
	for _, msg := range msgs {
		totalWait += msg.waits
	}
	if totalWait == 0 {
		t.Error("24-to-1 traffic should exhibit contention waits")
	}
}

func TestMeshDeliveryOrderFIFOPerPair(t *testing.T) {
	// Messages between one source/dest pair must arrive in injection order
	// (single path, FIFO links).
	m := NewMesh[*testMsg]("opn", 5, 5)
	src, dst := Coord{4, 0}, Coord{0, 4}
	var sent []*testMsg
	next := 0
	var got []*testMsg
	for cycle := 0; cycle < 200; cycle++ {
		if next < 10 {
			msg := &testMsg{id: next, dest: dst}
			if m.Inject(src, msg) {
				sent = append(sent, msg)
				next++
			}
		}
		m.Tick()
		for {
			msg, ok := m.Deliver(dst)
			if !ok {
				break
			}
			got = append(got, msg)
			m.Pop(dst)
		}
		m.Propagate()
		if next == 10 && m.Quiet() {
			break
		}
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	for i, msg := range got {
		if msg.id != i {
			t.Fatalf("out of order: got[%d].id = %d", i, msg.id)
		}
	}
}

func TestQuickMeshRandomTrafficDelivers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMesh[*testMsg]("opn", 5, 5)
		n := 1 + r.Intn(40)
		type job struct {
			src Coord
			msg *testMsg
		}
		var jobs []job
		for i := 0; i < n; i++ {
			jobs = append(jobs, job{
				src: Coord{r.Intn(5), r.Intn(5)},
				msg: &testMsg{id: i, dest: Coord{r.Intn(5), r.Intn(5)}},
			})
		}
		deliveredCount := 0
		pending := jobs
		for cycle := 0; cycle < 2000; cycle++ {
			var still []job
			for _, j := range pending {
				if !m.Inject(j.src, j.msg) {
					still = append(still, j)
				}
			}
			pending = still
			m.Tick()
			for rr := 0; rr < 5; rr++ {
				for cc := 0; cc < 5; cc++ {
					at := Coord{rr, cc}
					for {
						msg, ok := m.Deliver(at)
						if !ok {
							break
						}
						if msg.Dest() != at {
							t.Logf("message %d delivered to %v, dest %v", msg.id, at, msg.Dest())
							return false
						}
						deliveredCount++
						m.Pop(at)
					}
				}
			}
			m.Propagate()
			if len(pending) == 0 && m.Quiet() {
				break
			}
		}
		return deliveredCount == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTable2Contents(t *testing.T) {
	if len(Table2) != 8 {
		t.Fatalf("Table 2 has %d networks, want 8", len(Table2))
	}
	wantBits := map[string]int{
		"GDN": 205, "GSN": 6, "GCN": 13, "GRN": 36,
		"DSN": 72, "ESN": 10, "OPN": 141, "OCN": 138,
	}
	for abbrev, bits := range wantBits {
		s, ok := SpecByAbbrev(abbrev)
		if !ok {
			t.Errorf("missing network %s", abbrev)
			continue
		}
		if s.Bits != bits {
			t.Errorf("%s bits = %d, want %d", abbrev, s.Bits, bits)
		}
	}
	if _, ok := SpecByAbbrev("XXX"); ok {
		t.Error("SpecByAbbrev accepted unknown network")
	}
}
