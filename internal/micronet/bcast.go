package micronet

import "fmt"

// Broadcast is the wave-propagation network used by the global control
// network (GCN) and the refill network (GRN): a single origin node (the GT)
// sends commands that reach every node of a rows x cols grid at exactly its
// Manhattan distance from the origin, in order, one hop per cycle (paper
// Section 4.3: "This wave propagates at one hop per cycle across the
// array").
//
// The wave is realized as a physical forwarding tree rooted at (0,0):
// messages travel east along row 0 and south down every column. Because
// only the origin injects (at most one message per cycle), no arbitration
// is needed and delivery order equals injection order at every node.
type Broadcast[T any] struct {
	Name         string
	Rows, Cols   int
	east         []*Link[T]   // east[c]: (0,c) -> (0,c+1)
	south        [][]*Link[T] // south[r][c]: (r,c) -> (r+1,c)
	outQ         [][]Queue[T] // delivered, per node
	injected     uint64
	linkBusy     int // messages resident on tree links (O(1) Quiet)
	pendingDeliv int // delivered messages awaiting Pop
}

// NewBroadcast builds the wave network for a rows x cols grid with the
// origin at (0,0).
func NewBroadcast[T any](name string, rows, cols int) *Broadcast[T] {
	b := &Broadcast[T]{Name: name, Rows: rows, Cols: cols}
	b.east = make([]*Link[T], cols-1)
	for c := range b.east {
		b.east[c] = NewLink[T](fmt.Sprintf("%s east %d", name, c))
	}
	b.south = make([][]*Link[T], rows-1)
	for r := range b.south {
		b.south[r] = make([]*Link[T], cols)
		for c := range b.south[r] {
			b.south[r][c] = NewLink[T](fmt.Sprintf("%s south %d,%d", name, r, c))
		}
	}
	b.outQ = make([][]Queue[T], rows)
	for r := range b.outQ {
		b.outQ[r] = make([]Queue[T], cols)
	}
	return b
}

// CanInject reports whether the origin can send this cycle. The tree has no
// internal contention, so only the first east and south links gate it.
func (b *Broadcast[T]) CanInject() bool {
	ok := true
	if b.Cols > 1 {
		ok = ok && b.east[0].CanSend()
	}
	if b.Rows > 1 {
		ok = ok && b.south[0][0].CanSend()
	}
	return ok
}

// Inject sends msg from the origin (0,0). The origin itself receives it
// immediately (distance 0). Returns false if the tree root links are busy.
func (b *Broadcast[T]) Inject(msg T) bool {
	if !b.CanInject() {
		return false
	}
	b.outQ[0][0].Push(msg)
	b.pendingDeliv++
	if b.Cols > 1 {
		b.east[0].Send(msg)
		b.linkBusy++
	}
	if b.Rows > 1 {
		b.south[0][0].Send(msg)
		b.linkBusy++
	}
	b.injected++
	return true
}

// Deliver peeks at the oldest command delivered to node at.
func (b *Broadcast[T]) Deliver(at Coord) (T, bool) {
	q := &b.outQ[at.Row][at.Col]
	if q.Empty() {
		var zero T
		return zero, false
	}
	return q.Front(), true
}

// Pop consumes the oldest delivered command at node at.
func (b *Broadcast[T]) Pop(at Coord) {
	q := &b.outQ[at.Row][at.Col]
	if !q.Empty() {
		q.Pop()
		b.pendingDeliv--
	}
}

// Tick forwards arriving messages down the tree. Call once per cycle before
// Propagate. A no-op when no message is on any tree link.
func (b *Broadcast[T]) Tick() {
	if b.linkBusy == 0 {
		return
	}
	// Row 0 eastward wave: a message arriving at (0,c) forwards east and
	// south, and is delivered locally.
	for c := 1; c < b.Cols; c++ {
		msg, ok := b.east[c-1].Recv()
		if !ok {
			continue
		}
		// Forwarding can never block: links drain in lockstep because only
		// the origin injects, at most one message per cycle.
		if c < b.Cols-1 {
			b.east[c].Send(msg)
			b.linkBusy++
		}
		if b.Rows > 1 {
			b.south[0][c].Send(msg)
			b.linkBusy++
		}
		b.outQ[0][c].Push(msg)
		b.pendingDeliv++
		b.east[c-1].Pop()
		b.linkBusy--
	}
	// Southward waves in every column.
	for r := 1; r < b.Rows; r++ {
		for c := 0; c < b.Cols; c++ {
			msg, ok := b.south[r-1][c].Recv()
			if !ok {
				continue
			}
			if r < b.Rows-1 {
				b.south[r][c].Send(msg)
				b.linkBusy++
			}
			b.outQ[r][c].Push(msg)
			b.pendingDeliv++
			b.south[r-1][c].Pop()
			b.linkBusy--
		}
	}
}

// Propagate advances all links one cycle. Call once per cycle after Tick.
// A no-op when no message is on any tree link.
func (b *Broadcast[T]) Propagate() {
	if b.linkBusy == 0 {
		return
	}
	for _, l := range b.east {
		l.Propagate()
	}
	for _, row := range b.south {
		for _, l := range row {
			l.Propagate()
		}
	}
}

// Quiet reports whether no commands are in flight (delivered-but-unpopped
// commands do not count). O(1) via the link-residency counter.
func (b *Broadcast[T]) Quiet() bool { return b.linkBusy == 0 }

// Injected returns the total number of commands the origin has sent.
func (b *Broadcast[T]) Injected() uint64 { return b.injected }

// Busy returns the number of messages currently resident on tree links.
func (b *Broadcast[T]) Busy() int { return b.linkBusy }

// Pending returns the number of delivered commands awaiting Pop.
func (b *Broadcast[T]) Pending() int { return b.pendingDeliv }
