package micronet

import "math"

// HorizonNever is the shared "no scheduled event" sentinel used by every
// NextEventCycle-style horizon in the simulator: proc.Core, the chip warp
// gate, the bounded-lag coordinator, and the NUCA backend all fold candidate
// deadlines against it. It lives here because micronet is the one package
// all of them already import.
const HorizonNever = int64(math.MaxInt64)

// MinHorizon folds a candidate event cycle into a horizon: the earlier of
// the two. HorizonNever is an identity on either side, which is exactly the
// plain-min behavior since the sentinel is the maximum int64 — the helper
// exists so every fold site spells the operation (and its sentinel
// semantics) the same way.
func MinHorizon(h, candidate int64) int64 {
	if candidate < h {
		return candidate
	}
	return h
}

// FoldBackendHorizon folds a backend clock domain's next-event cycle into an
// owner-domain horizon. The backend clock runs one tick ahead of the cycle
// whose step services it — its event at backend cycle R is serviced during
// the owner's step at R-1 — so the candidate enters the fold as backend-1.
// A HorizonNever backend (nothing scheduled) folds as identity rather than
// underflowing the sentinel.
func FoldBackendHorizon(h, backend int64) int64 {
	if backend != HorizonNever && backend-1 < h {
		return backend - 1
	}
	return h
}
