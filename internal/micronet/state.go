package micronet

import "trips/internal/ckpt"

// Checkpoint support: every micronet component can serialize its mutable
// state into a ckpt.Writer and load it back from a ckpt.Reader. Payload
// types are opaque to this package, so callers pass an encoder/decoder pair
// for T. LoadState never allocates new network topology — it overwrites the
// state of an identically-constructed component — and rebuilds all derived
// bookkeeping (occupancy counters, busy-edge and occupied-router lists)
// from the canonical construction order, which is sound because Tick and
// Propagate are order-insensitive across routers and edges (each claims
// disjoint state; see the comments on Mesh.busyEdges/occRouters).

// SaveState serializes the queue contents.
func (q *Queue[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Int(q.Len())
	for i := 0; i < q.Len(); i++ {
		enc(w, q.At(i))
	}
}

// LoadState replaces the queue contents with the serialized ones.
func (q *Queue[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	q.Reset()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	for i := 0; i < n; i++ {
		q.Push(dec(r))
	}
}

// SaveState serializes the link registers and lifetime counters.
func (l *Link[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Bool(l.hasIn)
	if l.hasIn {
		enc(w, l.in)
	}
	w.Bool(l.hasOut)
	if l.hasOut {
		enc(w, l.out)
	}
	w.U64(l.sent)
	w.U64(l.stalled)
}

// LoadState restores the link registers and lifetime counters.
func (l *Link[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	var zero T
	l.in, l.out = zero, zero
	l.hasIn = r.Bool()
	if l.hasIn {
		l.in = dec(r)
	}
	l.hasOut = r.Bool()
	if l.hasOut {
		l.out = dec(r)
	}
	l.sent = r.U64()
	l.stalled = r.U64()
}

// SaveState serializes the mesh: arbitration clock, counters, every router
// buffer and delivery queue, and every link register.
func (m *Mesh[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Section("mesh:" + m.Name)
	w.Int(m.tickCount)
	w.U64(m.delivered)
	w.U64(m.injected)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			rt := &m.routers[r][c]
			for d := North; d < numDirs; d++ {
				w.Bool(rt.inFull[d])
				if rt.inFull[d] {
					enc(w, rt.inBuf[d])
				}
			}
			rt.outQ.SaveState(w, enc)
		}
	}
	for d := North; d < Local; d++ {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if l := m.links[d][r][c]; l != nil {
					l.SaveState(w, enc)
				}
			}
		}
	}
}

// LoadState restores the mesh into an identically-shaped instance and
// rebuilds the derived occupancy bookkeeping.
func (m *Mesh[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	r.Section("mesh:" + m.Name)
	m.tickCount = r.Int()
	m.delivered = r.U64()
	m.injected = r.U64()
	m.bufOcc, m.linkBusy, m.pendingDeliv = 0, 0, 0
	m.busyEdges = m.busyEdges[:0]
	m.occRouters = m.occRouters[:0]
	var zero T
	for row := 0; row < m.Rows; row++ {
		for c := 0; c < m.Cols; c++ {
			rt := &m.routers[row][c]
			rt.occ = 0
			rt.listed = false
			for d := North; d < numDirs; d++ {
				rt.inBuf[d] = zero
				rt.inFull[d] = r.Bool()
				if rt.inFull[d] {
					rt.inBuf[d] = dec(r)
					rt.occ++
					m.bufOcc++
				}
			}
			rt.outQ.LoadState(r, dec)
			m.pendingDeliv += rt.outQ.Len()
			if rt.occ > 0 {
				m.noteOcc(rt)
			}
		}
	}
	for d := North; d < Local; d++ {
		for row := 0; row < m.Rows; row++ {
			for c := 0; c < m.Cols; c++ {
				if l := m.links[d][row][c]; l != nil {
					l.LoadState(r, dec)
					if l.hasIn {
						m.linkBusy++
					}
					if l.hasOut {
						m.linkBusy++
					}
					if l.Busy() {
						m.busyEdges = append(m.busyEdges, m.edgeOf[d][row][c])
					}
				}
			}
		}
	}
}

// SaveState serializes the chain links and counters.
func (c *Chain[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Section("chain:" + c.Name)
	w.U64(c.sent)
	for _, l := range c.links {
		l.SaveState(w, enc)
	}
}

// LoadState restores the chain and recomputes link residency.
func (c *Chain[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	r.Section("chain:" + c.Name)
	c.sent = r.U64()
	c.busy = 0
	for _, l := range c.links {
		l.LoadState(r, dec)
		if l.hasIn {
			c.busy++
		}
		if l.hasOut {
			c.busy++
		}
	}
}

// SaveState serializes the bidirectional chain.
func (b *BiChain[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Section("bichain:" + b.Name)
	w.U64(b.sent)
	for i := 0; i < b.N-1; i++ {
		b.up[i].SaveState(w, enc)
		b.down[i].SaveState(w, enc)
	}
	for i := range b.outQ {
		b.outQ[i].SaveState(w, enc)
	}
}

// LoadState restores the bidirectional chain and recomputes residency.
func (b *BiChain[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	r.Section("bichain:" + b.Name)
	b.sent = r.U64()
	b.busy = 0
	b.pendingDeliv = 0
	for i := 0; i < b.N-1; i++ {
		b.up[i].LoadState(r, dec)
		b.down[i].LoadState(r, dec)
		for _, l := range [2]*Link[T]{b.up[i], b.down[i]} {
			if l.hasIn {
				b.busy++
			}
			if l.hasOut {
				b.busy++
			}
		}
	}
	for i := range b.outQ {
		b.outQ[i].LoadState(r, dec)
		b.pendingDeliv += b.outQ[i].Len()
	}
}

// SaveState serializes the broadcast tree.
func (b *Broadcast[T]) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, T)) {
	w.Section("bcast:" + b.Name)
	w.U64(b.injected)
	for _, l := range b.east {
		l.SaveState(w, enc)
	}
	for _, row := range b.south {
		for _, l := range row {
			l.SaveState(w, enc)
		}
	}
	for r := range b.outQ {
		for c := range b.outQ[r] {
			b.outQ[r][c].SaveState(w, enc)
		}
	}
}

// LoadState restores the broadcast tree and recomputes residency.
func (b *Broadcast[T]) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) T) {
	r.Section("bcast:" + b.Name)
	b.injected = r.U64()
	b.linkBusy = 0
	b.pendingDeliv = 0
	count := func(l *Link[T]) {
		l.LoadState(r, dec)
		if l.hasIn {
			b.linkBusy++
		}
		if l.hasOut {
			b.linkBusy++
		}
	}
	for _, l := range b.east {
		count(l)
	}
	for _, row := range b.south {
		for _, l := range row {
			count(l)
		}
	}
	for row := range b.outQ {
		for c := range b.outQ[row] {
			b.outQ[row][c].LoadState(r, dec)
			b.pendingDeliv += b.outQ[row][c].Len()
		}
	}
}
