package micronet

import "testing"

func TestBroadcastWaveDistance(t *testing.T) {
	b := NewBroadcast[int]("gcn", 5, 5)
	if !b.Inject(7) {
		t.Fatal("inject refused")
	}
	arrival := map[Coord]int{}
	for cycle := 0; cycle < 20; cycle++ {
		b.Tick()
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				at := Coord{r, c}
				if v, ok := b.Deliver(at); ok {
					if v != 7 {
						t.Fatalf("node %v got %d", at, v)
					}
					if _, seen := arrival[at]; !seen {
						arrival[at] = cycle
					}
					b.Pop(at)
				}
			}
		}
		b.Propagate()
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			at := Coord{r, c}
			got, ok := arrival[at]
			if !ok {
				t.Fatalf("node %v never received the broadcast", at)
			}
			if want := r + c; got != want {
				t.Errorf("node %v received at cycle %d, want %d (Manhattan distance)", at, got, want)
			}
		}
	}
}

func TestBroadcastOrderPreserved(t *testing.T) {
	// Back-to-back commands must arrive in order at every node — the
	// property the pipelined commit protocol relies on (paper 4.4: "each
	// tile is guaranteed to receive and process them in order").
	b := NewBroadcast[int]("gcn", 5, 5)
	sent := 0
	got := map[Coord][]int{}
	for cycle := 0; cycle < 30; cycle++ {
		if sent < 5 && b.CanInject() {
			b.Inject(sent)
			sent++
		}
		b.Tick()
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				at := Coord{r, c}
				for {
					v, ok := b.Deliver(at)
					if !ok {
						break
					}
					got[at] = append(got[at], v)
					b.Pop(at)
				}
			}
		}
		b.Propagate()
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			at := Coord{r, c}
			if len(got[at]) != 5 {
				t.Fatalf("node %v received %d commands, want 5", at, len(got[at]))
			}
			for i, v := range got[at] {
				if v != i {
					t.Fatalf("node %v out of order: %v", at, got[at])
				}
			}
		}
	}
}

func TestChainTransport(t *testing.T) {
	// A message injected at the tail reaches the head one hop per cycle,
	// forwarded explicitly by intermediate nodes.
	c := NewChain[string]("gsn", 5)
	c.Send(4, "done")
	arrivedAtHead := -1
	for cycle := 0; cycle < 20; cycle++ {
		// Each intermediate node forwards what it receives.
		for node := 1; node < 4; node++ {
			if msg, ok := c.Recv(node); ok && c.CanSend(node) {
				c.Send(node, msg)
				c.Pop(node)
			}
		}
		if msg, ok := c.Recv(0); ok {
			if msg != "done" {
				t.Fatalf("head received %q", msg)
			}
			arrivedAtHead = cycle
			c.Pop(0)
		}
		c.Propagate()
	}
	if arrivedAtHead != 4 {
		t.Errorf("message from node 4 reached node 0 at cycle %d, want 4 (four hops, one per cycle)", arrivedAtHead)
	}
}

func TestBiChainBroadcastToAllOthers(t *testing.T) {
	for src := 0; src < 4; src++ {
		b := NewBiChain[int]("dsn", 4)
		if !b.Inject(src, 99) {
			t.Fatalf("inject at %d refused", src)
		}
		arrival := map[int]int{}
		for cycle := 0; cycle < 20; cycle++ {
			b.Tick()
			for i := 0; i < 4; i++ {
				if v, ok := b.Deliver(i); ok {
					if v != 99 {
						t.Fatalf("node %d got %d", i, v)
					}
					arrival[i] = cycle
					b.Pop(i)
				}
			}
			b.Propagate()
		}
		for i := 0; i < 4; i++ {
			if i == src {
				if _, ok := arrival[i]; ok {
					t.Errorf("source %d received its own broadcast", i)
				}
				continue
			}
			want := abs(i - src)
			if got, ok := arrival[i]; !ok || got != want {
				t.Errorf("src %d: node %d arrival = %d (ok=%v), want %d", src, i, got, ok, want)
			}
		}
	}
}

func TestBiChainContention(t *testing.T) {
	// Simultaneous broadcasts from both ends must all be delivered.
	b := NewBiChain[int]("dsn", 4)
	b.Inject(0, 1)
	b.Inject(3, 2)
	counts := map[int]int{}
	for cycle := 0; cycle < 40; cycle++ {
		b.Tick()
		for i := 0; i < 4; i++ {
			for {
				_, ok := b.Deliver(i)
				if !ok {
					break
				}
				counts[i]++
				b.Pop(i)
			}
		}
		b.Propagate()
		if b.Quiet() {
			break
		}
	}
	// Nodes 1 and 2 see both broadcasts; ends see only the other's.
	want := map[int]int{0: 1, 1: 2, 2: 2, 3: 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("node %d delivered %d, want %d", i, counts[i], w)
		}
	}
}
