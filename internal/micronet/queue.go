package micronet

// Queue is a FIFO over a reusable backing slice. Popping advances a head
// index instead of re-slicing the buffer (`q = q[1:]` pins the backing array
// and forces append to grow a fresh one), and the buffer rewinds to its full
// capacity whenever the queue drains, so steady-state push/pop traffic does
// not allocate. The simulator's hot paths (router delivery queues, tile
// output queues, commit/drain queues) all sit on this type.
type Queue[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Empty reports whether the queue has no elements.
func (q *Queue[T]) Empty() bool { return q.head == len(q.buf) }

// Push appends v at the tail.
func (q *Queue[T]) Push(v T) { q.buf = append(q.buf, v) }

// PushFront re-inserts v at the head (retry-next-cycle paths).
func (q *Queue[T]) PushFront(v T) {
	if q.head > 0 {
		q.head--
		q.buf[q.head] = v
		return
	}
	var zero T
	q.buf = append(q.buf, zero)
	copy(q.buf[1:], q.buf)
	q.buf[0] = v
}

// Front returns the oldest element without consuming it.
func (q *Queue[T]) Front() T { return q.buf[q.head] }

// At returns the i-th element from the head (0 = Front).
func (q *Queue[T]) At(i int) T { return q.buf[q.head+i] }

// Pop consumes and returns the oldest element.
func (q *Queue[T]) Pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		// Drained: rewind so the next pushes reuse the buffer from the start.
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 64 && q.head*2 >= len(q.buf) {
		// Mostly-consumed long-lived queue: compact to bound growth.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// Filter keeps only elements for which keep returns true, preserving order.
func (q *Queue[T]) Filter(keep func(T) bool) {
	kept := q.buf[:q.head]
	for i := q.head; i < len(q.buf); i++ {
		if keep(q.buf[i]) {
			kept = append(kept, q.buf[i])
		}
	}
	var zero T
	for i := len(kept); i < len(q.buf); i++ {
		q.buf[i] = zero
	}
	q.buf = kept
}

// Reset drops all elements.
func (q *Queue[T]) Reset() {
	var zero T
	for i := q.head; i < len(q.buf); i++ {
		q.buf[i] = zero
	}
	q.buf = q.buf[:0]
	q.head = 0
}
