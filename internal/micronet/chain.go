package micronet

import "fmt"

// Chain is a unidirectional daisy chain of n nodes: node i can send toward
// node 0 (the head, typically the GT), one hop per cycle. The global status
// network's completion and commit-acknowledgment signals travel on chains
// like this — each RT or DT combines its own status with its neighbor's and
// passes the result along (paper Section 4.4).
type Chain[T any] struct {
	Name  string
	N     int
	links []*Link[T] // links[i]: node i+1 -> node i
	busy  int        // messages resident on links (O(1) Quiet)
	sent  uint64     // total messages ever sent
}

// NewChain builds a chain of n nodes (node 0 is the head).
func NewChain[T any](name string, n int) *Chain[T] {
	c := &Chain[T]{Name: name, N: n, links: make([]*Link[T], n-1)}
	for i := range c.links {
		c.links[i] = NewLink[T](fmt.Sprintf("%s %d->%d", name, i+1, i))
	}
	return c
}

// CanSend reports whether node from (1..n-1) can send toward the head.
func (c *Chain[T]) CanSend(from int) bool { return c.links[from-1].CanSend() }

// Send sends msg from node from (1..n-1) one hop toward the head.
func (c *Chain[T]) Send(from int, msg T) bool {
	if c.links[from-1].Send(msg) {
		c.busy++
		c.sent++
		return true
	}
	return false
}

// Recv peeks at the message arriving at node at (0..n-2) this cycle.
func (c *Chain[T]) Recv(at int) (T, bool) { return c.links[at].Recv() }

// Pop consumes the message arriving at node at.
func (c *Chain[T]) Pop(at int) {
	if _, ok := c.links[at].Recv(); ok {
		c.links[at].Pop()
		c.busy--
	}
}

// Propagate advances the chain one cycle. A no-op when the chain is idle.
func (c *Chain[T]) Propagate() {
	if c.busy == 0 {
		return
	}
	for _, l := range c.links {
		l.Propagate()
	}
}

// Quiet reports whether no messages are in flight. O(1) via the residency
// counter.
func (c *Chain[T]) Quiet() bool { return c.busy == 0 }

// Sent returns the total number of hop-sends on the chain.
func (c *Chain[T]) Sent() uint64 { return c.sent }

// Busy returns the number of messages currently resident on chain links.
func (c *Chain[T]) Busy() int { return c.busy }

// BiChain is a bidirectional chain of n nodes in which a message injected
// at node i is delivered to every other node, propagating one hop per cycle
// in both directions. The data status network (DSN) is a BiChain over the
// four DTs: when an executed store arrives at a DT, its LSID and block ID
// are sent to the other DTs so each can track store completion (paper
// Section 4.4).
type BiChain[T any] struct {
	Name         string
	N            int
	up           []*Link[T] // up[i]: node i+1 -> node i
	down         []*Link[T] // down[i]: node i -> node i+1
	outQ         []Queue[T]
	busy         int    // messages resident on links (O(1) Quiet)
	pendingDeliv int    // delivered messages awaiting Pop
	sent         uint64 // total broadcasts ever injected
}

// NewBiChain builds a bidirectional chain of n nodes.
func NewBiChain[T any](name string, n int) *BiChain[T] {
	b := &BiChain[T]{Name: name, N: n, outQ: make([]Queue[T], n)}
	b.up = make([]*Link[T], n-1)
	b.down = make([]*Link[T], n-1)
	for i := 0; i < n-1; i++ {
		b.up[i] = NewLink[T](fmt.Sprintf("%s up %d->%d", name, i+1, i))
		b.down[i] = NewLink[T](fmt.Sprintf("%s down %d->%d", name, i, i+1))
	}
	return b
}

// CanInject reports whether node i can broadcast this cycle: both its
// outgoing links (if present) must be free.
func (b *BiChain[T]) CanInject(i int) bool {
	if i > 0 && !b.up[i-1].CanSend() {
		return false
	}
	if i < b.N-1 && !b.down[i].CanSend() {
		return false
	}
	return true
}

// Inject broadcasts msg from node i to all other nodes.
func (b *BiChain[T]) Inject(i int, msg T) bool {
	if !b.CanInject(i) {
		return false
	}
	if i > 0 {
		b.up[i-1].Send(msg)
		b.busy++
	}
	if i < b.N-1 {
		b.down[i].Send(msg)
		b.busy++
	}
	b.sent++
	return true
}

// Deliver peeks at the oldest message delivered to node i.
func (b *BiChain[T]) Deliver(i int) (T, bool) {
	if b.outQ[i].Empty() {
		var zero T
		return zero, false
	}
	return b.outQ[i].Front(), true
}

// Pop consumes the oldest message delivered to node i.
func (b *BiChain[T]) Pop(i int) {
	if !b.outQ[i].Empty() {
		b.outQ[i].Pop()
		b.pendingDeliv--
	}
}

// Tick forwards arriving messages along the chain and delivers them. A
// message blocked by a busy forwarding link stays on its incoming link
// (backpressure), so nothing is lost under contention.
func (b *BiChain[T]) Tick() {
	if b.busy == 0 {
		return
	}
	// Upward-moving messages arrive at node i from link up[i].
	for i := 0; i < b.N-1; i++ {
		msg, ok := b.up[i].Recv()
		if !ok {
			continue
		}
		if i > 0 && !b.up[i-1].CanSend() {
			continue // forward hop busy; retry next cycle
		}
		if i > 0 {
			b.up[i-1].Send(msg)
			b.busy++
		}
		b.outQ[i].Push(msg)
		b.pendingDeliv++
		b.up[i].Pop()
		b.busy--
	}
	// Downward-moving messages arrive at node i+1 from link down[i].
	for i := b.N - 2; i >= 0; i-- {
		msg, ok := b.down[i].Recv()
		if !ok {
			continue
		}
		at := i + 1
		if at < b.N-1 && !b.down[at].CanSend() {
			continue
		}
		if at < b.N-1 {
			b.down[at].Send(msg)
			b.busy++
		}
		b.outQ[at].Push(msg)
		b.pendingDeliv++
		b.down[i].Pop()
		b.busy--
	}
}

// Propagate advances all links one cycle. A no-op when the chain is idle.
func (b *BiChain[T]) Propagate() {
	if b.busy == 0 {
		return
	}
	for _, l := range b.up {
		l.Propagate()
	}
	for _, l := range b.down {
		l.Propagate()
	}
}

// Quiet reports whether no messages are in flight. O(1) via the residency
// counter.
func (b *BiChain[T]) Quiet() bool { return b.busy == 0 }

// Pending returns the number of delivered messages awaiting Pop.
func (b *BiChain[T]) Pending() int { return b.pendingDeliv }

// Sent returns the total number of broadcasts injected on the chain.
func (b *BiChain[T]) Sent() uint64 { return b.sent }

// Busy returns the number of messages currently resident on chain links.
func (b *BiChain[T]) Busy() int { return b.busy }
