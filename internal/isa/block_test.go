package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// figure5aBlock constructs the worked example of paper Figure 5a:
//
//	R[0]  read  R4       -> N[1,L] N[2,L]
//	N[0]  movi  #0       -> N[1,R]
//	N[1]  teq            -> N[2,P] N[3,P]
//	N[2]  muli_f #4      -> N[32,L]
//	N[3]  null_t         -> N[34,L] N[34,R]
//	N[32] lw    #8       -> N[33,L]   (LSID=0)
//	N[33] mov            -> N[34,L] N[34,R]
//	N[34] sw    #0                   (LSID=1)
//	N[35] callo $func1
//
// Note N[3] and N[33] both target the store's operands; exactly one fires
// because they sit on complementary predicate paths.
func figure5aBlock() *Block {
	b := &Block{Addr: 0x10000, Name: "figure5a"}
	b.Reads[0] = ReadInst{Valid: true, GR: 4, RT0: ToLeft(1), RT1: ToLeft(2)}
	b.Insts = make([]Inst, 36)
	for i := range b.Insts {
		b.Insts[i] = Inst{Op: NOP}
	}
	b.Insts[0] = Inst{Op: MOVI, Imm: 0, T0: ToRight(1)}
	b.Insts[1] = Inst{Op: TEQ, T0: ToPred(2), T1: ToPred(3)}
	b.Insts[2] = Inst{Op: MULI, Pred: PredOnFalse, Imm: 4, T0: ToLeft(32)}
	b.Insts[3] = Inst{Op: NULL, Pred: PredOnTrue, T0: ToLeft(34), T1: ToRight(34)}
	b.Insts[32] = Inst{Op: LW, Imm: 8, LSID: 0, T0: ToLeft(33)}
	b.Insts[33] = Inst{Op: MOV, T0: ToLeft(34), T1: ToRight(34)}
	b.Insts[34] = Inst{Op: SW, Imm: 0, LSID: 1}
	b.Insts[35] = Inst{Op: CALLO, Exit: 0, Offset: 16}
	return b
}

func TestFigure5aBlockValidates(t *testing.T) {
	b := figure5aBlock()
	if err := b.Validate(); err != nil {
		t.Fatalf("figure 5a block invalid: %v", err)
	}
	if got, want := b.StoreMask(), uint32(1<<1); got != want {
		t.Errorf("store mask = %#x, want %#x", got, want)
	}
	w, s := b.OutputCounts()
	if w != 0 || s != 1 {
		t.Errorf("output counts = (%d writes, %d stores), want (0, 1)", w, s)
	}
	if got := b.NumBodyChunks(); got != 2 {
		t.Errorf("body chunks = %d, want 2 (36 instructions)", got)
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	b := figure5aBlock()
	data, err := EncodeBlock(b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(data) != 3*ChunkBytes {
		t.Fatalf("encoded size = %d, want %d (header + 2 body chunks)", len(data), 3*ChunkBytes)
	}
	got, err := DecodeBlock(data, b.Addr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.Insts, b.Insts) {
		t.Errorf("instructions do not round trip")
	}
	if !reflect.DeepEqual(got.Reads, b.Reads) {
		t.Errorf("reads do not round trip: got %+v", got.Reads[0])
	}
	if !reflect.DeepEqual(got.Writes, b.Writes) {
		t.Errorf("writes do not round trip")
	}
	if got.Flags != b.Flags {
		t.Errorf("flags = %v, want %v", got.Flags, b.Flags)
	}
}

func TestBlockValidateRejects(t *testing.T) {
	mk := func(mut func(*Block)) *Block {
		b := figure5aBlock()
		mut(b)
		return b
	}
	cases := map[string]*Block{
		"unaligned address": mk(func(b *Block) { b.Addr = 0x10001 }),
		"duplicate LSID":    mk(func(b *Block) { b.Insts[34].LSID = 0 }),
		"no branch":         mk(func(b *Block) { b.Insts[35] = Inst{Op: NOP} }),
		"target past end":   mk(func(b *Block) { b.Insts[0].T0 = ToLeft(120) }),
		"bad write target":  mk(func(b *Block) { b.Insts[0].T0 = ToWrite(3) }),
		"pred no producer":  mk(func(b *Block) { b.Insts[2].Pred = PredOnTrue; b.Insts[1].T0 = NoTarget }),
		"read no targets":   mk(func(b *Block) { b.Reads[0].RT0, b.Reads[0].RT1 = NoTarget, NoTarget }),
		"bad read register": mk(func(b *Block) { b.Reads[0].GR = 200 }),
	}
	for name, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestEncodeRejectsWrongBankRead(t *testing.T) {
	b := figure5aBlock()
	// R[0] lives on RT 0 and may only read registers r with r%4 == 0.
	b.Reads[0].GR = 5
	if _, err := EncodeBlock(b); err == nil {
		t.Fatal("expected bank-mismatch error for R[0] reading register 5")
	}
}

// randomBlock generates a structurally valid, encodable block.
func randomBlock(r *rand.Rand) *Block {
	n := 1 + r.Intn(MaxBlockInsts)
	b := &Block{Addr: uint64(r.Intn(1<<20)) * ChunkBytes, Name: "rand"}
	b.Insts = make([]Inst, n)
	for i := range b.Insts {
		b.Insts[i] = Inst{Op: NOP}
	}
	// Sprinkle ALU instructions with forward targets.
	for i := 0; i < n-1; i++ {
		if r.Intn(2) == 0 {
			tgt := i + 1 + r.Intn(n-i-1)
			b.Insts[i] = Inst{Op: ADD, T0: ToLeft(tgt)}
		}
	}
	// Memory ops with unique LSIDs.
	lsid := 0
	for i := 0; i < n-1 && lsid < MaxBlockMemOps; i++ {
		if r.Intn(8) == 0 {
			if r.Intn(2) == 0 {
				b.Insts[i] = Inst{Op: SD, LSID: lsid}
			} else {
				b.Insts[i] = Inst{Op: LD, LSID: lsid, T0: NoTarget}
			}
			lsid++
		}
	}
	// Exactly one unpredicated exit branch at the end.
	b.Insts[n-1] = Inst{Op: BRO, Exit: r.Intn(8), Offset: int32(r.Intn(1000) - 500)}
	// Reads and writes on the right banks.
	for j := 0; j < MaxBlockReads; j++ {
		if r.Intn(4) == 0 {
			b.Reads[j] = ReadInst{Valid: true, GR: r.Intn(32)*4 + j%4, RT0: ToLeft(r.Intn(n))}
		}
	}
	for j := 0; j < MaxBlockWrites; j++ {
		if r.Intn(4) == 0 {
			b.Writes[j] = WriteInst{Valid: true, GR: r.Intn(32)*4 + j%4}
		}
	}
	return b
}

func TestQuickBlockRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBlock(r)
		if err := b.Validate(); err != nil {
			t.Logf("random block invalid: %v", err)
			return false
		}
		data, err := EncodeBlock(b)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := DecodeBlock(data, b.Addr)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(got.Insts, b.Insts) &&
			reflect.DeepEqual(got.Reads, b.Reads) &&
			reflect.DeepEqual(got.Writes, b.Writes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickStoreMaskMatchesStores(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBlock(r)
		mask := b.StoreMask()
		// Every store's LSID bit is set; every set bit has a store.
		var want uint32
		for i := range b.Insts {
			if b.Insts[i].Op.IsStore() {
				want |= 1 << uint(b.Insts[i].LSID)
			}
		}
		return mask == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoordinateMapping(t *testing.T) {
	// All 128 instruction indices must map onto 16 ETs x 8 slots with no
	// collisions, and rows/cols must stay in the 4x4 array.
	seen := map[[2]int]bool{}
	for i := 0; i < MaxBlockInsts; i++ {
		et, slot := ETOf(i), SlotOf(i)
		if et < 0 || et >= NumETs || slot < 0 || slot >= SlotsPerET {
			t.Fatalf("N[%d] maps to ET %d slot %d", i, et, slot)
		}
		key := [2]int{et, slot}
		if seen[key] {
			t.Fatalf("N[%d] collides at ET %d slot %d", i, et, slot)
		}
		seen[key] = true
		row, col := ETRowCol(et)
		if row < 0 || row > 3 || col < 0 || col > 3 {
			t.Fatalf("ET %d maps to row %d col %d", et, row, col)
		}
	}
	// Same for the 32 read entries across 4 RTs x 8 slots.
	seenRT := map[[2]int]bool{}
	for j := 0; j < MaxBlockReads; j++ {
		rt, slot := RTOf(j), RTSlotOf(j)
		if rt < 0 || rt >= NumRTs || slot < 0 || slot >= 8 {
			t.Fatalf("R[%d] maps to RT %d slot %d", j, rt, slot)
		}
		key := [2]int{rt, slot}
		if seenRT[key] {
			t.Fatalf("R[%d] collides at RT %d slot %d", j, rt, slot)
		}
		seenRT[key] = true
	}
	// Cache-line interleaving: consecutive lines hit consecutive DTs.
	for line := 0; line < 16; line++ {
		if got, want := DTOfAddr(uint64(line)*64), line%4; got != want {
			t.Errorf("DTOfAddr(line %d) = %d, want %d", line, got, want)
		}
	}
	// All addresses within one line map to the same DT.
	for off := uint64(0); off < 64; off++ {
		if DTOfAddr(0x1000+off) != DTOfAddr(0x1000) {
			t.Errorf("address %#x leaves its line's DT", 0x1000+off)
		}
	}
}
