package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalInteger(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b uint64
		imm  int64
		want uint64
	}{
		{ADD, 3, 4, 0, 7},
		{SUB, 3, 4, 0, ^uint64(0)},
		{MUL, 6, 7, 0, 42},
		{DIV, 42, 6, 0, 7},
		{DIV, 42, 0, 0, 0},
		{MOD, 43, 6, 0, 1},
		{AND, 0b1100, 0b1010, 0, 0b1000},
		{OR, 0b1100, 0b1010, 0, 0b1110},
		{XOR, 0b1100, 0b1010, 0, 0b0110},
		{SLL, 1, 8, 0, 256},
		{SRL, 0x8000000000000000, 63, 0, 1},
		{SRA, ^uint64(7), 1, 0, ^uint64(3)},
		{MIN, ^uint64(0), 1, 0, ^uint64(0)},
		{MAX, ^uint64(0), 1, 0, 1},
		{TEQ, 5, 5, 0, 1},
		{TNE, 5, 5, 0, 0},
		{TLT, ^uint64(0), 0, 0, 1},
		{TLTU, ^uint64(0), 0, 0, 0},
		{TGEU, ^uint64(0), 0, 0, 1},
		{MOV, 99, 0, 0, 99},
		{ADDI, 10, 0, -3, 7},
		{MULI, 10, 0, 4, 40},
		{SLLI, 1, 0, 4, 16},
		{SRAI, ^uint64(15), 0, 2, ^uint64(3)},
		{MOVI, 0, 0, -5, ^uint64(4)},
		{TLTI, 3, 0, 4, 1},
		{GENC, 0, 0, 0xbeef, 0xbeef},
		{APPC, 0xdead, 0, 0xbeef, 0xdeadbeef},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("Eval(%s, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalFloat(t *testing.T) {
	f := math.Float64bits
	if got := Eval(FADD, f(1.5), f(2.25), 0); got != f(3.75) {
		t.Errorf("fadd = %v", math.Float64frombits(got))
	}
	if got := Eval(FMUL, f(3), f(-2), 0); got != f(-6) {
		t.Errorf("fmul = %v", math.Float64frombits(got))
	}
	if got := Eval(FDIV, f(1), f(4), 0); got != f(0.25) {
		t.Errorf("fdiv = %v", math.Float64frombits(got))
	}
	if got := Eval(FLT, f(-1), f(1), 0); got != 1 {
		t.Errorf("flt = %d", got)
	}
	if got := Eval(ITOF, ^uint64(6), 0, 0); got != f(-7) {
		t.Errorf("itof = %v", math.Float64frombits(got))
	}
	if got := Eval(FTOI, f(-7.9), 0, 0); got != ^uint64(6) {
		t.Errorf("ftoi = %d", int64(got))
	}
	if got := Eval(FTOI, f(math.NaN()), 0, 0); got != 0 {
		t.Errorf("ftoi(NaN) = %d, want 0", got)
	}
}

func TestQuickConstantChain(t *testing.T) {
	// A GENC + three APPCs must reconstruct any 64-bit constant.
	f := func(v uint64) bool {
		x := Eval(GENC, 0, 0, int64(v>>48&0xffff))
		x = Eval(APPC, x, 0, int64(v>>32&0xffff))
		x = Eval(APPC, x, 0, int64(v>>16&0xffff))
		x = Eval(APPC, x, 0, int64(v&0xffff))
		return x == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTestsAreBoolean(t *testing.T) {
	tests := []Opcode{TEQ, TNE, TLT, TLE, TGT, TGE, TLTU, TGEU, FEQ, FLT, FLE}
	f := func(a, b uint64) bool {
		for _, op := range tests {
			if v := Eval(op, a, b, 0); v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementaryTests(t *testing.T) {
	// TEQ/TNE, TLT/TGE and TLTU/TGEU are complements for all inputs — the
	// property predicated TRIPS code depends on to cover both paths.
	f := func(a, b uint64) bool {
		return Eval(TEQ, a, b, 0)+Eval(TNE, a, b, 0) == 1 &&
			Eval(TLT, a, b, 0)+Eval(TGE, a, b, 0) == 1 &&
			Eval(TLTU, a, b, 0)+Eval(TGEU, a, b, 0) == 1 &&
			Eval(TLE, a, b, 0)+Eval(TGT, a, b, 0) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemWidths(t *testing.T) {
	widths := map[Opcode]int{LB: 1, LBU: 1, LH: 2, LHU: 2, LW: 4, LWU: 4, LD: 8,
		SB: 1, SH: 2, SW: 4, SD: 8, ADD: 0}
	for op, want := range widths {
		if got := MemWidth(op); got != want {
			t.Errorf("MemWidth(%s) = %d, want %d", op, got, want)
		}
	}
	if !MemSigned(LW) || MemSigned(LWU) || MemSigned(LD) {
		t.Error("MemSigned wrong for LW/LWU/LD")
	}
}

func TestOpcodeMetadata(t *testing.T) {
	if DIV.Latency() != 24 {
		t.Errorf("integer divide latency = %d, want 24 (paper 3.4)", DIV.Latency())
	}
	if DIV.Pipelined() {
		t.Error("integer divide must be unpipelined (paper 3.4)")
	}
	if !FMUL.Pipelined() || !ADD.Pipelined() {
		t.Error("all units except divide are fully pipelined (paper 3.4)")
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		if !op.Valid() {
			t.Errorf("opcode %d has no table entry", op)
			continue
		}
		back, ok := OpcodeByName(op.String())
		if !ok || back != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), back, ok)
		}
	}
}

func TestMetadataHelpers(t *testing.T) {
	// Format strings.
	for f, want := range map[Format]string{FmtG: "G", FmtI: "I", FmtL: "L", FmtS: "S", FmtB: "B", FmtC: "C", FmtR: "R", FmtW: "W"} {
		if f.String() != want {
			t.Errorf("Format(%d).String() = %q", f, f.String())
		}
	}
	if Format(99).String() == "" {
		t.Error("unknown format should still stringify")
	}
	// Predicate and operand-kind strings.
	for p, want := range map[PredMode]string{PredNone: "", PredOnTrue: "_t", PredOnFalse: "_f"} {
		if p.String() != want {
			t.Errorf("PredMode(%d).String() = %q", p, p.String())
		}
	}
	for k, want := range map[OperandKind]string{OpNone: "none", OpLeft: "L", OpRight: "R", OpPred: "P", OpWrite: "W"} {
		if k.String() != want {
			t.Errorf("OperandKind(%d).String() = %q", k, k.String())
		}
	}
	// Classification helpers.
	if !TEQ.IsTest() || ADD.IsTest() {
		t.Error("IsTest wrong")
	}
	if !FADD.IsFloat() || ADD.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if !LD.IsMem() || !SD.IsMem() || ADD.IsMem() {
		t.Error("IsMem wrong")
	}
	if Opcode(120).Format() != FmtG || Opcode(120).Latency() != 1 {
		t.Error("invalid opcode fallbacks wrong")
	}
	// NeedsLeft / NeedsRight over the formats.
	needs := []struct {
		in          Inst
		left, right bool
	}{
		{Inst{Op: ADD}, true, true},
		{Inst{Op: MOV}, true, false},
		{Inst{Op: NULL}, false, false},
		{Inst{Op: NOP}, false, false},
		{Inst{Op: MOVI}, false, false},
		{Inst{Op: ADDI}, true, false},
		{Inst{Op: LW}, true, false},
		{Inst{Op: SW}, true, true},
		{Inst{Op: BRO}, false, false},
		{Inst{Op: RET}, true, false},
		{Inst{Op: BR}, true, false},
		{Inst{Op: GENC}, false, false},
		{Inst{Op: APPC}, true, false},
		{Inst{Op: ITOF}, true, false},
	}
	for _, n := range needs {
		if n.in.NeedsLeft() != n.left || n.in.NeedsRight() != n.right {
			t.Errorf("%s: NeedsLeft=%v NeedsRight=%v, want %v/%v",
				n.in.Op, n.in.NeedsLeft(), n.in.NeedsRight(), n.left, n.right)
		}
	}
	// IT chunk mapping.
	for c := 0; c < 5; c++ {
		if ITOfChunk(c) != c {
			t.Errorf("ITOfChunk(%d) = %d", c, ITOfChunk(c))
		}
	}
}

func TestStringsRender(t *testing.T) {
	ins := []Inst{
		{Op: ADD, T0: ToLeft(5), T1: ToRight(9)},
		{Op: ADDI, Imm: -4, T0: ToWrite(3)},
		{Op: LW, Imm: 8, LSID: 2, T0: ToLeft(1)},
		{Op: SW, Imm: -8, LSID: 3},
		{Op: BRO, Exit: 2, Offset: -100, Pred: PredOnTrue},
		{Op: GENC, Imm: 77, T0: ToPred(4)},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("empty render for %+v", in)
		}
	}
	b := &Block{Addr: 0x1000, Name: "x", Insts: []Inst{{Op: BRO}}}
	b.Reads[0] = ReadInst{Valid: true, GR: 4, RT0: ToLeft(0)}
	b.Writes[1] = WriteInst{Valid: true, GR: 5}
	if b.String() == "" || b.NumReads() != 1 || b.NumWrites() != 1 {
		t.Error("block summary helpers wrong")
	}
}
