package isa

import (
	"encoding/binary"
	"fmt"
)

// Instruction word field layouts (paper Figure 1). All instructions are 32
// bits. The primary opcode occupies bits 31:25 and the PR predicate field
// bits 24:23 in every format that has one.
//
//	G: OPCODE[31:25] PR[24:23] XOP[22:18] T1[17:9] T0[8:0]
//	I: OPCODE[31:25] PR[24:23] IMM[22:9]           T0[8:0]
//	L: OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9] T0[8:0]
//	S: OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9] 0[8:0]
//	B: OPCODE[31:25] PR[24:23] EXIT[22:20] OFFSET[19:0]
//	C: OPCODE[31:25] CONST[24:9]                   T0[8:0]
//
// This implementation leaves XOP zero: our opcode subset fits entirely in
// the 7-bit primary opcode space.
const (
	immBitsI = 14 // I-format signed immediate
	immBitsL = 9  // L/S-format signed immediate
	offBitsB = 20 // B-format signed offset (128-byte units)
)

// EncodeInst packs an instruction into its 32-bit word.
func EncodeInst(in *Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	w := uint32(in.Op) << 25
	switch in.Op.Format() {
	case FmtG:
		w |= uint32(in.Pred) << 23
		w |= in.T1.encode() << 9
		w |= in.T0.encode()
	case FmtI:
		if in.T1.Valid() {
			return 0, fmt.Errorf("isa: encode: I-format %s has no second target", in.Op)
		}
		w |= uint32(in.Pred) << 23
		imm, err := fitSigned(in.Imm, immBitsI, "I-format immediate")
		if err != nil {
			return 0, err
		}
		w |= imm << 9
		w |= in.T0.encode()
	case FmtL, FmtS:
		if in.T1.Valid() {
			return 0, fmt.Errorf("isa: encode: %s-format %s has no second target", in.Op.Format(), in.Op)
		}
		if in.Op.Format() == FmtS && in.T0.Valid() {
			return 0, fmt.Errorf("isa: encode: stores have no targets")
		}
		w |= uint32(in.Pred) << 23
		if in.LSID < 0 || in.LSID >= MaxBlockMemOps {
			return 0, fmt.Errorf("isa: encode: LSID %d out of range", in.LSID)
		}
		w |= uint32(in.LSID) << 18
		imm, err := fitSigned(in.Imm, immBitsL, "L/S-format immediate")
		if err != nil {
			return 0, err
		}
		w |= imm << 9
		if in.Op.Format() == FmtL {
			w |= in.T0.encode()
		}
	case FmtB:
		if in.T0.Valid() || in.T1.Valid() {
			return 0, fmt.Errorf("isa: encode: branches have no targets")
		}
		w |= uint32(in.Pred) << 23
		if in.Exit < 0 || in.Exit > 7 {
			return 0, fmt.Errorf("isa: encode: exit %d out of range", in.Exit)
		}
		w |= uint32(in.Exit) << 20
		off, err := fitSigned(int64(in.Offset), offBitsB, "branch offset")
		if err != nil {
			return 0, err
		}
		w |= off
	case FmtC:
		if in.T1.Valid() {
			return 0, fmt.Errorf("isa: encode: C-format %s has no second target", in.Op)
		}
		if in.Imm < 0 || in.Imm > 0xffff {
			return 0, fmt.Errorf("isa: encode: C-format constant %d out of range", in.Imm)
		}
		w |= uint32(in.Imm) << 9
		w |= in.T0.encode()
	default:
		return 0, fmt.Errorf("isa: encode: opcode %s is not a body-chunk format", in.Op)
	}
	return w, nil
}

// DecodeInst unpacks a 32-bit instruction word.
func DecodeInst(w uint32) (Inst, error) {
	op := Opcode(w >> 25)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d in word %#08x", op, w)
	}
	in := Inst{Op: op}
	switch op.Format() {
	case FmtG:
		in.Pred = PredMode(w >> 23 & 3)
		in.T1 = decodeTarget(w >> 9 & 0x1ff)
		in.T0 = decodeTarget(w & 0x1ff)
	case FmtI:
		in.Pred = PredMode(w >> 23 & 3)
		in.Imm = signExtend(w>>9, immBitsI)
		in.T0 = decodeTarget(w & 0x1ff)
	case FmtL, FmtS:
		in.Pred = PredMode(w >> 23 & 3)
		in.LSID = int(w >> 18 & 0x1f)
		in.Imm = signExtend(w>>9, immBitsL)
		if op.Format() == FmtL {
			in.T0 = decodeTarget(w & 0x1ff)
		}
	case FmtB:
		in.Pred = PredMode(w >> 23 & 3)
		in.Exit = int(w >> 20 & 7)
		in.Offset = int32(signExtend(w, offBitsB))
	case FmtC:
		in.Imm = int64(w >> 9 & 0xffff)
		in.T0 = decodeTarget(w & 0x1ff)
	}
	return in, nil
}

func fitSigned(v int64, bits int, what string) (uint32, error) {
	min := -(int64(1) << (bits - 1))
	max := int64(1)<<(bits-1) - 1
	if v < min || v > max {
		return 0, fmt.Errorf("isa: encode: %s %d does not fit in %d bits", what, v, bits)
	}
	return uint32(v) & (1<<bits - 1), nil
}

func signExtend(w uint32, bits int) int64 {
	v := int64(w & (1<<bits - 1))
	if v&(1<<(bits-1)) != 0 {
		v -= 1 << bits
	}
	return v
}

// Header chunk layout (128 bytes, paper Section 2.1):
//
//	[0:4]    store mask (little endian)
//	[4]      block flags
//	[5]      body chunk count (1..4)
//	[6:8]    instruction count (little endian uint16)
//	[8:104]  32 read records, 3 bytes each: V(1) GR5(5) RT1(9) RT0(9)
//	[104:128] 32 write records bit-packed at 6 bits: V(1) GR5(5)
//
// GR5 is the five-bit in-bank register index of Figure 1: read/write entry
// j lives on RT j%4, which holds architectural registers r with r%4 == j%4,
// so GR5 = r/4 and the full register index is GR5*4 + j%4.
const (
	hdrStoreMask = 0
	hdrFlags     = 4
	hdrChunks    = 5
	hdrInstCount = 6
	hdrReads     = 8
	hdrWrites    = 104
)

// EncodeBlock serializes a block into its chunks: one 128-byte header chunk
// followed by NumBodyChunks 128-byte body chunks of 32 instruction words
// each, NOP-padded.
func EncodeBlock(b *Block) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nBody := b.NumBodyChunks()
	out := make([]byte, ChunkBytes*(1+nBody))
	hdr := out[:ChunkBytes]
	binary.LittleEndian.PutUint32(hdr[hdrStoreMask:], b.StoreMask())
	hdr[hdrFlags] = byte(b.Flags)
	hdr[hdrChunks] = byte(nBody)
	binary.LittleEndian.PutUint16(hdr[hdrInstCount:], uint16(len(b.Insts)))
	for j := range b.Reads {
		r := &b.Reads[j]
		rec := uint32(0)
		if r.Valid {
			if r.GR%4 != j%4 {
				return nil, fmt.Errorf("isa: encode: block %q R[%d] reads register %d, which lives on RT %d not RT %d", b.Name, j, r.GR, r.GR%4, j%4)
			}
			rec = 1<<23 | uint32(r.GR/4)<<18 | r.RT1.encode()<<9 | r.RT0.encode()
		}
		off := hdrReads + 3*j
		hdr[off] = byte(rec)
		hdr[off+1] = byte(rec >> 8)
		hdr[off+2] = byte(rec >> 16)
	}
	for j := range b.Writes {
		w := &b.Writes[j]
		if !w.Valid {
			continue
		}
		if w.GR%4 != j%4 {
			return nil, fmt.Errorf("isa: encode: block %q W[%d] writes register %d, which lives on RT %d not RT %d", b.Name, j, w.GR, w.GR%4, j%4)
		}
		rec := uint32(1<<5 | w.GR/4)
		putBits6(hdr[hdrWrites:], j, rec)
	}
	for i := range b.Insts {
		w, err := EncodeInst(&b.Insts[i])
		if err != nil {
			return nil, fmt.Errorf("isa: encode: block %q N[%d]: %v", b.Name, i, err)
		}
		chunk := 1 + i/BodyChunkInsts
		off := chunk*ChunkBytes + 4*(i%BodyChunkInsts)
		binary.LittleEndian.PutUint32(out[off:], w)
	}
	// Unfilled body slots stay zero, which decodes as NOP.
	return out, nil
}

// HeaderInfo is the decoded contents of a header chunk, as seen by IT 0
// and the GT's tag array.
type HeaderInfo struct {
	StoreMask  uint32
	Flags      BlockFlags
	BodyChunks int
	NumInsts   int
	Reads      [MaxBlockReads]ReadInst
	Writes     [MaxBlockWrites]WriteInst
}

// DecodeHeaderChunk parses one 128-byte header chunk.
func DecodeHeaderChunk(hdr []byte) (*HeaderInfo, error) {
	if len(hdr) < ChunkBytes {
		return nil, fmt.Errorf("isa: decode: header chunk is %d bytes, need %d", len(hdr), ChunkBytes)
	}
	nBody := int(hdr[hdrChunks])
	if nBody < 1 || nBody > MaxBodyChunks {
		return nil, fmt.Errorf("isa: decode: body chunk count %d out of range", nBody)
	}
	nInst := int(binary.LittleEndian.Uint16(hdr[hdrInstCount:]))
	if nInst > nBody*BodyChunkInsts || nInst > MaxBlockInsts {
		return nil, fmt.Errorf("isa: decode: instruction count %d exceeds %d body chunks", nInst, nBody)
	}
	h := &HeaderInfo{
		StoreMask:  binary.LittleEndian.Uint32(hdr[hdrStoreMask:]),
		Flags:      BlockFlags(hdr[hdrFlags]),
		BodyChunks: nBody,
		NumInsts:   nInst,
	}
	for j := range h.Reads {
		off := hdrReads + 3*j
		rec := uint32(hdr[off]) | uint32(hdr[off+1])<<8 | uint32(hdr[off+2])<<16
		if rec>>23&1 == 0 {
			continue
		}
		h.Reads[j] = ReadInst{
			Valid: true,
			GR:    int(rec>>18&0x1f)*4 + j%4,
			RT1:   decodeTarget(rec >> 9 & 0x1ff),
			RT0:   decodeTarget(rec & 0x1ff),
		}
	}
	for j := range h.Writes {
		rec := getBits6(hdr[hdrWrites:], j)
		if rec>>5&1 == 0 {
			continue
		}
		h.Writes[j] = WriteInst{Valid: true, GR: int(rec&0x1f)*4 + j%4}
	}
	return h, nil
}

// DecodeBodyChunk parses one 128-byte body chunk into its 32 instruction
// slots.
func DecodeBodyChunk(data []byte) ([BodyChunkInsts]Inst, error) {
	var out [BodyChunkInsts]Inst
	if len(data) < ChunkBytes {
		return out, fmt.Errorf("isa: decode: body chunk is %d bytes, need %d", len(data), ChunkBytes)
	}
	for i := 0; i < BodyChunkInsts; i++ {
		w := binary.LittleEndian.Uint32(data[4*i:])
		in, err := DecodeInst(w)
		if err != nil {
			return out, fmt.Errorf("isa: decode: chunk position %d: %v", i, err)
		}
		out[i] = in
	}
	return out, nil
}

// DecodeBlock parses the chunks produced by EncodeBlock. addr becomes the
// block's address.
func DecodeBlock(data []byte, addr uint64) (*Block, error) {
	if len(data) < ChunkBytes {
		return nil, fmt.Errorf("isa: decode: %d bytes is shorter than a header chunk", len(data))
	}
	h, err := DecodeHeaderChunk(data[:ChunkBytes])
	if err != nil {
		return nil, err
	}
	want := ChunkBytes * (1 + h.BodyChunks)
	if len(data) < want {
		return nil, fmt.Errorf("isa: decode: have %d bytes, need %d for %d body chunks", len(data), want, h.BodyChunks)
	}
	b := &Block{
		Addr:   addr,
		Flags:  h.Flags,
		Reads:  h.Reads,
		Writes: h.Writes,
		Insts:  make([]Inst, h.NumInsts),
	}
	for c := 0; c < h.BodyChunks; c++ {
		insts, err := DecodeBodyChunk(data[(1+c)*ChunkBytes : (2+c)*ChunkBytes])
		if err != nil {
			return nil, err
		}
		for p := 0; p < BodyChunkInsts; p++ {
			if i := c*BodyChunkInsts + p; i < h.NumInsts {
				b.Insts[i] = insts[p]
			}
		}
	}
	// Re-derive the store mask and cross-check against the header: a
	// mismatch means the chunks were corrupted.
	if got := b.StoreMask(); got != h.StoreMask {
		return nil, fmt.Errorf("isa: decode: store mask %#08x does not match header %#08x", got, h.StoreMask)
	}
	return b, nil
}

// putBits6 writes the 6-bit record v at index j of a bit-packed array.
func putBits6(buf []byte, j int, v uint32) {
	bit := j * 6
	for k := 0; k < 6; k++ {
		if v>>k&1 != 0 {
			buf[(bit+k)/8] |= 1 << uint((bit+k)%8)
		}
	}
}

func getBits6(buf []byte, j int) uint32 {
	bit := j * 6
	var v uint32
	for k := 0; k < 6; k++ {
		if buf[(bit+k)/8]>>uint((bit+k)%8)&1 != 0 {
			v |= 1 << k
		}
	}
	return v
}
