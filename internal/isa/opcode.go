// Package isa implements the TRIPS EDGE instruction set architecture:
// 32-bit instruction formats (paper Figure 1), 128-instruction blocks with
// header chunks (paper Section 2.1), binary encoding/decoding of blocks into
// 128-byte chunks, and the arithmetic semantics shared by the execution
// tiles and the golden-model interpreter.
//
// The two defining EDGE properties are visible directly in the types here:
// block-atomic execution (Block is the unit of fetch/execute/commit) and
// direct instruction communication (Inst carries Targets naming consumer
// instructions, not register names).
package isa

import "fmt"

// Format identifies the encoding format of an instruction (paper Figure 1).
type Format uint8

const (
	FmtG Format = iota // general: OPCODE PR XOP T1 T0
	FmtI               // immediate: OPCODE PR IMM T0
	FmtL               // load: OPCODE PR LSID IMM T0
	FmtS               // store: OPCODE PR LSID IMM
	FmtB               // branch: OPCODE PR EXIT OFFSET
	FmtC               // constant: OPCODE CONST T0
	FmtR               // read (header): V GR RT1 RT0
	FmtW               // write (header): V GR
)

func (f Format) String() string {
	switch f {
	case FmtG:
		return "G"
	case FmtI:
		return "I"
	case FmtL:
		return "L"
	case FmtS:
		return "S"
	case FmtB:
		return "B"
	case FmtC:
		return "C"
	case FmtR:
		return "R"
	case FmtW:
		return "W"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// Opcode is a TRIPS primary opcode. The 7-bit encoding space (paper
// Figure 1) is partitioned by format.
type Opcode uint8

const (
	NOP Opcode = iota

	// G-format integer ALU operations. Operand A is the left operand,
	// operand B the right operand.
	ADD
	SUB
	MUL
	DIV // 24-cycle unpipelined integer divide (paper Section 3.4)
	MOD
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	MIN
	MAX

	// G-format test operations. They produce 0 or 1 and typically target
	// predicate fields of consumers.
	TEQ
	TNE
	TLT
	TLE
	TGT
	TGE
	TLTU
	TGEU

	// G-format data movement. MOV forwards its left operand to its
	// targets; it is the fanout instruction (paper Section 5.4 "fanout
	// ops"). NULL produces a nullified token used to satisfy the
	// block-output constraint on untaken predicate paths (Section 2.1).
	MOV
	NULL

	// G-format floating point (64-bit IEEE). Fully pipelined (Section 3.4).
	FADD
	FSUB
	FMUL
	FDIV
	FEQ
	FLT
	FLE
	ITOF
	FTOI

	// I-format immediate ALU operations.
	ADDI
	SUBI
	MULI
	DIVI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	TEQI
	TNEI
	TLTI
	TGEI
	MOVI // generate a small signed immediate

	// L-format loads. Address = left operand + IMM. The loaded value is
	// routed from the DT to the load's targets.
	LB
	LBU
	LH
	LHU
	LW
	LWU
	LD

	// S-format stores. Address = left operand + IMM, data = right operand.
	SB
	SH
	SW
	SD

	// B-format block-exit branches. Exactly one fires per block execution.
	BRO   // branch to block at PC + offset
	CALLO // call: branch and write return address to the link register write
	RET   // return: branch to left operand (address arrives as operand)
	BR    // branch to left operand (computed target)

	// C-format constant generators. GENC places a zero-extended 16-bit
	// constant; APPC shifts the left operand up 16 bits and ORs the
	// constant in, so a chain of one GENC plus three APPCs builds any
	// 64-bit constant.
	GENC
	APPC

	numOpcodes
)

// opInfo is the static metadata table consulted by the decoder, the
// execution tiles, and the scheduler.
type opInfo struct {
	name    string
	format  Format
	latency int  // execution latency in cycles
	writesP bool // result is a predicate-style boolean
	isTest  bool
}

var opTable = [numOpcodes]opInfo{
	NOP:   {"nop", FmtG, 1, false, false},
	ADD:   {"add", FmtG, 1, false, false},
	SUB:   {"sub", FmtG, 1, false, false},
	MUL:   {"mul", FmtG, 3, false, false},
	DIV:   {"div", FmtG, 24, false, false},
	MOD:   {"mod", FmtG, 24, false, false},
	AND:   {"and", FmtG, 1, false, false},
	OR:    {"or", FmtG, 1, false, false},
	XOR:   {"xor", FmtG, 1, false, false},
	SLL:   {"sll", FmtG, 1, false, false},
	SRL:   {"srl", FmtG, 1, false, false},
	SRA:   {"sra", FmtG, 1, false, false},
	MIN:   {"min", FmtG, 1, false, false},
	MAX:   {"max", FmtG, 1, false, false},
	TEQ:   {"teq", FmtG, 1, true, true},
	TNE:   {"tne", FmtG, 1, true, true},
	TLT:   {"tlt", FmtG, 1, true, true},
	TLE:   {"tle", FmtG, 1, true, true},
	TGT:   {"tgt", FmtG, 1, true, true},
	TGE:   {"tge", FmtG, 1, true, true},
	TLTU:  {"tltu", FmtG, 1, true, true},
	TGEU:  {"tgeu", FmtG, 1, true, true},
	MOV:   {"mov", FmtG, 1, false, false},
	NULL:  {"null", FmtG, 1, false, false},
	FADD:  {"fadd", FmtG, 4, false, false},
	FSUB:  {"fsub", FmtG, 4, false, false},
	FMUL:  {"fmul", FmtG, 4, false, false},
	FDIV:  {"fdiv", FmtG, 12, false, false},
	FEQ:   {"feq", FmtG, 2, true, true},
	FLT:   {"flt", FmtG, 2, true, true},
	FLE:   {"fle", FmtG, 2, true, true},
	ITOF:  {"itof", FmtG, 3, false, false},
	FTOI:  {"ftoi", FmtG, 3, false, false},
	ADDI:  {"addi", FmtI, 1, false, false},
	SUBI:  {"subi", FmtI, 1, false, false},
	MULI:  {"muli", FmtI, 3, false, false},
	DIVI:  {"divi", FmtI, 24, false, false},
	ANDI:  {"andi", FmtI, 1, false, false},
	ORI:   {"ori", FmtI, 1, false, false},
	XORI:  {"xori", FmtI, 1, false, false},
	SLLI:  {"slli", FmtI, 1, false, false},
	SRLI:  {"srli", FmtI, 1, false, false},
	SRAI:  {"srai", FmtI, 1, false, false},
	TEQI:  {"teqi", FmtI, 1, true, true},
	TNEI:  {"tnei", FmtI, 1, true, true},
	TLTI:  {"tlti", FmtI, 1, true, true},
	TGEI:  {"tgei", FmtI, 1, true, true},
	MOVI:  {"movi", FmtI, 1, false, false},
	LB:    {"lb", FmtL, 2, false, false},
	LBU:   {"lbu", FmtL, 2, false, false},
	LH:    {"lh", FmtL, 2, false, false},
	LHU:   {"lhu", FmtL, 2, false, false},
	LW:    {"lw", FmtL, 2, false, false},
	LWU:   {"lwu", FmtL, 2, false, false},
	LD:    {"ld", FmtL, 2, false, false},
	SB:    {"sb", FmtS, 1, false, false},
	SH:    {"sh", FmtS, 1, false, false},
	SW:    {"sw", FmtS, 1, false, false},
	SD:    {"sd", FmtS, 1, false, false},
	BRO:   {"bro", FmtB, 1, false, false},
	CALLO: {"callo", FmtB, 1, false, false},
	RET:   {"ret", FmtB, 1, false, false},
	BR:    {"br", FmtB, 1, false, false},
	GENC:  {"genc", FmtC, 1, false, false},
	APPC:  {"appc", FmtC, 1, false, false},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes && opTable[op].name != "" }

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op%d", uint8(op))
	}
	return opTable[op].name
}

// Format returns the encoding format of op.
func (op Opcode) Format() Format {
	if !op.Valid() {
		return FmtG
	}
	return opTable[op].format
}

// Latency returns the execution latency of op in cycles. All functional
// units are fully pipelined except integer divide (paper Section 3.4).
func (op Opcode) Latency() int {
	if !op.Valid() {
		return 1
	}
	return opTable[op].latency
}

// Pipelined reports whether the functional unit for op accepts a new
// operation every cycle. Only the 24-cycle integer divide is unpipelined.
func (op Opcode) Pipelined() bool { return op != DIV && op != MOD && op != DIVI }

// IsTest reports whether op is a test instruction producing a 0/1 result.
func (op Opcode) IsTest() bool { return op.Valid() && opTable[op].isTest }

// IsLoad reports whether op is a memory load.
func (op Opcode) IsLoad() bool { return op >= LB && op <= LD }

// IsStore reports whether op is a memory store.
func (op Opcode) IsStore() bool { return op >= SB && op <= SD }

// IsMem reports whether op is a load or store.
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a block-exit branch.
func (op Opcode) IsBranch() bool { return op.Format() == FmtB }

// IsFloat reports whether op executes on the floating-point unit.
func (op Opcode) IsFloat() bool { return op >= FADD && op <= FTOI }

// opcodeByName maps mnemonics back to opcodes for the assembler.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// OpcodeByName returns the opcode with the given assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}
