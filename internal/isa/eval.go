package isa

import "math"

// Eval computes the result of an ALU-class instruction given its left
// operand a, right operand b, and immediate. For I-format operations the
// immediate supplies the right operand; for C-format operations it supplies
// the constant. Memory and branch opcodes are not evaluated here — their
// effects belong to the data tiles and global tile.
//
// Division by zero produces zero (the prototype raises no arithmetic
// exceptions inside a block; a real kernel would detect it architecturally).
func Eval(op Opcode, a, b uint64, imm int64) uint64 {
	switch op {
	case NOP, NULL:
		return 0
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return uint64(int64(a) * int64(b))
	case DIV:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case MOD:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SLL:
		return a << (b & 63)
	case SRL:
		return a >> (b & 63)
	case SRA:
		return uint64(int64(a) >> (b & 63))
	case MIN:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case MAX:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case TEQ:
		return boolVal(a == b)
	case TNE:
		return boolVal(a != b)
	case TLT:
		return boolVal(int64(a) < int64(b))
	case TLE:
		return boolVal(int64(a) <= int64(b))
	case TGT:
		return boolVal(int64(a) > int64(b))
	case TGE:
		return boolVal(int64(a) >= int64(b))
	case TLTU:
		return boolVal(a < b)
	case TGEU:
		return boolVal(a >= b)
	case MOV:
		return a
	case FADD:
		return f2u(u2f(a) + u2f(b))
	case FSUB:
		return f2u(u2f(a) - u2f(b))
	case FMUL:
		return f2u(u2f(a) * u2f(b))
	case FDIV:
		return f2u(u2f(a) / u2f(b))
	case FEQ:
		return boolVal(u2f(a) == u2f(b))
	case FLT:
		return boolVal(u2f(a) < u2f(b))
	case FLE:
		return boolVal(u2f(a) <= u2f(b))
	case ITOF:
		return f2u(float64(int64(a)))
	case FTOI:
		f := u2f(a)
		if math.IsNaN(f) {
			return 0
		}
		return uint64(int64(f))
	case ADDI:
		return a + uint64(imm)
	case SUBI:
		return a - uint64(imm)
	case MULI:
		return uint64(int64(a) * imm)
	case DIVI:
		if imm == 0 {
			return 0
		}
		return uint64(int64(a) / imm)
	case ANDI:
		return a & uint64(imm)
	case ORI:
		return a | uint64(imm)
	case XORI:
		return a ^ uint64(imm)
	case SLLI:
		return a << (uint64(imm) & 63)
	case SRLI:
		return a >> (uint64(imm) & 63)
	case SRAI:
		return uint64(int64(a) >> (uint64(imm) & 63))
	case TEQI:
		return boolVal(int64(a) == imm)
	case TNEI:
		return boolVal(int64(a) != imm)
	case TLTI:
		return boolVal(int64(a) < imm)
	case TGEI:
		return boolVal(int64(a) >= imm)
	case MOVI:
		return uint64(imm)
	case GENC:
		return uint64(imm) & 0xffff
	case APPC:
		return a<<16 | uint64(imm)&0xffff
	}
	return 0
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func u2f(u uint64) float64 { return math.Float64frombits(u) }
func f2u(f float64) uint64 { return math.Float64bits(f) }

// MemWidth returns the access width in bytes of a load or store opcode.
func MemWidth(op Opcode) int {
	switch op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, LWU, SW:
		return 4
	case LD, SD:
		return 8
	}
	return 0
}

// MemSigned reports whether a load sign-extends its result.
func MemSigned(op Opcode) bool {
	switch op {
	case LB, LH, LW:
		return true
	}
	return false
}
