package isa

import (
	"fmt"
)

// BlockFlags is the block execution-mode control state held in the header
// chunk (paper Section 2.1).
type BlockFlags uint8

const (
	// FlagSpeculativeLoads permits aggressive load issue before earlier
	// stores resolve, guarded by the DT dependence predictor.
	FlagSpeculativeLoads BlockFlags = 1 << iota
	// FlagBarrier forces the block to execute non-speculatively (used by
	// configuration and uncacheable-access blocks).
	FlagBarrier
)

// Block is one TRIPS block: the atomic unit of fetch, execution and commit
// (paper Section 2). A block has a header chunk — up to 32 reads, up to 32
// writes, a 32-bit store mask and flags — and up to 128 body instructions
// in up to four 32-instruction body chunks.
type Block struct {
	// Addr is the block's virtual address. Blocks are 128-byte aligned.
	Addr uint64
	// Name is an optional label used by the assembler and disassembler.
	Name string

	Flags  BlockFlags
	Reads  [MaxBlockReads]ReadInst
	Writes [MaxBlockWrites]WriteInst
	// Insts holds the body instructions; index i is N[i]. Length must not
	// exceed MaxBlockInsts.
	Insts []Inst
}

// StoreMask computes the 32-bit LSID bit mask that marks which of the
// block's memory operations are stores. The mask is carried in the header
// chunk and broadcast to the DTs at dispatch so they can detect store
// completion (paper Sections 2.1 and 4.4).
func (b *Block) StoreMask() uint32 {
	var m uint32
	for i := range b.Insts {
		if b.Insts[i].Op.IsStore() {
			m |= 1 << uint(b.Insts[i].LSID)
		}
	}
	return m
}

// NumBodyChunks returns how many 32-instruction body chunks the block
// occupies (1..4). Every block has at least one body chunk.
func (b *Block) NumBodyChunks() int {
	n := (len(b.Insts) + BodyChunkInsts - 1) / BodyChunkInsts
	if n == 0 {
		n = 1
	}
	return n
}

// NumReads and NumWrites count the valid header instructions.
func (b *Block) NumReads() int {
	n := 0
	for i := range b.Reads {
		if b.Reads[i].Valid {
			n++
		}
	}
	return n
}

func (b *Block) NumWrites() int {
	n := 0
	for i := range b.Writes {
		if b.Writes[i].Valid {
			n++
		}
	}
	return n
}

// OutputCounts returns the number of block outputs the hardware must
// observe before declaring the block complete: register writes, stores and
// exactly one branch (paper Section 4.4). All executions of the block must
// produce exactly these counts, with nullified writes and stores standing
// in on untaken predicate paths (Section 2.1).
func (b *Block) OutputCounts() (writes, stores int) {
	ws := b.NumWrites()
	var st uint32 = b.StoreMask()
	n := 0
	for m := st; m != 0; m &= m - 1 {
		n++
	}
	return ws, n
}

// Validate checks the static block constraints of Section 2.1:
// at most 128 instructions, at most 32 memory operations with distinct
// in-range LSIDs, at most 32 reads and writes, at least one branch, and
// well-formed target indices.
func (b *Block) Validate() error {
	if len(b.Insts) > MaxBlockInsts {
		return fmt.Errorf("isa: block %q has %d instructions; max %d", b.Name, len(b.Insts), MaxBlockInsts)
	}
	if b.Addr%ChunkBytes != 0 {
		return fmt.Errorf("isa: block %q address %#x not 128-byte aligned", b.Name, b.Addr)
	}
	var lsids uint64
	branches := 0
	for i := range b.Insts {
		in := &b.Insts[i]
		if !in.Op.Valid() {
			return fmt.Errorf("isa: block %q N[%d]: invalid opcode %d", b.Name, i, in.Op)
		}
		if in.Op.IsMem() {
			if in.LSID < 0 || in.LSID >= MaxBlockMemOps {
				return fmt.Errorf("isa: block %q N[%d]: LSID %d out of range", b.Name, i, in.LSID)
			}
			bit := uint64(1) << uint(in.LSID)
			if lsids&bit != 0 {
				return fmt.Errorf("isa: block %q N[%d]: duplicate LSID %d", b.Name, i, in.LSID)
			}
			lsids |= bit
		}
		if in.Op.IsBranch() {
			branches++
			if in.Exit < 0 || in.Exit > 7 {
				return fmt.Errorf("isa: block %q N[%d]: exit %d out of range", b.Name, i, in.Exit)
			}
		}
		for _, t := range in.Targets() {
			if err := b.checkTarget(t); err != nil {
				return fmt.Errorf("isa: block %q N[%d]: %v", b.Name, i, err)
			}
		}
		if in.Pred.Predicated() && !hasPredProducer(b, i) {
			return fmt.Errorf("isa: block %q N[%d]: predicated but no producer targets its predicate", b.Name, i)
		}
	}
	if branches == 0 {
		return fmt.Errorf("isa: block %q has no exit branch", b.Name)
	}
	for j := range b.Reads {
		r := &b.Reads[j]
		if !r.Valid {
			continue
		}
		if r.GR < 0 || r.GR >= NumArchRegs {
			return fmt.Errorf("isa: block %q R[%d]: register %d out of range", b.Name, j, r.GR)
		}
		if !r.RT0.Valid() && !r.RT1.Valid() {
			return fmt.Errorf("isa: block %q R[%d]: read with no targets", b.Name, j)
		}
		for _, t := range []Target{r.RT0, r.RT1} {
			if t.Valid() {
				if err := b.checkTarget(t); err != nil {
					return fmt.Errorf("isa: block %q R[%d]: %v", b.Name, j, err)
				}
			}
		}
	}
	for j := range b.Writes {
		w := &b.Writes[j]
		if w.Valid && (w.GR < 0 || w.GR >= NumArchRegs) {
			return fmt.Errorf("isa: block %q W[%d]: register %d out of range", b.Name, j, w.GR)
		}
	}
	return nil
}

// checkTarget validates a single target against the block's shape.
func (b *Block) checkTarget(t Target) error {
	if t.IsWrite() {
		if t.Index < 0 || t.Index >= MaxBlockWrites {
			return fmt.Errorf("write target %d out of range", t.Index)
		}
		if !b.Writes[t.Index].Valid {
			return fmt.Errorf("target %s names an invalid write entry", t)
		}
		return nil
	}
	if t.Index < 0 || t.Index >= MaxBlockInsts {
		return fmt.Errorf("target index %d out of range", t.Index)
	}
	if t.Index >= len(b.Insts) {
		return fmt.Errorf("target %s beyond block end", t)
	}
	return nil
}

func hasPredProducer(b *Block, idx int) bool {
	for i := range b.Insts {
		for _, t := range b.Insts[i].Targets() {
			if t.Index == idx && t.Kind == OpPred {
				return true
			}
		}
	}
	for j := range b.Reads {
		r := &b.Reads[j]
		if !r.Valid {
			continue
		}
		for _, t := range []Target{r.RT0, r.RT1} {
			if t.Valid() && t.Index == idx && t.Kind == OpPred {
				return true
			}
		}
	}
	return false
}

// String implements fmt.Stringer for debugging dumps.
func (b *Block) String() string {
	return fmt.Sprintf("block %q @%#x: %d insts, %d reads, %d writes, mask %#08x",
		b.Name, b.Addr, len(b.Insts), b.NumReads(), b.NumWrites(), b.StoreMask())
}
