package isa

import (
	"fmt"
	"strings"
)

// Architectural constants of the TRIPS prototype (paper Sections 2-3).
const (
	MaxBlockInsts  = 128 // instructions per block
	MaxBlockReads  = 32  // read instructions in the header chunk
	MaxBlockWrites = 32  // write instructions in the header chunk
	MaxBlockMemOps = 32  // loads+stores per block (LSID space)
	NumArchRegs    = 128 // architectural registers per thread
	ChunkBytes     = 128 // bytes per chunk (header or body)
	BodyChunkInsts = 32  // instructions per body chunk
	MaxBodyChunks  = 4   // body chunks per block

	NumETs = 16 // execution tiles per core
	NumRTs = 4  // register tiles per core
	NumDTs = 4  // data tiles per core
	NumITs = 5  // instruction tiles per core

	SlotsPerET = 8 // reservation stations per ET per block (8 blocks x 8 = 64)
)

// OperandKind selects which operand field of a consumer a routed value
// fills: left, right, or predicate (paper Section 2.2, the two type bits
// of the nine-bit target specifier), or a header write-queue entry.
type OperandKind uint8

const (
	OpNone OperandKind = iota
	OpLeft
	OpRight
	OpPred
	// OpWrite routes the value to header write-queue entry Index (a block
	// register output). On the wire it shares type code 00 with "no
	// target": index 0 is no target, index j+1 is write entry j.
	OpWrite
)

func (k OperandKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpLeft:
		return "L"
	case OpRight:
		return "R"
	case OpPred:
		return "P"
	case OpWrite:
		return "W"
	}
	return "?"
}

// Target is the nine-bit target specifier of Figure 1: seven bits of
// consumer index within the block plus two bits of operand kind. The zero
// Target means "no target".
type Target struct {
	Index int // consumer instruction index 0..127, or write entry 0..31
	Kind  OperandKind
}

// NoTarget is the absent target.
var NoTarget = Target{}

// Valid reports whether t names a consumer.
func (t Target) Valid() bool { return t.Kind != OpNone }

// IsWrite reports whether t names a header write-queue entry.
func (t Target) IsWrite() bool { return t.Kind == OpWrite }

// ToLeft, ToRight and ToPred construct operand targets; ToWrite constructs
// a register-output target naming write-queue entry j.
func ToLeft(i int) Target  { return Target{Index: i, Kind: OpLeft} }
func ToRight(i int) Target { return Target{Index: i, Kind: OpRight} }
func ToPred(i int) Target  { return Target{Index: i, Kind: OpPred} }
func ToWrite(j int) Target { return Target{Index: j, Kind: OpWrite} }

func (t Target) String() string {
	switch t.Kind {
	case OpNone:
		return "-"
	case OpWrite:
		return fmt.Sprintf("W[%d]", t.Index)
	default:
		return fmt.Sprintf("N[%d,%s]", t.Index, t.Kind)
	}
}

// encode packs t into the nine-bit wire format.
func (t Target) encode() uint32 {
	switch t.Kind {
	case OpNone:
		return 0
	case OpWrite:
		return uint32(t.Index+1) & 0x7f // type 00, index j+1
	default:
		return uint32(t.Kind)<<7 | uint32(t.Index)&0x7f
	}
}

func decodeTarget(v uint32) Target {
	k := OperandKind(v >> 7 & 3)
	if k == OpNone {
		idx := int(v & 0x7f)
		if idx == 0 {
			return NoTarget
		}
		return Target{Index: idx - 1, Kind: OpWrite}
	}
	return Target{Index: int(v & 0x7f), Kind: k}
}

// PredMode is the two-bit PR field: whether an instruction waits for a
// predicate operand and which polarity enables it.
type PredMode uint8

const (
	PredNone    PredMode = 0 // not predicated
	PredOnFalse PredMode = 2 // executes if predicate == 0 (p_f)
	PredOnTrue  PredMode = 3 // executes if predicate != 0 (p_t)
)

func (p PredMode) String() string {
	switch p {
	case PredNone:
		return ""
	case PredOnFalse:
		return "_f"
	case PredOnTrue:
		return "_t"
	}
	return "_?"
}

// Predicated reports whether the instruction requires a predicate operand.
func (p PredMode) Predicated() bool { return p == PredOnFalse || p == PredOnTrue }

// Inst is one decoded TRIPS block-body instruction. Which fields are
// meaningful depends on the opcode's Format.
type Inst struct {
	Op   Opcode
	Pred PredMode
	// T0 and T1 are the result targets (G format has both; I, L and C
	// formats have only T0; S and B formats have none).
	T0, T1 Target
	// Imm is the signed immediate of I, L and S formats, or the 16-bit
	// constant of the C format (zero-extended).
	Imm int64
	// LSID is the load/store ID establishing program order among the
	// block's memory operations (L and S formats).
	LSID int
	// Exit is the three-bit exit number of B-format branches, used by the
	// next-block predictor's exit histories (paper Section 3.1).
	Exit int
	// Offset is the B-format branch offset in 128-byte block-address units.
	Offset int32
}

// Targets returns the valid targets of the instruction.
func (in *Inst) Targets() []Target {
	var ts []Target
	if in.T0.Valid() {
		ts = append(ts, in.T0)
	}
	if in.T1.Valid() {
		ts = append(ts, in.T1)
	}
	return ts
}

// NeedsLeft reports whether the instruction waits for a left operand.
func (in *Inst) NeedsLeft() bool {
	switch in.Op.Format() {
	case FmtG:
		// Constant-free G ops all take a left operand except NOP; NULL
		// takes none (it fires as soon as its predicate, if any, allows).
		return in.Op != NOP && in.Op != NULL
	case FmtI:
		// All immediate ops combine a left operand with the immediate,
		// except MOVI which generates the immediate itself.
		return in.Op != MOVI
	case FmtL, FmtS:
		return true
	case FmtB:
		return in.Op == RET || in.Op == BR
	case FmtC:
		return in.Op == APPC
	}
	return false
}

// NeedsRight reports whether the instruction waits for a right operand.
// Stores take address (left) and data (right); two-input ALU ops take both.
func (in *Inst) NeedsRight() bool {
	switch in.Op.Format() {
	case FmtG:
		switch in.Op {
		case NOP, NULL, MOV, ITOF, FTOI:
			return false
		}
		return true
	case FmtS:
		return true
	}
	return false
}

func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s", in.Op, in.Pred)
	switch in.Op.Format() {
	case FmtI, FmtC:
		fmt.Fprintf(&b, " #%d", in.Imm)
	case FmtL:
		fmt.Fprintf(&b, " #%d [lsid=%d]", in.Imm, in.LSID)
	case FmtS:
		fmt.Fprintf(&b, " #%d [lsid=%d]", in.Imm, in.LSID)
	case FmtB:
		fmt.Fprintf(&b, " exit=%d off=%d", in.Exit, in.Offset)
	}
	for _, t := range in.Targets() {
		fmt.Fprintf(&b, " ->%s", t)
	}
	return b.String()
}

// ReadInst is a header read instruction: it pulls architectural register
// GR and sends the value to up to two consumer operands (paper Figure 1,
// R format).
type ReadInst struct {
	Valid    bool
	GR       int // architectural register index, 0..127
	RT0, RT1 Target
}

// WriteInst is a header write instruction: it receives one block output
// value and commits it to architectural register GR (W format).
type WriteInst struct {
	Valid bool
	GR    int
}

// ETOf returns the execution tile (0..15) that instruction index i of a
// block maps to. An instruction's coordinates are implicitly determined by
// its position in its chunk (paper Section 2.2): body chunk k is held by
// IT k+1, which dispatches to its own row of ETs (Section 4.1), so chunk k
// fills ET row k. Within a chunk, position p goes to column p%4,
// reservation-station slot p/4. A consequence visible in the evaluation:
// blocks smaller than 128 instructions use only the first rows of the
// array, which is one reason small compiled blocks underperform.
func ETOf(i int) int { return (i/BodyChunkInsts)*4 + i%4 }

// SlotOf returns the reservation-station slot (0..7) within the ET for
// instruction index i.
func SlotOf(i int) int { return (i % BodyChunkInsts) / 4 }

// ETRowCol returns the row (0..3) and column (0..3) of an ET index within
// the 4x4 execution array.
func ETRowCol(et int) (row, col int) { return et / 4, et % 4 }

// RTOf returns the register tile (0..3) holding read/write queue entry j.
func RTOf(j int) int { return j % 4 }

// RTSlotOf returns the queue slot (0..7) within the RT for entry j.
func RTSlotOf(j int) int { return j / 4 }

// DTOfAddr returns the data tile (0..3) that services a virtual address.
// Addresses interleave across the DTs at 64-byte cache-line granularity
// (paper Section 3.5).
func DTOfAddr(addr uint64) int { return int(addr >> 6 & 3) }

// ITOfChunk returns the instruction tile (0..4) holding chunk c of a block:
// IT 0 holds the header chunk, ITs 1..4 the body chunks (Section 3.2: each
// of the five IT banks can hold a 128-byte chunk of each block).
func ITOfChunk(c int) int { return c }
