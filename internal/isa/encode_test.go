package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeInstFormats(t *testing.T) {
	cases := []Inst{
		{Op: ADD, T0: ToLeft(5), T1: ToRight(9)},
		{Op: TEQ, Pred: PredNone, T0: ToPred(2), T1: ToPred(3)},
		{Op: MULI, Pred: PredOnFalse, Imm: -4, T0: ToLeft(32)},
		{Op: MOVI, Imm: 8191, T0: ToWrite(7)},
		{Op: LW, Pred: PredOnFalse, Imm: 8, LSID: 0, T0: ToLeft(33)},
		{Op: SW, Pred: PredOnTrue, Imm: -16, LSID: 1},
		{Op: BRO, Exit: 3, Offset: -100},
		{Op: CALLO, Exit: 0, Offset: 524287},
		{Op: GENC, Imm: 0xffff, T0: ToRight(127)},
		{Op: APPC, Imm: 0x1234, T0: ToLeft(0)},
		{Op: NULL, Pred: PredOnTrue, T0: ToWrite(31), T1: ToLeft(100)},
		{Op: RET, Exit: 7},
		{Op: DIV, T0: ToWrite(0)},
		{Op: FMUL, T0: ToLeft(64), T1: ToRight(64)},
	}
	for _, in := range cases {
		w, err := EncodeInst(&in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := DecodeInst(w)
		if err != nil {
			t.Fatalf("decode %v (word %#08x): %v", in, w, err)
		}
		if got != in {
			t.Errorf("round trip mismatch:\n in:  %+v\n out: %+v (word %#08x)", in, got, w)
		}
	}
}

func TestEncodeInstRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Imm: 1 << 13, T0: ToLeft(0)},    // I-format imm overflow
		{Op: LW, Imm: 256, LSID: 0, T0: ToLeft(0)}, // L-format imm overflow
		{Op: SW, Imm: -257, LSID: 0},               // L-format imm underflow
		{Op: SW, Imm: 0, LSID: 32},                 // LSID out of range
		{Op: BRO, Exit: 8},                         // exit out of range
		{Op: BRO, Offset: 1 << 19},                 // offset overflow
		{Op: GENC, Imm: -1, T0: ToLeft(0)},         // constant out of range
		{Op: GENC, Imm: 0x10000, T0: ToLeft(0)},    // constant overflow
		{Op: Opcode(120), T0: ToLeft(0)},           // invalid opcode
	}
	for _, in := range bad {
		if _, err := EncodeInst(&in); err == nil {
			t.Errorf("expected encode error for %+v", in)
		}
	}
}

func TestTargetEncoding(t *testing.T) {
	// Every target kind must survive the nine-bit wire format, and the
	// write-entry space must not collide with "no target".
	if got := decodeTarget(NoTarget.encode()); got != NoTarget {
		t.Errorf("NoTarget round trip: got %v", got)
	}
	for j := 0; j < MaxBlockWrites; j++ {
		tg := ToWrite(j)
		if got := decodeTarget(tg.encode()); got != tg {
			t.Errorf("ToWrite(%d) round trip: got %v", j, got)
		}
		if tg.encode() == 0 {
			t.Errorf("ToWrite(%d) collides with NoTarget", j)
		}
	}
	for i := 0; i < MaxBlockInsts; i++ {
		for _, tg := range []Target{ToLeft(i), ToRight(i), ToPred(i)} {
			if got := decodeTarget(tg.encode()); got != tg {
				t.Errorf("%v round trip: got %v", tg, got)
			}
		}
	}
}

// randomInst builds an encodable instruction from a random source; used by
// the property tests below.
func randomInst(r *rand.Rand) Inst {
	ops := []Opcode{ADD, SUB, MUL, AND, OR, XOR, TEQ, TLT, MOV, NULL, FADD,
		ADDI, MULI, MOVI, TLTI, LW, LD, SB, SD, BRO, CALLO, RET, GENC, APPC}
	in := Inst{Op: ops[r.Intn(len(ops))]}
	preds := []PredMode{PredNone, PredOnFalse, PredOnTrue}
	randTarget := func() Target {
		switch r.Intn(5) {
		case 0:
			return NoTarget
		case 1:
			return ToLeft(r.Intn(MaxBlockInsts))
		case 2:
			return ToRight(r.Intn(MaxBlockInsts))
		case 3:
			return ToPred(r.Intn(MaxBlockInsts))
		default:
			return ToWrite(r.Intn(MaxBlockWrites))
		}
	}
	switch in.Op.Format() {
	case FmtG:
		in.Pred = preds[r.Intn(3)]
		in.T0, in.T1 = randTarget(), randTarget()
	case FmtI:
		in.Pred = preds[r.Intn(3)]
		in.Imm = int64(r.Intn(1<<immBitsI) - 1<<(immBitsI-1))
		in.T0 = randTarget()
	case FmtL:
		in.Pred = preds[r.Intn(3)]
		in.LSID = r.Intn(MaxBlockMemOps)
		in.Imm = int64(r.Intn(1<<immBitsL) - 1<<(immBitsL-1))
		in.T0 = randTarget()
	case FmtS:
		in.Pred = preds[r.Intn(3)]
		in.LSID = r.Intn(MaxBlockMemOps)
		in.Imm = int64(r.Intn(1<<immBitsL) - 1<<(immBitsL-1))
	case FmtB:
		in.Pred = preds[r.Intn(3)]
		in.Exit = r.Intn(8)
		in.Offset = int32(r.Intn(1<<offBitsB) - 1<<(offBitsB-1))
	case FmtC:
		in.Imm = int64(r.Intn(1 << 16))
		in.T0 = randTarget()
	}
	return in
}

func TestQuickInstRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		w, err := EncodeInst(&in)
		if err != nil {
			t.Logf("encode %+v: %v", in, err)
			return false
		}
		got, err := DecodeInst(w)
		if err != nil {
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSignExtend(t *testing.T) {
	f := func(v int16) bool {
		// 14-bit immediates: any value representable in 14 bits must
		// survive fitSigned + signExtend.
		x := int64(v) >> 2 // force into 14-bit range
		enc, err := fitSigned(x, 14, "imm")
		if err != nil {
			return false
		}
		return signExtend(enc, 14) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
