package cache

// MSHR is a bank of miss-status holding registers. Each DT's MSHR supports
// up to 16 requests across up to four outstanding cache lines (paper
// Section 3.5); each NUCA memory tile has a single-entry MSHR
// (Section 3.6).
type MSHR struct {
	MaxLines    int // distinct outstanding line addresses
	MaxRequests int // total waiting requests across all lines
	entries     map[uint64][]any
	requests    int
}

// NewMSHR builds an MSHR with the given capacities.
func NewMSHR(maxLines, maxRequests int) *MSHR {
	return &MSHR{MaxLines: maxLines, MaxRequests: maxRequests, entries: make(map[uint64][]any)}
}

// Allocate registers a waiter for lineAddr. It returns (primary, ok):
// primary is true when this is the first request for the line — the caller
// must issue the refill; ok is false when the MSHR is full and the request
// must retry.
func (m *MSHR) Allocate(lineAddr uint64, waiter any) (primary, ok bool) {
	if m.requests >= m.MaxRequests {
		return false, false
	}
	ws, exists := m.entries[lineAddr]
	if !exists {
		if len(m.entries) >= m.MaxLines {
			return false, false
		}
		m.entries[lineAddr] = []any{waiter}
		m.requests++
		return true, true
	}
	m.entries[lineAddr] = append(ws, waiter)
	m.requests++
	return false, true
}

// Complete removes and returns the waiters for a filled line.
func (m *MSHR) Complete(lineAddr uint64) []any {
	ws := m.entries[lineAddr]
	delete(m.entries, lineAddr)
	m.requests -= len(ws)
	return ws
}

// Pending reports whether lineAddr has an outstanding miss.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Busy reports whether any miss is outstanding.
func (m *MSHR) Busy() bool { return len(m.entries) > 0 }

// Outstanding returns the number of distinct lines in flight.
func (m *MSHR) Outstanding() int { return len(m.entries) }
