package cache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"trips/internal/mem"
)

func TestBankGeometry(t *testing.T) {
	// The paper's three bank shapes must construct.
	for _, c := range []struct{ size, ways, line int }{
		{8 << 10, 2, 64},  // DT L1D bank
		{16 << 10, 2, 64}, // IT L1I bank
		{64 << 10, 4, 64}, // MT L2 bank
	} {
		b := NewBank(c.size, c.ways, c.line)
		if b.numSets*c.ways*c.line != c.size {
			t.Errorf("bank %+v: bad set count %d", c, b.numSets)
		}
	}
}

func TestBankFillReadWrite(t *testing.T) {
	b := NewBank(8<<10, 2, 64)
	lineData := make([]byte, 64)
	for i := range lineData {
		lineData[i] = byte(i)
	}
	if _, ok := b.Read(0x1000, 8); ok {
		t.Fatal("read hit on empty bank")
	}
	if v := b.Fill(0x1000, lineData); v.Valid {
		t.Fatal("fill into empty set produced a victim")
	}
	got, ok := b.Read(0x1008, 8)
	if !ok || !bytes.Equal(got, lineData[8:16]) {
		t.Fatalf("read = %v, %v", got, ok)
	}
	if !b.Write(0x1008, []byte{0xaa, 0xbb}) {
		t.Fatal("write missed a resident line")
	}
	got, _ = b.Read(0x1008, 2)
	if !bytes.Equal(got, []byte{0xaa, 0xbb}) {
		t.Fatalf("read-after-write = %v", got)
	}
}

func TestBankLRUEvictionAndWriteback(t *testing.T) {
	b := NewBank(2*64, 2, 64) // one set, two ways
	l0 := make([]byte, 64)
	l1 := make([]byte, 64)
	l2 := make([]byte, 64)
	b.Fill(0x0, l0)
	b.Fill(0x40000, l1)
	b.Write(0x0, []byte{1}) // dirty + most recently used
	// 0x40000 is LRU and clean: evicting it produces no writeback.
	v := b.Fill(0x80000, l2)
	if v.Valid {
		t.Fatalf("clean eviction returned writeback victim %#x", v.Addr)
	}
	if b.Probe(0x40000) {
		t.Fatal("evicted line still present")
	}
	if !b.Probe(0x0) || !b.Probe(0x80000) {
		t.Fatal("resident lines missing")
	}
	// Now 0x0 is LRU and dirty: evicting it must return its data.
	v = b.Fill(0xC0000, l1)
	if !v.Valid {
		t.Fatal("dirty eviction returned no victim")
	}
	if v.Addr != 0x0 {
		t.Fatalf("evicted %#x, want dirty LRU line 0x0", v.Addr)
	}
	if v.Data[0] != 1 {
		t.Fatalf("victim data lost the write: %v", v.Data[:4])
	}
}

func TestQuickBankMirrorsMemory(t *testing.T) {
	// Property: a bank backed by a memory, with fills on miss and
	// write-back on eviction, always returns what a flat memory would.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		golden := mem.New()
		backing := mem.New()
		b := NewBank(1<<10, 2, 64) // tiny bank to force evictions
		access := func(addr uint64, write bool, val byte) bool {
			if write {
				golden.Write(addr, 1, uint64(val))
				if !b.Write(addr, []byte{val}) {
					// Miss: fill from backing then retry.
					la := b.LineAddr(addr)
					if v := b.Fill(la, backing.ReadBytes(la, 64)); v.Valid {
						backing.WriteBytes(v.Addr, v.Data)
					}
					if !b.Write(addr, []byte{val}) {
						return false
					}
				}
				return true
			}
			want := byte(golden.Read(addr, 1, false))
			got, ok := b.Read(addr, 1)
			if !ok {
				la := b.LineAddr(addr)
				if v := b.Fill(la, backing.ReadBytes(la, 64)); v.Valid {
					backing.WriteBytes(v.Addr, v.Data)
				}
				got, ok = b.Read(addr, 1)
				if !ok {
					return false
				}
			}
			return got[0] == want
		}
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(1 << 14))
			if !access(addr, r.Intn(2) == 0, byte(r.Intn(256))) {
				return false
			}
		}
		// Flush dirty lines; backing must equal golden over the region.
		for _, v := range b.DirtyLines() {
			backing.WriteBytes(v.Addr, v.Data)
		}
		for a := uint64(0); a < 1<<14; a += 7 {
			if backing.Read(a, 1, false) != golden.Read(a, 1, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHR(4, 16)
	primary, ok := m.Allocate(0x100, "a")
	if !primary || !ok {
		t.Fatal("first allocation should be primary")
	}
	primary, ok = m.Allocate(0x100, "b")
	if primary || !ok {
		t.Fatal("second allocation for same line should merge")
	}
	// Fill remaining line capacity.
	for i := 0; i < 3; i++ {
		if p, ok := m.Allocate(uint64(0x200+i*0x40), i); !p || !ok {
			t.Fatalf("allocation %d failed", i)
		}
	}
	if _, ok := m.Allocate(0x900, "x"); ok {
		t.Fatal("fifth line accepted; MaxLines is 4")
	}
	// Merging into existing lines still allowed up to MaxRequests.
	for i := 0; i < 11; i++ {
		if _, ok := m.Allocate(0x100, i); !ok {
			t.Fatalf("merge %d refused below request cap", i)
		}
	}
	if _, ok := m.Allocate(0x100, "over"); ok {
		t.Fatal("17th request accepted; MaxRequests is 16")
	}
	ws := m.Complete(0x100)
	if len(ws) != 13 {
		t.Fatalf("Complete returned %d waiters, want 13", len(ws))
	}
	if m.Pending(0x100) {
		t.Fatal("line still pending after Complete")
	}
	if _, ok := m.Allocate(0x900, "x"); !ok {
		t.Fatal("allocation refused after Complete freed a line")
	}
}

func TestMemoryReadWriteWidths(t *testing.T) {
	m := mem.New()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 4, false); got != 0x55667788 {
		t.Errorf("low word = %#x", got)
	}
	if got := m.Read(0x1004, 4, false); got != 0x11223344 {
		t.Errorf("high word = %#x", got)
	}
	m.Write(0x2000, 1, 0x80)
	if got := m.Read(0x2000, 1, true); got != 0xffffffffffffff80 {
		t.Errorf("sign-extended byte = %#x", got)
	}
	if got := m.Read(0x2000, 1, false); got != 0x80 {
		t.Errorf("zero-extended byte = %#x", got)
	}
	// Cross-page write/read.
	m.WriteBytes(0xFFF, []byte{1, 2, 3})
	if got := m.ReadBytes(0xFFF, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("cross-page bytes = %v", got)
	}
	// Unwritten memory reads as zero.
	if got := m.Read(0x999000, 8, false); got != 0 {
		t.Errorf("fresh memory = %#x", got)
	}
}
