package cache

import (
	"sort"

	"trips/internal/ckpt"
)

// SaveState serializes the bank: LRU clock, stats, and each (set, way)
// slot in place. Way positions matter — Fill's victim scan prefers the last
// invalid way in set order — so lines are written per-slot with a validity
// bit rather than as a compacted list.
func (b *Bank) SaveState(w *ckpt.Writer) {
	w.Section("bank")
	w.U64(b.clock)
	w.U64(b.Hits)
	w.U64(b.Misses)
	w.U64(b.Evictions)
	w.U64(b.Writebacks)
	for i := range b.sets {
		for j := range b.sets[i] {
			ln := &b.sets[i][j]
			w.Bool(ln.valid)
			if !ln.valid {
				continue
			}
			w.Bool(ln.dirty)
			w.U64(ln.tag)
			w.U64(ln.lastUse)
			w.Bytes(ln.data)
		}
	}
}

// LoadState restores a bank saved from an identically-shaped instance.
func (b *Bank) LoadState(r *ckpt.Reader) {
	r.Section("bank")
	b.clock = r.U64()
	b.Hits = r.U64()
	b.Misses = r.U64()
	b.Evictions = r.U64()
	b.Writebacks = r.U64()
	for i := range b.sets {
		for j := range b.sets[i] {
			ln := &b.sets[i][j]
			*ln = line{}
			ln.valid = r.Bool()
			if !ln.valid {
				continue
			}
			ln.dirty = r.Bool()
			ln.tag = r.U64()
			ln.lastUse = r.U64()
			ln.data = r.Bytes()
		}
	}
}

// SaveState serializes the MSHR. Waiters are opaque to this package, so the
// caller supplies an encoder invoked once per waiter; lines are written in
// ascending line-address order for determinism. Waiter slice order within a
// line is preserved (it is the service order on fill).
func (m *MSHR) SaveState(w *ckpt.Writer, enc func(*ckpt.Writer, any)) {
	w.Section("mshr")
	lines := make([]uint64, 0, len(m.entries))
	for la := range m.entries {
		lines = append(lines, la)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Int(len(lines))
	for _, la := range lines {
		w.U64(la)
		ws := m.entries[la]
		w.Int(len(ws))
		for _, waiter := range ws {
			enc(w, waiter)
		}
	}
}

// LoadState restores the MSHR, decoding each waiter with dec.
func (m *MSHR) LoadState(r *ckpt.Reader, dec func(*ckpt.Reader) any) {
	r.Section("mshr")
	m.entries = make(map[uint64][]any)
	m.requests = 0
	n := r.Int()
	if r.Err() != nil {
		return
	}
	for i := 0; i < n; i++ {
		la := r.U64()
		cnt := r.Int()
		if r.Err() != nil {
			return
		}
		ws := make([]any, 0, cnt)
		for j := 0; j < cnt; j++ {
			ws = append(ws, dec(r))
		}
		m.entries[la] = ws
		m.requests += cnt
	}
}
