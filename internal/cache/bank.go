// Package cache implements the set-associative cache banks and miss
// handling used throughout the TRIPS memory hierarchy: the 2-way 8KB L1
// data cache banks in each DT (paper Section 3.5), the 2-way 16KB L1
// instruction cache banks in each IT (Section 3.2), and the 4-way 64KB L2
// banks in each NUCA memory tile (Section 3.6).
package cache

import "fmt"

// Bank is one physically-indexed, write-back, LRU, set-associative cache
// bank holding real data bytes.
type Bank struct {
	SizeBytes int
	Ways      int
	LineBytes int
	numSets   int
	sets      [][]line
	clock     uint64 // LRU timestamp source

	// Stats.
	Hits, Misses, Evictions, Writebacks uint64
}

type line struct {
	valid, dirty bool
	tag          uint64 // full line address (addr with offset bits cleared)
	data         []byte
	lastUse      uint64
}

// NewBank builds a bank. sizeBytes must be ways*lineBytes*numSets for a
// power-of-two numSets.
func NewBank(sizeBytes, ways, lineBytes int) *Bank {
	numSets := sizeBytes / (ways * lineBytes)
	if numSets <= 0 || numSets*ways*lineBytes != sizeBytes || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: bad geometry %dB/%dway/%dB-line", sizeBytes, ways, lineBytes))
	}
	b := &Bank{SizeBytes: sizeBytes, Ways: ways, LineBytes: lineBytes, numSets: numSets}
	b.sets = make([][]line, numSets)
	for i := range b.sets {
		b.sets[i] = make([]line, ways)
	}
	return b
}

// LineAddr returns addr with the line-offset bits cleared.
func (b *Bank) LineAddr(addr uint64) uint64 { return addr &^ uint64(b.LineBytes-1) }

func (b *Bank) set(addr uint64) []line {
	idx := int(addr/uint64(b.LineBytes)) & (b.numSets - 1)
	return b.sets[idx]
}

func (b *Bank) find(addr uint64) *line {
	la := b.LineAddr(addr)
	set := b.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return &set[i]
		}
	}
	return nil
}

// Probe reports whether addr hits without updating LRU or stats.
func (b *Bank) Probe(addr uint64) bool { return b.find(addr) != nil }

// Read copies n bytes at addr out of the bank. The access must hit and must
// not cross a line boundary; callers split line-crossing accesses.
func (b *Bank) Read(addr uint64, n int) ([]byte, bool) {
	ln := b.find(addr)
	if ln == nil {
		b.Misses++
		return nil, false
	}
	b.Hits++
	b.clock++
	ln.lastUse = b.clock
	off := int(addr) & (b.LineBytes - 1)
	if off+n > b.LineBytes {
		panic(fmt.Sprintf("cache: read of %d bytes at %#x crosses a %dB line", n, addr, b.LineBytes))
	}
	out := make([]byte, n)
	copy(out, ln.data[off:off+n])
	return out, true
}

// Write stores data at addr if the line is present, marking it dirty.
func (b *Bank) Write(addr uint64, data []byte) bool {
	ln := b.find(addr)
	if ln == nil {
		b.Misses++
		return false
	}
	b.Hits++
	b.clock++
	ln.lastUse = b.clock
	off := int(addr) & (b.LineBytes - 1)
	if off+len(data) > b.LineBytes {
		panic(fmt.Sprintf("cache: write of %d bytes at %#x crosses a %dB line", len(data), addr, b.LineBytes))
	}
	copy(ln.data[off:off+len(data)], data)
	ln.dirty = true
	return true
}

// Victim describes a dirty line displaced by a Fill.
type Victim struct {
	Addr  uint64
	Data  []byte
	Valid bool
}

// Fill installs a full line (len(data) == LineBytes) for addr, returning
// the displaced dirty victim if any. The new line is installed clean.
func (b *Bank) Fill(addr uint64, data []byte) Victim {
	if len(data) != b.LineBytes {
		panic(fmt.Sprintf("cache: fill with %d bytes, line is %d", len(data), b.LineBytes))
	}
	la := b.LineAddr(addr)
	set := b.set(addr)
	// Refill into an existing copy (e.g. a prefetch race) or an invalid way.
	victim := &set[0]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			victim = &set[i]
			break
		}
		if !set[i].valid {
			victim = &set[i]
		} else if victim.valid && set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	var out Victim
	if victim.valid && victim.tag != la {
		b.Evictions++
		if victim.dirty {
			b.Writebacks++
			out = Victim{Addr: victim.tag, Data: victim.data, Valid: true}
		}
	}
	b.clock++
	nd := make([]byte, b.LineBytes)
	copy(nd, data)
	*victim = line{valid: true, tag: la, data: nd, lastUse: b.clock}
	return out
}

// InvalidateAll clears the bank (used when reconfiguring the NUCA array).
func (b *Bank) InvalidateAll() {
	for i := range b.sets {
		for j := range b.sets[i] {
			b.sets[i][j] = line{}
		}
	}
}

// DirtyLines returns the addresses and contents of all dirty lines; used to
// flush write-back state at simulation end so memory holds final results.
func (b *Bank) DirtyLines() []Victim {
	var out []Victim
	for i := range b.sets {
		for j := range b.sets[i] {
			ln := &b.sets[i][j]
			if ln.valid && ln.dirty {
				out = append(out, Victim{Addr: ln.tag, Data: ln.data, Valid: true})
			}
		}
	}
	return out
}
