package predictor

import (
	"math/rand"
	"testing"
)

// run trains the predictor on a deterministic block-exit trace and returns
// the exit-prediction accuracy over the final quarter of the trace.
func run(t *testing.T, trace func(i int) (addr uint64, exit int, kind Kind, next uint64), n int) float64 {
	t.Helper()
	p := New()
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		addr, exit, kind, next := trace(i)
		seq := addr + 5*128
		pred := p.Predict(addr, seq)
		if i >= 3*n/4 {
			total++
			if pred.Exit == exit && pred.Next == next {
				correct++
			}
		}
		if pred.Next != next {
			p.Repair(pred)
			// Re-predict after repair as the GT would refetch; then train.
		}
		p.Update(addr, pred, exit, kind, next, seq)
	}
	if total == 0 {
		t.Fatal("empty measurement window")
	}
	return float64(correct) / float64(total)
}

func TestLearnsSingleExitLoop(t *testing.T) {
	// One block always exiting via exit 2 to the same target.
	acc := run(t, func(i int) (uint64, int, Kind, uint64) {
		return 0x1000, 2, KindBranch, 0x8000
	}, 400)
	if acc < 0.99 {
		t.Errorf("steady-exit accuracy = %.2f, want ~1.0", acc)
	}
}

func TestLearnsAlternatingExits(t *testing.T) {
	// A block alternating exits 1,3,1,3... is learnable from local history.
	targets := map[int]uint64{1: 0x8000, 3: 0x9000}
	acc := run(t, func(i int) (uint64, int, Kind, uint64) {
		exit := 1
		if i%2 == 1 {
			exit = 3
		}
		return 0x2000, exit, KindBranch, targets[exit]
	}, 2000)
	if acc < 0.95 {
		t.Errorf("alternating-exit accuracy = %.2f, want > 0.95", acc)
	}
}

func TestLearnsPeriodicPattern(t *testing.T) {
	// Period-4 exit pattern exercising longer histories.
	pattern := []int{0, 0, 5, 1}
	targets := map[int]uint64{0: 0x8000, 5: 0x9000, 1: 0xa000}
	acc := run(t, func(i int) (uint64, int, Kind, uint64) {
		exit := pattern[i%len(pattern)]
		return 0x3000, exit, KindBranch, targets[exit]
	}, 4000)
	if acc < 0.90 {
		t.Errorf("periodic-exit accuracy = %.2f, want > 0.90", acc)
	}
}

func TestCallReturnPairsUseRAS(t *testing.T) {
	// Three call sites invoke the same function block; the function's
	// return must be predicted to each caller's successor via the RAS,
	// which a BTB alone cannot do.
	p := New()
	callers := []uint64{0x1000, 0x2000, 0x3000}
	fn := uint64(0x8000)
	var returnCorrect, returnTotal int
	for round := 0; round < 50; round++ {
		for _, c := range callers {
			seq := c + 128
			pred := p.Predict(c, seq)
			p.Update(c, pred, 0, KindCall, fn, seq)
			fpred := p.Predict(fn, fn+128)
			if round > 10 {
				returnTotal++
				if fpred.Kind == KindReturn && fpred.Next == seq {
					returnCorrect++
				}
			}
			p.Update(fn, fpred, 0, KindReturn, seq, fn+128)
		}
	}
	if returnTotal == 0 || returnCorrect < returnTotal*9/10 {
		t.Errorf("RAS return accuracy = %d/%d, want >= 90%%", returnCorrect, returnTotal)
	}
}

func TestRepairRestoresRAS(t *testing.T) {
	p := New()
	// Push a return address via a trained call.
	for i := 0; i < 10; i++ {
		pred := p.Predict(0x1000, 0x1080)
		p.Update(0x1000, pred, 0, KindCall, 0x8000, 0x1080)
		fp := p.Predict(0x8000, 0x8080)
		p.Update(0x8000, fp, 0, KindReturn, 0x1080, 0x8080)
	}
	spBefore := p.rasSP
	ghrBefore := p.ghr
	pred := p.Predict(0x1000, 0x1080) // trained: predicts call, pushes RAS
	if p.rasSP == spBefore {
		t.Fatal("predicted call did not push the RAS")
	}
	p.Repair(pred)
	if p.rasSP != spBefore {
		t.Error("Repair did not restore the RAS pointer")
	}
	if p.ghr != ghrBefore {
		t.Error("Repair did not restore the global history")
	}
}

func TestTypePredictorDistinguishesExits(t *testing.T) {
	// One block whose exit 0 is a branch and exit 1 is a return: the type
	// predictor is indexed by (block, exit) so both must be learned.
	p := New()
	for i := 0; i < 200; i++ {
		exit := i % 2
		pred := p.Predict(0x4000, 0x4080)
		if exit == 0 {
			p.Update(0x4000, pred, 0, KindBranch, 0x9000, 0x4080)
		} else {
			p.Update(0x4000, pred, 1, KindReturn, 0x7000, 0x4080)
		}
	}
	// After training, force-check the learned types via the tables.
	bi := blockIndex(0x4000)
	e0 := p.btype[(bi*8+0)%btypeEntries]
	e1 := p.btype[(bi*8+1)%btypeEntries]
	if e0.kind != KindBranch {
		t.Errorf("exit 0 type = %v, want branch", e0.kind)
	}
	if e1.kind != KindReturn {
		t.Errorf("exit 1 type = %v, want return", e1.kind)
	}
}

func TestColdPredictorIsSane(t *testing.T) {
	p := New()
	pred := p.Predict(0x5000, 0x5080)
	if pred.Kind != KindSeq || pred.Next != 0x5080 {
		t.Errorf("cold prediction = %+v, want sequential fallthrough", pred)
	}
	if pred.Exit != 0 {
		t.Errorf("cold exit = %d, want 0", pred.Exit)
	}
}

func TestManyBlocksNoInterferenceCatastrophe(t *testing.T) {
	// 64 independent steady blocks must all be predictable: aliasing may
	// cost some accuracy but not collapse.
	r := rand.New(rand.NewSource(42))
	type blk struct {
		addr, next uint64
		exit       int
	}
	blocks := make([]blk, 64)
	for i := range blocks {
		blocks[i] = blk{
			addr: uint64(0x10000 + i*640),
			next: uint64(0x80000 + r.Intn(1000)*128),
			exit: r.Intn(8),
		}
	}
	p := New()
	correct, total := 0, 0
	for round := 0; round < 60; round++ {
		for _, b := range blocks {
			pred := p.Predict(b.addr, b.addr+128)
			if round > 40 {
				total++
				if pred.Exit == b.exit && pred.Next == b.next {
					correct++
				}
			}
			p.Update(b.addr, pred, b.exit, KindBranch, b.next, b.addr+128)
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("64-block working set accuracy = %.2f, want > 0.9", acc)
	}
}
