// Package predictor implements the TRIPS next-block predictor (paper
// Section 3.1). Because each block emits exactly one of up to eight exit
// branches, the predictor operates on three-bit exit histories rather than
// taken/not-taken bits. It has two major parts:
//
//   - an exit predictor: a tournament of a local and a gshare exit
//     predictor (paper: 9K, 16K and 12K bits for the local, global and
//     tournament components), and
//   - a target predictor: a branch target buffer, a call target buffer, a
//     return address stack, and a branch type predictor that selects among
//     branch/call/return/sequential targets (20K, 6K, 7K and 12K bits).
//
// The type predictor is required by the distributed fetch protocol: the GT
// never sees the actual branch instructions, which flow directly from the
// ITs to the ETs (paper Section 3.1).
package predictor

// Kind is the predicted or actual control transfer type of a block's exit.
type Kind uint8

const (
	KindSeq    Kind = iota // sequential: next block follows in memory
	KindBranch             // ordinary branch (BRO)
	KindCall               // call (CALLO): pushes a return address
	KindReturn             // return (RET): target comes from the RAS
	numKinds
)

func (k Kind) String() string {
	return [...]string{"seq", "branch", "call", "return"}[k]
}

// Table geometry. Sizes approximate the paper's bit budgets.
const (
	localHistEntries = 512  // 512 x 9-bit local exit histories (~4.5K bits)
	localPredEntries = 1024 // 1024 x 4 bits (~4K bits): 9K total local
	globalEntries    = 4096 // 4096 x 4 bits = 16K bits
	chooserEntries   = 4096 // chooser: 4096 x 2 bits + type reuse = ~12K
	btbEntries       = 512  // 512 x ~40 bits = 20K bits
	ctbEntries       = 128  // 128 x ~48 bits = 6K bits
	rasEntries       = 108  // ~7K bits of 64-bit return addresses
	btypeEntries     = 4096 // 4096 x 3 bits = 12K bits
	historyExits     = 3    // exits folded into the 9-bit local history
	globalHistBits   = 12   // gshare history length in bits
)

type exitEntry struct {
	exit uint8
	conf uint8 // 0..3 hysteresis
}

type targetEntry struct {
	tag    uint32
	target uint64
	valid  bool
}

type typeEntry struct {
	kind Kind
	conf uint8
}

// Predictor is the per-core next-block predictor state. It is not safe for
// concurrent use; the GT owns it.
type Predictor struct {
	localHist [localHistEntries]uint16
	localPred [localPredEntries]exitEntry
	globPred  [globalEntries]exitEntry
	chooser   [chooserEntries]uint8 // 2-bit: >=2 prefers global
	ghr       uint32

	btb   [btbEntries]targetEntry
	ctb   [ctbEntries]targetEntry
	ras   [rasEntries]uint64
	rasSP int
	btype [btypeEntries]typeEntry

	// Stats.
	Predictions, ExitMisses, TargetMisses uint64
}

// New returns a predictor with cold tables: exits predict 0, types predict
// sequential, empty RAS.
func New() *Predictor {
	p := &Predictor{}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer local
	}
	return p
}

// Prediction carries everything the GT needs to later verify and train.
type Prediction struct {
	Next  uint64 // predicted next block address
	Exit  int    // predicted exit number
	Kind  Kind   // predicted transfer type
	ghr   uint32 // history checkpoint for repair
	rasSP int    // RAS checkpoint for repair
	usedG bool   // tournament selected the global component
	lexit uint8  // the two component predictions, for chooser training
	gexit uint8
}

func blockIndex(addr uint64) uint32 { return uint32(addr >> 7) } // blocks are 128B aligned

// Predict produces the next-block prediction for the block at addr.
// seqNext is the address of the next sequential block (addr plus the
// block's size in memory), which the GT knows from the fetched header.
func (p *Predictor) Predict(addr uint64, seqNext uint64) Prediction {
	p.Predictions++
	bi := blockIndex(addr)

	lh := p.localHist[bi%localHistEntries]
	le := p.localPred[(bi^uint32(lh))%localPredEntries]
	ge := p.globPred[(bi^p.ghr)%globalEntries]
	choose := p.chooser[(bi^p.ghr)%chooserEntries]
	exit := le.exit
	usedG := choose >= 2
	if usedG {
		exit = ge.exit
	}

	// The predicted exit number combines with the block address to access
	// the target predictor (paper Section 3.1).
	ti := (bi*8 + uint32(exit))
	te := p.btype[ti%btypeEntries]
	pred := Prediction{
		Exit:  int(exit),
		Kind:  te.kind,
		ghr:   p.ghr,
		rasSP: p.rasSP,
		usedG: usedG,
		lexit: le.exit,
		gexit: ge.exit,
	}
	switch te.kind {
	case KindSeq:
		pred.Next = seqNext
	case KindBranch:
		e := p.btb[ti%btbEntries]
		if e.valid && e.tag == bi {
			pred.Next = e.target
		} else {
			pred.Next = seqNext
		}
	case KindCall:
		e := p.ctb[ti%ctbEntries]
		if e.valid && e.tag == bi {
			pred.Next = e.target
		} else {
			pred.Next = seqNext
		}
		// Speculatively push the return address (the sequential successor).
		p.rasSP = (p.rasSP + 1) % rasEntries
		p.ras[p.rasSP] = seqNext
	case KindReturn:
		pred.Next = p.ras[p.rasSP]
		p.rasSP = (p.rasSP - 1 + rasEntries) % rasEntries
	}
	// Speculatively update the global history with the predicted exit;
	// repaired on misprediction.
	p.ghr = (p.ghr<<historyExits | uint32(exit)) & (1<<globalHistBits - 1)
	return pred
}

// Repair rolls back the speculative history and RAS state captured in a
// prediction. The GT calls it when the flush protocol discards the blocks
// fetched under that prediction.
func (p *Predictor) Repair(pred Prediction) {
	p.ghr = pred.ghr
	p.rasSP = pred.rasSP
}

// Update trains the predictor with a block's actual outcome: its actual
// exit number, transfer kind, next block address and return address (the
// sequential successor, pushed by calls). The GT calls this at block commit
// (paper Section 4.4: the commit command "updates the block predictor").
func (p *Predictor) Update(addr uint64, pred Prediction, exit int, kind Kind, next uint64, retAddr uint64) {
	bi := blockIndex(addr)
	if exit != pred.Exit {
		p.ExitMisses++
	} else if next != pred.Next {
		p.TargetMisses++
	}

	// Exit components train on the history state at prediction time.
	lhIdx := bi % localHistEntries
	lh := p.localHist[lhIdx]
	lpIdx := (bi ^ uint32(lh)) % localPredEntries
	gpIdx := (bi ^ pred.ghr) % globalEntries
	trainExit(&p.localPred[lpIdx], uint8(exit))
	trainExit(&p.globPred[gpIdx], uint8(exit))

	// Chooser: strengthen the component that was right when they disagree.
	localRight := pred.lexit == uint8(exit)
	globalRight := pred.gexit == uint8(exit)
	cIdx := (bi ^ pred.ghr) % chooserEntries
	if localRight != globalRight {
		if globalRight {
			if p.chooser[cIdx] < 3 {
				p.chooser[cIdx]++
			}
		} else if p.chooser[cIdx] > 0 {
			p.chooser[cIdx]--
		}
	}

	// Histories advance with the actual exit.
	p.localHist[lhIdx] = (lh<<historyExits | uint16(exit)) & (1<<(historyExits*historyExits) - 1)
	if exit != pred.Exit {
		// The speculative ghr shifted in a wrong exit; rebuild from the
		// prediction-time checkpoint.
		p.ghr = (pred.ghr<<historyExits | uint32(exit)) & (1<<globalHistBits - 1)
	}

	// Target structures train on the actual exit.
	ti := bi*8 + uint32(exit)
	trainType(&p.btype[ti%btypeEntries], kind)
	switch kind {
	case KindBranch:
		p.btb[ti%btbEntries] = targetEntry{tag: bi, target: next, valid: true}
	case KindCall:
		p.ctb[ti%ctbEntries] = targetEntry{tag: bi, target: next, valid: true}
		if exit != pred.Exit || pred.Kind != KindCall {
			// The speculative path never pushed; push the real return.
			p.rasSP = (p.rasSP + 1) % rasEntries
			p.ras[p.rasSP] = retAddr
		}
	case KindReturn:
		if exit != pred.Exit || pred.Kind != KindReturn {
			p.rasSP = (p.rasSP - 1 + rasEntries) % rasEntries
		}
	}
}

func trainExit(e *exitEntry, exit uint8) {
	if e.exit == exit {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
		return
	}
	e.exit = exit
	e.conf = 1
}

func trainType(e *typeEntry, kind Kind) {
	if e.kind == kind {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	if e.conf > 0 {
		e.conf--
		return
	}
	e.kind = kind
	e.conf = 1
}
