package predictor

import "trips/internal/ckpt"

// EncodePrediction serializes a Prediction, including the unexported repair
// checkpoints. Exported because the GT holds live Predictions in its block
// and thread contexts and must checkpoint them.
func EncodePrediction(w *ckpt.Writer, p Prediction) {
	w.U64(p.Next)
	w.Int(p.Exit)
	w.U8(uint8(p.Kind))
	w.U32(p.ghr)
	w.Int(p.rasSP)
	w.Bool(p.usedG)
	w.U8(p.lexit)
	w.U8(p.gexit)
}

// DecodePrediction reverses EncodePrediction.
func DecodePrediction(r *ckpt.Reader) Prediction {
	var p Prediction
	p.Next = r.U64()
	p.Exit = r.Int()
	p.Kind = Kind(r.U8())
	p.ghr = r.U32()
	p.rasSP = r.Int()
	p.usedG = r.Bool()
	p.lexit = r.U8()
	p.gexit = r.U8()
	return p
}

// SaveState serializes every predictor table and stat counter.
func (p *Predictor) SaveState(w *ckpt.Writer) {
	w.Section("pred")
	for _, h := range p.localHist {
		w.U16(h)
	}
	for _, e := range p.localPred {
		w.U8(e.exit)
		w.U8(e.conf)
	}
	for _, e := range p.globPred {
		w.U8(e.exit)
		w.U8(e.conf)
	}
	for _, c := range p.chooser {
		w.U8(c)
	}
	w.U32(p.ghr)
	for _, e := range p.btb {
		w.U32(e.tag)
		w.U64(e.target)
		w.Bool(e.valid)
	}
	for _, e := range p.ctb {
		w.U32(e.tag)
		w.U64(e.target)
		w.Bool(e.valid)
	}
	for _, v := range p.ras {
		w.U64(v)
	}
	w.Int(p.rasSP)
	for _, e := range p.btype {
		w.U8(uint8(e.kind))
		w.U8(e.conf)
	}
	w.U64(p.Predictions)
	w.U64(p.ExitMisses)
	w.U64(p.TargetMisses)
}

// LoadState restores every predictor table and stat counter.
func (p *Predictor) LoadState(r *ckpt.Reader) {
	r.Section("pred")
	for i := range p.localHist {
		p.localHist[i] = r.U16()
	}
	for i := range p.localPred {
		p.localPred[i].exit = r.U8()
		p.localPred[i].conf = r.U8()
	}
	for i := range p.globPred {
		p.globPred[i].exit = r.U8()
		p.globPred[i].conf = r.U8()
	}
	for i := range p.chooser {
		p.chooser[i] = r.U8()
	}
	p.ghr = r.U32()
	for i := range p.btb {
		p.btb[i].tag = r.U32()
		p.btb[i].target = r.U64()
		p.btb[i].valid = r.Bool()
	}
	for i := range p.ctb {
		p.ctb[i].tag = r.U32()
		p.ctb[i].target = r.U64()
		p.ctb[i].valid = r.Bool()
	}
	for i := range p.ras {
		p.ras[i] = r.U64()
	}
	p.rasSP = r.Int()
	for i := range p.btype {
		p.btype[i].kind = Kind(r.U8())
		p.btype[i].conf = r.U8()
	}
	p.Predictions = r.U64()
	p.ExitMisses = r.U64()
	p.TargetMisses = r.U64()
}
