package tir

import (
	"fmt"
	"math"

	"trips/internal/mem"
)

// InterpResult summarizes a golden-model run.
type InterpResult struct {
	// DynInsts is the number of executed TIR instructions (excluding
	// terminators); a machine-neutral work measure.
	DynInsts uint64
	// DynBlocks is the number of executed basic blocks.
	DynBlocks uint64
	// Branches counts executed conditional branches.
	Branches uint64
}

// Interp executes f over memory m with the given initial register values
// (regs is modified in place and holds the final values on return).
// maxBlocks bounds execution to catch runaway programs.
func Interp(f *Func, m *mem.Memory, regs []uint64, maxBlocks uint64) (InterpResult, error) {
	var res InterpResult
	if err := f.Validate(); err != nil {
		return res, err
	}
	need := f.NumRegs()
	if len(regs) < need {
		return res, fmt.Errorf("tir: %s needs %d registers, got %d", f.Name, need, len(regs))
	}
	b := f.Entry
	for {
		res.DynBlocks++
		if res.DynBlocks > maxBlocks {
			return res, fmt.Errorf("tir: %s exceeded %d blocks", f.Name, maxBlocks)
		}
		for _, in := range b.Insts {
			res.DynInsts++
			switch in.Op {
			case Load:
				regs[in.Dst] = m.Read(regs[in.A]+uint64(in.Imm), in.Width, in.Signed)
			case Store:
				m.Write(regs[in.A]+uint64(in.Imm), in.Width, regs[in.B])
			default:
				regs[in.Dst] = EvalOp(in.Op, regs[in.A], regs[in.B], in.Imm)
			}
		}
		switch b.Term.Kind {
		case TermRet:
			return res, nil
		case TermJump:
			b = b.Term.Then
		case TermBranch:
			res.Branches++
			if regs[b.Term.Cond] != 0 {
				b = b.Term.Then
			} else {
				b = b.Term.Else
			}
		}
	}
}

// EvalOp computes a non-memory TIR operation. It is shared with the alpha
// baseline's execute stage so both machines agree on semantics.
func EvalOp(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return uint64(int64(a) * int64(b))
	case Div:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case Mod:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (b & 63)
	case Shr:
		return a >> (b & 63)
	case Sra:
		return uint64(int64(a) >> (b & 63))
	case Min:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case Max:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case SetEQ:
		return b2u(a == b)
	case SetNE:
		return b2u(a != b)
	case SetLT:
		return b2u(int64(a) < int64(b))
	case SetLE:
		return b2u(int64(a) <= int64(b))
	case SetGT:
		return b2u(int64(a) > int64(b))
	case SetGE:
		return b2u(int64(a) >= int64(b))
	case SetLTU:
		return b2u(a < b)
	case SetGEU:
		return b2u(a >= b)
	case AddI:
		return a + uint64(imm)
	case MulI:
		return uint64(int64(a) * imm)
	case AndI:
		return a & uint64(imm)
	case OrI:
		return a | uint64(imm)
	case XorI:
		return a ^ uint64(imm)
	case ShlI:
		return a << (uint64(imm) & 63)
	case ShrI:
		return a >> (uint64(imm) & 63)
	case SraI:
		return uint64(int64(a) >> (uint64(imm) & 63))
	case SetEQI:
		return b2u(int64(a) == imm)
	case SetLTI:
		return b2u(int64(a) < imm)
	case SetGEI:
		return b2u(int64(a) >= imm)
	case ConstI:
		return uint64(imm)
	case Mov:
		return a
	case FAdd:
		return f2u(u2f(a) + u2f(b))
	case FSub:
		return f2u(u2f(a) - u2f(b))
	case FMul:
		return f2u(u2f(a) * u2f(b))
	case FDiv:
		return f2u(u2f(a) / u2f(b))
	case FSetEQ:
		return b2u(u2f(a) == u2f(b))
	case FSetLT:
		return b2u(u2f(a) < u2f(b))
	case FSetLE:
		return b2u(u2f(a) <= u2f(b))
	case IToF:
		return f2u(float64(int64(a)))
	case FToI:
		f := u2f(a)
		if math.IsNaN(f) {
			return 0
		}
		return uint64(int64(f))
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func u2f(u uint64) float64 { return math.Float64frombits(u) }
func f2u(f float64) uint64 { return math.Float64bits(f) }
