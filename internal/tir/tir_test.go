package tir

import (
	"testing"
	"testing/quick"

	"trips/internal/mem"
)

func TestInterpLoopAndMemory(t *testing.T) {
	// for i in 0..9: mem[base+8i] = i*i; then sum them back.
	f := NewFunc("t")
	base := f.NewReg()
	i := f.NewReg()
	s := f.NewReg()
	entry := f.NewBB("entry")
	w := f.NewBB("w")
	r := f.NewBB("r")
	done := f.NewBB("done")
	entry.Emit(Inst{Op: ConstI, Dst: i, Imm: 0})
	entry.Emit(Inst{Op: ConstI, Dst: s, Imm: 0})
	entry.Jump(w)
	sq := w.Op(f, Mul, i, i)
	off := w.OpI(f, ShlI, i, 3)
	ad := w.Op(f, Add, base, off)
	w.Store(ad, 0, sq, 8)
	w.Emit(Inst{Op: AddI, Dst: i, A: i, Imm: 1})
	c := w.OpI(f, SetLTI, i, 10)
	w.Branch(c, w, r)
	r.Emit(Inst{Op: ConstI, Dst: i, Imm: 0})
	loop2 := f.NewBB("loop2")
	r.Jump(loop2)
	off2 := loop2.OpI(f, ShlI, i, 3)
	ad2 := loop2.Op(f, Add, base, off2)
	v := loop2.Load(f, ad2, 0, 8, false)
	loop2.Emit(Inst{Op: Add, Dst: s, A: s, B: v})
	loop2.Emit(Inst{Op: AddI, Dst: i, A: i, Imm: 1})
	c2 := loop2.OpI(f, SetLTI, i, 10)
	loop2.Branch(c2, loop2, done)
	done.Ret()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	regs := make([]uint64, f.NumRegs())
	regs[base] = 0x1000
	res, err := Interp(f, m, regs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if regs[s] != 285 {
		t.Errorf("sum of squares = %d, want 285", regs[s])
	}
	if res.DynBlocks != 23 {
		t.Errorf("dynamic blocks = %d, want 23", res.DynBlocks)
	}
	if res.Branches != 20 {
		t.Errorf("branches = %d, want 20", res.Branches)
	}
}

func TestInterpBoundsRunaway(t *testing.T) {
	f := NewFunc("inf")
	b := f.NewBB("b")
	b.Jump(b)
	regs := []uint64{}
	if _, err := Interp(f, mem.New(), regs, 100); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

func TestInterpRejectsInvalid(t *testing.T) {
	f := NewFunc("bad")
	b := f.NewBB("b")
	b.Emit(Inst{Op: Load, Dst: 0, A: 0, Width: 3})
	b.Ret()
	if _, err := Interp(f, mem.New(), make([]uint64, 4), 10); err == nil {
		t.Fatal("invalid width accepted")
	}
}

func TestQuickEvalOpMatchesISASemantics(t *testing.T) {
	// The TIR evaluator and the TRIPS ALU must agree — both machines run
	// the same workloads. Spot-check a few ops with shared semantics.
	f := func(a, b uint64) bool {
		return EvalOp(Add, a, b, 0) == a+b &&
			EvalOp(Sub, a, b, 0) == a-b &&
			EvalOp(Shl, a, b, 0) == a<<(b&63) &&
			EvalOp(SetLTU, a, b, 0) == b2u(a < b) &&
			EvalOp(Max, a, b, 0) == EvalOp(Sub, a+b, EvalOp(Min, a, b, 0), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpMetadata(t *testing.T) {
	if !Store.UsesB() || Store.WritesDst() {
		t.Error("store metadata wrong")
	}
	if ConstI.UsesA() {
		t.Error("const should not read A")
	}
	if !Load.HasImm() || !AddI.HasImm() || Add.HasImm() {
		t.Error("imm metadata wrong")
	}
	if !FAdd.IsFloat() || Add.IsFloat() {
		t.Error("float metadata wrong")
	}
}

func TestEvalOpAllOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{Add, 3, 4, 0, 7},
		{Sub, 9, 4, 0, 5},
		{Mul, 6, 7, 0, 42},
		{Div, 42, 6, 0, 7},
		{Div, 42, 0, 0, 0},
		{Mod, 43, 6, 0, 1},
		{Mod, 43, 0, 0, 0},
		{And, 0b1100, 0b1010, 0, 0b1000},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{Shl, 1, 8, 0, 256},
		{Shr, 256, 8, 0, 1},
		{Sra, ^uint64(15), 2, 0, ^uint64(3)},
		{Min, ^uint64(0), 5, 0, ^uint64(0)},
		{Max, ^uint64(0), 5, 0, 5},
		{SetEQ, 5, 5, 0, 1},
		{SetNE, 5, 5, 0, 0},
		{SetLT, ^uint64(0), 0, 0, 1},
		{SetLE, 5, 5, 0, 1},
		{SetGT, 6, 5, 0, 1},
		{SetGE, 5, 5, 0, 1},
		{SetLTU, ^uint64(0), 0, 0, 0},
		{SetGEU, ^uint64(0), 0, 0, 1},
		{AddI, 10, 0, -3, 7},
		{MulI, 10, 0, 4, 40},
		{AndI, 0b1111, 0, 0b1010, 0b1010},
		{OrI, 0b0101, 0, 0b1010, 0b1111},
		{XorI, 0b1111, 0, 0b1010, 0b0101},
		{ShlI, 1, 0, 4, 16},
		{ShrI, 16, 0, 4, 1},
		{SraI, ^uint64(15), 0, 2, ^uint64(3)},
		{SetEQI, 7, 0, 7, 1},
		{SetLTI, 3, 0, 4, 1},
		{SetGEI, 4, 0, 4, 1},
		{ConstI, 0, 0, -9, ^uint64(8)},
		{Mov, 99, 0, 0, 99},
	}
	for _, c := range cases {
		if got := EvalOp(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("EvalOp(%v, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
	// Floating point.
	fb := func(v float64) uint64 { return f2u(v) }
	if got := EvalOp(FAdd, fb(1.5), fb(2.25), 0); got != fb(3.75) {
		t.Errorf("fadd = %v", u2f(got))
	}
	if got := EvalOp(FSub, fb(3), fb(1), 0); got != fb(2) {
		t.Errorf("fsub = %v", u2f(got))
	}
	if got := EvalOp(FMul, fb(3), fb(-2), 0); got != fb(-6) {
		t.Errorf("fmul = %v", u2f(got))
	}
	if got := EvalOp(FDiv, fb(1), fb(4), 0); got != fb(0.25) {
		t.Errorf("fdiv = %v", u2f(got))
	}
	if EvalOp(FSetEQ, fb(2), fb(2), 0) != 1 || EvalOp(FSetLT, fb(1), fb(2), 0) != 1 || EvalOp(FSetLE, fb(2), fb(2), 0) != 1 {
		t.Error("fp compares wrong")
	}
	if got := EvalOp(IToF, ^uint64(6), 0, 0); got != fb(-7) {
		t.Errorf("itof = %v", u2f(got))
	}
	if got := EvalOp(FToI, fb(-7.9), 0, 0); got != ^uint64(6) {
		t.Errorf("ftoi = %d", int64(got))
	}
	if got := EvalOp(FToI, f2u(nan()), 0, 0); got != 0 {
		t.Errorf("ftoi(nan) = %d", got)
	}
}

func nan() float64 { return u2f(0x7ff8000000000001) }

func TestStringsAndHelpers(t *testing.T) {
	f := NewFunc("s")
	b := f.NewBB("b")
	c := b.Const(f, 42)
	v := b.Load(f, c, 8, 4, true)
	b.Store(c, 0, v, 8)
	d := b.Op(f, Add, c, v)
	e := b.OpI(f, AddI, d, 3)
	b2 := f.NewBB("b2")
	b.Branch(e, b, b2)
	b2.Ret()
	f.Keep(e)
	for _, in := range b.Insts {
		if in.String() == "" {
			t.Errorf("empty String for %+v", in)
		}
	}
	if Add.String() != "add" || Op(200).String() == "" {
		t.Error("op String wrong")
	}
	if got := len(b.Succs()); got != 2 {
		t.Errorf("branch Succs = %d", got)
	}
	if got := len(b2.Succs()); got != 0 {
		t.Errorf("ret Succs = %d", got)
	}
	b2.Jump(b)
	if got := len(b2.Succs()); got != 1 {
		t.Errorf("jump Succs = %d", got)
	}
	if len(f.Keeps) != 1 {
		t.Error("Keep not recorded")
	}
}

func TestValidateErrors(t *testing.T) {
	// Jump without target.
	f := NewFunc("v1")
	b := f.NewBB("b")
	b.Term = Term{Kind: TermJump}
	if err := f.Validate(); err == nil {
		t.Error("jump without target accepted")
	}
	// Branch without targets.
	f2 := NewFunc("v2")
	b2 := f2.NewBB("b")
	b2.Term = Term{Kind: TermBranch}
	if err := f2.Validate(); err == nil {
		t.Error("branch without targets accepted")
	}
	// Bad op.
	f3 := NewFunc("v3")
	b3 := f3.NewBB("b")
	b3.Emit(Inst{Op: Nop})
	if err := f3.Validate(); err == nil {
		t.Error("nop accepted")
	}
	// No entry.
	f4 := NewFunc("v4")
	if err := f4.Validate(); err == nil {
		t.Error("empty function accepted")
	}
}
