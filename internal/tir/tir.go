// Package tir defines TIR, the tiny imperative IR that all benchmarks in
// this repository are written in. One TIR program compiles three ways:
//
//   - interpreted directly (the golden model used to verify both simulators),
//   - through tcc into TRIPS blocks (compiled and hand-optimized modes), and
//   - through the alpha backend into RISC code for the baseline simulator.
//
// TIR stands in for the paper's C/Fortran toolchain (Section 5.4): it is
// deliberately small — virtual registers, basic blocks, explicit loads and
// stores — but rich enough to express the paper's microbenchmarks, signal
// kernels, EEMBC-class loops and SPEC-class fragments.
package tir

import "fmt"

// Reg is a virtual register. Values are untyped 64-bit words; floating
// point uses IEEE 754 bit patterns.
type Reg int

// Op is a TIR operation.
type Op uint8

const (
	Nop Op = iota
	// Arithmetic and logic (two register sources).
	Add
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	Sra
	Min
	Max
	// Comparisons producing 0/1.
	SetEQ
	SetNE
	SetLT
	SetLE
	SetGT
	SetGE
	SetLTU
	SetGEU
	// Immediate forms (source A + Imm).
	AddI
	MulI
	AndI
	OrI
	XorI
	ShlI
	ShrI
	SraI
	SetEQI
	SetLTI
	SetGEI
	// Constants and moves.
	ConstI // Dst = Imm (any 64-bit value)
	Mov    // Dst = A
	// Floating point (64-bit IEEE).
	FAdd
	FSub
	FMul
	FDiv
	FSetEQ
	FSetLT
	FSetLE
	IToF
	FToI
	// Memory. Address = A + Imm. Width from the instruction; loads may
	// sign-extend. Store data in B.
	Load
	Store
	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sra: "sra",
	Min: "min", Max: "max",
	SetEQ: "seteq", SetNE: "setne", SetLT: "setlt", SetLE: "setle",
	SetGT: "setgt", SetGE: "setge", SetLTU: "setltu", SetGEU: "setgeu",
	AddI: "addi", MulI: "muli", AndI: "andi", OrI: "ori", XorI: "xori",
	ShlI: "shli", ShrI: "shri", SraI: "srai",
	SetEQI: "seteqi", SetLTI: "setlti", SetGEI: "setgei",
	ConstI: "const", Mov: "mov",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FSetEQ: "fseteq", FSetLT: "fsetlt", FSetLE: "fsetle",
	IToF: "itof", FToI: "ftoi",
	Load: "load", Store: "store",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// HasImm reports whether the op consumes its Imm field as an operand.
func (o Op) HasImm() bool {
	switch o {
	case AddI, MulI, AndI, OrI, XorI, ShlI, ShrI, SraI, SetEQI, SetLTI, SetGEI, ConstI, Load, Store:
		return true
	}
	return false
}

// UsesA and UsesB report which register sources the op reads.
func (o Op) UsesA() bool { return o != ConstI && o != Nop }
func (o Op) UsesB() bool {
	switch o {
	case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr, Sra, Min, Max,
		SetEQ, SetNE, SetLT, SetLE, SetGT, SetGE, SetLTU, SetGEU,
		FAdd, FSub, FMul, FDiv, FSetEQ, FSetLT, FSetLE, Store:
		return true
	}
	return false
}

// WritesDst reports whether the op produces a register result.
func (o Op) WritesDst() bool { return o != Store && o != Nop }

// IsFloat reports whether the op runs on the FPU.
func (o Op) IsFloat() bool { return o >= FAdd && o <= FToI }

// Inst is one TIR instruction.
type Inst struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int64
	Width  int  // memory access width (1, 2, 4, 8)
	Signed bool // sign-extending load
}

func (in Inst) String() string {
	switch {
	case in.Op == ConstI:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case in.Op == Load:
		return fmt.Sprintf("r%d = load%d [r%d+%d]", in.Dst, in.Width*8, in.A, in.Imm)
	case in.Op == Store:
		return fmt.Sprintf("store%d [r%d+%d] = r%d", in.Width*8, in.A, in.Imm, in.B)
	case in.Op.HasImm():
		return fmt.Sprintf("r%d = %s r%d, %d", in.Dst, in.Op, in.A, in.Imm)
	case in.Op.UsesB():
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
	}
}

// TermKind discriminates block terminators.
type TermKind uint8

const (
	// TermJump transfers to Then unconditionally.
	TermJump TermKind = iota
	// TermBranch transfers to Then if Cond != 0, else to Else.
	TermBranch
	// TermRet ends the program.
	TermRet
)

// Term is a basic-block terminator.
type Term struct {
	Kind TermKind
	Cond Reg
	Then *BB
	Else *BB
}

// BB is a basic block: straight-line instructions plus one terminator.
type BB struct {
	Label string
	Insts []Inst
	Term  Term
	// ID is assigned by Func in creation order.
	ID int
}

// Func is a TIR program: an entry block and the blocks reachable from it.
type Func struct {
	Name   string
	Blocks []*BB
	Entry  *BB
	// Keeps are registers observable after the program returns (its
	// results); compilers must keep them live to the exit.
	Keeps   []Reg
	nextReg Reg
}

// Keep marks registers as program results, live at every return.
func (f *Func) Keep(regs ...Reg) { f.Keeps = append(f.Keeps, regs...) }

// NewFunc creates an empty function.
func NewFunc(name string) *Func {
	return &Func{Name: name}
}

// NewBB appends a new basic block. The first block created is the entry.
func (f *Func) NewBB(label string) *BB {
	b := &BB{Label: label, ID: len(f.Blocks), Term: Term{Kind: TermRet}}
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	f.nextReg++
	return f.nextReg - 1
}

// NumRegs returns the number of virtual registers allocated.
func (f *Func) NumRegs() int { return int(f.nextReg) }

// Emit appends an instruction.
func (b *BB) Emit(in Inst) { b.Insts = append(b.Insts, in) }

// Op emits a two-source operation into a fresh register.
func (b *BB) Op(f *Func, op Op, a, bb Reg) Reg {
	d := f.NewReg()
	b.Emit(Inst{Op: op, Dst: d, A: a, B: bb})
	return d
}

// OpI emits an immediate operation into a fresh register.
func (b *BB) OpI(f *Func, op Op, a Reg, imm int64) Reg {
	d := f.NewReg()
	b.Emit(Inst{Op: op, Dst: d, A: a, Imm: imm})
	return d
}

// Const emits a constant into a fresh register.
func (b *BB) Const(f *Func, v int64) Reg {
	d := f.NewReg()
	b.Emit(Inst{Op: ConstI, Dst: d, Imm: v})
	return d
}

// Load emits a load of the given width.
func (b *BB) Load(f *Func, base Reg, off int64, width int, signed bool) Reg {
	d := f.NewReg()
	b.Emit(Inst{Op: Load, Dst: d, A: base, Imm: off, Width: width, Signed: signed})
	return d
}

// Store emits a store of the given width.
func (b *BB) Store(base Reg, off int64, data Reg, width int) {
	b.Emit(Inst{Op: Store, A: base, Imm: off, B: data, Width: width})
}

// Jump, Branch and Ret set the terminator.
func (b *BB) Jump(to *BB) { b.Term = Term{Kind: TermJump, Then: to} }
func (b *BB) Branch(cond Reg, t, e *BB) {
	b.Term = Term{Kind: TermBranch, Cond: cond, Then: t, Else: e}
}
func (b *BB) Ret() { b.Term = Term{Kind: TermRet} }

// Succs returns the terminator's successors.
func (b *BB) Succs() []*BB {
	switch b.Term.Kind {
	case TermJump:
		return []*BB{b.Term.Then}
	case TermBranch:
		return []*BB{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Validate checks structural invariants.
func (f *Func) Validate() error {
	if f.Entry == nil {
		return fmt.Errorf("tir: %s has no entry block", f.Name)
	}
	for _, b := range f.Blocks {
		for i, in := range b.Insts {
			if in.Op == Nop || in.Op >= numOps {
				return fmt.Errorf("tir: %s/%s inst %d: bad op %v", f.Name, b.Label, i, in.Op)
			}
			if (in.Op == Load || in.Op == Store) && in.Width != 1 && in.Width != 2 && in.Width != 4 && in.Width != 8 {
				return fmt.Errorf("tir: %s/%s inst %d: bad width %d", f.Name, b.Label, i, in.Width)
			}
		}
		switch b.Term.Kind {
		case TermJump:
			if b.Term.Then == nil {
				return fmt.Errorf("tir: %s/%s: jump without target", f.Name, b.Label)
			}
		case TermBranch:
			if b.Term.Then == nil || b.Term.Else == nil {
				return fmt.Errorf("tir: %s/%s: branch without targets", f.Name, b.Label)
			}
		}
	}
	return nil
}
