package proc

import (
	"fmt"
	"sort"

	"trips/internal/ckpt"
	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/lsq"
	"trips/internal/micronet"
	"trips/internal/predictor"
)

// Checkpoint support. SaveState serializes every piece of mutable simulated
// state — tiles, micronets, the event wheel, in-flight messages — into a
// ckpt.Writer at a cycle boundary; LoadState restores it into a core freshly
// constructed with an identical Config. Critical-path events are host-side
// observability tied to pointer graphs and are not serializable: SaveState
// refuses when TrackCritPath is enabled. Pools (opnMsg, dtFetch) restore
// empty — pooling is invisible to simulated state.

// ---------------------------------------------------------------------------
// Value / isa codecs
// ---------------------------------------------------------------------------

func encValue(w *ckpt.Writer, v Value) {
	w.U64(v.Bits)
	w.Bool(v.Null)
}

func decValue(r *ckpt.Reader) Value {
	return Value{Bits: r.U64(), Null: r.Bool()}
}

func encTarget(w *ckpt.Writer, t isa.Target) {
	w.Int(t.Index)
	w.U8(uint8(t.Kind))
}

func decTarget(r *ckpt.Reader) isa.Target {
	return isa.Target{Index: r.Int(), Kind: isa.OperandKind(r.U8())}
}

func encInst(w *ckpt.Writer, in *isa.Inst) {
	w.U8(uint8(in.Op))
	w.U8(uint8(in.Pred))
	encTarget(w, in.T0)
	encTarget(w, in.T1)
	w.I64(in.Imm)
	w.Int(in.LSID)
	w.Int(in.Exit)
	w.I64(int64(in.Offset))
}

func decInst(r *ckpt.Reader) isa.Inst {
	var in isa.Inst
	in.Op = isa.Opcode(r.U8())
	in.Pred = isa.PredMode(r.U8())
	in.T0 = decTarget(r)
	in.T1 = decTarget(r)
	in.Imm = r.I64()
	in.LSID = r.Int()
	in.Exit = r.Int()
	in.Offset = int32(r.I64())
	return in
}

func encReadInst(w *ckpt.Writer, rd isa.ReadInst) {
	w.Bool(rd.Valid)
	w.Int(rd.GR)
	encTarget(w, rd.RT0)
	encTarget(w, rd.RT1)
}

func decReadInst(r *ckpt.Reader) isa.ReadInst {
	var rd isa.ReadInst
	rd.Valid = r.Bool()
	rd.GR = r.Int()
	rd.RT0 = decTarget(r)
	rd.RT1 = decTarget(r)
	return rd
}

func encWriteInst(w *ckpt.Writer, wr isa.WriteInst) {
	w.Bool(wr.Valid)
	w.Int(wr.GR)
}

func decWriteInst(r *ckpt.Reader) isa.WriteInst {
	return isa.WriteInst{Valid: r.Bool(), GR: r.Int()}
}

func encHeaderInfo(w *ckpt.Writer, h *isa.HeaderInfo) {
	w.Bool(h != nil)
	if h == nil {
		return
	}
	w.U32(h.StoreMask)
	w.U8(uint8(h.Flags))
	w.Int(h.BodyChunks)
	w.Int(h.NumInsts)
	for i := range h.Reads {
		encReadInst(w, h.Reads[i])
	}
	for i := range h.Writes {
		encWriteInst(w, h.Writes[i])
	}
}

func decHeaderInfo(r *ckpt.Reader) *isa.HeaderInfo {
	if !r.Bool() {
		return nil
	}
	h := &isa.HeaderInfo{}
	h.StoreMask = r.U32()
	h.Flags = isa.BlockFlags(r.U8())
	h.BodyChunks = r.Int()
	h.NumInsts = r.Int()
	for i := range h.Reads {
		h.Reads[i] = decReadInst(r)
	}
	for i := range h.Writes {
		h.Writes[i] = decWriteInst(r)
	}
	return h
}

// ---------------------------------------------------------------------------
// Message codecs. Critical-path event fields restore as nil (SaveState
// refuses under TrackCritPath).
// ---------------------------------------------------------------------------

func encCoord(w *ckpt.Writer, at micronet.Coord) {
	w.Int(at.Row)
	w.Int(at.Col)
}

func decCoord(r *ckpt.Reader) micronet.Coord {
	return micronet.Coord{Row: r.Int(), Col: r.Int()}
}

func encOPNMsg(w *ckpt.Writer, m *opnMsg) {
	encCoord(w, m.dst)
	w.U8(uint8(m.kind))
	w.Int(m.slot)
	w.U64(m.seq)
	w.Int(m.thread)
	encTarget(w, m.target)
	encValue(w, m.val)
	w.U8(uint8(m.brOp))
	w.Int(m.brExit)
	w.I64(int64(m.brOffset))
	w.Int(m.lsid)
	w.U8(uint8(m.memOp))
	w.U64(m.addr)
	encValue(w, m.data)
	encTarget(w, m.ldT0)
	encTarget(w, m.ldT1)
	w.Int(m.hops)
	w.Int(m.waits)
	w.U64(m.tid)
}

func decOPNMsg(r *ckpt.Reader) *opnMsg {
	m := &opnMsg{}
	m.dst = decCoord(r)
	m.kind = opnKind(r.U8())
	m.slot = r.Int()
	m.seq = r.U64()
	m.thread = r.Int()
	m.target = decTarget(r)
	m.val = decValue(r)
	m.brOp = isa.Opcode(r.U8())
	m.brExit = r.Int()
	m.brOffset = int32(r.I64())
	m.lsid = r.Int()
	m.memOp = isa.Opcode(r.U8())
	m.addr = r.U64()
	m.data = decValue(r)
	m.ldT0 = decTarget(r)
	m.ldT1 = decTarget(r)
	m.hops = r.Int()
	m.waits = r.Int()
	m.tid = r.U64()
	r.NoteID(m.tid)
	return m
}

func encGSNMsg(w *ckpt.Writer, m gsnMsg) {
	w.U8(uint8(m.kind))
	w.Int(m.slot)
	w.U64(m.seq)
	w.U64(m.violSeq)
	w.U64(m.violAddr)
}

func decGSNMsg(r *ckpt.Reader) gsnMsg {
	var m gsnMsg
	m.kind = gsnKind(r.U8())
	m.slot = r.Int()
	m.seq = r.U64()
	m.violSeq = r.U64()
	m.violAddr = r.U64()
	return m
}

func encGCNMsg(w *ckpt.Writer, m gcnMsg) {
	w.U8(uint8(m.kind))
	w.Int(m.slot)
	w.U64(m.seq)
	w.U8(m.mask)
	for _, s := range m.seqs {
		w.U64(s)
	}
}

func decGCNMsg(r *ckpt.Reader) gcnMsg {
	var m gcnMsg
	m.kind = gcnKind(r.U8())
	m.slot = r.Int()
	m.seq = r.U64()
	m.mask = r.U8()
	for i := range m.seqs {
		m.seqs[i] = r.U64()
	}
	return m
}

func encDSNMsg(w *ckpt.Writer, m dsnMsg) {
	w.Int(m.slot)
	w.U64(m.seq)
	w.Int(m.thread)
	w.Int(m.lsid)
}

func decDSNMsg(r *ckpt.Reader) dsnMsg {
	return dsnMsg{slot: r.Int(), seq: r.U64(), thread: r.Int(), lsid: r.Int()}
}

// ---------------------------------------------------------------------------
// MemRequest codec. Exported because memory backends (FixedLatencyMem, the
// NUCA system) hold queued *MemRequests and must serialize them.
// ---------------------------------------------------------------------------

// EncodeMemRequest serializes one in-flight memory transaction, including
// the origin descriptor that lets a resolver rebuild its Done callback.
func EncodeMemRequest(w *ckpt.Writer, req *MemRequest) {
	w.U64(req.Addr)
	w.Int(req.N)
	w.Bool(req.IsWrite)
	w.Bool(req.Data != nil)
	if req.Data != nil {
		w.Bytes(req.Data)
	}
	w.U8(uint8(req.Origin.Kind))
	w.Int(req.Origin.Tile)
	if req.Origin.Kind == OriginDTUncachedLoad {
		encOPNMsg(w, req.Origin.msg)
	}
}

// DecodeMemRequest reverses EncodeMemRequest and, when res is non-nil,
// rebuilds the request's Done callback from its origin.
func DecodeMemRequest(r *ckpt.Reader, res OriginResolver) *MemRequest {
	req := &MemRequest{}
	req.Addr = r.U64()
	req.N = r.Int()
	req.IsWrite = r.Bool()
	if r.Bool() {
		req.Data = r.Bytes()
	}
	req.Origin.Kind = OriginKind(r.U8())
	req.Origin.Tile = r.Int()
	if req.Origin.Kind == OriginDTUncachedLoad {
		req.Origin.msg = decOPNMsg(r)
	}
	if res != nil && req.Origin.Kind != OriginNone {
		res.ResolveOrigin(req)
	}
	return req
}

// ResolveOrigin implements OriginResolver for tile-issued requests: it
// rebuilds the Done callback a live request would carry, referencing the
// restored tile state. DMA origins are resolved by the chip's wrapper.
func (c *Core) ResolveOrigin(req *MemRequest) {
	switch req.Origin.Kind {
	case OriginDTFetch:
		d := c.dts[req.Origin.Tile]
		line := req.Addr
		req.Done = func(data []byte) {
			d.wake()
			d.fillLine(line, data)
		}
	case OriginDTUncachedLoad:
		d := c.dts[req.Origin.Tile]
		msg := req.Origin.msg
		req.Done = func(data []byte) {
			d.wake()
			if d.slotSeq[msg.slot] != msg.seq {
				return
			}
			var v uint64
			for i := len(data) - 1; i >= 0; i-- {
				v = v<<8 | uint64(data[i])
			}
			d.replyLoad(d.core.cycle+1, msg, Value{Bits: extendValue(v, msg.memOp)}, nil)
		}
	case OriginDTUncachedStore:
		d := c.dts[req.Origin.Tile]
		if d.drainOrder.Len() == 0 || len(d.drains[d.drainOrder.Front()]) == 0 {
			panic("proc: restore: uncached-store request with no head drain entry")
		}
		st := d.drains[d.drainOrder.Front()][0]
		req.Done = func([]byte) {
			d.wake()
			d.uncachedSt[st] = 2
		}
	case OriginITRefill:
		it := c.its[req.Origin.Tile]
		blockAddr := req.Addr - uint64(it.id)*isa.ChunkBytes
		req.Done = func(data []byte) {
			it.active = true
			it.chunks[blockAddr] = &itChunk{raw: data}
			if st := it.refills[blockAddr]; st != nil {
				st.ownDone = true
			}
		}
	}
}

// ---------------------------------------------------------------------------
// pendingLoad codec (DT queues and MSHR waiters).
// ---------------------------------------------------------------------------

func encPendingLoad(w *ckpt.Writer, pl *pendingLoad) {
	encOPNMsg(w, pl.msg)
	w.I64(pl.readyAt)
	w.Bool(pl.waiting)
}

func decPendingLoad(r *ckpt.Reader) *pendingLoad {
	return &pendingLoad{msg: decOPNMsg(r), readyAt: r.I64(), waiting: r.Bool()}
}

func encPendingLoads(w *ckpt.Writer, s []*pendingLoad) {
	w.Int(len(s))
	for _, pl := range s {
		encPendingLoad(w, pl)
	}
}

func decPendingLoads(r *ckpt.Reader) []*pendingLoad {
	n := r.Int()
	if r.Err() != nil || n == 0 {
		return nil
	}
	s := make([]*pendingLoad, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, decPendingLoad(r))
	}
	return s
}

// ---------------------------------------------------------------------------
// Event wheel
// ---------------------------------------------------------------------------

func (c *Core) encSchedEvent(w *ckpt.Writer, e *schedEvent) {
	w.U8(uint8(e.kind))
	w.Int(e.slot)
	w.U64(e.seq)
	w.Int(e.idx)
	switch e.kind {
	case evBodyInst:
		w.Int(e.et.id)
		encInst(w, &e.inst)
	case evHeaderBeat:
		w.Int(e.rt.id)
		encReadInst(w, e.rd)
		encWriteInst(w, e.wr)
	case evStoreMask:
		w.Int(e.dt.id)
		w.U32(e.mask)
	case evRefill:
		w.Int(e.it.id)
	case evSlowOPN:
		encCoord(w, e.at)
		encOPNMsg(w, e.msg)
	}
}

func (c *Core) decSchedEvent(r *ckpt.Reader) (schedEvent, bool) {
	var e schedEvent
	e.kind = evKind(r.U8())
	e.slot = r.Int()
	e.seq = r.U64()
	e.idx = r.Int()
	switch e.kind {
	case evBodyInst:
		id := r.Int()
		if id < 0 || id >= len(c.ets) {
			r.Failf("sched event ET id %d out of range", id)
			return e, false
		}
		e.et = c.ets[id]
		e.inst = decInst(r)
	case evHeaderBeat:
		id := r.Int()
		if id < 0 || id >= len(c.rts) {
			r.Failf("sched event RT id %d out of range", id)
			return e, false
		}
		e.rt = c.rts[id]
		e.rd = decReadInst(r)
		e.wr = decWriteInst(r)
	case evStoreMask:
		id := r.Int()
		if id < 0 || id >= len(c.dts) {
			r.Failf("sched event DT id %d out of range", id)
			return e, false
		}
		e.dt = c.dts[id]
		e.mask = r.U32()
	case evRefill:
		id := r.Int()
		if id < 0 || id >= len(c.its) {
			r.Failf("sched event IT id %d out of range", id)
			return e, false
		}
		e.it = c.its[id]
	case evSlowOPN:
		e.at = decCoord(r)
		e.msg = decOPNMsg(r)
	default:
		r.Failf("sched event kind %d unknown", e.kind)
		return e, false
	}
	return e, r.Err() == nil
}

func (c *Core) saveWheel(w *ckpt.Writer) {
	w.Section("wheel")
	// At a cycle boundary every wheel slot holds events for cycles
	// c.cycle..c.cycle+wheelSize-1; serialize by delta so the restore is
	// independent of the absolute slot indices.
	for delta := int64(0); delta < wheelSize; delta++ {
		evs := c.wheel[(c.cycle+delta)&wheelMask]
		w.Int(len(evs))
		for i := range evs {
			c.encSchedEvent(w, &evs[i])
		}
	}
	cycles := make([]int64, 0, len(c.schedOverflow))
	for cyc := range c.schedOverflow {
		cycles = append(cycles, cyc)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	w.Int(len(cycles))
	for _, cyc := range cycles {
		w.I64(cyc)
		evs := c.schedOverflow[cyc]
		w.Int(len(evs))
		for i := range evs {
			c.encSchedEvent(w, &evs[i])
		}
	}
}

func (c *Core) loadWheel(r *ckpt.Reader) {
	r.Section("wheel")
	for i := range c.wheel {
		c.wheel[i] = c.wheel[i][:0]
	}
	for delta := int64(0); delta < wheelSize; delta++ {
		n := r.Int()
		if r.Err() != nil {
			return
		}
		slot := &c.wheel[(c.cycle+delta)&wheelMask]
		for i := 0; i < n; i++ {
			e, ok := c.decSchedEvent(r)
			if !ok {
				return
			}
			*slot = append(*slot, e)
		}
	}
	c.schedOverflow = nil
	no := r.Int()
	if r.Err() != nil {
		return
	}
	if no > 0 {
		c.schedOverflow = make(map[int64][]schedEvent, no)
		for i := 0; i < no; i++ {
			cyc := r.I64()
			n := r.Int()
			if r.Err() != nil {
				return
			}
			evs := make([]schedEvent, 0, n)
			for j := 0; j < n; j++ {
				e, ok := c.decSchedEvent(r)
				if !ok {
					return
				}
				evs = append(evs, e)
			}
			c.schedOverflow[cyc] = evs
		}
	}
}

// ---------------------------------------------------------------------------
// ET
// ---------------------------------------------------------------------------

func encOperand(w *ckpt.Writer, op *operand) {
	w.Bool(op.have)
	encValue(w, op.v)
}

func decOperand(r *ckpt.Reader) operand {
	return operand{have: r.Bool(), v: decValue(r)}
}

func (e *etTile) saveState(w *ckpt.Writer) {
	w.Section("et")
	w.Int(e.id)
	for s := 0; s < NumSlots; s++ {
		for i := range e.stations[s] {
			st := &e.stations[s][i]
			w.Bool(st.present)
			w.Bool(st.fired)
			encInst(w, &st.inst)
			w.Int(st.index)
			encOperand(w, &st.left)
			encOperand(w, &st.right)
			encOperand(w, &st.pred)
		}
		w.U64(e.slotSeq[s])
		w.Int(e.slotThread[s])
		w.U8(uint8(e.pending[s]))
		w.U8(e.readyMask[s])
	}
	w.I64(e.divBusyUntil)
	w.Int(len(e.pipe))
	for i := range e.pipe {
		f := &e.pipe[i]
		w.I64(f.doneAt)
		w.Int(f.slot)
		w.U64(f.seq)
		w.Int(f.thread)
		pos := -1
		for p := range e.stations[f.slot] {
			if &e.stations[f.slot][p] == f.st {
				pos = p
				break
			}
		}
		if pos < 0 {
			panic("proc: checkpoint: ET pipe entry station not in its frame")
		}
		w.Int(pos)
		encValue(w, f.result)
	}
	e.outQ.SaveState(w, encOPNMsg)
	w.Bool(e.active)
	w.U64(e.Issued)
	w.U64(e.LocalBypass)
	w.U64(e.Remote)
	w.U64(e.DeadPred)
	w.U64(e.DroppedStale)
}

func (e *etTile) loadState(r *ckpt.Reader) {
	r.Section("et")
	if id := r.Int(); id != e.id && r.Err() == nil {
		r.Failf("ET id mismatch: saved %d, live %d", id, e.id)
		return
	}
	for s := 0; s < NumSlots; s++ {
		for i := range e.stations[s] {
			st := &e.stations[s][i]
			*st = station{}
			st.present = r.Bool()
			st.fired = r.Bool()
			st.inst = decInst(r)
			st.index = r.Int()
			st.left = decOperand(r)
			st.right = decOperand(r)
			st.pred = decOperand(r)
		}
		e.slotSeq[s] = r.U64()
		e.slotThread[s] = r.Int()
		e.pending[s] = int8(r.U8())
		e.readyMask[s] = r.U8()
	}
	e.divBusyUntil = r.I64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	e.pipe = e.pipe[:0]
	for i := 0; i < n; i++ {
		var f inflight
		f.doneAt = r.I64()
		f.slot = r.Int()
		f.seq = r.U64()
		f.thread = r.Int()
		pos := r.Int()
		if r.Err() != nil {
			return
		}
		if f.slot < 0 || f.slot >= NumSlots || pos < 0 || pos >= isa.SlotsPerET {
			r.Failf("ET pipe entry slot %d pos %d out of range", f.slot, pos)
			return
		}
		f.st = &e.stations[f.slot][pos]
		f.result = decValue(r)
		e.pipe = append(e.pipe, f)
	}
	e.outQ.LoadState(r, decOPNMsg)
	e.active = r.Bool()
	e.Issued = r.U64()
	e.LocalBypass = r.U64()
	e.Remote = r.U64()
	e.DeadPred = r.U64()
	e.DroppedStale = r.U64()
}

// ---------------------------------------------------------------------------
// RT
// ---------------------------------------------------------------------------

func (t *rtTile) saveState(w *ckpt.Writer) {
	w.Section("rt")
	w.Int(t.id)
	for th := range t.regs {
		for i := range t.regs[th] {
			w.U64(t.regs[th][i])
		}
	}
	for s := 0; s < NumSlots; s++ {
		for i := range t.readQ[s] {
			e := &t.readQ[s][i]
			w.Bool(e.valid)
			w.Bool(e.done)
			w.Int(e.gr)
			encTarget(w, e.rt0)
			encTarget(w, e.rt1)
			w.Bool(e.waiting)
			w.Int(e.waitSlot)
			w.U64(e.waitSeq)
			w.Int(e.waitIdx)
			w.Bool(e.unresolved)
		}
		for i := range t.writeQ[s] {
			we := &t.writeQ[s][i]
			w.Bool(we.valid)
			w.Int(we.gr)
			w.Bool(we.have)
			encValue(w, we.val)
		}
		w.U64(t.slotSeq[s])
		w.Int(t.slotThread[s])
		w.U8(t.hdrBeats[s])
		w.Bool(t.finishOwn[s])
		w.Bool(t.finishEast[s])
		w.Bool(t.finishSent[s])
		w.Bool(t.committing[s])
		w.Int(t.drainIdx[s])
		w.Bool(t.ackOwn[s])
		w.Bool(t.ackEast[s])
		w.Bool(t.ackSent[s])
		w.Int(t.missingWrites[s])
	}
	t.outQ.SaveState(w, encOPNMsg)
	w.Int(t.unresolved)
	w.Bool(t.active)
	w.U64(t.ReadsForwarded)
	w.U64(t.ReadsFromFile)
	w.U64(t.ReadsBuffered)
	w.U64(t.NullWrites)
}

func (t *rtTile) loadState(r *ckpt.Reader) {
	r.Section("rt")
	if id := r.Int(); id != t.id && r.Err() == nil {
		r.Failf("RT id mismatch: saved %d, live %d", id, t.id)
		return
	}
	for th := range t.regs {
		for i := range t.regs[th] {
			t.regs[th][i] = r.U64()
		}
	}
	for s := 0; s < NumSlots; s++ {
		for i := range t.readQ[s] {
			e := &t.readQ[s][i]
			*e = readEntry{}
			e.valid = r.Bool()
			e.done = r.Bool()
			e.gr = r.Int()
			e.rt0 = decTarget(r)
			e.rt1 = decTarget(r)
			e.waiting = r.Bool()
			e.waitSlot = r.Int()
			e.waitSeq = r.U64()
			e.waitIdx = r.Int()
			e.unresolved = r.Bool()
		}
		for i := range t.writeQ[s] {
			we := &t.writeQ[s][i]
			*we = writeEntry{}
			we.valid = r.Bool()
			we.gr = r.Int()
			we.have = r.Bool()
			we.val = decValue(r)
		}
		t.slotSeq[s] = r.U64()
		t.slotThread[s] = r.Int()
		t.hdrBeats[s] = r.U8()
		t.hdrEv[s] = nil
		t.finishOwn[s] = r.Bool()
		t.finishEast[s] = r.Bool()
		t.finishOwnEv[s] = nil
		t.finishEastEv[s] = nil
		t.finishSent[s] = r.Bool()
		t.committing[s] = r.Bool()
		t.drainIdx[s] = r.Int()
		t.commitEv[s] = nil
		t.ackOwn[s] = r.Bool()
		t.ackEast[s] = r.Bool()
		t.ackOwnEv[s] = nil
		t.ackEastEv[s] = nil
		t.ackSent[s] = r.Bool()
		t.missingWrites[s] = r.Int()
	}
	t.outQ.LoadState(r, decOPNMsg)
	t.unresolved = r.Int()
	t.active = r.Bool()
	t.ReadsForwarded = r.U64()
	t.ReadsFromFile = r.U64()
	t.ReadsBuffered = r.U64()
	t.NullWrites = r.U64()
}

// ---------------------------------------------------------------------------
// IT
// ---------------------------------------------------------------------------

func (it *itTile) saveState(w *ckpt.Writer) {
	w.Section("it")
	w.Int(it.id)
	addrs := make([]uint64, 0, len(it.chunks))
	for a := range it.chunks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		w.U64(a)
		// Only the raw chunk bytes are state; the decoded forms are lazy,
		// deterministic derivations.
		w.Bytes(it.chunks[a].raw)
	}
	w.Int(len(it.refillOrder))
	for _, a := range it.refillOrder {
		st := it.refills[a]
		w.U64(a)
		w.Bool(st.ownDone)
		w.Bool(st.southDone)
	}
	it.pending.SaveState(w, func(w *ckpt.Writer, a uint64) { w.U64(a) })
	w.Bool(it.active)
	w.U64(it.Refills)
}

func (it *itTile) loadState(r *ckpt.Reader) {
	r.Section("it")
	if id := r.Int(); id != it.id && r.Err() == nil {
		r.Failf("IT id mismatch: saved %d, live %d", id, it.id)
		return
	}
	n := r.Int()
	if r.Err() != nil {
		return
	}
	it.chunks = make(map[uint64]*itChunk, n)
	for i := 0; i < n; i++ {
		a := r.U64()
		raw := r.Bytes()
		if r.Err() != nil {
			return
		}
		it.chunks[a] = &itChunk{raw: raw}
	}
	nr := r.Int()
	if r.Err() != nil {
		return
	}
	it.refills = make(map[uint64]*itRefill, nr)
	it.refillOrder = it.refillOrder[:0]
	for i := 0; i < nr; i++ {
		a := r.U64()
		st := &itRefill{ownDone: r.Bool(), southDone: r.Bool()}
		it.refills[a] = st
		it.refillOrder = append(it.refillOrder, a)
	}
	it.pending.LoadState(r, func(r *ckpt.Reader) uint64 { return r.U64() })
	it.active = r.Bool()
	it.Refills = r.U64()
}

// ---------------------------------------------------------------------------
// GT
// ---------------------------------------------------------------------------

func (g *gtTile) saveState(w *ckpt.Writer) {
	w.Section("gt")
	g.pred.SaveState(w)
	addrs := make([]uint64, 0, len(g.tags))
	for a := range g.tags {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		e := g.tags[a]
		w.U64(a)
		w.Bool(e.present)
		w.I64(e.lastUse)
	}
	for s := range g.slots {
		b := &g.slots[s]
		w.Bool(b.valid)
		w.U64(b.seq)
		w.U64(b.addr)
		w.Int(b.thread)
		encHeaderInfo(w, b.hdr)
		predictor.EncodePrediction(w, b.selfPred)
		predictor.EncodePrediction(w, b.succPred)
		w.U64(b.predictedNext)
		w.Bool(b.branchSeen)
		w.U64(b.branchNext)
		w.Int(b.branchExit)
		w.U8(uint8(b.branchKind))
		w.Bool(b.writesDone)
		w.Bool(b.storesDone)
		w.Bool(b.mispChecked)
		w.Bool(b.commitSent)
		w.Bool(b.ackR)
		w.Bool(b.ackS)
	}
	for t := range g.threads {
		tc := &g.threads[t]
		w.Bool(tc.active)
		w.U64(tc.nextFetch)
		w.Bool(tc.halted)
		w.U64(tc.lastSeq)
		predictor.EncodePrediction(w, tc.pendingPred)
		w.U8(uint8(tc.stage))
		w.I64(tc.stageUntil)
		w.U64(tc.fetchAddr)
		w.Int(tc.fetchSlot)
		w.Bool(tc.refillWait)
		w.U64(tc.badFetch)
	}
	w.U64(g.nextSeq)
	w.I64(g.dispatchBusyUntil)
	w.Int(g.rrThread)
	w.U64(g.Fetches)
	w.U64(g.Refills)
	w.U64(g.Flushes)
	w.U64(g.Mispredicts)
	w.U64(g.ViolationFlushes)
	w.U64(g.Commits)
}

func (g *gtTile) loadState(r *ckpt.Reader) {
	r.Section("gt")
	g.pred.LoadState(r)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	g.tags = make(map[uint64]*tagEntry, n)
	for i := 0; i < n; i++ {
		a := r.U64()
		g.tags[a] = &tagEntry{present: r.Bool(), lastUse: r.I64()}
	}
	for s := range g.slots {
		b := &g.slots[s]
		*b = blockCtx{}
		b.valid = r.Bool()
		b.seq = r.U64()
		b.addr = r.U64()
		b.thread = r.Int()
		b.hdr = decHeaderInfo(r)
		b.selfPred = predictor.DecodePrediction(r)
		b.succPred = predictor.DecodePrediction(r)
		b.predictedNext = r.U64()
		b.branchSeen = r.Bool()
		b.branchNext = r.U64()
		b.branchExit = r.Int()
		b.branchKind = predictor.Kind(r.U8())
		b.writesDone = r.Bool()
		b.storesDone = r.Bool()
		b.mispChecked = r.Bool()
		b.commitSent = r.Bool()
		b.ackR = r.Bool()
		b.ackS = r.Bool()
	}
	for t := range g.threads {
		tc := &g.threads[t]
		*tc = threadCtx{}
		tc.active = r.Bool()
		tc.nextFetch = r.U64()
		tc.halted = r.Bool()
		tc.lastSeq = r.U64()
		tc.pendingPred = predictor.DecodePrediction(r)
		tc.stage = fetchStage(r.U8())
		tc.stageUntil = r.I64()
		tc.fetchAddr = r.U64()
		tc.fetchSlot = r.Int()
		tc.refillWait = r.Bool()
		tc.badFetch = r.U64()
	}
	g.nextSeq = r.U64()
	g.dispatchBusyUntil = r.I64()
	g.rrThread = r.Int()
	g.Fetches = r.U64()
	g.Refills = r.U64()
	g.Flushes = r.U64()
	g.Mispredicts = r.U64()
	g.ViolationFlushes = r.U64()
	g.Commits = r.U64()
	g.lastCommitEv = nil
}

// ---------------------------------------------------------------------------
// DT
// ---------------------------------------------------------------------------

func encMSHRWaiter(w *ckpt.Writer, waiter any) {
	pl, _ := waiter.(*pendingLoad)
	w.Bool(pl != nil)
	if pl != nil {
		encPendingLoad(w, pl)
	}
}

func decMSHRWaiter(r *ckpt.Reader) any {
	if r.Bool() {
		return decPendingLoad(r)
	}
	// Write-allocate fetches register a nil waiter.
	return (*pendingLoad)(nil)
}

func (d *dtTile) saveState(w *ckpt.Writer) {
	w.Section("dt")
	w.Int(d.id)
	d.bank.SaveState(w)
	d.mshr.SaveState(w, encMSHRWaiter)
	for t := range d.lsqs {
		d.lsqs[t].SaveState(w)
	}
	d.dep.SaveState(w)
	for s := 0; s < NumSlots; s++ {
		w.U64(d.slotSeq[s])
		w.Int(d.slotThread[s])
		w.U32(d.storeMask[s])
		w.U32(d.storeSeen[s])
		w.Bool(d.maskKnown[s])
		w.Bool(d.finishSent[s])
		w.Bool(d.ackOwn[s])
		w.Bool(d.ackEast[s])
		w.Bool(d.ackSent[s])
		w.Bool(d.committing[s])
	}
	d.inQ.SaveState(w, encOPNMsg)
	encPendingLoads(w, d.stalled)
	d.uncachedQ.SaveState(w, encPendingLoad)
	encPendingLoads(w, d.hitQ)
	encPendingLoads(w, d.conflictLoads)
	encPendingLoads(w, d.cacheRetry)
	w.Bool(d.mshrFreed)
	d.pendingFetch.SaveState(w, func(w *ckpt.Writer, a uint64) { w.U64(a) })
	d.gsnOut.SaveState(w, encGSNMsg)
	// Commit drains, in drain order (the map is keyed 1:1 with the queue).
	d.drainOrder.SaveState(w, func(w *ckpt.Writer, seq uint64) { w.U64(seq) })
	for i := 0; i < d.drainOrder.Len(); i++ {
		stores := d.drains[d.drainOrder.At(i)]
		w.Int(len(stores))
		for _, st := range stores {
			lsq.EncodeEntry(w, st)
		}
	}
	// The uncached-store state machine holds at most one entry, always the
	// head of the head drain list; only the state value needs saving.
	if len(d.uncachedSt) > 1 {
		panic("proc: checkpoint: more than one uncached store in flight")
	}
	ust := 0
	for _, v := range d.uncachedSt {
		ust = v
	}
	w.Int(ust)
	w.Bool(d.wb.valid)
	if d.wb.valid {
		w.Bool(d.wb.fetched)
		lsq.EncodeEntry(w, d.wb.st)
	}
	d.outQ.SaveState(w, encOPNMsg)
	d.dsnQ.SaveState(w, encDSNMsg)
	w.Bool(d.active)
	w.U64(d.Loads)
	w.U64(d.Stores)
	w.U64(d.NullStores)
	w.U64(d.Hits)
	w.U64(d.MissesStat)
	w.U64(d.StallsDep)
	w.U64(d.ViolationsStat)
}

func (d *dtTile) loadState(r *ckpt.Reader) {
	r.Section("dt")
	if id := r.Int(); id != d.id && r.Err() == nil {
		r.Failf("DT id mismatch: saved %d, live %d", id, d.id)
		return
	}
	d.bank.LoadState(r)
	d.mshr.LoadState(r, decMSHRWaiter)
	for t := range d.lsqs {
		d.lsqs[t].LoadState(r)
	}
	d.dep.LoadState(r)
	for s := 0; s < NumSlots; s++ {
		d.slotSeq[s] = r.U64()
		d.slotThread[s] = r.Int()
		d.storeMask[s] = r.U32()
		d.storeSeen[s] = r.U32()
		d.maskKnown[s] = r.Bool()
		d.bindEv[s] = nil
		d.finishSent[s] = r.Bool()
		d.ackOwn[s] = r.Bool()
		d.ackEast[s] = r.Bool()
		d.ackOwnEv[s] = nil
		d.ackEastEv[s] = nil
		d.ackSent[s] = r.Bool()
		d.committing[s] = r.Bool()
		d.commitEv[s] = nil
	}
	d.inQ.LoadState(r, decOPNMsg)
	d.stalled = decPendingLoads(r)
	d.uncachedQ.LoadState(r, decPendingLoad)
	d.hitQ = decPendingLoads(r)
	d.conflictLoads = decPendingLoads(r)
	d.cacheRetry = decPendingLoads(r)
	d.mshrFreed = r.Bool()
	d.pendingFetch.LoadState(r, func(r *ckpt.Reader) uint64 { return r.U64() })
	d.gsnOut.LoadState(r, decGSNMsg)
	d.drainOrder.LoadState(r, func(r *ckpt.Reader) uint64 { return r.U64() })
	d.drains = make(map[uint64][]*lsq.Entry, d.drainOrder.Len())
	d.drainEvs = make(map[uint64]*critpath.Event)
	for i := 0; i < d.drainOrder.Len(); i++ {
		n := r.Int()
		if r.Err() != nil {
			return
		}
		stores := make([]*lsq.Entry, 0, n)
		for j := 0; j < n; j++ {
			stores = append(stores, lsq.DecodeEntry(r))
		}
		d.drains[d.drainOrder.At(i)] = stores
	}
	ust := r.Int()
	d.uncachedSt = make(map[*lsq.Entry]int)
	if ust != 0 {
		if d.drainOrder.Len() == 0 || len(d.drains[d.drainOrder.Front()]) == 0 {
			r.Failf("uncached-store state %d with no head drain entry", ust)
			return
		}
		d.uncachedSt[d.drains[d.drainOrder.Front()][0]] = ust
	}
	d.wb.valid = r.Bool()
	d.wb.fetched = false
	d.wb.st = nil
	if d.wb.valid {
		d.wb.fetched = r.Bool()
		d.wb.st = lsq.DecodeEntry(r)
	}
	d.outQ.LoadState(r, decOPNMsg)
	d.dsnQ.LoadState(r, decDSNMsg)
	d.active = r.Bool()
	d.Loads = r.U64()
	d.Stores = r.U64()
	d.NullStores = r.U64()
	d.Hits = r.U64()
	d.MissesStat = r.U64()
	d.StallsDep = r.U64()
	d.ViolationsStat = r.U64()
}

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

// SaveState serializes the core's complete mutable state at a cycle
// boundary. It fails when critical-path tracking is enabled: event graphs
// are pointer webs that cannot round-trip through a byte stream.
func (c *Core) SaveState(w *ckpt.Writer) error {
	if c.cfg.TrackCritPath {
		return fmt.Errorf("proc: cannot checkpoint with critical-path tracking enabled")
	}
	w.Section("core")
	w.I64(c.cycle)
	for _, m := range c.opns {
		m.SaveState(w, encOPNMsg)
	}
	c.gcn.SaveState(w, encGCNMsg)
	c.gsnRT.SaveState(w, encGSNMsg)
	c.gsnDT.SaveState(w, encGSNMsg)
	c.gsnIT.SaveState(w, encGSNMsg)
	c.dsn.SaveState(w, encDSNMsg)
	c.gcnQueue.SaveState(w, encGCNMsg)
	c.saveWheel(w)
	for s := 0; s < NumSlots; s++ {
		w.U64(c.storeSeq[s])
	}
	w.U64(c.CommittedBlocks)
	w.U64(c.CommittedInsts)
	w.U64(c.FlushedBlocks)
	w.U64(c.Warps)
	w.I64(c.WarpedCycles)
	w.Int(len(c.Timeline))
	for i := range c.Timeline {
		bt := &c.Timeline[i]
		w.U64(bt.Seq)
		w.U64(bt.Addr)
		w.I64(bt.Dispatch)
		w.I64(bt.Complete)
		w.I64(bt.CommitCmd)
		w.I64(bt.Acked)
	}
	c.gt.saveState(w)
	for _, it := range c.its {
		it.saveState(w)
	}
	for _, t := range c.rts {
		t.saveState(w)
	}
	for _, e := range c.ets {
		e.saveState(w)
	}
	for _, d := range c.dts {
		d.saveState(w)
	}
	return nil
}

// LoadState restores a checkpoint into a core built with an identical
// Config, overwriting all mutable state. The memory backend is restored
// separately by the caller (after this returns, so origin resolution sees
// the restored tile state).
func (c *Core) LoadState(r *ckpt.Reader) error {
	if c.cfg.TrackCritPath {
		return fmt.Errorf("proc: cannot restore with critical-path tracking enabled")
	}
	r.Section("core")
	c.cycle = r.I64()
	for _, m := range c.opns {
		m.LoadState(r, decOPNMsg)
	}
	c.gcn.LoadState(r, decGCNMsg)
	c.gsnRT.LoadState(r, decGSNMsg)
	c.gsnDT.LoadState(r, decGSNMsg)
	c.gsnIT.LoadState(r, decGSNMsg)
	c.dsn.LoadState(r, decDSNMsg)
	c.gcnQueue.LoadState(r, decGCNMsg)
	c.loadWheel(r)
	for s := 0; s < NumSlots; s++ {
		c.storeSeq[s] = r.U64()
		c.storeEvs[s] = nil
	}
	c.CommittedBlocks = r.U64()
	c.CommittedInsts = r.U64()
	c.FlushedBlocks = r.U64()
	c.Warps = r.U64()
	c.WarpedCycles = r.I64()
	nt := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	c.Timeline = c.Timeline[:0]
	c.timelineI = make(map[uint64]int, nt)
	for i := 0; i < nt; i++ {
		var bt BlockTime
		bt.Seq = r.U64()
		bt.Addr = r.U64()
		bt.Dispatch = r.I64()
		bt.Complete = r.I64()
		bt.CommitCmd = r.I64()
		bt.Acked = r.I64()
		c.Timeline = append(c.Timeline, bt)
		c.timelineI[bt.Seq] = i
	}
	c.gt.loadState(r)
	for _, it := range c.its {
		it.loadState(r)
	}
	for _, t := range c.rts {
		t.loadState(r)
	}
	for _, e := range c.ets {
		e.loadState(r)
	}
	for _, d := range c.dts {
		d.loadState(r)
	}
	// The doze overlay is never serialized: clear any stale horizons (this
	// Core may be rewinding) so the first post-restore tick recomputes them
	// from the restored state.
	c.gt.wakeAt = 0
	for _, e := range c.ets {
		e.wakeAt = 0
	}
	for _, d := range c.dts {
		d.wakeAt = 0
	}
	// Resume the trace-id allocator past every restored in-flight message so
	// post-restore allocations never collide with checkpointed ids.
	c.cfg.Trace.ReserveIDs(r.MaxID())
	return r.Err()
}

// ---------------------------------------------------------------------------
// FixedLatencyMem
// ---------------------------------------------------------------------------

// SaveState serializes the backing memory, clock, and per-port in-flight
// queues (ports in creation order, which NewCore makes deterministic).
func (f *FixedLatencyMem) SaveState(w *ckpt.Writer) {
	w.Section("flm")
	f.Mem.SaveState(w)
	w.I64(f.cycle)
	w.Int(len(f.order))
	for _, p := range f.order {
		w.I64(p.lastSub)
		p.queue.SaveState(w, func(w *ckpt.Writer, pr pendingReq) {
			EncodeMemRequest(w, pr.req)
			w.I64(pr.when)
		})
	}
}

// LoadState restores the backend; res rebuilds each queued request's Done
// callback, so the owning core must be restored first.
func (f *FixedLatencyMem) LoadState(r *ckpt.Reader, res OriginResolver) {
	r.Section("flm")
	f.Mem.LoadState(r)
	f.cycle = r.I64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(f.order) {
		r.Failf("backend port count mismatch: saved %d, live %d", n, len(f.order))
		return
	}
	f.pending = 0
	for _, p := range f.order {
		p.lastSub = r.I64()
		p.queue.LoadState(r, func(r *ckpt.Reader) pendingReq {
			req := DecodeMemRequest(r, res)
			return pendingReq{req: req, when: r.I64()}
		})
		f.pending += p.queue.Len()
	}
}
