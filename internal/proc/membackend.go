package proc

import (
	"trips/internal/mem"
	"trips/internal/micronet"
)

// MemRequest is one secondary-memory transaction issued by a DT (L1 miss,
// writeback) or IT (I-cache refill) through its private port into the
// on-chip network (paper Section 3.6: "each IT/DT pair has its own private
// port into the secondary memory system").
type MemRequest struct {
	Addr    uint64
	N       int
	Data    []byte // write payload
	IsWrite bool
	// Done is invoked when the transaction completes; for reads it carries
	// the data.
	Done func(data []byte)
	// Origin identifies the requester and carries enough context to rebuild
	// Done after a checkpoint restore (closures cannot be serialized). A
	// request with OriginNone has no completion side effects beyond the
	// write itself, so its Done restores as nil.
	Origin Origin
}

// OriginKind discriminates the issuers of MemRequests for checkpointing.
type OriginKind uint8

const (
	OriginNone            OriginKind = iota // writeback: no Done callback
	OriginDTFetch                           // DT line fetch (miss or write-allocate)
	OriginDTUncachedLoad                    // DT uncacheable load
	OriginDTUncachedStore                   // DT uncacheable committed store
	OriginITRefill                          // IT distributed I-cache refill chunk
	OriginDMARead                           // chip DMA engine read
	OriginDMAWrite                          // chip DMA engine write
)

// Origin describes who issued a request. Tile is the DT/IT index (or DMA
// engine id); msg carries the uncacheable load's request message, which the
// in-flight closure solely owns.
type Origin struct {
	Kind OriginKind
	Tile int
	msg  *opnMsg
}

// OriginResolver rebuilds a decoded MemRequest's Done callback from its
// Origin. The Core resolves tile-issued requests; the chip wraps it to also
// resolve DMA-issued ones.
type OriginResolver interface {
	ResolveOrigin(req *MemRequest)
}

// ResolverFunc adapts a function to OriginResolver (the chip composes the
// two cores' resolvers and its own DMA resolution this way).
type ResolverFunc func(req *MemRequest)

func (f ResolverFunc) ResolveOrigin(req *MemRequest) { f(req) }

// MemPort accepts transactions from one tile. Submit returns false when the
// port cannot accept a request this cycle (backpressure).
type MemPort interface {
	Submit(req *MemRequest) bool
}

// MemBackend is the secondary memory system behind the core's ports: the
// NUCA L2 + SDRAM in the full chip, or a fixed-latency model in unit tests.
type MemBackend interface {
	// Port returns the private port for the named client. Names are of the
	// form "dt0".."dt3" and "it0".."it4".
	Port(name string) MemPort
	// Tick advances the memory system one cycle.
	Tick()
}

// FixedLatencyMem is a simple MemBackend: every transaction completes a
// fixed number of cycles after submission, one new transaction per port per
// cycle, backed by a flat memory. Used for unit tests and as the paper's
// "perfect L2" configuration (Section 5.4 normalizes the secondary memory
// system out of the TRIPS/Alpha comparison).
type FixedLatencyMem struct {
	Mem     *mem.Memory
	Latency int
	ports   map[string]*fixedPort
	order   []*fixedPort // deterministic tick order
	cycle   int64
	pending int // outstanding transactions across all ports (fast idle tick)
}

// NewFixedLatencyMem builds the backend over m with the given latency.
func NewFixedLatencyMem(m *mem.Memory, latency int) *FixedLatencyMem {
	return &FixedLatencyMem{Mem: m, Latency: latency, ports: make(map[string]*fixedPort)}
}

type fixedPort struct {
	parent  *FixedLatencyMem
	lastSub int64
	queue   micronet.Queue[pendingReq]
}

type pendingReq struct {
	req  *MemRequest
	when int64
}

// Port implements MemBackend.
func (f *FixedLatencyMem) Port(name string) MemPort {
	p, ok := f.ports[name]
	if !ok {
		p = &fixedPort{parent: f, lastSub: -1}
		f.ports[name] = p
		f.order = append(f.order, p)
	}
	return p
}

// Submit implements MemPort: at most one request per cycle per port.
func (p *fixedPort) Submit(req *MemRequest) bool {
	if p.lastSub == p.parent.cycle {
		return false
	}
	p.lastSub = p.parent.cycle
	p.queue.Push(pendingReq{req: req, when: p.parent.cycle + int64(p.parent.Latency)})
	p.parent.pending++
	return true
}

// Quiet implements EventHorizon: a FixedLatencyMem tick does no per-cycle
// work beyond draining deadline-held completions, so it is always warpable.
func (f *FixedLatencyMem) Quiet() bool { return true }

// NextEventCycle implements EventHorizon: the earliest completion deadline
// across all ports, or horizonNever when nothing is outstanding.
func (f *FixedLatencyMem) NextEventCycle() int64 {
	if f.pending == 0 {
		return horizonNever
	}
	h := horizonNever
	for _, p := range f.order {
		if p.queue.Len() > 0 && p.queue.Front().when < h {
			h = p.queue.Front().when
		}
	}
	return h
}

// Warp implements EventHorizon: every skipped tick would only have
// incremented the clock (no deadline within delta), so advancing the clock
// is the complete state change.
func (f *FixedLatencyMem) Warp(delta int64) { f.cycle += delta }

// Tick implements MemBackend.
func (f *FixedLatencyMem) Tick() {
	f.cycle++
	if f.pending == 0 {
		return
	}
	for _, p := range f.order {
		for p.queue.Len() > 0 && p.queue.Front().when <= f.cycle {
			pr := p.queue.Pop()
			f.pending--
			if pr.req.IsWrite {
				f.Mem.WriteBytes(pr.req.Addr, pr.req.Data)
				if pr.req.Done != nil {
					pr.req.Done(nil)
				}
			} else {
				data := f.Mem.ReadBytes(pr.req.Addr, pr.req.N)
				if pr.req.Done != nil {
					pr.req.Done(data)
				}
			}
		}
	}
}
