package proc

import (
	"math/bits"

	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/micronet"
)

// operand is one reservation-station operand field.
type operand struct {
	have bool
	v    Value
	ev   *critpath.Event
}

// station is one reservation station: an instruction plus two 64-bit data
// operands and a one-bit predicate (paper Section 3.4).
type station struct {
	present bool
	fired   bool // issued (or proven dead by a mismatched predicate)
	inst    isa.Inst
	index   int // N[index] within the block
	left    operand
	right   operand
	pred    operand
	arrEv   *critpath.Event // instruction arrival (GDN dispatch)
}

// inflight is an operation in the execution pipeline.
type inflight struct {
	doneAt int64
	slot   int
	seq    uint64
	thread int
	st     *station
	result Value
	ev     *critpath.Event
}

// etTile is one of the sixteen execution tiles: a single-issue pipeline, a
// bank of 64 reservation stations (8 per in-flight block), an integer unit
// and a floating-point unit, all fully pipelined except the 24-cycle
// integer divide (paper Section 3.4, Figure 4d).
type etTile struct {
	core *Core
	id   int
	at   micronet.Coord

	stations   [NumSlots][isa.SlotsPerET]station
	slotSeq    [NumSlots]uint64 // 0 = frame unbound
	slotThread [NumSlots]int
	// pending[slot] counts stations that are present and not yet fired.
	pending [NumSlots]int8
	// readyMask[slot] has bit i set when station i is issuable. Readiness
	// is monotonic — operands only accumulate and a mismatched predicate
	// permanently fires the station — so it is evaluated once per delivery
	// instead of by rescanning every station every cycle; the select scan
	// reduces to a bitmask walk.
	readyMask [NumSlots]uint8

	divBusyUntil int64
	pipe         []inflight
	outQ         micronet.Queue[*opnMsg] // results awaiting OPN injection

	// active registers pending work with the core's stepping fast path:
	// set by every wake (dispatch, operand delivery, commit/flush), cleared
	// by tick once the tile is provably at a fixed point (nothing in flight,
	// nothing issuable, nothing queued). A cleared tile's tick would be a
	// no-op, so skipping it cannot change simulated state.
	active bool
	// wakeAt is the tile's doze horizon under event-driven stepping: when
	// nonzero and in the future, every tick before it is provably a no-op
	// (all in-flight results finish later, nothing issuable except a
	// divider-blocked station, output queue empty), so Step skips the tile
	// until then. Host-side stepping acceleration only — never serialized;
	// a restored tile starts at zero and recomputes on its first tick. Any
	// wake (delivery, flush, commit) clears it, since new work invalidates
	// the horizon.
	wakeAt int64

	// Stats.
	Issued, LocalBypass, Remote, DeadPred, DroppedStale uint64
}

func newET(core *Core, id int) *etTile {
	return &etTile{core: core, id: id, at: etCoord(id)}
}

// wake registers external work (dispatch, delivery, commit, flush) and
// cancels any doze: the event that set it may enable issue before the old
// horizon.
func (e *etTile) wake() {
	e.active = true
	e.wakeAt = 0
}

// bindSlot is called (via the dispatch schedule) when a new block begins
// occupying a frame at this tile.
func (e *etTile) bindSlot(slot int, seq uint64, thread int) {
	e.stations[slot] = [isa.SlotsPerET]station{}
	e.pending[slot] = 0
	e.readyMask[slot] = 0
	e.slotSeq[slot] = seq
	e.slotThread[slot] = thread
	e.wake()
}

// deliverInst installs a dispatched instruction into its reservation
// station ("written into ... the reservation stations in the ETs when they
// arrive, and are available to execute as soon as they arrive", paper 4.1).
func (e *etTile) deliverInst(slot int, seq uint64, index int, in isa.Inst, ev *critpath.Event) {
	e.wake()
	if e.slotSeq[slot] != seq {
		return // stale dispatch (frame was flushed and rebound)
	}
	s := &e.stations[slot][isa.SlotOf(index)]
	// Operands routed by early-dispatched producers may already be waiting
	// in the station; instruction arrival must not clear them.
	wasPending := s.present && !s.fired
	s.present = true
	s.inst = in
	s.index = index
	s.arrEv = ev
	if in.Op == isa.NOP {
		s.fired = true
		return
	}
	if !wasPending {
		e.pending[slot]++
	}
	e.reeval(slot, isa.SlotOf(index))
}

// reeval refreshes one station's readiness after a delivery. A mismatched
// predicate fires the station on the spot (the old select scan did the same
// one tick later, with no observable difference: a fired station never
// issues and drops all further arrivals).
func (e *etTile) reeval(slot, i int) {
	s := &e.stations[slot][i]
	ok, dead := e.ready(s)
	switch {
	case dead:
		s.fired = true
		e.pending[slot]--
		e.DeadPred++
	case ok:
		e.readyMask[slot] |= 1 << uint(i)
	}
}

// deliverOperand fills an operand field from the OPN or the local bypass.
func (e *etTile) deliverOperand(slot int, seq uint64, tgt isa.Target, v Value, ev *critpath.Event) {
	e.wake()
	if e.slotSeq[slot] != seq {
		e.DroppedStale++
		return
	}
	if isa.ETOf(tgt.Index) != e.id {
		panic("proc: operand routed to wrong ET")
	}
	s := &e.stations[slot][isa.SlotOf(tgt.Index)]
	if s.fired {
		// Duplicate arrivals happen only on nullified dual-predicate
		// paths; the station fired on the first pair (see DESIGN.md).
		return
	}
	var op *operand
	switch tgt.Kind {
	case isa.OpLeft:
		op = &s.left
	case isa.OpRight:
		op = &s.right
	case isa.OpPred:
		op = &s.pred
	default:
		panic("proc: bad operand kind at ET")
	}
	if op.have {
		return // keep the first arrival (complementary-path duplicate)
	}
	*op = operand{have: true, v: v, ev: ev}
	if s.present {
		e.reeval(slot, isa.SlotOf(tgt.Index))
	}
}

// ready reports whether station s can issue, and whether its predicate
// proves it dead.
func (e *etTile) ready(s *station) (ok, dead bool) {
	if !s.present || s.fired {
		return false, false
	}
	in := &s.inst
	if in.Pred.Predicated() {
		if !s.pred.have {
			return false, false
		}
		if !s.pred.v.Null {
			taken := s.pred.v.Bits != 0
			if (in.Pred == isa.PredOnTrue) != taken {
				return false, true // mismatched predicate: never fires
			}
		}
		// A null predicate fires the instruction with nullified outputs,
		// keeping block output counts invariant on dead paths.
	}
	if in.NeedsLeft() && !s.left.have {
		return false, false
	}
	if in.NeedsRight() && !s.right.have {
		return false, false
	}
	return true, false
}

// tick runs one ET cycle: retire finished operations (routing their
// results), then select and issue at most one ready instruction, then retry
// blocked OPN injections.
func (e *etTile) tick(now int64) {
	e.completeFinished(now)
	issued, blocked := e.selectAndIssue(now)
	e.drainOutQ(now)
	// Fixed point: nothing executing, nothing queued, nothing issued and
	// nothing issuable-but-blocked. Readiness and dead-predicate marking
	// happen at delivery time, so with readyMask empty nothing can change
	// until the next external delivery.
	e.active = len(e.pipe) > 0 || !e.outQ.Empty() || issued || blocked
	// Doze horizon: with nothing issued and nothing queued, every remaining
	// obligation carries an explicit completion cycle — in-flight results
	// finish at their doneAt stamps, and a divider-blocked ready station
	// can't re-attempt issue before divBusyUntil. Ticks before the earliest
	// of those are pure no-ops (completeFinished keeps everything, the
	// select scan re-finds the same blocked station, drainOutQ sees an empty
	// queue), so Step may skip them. An issued instruction means the select
	// could issue again next cycle, and a non-empty outQ retries injection
	// every cycle — neither is deadline-held, so neither dozes.
	e.wakeAt = 0
	if e.core.eventDriven && e.active && !issued && e.outQ.Empty() {
		w := horizonNever
		for i := range e.pipe {
			if e.pipe[i].doneAt < w {
				w = e.pipe[i].doneAt
			}
		}
		if blocked && e.divBusyUntil < w {
			w = e.divBusyUntil
		}
		if w > now && w != horizonNever {
			e.wakeAt = w
		}
	}
}

func (e *etTile) completeFinished(now int64) {
	kept := e.pipe[:0]
	for _, f := range e.pipe {
		if f.doneAt > now {
			kept = append(kept, f)
			continue
		}
		if e.slotSeq[f.slot] == f.seq {
			e.route(now, f)
		}
	}
	e.pipe = kept
}

// selectAndIssue reports whether it issued an instruction, and whether a
// ready instruction was blocked (unpipelined divider busy) — either keeps
// the tile active.
func (e *etTile) selectAndIssue(now int64) (issued, blocked bool) {
	// Select the ready instruction from the oldest block first (then by
	// station order) — the age-ordered select of Section 3.4. readyMask is
	// maintained at delivery time, so the scan touches only issuable
	// stations: the lowest set bit is the first ready station in slot order.
	var best *station
	bestSlot, bestIdx := -1, -1
	var bestSeq uint64
	for slot := 0; slot < NumSlots; slot++ {
		seq := e.slotSeq[slot]
		if seq == 0 || e.readyMask[slot] == 0 {
			continue
		}
		if best == nil || seq < bestSeq {
			i := bits.TrailingZeros8(e.readyMask[slot])
			best, bestSlot, bestIdx, bestSeq = &e.stations[slot][i], slot, i, seq
		}
	}
	if best == nil {
		return false, false
	}
	in := &best.inst
	// The unpipelined integer divider blocks issue of a new divide (ALU
	// contention, charged to Other on the critical path).
	if !in.Op.Pipelined() && e.divBusyUntil > now {
		return false, true
	}
	best.fired = true
	e.pending[bestSlot]--
	e.readyMask[bestSlot] &^= 1 << uint(bestIdx)
	e.Issued++

	// The issue time was determined by the last-arriving dependency.
	parent := best.arrEv
	parentCat := critpath.CatIFetch
	consider := func(op *operand) {
		if op.have && op.ev != nil && (parent == nil || op.ev.Cycle >= parent.Cycle) {
			parent = op.ev
			parentCat = critpath.CatOther
		}
	}
	consider(&best.left)
	consider(&best.right)
	consider(&best.pred)

	null := (in.NeedsLeft() && best.left.v.Null) ||
		(in.NeedsRight() && best.right.v.Null) ||
		(in.Pred.Predicated() && best.pred.v.Null)

	// Cycles between the last arrival and issue are select/ALU contention
	// (Other) when an operand was last, instruction distribution (IFetch)
	// when the instruction itself was.
	issueEv := e.core.newEvent(now, parent, critpath.Split{}, parentCat)

	lat := int64(in.Op.Latency())
	if null {
		lat = 1
	}
	execCat := critpath.CatOther
	if in.Op == isa.MOV {
		// Fanout instructions exist only to replicate operands; their
		// execution latency is the "fanout ops" overhead of Table 3.
		execCat = critpath.CatFanout
	}
	var split critpath.Split
	split[execCat] = lat
	doneEv := e.core.newEvent(now+lat, issueEv, split, execCat)

	if !in.Op.Pipelined() {
		e.divBusyUntil = now + lat
	}

	var result Value
	if null {
		result = Value{Null: true}
	} else {
		switch in.Op.Format() {
		case isa.FmtG, isa.FmtI, isa.FmtC:
			result = Value{Bits: isa.Eval(in.Op, best.left.v.Bits, best.right.v.Bits, in.Imm)}
		case isa.FmtL, isa.FmtS:
			// Effective address computed here; memory op issued at route.
			result = Value{Bits: best.left.v.Bits + uint64(in.Imm)}
		case isa.FmtB:
			result = best.left.v // RET/BR target (unused for BRO/CALLO)
		}
	}
	e.pipe = append(e.pipe, inflight{
		doneAt: now + lat,
		slot:   bestSlot,
		seq:    bestSeq,
		thread: e.slotThread[bestSlot],
		st:     best,
		result: result,
		ev:     doneEv,
	})
	return true, false
}

// route delivers a completed operation's outputs: locally bypassed operands
// to this ET's own stations, OPN messages to remote tiles, memory requests
// to the DTs, and branch outputs to the GT (paper Section 4.2).
func (e *etTile) route(now int64, f inflight) {
	in := &f.st.inst
	switch {
	case in.Op.IsLoad():
		if f.result.Null {
			// A nullified load produces null results locally without a
			// DT round trip; loads are not block outputs.
			e.emitValue(now, f, in.T0, Value{Null: true}, f.ev)
			e.emitValue(now, f, in.T1, Value{Null: true}, f.ev)
			return
		}
		addr := f.result.Bits
		m := e.core.newOPNMsg()
		*m = opnMsg{
			dst: dtCoord(isa.DTOfAddr(addr)), kind: opnLoadReq,
			slot: f.slot, seq: f.seq, thread: f.thread,
			lsid: in.LSID, memOp: in.Op, addr: addr,
			ldT0: in.T0, ldT1: in.T1, ev: f.ev,
		}
		e.outQ.Push(m)
	case in.Op.IsStore():
		addr := f.result.Bits
		data := f.st.right.v
		null := f.result.Null || data.Null
		if null {
			addr = 0
		}
		m := e.core.newOPNMsg()
		*m = opnMsg{
			dst: dtCoord(isa.DTOfAddr(addr)), kind: opnStoreReq,
			slot: f.slot, seq: f.seq, thread: f.thread,
			lsid: in.LSID, memOp: in.Op, addr: addr,
			data: Value{Bits: data.Bits, Null: null}, ev: f.ev,
		}
		e.outQ.Push(m)
	case in.Op.IsBranch():
		m := e.core.newOPNMsg()
		*m = opnMsg{
			dst: gtCoord(), kind: opnBranch,
			slot: f.slot, seq: f.seq, thread: f.thread,
			brOp: in.Op, brExit: in.Exit, brOffset: in.Offset,
			val: f.result, ev: f.ev,
		}
		e.outQ.Push(m)
	default:
		e.emitValue(now, f, in.T0, f.result, f.ev)
		e.emitValue(now, f, in.T1, f.result, f.ev)
	}
}

// emitValue routes one result value to one target: same-ET targets use the
// local bypass path (back-to-back issue); everything else crosses the OPN.
func (e *etTile) emitValue(now int64, f inflight, tgt isa.Target, v Value, ev *critpath.Event) {
	if !tgt.Valid() {
		return
	}
	if tgt.IsWrite() {
		m := e.core.newOPNMsg()
		*m = opnMsg{
			dst: rtCoord(isa.RTOf(tgt.Index)), kind: opnOperand,
			slot: f.slot, seq: f.seq, thread: f.thread,
			target: tgt, val: v, ev: ev,
		}
		e.outQ.Push(m)
		return
	}
	if isa.ETOf(tgt.Index) == e.id {
		e.LocalBypass++
		e.deliverOperand(f.slot, f.seq, tgt, v, ev)
		return
	}
	e.Remote++
	m := e.core.newOPNMsg()
	*m = opnMsg{
		dst: etCoord(isa.ETOf(tgt.Index)), kind: opnOperand,
		slot: f.slot, seq: f.seq, thread: f.thread,
		target: tgt, val: v, ev: ev,
	}
	e.outQ.Push(m)
}

// drainOutQ injects pending OPN messages, respecting the single injection
// register per node (injection stalls are OPN contention).
func (e *etTile) drainOutQ(now int64) {
	for !e.outQ.Empty() {
		msg := e.outQ.Front()
		if e.slotSeq[msg.slot] != msg.seq {
			e.outQ.Pop()
			continue // flushed while waiting
		}
		if !e.core.injectOPN(e.at, msg) {
			return // retry next cycle; waits accumulate on the message
		}
		e.outQ.Pop()
	}
}

// flush clears a frame's stations and drops its queued output.
func (e *etTile) flush(slot int, seq uint64) {
	if e.slotSeq[slot] != seq {
		return
	}
	e.wake()
	e.stations[slot] = [isa.SlotsPerET]station{}
	e.pending[slot] = 0
	e.readyMask[slot] = 0
	e.slotSeq[slot] = 0
	e.outQ.Filter(func(m *opnMsg) bool {
		return !(m.slot == slot && m.seq == seq)
	})
	keptPipe := e.pipe[:0]
	for _, f := range e.pipe {
		if !(f.slot == slot && f.seq == seq) {
			keptPipe = append(keptPipe, f)
		}
	}
	e.pipe = keptPipe
}

// onCommit clears any remaining speculative state for the committing frame
// ("The commit command on the GCN also flushes any speculative in-flight
// state in the ETs and DTs for that block", paper Section 4.4).
func (e *etTile) onCommit(slot int, seq uint64) {
	e.flush(slot, seq)
}
