package proc

import (
	"testing"

	"trips/internal/isa"
	"trips/internal/mem"
)

func TestUncachedAccessBypassesL1(t *testing.T) {
	// A store+load pair to an uncached address must round-trip through the
	// memory backend, not the DT bank. Two programs run against the same
	// backing memory: the first stores uncached, the second (fresh core,
	// cold caches) loads uncached and must see it without any flush.
	mkStore := func() *Program {
		b := &isa.Block{Addr: 0x1000, Name: "st"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(3)}
		b.Insts = []isa.Inst{
			{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(1)},
			{Op: isa.APPC, Imm: 0x0000, T0: isa.ToLeft(2)},
			{Op: isa.APPC, Imm: 0x9000, T0: isa.ToLeft(3)}, // 1<<40 | 0x9000
			{Op: isa.SD, Imm: 0, LSID: 0},
			{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x1000)},
		}
		p, err := NewProgram(b.Addr, []*isa.Block{b})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mkLoad := func() *Program {
		b := &isa.Block{Addr: 0x1000, Name: "ld"}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
		b.Insts = []isa.Inst{
			{Op: isa.GENC, Imm: 0x0100, T0: isa.ToLeft(1)},
			{Op: isa.APPC, Imm: 0x0000, T0: isa.ToLeft(2)},
			{Op: isa.APPC, Imm: 0x9000, T0: isa.ToLeft(3)},
			{Op: isa.LD, Imm: 0, LSID: 0, T0: isa.ToWrite(0)},
			{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x1000)},
		}
		p, err := NewProgram(b.Addr, []*isa.Block{b})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m := mem.New()
	ps := mkStore()
	if err := ps.Image(m); err != nil {
		t.Fatal(err)
	}
	c1, err := NewCore(Config{Program: ps, Mem: NewFixedLatencyMem(m, 20), MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	c1.SetRegister(0, 8, 0xabcd)
	if _, err := c1.Run(); err != nil {
		t.Fatal(err)
	}
	// No FlushCaches: the uncached store must already be in the backing
	// memory (written at commit through the port).
	if got := m.Read(0x9000, 8, false); got != 0xabcd {
		t.Fatalf("uncached store not visible in backing memory: %#x", got)
	}
	m2 := mem.New()
	m2.Write(0x9000, 8, 0x1234)
	pl := mkLoad()
	if err := pl.Image(m2); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCore(Config{Program: pl, Mem: NewFixedLatencyMem(m2, 20), MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c2.Register(0, 16); got != 0x1234 {
		t.Fatalf("uncached load = %#x, want 0x1234", got)
	}
	// And the DT cache banks must not contain the line.
	for _, d := range c2.dts {
		if d.bank.Probe(0x9000) || d.bank.Probe(Uncached(0x9000)) {
			t.Error("uncached access left a line in a DT bank")
		}
	}
}

func TestTimelinePhasesOrdered(t *testing.T) {
	p := arithProgram(t)
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{Program: p, Mem: NewFixedLatencyMem(m, 20), RecordTimeline: true, MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	c.SetRegister(0, 8, 1)
	c.SetRegister(0, 13, 2)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	for _, bt := range c.Timeline {
		if !(bt.Dispatch >= 0 && bt.Dispatch <= bt.Complete && bt.Complete <= bt.CommitCmd && bt.CommitCmd < bt.Acked) {
			t.Errorf("phases out of order: %+v", bt)
		}
	}
}

func TestOPNContentionCounted(t *testing.T) {
	// Many producers feeding one consumer station's ET forces output-port
	// contention on the OPN; the contention must appear in the critical
	// path accounting rather than vanish.
	b := &isa.Block{Addr: 0x1000, Name: "cont"}
	b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0), RT1: isa.ToLeft(1)}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
	// A reduction tree whose adds all live far from their producers.
	b.Insts = make([]isa.Inst, 40)
	for i := range b.Insts {
		b.Insts[i] = isa.Inst{Op: isa.NOP}
	}
	// 8 producers (indices 0..7 across rows) all target two adders.
	for i := 0; i < 8; i++ {
		tgt := isa.ToLeft(32)
		if i%2 == 1 {
			tgt = isa.ToRight(32)
		}
		if i >= 4 {
			tgt = isa.ToLeft(33)
			if i%2 == 1 {
				tgt = isa.ToRight(33)
			}
		}
		b.Insts[i] = isa.Inst{Op: isa.ADDI, Imm: int64(i), T0: tgt}
	}
	b.Reads[0].RT0 = isa.ToLeft(0)
	b.Reads[0].RT1 = isa.ToLeft(1)
	for i := 2; i < 8; i++ {
		b.Insts[i].Op = isa.MOVI // independent of reads
	}
	b.Insts[32] = isa.Inst{Op: isa.ADD, T0: isa.ToLeft(34)}
	b.Insts[33] = isa.Inst{Op: isa.ADD, T0: isa.ToRight(34)}
	b.Insts[34] = isa.Inst{Op: isa.ADD, T0: isa.ToWrite(0)}
	b.Insts[35] = isa.Inst{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x1000)}
	p, err := NewProgram(b.Addr, []*isa.Block{b})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{Program: p, Mem: NewFixedLatencyMem(m, 20), TrackCritPath: true, MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats := c.TileStats()
	if stats.OPNInjected == 0 || stats.OPNInjected != stats.OPNDelivered {
		t.Errorf("OPN injected %d, delivered %d", stats.OPNInjected, stats.OPNDelivered)
	}
	_ = res
}

func TestFourThreadMemoryIsolation(t *testing.T) {
	// Four SMT threads each store a distinct value to a distinct address;
	// no thread may disturb another's data, and all must halt.
	mk := func(addrBase uint64, code uint64) *isa.Block {
		b := &isa.Block{Addr: code, Name: "stm"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(2)} // value
		b.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(2)} // address
		b.Insts = []isa.Inst{
			{Op: isa.NOP},
			{Op: isa.NOP},
			{Op: isa.SD, Imm: 0, LSID: 0},
			{Op: isa.BRO, Exit: 0, Offset: haltOffset(code)},
		}
		_ = addrBase
		return b
	}
	var blocks []*isa.Block
	var entries []uint64
	for tid := 0; tid < 4; tid++ {
		code := uint64(0x10000 + tid*0x1000)
		blocks = append(blocks, mk(0, code))
		entries = append(entries, code)
	}
	p, err := NewProgram(entries[0], blocks)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{Program: p, Mem: NewFixedLatencyMem(m, 20), Entries: entries, MaxCycles: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 4; tid++ {
		c.SetRegister(tid, 8, uint64(0x100+tid))
		c.SetRegister(tid, 13, uint64(0x8000+tid*256))
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	c.FlushCaches()
	for tid := 0; tid < 4; tid++ {
		if got := m.Read(uint64(0x8000+tid*256), 8, false); got != uint64(0x100+tid) {
			t.Errorf("thread %d stored %#x", tid, got)
		}
	}
}
