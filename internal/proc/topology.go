package proc

import "trips/internal/micronet"

// Core tile topology (paper Figure 2): the OPN is a 5x5 mesh with the GT
// and four RTs in row 0 and a DT heading each of the four ET rows. The five
// ITs sit beside the GT/DT column as GDN/GRN/GSN clients only — they are
// not OPN nodes (Figure 3 shows the OPN covering 25 tiles).
//
//	row 0:  GT  RT0 RT1 RT2 RT3
//	row 1:  DT0 ET0 ET1 ET2 ET3
//	row 2:  DT1 ET4 ET5 ET6 ET7
//	row 3:  DT2 ET8 ET9 ET10 ET11
//	row 4:  DT3 ET12 ET13 ET14 ET15
const (
	NumSlots   = 8 // in-flight blocks (1024-instruction window)
	NumThreads = 4 // SMT threads supported by the core
)

func gtCoord() micronet.Coord       { return micronet.Coord{Row: 0, Col: 0} }
func rtCoord(i int) micronet.Coord  { return micronet.Coord{Row: 0, Col: 1 + i} }
func dtCoord(i int) micronet.Coord  { return micronet.Coord{Row: 1 + i, Col: 0} }
func etCoord(et int) micronet.Coord { return micronet.Coord{Row: 1 + et/4, Col: 1 + et%4} }

// Timing constants (paper Sections 3.1, 4.1). The block fetch pipeline
// totals 13 cycles: three for prediction, one for I-TLB and tag access, one
// for hit/miss detection, then eight pipelined dispatch commands. Dispatch
// of fetched instructions is itself pipelined across the ITs and rows so
// that the furthest RT receives its first header packet ten cycles and its
// last 17 cycles after the GT issues the first fetch command.
const (
	predictCycles = 3 // next-block prediction (Section 3.1)
	tagCycles     = 1 // I-TLB + I-cache tag access
	hitMissCycles = 1 // hit/miss detection
	dispatchBeats = 8 // pipelined fetch commands per block

	// gdnCmdToIT is the cycles for a dispatch command to reach IT 0 from
	// the GT; each further IT adds one hop.
	gdnCmdToIT = 2
	// itBankCycles is the IT's instruction-cache bank access latency.
	itBankCycles = 3
	// gdnHop is the per-column latency of instruction packets moving east
	// across a row.
	gdnHop = 1

	// dtCacheCycles is the DT L1 hit latency (bank access).
	dtCacheCycles = 2
	// rtDrainPerCycle and dtDrainPerCycle bound architectural commit
	// bandwidth: one register write port per RT bank, one store per DT.
	rtDrainPerCycle = 1
	dtDrainPerCycle = 1
)

// derived check: first header packet at the furthest RT (IT0, column 4)
// arrives gdnCmdToIT + itBankCycles + beat0 + 4*gdnHop + 1 = 10 cycles
// after the first fetch command, the last (beat 7) at 17 — matching the
// paper. Verified in TestDispatchTiming.
