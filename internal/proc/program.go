package proc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"trips/internal/isa"
	"trips/internal/mem"
)

// Program is a TRIPS binary: a set of encoded blocks laid out in memory
// plus an entry address. The instruction tiles fetch chunk bytes from this
// image through the secondary memory system, exactly as the hardware
// refills its I-cache banks from the L2.
type Program struct {
	Entry  uint64
	blocks map[uint64]*isa.Block
	sizes  map[uint64]int // encoded size in bytes per block
}

// NewProgram builds a program from blocks. Every block must validate and
// encode; blocks must not overlap in memory.
func NewProgram(entry uint64, blocks []*isa.Block) (*Program, error) {
	p := &Program{Entry: entry, blocks: make(map[uint64]*isa.Block), sizes: make(map[uint64]int)}
	for _, b := range blocks {
		if _, dup := p.blocks[b.Addr]; dup {
			return nil, fmt.Errorf("proc: duplicate block at %#x", b.Addr)
		}
		data, err := isa.EncodeBlock(b)
		if err != nil {
			return nil, err
		}
		p.blocks[b.Addr] = b
		p.sizes[b.Addr] = len(data)
	}
	// Overlap check.
	addrs := p.Addrs()
	for i := 1; i < len(addrs); i++ {
		prev := addrs[i-1]
		if prev+uint64(p.sizes[prev]) > addrs[i] {
			return nil, fmt.Errorf("proc: blocks at %#x and %#x overlap", prev, addrs[i])
		}
	}
	if _, ok := p.blocks[entry]; !ok {
		return nil, fmt.Errorf("proc: entry %#x is not a block", entry)
	}
	return p, nil
}

// Addrs returns all block addresses in ascending order.
func (p *Program) Addrs() []uint64 {
	addrs := make([]uint64, 0, len(p.blocks))
	for a := range p.blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Block returns the block at addr.
func (p *Program) Block(addr uint64) (*isa.Block, bool) {
	b, ok := p.blocks[addr]
	return b, ok
}

// Size returns the encoded size in bytes of the block at addr.
func (p *Program) Size(addr uint64) int { return p.sizes[addr] }

// Next returns the sequential successor address of the block at addr.
func (p *Program) Next(addr uint64) uint64 { return addr + uint64(p.sizes[addr]) }

// Image writes every block's encoded chunks into memory, giving the ITs a
// byte image to refill from.
func (p *Program) Image(m *mem.Memory) error {
	for addr, b := range p.blocks {
		data, err := isa.EncodeBlock(b)
		if err != nil {
			return err
		}
		m.WriteBytes(addr, data)
	}
	return nil
}

// NumBlocks returns the number of static blocks.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// CanonicalBytes renders the program deterministically — entry address,
// then each block's address and encoded image in ascending address order —
// for content-hashing a checkpoint to the exact binary that produced it.
// Encoding cannot fail here: NewProgram already encoded every block.
func (p *Program) CanonicalBytes() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint64(out, p.Entry)
	for _, addr := range p.Addrs() {
		data, err := isa.EncodeBlock(p.blocks[addr])
		if err != nil {
			panic(fmt.Sprintf("proc: block at %#x no longer encodes: %v", addr, err))
		}
		out = binary.LittleEndian.AppendUint64(out, addr)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
		out = append(out, data...)
	}
	return out
}
