package proc

import (
	"testing"

	"trips/internal/ckpt"
	"trips/internal/flight"
	"trips/internal/mem"
	"trips/internal/obs"
)

// newSteadyStateCore builds a core running the 1..n loop for long enough
// that stepping it mid-run measures the steady-state hot path.
func newSteadyStateCore(t *testing.T, trace *obs.Tracer, metrics *obs.Sampler) *Core {
	t.Helper()
	p := loopProgram(t)
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{
		Program: p,
		Mem:     NewFixedLatencyMem(m, 20),
		Trace:   trace,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetRegister(0, 8, 0)          // i
	c.SetRegister(0, 13, 0)         // sum
	c.SetRegister(0, 18, 1_000_000) // n: far more iterations than we step
	return c
}

// allocsPerCycle measures steady-state allocations per stepped cycle after
// a warm-up that gets past cold-start growth (maps, pools, predictor).
func allocsPerCycle(c *Core) float64 {
	for i := 0; i < 20_000; i++ {
		c.Step()
	}
	const batch = 1000
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < batch; i++ {
			c.Step()
		}
	})
	return allocs / batch
}

// TestStepAllocsTracingOverhead is the zero-overhead-when-disabled guard.
// The core has a small pre-existing per-dispatch allocation (the bodies
// slice in scheduleDispatch), so the guard is differential: attaching a
// tracer and sampler must add nothing to the steady-state allocation rate —
// the ring overwrites in place and the series points halve in place. An
// absolute bound on the untraced rate catches gross hot-path regressions
// from any source.
func TestStepAllocsTracingOverhead(t *testing.T) {
	off := allocsPerCycle(newSteadyStateCore(t, nil, nil))

	tr := obs.NewTracer(1 << 12) // small ring: exercise wrap-around overwrite
	sm := obs.NewSampler(0)
	traced := newSteadyStateCore(t, tr, sm)
	on := allocsPerCycle(traced)
	if tr.Dropped() == 0 {
		t.Fatal("warm-up did not wrap the ring; the test is not measuring overwrite")
	}

	// Both runs step the identical deterministic program, so the rates are
	// directly comparable; a sliver of slack absorbs incidental runtime
	// activity under AllocsPerRun.
	if on > off+0.01 {
		t.Errorf("tracing adds allocations: %.4f objects/cycle traced vs %.4f untraced", on, off)
	}
	if off > 0.25 {
		t.Errorf("untraced steady-state Step allocates %.4f objects/cycle, want < 0.25 (baseline ~0.13)", off)
	}
}

// TestStepAllocsFlightRecorderOverhead extends the zero-overhead guard to a
// fully armed flight recorder. Two regimes:
//
//   - Between captures (the recorder's continuous machinery: a bounded trace
//     window attached as the core's tracer, the rolling-checkpoint hook
//     armed) the recorder must add NOTHING to the steady-state allocation
//     rate — the window is an ordinary tracer ring overwriting in place and
//     the hook is a two-field compare in the commit path.
//   - Each rolling capture re-saves full machine state into a recycled ring
//     slot. That is not free, but it must stay small and bounded (no
//     per-capture growth once the ring has lapped); at the default 50k-cycle
//     interval even the measured stride here amortizes to well under 0.001
//     allocs/cycle.
func TestStepAllocsFlightRecorderOverhead(t *testing.T) {
	off := allocsPerCycle(newSteadyStateCore(t, nil, nil))

	rec := flight.New(flight.Config{Depth: 4, WindowCap: 1 << 12})
	c := newSteadyStateCore(t, rec.NewWindow("core"), nil)
	rec.Bind(ckpt.Hash{}, c.SaveState, nil, nil)
	// Arm the hook far in the future: the per-cycle cost of *being armed* is
	// what this regime measures (in Run the hook fires at commit boundaries;
	// captures are driven explicitly in the second regime below).
	c.SetCheckpointHook(1<<40, func(cycle int64) error { return rec.Capture(cycle) })
	armed := allocsPerCycle(c)
	if armed > off+0.01 {
		t.Errorf("armed recorder (between captures) adds allocations: %.4f objects/cycle vs %.4f baseline", armed, off)
	}
	if rec.WindowEvents() == 0 {
		t.Fatal("recorder window captured no events; the armed run is not being observed")
	}

	// Capture regime: lap the ring during warm-up so slot buffers reach
	// steady state, then measure with captures firing every captureStride
	// cycles, mirroring a (dense) rolling-checkpoint cadence.
	const captureStride = 500
	rec2 := flight.New(flight.Config{Depth: 4, WindowCap: 1 << 12})
	cap1 := newSteadyStateCore(t, rec2.NewWindow("core"), nil)
	rec2.Bind(ckpt.Hash{}, cap1.SaveState, nil, nil)
	for i := 0; i < 20_000; i++ {
		cap1.Step()
		if i%captureStride == 0 {
			if err := rec2.Capture(cap1.Cycle()); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := rec2.RingBytes()
	const batch = 1000
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < batch; i++ {
			cap1.Step()
			if i%captureStride == 0 {
				rec2.Capture(cap1.Cycle())
			}
		}
	})
	perCapture := (allocs/batch - off) * captureStride
	// ~17 objects per full machine re-save today; 64 leaves headroom without
	// letting a per-capture regression hide.
	if perCapture > 64 {
		t.Errorf("rolling capture allocates %.0f objects per capture, want bounded (< 64)", perCapture)
	}
	if got := rec2.RingBytes(); got != before {
		t.Errorf("ring grew during steady-state captures: %d -> %d bytes; slot recycling broken", before, got)
	}
}

// TestStepCyclesUnchangedByTracing steps the same program with and without
// observability attached and requires the commit stream to line up exactly.
func TestStepCyclesUnchangedByTracing(t *testing.T) {
	plain := newSteadyStateCore(t, nil, nil)
	traced := newSteadyStateCore(t, obs.NewTracer(0), obs.NewSampler(0))
	for i := 0; i < 50_000; i++ {
		plain.Step()
		traced.Step()
		if plain.CommittedBlocks != traced.CommittedBlocks {
			t.Fatalf("cycle %d: traced core committed %d blocks, untraced %d",
				i, traced.CommittedBlocks, plain.CommittedBlocks)
		}
	}
	if plain.CommittedBlocks == 0 {
		t.Fatal("no blocks committed in 50k cycles; loop did not run")
	}
}
