package proc

import (
	"fmt"

	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/obs"
	"trips/internal/predictor"
)

// blockCtx is the GT's record of one in-flight block (paper Section 3.1:
// "The GT also maintains the state of all eight in-flight blocks").
type blockCtx struct {
	valid  bool
	seq    uint64
	addr   uint64
	thread int
	hdr    *isa.HeaderInfo

	// selfPred is the prediction that selected this block, used for
	// predictor repair when the block is squashed.
	selfPred predictor.Prediction
	// succPred is the prediction this block's fetch made about its own
	// exit, trained at commit.
	succPred      predictor.Prediction
	predictedNext uint64

	// Output tracking (phase one of the commit protocol, Section 4.4).
	branchSeen  bool
	branchNext  uint64
	branchExit  int
	branchKind  predictor.Kind
	branchEv    *critpath.Event
	writesDone  bool
	writesEv    *critpath.Event
	storesDone  bool
	storesEv    *critpath.Event
	mispChecked bool

	// Commit tracking (phases two and three).
	commitSent bool
	commitEv   *critpath.Event
	ackR, ackS bool
	ackREv     *critpath.Event
	ackSEv     *critpath.Event

	dispatchEv *critpath.Event
}

func (b *blockCtx) complete() bool { return b.branchSeen && b.writesDone && b.storesDone }

// tagEntry is one entry of the GT's single I-cache tag array.
type tagEntry struct {
	present bool
	lastUse int64
}

// fetchStage tracks the GT's block fetch pipeline: 3 cycles of prediction,
// one of I-TLB/tag access, one of hit/miss detection, then eight pipelined
// dispatch commands (paper Section 4.1).
type fetchStage int

const (
	fetchIdle fetchStage = iota
	fetchPredict
	fetchTag
	fetchHitMiss
	fetchRefill
	fetchDispatch
)

// threadCtx is per-SMT-thread fetch state.
type threadCtx struct {
	active    bool
	nextFetch uint64
	halted    bool
	// lastFetched is the most recently fetched block, whose succPred
	// chained to nextFetch.
	lastSeq uint64

	// pendingPred is the prediction that selected the block about to be
	// dispatched (the previous block's successor prediction).
	pendingPred predictor.Prediction

	// Fetch pipeline state. stageUntil is the absolute cycle at which the
	// current timed stage (predict/tag/hit-miss) completes — a deadline, not
	// a countdown, so a warping clock can jump straight to it.
	stage      fetchStage
	stageUntil int64
	fetchAddr  uint64
	fetchSlot  int
	refillWait bool
	// badFetch holds a speculative next-fetch address that missed the
	// I-TLB (no block mapped there); fetch stalls until a resolved branch
	// redirects the thread.
	badFetch uint64
}

// gtTile is the global control tile: block PCs, the I-cache tag array, the
// I-TLB, the next-block predictor, and the control engines for prediction,
// fetch, dispatch, completion detection, flush and commit (paper
// Section 3.1, Figure 4a).
type gtTile struct {
	core *Core

	pred    *predictor.Predictor
	tags    map[uint64]*tagEntry
	tagCap  int
	slots   [NumSlots]blockCtx
	threads [NumThreads]threadCtx
	nextSeq uint64

	dispatchBusyUntil int64
	rrThread          int // round-robin fetch among active threads

	// wakeAt is the event-driven doze overlay: when nonzero, warpIdle proved
	// the next tick a no-op before this cycle (horizonNever = pure external
	// wait), so Step may skip the GT until wakeAt arrives or a chain/OPN
	// delivery becomes observable (gtDeliverable). Never serialized: restore
	// leaves it zero and the first tick recomputes it.
	wakeAt int64

	// Stats.
	Fetches, Refills, Flushes, Mispredicts, ViolationFlushes, Commits uint64
	lastCommitEv                                                      *critpath.Event
}

func newGT(core *Core) *gtTile {
	return &gtTile{
		core:    core,
		pred:    predictor.New(),
		tags:    make(map[uint64]*tagEntry),
		tagCap:  128, // one chunk per block per IT bank (Section 3.2)
		nextSeq: 1,
	}
}

// startThread activates an SMT thread at the given entry address.
func (g *gtTile) startThread(t int, entry uint64) {
	g.threads[t] = threadCtx{active: true, nextFetch: entry}
}

// slotsForThread returns the frame range owned by a thread: with one
// thread, all eight frames (seven speculative); with n threads, 8/n each
// (paper Section 3: "two blocks per thread if four threads are running").
func (g *gtTile) slotsForThread(t int) (lo, hi int) {
	n := g.core.activeThreads()
	per := NumSlots / n
	return t * per, (t + 1) * per
}

func (g *gtTile) freeSlot(t int) (int, bool) {
	lo, hi := g.slotsForThread(t)
	for s := lo; s < hi; s++ {
		if !g.slots[s].valid {
			return s, true
		}
	}
	return 0, false
}

func (g *gtTile) tick(now int64) {
	g.pumpGSN(now)
	g.pumpOPN(now)
	g.checkMispredicts(now)
	g.tryCommit(now)
	g.advanceFetch(now)
	g.reapCommitted(now)
	g.wakeAt = 0
	if g.core.eventDriven {
		// Every condition warpIdle inspects flips only through chain/OPN
		// deliveries (observable via gtDeliverable) or the GT's own tick, so
		// a proven-idle horizon holds until one of those occurs.
		if h, ok := g.warpIdle(now); ok && h > now {
			g.wakeAt = h
		}
	}
}

// pumpOPN consumes branch messages delivered to the GT. Every popped
// message is fully read here, so it returns to the pool (stale ones too:
// nothing else can hold a reference to a GT-delivered branch).
func (g *gtTile) pumpOPN(now int64) {
	for {
		msg, ok := g.core.deliverOPN(gtCoord())
		if !ok {
			return
		}
		if msg.kind != opnBranch {
			panic(fmt.Sprintf("proc: GT received OPN kind %d", msg.kind))
		}
		g.handleBranch(now, msg)
		g.core.freeOPNMsg(msg)
	}
}

func (g *gtTile) handleBranch(now int64, msg *opnMsg) {
	b := &g.slots[msg.slot]
	if !b.valid || b.seq != msg.seq {
		return // stale branch from a flushed block
	}
	if b.branchSeen {
		panic(fmt.Sprintf("proc: block %#x produced two exit branches", b.addr))
	}
	b.branchSeen = true
	b.branchExit = msg.brExit
	arriveEv := g.core.newEvent(now, msg.ev, critpath.Split{
		critpath.CatOPNHop:        int64(msg.hops),
		critpath.CatOPNContention: int64(msg.waits),
	}, critpath.CatOPNHop)
	b.branchEv = arriveEv
	switch msg.brOp {
	case isa.BRO:
		b.branchKind = predictor.KindBranch
		b.branchNext = uint64(int64(b.addr) + int64(msg.brOffset)*isa.ChunkBytes)
	case isa.CALLO:
		b.branchKind = predictor.KindCall
		b.branchNext = uint64(int64(b.addr) + int64(msg.brOffset)*isa.ChunkBytes)
	case isa.RET:
		b.branchKind = predictor.KindReturn
		b.branchNext = msg.val.Bits
	case isa.BR:
		b.branchKind = predictor.KindBranch
		b.branchNext = msg.val.Bits
	}
}

// pumpGSN consumes status messages reaching the head of the three chains.
func (g *gtTile) pumpGSN(now int64) {
	if msg, ok := g.core.gsnRT.Recv(0); ok {
		g.core.gsnRT.Pop(0)
		b := &g.slots[msg.slot]
		if b.valid && b.seq == msg.seq {
			switch msg.kind {
			case gsnFinishR:
				b.writesDone = true
				b.writesEv = g.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatComplete)
				g.core.traceBlock(obs.KindWritesDone, msg.slot, msg.seq, b.addr, critpath.CatComplete)
			case gsnAckR:
				b.ackR = true
				b.ackREv = g.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatCommit)
				g.core.traceBlock(obs.KindCommitAckR, msg.slot, msg.seq, b.addr, critpath.CatCommit)
			}
		}
	}
	if msg, ok := g.core.gsnDT.Recv(0); ok {
		g.core.gsnDT.Pop(0)
		b := &g.slots[msg.slot]
		switch msg.kind {
		case gsnFinishS:
			if b.valid && b.seq == msg.seq {
				b.storesDone = true
				b.storesEv = g.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatComplete)
				g.core.traceBlock(obs.KindStoresDone, msg.slot, msg.seq, b.addr, critpath.CatComplete)
			}
		case gsnAckS:
			if b.valid && b.seq == msg.seq {
				b.ackS = true
				b.ackSEv = g.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatCommit)
				g.core.traceBlock(obs.KindCommitAckS, msg.slot, msg.seq, b.addr, critpath.CatCommit)
			}
		case gsnViolation:
			g.onViolation(now, msg)
		}
	}
	if msg, ok := g.core.gsnIT.Recv(0); ok {
		g.core.gsnIT.Pop(0)
		if msg.kind == gsnRefill {
			// seq carries the block address being refilled.
			g.tags[msg.seq] = &tagEntry{present: true, lastUse: now}
			g.evictTags()
		}
	}
}

// onViolation handles a memory-ordering violation: flush the violated
// load's block and everything younger, then refetch (paper Section 4.3).
func (g *gtTile) onViolation(now int64, msg gsnMsg) {
	// Find the violated block; it may already have been flushed by an
	// earlier report.
	var victim *blockCtx
	for s := range g.slots {
		b := &g.slots[s]
		if b.valid && b.seq == msg.violSeq {
			victim = b
			break
		}
	}
	if victim == nil {
		return
	}
	if victim.commitSent {
		panic(fmt.Sprintf("proc: violation reported for committing block %#x", victim.addr))
	}
	g.ViolationFlushes++
	addr := victim.addr
	thread := victim.thread
	g.flushFrom(now, victim.seq, g.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatOther))
	g.threads[thread].nextFetch = addr
	g.threads[thread].halted = false
}

// checkMispredicts compares each resolved branch against the prediction
// made when the block was fetched, flushing wrong-path successors and
// steering the fetch engine (paper Section 4.3).
func (g *gtTile) checkMispredicts(now int64) {
	for s := range g.slots {
		b := &g.slots[s]
		if !b.valid || !b.branchSeen || b.mispChecked {
			continue
		}
		b.mispChecked = true
		if b.branchNext == b.predictedNext {
			continue
		}
		g.Mispredicts++
		t := &g.threads[b.thread]
		// Flush any fetched wrong-path successors; flushFrom repairs the
		// predictor and resets the fetch pipeline. If none were fetched
		// yet, repair and squash the in-flight fetch directly. The
		// successor is this THREAD's next block — with SMT, sequence
		// numbers interleave across threads.
		var succSeq uint64
		for s2 := range g.slots {
			o := &g.slots[s2]
			if o.valid && o.thread == b.thread && o.seq > b.seq &&
				(succSeq == 0 || o.seq < succSeq) {
				succSeq = o.seq
			}
		}
		if succSeq != 0 {
			g.flushFrom(now, succSeq, g.core.newEvent(now, b.branchEv, critpath.Split{}, critpath.CatOther))
		} else {
			g.pred.Repair(b.succPred)
			if t.lastSeq == b.seq && t.stage != fetchIdle {
				t.stage = fetchIdle // squash the wrong-path fetch
				t.refillWait = false
			}
		}
		t.nextFetch = b.branchNext
		t.badFetch = 0
		t.halted = b.branchNext == haltAddr
		t.lastSeq = b.seq
		b.predictedNext = b.branchNext
	}
}

// flushFrom squashes every in-flight block with seq >= from (same thread as
// the named block), issuing a GCN flush wave and repairing the predictor.
func (g *gtTile) flushFrom(now int64, from uint64, ev *critpath.Event) {
	var mask uint8
	var seqs [8]uint64
	var oldest *blockCtx
	thread := -1
	for s := range g.slots {
		b := &g.slots[s]
		if b.valid && b.seq == from {
			thread = b.thread
		}
	}
	if thread < 0 {
		return
	}
	for s := range g.slots {
		b := &g.slots[s]
		if !b.valid || b.thread != thread || b.seq < from {
			continue
		}
		if b.commitSent {
			panic(fmt.Sprintf("proc: flushing committing block %#x", b.addr))
		}
		mask |= 1 << uint(s)
		seqs[s] = b.seq
		if oldest == nil || b.seq < oldest.seq {
			oldest = b
		}
	}
	if oldest == nil {
		return
	}
	g.Flushes++
	if g.core.cfg.TraceCommits {
		fmt.Printf("[%d] flush from seq=%d mask=%x\n", now, from, mask)
	}
	if g.core.trace != nil {
		g.core.trace.Emit(obs.Event{
			Cycle: now, Seq: from, Addr: oldest.addr, Arg: uint64(mask),
			Kind: obs.KindFlushWave, Slot: -1,
		})
	}
	g.pred.Repair(oldest.selfPred)
	g.core.issueGCN(gcnMsg{kind: gcnFlush, mask: mask, seqs: seqs, ev: ev})
	t := &g.threads[thread]
	for s := range g.slots {
		b := &g.slots[s]
		if mask&(1<<uint(s)) != 0 {
			b.valid = false
			g.core.FlushedBlocks++
		}
	}
	// The thread's fetch chain restarts from the oldest surviving block.
	t.lastSeq = from - 1
	if t.stage != fetchIdle {
		t.stage = fetchIdle // squash the in-flight fetch
		t.refillWait = false
	}
	// Younger dispatch schedules die via seq filtering at the tiles; the
	// GDN becomes free for the refetch immediately (Section 4.3: the GT
	// may issue a new dispatch as soon as the flush wave is on the GCN).
	g.core.cancelScheduled(mask, seqs)
}

// tryCommit runs phase two of the commit protocol: send pipelined commit
// commands for completed blocks, oldest first (paper Section 4.4).
func (g *gtTile) tryCommit(now int64) {
	for t := 0; t < NumThreads; t++ {
		if !g.threads[t].active {
			continue
		}
		// Oldest uncommitted block of the thread.
		for {
			b := g.oldestUncommitted(t)
			if b == nil || !b.complete() {
				break
			}
			if !g.core.canIssueGCN() {
				break
			}
			g.core.markTimeline(b.seq, b.addr, "complete")
			g.core.traceBlock(obs.KindBlockComplete, g.slotOf(b), b.seq, b.addr, critpath.CatComplete)
			doneEv := critpath.Latest(critpath.Latest(b.branchEv, b.writesEv), b.storesEv)
			b.commitEv = g.core.newEvent(now, doneEv, critpath.Split{}, critpath.CatComplete)
			g.core.issueGCN(gcnMsg{kind: gcnCommit, slot: g.slotOf(b), seq: b.seq, ev: b.commitEv})
			b.commitSent = true
			g.core.markTimeline(b.seq, b.addr, "commit")
			g.core.traceBlock(obs.KindCommitCmd, g.slotOf(b), b.seq, b.addr, critpath.CatCommit)
			g.Commits++
			if g.core.cfg.TraceCommits {
				fmt.Printf("[%d] commit cmd seq=%d addr=%#x exit=%d next=%#x\n", now, b.seq, b.addr, b.branchExit, b.branchNext)
			}
			// The commit command updates the block predictor (Section 4.4).
			retAddr := b.addr + uint64(g.core.program.Size(b.addr))
			g.pred.Update(b.addr, b.succPred, b.branchExit, b.branchKind, b.branchNext, retAddr)
		}
	}
}

func (g *gtTile) slotOf(b *blockCtx) int {
	for s := range g.slots {
		if &g.slots[s] == b {
			return s
		}
	}
	panic("proc: blockCtx not in slots")
}

func (g *gtTile) oldestUncommitted(thread int) *blockCtx {
	var best *blockCtx
	for s := range g.slots {
		b := &g.slots[s]
		if !b.valid || b.thread != thread || b.commitSent {
			continue
		}
		if best == nil || b.seq < best.seq {
			best = b
		}
	}
	return best
}

// reapCommitted deallocates blocks whose commit has been acknowledged by
// both the RTs and DTs (phase three, Section 4.4).
func (g *gtTile) reapCommitted(now int64) {
	for s := range g.slots {
		b := &g.slots[s]
		if !b.valid || !b.commitSent || !b.ackR || !b.ackS {
			continue
		}
		g.core.markTimeline(b.seq, b.addr, "acked")
		g.core.traceBlock(obs.KindBlockAcked, s, b.seq, b.addr, critpath.CatCommit)
		ev := g.core.newEvent(now, critpath.Latest(b.ackREv, b.ackSEv), critpath.Split{}, critpath.CatCommit)
		g.lastCommitEv = ev
		t := &g.threads[b.thread]
		if b.branchNext == haltAddr {
			t.halted = true
		}
		b.valid = false
		g.core.onBlockRetired(b.addr)
	}
}

// advanceFetch runs the block fetch pipeline for one thread per cycle
// (round-robin among active threads).
func (g *gtTile) advanceFetch(now int64) {
	n := g.core.activeThreads()
	for i := 0; i < n; i++ {
		t := (g.rrThread + i) % n
		if g.stepThreadFetch(now, t) {
			g.rrThread = (t + 1) % n
			return
		}
	}
}

// stepThreadFetch advances one thread's fetch pipeline; returns true if it
// did work this cycle.
func (g *gtTile) stepThreadFetch(now int64, ti int) bool {
	t := &g.threads[ti]
	if !t.active || t.halted {
		return false
	}
	switch t.stage {
	case fetchIdle:
		if t.nextFetch == haltAddr {
			t.halted = true
			return false
		}
		if t.badFetch != 0 && t.nextFetch == t.badFetch {
			return false // mispredicted into unmapped space; await redirect
		}
		if _, ok := g.freeSlot(ti); !ok {
			return false
		}
		t.fetchAddr = t.nextFetch
		t.stage = fetchPredict
		t.stageUntil = now + predictCycles
		g.core.traceBlock(obs.KindBlockFetch, -1, 0, t.fetchAddr, critpath.CatIFetch)
		return true
	case fetchPredict:
		if now >= t.stageUntil {
			t.stage = fetchTag
			t.stageUntil = now + tagCycles
		}
		return true
	case fetchTag:
		if now >= t.stageUntil {
			t.stage = fetchHitMiss
			t.stageUntil = now + hitMissCycles
		}
		return true
	case fetchHitMiss:
		if now < t.stageUntil {
			return true
		}
		if _, ok := g.core.program.Block(t.fetchAddr); !ok {
			// Speculative fetch into unmapped space (a cold or aliased
			// target prediction): stall until a branch redirects us.
			t.badFetch = t.fetchAddr
			t.stage = fetchIdle
			return true
		}
		if e, ok := g.tags[t.fetchAddr]; ok && e.present {
			e.lastUse = now
			t.stage = fetchDispatch
			return true
		}
		// I-cache miss: distributed refill over the GRN (Section 4.1).
		g.Refills++
		t.stage = fetchRefill
		t.refillWait = true
		g.core.issueGRN(t.fetchAddr)
		return true
	case fetchRefill:
		if e, ok := g.tags[t.fetchAddr]; ok && e.present {
			t.refillWait = false
			t.stage = fetchDispatch
			return true
		}
		return true
	case fetchDispatch:
		// The GDN serializes dispatches: one block's eight beat commands
		// occupy it for eight cycles.
		if g.dispatchBusyUntil > now {
			return false
		}
		slot, ok := g.freeSlot(ti)
		if !ok {
			return false
		}
		g.beginDispatch(now, ti, slot, t.fetchAddr)
		t.stage = fetchIdle
		return true
	}
	return false
}

// beginDispatch allocates the frame, predicts the successor, and schedules
// the GDN instruction distribution.
func (g *gtTile) beginDispatch(now int64, ti, slot int, addr uint64) {
	if g.core.cfg.TraceCommits {
		fmt.Printf("[%d] dispatch slot=%d addr=%#x seq=%d\n", now, slot, addr, g.nextSeq)
	}
	t := &g.threads[ti]
	seq := g.nextSeq
	g.nextSeq++
	g.Fetches++

	hdr, err := g.core.its[0].headerOf(addr)
	if err != nil {
		panic(fmt.Sprintf("proc: dispatch without header: %v", err))
	}
	seqNext := addr + uint64(g.core.program.Size(addr))
	succPred := g.pred.Predict(addr, seqNext)

	b := &g.slots[slot]
	*b = blockCtx{
		valid: true, seq: seq, addr: addr, thread: ti, hdr: hdr,
		selfPred:      t.pendingSelfPred(),
		succPred:      succPred,
		predictedNext: succPred.Next,
	}
	// A block with no register writes has writesDone trivially; same for
	// stores — but completion still requires the GSN round trip, which the
	// RT/DT chains produce immediately. Here we only special-case the
	// degenerate empty header (never produced by the compiler).
	g.dispatchBusyUntil = now + dispatchBeats
	g.core.markTimeline(seq, addr, "dispatch")
	g.core.traceBlock(obs.KindBlockDispatch, slot, seq, addr, critpath.CatIFetch)
	b.dispatchEv = g.core.newEvent(now, g.lastCommitEv, critpath.Split{}, critpath.CatIFetch)
	g.core.scheduleDispatch(now, slot, seq, ti, addr, hdr, b.dispatchEv)
	t.nextFetch = succPred.Next
	t.lastSeq = seq
	t.pendingPred = succPred
	if succPred.Next == haltAddr {
		// Never predict into the halt address; fetch stalls until the
		// branch resolves (or confirms the halt).
	}
}

// pendingSelfPred returns the prediction that chose the block about to be
// dispatched (the previous block's successor prediction).
func (t *threadCtx) pendingSelfPred() predictor.Prediction { return t.pendingPred }

func (g *gtTile) evictTags() {
	for len(g.tags) > g.tagCap {
		var victim uint64
		var oldest int64 = 1 << 62
		for a, e := range g.tags {
			if e.lastUse < oldest {
				oldest, victim = e.lastUse, a
			}
		}
		delete(g.tags, victim)
		for _, it := range g.core.its {
			it.evict(victim)
		}
	}
}

// warpIdle reports whether the GT's next tick would do no work beyond
// waiting on deadline-held fetch stages, and if so the earliest cycle at
// which such a deadline fires (horizonNever when the GT waits purely on
// external wakeups — refill completions, commit acks, branch deliveries —
// all of which arrive via micronet traffic that separately defeats
// quiescence). Callers must already have established that every micronet is
// quiet: with no deliveries possible, pumpGSN and pumpOPN are no-ops, and
// the checks below cover the remaining tick phases (mispredict checks,
// commit issue, fetch advance, block reap).
func (g *gtTile) warpIdle(now int64) (int64, bool) {
	for s := range g.slots {
		b := &g.slots[s]
		if !b.valid {
			continue
		}
		if b.branchSeen && !b.mispChecked {
			return 0, false // checkMispredicts would act
		}
		if b.commitSent && b.ackR && b.ackS {
			return 0, false // reapCommitted would act
		}
	}
	n := g.core.activeThreads()
	for t := 0; t < n; t++ {
		if !g.threads[t].active {
			continue
		}
		if b := g.oldestUncommitted(t); b != nil && b.complete() {
			return 0, false // tryCommit would act
		}
	}
	horizon := horizonNever
	single := n == 1
	for ti := 0; ti < n; ti++ {
		t := &g.threads[ti]
		if !t.active || t.halted {
			continue
		}
		switch t.stage {
		case fetchIdle:
			if t.nextFetch == haltAddr {
				return 0, false // tick would halt the thread
			}
			if t.badFetch != 0 && t.nextFetch == t.badFetch {
				continue // stalled until a branch redirects; pure wait
			}
			if _, ok := g.freeSlot(ti); ok {
				return 0, false // tick would start a fetch
			}
			// No free frame; a commit ack (chain traffic) frees one.
		case fetchPredict, fetchTag, fetchHitMiss:
			// Timed stages consume the one-thread-per-cycle fetch slot
			// (stepThreadFetch reports them as work), so their wait cycles
			// advance the round-robin pointer — skippable only when a single
			// thread makes the rotation degenerate.
			if !single {
				return 0, false
			}
			if t.stageUntil < horizon {
				horizon = t.stageUntil
			}
		case fetchRefill:
			if e, ok := g.tags[t.fetchAddr]; ok && e.present {
				return 0, false // refill landed; tick would move to dispatch
			}
			// Waiting on the GSN-IT refill chain; pure wait.
		case fetchDispatch:
			if g.dispatchBusyUntil > now {
				if g.dispatchBusyUntil < horizon {
					horizon = g.dispatchBusyUntil
				}
				continue
			}
			if _, ok := g.freeSlot(ti); ok {
				return 0, false // tick would begin dispatch
			}
			// No free frame; pure wait on commit acks.
		}
	}
	return horizon, true
}

// allRetired reports whether every thread has halted with no blocks in
// flight.
func (g *gtTile) allRetired() bool {
	for ti := range g.threads {
		t := &g.threads[ti]
		if t.active && !t.halted {
			return false
		}
	}
	for s := range g.slots {
		if g.slots[s].valid {
			return false
		}
	}
	return true
}
