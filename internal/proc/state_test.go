package proc

import (
	"testing"

	"trips/internal/ckpt"
	"trips/internal/isa"
	"trips/internal/mem"
)

// newCkptCore builds a core without critical-path tracking (SaveState
// refuses it) over a freshly imaged memory.
func newCkptCore(t *testing.T, p *Program) *Core {
	t.Helper()
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{
		Program:   p,
		Mem:       NewFixedLatencyMem(m, 20),
		MaxCycles: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// depLoopProgram is the store/load loop from the dependence-predictor test:
// every iteration stores i, loads it back, and branches — it keeps the DTs,
// LSQs, MSHRs and drain queues busy, which is exactly the state a mid-run
// checkpoint must capture.
func depLoopProgram(t *testing.T) *Program {
	t.Helper()
	loopA := &isa.Block{Addr: 0x1000, Name: "sl-loop"}
	loopA.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(0), RT1: isa.ToLeft(6)}
	loopA.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(0)}
	loopA.Reads[2] = isa.ReadInst{Valid: true, GR: 14, RT0: isa.ToLeft(2)}
	loopA.Reads[3] = isa.ReadInst{Valid: true, GR: 19, RT0: isa.ToLeft(3)}
	loopA.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
	loopA.Writes[1] = isa.WriteInst{Valid: true, GR: 17}
	loopA.Insts = []isa.Inst{
		{Op: isa.SD, Imm: 0, LSID: 0},
		{Op: isa.NOP},
		{Op: isa.LD, Imm: 0, LSID: 1, T0: isa.ToWrite(1)},
		{Op: isa.TGT, T0: isa.ToPred(4), T1: isa.ToPred(5)},
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 0},
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: haltOffset(0x1000)},
		{Op: isa.ADDI, Imm: 1, T0: isa.ToLeft(7)},
		{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToRight(3)},
	}
	p, err := NewProgram(loopA.Addr, []*isa.Block{loopA})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compareResults(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Errorf("%s: cycles %d != %d", label, a.Cycles, b.Cycles)
	}
	if a.CommittedBlocks != b.CommittedBlocks {
		t.Errorf("%s: blocks %d != %d", label, a.CommittedBlocks, b.CommittedBlocks)
	}
	if a.CommittedInsts != b.CommittedInsts {
		t.Errorf("%s: insts %d != %d", label, a.CommittedInsts, b.CommittedInsts)
	}
	if a.Flushes != b.Flushes {
		t.Errorf("%s: flushes %d != %d", label, a.Flushes, b.Flushes)
	}
	if a.Mispredicts != b.Mispredicts {
		t.Errorf("%s: mispredicts %d != %d", label, a.Mispredicts, b.Mispredicts)
	}
	if a.Violations != b.Violations {
		t.Errorf("%s: violations %d != %d", label, a.Violations, b.Violations)
	}
}

// roundTrip checks the full checkpoint contract for one program: a run with
// a mid-run checkpoint matches an uninterrupted run, and a new core restored
// from the checkpoint finishes bit-identically — same cycles, stats,
// registers, and even warp counters (all serialized state).
func roundTrip(t *testing.T, p *Program, init func(*Core), regs []int) {
	t.Helper()
	// Reference: uninterrupted.
	ref := newCkptCore(t, p)
	init(ref)
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Cycles < 20 {
		t.Fatalf("program too short to checkpoint mid-run: %d cycles", refRes.Cycles)
	}
	at := refRes.Cycles / 2

	// Checkpointed run.
	ck := newCkptCore(t, p)
	init(ck)
	var payload []byte
	var capturedAt int64
	ck.SetCheckpointHook(at, func(cycle int64) error {
		w := &ckpt.Writer{}
		if err := ck.SaveState(w); err != nil {
			return err
		}
		ck.mem.(*FixedLatencyMem).SaveState(w)
		payload = append([]byte(nil), w.Payload()...)
		capturedAt = cycle
		return nil
	})
	ckRes, err := ck.Run()
	if err != nil {
		t.Fatal(err)
	}
	if payload == nil {
		t.Fatal("checkpoint hook never fired")
	}
	if capturedAt <= at {
		t.Errorf("captured at cycle %d, want > %d", capturedAt, at)
	}
	compareResults(t, "checkpointed vs reference", refRes, ckRes)

	// Restored run: fresh core + backend, all state overwritten from the
	// payload, then run to completion.
	re := newCkptCore(t, p)
	r := ckpt.NewReader(payload)
	if err := re.LoadState(r); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	re.mem.(*FixedLatencyMem).LoadState(r, re)
	if err := r.Close(); err != nil {
		t.Fatalf("payload not fully consumed: %v", err)
	}
	if re.Cycle() != capturedAt {
		t.Fatalf("restored clock %d, want %d", re.Cycle(), capturedAt)
	}
	reRes, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "restored vs reference", refRes, reRes)
	if refRes.CritPath.TotalCycles != reRes.CritPath.TotalCycles {
		t.Errorf("critpath: %d != %d", refRes.CritPath.TotalCycles, reRes.CritPath.TotalCycles)
	}
	if ckRes.IPC != reRes.IPC {
		t.Errorf("IPC %v != %v", ckRes.IPC, reRes.IPC)
	}
	// Warp telemetry is serialized state too, so even it must agree on the
	// pure sequential path.
	if ck.Warps != re.Warps || ck.WarpedCycles != re.WarpedCycles {
		t.Errorf("warp counters diverge: (%d,%d) != (%d,%d)", ck.Warps, ck.WarpedCycles, re.Warps, re.WarpedCycles)
	}
	for _, reg := range regs {
		if a, b := ck.Register(0, reg), re.Register(0, reg); a != b {
			t.Errorf("r%d: %#x != %#x", reg, a, b)
		}
	}
}

func TestCheckpointRoundTripLoop(t *testing.T) {
	roundTrip(t, loopProgram(t), func(c *Core) {
		c.SetRegister(0, 8, 0)
		c.SetRegister(0, 13, 0)
		c.SetRegister(0, 18, 10)
	}, []int{8, 13})
}

func TestCheckpointRoundTripStoreLoadLoop(t *testing.T) {
	roundTrip(t, depLoopProgram(t), func(c *Core) {
		c.SetRegister(0, 8, 0)
		c.SetRegister(0, 13, 0x8000)
		c.SetRegister(0, 14, 0x8000)
		c.SetRegister(0, 19, 40)
	}, []int{8, 17})
}

func TestCheckpointRefusesCritPath(t *testing.T) {
	p := loopProgram(t)
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{
		Program:       p,
		Mem:           NewFixedLatencyMem(m, 20),
		TrackCritPath: true,
		MaxCycles:     2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveState(&ckpt.Writer{}); err == nil {
		t.Fatal("SaveState accepted a critical-path-tracking core")
	}
}

func TestCheckpointCorruptPayloadFailsCleanly(t *testing.T) {
	p := loopProgram(t)
	c := newCkptCore(t, p)
	c.SetRegister(0, 8, 0)
	c.SetRegister(0, 13, 0)
	c.SetRegister(0, 18, 10)
	var payload []byte
	c.SetCheckpointHook(10, func(int64) error {
		w := &ckpt.Writer{}
		if err := c.SaveState(w); err != nil {
			return err
		}
		c.mem.(*FixedLatencyMem).SaveState(w)
		payload = append([]byte(nil), w.Payload()...)
		return nil
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if payload == nil {
		t.Fatal("checkpoint hook never fired")
	}
	// Truncation anywhere must surface as a sticky reader error, never a
	// panic or silent partial restore.
	for _, cut := range []int{1, len(payload) / 3, len(payload) / 2, len(payload) - 1} {
		re := newCkptCore(t, p)
		r := ckpt.NewReader(payload[:cut])
		err := re.LoadState(r)
		if err == nil {
			re.mem.(*FixedLatencyMem).LoadState(r, re)
			err = r.Close()
		}
		if err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}
