package proc

import (
	"fmt"

	"trips/internal/isa"
	"trips/internal/micronet"
)

// itChunk is one cached 128-byte chunk plus its lazily decoded form.
type itChunk struct {
	raw  []byte
	body *[isa.BodyChunkInsts]isa.Inst // decoded on first dispatch (body ITs)
	hdr  *isa.HeaderInfo               // decoded on first dispatch (IT 0)
}

// itRefill tracks one outstanding distributed I-cache refill at this IT.
type itRefill struct {
	ownDone   bool
	southDone bool
}

// itTile is one of the five instruction tiles: a 16KB bank holding one
// 128-byte chunk for each of up to 128 distinct blocks, acting as a slave
// to the GT which holds the single tag array (paper Section 3.2). IT 0
// holds header chunks; IT k holds body chunk k-1.
type itTile struct {
	core *Core
	id   int

	chunks      map[uint64]*itChunk // keyed by block address
	refills     map[uint64]*itRefill
	refillOrder []uint64
	port        MemPort
	pending     micronet.Queue[uint64] // refill reads awaiting a free port

	// active registers pending work with the core's stepping fast path: set
	// when a refill command or bank-read completion arrives, cleared by tick
	// once no refill is outstanding.
	active bool

	// Stats.
	Refills uint64
}

func newIT(core *Core, id int) *itTile {
	return &itTile{core: core, id: id, chunks: make(map[uint64]*itChunk), refills: make(map[uint64]*itRefill)}
}

// chunkAddr returns where this IT's chunk of the block at addr lives.
func (it *itTile) chunkAddr(blockAddr uint64) uint64 {
	return blockAddr + uint64(it.id)*isa.ChunkBytes
}

// onRefill begins fetching this IT's chunk of the block ("Each IT processes
// the misses for its own chunk independently", paper Section 4.1).
func (it *itTile) onRefill(blockAddr uint64) {
	if _, ok := it.refills[blockAddr]; ok {
		return
	}
	it.Refills++
	st := &itRefill{}
	it.refills[blockAddr] = st
	it.refillOrder = append(it.refillOrder, blockAddr)
	if c, ok := it.chunks[blockAddr]; ok && c != nil {
		st.ownDone = true // chunk already resident
		return
	}
	it.pending.Push(blockAddr)
}

func (it *itTile) tick(now int64) {
	// Submit queued chunk reads.
	for !it.pending.Empty() {
		blockAddr := it.pending.Front()
		req := &MemRequest{Addr: it.chunkAddr(blockAddr), N: isa.ChunkBytes,
			Origin: Origin{Kind: OriginITRefill, Tile: it.id},
			Done: func(data []byte) {
				it.active = true
				it.chunks[blockAddr] = &itChunk{raw: data}
				if st := it.refills[blockAddr]; st != nil {
					st.ownDone = true
				}
			}}
		if !it.port.Submit(req) {
			break
		}
		it.pending.Pop()
	}
	// South-neighbor refill completions arrive on the GSN chain.
	node := it.id + 1
	if node < it.core.gsnIT.N-1 {
		if msg, ok := it.core.gsnIT.Recv(node); ok {
			if msg.kind == gsnRefill {
				if st := it.refills[msg.seq]; st != nil { // seq carries the address
					st.southDone = true
				}
				it.core.gsnIT.Pop(node)
			} else {
				it.core.gsnIT.Pop(node)
			}
		}
	}
	// Signal refill completion northward once this IT and its south
	// neighbor are done (the bottom IT needs no neighbor).
	kept := it.refillOrder[:0]
	for _, addr := range it.refillOrder {
		st := it.refills[addr]
		if st == nil {
			continue
		}
		done := st.ownDone && (it.id == isa.NumITs-1 || st.southDone)
		if done && it.core.gsnIT.CanSend(it.id+1) {
			it.core.gsnIT.Send(it.id+1, gsnMsg{kind: gsnRefill, seq: addr})
			delete(it.refills, addr)
			continue
		}
		kept = append(kept, addr)
	}
	it.refillOrder = kept
	// Idle unless a tick can make progress: a queued port submit to retry, or
	// a completed refill whose northward send lost chain arbitration. A refill
	// merely *waiting* — own bank read in flight, or south neighbor not done —
	// needs no ticks: the port's Done closure re-sets active, and an incoming
	// south completion forces ticks through the chain-busy gate until consumed.
	// Clearing active during pure waits lets a quiescent core clock-warp
	// across long refill latencies.
	ready := false
	for _, addr := range it.refillOrder {
		st := it.refills[addr]
		if st != nil && st.ownDone && (it.id == isa.NumITs-1 || st.southDone) {
			ready = true
			break
		}
	}
	it.active = !it.pending.Empty() || ready
	_ = now
}

// headerOf returns the decoded header chunk for a resident block (IT 0).
func (it *itTile) headerOf(blockAddr uint64) (*isa.HeaderInfo, error) {
	c := it.chunks[blockAddr]
	if c == nil {
		return nil, fmt.Errorf("proc: IT%d has no chunk for block %#x", it.id, blockAddr)
	}
	if c.hdr == nil {
		h, err := isa.DecodeHeaderChunk(c.raw)
		if err != nil {
			return nil, err
		}
		c.hdr = h
	}
	return c.hdr, nil
}

// bodyOf returns the decoded instructions of this IT's body chunk.
func (it *itTile) bodyOf(blockAddr uint64) (*[isa.BodyChunkInsts]isa.Inst, error) {
	c := it.chunks[blockAddr]
	if c == nil {
		return nil, fmt.Errorf("proc: IT%d has no chunk for block %#x", it.id, blockAddr)
	}
	if c.body == nil {
		insts, err := isa.DecodeBodyChunk(c.raw)
		if err != nil {
			return nil, err
		}
		c.body = &insts
	}
	return c.body, nil
}

// evict drops a block's chunk (GT tag replacement).
func (it *itTile) evict(blockAddr uint64) {
	delete(it.chunks, blockAddr)
}
