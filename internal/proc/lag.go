package proc

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"trips/internal/micronet"
	"trips/internal/obs"
)

// This file implements bounded-lag stepping: each core carries its own local
// clock and runs ahead of the shared memory system in strides, synchronizing
// only at provable cross-core visibility horizons instead of every cycle.
//
// The causality argument has three legs, each enforced structurally:
//
//  1. Response deadlines under outstanding work. A core with transactions
//     pending in the memory system (OutstandingFor > 0) strides up to the
//     earliest cycle any of those transactions' responses can dispatch at
//     its port (ResponseDeadlineFor): per-transaction bounds built from the
//     per-(bank, port) wormhole Manhattan transit tables, the MSHR fill
//     state, and SDRAM completion times, each a provable lower bound on the
//     effect cycle. The stride therefore ends at or before the first cycle
//     a response could touch the core, so no rollback is ever needed —
//     where PR 5 held such a core to one-cycle lockstep (horizon G+1), a
//     core waiting out a 60-cycle SDRAM access now strides those cycles in
//     one piece.
//
//  2. The staged-submission gate. A core may step cycle u > G only while its
//     owned port queues are empty. In a sequential run the backend drains
//     staged submissions every tick; a run-ahead core has not had those
//     ticks yet, so a non-empty queue could change a later Submit from
//     accepted to refused relative to the sequential interleave. Requiring
//     emptiness makes both runs see identical queue states at every Submit:
//     submissions carry the submitting core's cycle as a drain stamp, so the
//     deferred backend ticks drain them on exactly the sequential schedule.
//
//  3. Free run without outstanding work. A core with no transactions
//     anywhere in the memory system cannot be affected by it before its own
//     next Submit completes a round trip — and leg 2 ends the stride one
//     cycle after any Submit, after which leg 1's deadline for that very
//     transaction takes over. The stride is therefore bounded only by the
//     cycle limit (and MaxStride, when configured); the effect gate still
//     cross-checks every response against the owner's clock and rolls back
//     the (warp-only, hence cheaply rewindable) overshoot if a
//     fault-injected override let the core run past a real effect.
//     CrossCoreLag remains the geometric floor all deadline terms are
//     asserted against by the property tests.
//
// The coordinator alternates three phases per round: a joint warp when every
// component is quiescent at the same cycle (the old whole-machine fast
// path, now one special case), per-core strides (parallel across host
// threads when enabled), and a serial memory catch-up that ticks the
// backend to the slowest core's clock.

// LagMem is the backend contract for bounded-lag stepping: an EventHorizon
// that additionally exposes its clock, per-owner staging/outstanding
// counters, the cross-core visibility bound, and the effect gate used to
// detect (and roll back) horizon violations.
type LagMem interface {
	EventHorizon
	Tick()
	Cycle() int64
	HorizonDirty()
	CrossCoreLag() int64
	OutstandingFor(owner int) int
	StagedFor(owner int) int
	// ResponseDeadlineFor returns the earliest backend cycle at which any of
	// the owner's outstanding transactions can have its response dispatch at
	// the owner's port, or MaxInt64 when none are outstanding. The
	// coordinator uses it directly as the stride horizon under outstanding
	// work, so it must be a sound lower bound on every response's effect
	// cycle.
	ResponseDeadlineFor(owner int) int64
	BindClock(owner int, clock func() int64)
	SetEffectGate(fn func(owner int, effectCycle int64))
}

// LagCore pairs a core with the owner id its memory ports carry.
type LagCore struct {
	Core  *Core
	Owner int
}

// LagCoreStats aggregates per-core stride telemetry.
type LagCoreStats struct {
	Strides      uint64
	StrideCycles int64
	StrideHist   obs.Histogram
	// Why strides ended: the core ran out of horizon (HorizonLimited, e.g. a
	// MaxStride or fault-injection cap), reached the computed response
	// deadline of its outstanding memory work (DeadlineLimited), degenerated
	// to one-cycle lockstep because that deadline was already at hand
	// (QuiesceLimited), staged a submission the backend must drain first
	// (Backpressure), or finished.
	HorizonLimited  uint64
	DeadlineLimited uint64
	QuiesceLimited  uint64
	Backpressure    uint64
	// Rollbacks counts strides invalidated by an early-arriving response;
	// structurally zero unless a horizon override disables the safe bounds.
	Rollbacks        uint64
	RolledBackCycles int64
}

// LagStats aggregates coordinator telemetry across a bounded-lag run.
type LagStats struct {
	Core   []LagCoreStats
	Rounds uint64
	// Joint warps skip dead cycles on every clock at once (the old
	// whole-machine fast path); mem warps skip backend-only dead ticks
	// while cores are parked at their horizons.
	JointWarps        uint64
	JointWarpedCycles int64
	MemWarps          uint64
	MemWarpedCycles   int64
}

// TotalStrides sums stride counts across cores.
func (s *LagStats) TotalStrides() uint64 {
	var n uint64
	for i := range s.Core {
		n += s.Core[i].Strides
	}
	return n
}

// TotalRollbacks sums rollback counts across cores.
func (s *LagStats) TotalRollbacks() uint64 {
	var n uint64
	for i := range s.Core {
		n += s.Core[i].Rollbacks
	}
	return n
}

// Summary renders the coordinator telemetry for terminal output: per-core
// stride histograms with stall reasons, plus round and warp totals.
func (s *LagStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  bounded-lag: %d rounds, %d joint warps (%d cycles), %d mem warps (%d cycles)\n",
		s.Rounds, s.JointWarps, s.JointWarpedCycles, s.MemWarps, s.MemWarpedCycles)
	for k := range s.Core {
		cs := &s.Core[k]
		if cs.Strides == 0 {
			continue
		}
		fmt.Fprintf(&b, "  core %d: %d strides (%d cycles, avg %.1f), stalls horizon=%d deadline=%d quiesce=%d backpressure=%d, rollbacks=%d (%d cycles)\n",
			k, cs.Strides, cs.StrideCycles, float64(cs.StrideCycles)/float64(cs.Strides),
			cs.HorizonLimited, cs.DeadlineLimited, cs.QuiesceLimited, cs.Backpressure, cs.Rollbacks, cs.RolledBackCycles)
		fmt.Fprintf(&b, "    stride-length hist: %s\n", cs.StrideHist.String())
	}
	return b.String()
}

// LagConfig parameterizes RunBoundedLag.
type LagConfig struct {
	// Limit is the simulated-cycle budget (0 means 200M, matching Run).
	Limit int64
	// Watchdog enables Run's per-core 200k-cycle no-commit deadlock check.
	Watchdog bool
	// NoWarp disables every clock-warp fast path (strides still apply).
	NoWarp bool
	// Parallel strides cores on separate host threads when GOMAXPROCS > 1.
	Parallel bool
	// HorizonOverride, when positive, forces every stride horizon to G+n
	// regardless of outstanding work — a fault-injection hook that makes
	// horizon violations (and thus rollbacks) reachable for testing.
	HorizonOverride int64
	// DeadlinePad, when positive, adds n cycles to every computed response
	// deadline — past the provable bound, so a waiting core overshoots the
	// true effect cycle and the effect gate must roll it back. A
	// fault-injection hook for exercising the rollback path; never set it
	// outside tests.
	DeadlinePad int64
	// MaxStride, when positive, caps every stride horizon at G+n. Always
	// safe: shrinking a horizon can never admit an early message; smaller
	// values trade parallelism for tighter interleaving.
	MaxStride int64
	// PreTick runs before each backend tick with the tick index — the chip
	// hangs its DMA engines here.
	PreTick func(tick int64)
	// ExtraBusy reports chip-level work (DMA) that must keep the clock
	// running after every core has finished.
	ExtraBusy func() bool
	// CanWarpExtra gates warping on chip-level work: false while a DMA
	// engine is between transactions and needs per-cycle ticks.
	CanWarpExtra func() bool
	// OnRollback, when non-nil, is invoked after the effect gate rewinds a
	// core: owner is the memory-port owner id, from the cycle the core had
	// run ahead to, effect the cycle it was rewound to. Observability hook
	// only (the flight recorder hangs dump triggers here); it runs after
	// the rewind and before the response's completion callback, and must
	// not touch simulated state.
	OnRollback func(owner int, from, effect int64)
	// StopAt, when positive, pauses the run at that cycle: every stride,
	// joint warp, and backend catch-up is clamped so no clock passes it, and
	// the coordinator returns once every active core and the backend have
	// reached it. At the pause point core and backend clocks agree — the
	// lockstep boundary a checkpoint capture needs. Resume by calling
	// RunBoundedLag again with StopAt 0.
	StopAt int64
	// Stats, when non-nil, receives coordinator telemetry.
	Stats *LagStats
	// LimitErr formats the cycle-limit error (chip and proc wordings
	// differ); nil gets a generic message.
	LimitErr func(limit int64) error
}

// stride end reasons.
const (
	rsHorizon = iota
	rsDeadline
	rsQuiesce
	rsBackpressure
	rsDone
)

type strideRes struct {
	len    int64
	reason int
}

type strideReq struct {
	horizon int64
	// endReason classifies a stride that runs all the way to its horizon:
	// rsHorizon for a free-run or override cap, rsDeadline for a computed
	// response deadline, rsQuiesce when that deadline degenerated to
	// one-cycle lockstep.
	endReason int
}

type lagRunner struct {
	mem   LagMem
	cores []LagCore
	cfg   LagConfig
	limit int64
	G     int64 // backend clock: index of the next backend tick

	doneCore    []bool
	lastStepped []int64 // rollback validity: cycles past this were warp-only
	lastCommit  []int64
	lastCount   []uint64
	errs        []error
	sres        []strideRes
	ran         []bool
	horizons    []int64
	endReasons  []int
	ownerIdx    map[int]int
	catchTarget int64

	stats *LagStats
	par   bool
	work  []chan strideReq
	wg    sync.WaitGroup
}

// RunBoundedLag drives cores and a shared memory backend to completion
// under bounded-lag stepping, returning the final backend cycle. It is
// bit-identical to the sequential interleave (cores step cycle u, then the
// backend ticks u) for every observable: core cycles, registers, stats, and
// backend state.
func RunBoundedLag(mem LagMem, cores []LagCore, cfg LagConfig) (int64, error) {
	limit := cfg.Limit
	if limit == 0 {
		limit = 200_000_000
	}
	n := len(cores)
	r := &lagRunner{
		mem: mem, cores: cores, cfg: cfg, limit: limit,
		G:           mem.Cycle(),
		doneCore:    make([]bool, n),
		lastStepped: make([]int64, n),
		lastCommit:  make([]int64, n),
		lastCount:   make([]uint64, n),
		errs:        make([]error, n),
		sres:        make([]strideRes, n),
		ran:         make([]bool, n),
		horizons:    make([]int64, n),
		endReasons:  make([]int, n),
		ownerIdx:    make(map[int]int, n),
		stats:       cfg.Stats,
		par:         cfg.Parallel && runtime.GOMAXPROCS(0) > 1 && n > 1,
	}
	if r.stats == nil {
		r.stats = &LagStats{}
	}
	for len(r.stats.Core) < n {
		r.stats.Core = append(r.stats.Core, LagCoreStats{})
	}
	for k := range cores {
		c := cores[k].Core
		r.lastStepped[k] = c.Cycle()
		r.lastCommit[k] = c.Cycle()
		r.lastCount[k] = c.CommittedBlocks
		if cores[k].Owner >= 0 {
			r.ownerIdx[cores[k].Owner] = k
			mem.BindClock(cores[k].Owner, c.Cycle)
		}
	}
	mem.SetEffectGate(r.onEffect)
	defer mem.SetEffectGate(nil)
	if r.par {
		r.startWorkers()
		defer r.stopWorkers()
	}
	for {
		r.refreshDone()
		if r.allDone() && !r.extraBusy() && r.G >= r.maxCoreCycle() {
			return r.G, nil
		}
		if cfg.StopAt > 0 && r.G >= cfg.StopAt && r.parkedAt(cfg.StopAt) {
			return r.G, nil
		}
		if r.G > limit {
			if cfg.LimitErr != nil {
				return r.G, cfg.LimitErr(limit)
			}
			return r.G, fmt.Errorf("bounded-lag: cycle limit %d exceeded", limit)
		}
		r.jointWarp()
		r.strideAll()
		for k := range r.errs {
			if r.errs[k] != nil {
				return r.G, r.errs[k]
			}
		}
		// Strides staged submissions without moving the backend clock, so
		// the memoized horizon scan must be recomputed before catch-up.
		r.mem.HorizonDirty()
		r.catchUp()
	}
}

func (r *lagRunner) refreshDone() {
	for k := range r.cores {
		if !r.doneCore[k] && r.cores[k].Core.Done() {
			r.doneCore[k] = true
		}
	}
}

// parkedAt reports whether every unfinished core has reached the pause
// cycle.
func (r *lagRunner) parkedAt(stop int64) bool {
	for k := range r.cores {
		if !r.doneCore[k] && r.cores[k].Core.Cycle() < stop {
			return false
		}
	}
	return true
}

func (r *lagRunner) allDone() bool {
	for k := range r.doneCore {
		if !r.doneCore[k] {
			return false
		}
	}
	return true
}

func (r *lagRunner) maxCoreCycle() int64 {
	var m int64
	for k := range r.cores {
		if t := r.cores[k].Core.Cycle(); t > m {
			m = t
		}
	}
	return m
}

func (r *lagRunner) extraBusy() bool {
	return r.cfg.ExtraBusy != nil && r.cfg.ExtraBusy()
}

func (r *lagRunner) canWarpExtra() bool {
	return r.cfg.CanWarpExtra == nil || r.cfg.CanWarpExtra()
}

// jointWarp is the whole-machine fast path: when every active core sits
// quiescent at exactly the backend clock and the backend itself is quiet,
// all clocks jump together to the earliest scheduled event, exactly like
// the sequential warp gate.
func (r *lagRunner) jointWarp() {
	if r.cfg.NoWarp || r.allDone() || !r.canWarpExtra() {
		return
	}
	h := horizonNever
	for k := range r.cores {
		if r.doneCore[k] {
			continue
		}
		c := r.cores[k].Core
		if c.Cycle() != r.G || !c.Quiescent() {
			return
		}
		h = micronet.MinHorizon(h, c.NextEventCycle())
	}
	if !r.mem.Quiet() {
		return
	}
	h = micronet.FoldBackendHorizon(h, r.mem.NextEventCycle())
	if h > r.limit {
		h = r.limit
	}
	if r.cfg.StopAt > 0 && h > r.cfg.StopAt {
		h = r.cfg.StopAt
	}
	if r.cfg.Watchdog {
		for k := range r.cores {
			if r.doneCore[k] {
				continue
			}
			if wl := r.lastCommit[k] + 200_000; h > wl {
				h = wl
			}
		}
	}
	if h <= r.G {
		return
	}
	for k := range r.cores {
		if r.doneCore[k] {
			continue
		}
		c := r.cores[k].Core
		c.Warps++
		c.WarpedCycles += h - c.Cycle()
		c.WarpTo(h)
	}
	r.mem.Warp(h - r.G)
	r.stats.JointWarps++
	r.stats.JointWarpedCycles += h - r.G
	r.G = h
}

// strideAll advances every active core up to its horizon for this round,
// in parallel across host threads when enabled. Strides are independent by
// construction — each worker touches only its own core, its own owner's
// staging counters, and per-core coordinator slots — so worker scheduling
// cannot change simulated results.
func (r *lagRunner) strideAll() {
	active := 0
	for k := range r.cores {
		r.ran[k] = false
		if r.doneCore[k] {
			continue
		}
		active++
		var req strideReq
		switch {
		case r.cfg.HorizonOverride > 0:
			req.horizon = r.G + r.cfg.HorizonOverride
		case r.cores[k].Owner >= 0 && r.mem.OutstandingFor(r.cores[k].Owner) > 0:
			// Outstanding memory work: stride to the earliest cycle any of
			// its responses can dispatch at the core's port. The deadline is
			// an absolute backend cycle; clamp to at least G+1 so the
			// slowest core always makes progress.
			d := r.mem.ResponseDeadlineFor(r.cores[k].Owner)
			if d == horizonNever {
				// Accounting says outstanding but no deadline source knows a
				// bound — fall back to the provably safe lockstep leg.
				d = r.G + 1
			}
			if r.cfg.MaxStride > 0 && d > r.G+r.cfg.MaxStride {
				d = r.G + r.cfg.MaxStride
			}
			if r.cfg.DeadlinePad > 0 {
				d += r.cfg.DeadlinePad
			}
			if d <= r.G {
				d = r.G + 1
			}
			req.horizon = d
			req.endReason = rsDeadline
			if d == r.G+1 {
				req.endReason = rsQuiesce
			}
		default:
			// No outstanding work: nothing in the memory system can affect
			// this core before its own next Submit, and the staged-submission
			// gate ends the stride one cycle after any Submit — so the free
			// run is bounded only by the limit (and MaxStride if set).
			req.horizon = r.limit + 1
			if r.cfg.MaxStride > 0 && req.horizon > r.G+r.cfg.MaxStride {
				req.horizon = r.G + r.cfg.MaxStride
			}
		}
		// A core may step the cycle at limit but never past it, matching
		// the sequential limit checks cycle for cycle.
		if req.horizon > r.limit+1 {
			req.horizon = r.limit + 1
		}
		if r.cfg.StopAt > 0 && req.horizon > r.cfg.StopAt {
			req.horizon = r.cfg.StopAt
		}
		r.horizons[k] = req.horizon
		r.endReasons[k] = req.endReason
		// A core already parked at (or past) its horizon has nothing to do
		// this round; skip the dispatch so zero-length strides don't dilute
		// the stride statistics. Progress is still guaranteed: the slowest
		// active core sits at G and its horizon is always at least G+1.
		if req.horizon <= r.cores[k].Core.Cycle() {
			r.ran[k] = false
			continue
		}
		r.ran[k] = true
	}
	if active == 0 {
		return
	}
	if r.par && active >= 2 {
		for k := 1; k < len(r.cores); k++ {
			if r.ran[k] {
				r.wg.Add(1)
				r.work[k] <- strideReq{r.horizons[k], r.endReasons[k]}
			}
		}
		if r.ran[0] {
			r.stride(0, r.horizons[0], r.endReasons[0])
		}
		r.wg.Wait()
	} else {
		for k := range r.cores {
			if r.ran[k] {
				r.stride(k, r.horizons[k], r.endReasons[k])
			}
		}
	}
	for k := range r.cores {
		if !r.ran[k] {
			continue
		}
		cs := &r.stats.Core[k]
		cs.Strides++
		cs.StrideCycles += r.sres[k].len
		cs.StrideHist.Add(r.sres[k].len)
		switch r.sres[k].reason {
		case rsHorizon:
			cs.HorizonLimited++
		case rsDeadline:
			cs.DeadlineLimited++
		case rsQuiesce:
			cs.QuiesceLimited++
		case rsBackpressure:
			cs.Backpressure++
		}
	}
	r.stats.Rounds++
}

// stride runs one core forward until it finishes, reaches its horizon, or
// stages a submission the backend must drain first. Locally quiet stretches
// are warped per-core — this is where bounded lag beats the global gate:
// the warp no longer waits for the whole machine to quiesce.
func (r *lagRunner) stride(k int, horizon int64, endReason int) {
	c := r.cores[k].Core
	owner := r.cores[k].Owner
	start := c.Cycle()
	res := &r.sres[k]
	*res = strideRes{reason: endReason}
	for {
		t := c.Cycle()
		if c.Done() {
			res.reason = rsDone
			r.doneCore[k] = true
			break
		}
		if t >= horizon {
			break
		}
		if t > r.G && owner >= 0 && r.mem.StagedFor(owner) > 0 {
			res.reason = rsBackpressure
			break
		}
		if !r.cfg.NoWarp && c.Quiescent() {
			wt := horizon
			// Mirror Run's warp clamps so limit and watchdog errors fire
			// at exactly the cycles a sequential run reports.
			if wt > r.limit {
				wt = r.limit
			}
			wt = micronet.MinHorizon(wt, c.NextEventCycle())
			if r.cfg.Watchdog {
				if wl := r.lastCommit[k] + 200_000; wt > wl {
					wt = wl
				}
			}
			if wt > t {
				c.Warps++
				c.WarpedCycles += wt - t
				c.WarpTo(wt)
				continue
			}
		}
		c.Step()
		r.lastStepped[k] = c.Cycle()
		if r.cfg.Watchdog {
			if c.CommittedBlocks != r.lastCount[k] {
				r.lastCount[k] = c.CommittedBlocks
				r.lastCommit[k] = c.Cycle()
			} else if c.Cycle()-r.lastCommit[k] > 200_000 {
				r.errs[k] = fmt.Errorf("proc: no commit in 200000 cycles at cycle %d (%d blocks committed): deadlock", c.Cycle(), c.CommittedBlocks)
				break
			}
		}
	}
	res.len = c.Cycle() - start
}

// catchUp ticks the backend serially up to the slowest active core's clock
// (or through trailing DMA work once every core is done), warping across
// event-free stretches. Each tick drains exactly the submissions a
// sequential run would have drained at that tick, via the drain stamps.
func (r *lagRunner) catchUp() {
	allDone := r.allDone()
	var target int64
	if allDone {
		target = r.limit + 1
	} else {
		target = horizonNever
		for k := range r.cores {
			if !r.doneCore[k] {
				if t := r.cores[k].Core.Cycle(); t < target {
					target = t
				}
			}
		}
		if target > r.limit+1 {
			target = r.limit + 1
		}
	}
	if r.cfg.StopAt > 0 && target > r.cfg.StopAt {
		target = r.cfg.StopAt
	}
	r.catchTarget = target
	maxCore := r.maxCoreCycle()
	for r.G < r.catchTarget {
		if allDone && !r.extraBusy() && r.G >= maxCore {
			break
		}
		if !r.cfg.NoWarp && r.canWarpExtra() && r.mem.Quiet() {
			v := r.catchTarget
			// With every core finished and no chip-level work left, the run
			// ends at the last core's cycle — don't warp past it.
			if allDone && v > maxCore && !r.extraBusy() {
				v = maxCore
			}
			v = micronet.FoldBackendHorizon(v, r.mem.NextEventCycle())
			if v > r.G {
				r.mem.Warp(v - r.G)
				r.stats.MemWarps++
				r.stats.MemWarpedCycles += v - r.G
				r.G = v
				continue
			}
		}
		if r.cfg.PreTick != nil {
			r.cfg.PreTick(r.G)
		}
		r.mem.Tick()
		r.G++
	}
}

// onEffect is the effect gate, invoked by the backend as each response
// reaches its owner's port during catch-up. effect is the first core cycle
// whose step observes the response. A core past that cycle ran ahead on a
// stale premise: its overshoot is provably warp-only under the safe
// horizons (anything else means the L bound itself is broken, which panics
// as a simulator bug), so rolling back is a cheap clock rewind. The rewind
// happens before the response's completion callback runs, so the callback
// schedules against the corrected clock.
func (r *lagRunner) onEffect(owner int, effect int64) {
	k, ok := r.ownerIdx[owner]
	if !ok {
		return
	}
	c := r.cores[k].Core
	t := c.Cycle()
	if t <= effect {
		return
	}
	if r.lastStepped[k] > effect {
		panic(fmt.Sprintf("proc: bounded-lag horizon violated: response effective at cycle %d but core %d already stepped to %d", effect, k, r.lastStepped[k]))
	}
	c.RewindTo(effect)
	cs := &r.stats.Core[k]
	cs.Rollbacks++
	cs.RolledBackCycles += t - effect
	if r.cfg.OnRollback != nil {
		r.cfg.OnRollback(owner, t, effect)
	}
	// The backend must not tick past the rewound clock.
	if effect < r.catchTarget {
		r.catchTarget = effect
	}
}

func (r *lagRunner) startWorkers() {
	r.work = make([]chan strideReq, len(r.cores))
	for k := 1; k < len(r.cores); k++ {
		ch := make(chan strideReq)
		r.work[k] = ch
		go func(k int, ch chan strideReq) {
			for req := range ch {
				r.stride(k, req.horizon, req.endReason)
				r.wg.Done()
			}
		}(k, ch)
	}
}

func (r *lagRunner) stopWorkers() {
	for _, ch := range r.work {
		if ch != nil {
			close(ch)
		}
	}
}

// RunLag is the single-core convenience wrapper: it executes the core to
// completion against a bounded-lag backend with Run's limit and watchdog
// semantics, returning the same Result and the same error strings.
// maxStride (0 = auto) caps stride length below the visibility horizon.
func (c *Core) RunLag(mem LagMem, maxStride int64, stats *LagStats) (Result, error) {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	cfg := LagConfig{
		Limit:           limit,
		Watchdog:        true,
		NoWarp:          c.cfg.NoFastPath || c.cfg.NoWarp,
		MaxStride:       maxStride,
		Stats:           stats,
		OnRollback:      c.onRollback,
		HorizonOverride: c.lagHorizonOverride,
		DeadlinePad:     c.lagDeadlinePad,
		LimitErr: func(l int64) error {
			return fmt.Errorf("proc: cycle limit %d exceeded (%d blocks committed)", l, c.CommittedBlocks)
		},
	}
	if _, err := RunBoundedLag(mem, []LagCore{{Core: c, Owner: 0}}, cfg); err != nil {
		return Result{}, err
	}
	return c.buildResult(), nil
}

// RunLagWithCheckpoint runs like RunLag but captures a checkpoint mid-run:
// the bounded-lag engine pauses at cycle `at` (core and backend clocks
// lockstepped), the pair then steps sequentially until the first block
// commit — the protocol quiesce point SaveState requires — fn fires at that
// boundary, and bounded-lag stepping resumes. fn may re-arm the hook for a
// later cycle by calling SetCheckpointHook from inside the callback (the
// same convention Run follows), which is how rolling-checkpoint consumers
// like the flight recorder capture a whole sequence of frames from one
// run. The composition is observable-identical to an uninterrupted RunLag:
// strides replay the sequential interleave exactly, and the lockstep
// stretch IS the sequential interleave (only the host-side
// Warps/WarpedCycles telemetry differs).
func (c *Core) RunLagWithCheckpoint(mem LagMem, maxStride int64, stats *LagStats, at int64, fn func(cycle int64) error) (Result, error) {
	c.SetCheckpointHook(at, fn)
	return c.RunLagCheckpointed(mem, maxStride, stats)
}

// RunLagCheckpointed drives the park → lockstep-to-commit → capture loop
// until no checkpoint hook is armed (the hook re-arms itself for rolling
// captures), then runs bounded-lag to completion. Callers arm the hook via
// SetCheckpointHook first; with no hook armed it is plain RunLag.
func (c *Core) RunLagCheckpointed(mem LagMem, maxStride int64, stats *LagStats) (Result, error) {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	mkCfg := func(stopAt int64) LagConfig {
		return LagConfig{
			Limit:           limit,
			Watchdog:        true,
			NoWarp:          c.cfg.NoFastPath || c.cfg.NoWarp,
			MaxStride:       maxStride,
			StopAt:          stopAt,
			Stats:           stats,
			OnRollback:      c.onRollback,
			HorizonOverride: c.lagHorizonOverride,
			DeadlinePad:     c.lagDeadlinePad,
			LimitErr: func(l int64) error {
				return fmt.Errorf("proc: cycle limit %d exceeded (%d blocks committed)", l, c.CommittedBlocks)
			},
		}
	}
	cores := []LagCore{{Core: c, Owner: 0}}
	for c.ckptFn != nil {
		at := c.ckptAt
		if _, err := RunBoundedLag(mem, cores, mkCfg(at)); err != nil {
			return Result{}, err
		}
		// Sequential lockstep to the first commit boundary. A finished core
		// checkpoints its terminal state instead.
		last := c.CommittedBlocks
		var guard int64
		for !c.Done() && c.CommittedBlocks == last {
			c.Step()
			mem.Tick()
			if guard++; guard > 400_000 {
				return Result{}, fmt.Errorf("proc: no block commit within %d lockstep cycles after checkpoint arm cycle %d", guard-1, at)
			}
		}
		fn := c.ckptFn
		c.ckptFn = nil
		if err := fn(c.Cycle()); err != nil {
			return Result{}, fmt.Errorf("proc: checkpoint at cycle %d: %w", c.Cycle(), err)
		}
		// A finished core cannot reach another commit boundary: ignore any
		// re-arm and fall through to the final drain.
		if c.Done() {
			c.ckptFn = nil
			break
		}
	}
	if _, err := RunBoundedLag(mem, cores, mkCfg(0)); err != nil {
		return Result{}, err
	}
	return c.buildResult(), nil
}
