package proc

import "testing"

// The delta-cycle event wheel covers schedules up to wheelSize-1 cycles out;
// anything farther spills into the schedOverflow map. These tests drive a
// bare core's clock by hand and watch an IT's refill counter to pin down
// exactly when events fire at both boundaries.

// stepTo advances the core clock one cycle at a time to target, firing
// scheduled events, and returns the cycle at which the IT's refill count
// first changed (or -1).
func stepTo(c *Core, it *itTile, target int64) int64 {
	fired := int64(-1)
	before := it.Refills
	for c.cycle < target {
		c.cycle++
		c.runEvents(c.cycle)
		if fired < 0 && it.Refills != before {
			fired = c.cycle
		}
	}
	return fired
}

func TestScheduleWheelEdge(t *testing.T) {
	c := &Core{}
	it := newIT(c, 0)
	target := c.cycle + wheelSize - 1 // largest delta the ring can hold
	c.scheduleEv(target, schedEvent{kind: evRefill, it: it, seq: 0x1000})
	if c.schedOverflow != nil {
		t.Fatalf("delta %d spilled to the overflow map; wheel should hold it", wheelSize-1)
	}
	if fired := stepTo(c, it, target+4); fired != target {
		t.Fatalf("wheel-edge event fired at cycle %d, want %d", fired, target)
	}
	if it.Refills != 1 {
		t.Fatalf("event fired %d times, want once", it.Refills)
	}
}

func TestScheduleOverflow(t *testing.T) {
	c := &Core{}
	it := newIT(c, 0)
	// Delta wheelSize is the first schedule the ring cannot represent, and a
	// far-out schedule exercises the same path; both must land in the map.
	near := c.cycle + wheelSize
	far := c.cycle + 3*wheelSize + 7
	c.scheduleEv(near, schedEvent{kind: evRefill, it: it, seq: 0x2000})
	c.scheduleEv(far, schedEvent{kind: evRefill, it: it, seq: 0x3000})
	if len(c.schedOverflow) != 2 {
		t.Fatalf("overflow map holds %d cycles, want 2", len(c.schedOverflow))
	}
	if fired := stepTo(c, it, near); fired != near {
		t.Fatalf("overflow event fired at cycle %d, want %d", fired, near)
	}
	if fired := stepTo(c, it, far); fired != far {
		t.Fatalf("far overflow event fired at cycle %d, want %d", fired, far)
	}
	if it.Refills != 2 {
		t.Fatalf("events fired %d times, want 2", it.Refills)
	}
	if len(c.schedOverflow) != 0 {
		t.Fatalf("overflow map not drained: %d cycles left", len(c.schedOverflow))
	}
}

func TestSchedulePastClamps(t *testing.T) {
	c := &Core{cycle: 100}
	it := newIT(c, 0)
	// Scheduling at or before the current cycle must clamp to cycle+1, never
	// fire immediately or be lost.
	c.scheduleEv(c.cycle, schedEvent{kind: evRefill, it: it, seq: 0x4000})
	c.scheduleEv(c.cycle-50, schedEvent{kind: evRefill, it: it, seq: 0x5000})
	if it.Refills != 0 {
		t.Fatal("clamped event fired synchronously at schedule time")
	}
	if fired := stepTo(c, it, 101); fired != 101 {
		t.Fatalf("clamped events fired at cycle %d, want 101", fired)
	}
	if it.Refills != 2 {
		t.Fatalf("events fired %d times, want 2", it.Refills)
	}
}
