package proc

import (
	"fmt"
	"strings"
)

// TileStats aggregates per-tile counters across the core — the kind of
// bookkeeping tsim-proc reports alongside cycle counts.
type TileStats struct {
	// Execution tiles.
	ETIssued      uint64 // instructions issued (including wrong-path)
	ETLocalBypass uint64 // operands delivered over the same-ET bypass
	ETRemote      uint64 // operands sent across the OPN
	ETDeadPred    uint64 // instructions killed by mismatched predicates

	// Register tiles.
	RTReadsForwarded uint64 // reads satisfied from older in-flight writes
	RTReadsFromFile  uint64 // reads satisfied from the architectural file
	RTReadsBuffered  uint64 // reads that waited on a pending write
	RTNullWrites     uint64 // nullified register outputs

	// Data tiles.
	DTLoads      uint64
	DTStores     uint64
	DTNullStores uint64
	DTHits       uint64
	DTMisses     uint64
	DTDepStalls  uint64 // loads held back by the dependence predictor
	DTViolations uint64 // memory-ordering violations detected
	LSQForwards  uint64 // store-to-load forwards

	// Operand network.
	OPNInjected  uint64
	OPNDelivered uint64

	// Instruction supply and control.
	ITRefillFetches uint64 // per-IT chunk fetches
	Fetches         uint64 // blocks dispatched
	Refills         uint64 // distributed I-cache refills
	Flushes         uint64
	Mispredicts     uint64
	Commits         uint64

	// Next-block predictor.
	Predictions  uint64
	ExitMisses   uint64
	TargetMisses uint64
}

// TileStats gathers the counters.
func (c *Core) TileStats() TileStats {
	var s TileStats
	for _, e := range c.ets {
		s.ETIssued += e.Issued
		s.ETLocalBypass += e.LocalBypass
		s.ETRemote += e.Remote
		s.ETDeadPred += e.DeadPred
	}
	for _, r := range c.rts {
		s.RTReadsForwarded += r.ReadsForwarded
		s.RTReadsFromFile += r.ReadsFromFile
		s.RTReadsBuffered += r.ReadsBuffered
		s.RTNullWrites += r.NullWrites
	}
	for _, d := range c.dts {
		s.DTLoads += d.Loads
		s.DTStores += d.Stores
		s.DTNullStores += d.NullStores
		s.DTHits += d.Hits
		s.DTMisses += d.MissesStat
		s.DTDepStalls += d.StallsDep
		s.DTViolations += d.ViolationsStat
		for _, q := range d.lsqs {
			s.LSQForwards += q.Forwards
		}
	}
	for _, m := range c.opns {
		s.OPNInjected += m.Injected()
		s.OPNDelivered += m.Delivered()
	}
	for _, it := range c.its {
		s.ITRefillFetches += it.Refills
	}
	s.Fetches = c.gt.Fetches
	s.Refills = c.gt.Refills
	s.Flushes = c.gt.Flushes
	s.Mispredicts = c.gt.Mispredicts
	s.Commits = c.gt.Commits
	s.Predictions = c.gt.pred.Predictions
	s.ExitMisses = c.gt.pred.ExitMisses
	s.TargetMisses = c.gt.pred.TargetMisses
	return s
}

// RegisterForwardRate returns the fraction of register reads served by
// in-flight write queues rather than the architectural file — the dynamic
// forwarding that "performs a function equivalent to register renaming"
// (paper Section 3.3).
func (s TileStats) RegisterForwardRate() float64 {
	total := s.RTReadsForwarded + s.RTReadsFromFile
	if total == 0 {
		return 0
	}
	return float64(s.RTReadsForwarded) / float64(total)
}

// LocalBypassRate returns the fraction of operand deliveries that used the
// same-ET bypass instead of crossing the OPN.
func (s TileStats) LocalBypassRate() float64 {
	total := s.ETLocalBypass + s.ETRemote
	if total == 0 {
		return 0
	}
	return float64(s.ETLocalBypass) / float64(total)
}

// String renders the statistics in tsim style.
func (s TileStats) String() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("ET: issued %d, local bypass %d (%.0f%%), remote %d, dead-predicate %d",
		s.ETIssued, s.ETLocalBypass, 100*s.LocalBypassRate(), s.ETRemote, s.ETDeadPred)
	w("RT: reads forwarded %d (%.0f%%), from file %d, buffered %d; null writes %d",
		s.RTReadsForwarded, 100*s.RegisterForwardRate(), s.RTReadsFromFile, s.RTReadsBuffered, s.RTNullWrites)
	w("DT: loads %d, stores %d (null %d), hits %d, misses %d, dep-stalls %d, violations %d, lsq forwards %d",
		s.DTLoads, s.DTStores, s.DTNullStores, s.DTHits, s.DTMisses, s.DTDepStalls, s.DTViolations, s.LSQForwards)
	w("OPN: injected %d, delivered %d", s.OPNInjected, s.OPNDelivered)
	w("GT: fetches %d, refills %d, flushes %d, mispredicts %d, commits %d",
		s.Fetches, s.Refills, s.Flushes, s.Mispredicts, s.Commits)
	w("predictor: %d predictions, %d exit misses, %d target misses",
		s.Predictions, s.ExitMisses, s.TargetMisses)
	return b.String()
}
