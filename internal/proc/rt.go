package proc

import (
	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/micronet"
)

// readEntry is one read-queue slot: a header read instruction awaiting
// resolution (paper Section 3.3, Figure 4c).
type readEntry struct {
	valid    bool
	done     bool
	gr       int
	rt0, rt1 isa.Target
	arrEv    *critpath.Event
	// waiting: the read is buffered on a pending write of an older block.
	waiting  bool
	waitSlot int
	waitSeq  uint64
	waitIdx  int
	// unresolved: not yet processed (older headers incomplete).
	unresolved bool
}

// writeEntry is one write-queue slot: an expected block register output.
type writeEntry struct {
	valid bool // expected (from the header)
	gr    int
	have  bool // value arrived from the OPN
	val   Value
	ev    *critpath.Event
}

// rtTile is one of the four register tiles: a 32-register architectural
// bank per SMT thread, plus per-frame read and write queues that perform
// the work of register renaming by forwarding register writes dynamically
// to subsequent blocks' reads (paper Section 3.3).
type rtTile struct {
	core *Core
	id   int
	at   micronet.Coord

	regs [NumThreads][32]uint64

	readQ      [NumSlots][8]readEntry
	writeQ     [NumSlots][8]writeEntry
	slotSeq    [NumSlots]uint64
	slotThread [NumSlots]int
	hdrBeats   [NumSlots]uint8           // header beats received (8 = complete)
	hdrEv      [NumSlots]*critpath.Event // last header beat arrival

	// Block completion tracking (GSN finish-R daisy chain).
	finishOwn    [NumSlots]bool
	finishEast   [NumSlots]bool
	finishOwnEv  [NumSlots]*critpath.Event
	finishEastEv [NumSlots]*critpath.Event
	finishSent   [NumSlots]bool

	// Commit tracking (GCN command + drain + GSN ack daisy chain).
	committing [NumSlots]bool
	drainIdx   [NumSlots]int
	commitEv   [NumSlots]*critpath.Event
	ackOwn     [NumSlots]bool
	ackEast    [NumSlots]bool
	ackOwnEv   [NumSlots]*critpath.Event
	ackEastEv  [NumSlots]*critpath.Event
	ackSent    [NumSlots]bool

	outQ micronet.Queue[*opnMsg]

	// missingWrites counts, per frame, expected writes whose values have not
	// arrived: incremented as header beats announce write-queue entries,
	// decremented on delivery. Zero (with a complete header) is exactly the
	// writesComplete condition, so the per-tick completion scan reduces to a
	// counter compare; the event-chain walk runs once, at the completion
	// instant.
	missingWrites [NumSlots]int

	// unresolved counts read-queue entries in bound frames that are valid,
	// not done and awaiting resolution — the only entries the per-tick
	// resolve scan can act on. Zero lets tick and idleNow skip the 8x8
	// read-queue walk; the counter is adjusted at every transition
	// (header arrival, resolution, nullified-write re-open, flush re-open)
	// and purged when a frame is unbound.
	unresolved int

	// active registers pending work with the core's stepping fast path: set
	// by every wake (dispatch binding, header/write delivery, commit command,
	// flush), cleared by tick when no slot has resolvable or sendable work.
	// Waiting reads and incomplete write sets only change on deliveries, so
	// an idle tile's tick would be a no-op.
	active bool

	// Stats.
	ReadsForwarded, ReadsFromFile, ReadsBuffered, NullWrites uint64
}

func newRT(core *Core, id int) *rtTile {
	return &rtTile{core: core, id: id, at: rtCoord(id)}
}

// slotUnresolved counts slot s's read entries awaiting resolution.
func (r *rtTile) slotUnresolved(s int) int {
	n := 0
	for i := range r.readQ[s] {
		e := &r.readQ[s][i]
		if e.valid && !e.done && e.unresolved {
			n++
		}
	}
	return n
}

func (r *rtTile) bindSlot(slot int, seq uint64, thread int) {
	r.active = true
	if r.slotSeq[slot] != 0 {
		r.unresolved -= r.slotUnresolved(slot)
	}
	r.readQ[slot] = [8]readEntry{}
	r.writeQ[slot] = [8]writeEntry{}
	r.slotSeq[slot] = seq
	r.slotThread[slot] = thread
	r.missingWrites[slot] = 0
	r.hdrBeats[slot] = 0
	r.hdrEv[slot] = nil
	r.finishOwn[slot] = false
	r.finishEast[slot] = false
	r.finishOwnEv[slot] = nil
	r.finishEastEv[slot] = nil
	r.finishSent[slot] = false
	r.committing[slot] = false
	r.drainIdx[slot] = 0
	r.commitEv[slot] = nil
	r.ackOwn[slot] = false
	r.ackEast[slot] = false
	r.ackOwnEv[slot] = nil
	r.ackEastEv[slot] = nil
	r.ackSent[slot] = false
}

// deliverHeaderBeat installs up to one read and one write entry (beat b
// carries queue index b of each) and marks beat progress. A block with no
// valid entry at an index still counts the beat.
func (r *rtTile) deliverHeaderBeat(slot int, seq uint64, beat int, rd isa.ReadInst, wr isa.WriteInst, ev *critpath.Event) {
	r.active = true
	if r.slotSeq[slot] != seq {
		return
	}
	if rd.Valid {
		r.readQ[slot][beat] = readEntry{
			valid: true, gr: rd.GR, rt0: rd.RT0, rt1: rd.RT1,
			arrEv: ev, unresolved: true,
		}
		r.unresolved++
	}
	if wr.Valid {
		r.writeQ[slot][beat] = writeEntry{valid: true, gr: wr.GR}
		r.missingWrites[slot]++
	}
	r.hdrBeats[slot]++
	r.hdrEv[slot] = critpath.Latest(r.hdrEv[slot], ev)
}

// olderHeadersComplete reports whether every older in-flight block of the
// same thread has delivered its full header to this RT — the condition for
// a read to safely search the write queues.
func (r *rtTile) olderHeadersComplete(seq uint64, thread int) bool {
	for s := 0; s < NumSlots; s++ {
		if r.slotSeq[s] == 0 || r.slotSeq[s] >= seq || r.slotThread[s] != thread {
			continue
		}
		if r.hdrBeats[s] < 8 {
			return false
		}
	}
	return true
}

// resolveRead implements the distributed register-read protocol of Section
// 4.2: search the write queues of all older in-flight blocks for a matching
// write; forward its value if present, buffer the read if pending, or read
// the architectural file.
func (r *rtTile) resolveRead(now int64, slot int, e *readEntry) {
	seq := r.slotSeq[slot]
	thread := r.slotThread[slot]
	if !r.olderHeadersComplete(seq, thread) {
		return // retry next cycle
	}
	e.unresolved = false
	r.unresolved--
	// Youngest older matching write wins. Writes that arrived nullified do
	// not modify the register, so the search continues past them.
	var bestSlot, bestIdx int
	var bestSeq uint64
	found := false
	for s := 0; s < NumSlots; s++ {
		sSeq := r.slotSeq[s]
		if sSeq == 0 || sSeq >= seq || r.slotThread[s] != thread {
			continue
		}
		for i := range r.writeQ[s] {
			w := &r.writeQ[s][i]
			if !w.valid || w.gr != e.gr {
				continue
			}
			if w.have && w.val.Null {
				continue // nullified: register unchanged by that block
			}
			if !found || sSeq > bestSeq {
				bestSlot, bestIdx, bestSeq, found = s, i, sSeq, true
			}
		}
	}
	if !found {
		r.ReadsFromFile++
		v := Value{Bits: r.regs[thread][e.gr/4]}
		ev := r.core.newEvent(now, e.arrEv, critpath.Split{}, critpath.CatIFetch)
		r.sendReadValue(slot, seq, thread, e, v, ev)
		e.done = true
		return
	}
	w := &r.writeQ[bestSlot][bestIdx]
	if w.have {
		r.ReadsForwarded++
		ev := r.core.newEvent(now, critpath.Latest(e.arrEv, w.ev), critpath.Split{}, critpath.CatOther)
		r.sendReadValue(slot, seq, thread, e, w.val, ev)
		e.done = true
		return
	}
	// Buffer: woken by a tag broadcast when the write's value arrives
	// (paper Section 4.2).
	r.ReadsBuffered++
	e.waiting = true
	e.waitSlot = bestSlot
	e.waitSeq = bestSeq
	e.waitIdx = bestIdx
}

func (r *rtTile) sendReadValue(slot int, seq uint64, thread int, e *readEntry, v Value, ev *critpath.Event) {
	for _, tgt := range []isa.Target{e.rt0, e.rt1} {
		if !tgt.Valid() {
			continue
		}
		var dst micronet.Coord
		if tgt.IsWrite() {
			dst = rtCoord(isa.RTOf(tgt.Index))
		} else {
			dst = etCoord(isa.ETOf(tgt.Index))
		}
		m := r.core.newOPNMsg()
		*m = opnMsg{
			dst: dst, kind: opnOperand, slot: slot, seq: seq, thread: thread,
			target: tgt, val: v, ev: ev,
		}
		r.outQ.Push(m)
	}
}

// deliverWrite receives a block output value for write-queue entry j.
func (r *rtTile) deliverWrite(now int64, slot int, seq uint64, idx int, v Value, ev *critpath.Event) {
	r.active = true
	if r.slotSeq[slot] != seq {
		return
	}
	w := &r.writeQ[slot][idx]
	if !w.valid || w.have {
		return // unexpected or duplicate (complementary-path nullification)
	}
	w.have = true
	w.val = v
	w.ev = ev
	r.missingWrites[slot]--
	if v.Null {
		r.NullWrites++
	}
	// Wake buffered reads waiting on this write.
	for s := 0; s < NumSlots; s++ {
		for i := range r.readQ[s] {
			e := &r.readQ[s][i]
			if !e.valid || e.done || !e.waiting {
				continue
			}
			if e.waitSlot != slot || e.waitSeq != seq || e.waitIdx != idx {
				continue
			}
			if v.Null {
				// The write turned out to be nullified: the register is
				// unchanged by that block; re-resolve against older state.
				e.waiting = false
				e.unresolved = true
				r.unresolved++
				continue
			}
			readerSeq := r.slotSeq[s]
			readerThread := r.slotThread[s]
			fwdEv := r.core.newEvent(now, critpath.Latest(e.arrEv, ev), critpath.Split{}, critpath.CatOther)
			r.sendReadValue(s, readerSeq, readerThread, e, v, fwdEv)
			e.waiting = false
			e.done = true
		}
	}
}

// writesComplete reports whether every expected write for the frame has
// arrived.
func (r *rtTile) writesComplete(slot int) (bool, *critpath.Event) {
	var last *critpath.Event
	for i := range r.writeQ[slot] {
		w := &r.writeQ[slot][i]
		if !w.valid {
			continue
		}
		if !w.have {
			return false, nil
		}
		last = critpath.Latest(last, w.ev)
	}
	return true, last
}

// tick runs one RT cycle.
func (r *rtTile) tick(now int64) {
	// Resolve newly arrived or re-opened reads.
	if r.unresolved > 0 {
		for s := 0; s < NumSlots; s++ {
			if r.slotSeq[s] == 0 || r.slotUnresolved(s) == 0 {
				continue
			}
			for i := range r.readQ[s] {
				e := &r.readQ[s][i]
				if e.valid && !e.done && e.unresolved {
					r.resolveRead(now, s, e)
				}
			}
		}
	}
	// Block-completion detection: all header beats in, all writes arrived.
	for s := 0; s < NumSlots; s++ {
		if r.slotSeq[s] == 0 || r.finishSent[s] || r.hdrBeats[s] < 8 {
			continue
		}
		if !r.finishOwn[s] && r.missingWrites[s] == 0 {
			_, ev := r.writesComplete(s)
			r.finishOwn[s] = true
			r.finishOwnEv[s] = r.core.newEvent(now, critpath.Latest(ev, r.hdrEv[s]), critpath.Split{}, critpath.CatComplete)
		}
		// Daisy chain: forward when own writes are done and the east
		// neighbor (RT id+1) has reported; RT3 is the chain tail.
		if r.finishOwn[s] && (r.id == isa.NumRTs-1 || r.finishEast[s]) {
			if r.core.gsnRT.CanSend(r.id + 1) {
				ev := r.core.newEvent(now, critpath.Latest(r.finishOwnEv[s], r.finishEastEv[s]), critpath.Split{}, critpath.CatComplete)
				r.core.gsnRT.Send(r.id+1, gsnMsg{kind: gsnFinishR, slot: s, seq: r.slotSeq[s], ev: ev})
				r.finishSent[s] = true
			}
		}
	}
	// Commit: drain one register per cycle (one write port per bank).
	drainBudget := rtDrainPerCycle
	for s := 0; s < NumSlots; s++ {
		if !r.committing[s] || r.ackSent[s] {
			continue
		}
		if !r.ackOwn[s] {
			if r.remainingDrains(s) > 0 {
				if drainBudget == 0 {
					continue
				}
				drainBudget--
			}
			if r.drainCommit(s) {
				r.ackOwn[s] = true
				r.ackOwnEv[s] = r.core.newEvent(now, r.commitEv[s], critpath.Split{}, critpath.CatCommit)
			}
		}
		if r.ackOwn[s] && (r.id == isa.NumRTs-1 || r.ackEast[s]) {
			if r.core.gsnRT.CanSend(r.id + 1) {
				ev := r.core.newEvent(now, critpath.Latest(r.ackOwnEv[s], r.ackEastEv[s]), critpath.Split{}, critpath.CatCommit)
				r.core.gsnRT.Send(r.id+1, gsnMsg{kind: gsnAckR, slot: s, seq: r.slotSeq[s], ev: ev})
				r.ackSent[s] = true
				// Frame released at this tile.
				r.unresolved -= r.slotUnresolved(s)
				r.slotSeq[s] = 0
			}
		}
	}
	// Forward GSN messages from the east neighbor.
	r.pumpGSN(now)
	r.drainOutQ()
	r.active = !r.idleNow()
}

// idleNow reports whether another tick with no intervening delivery would be
// a no-op: nothing queued for the OPN, no unresolved reads to retry, no
// pending finish forward and no in-progress commit drain. Buffered reads and
// incomplete header/write sets advance only on deliveries, which re-set
// active.
func (r *rtTile) idleNow() bool {
	if !r.outQ.Empty() || r.unresolved > 0 {
		return false
	}
	for s := 0; s < NumSlots; s++ {
		if r.slotSeq[s] == 0 {
			continue
		}
		if r.committing[s] && !r.ackSent[s] {
			return false
		}
		if r.finishOwn[s] && !r.finishSent[s] {
			return false
		}
	}
	return true
}

// drainCommit writes one pending register per call; returns true when the
// frame is fully drained.
func (r *rtTile) drainCommit(s int) bool {
	thread := r.slotThread[s]
	for ; r.drainIdx[s] < 8; r.drainIdx[s]++ {
		w := &r.writeQ[s][r.drainIdx[s]]
		if !w.valid || w.val.Null {
			continue
		}
		r.regs[thread][w.gr/4] = w.val.Bits
		r.drainIdx[s]++
		return r.remainingDrains(s) == 0
	}
	return true
}

func (r *rtTile) remainingDrains(s int) int {
	n := 0
	for i := r.drainIdx[s]; i < 8; i++ {
		w := &r.writeQ[s][i]
		if w.valid && !w.val.Null {
			n++
		}
	}
	return n
}

// pumpGSN consumes chain messages arriving from the east neighbor.
func (r *rtTile) pumpGSN(now int64) {
	node := r.id + 1
	if node >= r.core.gsnRT.N-1 {
		return // RT3 has no east neighbor on the chain
	}
	msg, ok := r.core.gsnRT.Recv(node)
	if !ok {
		return
	}
	switch msg.kind {
	case gsnFinishR:
		if r.slotSeq[msg.slot] == msg.seq {
			r.finishEast[msg.slot] = true
			r.finishEastEv[msg.slot] = r.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatComplete)
		}
	case gsnAckR:
		if r.slotSeq[msg.slot] == msg.seq {
			r.ackEast[msg.slot] = true
			r.ackEastEv[msg.slot] = r.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatCommit)
		}
	}
	r.core.gsnRT.Pop(node)
}

// onCommitCommand begins architectural commit for a frame.
func (r *rtTile) onCommitCommand(now int64, slot int, seq uint64, ev *critpath.Event) {
	r.active = true
	if r.slotSeq[slot] != seq {
		return
	}
	r.committing[slot] = true
	r.drainIdx[slot] = 0
	r.commitEv[slot] = r.core.newEvent(now, ev, critpath.Split{}, critpath.CatCommit)
}

// flush clears a frame.
func (r *rtTile) flush(slot int, seq uint64) {
	if r.slotSeq[slot] != seq {
		return
	}
	r.active = true
	r.unresolved -= r.slotUnresolved(slot)
	r.slotSeq[slot] = 0
	r.outQ.Filter(func(m *opnMsg) bool {
		return !(m.slot == slot && m.seq == seq)
	})
	// Buffered reads of younger blocks waiting on this frame's writes must
	// re-resolve.
	for s := 0; s < NumSlots; s++ {
		if r.slotSeq[s] == 0 {
			continue
		}
		for i := range r.readQ[s] {
			e := &r.readQ[s][i]
			if e.valid && !e.done && e.waiting && e.waitSeq == seq {
				e.waiting = false
				e.unresolved = true
				r.unresolved++
			}
		}
	}
}

func (r *rtTile) drainOutQ() {
	for !r.outQ.Empty() {
		msg := r.outQ.Front()
		if r.slotSeq[msg.slot] != msg.seq {
			r.outQ.Pop()
			continue
		}
		if !r.core.injectOPN(r.at, msg) {
			return
		}
		r.outQ.Pop()
	}
}
