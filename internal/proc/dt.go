package proc

import (
	"trips/internal/cache"
	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/lsq"
	"trips/internal/micronet"
)

// UncachedBit marks a virtual address as uncacheable: DT accesses bypass
// the L1 bank and travel the OCN at their natural size, the mechanism the
// prototype uses for I/O and cross-processor communication (paper
// Section 3: "other request sizes are supported for operations like loads
// and stores to uncacheable pages").
const UncachedBit = uint64(1) << 40

// Uncached returns addr tagged uncacheable.
func Uncached(addr uint64) uint64 { return addr | UncachedBit }

func isUncached(addr uint64) bool { return addr&UncachedBit != 0 }

func physical(addr uint64) uint64 { return addr &^ UncachedBit }

// pendingLoad is a load awaiting cache data or prior-store completion.
type pendingLoad struct {
	msg     *opnMsg
	ev      *critpath.Event // arrival event at this DT
	readyAt int64           // cache hit completion time (0 = not yet accessed)
	waiting bool            // stalled on prior stores (dependence predictor)
}

// dtTile is one of the four data tiles: a 2-way 8KB L1 data-cache bank, a
// replicated 256-entry load/store queue, a dependence predictor, an MSHR
// for up to 16 requests over four outstanding lines, and a DSN client for
// distributed store-completion tracking (paper Section 3.5, Figure 4e).
type dtTile struct {
	core *Core
	id   int
	at   micronet.Coord

	bank *cache.Bank
	mshr *cache.MSHR
	lsqs [NumThreads]*lsq.LSQ
	dep  *lsq.DepPredictor
	port MemPort

	slotSeq    [NumSlots]uint64
	slotThread [NumSlots]int
	storeMask  [NumSlots]uint32
	storeSeen  [NumSlots]uint32
	maskKnown  [NumSlots]bool
	bindEv     [NumSlots]*critpath.Event // dispatch-time dependency for 0-store blocks

	// Inbound memory operations: the LSQ accepts one load or store per
	// cycle (paper Section 3.5).
	inQ micronet.Queue[*opnMsg]

	stalled       []*pendingLoad               // loads held back by the dependence predictor
	uncachedQ     micronet.Queue[*pendingLoad] // uncacheable loads awaiting a port slot
	hitQ          []*pendingLoad               // cache accesses completing after dtCacheCycles
	conflictLoads []*pendingLoad               // loads buffered in the LSQ behind partial overlaps
	cacheRetry    []*pendingLoad               // loads refused by a full MSHR
	mshrFreed     bool                         // a line fill since the last retry pass
	pendingFetch  micronet.Queue[uint64]       // line fetches awaiting a free port
	gsnOut        micronet.Queue[gsnMsg]       // status messages awaiting a free GSN link

	// Commit drains: stores flowing to the cache bank, one per cycle.
	drains     map[uint64][]*lsq.Entry // seq -> remaining stores
	drainOrder micronet.Queue[uint64]
	drainEvs   map[uint64]*critpath.Event
	uncachedSt map[*lsq.Entry]int // uncached store commit state (1 in flight, 2 done)
	// wb is the one-entry back-side coalescing write buffer (paper 3.5):
	// a committed store that misses the bank retires into the buffer while
	// its line fetch proceeds, keeping the commit ack off the miss path.
	wb struct {
		valid   bool
		fetched bool // line fetch issued (retried if the MSHR was full)
		st      *lsq.Entry
	}

	// Completion/ack daisy state (mirrors the RT chain roles).
	finishSent [NumSlots]bool
	ackOwn     [NumSlots]bool
	ackEast    [NumSlots]bool
	ackOwnEv   [NumSlots]*critpath.Event
	ackEastEv  [NumSlots]*critpath.Event
	ackSent    [NumSlots]bool
	committing [NumSlots]bool
	commitEv   [NumSlots]*critpath.Event

	outQ micronet.Queue[*opnMsg]
	dsnQ micronet.Queue[dsnMsg]

	// active registers pending work with the core's stepping fast path: set
	// by every wake (OPN arrival, dispatch binding, store-mask delivery,
	// commit command, flush, line-fill and uncached completions), cleared by
	// tick when every queue is empty and no slot has in-progress protocol
	// work.
	active bool
	// wakeAt is the event-driven doze overlay: when nonzero, the only
	// remaining work is hit-queue accesses whose bank latency elapses at
	// wakeAt, so Step may skip this tile until then (deliveries clear it via
	// wake()). Never serialized: checkpoint restore leaves it zero and the
	// first tick recomputes it.
	wakeAt int64

	// fetchFree pools line-fetch requests so the hot fill path neither
	// allocates a MemRequest nor a Done closure per miss.
	fetchFree []*dtFetch

	// Stats.
	Loads, Stores, NullStores, Hits, MissesStat, StallsDep, ViolationsStat uint64
}

func newDT(core *Core, id int) *dtTile {
	d := &dtTile{
		core: core, id: id, at: dtCoord(id),
		bank:       cache.NewBank(8<<10, 2, 64),
		mshr:       cache.NewMSHR(4, 16),
		dep:        lsq.NewDepPredictor(),
		drains:     make(map[uint64][]*lsq.Entry),
		drainEvs:   make(map[uint64]*critpath.Event),
		uncachedSt: make(map[*lsq.Entry]int),
	}
	for t := range d.lsqs {
		d.lsqs[t] = lsq.New()
	}
	return d
}

// dtFetch is a pooled line fetch: the MemRequest and its Done closure are
// built once and rebound to new lines on reuse, so steady-state misses do
// not allocate.
type dtFetch struct {
	d    *dtTile
	line uint64
	req  MemRequest
}

func (d *dtTile) newFetch(line uint64) *dtFetch {
	var f *dtFetch
	if n := len(d.fetchFree); n > 0 {
		f = d.fetchFree[n-1]
		d.fetchFree = d.fetchFree[:n-1]
	} else {
		f = &dtFetch{d: d}
		f.req.Origin = Origin{Kind: OriginDTFetch, Tile: d.id}
		f.req.Done = func(data []byte) {
			f.d.wake()
			f.d.fillLine(f.line, data)
			f.d.fetchFree = append(f.d.fetchFree, f)
		}
	}
	f.line = line
	f.req.Addr = line
	f.req.N = d.bank.LineBytes
	return f
}

func (d *dtTile) bindSlot(slot int, seq uint64, thread int, mask uint32) {
	d.wake()
	d.slotSeq[slot] = seq
	d.slotThread[slot] = thread
	d.storeMask[slot] = mask
	d.storeSeen[slot] = 0
	d.maskKnown[slot] = true
	d.finishSent[slot] = false
	d.ackOwn[slot] = false
	d.ackEast[slot] = false
	d.ackOwnEv[slot] = nil
	d.ackEastEv[slot] = nil
	d.ackSent[slot] = false
	d.committing[slot] = false
	d.commitEv[slot] = nil
}

// enqueue accepts an arriving OPN memory operation.
func (d *dtTile) enqueue(msg *opnMsg) {
	d.wake()
	d.inQ.Push(msg)
}

// wake registers work with the stepping fast path and cancels any doze.
func (d *dtTile) wake() {
	d.active = true
	d.wakeAt = 0
}

func (d *dtTile) tick(now int64) {
	d.drainWriteBuffer()
	d.pumpDSN(now)
	d.completeHits(now)
	d.pumpCacheRetry(now)
	d.retryStalled(now)
	d.acceptOne(now)
	d.replayConflicts(now)
	d.pumpDrain(now)
	// Forward in-flight chain traffic and drain pending violation reports
	// BEFORE signalling store completion: a violation for a block must
	// reach the GT ahead of the finish-S that would let it commit.
	d.pumpGSN(now)
	d.drainGSNOut()
	d.checkFinish(now)
	d.pumpUncached(now)
	d.pumpFetch()
	d.drainDSNQ()
	d.drainOutQ()
	d.active = !d.idleNow()
	d.wakeAt = 0
	if d.core.eventDriven && d.active {
		d.wakeAt = d.dozeHorizon(now)
	}
}

// dozeHorizon reports the cycle at which this tile next has local work, or 0
// when it must tick every cycle. A nonzero horizon is sound only when the
// hit queue is the SOLE busy condition: every other tick sub-pass is then a
// pure no-op until either the horizon arrives or a delivery re-wakes the
// tile through wake().
func (d *dtTile) dozeHorizon(now int64) int64 {
	if len(d.hitQ) == 0 {
		return 0 // busy for some other reason; scan every cycle
	}
	if d.wb.valid || len(d.uncachedSt) > 0 {
		return 0
	}
	// A line fill this tick may have armed a retry pass for the next one.
	if len(d.cacheRetry) > 0 && d.mshrFreed {
		return 0
	}
	if !d.inQ.Empty() || len(d.stalled) > 0 || !d.uncachedQ.Empty() ||
		len(d.conflictLoads) > 0 ||
		!d.pendingFetch.Empty() || !d.gsnOut.Empty() || d.drainOrder.Len() > 0 ||
		!d.dsnQ.Empty() || !d.outQ.Empty() {
		return 0
	}
	for s := 0; s < NumSlots; s++ {
		if d.slotSeq[s] == 0 {
			continue
		}
		if d.committing[s] && !d.ackSent[s] {
			return 0
		}
		if d.id == 0 && !d.finishSent[s] && d.maskKnown[s] &&
			d.storeSeen[s]&d.storeMask[s] == d.storeMask[s] {
			return 0
		}
	}
	w := horizonNever
	for _, pl := range d.hitQ {
		if pl.readyAt < w {
			w = pl.readyAt
		}
	}
	if w <= now || w == horizonNever {
		return 0
	}
	return w
}

// idleNow reports whether another tick with no intervening wake would be a
// no-op: every queue empty, no write-buffered or uncached store in flight,
// no commit awaiting its ack send, and (at DT0) no completed store set
// awaiting its finish-S send. Everything else a tick inspects changes only
// on deliveries, which re-set active.
func (d *dtTile) idleNow() bool {
	if d.wb.valid || len(d.uncachedSt) > 0 {
		return false
	}
	// cacheRetry loads are NOT busy-work: a retry pass is gated on the next
	// line fill, whose Done closure re-sets active, and the fill's fetch is
	// an outstanding port request covered by the memory backend's horizon.
	if !d.inQ.Empty() || len(d.stalled) > 0 || !d.uncachedQ.Empty() ||
		len(d.hitQ) > 0 || len(d.conflictLoads) > 0 ||
		!d.pendingFetch.Empty() || !d.gsnOut.Empty() || d.drainOrder.Len() > 0 ||
		!d.dsnQ.Empty() || !d.outQ.Empty() {
		return false
	}
	for s := 0; s < NumSlots; s++ {
		if d.slotSeq[s] == 0 {
			continue
		}
		if d.committing[s] && !d.ackSent[s] {
			return false
		}
		if d.id == 0 && !d.finishSent[s] && d.maskKnown[s] &&
			d.storeSeen[s]&d.storeMask[s] == d.storeMask[s] {
			return false // finish-S ready but not yet sent
		}
	}
	return true
}

// pumpCacheRetry retries loads previously refused by a full MSHR. A refusal
// can only stop recurring after a line fill (which frees MSHR capacity or
// turns the access into a bank hit), so retry passes are gated on fills
// instead of burning a full re-access per waiting load every cycle.
func (d *dtTile) pumpCacheRetry(now int64) {
	if len(d.cacheRetry) == 0 || !d.mshrFreed {
		return
	}
	d.mshrFreed = false
	retry := d.cacheRetry
	d.cacheRetry = nil
	for _, pl := range retry {
		if d.slotSeq[pl.msg.slot] != pl.msg.seq {
			continue
		}
		d.accessCache(now, pl)
	}
}

// pumpUncached submits uncacheable loads directly to the OCN port.
// Uncacheable traffic is rare (I/O and cross-core pages), so its per-request
// closures stay unpooled.
func (d *dtTile) pumpUncached(now int64) {
	for !d.uncachedQ.Empty() {
		pl := d.uncachedQ.Front()
		msg := pl.msg
		if d.slotSeq[msg.slot] != msg.seq {
			d.uncachedQ.Pop()
			continue
		}
		width := isa.MemWidth(msg.memOp)
		req := &MemRequest{Addr: physical(msg.addr), N: width,
			Origin: Origin{Kind: OriginDTUncachedLoad, Tile: d.id, msg: msg},
			Done: func(data []byte) {
				d.wake()
				if d.slotSeq[msg.slot] != msg.seq {
					return
				}
				var v uint64
				for i := len(data) - 1; i >= 0; i-- {
					v = v<<8 | uint64(data[i])
				}
				ev := d.core.newEvent(d.core.cycle, pl.ev, critpath.Split{}, critpath.CatOther)
				d.replyLoad(d.core.cycle+1, msg, Value{Bits: extendValue(v, msg.memOp)}, ev)
			}}
		if !d.port.Submit(req) {
			return
		}
		d.uncachedQ.Pop()
	}
	_ = now
}

// pumpFetch submits queued line fetches to the private memory port.
func (d *dtTile) pumpFetch() {
	for !d.pendingFetch.Empty() {
		f := d.newFetch(d.pendingFetch.Front())
		if !d.port.Submit(&f.req) {
			d.fetchFree = append(d.fetchFree, f)
			return
		}
		d.pendingFetch.Pop()
	}
}

func (d *dtTile) drainGSNOut() {
	for !d.gsnOut.Empty() {
		if !d.core.gsnDT.CanSend(d.id + 1) {
			return
		}
		d.core.gsnDT.Send(d.id+1, d.gsnOut.Front())
		d.gsnOut.Pop()
	}
}

// acceptOne processes at most one load or store from the OPN per cycle.
func (d *dtTile) acceptOne(now int64) {
	for !d.inQ.Empty() {
		msg := d.inQ.Front()
		if d.slotSeq[msg.slot] != msg.seq {
			d.inQ.Pop()
			continue // stale (flushed)
		}
		d.inQ.Pop()
		arriveEv := d.core.newEvent(now, msg.ev, critpath.Split{
			critpath.CatOPNHop:        int64(msg.hops),
			critpath.CatOPNContention: int64(msg.waits),
		}, critpath.CatOPNHop)
		if msg.kind == opnLoadReq {
			d.handleLoad(now, msg, arriveEv)
		} else {
			d.handleStore(now, msg, arriveEv)
		}
		return
	}
}

func (d *dtTile) handleLoad(now int64, msg *opnMsg, ev *critpath.Event) {
	d.Loads++
	pl := &pendingLoad{msg: msg, ev: ev}
	// A dependence prediction occurs in parallel with the cache access when
	// the load arrives at the DT (paper Section 3.5). A load whose
	// predictor entry is set stalls until all prior stores have completed.
	if !d.priorStoresSeen(msg) && !d.dep.Aggressive(msg.addr) {
		d.StallsDep++
		pl.waiting = true
		d.stalled = append(d.stalled, pl)
		return
	}
	d.issueLoad(now, pl)
}

// issueLoad resolves a load against the LSQ, the commit drain queue, and
// the cache bank.
func (d *dtTile) issueLoad(now int64, pl *pendingLoad) {
	msg := pl.msg
	key := lsq.OrderKey(msg.seq, msg.lsid)
	width := isa.MemWidth(msg.memOp)
	res, data, err := d.lsqs[msg.thread].InsertLoad(key, msg.seq, msg.addr, width)
	if err != nil {
		// LSQ full: retry next cycle by re-queueing at the head.
		d.inQ.PushFront(msg)
		return
	}
	switch res {
	case lsq.LoadForwarded:
		v := extendValue(data, msg.memOp)
		d.replyLoad(now+1, msg, Value{Bits: v}, pl.ev)
	case lsq.LoadConflict:
		// Stays buffered in the LSQ; replayed by replayConflicts once the
		// overlapping store drains.
		d.conflictLoads = append(d.conflictLoads, pl)
	case lsq.LoadFromCache:
		d.loadFromCachePath(now, pl)
	}
}

// loadFromCachePath reads a load's value from the committed-but-undrained
// store queue (architecturally visible) or the cache bank.
func (d *dtTile) loadFromCachePath(now int64, pl *pendingLoad) {
	msg := pl.msg
	width := isa.MemWidth(msg.memOp)
	if v, ok := d.drainQueueValue(msg.addr, width); ok {
		d.replyLoad(now+1, msg, Value{Bits: extendValue(v, msg.memOp)}, pl.ev)
		return
	}
	if v, ok := d.wbValue(msg.addr, width); ok {
		d.replyLoad(now+1, msg, Value{Bits: extendValue(v, msg.memOp)}, pl.ev)
		return
	}
	d.accessCache(now, pl)
}

// accessCache performs the bank access: hits complete after dtCacheCycles;
// misses allocate an MSHR and fetch the line through the private OCN port.
// Uncacheable accesses bypass the bank entirely.
func (d *dtTile) accessCache(now int64, pl *pendingLoad) {
	msg := pl.msg
	width := isa.MemWidth(msg.memOp)
	if isUncached(msg.addr) {
		d.uncachedQ.Push(pl)
		return
	}
	if raw, ok := d.bank.Read(msg.addr, width); ok {
		d.Hits++
		var v uint64
		for i := width - 1; i >= 0; i-- {
			v = v<<8 | uint64(raw[i])
		}
		pl.readyAt = now + dtCacheCycles
		pl.msg.data = Value{Bits: extendValue(v, msg.memOp)}
		d.hitQ = append(d.hitQ, pl)
		return
	}
	d.MissesStat++
	line := d.bank.LineAddr(msg.addr)
	primary, ok := d.mshr.Allocate(line, pl)
	if !ok {
		// MSHR full: the load is already in the LSQ, so retry only the
		// cache access.
		d.cacheRetry = append(d.cacheRetry, pl)
		return
	}
	if primary {
		d.pendingFetch.Push(line)
	}
}

// fillLine installs a refilled line and services its waiting loads.
func (d *dtTile) fillLine(line uint64, data []byte) {
	d.mshrFreed = true
	if v := d.bank.Fill(line, data); v.Valid {
		d.writeback(v)
	}
	now := d.core.cycle
	for _, w := range d.mshr.Complete(line) {
		pl, _ := w.(*pendingLoad)
		if pl == nil {
			continue // write-allocate fetch with no waiting load
		}
		msg := pl.msg
		if d.slotSeq[msg.slot] != msg.seq {
			continue // flushed while missing
		}
		width := isa.MemWidth(msg.memOp)
		raw, ok := d.bank.Read(msg.addr, width)
		if !ok {
			continue // line raced out; extremely unlikely with 2 ways
		}
		var v uint64
		for i := width - 1; i >= 0; i-- {
			v = v<<8 | uint64(raw[i])
		}
		missEv := d.core.newEvent(now, pl.ev, critpath.Split{}, critpath.CatOther)
		d.replyLoad(now+1, msg, Value{Bits: extendValue(v, msg.memOp)}, missEv)
	}
}

func (d *dtTile) writeback(v cache.Victim) {
	d.port.Submit(&MemRequest{Addr: v.Addr, Data: v.Data, IsWrite: true})
}

// completeHits sends replies for cache accesses whose bank latency elapsed.
func (d *dtTile) completeHits(now int64) {
	kept := d.hitQ[:0]
	for _, pl := range d.hitQ {
		if pl.readyAt > now {
			kept = append(kept, pl)
			continue
		}
		msg := pl.msg
		if d.slotSeq[msg.slot] != msg.seq {
			continue
		}
		ev := d.core.newEvent(now, pl.ev, critpath.Split{}, critpath.CatOther)
		d.replyLoad(now, msg, msg.data, ev)
	}
	d.hitQ = kept
}

// replyLoad routes the loaded value to the load's target instructions. The
// request message is fully consumed here, so it returns to the pool.
func (d *dtTile) replyLoad(_ int64, msg *opnMsg, v Value, ev *critpath.Event) {
	for _, tgt := range []isa.Target{msg.ldT0, msg.ldT1} {
		if !tgt.Valid() {
			continue
		}
		var dst micronet.Coord
		if tgt.IsWrite() {
			dst = rtCoord(isa.RTOf(tgt.Index))
		} else {
			dst = etCoord(isa.ETOf(tgt.Index))
		}
		m := d.core.newOPNMsg()
		*m = opnMsg{
			dst: dst, kind: opnOperand, slot: msg.slot, seq: msg.seq,
			thread: msg.thread, target: tgt, val: v, ev: ev,
		}
		d.outQ.Push(m)
	}
	d.core.freeOPNMsg(msg)
}

func (d *dtTile) handleStore(now int64, msg *opnMsg, ev *critpath.Event) {
	d.Stores++
	if msg.data.Null {
		d.NullStores++
	}
	key := lsq.OrderKey(msg.seq, msg.lsid)
	width := isa.MemWidth(msg.memOp)
	violated, err := d.lsqs[msg.thread].InsertStore(key, msg.seq, msg.addr, width, msg.data.Bits, msg.data.Null)
	if err != nil {
		d.inQ.PushFront(msg)
		return
	}
	if len(violated) > 0 {
		// Memory-ordering violation: report the oldest violated load's
		// block to the GT via the GSN; train the dependence predictor.
		d.ViolationsStat++
		v := violated[0]
		d.dep.Mispredicted(v.Addr)
		d.gsnOut.Push(gsnMsg{
			kind: gsnViolation, seq: msg.seq, violSeq: v.BlockSeq, violAddr: v.Addr,
			ev: d.core.newEvent(now, ev, critpath.Split{}, critpath.CatOther),
		})
	}
	// Record the store locally and notify the other DTs on the DSN.
	d.noteStore(now, msg.slot, msg.seq, msg.lsid, ev)
	if d.id == 0 {
		d.core.noteStoreEv(msg.slot, msg.seq, ev)
	}
	d.dsnQ.Push(dsnMsg{slot: msg.slot, seq: msg.seq, thread: msg.thread, lsid: msg.lsid, ev: ev})
	// The store request is fully consumed (the LSQ copied its payload).
	d.core.freeOPNMsg(msg)
}

// noteStore marks a store LSID as received for a frame.
func (d *dtTile) noteStore(_ int64, slot int, seq uint64, lsid int, _ *critpath.Event) {
	if d.slotSeq[slot] != seq {
		return
	}
	d.storeSeen[slot] |= 1 << uint(lsid)
}

// pumpDSN consumes store notices from the other DTs.
func (d *dtTile) pumpDSN(now int64) {
	for {
		msg, ok := d.core.dsn.Deliver(d.id)
		if !ok {
			return
		}
		d.core.dsn.Pop(d.id)
		if d.slotSeq[msg.slot] == msg.seq {
			d.storeSeen[msg.slot] |= 1 << uint(msg.lsid)
			if d.id == 0 {
				// Track the latest store arrival for completion events.
				d.core.noteStoreEv(msg.slot, msg.seq, d.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatComplete))
			}
		}
	}
}

func (d *dtTile) drainDSNQ() {
	for !d.dsnQ.Empty() {
		if !d.core.dsn.Inject(d.id, d.dsnQ.Front()) {
			return
		}
		d.dsnQ.Pop()
	}
}

// priorStoresSeen reports whether every store older than the given memory
// operation (same thread) has been received across all DTs, per this DT's
// DSN-maintained view.
func (d *dtTile) priorStoresSeen(msg *opnMsg) bool {
	for s := 0; s < NumSlots; s++ {
		seq := d.slotSeq[s]
		if seq == 0 || d.slotThread[s] != msg.thread {
			continue
		}
		if seq > msg.seq {
			continue
		}
		if !d.maskKnown[s] {
			return false // store mask not yet delivered: be conservative
		}
		if seq < msg.seq {
			if d.storeSeen[s]&d.storeMask[s] != d.storeMask[s] {
				return false
			}
			continue
		}
		// Same block: stores with lower LSIDs must all be in.
		prior := d.storeMask[s] & (1<<uint(msg.lsid) - 1)
		if d.storeSeen[s]&prior != prior {
			return false
		}
	}
	return true
}

// retryStalled re-issues loads whose prior stores have now all arrived.
func (d *dtTile) retryStalled(now int64) {
	kept := d.stalled[:0]
	for _, pl := range d.stalled {
		msg := pl.msg
		if d.slotSeq[msg.slot] != msg.seq {
			continue
		}
		if d.priorStoresSeen(msg) {
			relEv := d.core.newEvent(now, pl.ev, critpath.Split{}, critpath.CatOther)
			pl.ev = relEv
			d.issueLoad(now, pl)
			continue
		}
		kept = append(kept, pl)
	}
	d.stalled = kept
}

// replayConflicts re-issues LSQ-buffered loads whose overlapping earlier
// stores have drained. Conflicted LSQ entries and conflictLoads are 1:1
// (flushes clear both), so an empty list means no pending conflicts and the
// LSQ scan can be skipped.
func (d *dtTile) replayConflicts(now int64) {
	if len(d.conflictLoads) == 0 {
		return
	}
	for t := 0; t < NumThreads; t++ {
		for _, e := range d.lsqs[t].PendingConflicts() {
			d.lsqs[t].MarkIssued(e.Key)
			if pl := d.findConflictLoad(e); pl != nil {
				d.conflictLoads = removeLoad(d.conflictLoads, pl)
				d.loadFromCachePath(now, pl)
			}
		}
	}
}

// conflictLoads tracks original messages for LSQ-conflicted loads so their
// replies can be routed after replay.
func (d *dtTile) findConflictLoad(e *lsq.Entry) *pendingLoad {
	for _, pl := range d.conflictLoads {
		if lsq.OrderKey(pl.msg.seq, pl.msg.lsid) == e.Key {
			return pl
		}
	}
	return nil
}

func removeLoad(s []*pendingLoad, pl *pendingLoad) []*pendingLoad {
	for i, x := range s {
		if x == pl {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func (d *dtTile) slotOfSeq(seq uint64) (int, bool) {
	for s := 0; s < NumSlots; s++ {
		if d.slotSeq[s] == seq {
			return s, true
		}
	}
	return 0, false
}

// checkFinish implements store-completion detection: the nearest DT (DT0)
// notifies the GT when all of a block's expected stores have arrived
// (paper Section 4.4).
func (d *dtTile) checkFinish(now int64) {
	if d.id != 0 {
		return
	}
	if !d.gsnOut.Empty() {
		return // a violation report must reach the GT first
	}
	for s := 0; s < NumSlots; s++ {
		if d.slotSeq[s] == 0 || d.finishSent[s] || !d.maskKnown[s] {
			continue
		}
		if d.storeSeen[s]&d.storeMask[s] != d.storeMask[s] {
			continue
		}
		if !d.core.gsnDT.CanSend(1) {
			continue
		}
		dep := critpath.Latest(d.core.storeEv(s, d.slotSeq[s]), d.bindEv[s])
		ev := d.core.newEvent(now, dep, critpath.Split{}, critpath.CatComplete)
		d.core.gsnDT.Send(1, gsnMsg{kind: gsnFinishS, slot: s, seq: d.slotSeq[s], ev: ev})
		d.finishSent[s] = true
	}
}

// onCommitCommand begins draining a frame's stores to the cache. The
// stores move from the LSQ into the drain pipeline (where later loads can
// still see them), which architecturally commits them — so the commit
// acknowledgment does not wait for slow line fills; those complete in the
// background through the write buffer.
func (d *dtTile) onCommitCommand(now int64, slot int, seq uint64, ev *critpath.Event) {
	d.wake()
	if d.slotSeq[slot] != seq {
		return
	}
	d.committing[slot] = true
	d.commitEv[slot] = d.core.newEvent(now, ev, critpath.Split{}, critpath.CatCommit)
	thread := d.slotThread[slot]
	stores := d.lsqs[thread].CommitBlock(seq)
	d.drains[seq] = stores
	d.drainOrder.Push(seq)
	d.drainEvs[seq] = d.commitEv[slot]
	d.ackOwn[slot] = true
	d.ackOwnEv[slot] = d.commitEv[slot]
	d.dep.OnBlockCommit()
}

// pumpDrain writes committed stores into the cache bank at the
// architectural rate of dtDrainPerCycle (one per DT), then signals ack on
// the GSN daisy chain.
func (d *dtTile) pumpDrain(now int64) {
	_ = dtDrainPerCycle // the head-of-queue discipline below enforces it
	if d.drainOrder.Len() > 0 {
		seq := d.drainOrder.Front()
		stores := d.drains[seq]
		if len(stores) == 0 {
			delete(d.drains, seq)
			d.drainOrder.Pop()
			delete(d.drainEvs, seq)
		} else {
			st := stores[0]
			if d.commitStore(st) {
				d.drains[seq] = stores[1:]
			}
		}
	}
	// Ack daisy chain (DT3 is the tail; GT is the head).
	for s := 0; s < NumSlots; s++ {
		if !d.committing[s] || d.ackSent[s] || !d.ackOwn[s] {
			continue
		}
		if d.id != isa.NumDTs-1 && !d.ackEast[s] {
			continue
		}
		if !d.core.gsnDT.CanSend(d.id + 1) {
			continue
		}
		ev := d.core.newEvent(now, critpath.Latest(d.ackOwnEv[s], d.ackEastEv[s]), critpath.Split{}, critpath.CatCommit)
		d.core.gsnDT.Send(d.id+1, gsnMsg{kind: gsnAckS, slot: s, seq: d.slotSeq[s], ev: ev})
		d.ackSent[s] = true
		d.slotSeq[s] = 0
	}
}

// commitStore writes one store into the bank; on a miss it fetches the line
// first (write-allocate). Uncacheable stores go straight to the OCN.
// Returns true when the store retired.
func (d *dtTile) commitStore(st *lsq.Entry) bool {
	if isUncached(st.Addr) {
		switch d.uncachedSt[st] {
		case 2:
			delete(d.uncachedSt, st)
			return true
		case 1:
			return false // in flight
		}
		// The backend retains Data, so the uncached path must heap-allocate.
		data := make([]byte, st.Width)
		for i := 0; i < st.Width; i++ {
			data[i] = byte(st.Data >> (8 * i))
		}
		req := &MemRequest{Addr: physical(st.Addr), Data: data, IsWrite: true,
			Origin: Origin{Kind: OriginDTUncachedStore, Tile: d.id},
			Done: func([]byte) {
				d.wake()
				d.uncachedSt[st] = 2
			}}
		if d.port.Submit(req) {
			d.uncachedSt[st] = 1
		}
		return false
	}
	// The bank copies on Write, so a stack scratch buffer suffices.
	var scratch [8]byte
	data := scratch[:st.Width]
	for i := 0; i < st.Width; i++ {
		data[i] = byte(st.Data >> (8 * i))
	}
	if d.bank.Write(st.Addr, data) {
		return true
	}
	// Miss: retire the store into the write buffer if it is free; the line
	// fetch completes in the background (fillLine drains the buffer).
	if d.wb.valid {
		return false // buffer occupied by an earlier missing store
	}
	d.wb.valid = true
	d.wb.st = st
	d.wb.fetched = false
	d.tryWBFetch()
	return true
}

// tryWBFetch issues (or retries) the write buffer's line fetch.
func (d *dtTile) tryWBFetch() {
	if !d.wb.valid || d.wb.fetched {
		return
	}
	line := d.bank.LineAddr(d.wb.st.Addr)
	if d.mshr.Pending(line) {
		d.wb.fetched = true // piggyback on the in-flight fill
		return
	}
	if primary, ok := d.mshr.Allocate(line, nil); ok {
		d.wb.fetched = true
		if primary {
			d.pendingFetch.Push(line)
		}
	}
}

// drainWriteBuffer retires the write-buffered store once its line is
// resident.
func (d *dtTile) drainWriteBuffer() {
	if !d.wb.valid {
		return
	}
	d.tryWBFetch()
	st := d.wb.st
	var scratch [8]byte
	data := scratch[:st.Width]
	for i := 0; i < st.Width; i++ {
		data[i] = byte(st.Data >> (8 * i))
	}
	if d.bank.Write(st.Addr, data) {
		d.wb.valid = false
	}
}

// wbValue checks the write buffer for a covering match.
func (d *dtTile) wbValue(addr uint64, width int) (uint64, bool) {
	if !d.wb.valid {
		return 0, false
	}
	st := d.wb.st
	if st.Addr <= addr && addr+uint64(width) <= st.Addr+uint64(st.Width) {
		shift := (addr - st.Addr) * 8
		v := st.Data >> shift
		if width < 8 {
			v &= 1<<(uint(width)*8) - 1
		}
		return v, true
	}
	return 0, false
}

// drainQueueValue checks committed-but-undrained stores for a covering
// match (youngest wins).
func (d *dtTile) drainQueueValue(addr uint64, width int) (uint64, bool) {
	var best *lsq.Entry
	for i := 0; i < d.drainOrder.Len(); i++ {
		seq := d.drainOrder.At(i)
		for _, st := range d.drains[seq] {
			if st.Addr <= addr && addr+uint64(width) <= st.Addr+uint64(st.Width) {
				best = st // later drains are younger
			}
		}
	}
	if best == nil {
		return 0, false
	}
	shift := (addr - best.Addr) * 8
	v := best.Data >> shift
	if width < 8 {
		v &= 1<<(uint(width)*8) - 1
	}
	return v, true
}

// pumpGSN consumes DT-chain messages from the south neighbor (DT id+1).
func (d *dtTile) pumpGSN(now int64) {
	node := d.id + 1
	if node >= d.core.gsnDT.N-1 {
		return
	}
	msg, ok := d.core.gsnDT.Recv(node)
	if !ok {
		return
	}
	switch msg.kind {
	case gsnAckS:
		if d.slotSeq[msg.slot] == msg.seq {
			d.ackEast[msg.slot] = true
			d.ackEastEv[msg.slot] = d.core.newEvent(now, msg.ev, critpath.Split{}, critpath.CatCommit)
		}
		d.core.gsnDT.Pop(node)
	case gsnViolation, gsnFinishS:
		// Pass through toward the GT.
		if d.core.gsnDT.CanSend(node) {
			d.core.gsnDT.Send(node, msg)
			d.core.gsnDT.Pop(node)
		}
	default:
		d.core.gsnDT.Pop(node)
	}
}

// flush discards a frame at this DT.
func (d *dtTile) flush(slot int, seq uint64) {
	if d.slotSeq[slot] != seq {
		return
	}
	d.wake()
	thread := d.slotThread[slot]
	d.lsqs[thread].FlushBlock(seq)
	d.slotSeq[slot] = 0
	filt := func(s []*pendingLoad) []*pendingLoad {
		kept := s[:0]
		for _, pl := range s {
			if !(pl.msg.slot == slot && pl.msg.seq == seq) {
				kept = append(kept, pl)
			}
		}
		return kept
	}
	d.stalled = filt(d.stalled)
	d.hitQ = filt(d.hitQ)
	d.conflictLoads = filt(d.conflictLoads)
	d.cacheRetry = filt(d.cacheRetry)
	d.uncachedQ.Filter(func(pl *pendingLoad) bool {
		return !(pl.msg.slot == slot && pl.msg.seq == seq)
	})
	d.outQ.Filter(func(m *opnMsg) bool {
		return !(m.slot == slot && m.seq == seq)
	})
	d.inQ.Filter(func(m *opnMsg) bool {
		return !(m.slot == slot && m.seq == seq)
	})
}

// extendValue sign- or zero-extends a loaded value per the load opcode.
func extendValue(v uint64, op isa.Opcode) uint64 {
	w := isa.MemWidth(op)
	if w == 8 {
		return v
	}
	v &= 1<<(uint(w)*8) - 1
	if isa.MemSigned(op) {
		shift := uint(64 - 8*w)
		v = uint64(int64(v<<shift) >> shift)
	}
	return v
}

func (d *dtTile) drainOutQ() {
	for !d.outQ.Empty() {
		msg := d.outQ.Front()
		if d.slotSeq[msg.slot] != msg.seq {
			d.outQ.Pop()
			continue
		}
		if !d.core.injectOPN(d.at, msg) {
			return
		}
		d.outQ.Pop()
	}
}
