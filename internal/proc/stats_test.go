package proc

import (
	"strings"
	"testing"

	"trips/internal/mem"
)

func TestRatesZeroDenominator(t *testing.T) {
	// A core that never ran (or a workload with no register reads / operand
	// traffic) must report 0, not NaN.
	var s TileStats
	if got := s.RegisterForwardRate(); got != 0 {
		t.Errorf("RegisterForwardRate() on zero stats = %v, want 0", got)
	}
	if got := s.LocalBypassRate(); got != 0 {
		t.Errorf("LocalBypassRate() on zero stats = %v, want 0", got)
	}
	// String() must render cleanly (no NaN%) on the zero value too.
	if out := s.String(); strings.Contains(out, "NaN") {
		t.Errorf("String() on zero stats contains NaN:\n%s", out)
	}
}

func TestRatesRatioMath(t *testing.T) {
	s := TileStats{
		RTReadsForwarded: 1, RTReadsFromFile: 3,
		ETLocalBypass: 3, ETRemote: 1,
	}
	if got := s.RegisterForwardRate(); got != 0.25 {
		t.Errorf("RegisterForwardRate() = %v, want 0.25", got)
	}
	if got := s.LocalBypassRate(); got != 0.75 {
		t.Errorf("LocalBypassRate() = %v, want 0.75", got)
	}
}

func TestTileStatsAggregation(t *testing.T) {
	// Run the Figure 5a workload and check that TileStats sums the per-tile
	// counters into a consistent whole.
	p := figure5aProgram(t)
	m := mem.New()
	m.Write(4*4+8, 4, 0x1234)
	c := newTestCore(t, p, m)
	c.SetRegister(0, 4, 4)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := c.TileStats()

	if s.Commits != res.CommittedBlocks {
		t.Errorf("Commits = %d, want CommittedBlocks %d", s.Commits, res.CommittedBlocks)
	}
	if s.Commits == 0 {
		t.Fatal("no committed blocks; workload did not run")
	}
	if s.ETIssued == 0 {
		t.Error("ETIssued = 0 after a committed run")
	}
	// The run halted, so every injected operand message was also delivered.
	if s.OPNInjected == 0 || s.OPNInjected != s.OPNDelivered {
		t.Errorf("OPN injected %d / delivered %d, want equal and nonzero",
			s.OPNInjected, s.OPNDelivered)
	}
	// Figure 5a performs one load and one store on the taken path.
	if s.DTLoads == 0 {
		t.Error("DTLoads = 0, want at least the Figure 5a load")
	}
	if s.DTStores == 0 {
		t.Error("DTStores = 0, want at least the Figure 5a store")
	}
	// Register reads must be attributed somewhere: forwarded, from the
	// architectural file, or buffered.
	if s.RTReadsForwarded+s.RTReadsFromFile+s.RTReadsBuffered == 0 {
		t.Error("no register reads counted; RT aggregation broken")
	}
	if s.Fetches == 0 || s.ITRefillFetches == 0 {
		t.Errorf("instruction supply counters zero: fetches %d, IT refill fetches %d",
			s.Fetches, s.ITRefillFetches)
	}
	if r := s.RegisterForwardRate(); r < 0 || r > 1 {
		t.Errorf("RegisterForwardRate() = %v, want within [0,1]", r)
	}
	if r := s.LocalBypassRate(); r < 0 || r > 1 {
		t.Errorf("LocalBypassRate() = %v, want within [0,1]", r)
	}

	out := s.String()
	for _, want := range []string{"ET:", "RT:", "DT:", "OPN:", "GT:", "predictor:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q section:\n%s", want, out)
		}
	}
}
