package proc

import (
	"testing"

	"trips/internal/isa"
	"trips/internal/mem"
)

// haltOffset computes the B-format offset that branches from addr to the
// halt address (0).
func haltOffset(addr uint64) int32 { return int32(-(int64(addr) / isa.ChunkBytes)) }

// branchOffset computes the B-format offset from one block to another.
func branchOffset(from, to uint64) int32 {
	return int32((int64(to) - int64(from)) / isa.ChunkBytes)
}

// figure5aProgram builds the paper's Figure 5a example block followed by a
// halt exit. The callo targets a trivial callee block that halts.
func figure5aProgram(t *testing.T) *Program {
	t.Helper()
	main := &isa.Block{Addr: 0x10000, Name: "figure5a"}
	main.Reads[0] = isa.ReadInst{Valid: true, GR: 4, RT0: isa.ToLeft(1), RT1: isa.ToLeft(2)}
	main.Insts = make([]isa.Inst, 36)
	for i := range main.Insts {
		main.Insts[i] = isa.Inst{Op: isa.NOP}
	}
	main.Insts[0] = isa.Inst{Op: isa.MOVI, Imm: 0, T0: isa.ToRight(1)}
	main.Insts[1] = isa.Inst{Op: isa.TEQ, T0: isa.ToPred(2), T1: isa.ToPred(3)}
	main.Insts[2] = isa.Inst{Op: isa.MULI, Pred: isa.PredOnFalse, Imm: 4, T0: isa.ToLeft(32)}
	main.Insts[3] = isa.Inst{Op: isa.NULL, Pred: isa.PredOnTrue, T0: isa.ToLeft(34), T1: isa.ToRight(34)}
	main.Insts[32] = isa.Inst{Op: isa.LW, Imm: 8, LSID: 0, T0: isa.ToLeft(33)}
	main.Insts[33] = isa.Inst{Op: isa.MOV, T0: isa.ToLeft(34), T1: isa.ToRight(34)}
	main.Insts[34] = isa.Inst{Op: isa.SW, Imm: 0, LSID: 1}
	callee := uint64(0x20000)
	main.Insts[35] = isa.Inst{Op: isa.CALLO, Exit: 0, Offset: branchOffset(main.Addr, callee)}

	halt := &isa.Block{Addr: callee, Name: "halt"}
	halt.Insts = []isa.Inst{{Op: isa.BRO, Exit: 0, Offset: haltOffset(callee)}}

	p, err := NewProgram(main.Addr, []*isa.Block{main, halt})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestCore(t *testing.T, p *Program, m *mem.Memory) *Core {
	t.Helper()
	if m == nil {
		m = mem.New()
	}
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{
		Program:       p,
		Mem:           NewFixedLatencyMem(m, 20),
		TrackCritPath: true,
		MaxCycles:     2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFigure5aExecutionTakenPath(t *testing.T) {
	// R4 != 0: the teq produces 0, the muli (predicated on false) fires,
	// the load reads mem[R4*4+8], the mov fans the value to the store's
	// address and data, and mem[v] = v is written.
	p := figure5aProgram(t)
	m := mem.New()
	m.Write(4*4+8, 4, 0x1234)
	c := newTestCore(t, p, m)
	c.SetRegister(0, 4, 4)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.FlushCaches()
	if got := m.Read(0x1234, 4, false); got != 0x1234 {
		t.Errorf("mem[0x1234] = %#x, want 0x1234 (store of loaded value)", got)
	}
	if res.CommittedBlocks != 2 {
		t.Errorf("committed %d blocks, want 2", res.CommittedBlocks)
	}
	if res.Violations != 0 {
		t.Errorf("unexpected ordering violations: %d", res.Violations)
	}
}

func TestFigure5aExecutionNullPath(t *testing.T) {
	// R4 == 0: the null instruction fires instead, the store is nullified,
	// and memory is untouched — but the block still completes (the
	// nullified store signals the DT) and commits.
	p := figure5aProgram(t)
	m := mem.New()
	m.Write(8, 4, 0x4321) // would-be load target if the dead path ran
	c := newTestCore(t, p, m)
	c.SetRegister(0, 4, 0)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.FlushCaches()
	if got := m.Read(0x4321, 4, false); got != 0 {
		t.Errorf("nullified store wrote memory: mem[0x4321] = %#x", got)
	}
	if res.CommittedBlocks != 2 {
		t.Errorf("committed %d blocks, want 2", res.CommittedBlocks)
	}
}

func TestDispatchTiming(t *testing.T) {
	// Paper Section 4.1: the furthest RT receives its first instruction
	// packet ten cycles and its last packet 17 cycles after the GT issues
	// the first fetch command.
	p := figure5aProgram(t)
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{Program: p, Mem: NewFixedLatencyMem(m, 20)})
	if err != nil {
		t.Fatal(err)
	}
	// Drive a dispatch directly at a known cycle.
	blk, _ := p.Block(p.Entry)
	data, _ := isa.EncodeBlock(blk)
	hi, err := isa.DecodeHeaderChunk(data[:isa.ChunkBytes])
	if err != nil {
		t.Fatal(err)
	}
	// Mark a read entry in the furthest queue position so beats span the
	// full range: R[28] lives on RT0... use RT3's last beat: entry 31.
	hi.Reads[31] = isa.ReadInst{Valid: true, GR: 7, RT0: isa.ToLeft(1)}
	// Hand the ITs their chunks directly (the GRN refill path is tested
	// end-to-end elsewhere; here we drive the dispatch schedule alone).
	for k := 0; k < isa.NumITs && (k+1)*isa.ChunkBytes <= len(data); k++ {
		c.its[k].chunks[p.Entry] = &itChunk{raw: data[k*isa.ChunkBytes : (k+1)*isa.ChunkBytes]}
	}
	start := c.cycle
	c.scheduleDispatch(start, 0, 1, 0, p.Entry, hi, nil)
	firstAt, lastAt := int64(-1), int64(-1)
	rt3 := c.rts[3]
	prevBeats := uint8(0)
	for i := 0; i < 40; i++ {
		c.Step()
		if rt3.hdrBeats[0] > prevBeats {
			if firstAt < 0 {
				firstAt = c.cycle - 1 - start
			}
			if rt3.hdrBeats[0] == 8 {
				lastAt = c.cycle - 1 - start
			}
			prevBeats = rt3.hdrBeats[0]
		}
	}
	if firstAt != 10 {
		t.Errorf("first packet at furthest RT after %d cycles, want 10 (paper 4.1)", firstAt)
	}
	if lastAt != 17 {
		t.Errorf("last packet at furthest RT after %d cycles, want 17 (paper 4.1)", lastAt)
	}
}

// arithProgram: w0 = r8 + r12; w1 = r8 * 3; both written back, then halt.
func arithProgram(t *testing.T) *Program {
	t.Helper()
	b := &isa.Block{Addr: 0x1000, Name: "arith"}
	b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0), RT1: isa.ToLeft(1)}
	b.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToRight(0)}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
	b.Writes[1] = isa.WriteInst{Valid: true, GR: 21}
	b.Insts = []isa.Inst{
		{Op: isa.ADD, T0: isa.ToWrite(0)},
		{Op: isa.MULI, Imm: 3, T0: isa.ToWrite(1)},
		{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x1000)},
	}
	p, err := NewProgram(b.Addr, []*isa.Block{b})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimpleArithBlock(t *testing.T) {
	p := arithProgram(t)
	c := newTestCore(t, p, nil)
	c.SetRegister(0, 8, 30)
	c.SetRegister(0, 13, 12)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 16); got != 42 {
		t.Errorf("r16 = %d, want 42", got)
	}
	if got := c.Register(0, 21); got != 90 {
		t.Errorf("r21 = %d, want 90", got)
	}
	if res.CommittedBlocks != 1 {
		t.Errorf("committed %d blocks, want 1", res.CommittedBlocks)
	}
	// Critical-path accounting must cover the whole run.
	var sum int64
	for cat := 0; cat < len(res.CritPath.Cycles); cat++ {
		sum += res.CritPath.Cycles[cat]
	}
	if sum != res.CritPath.TotalCycles || res.CritPath.TotalCycles == 0 {
		t.Errorf("critical path categories sum to %d of %d cycles", sum, res.CritPath.TotalCycles)
	}
}

// loopProgram sums 1..n with a predicated two-exit loop block:
//
//	r8: i, r12: sum, r16: n
//	loop: i' = i+1; sum' = sum+i'; p = (i' < n); bro_t loop; bro_f done
func loopProgram(t *testing.T) *Program {
	t.Helper()
	loop := &isa.Block{Addr: 0x2000, Name: "loop"}
	loop.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
	loop.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(1)}
	loop.Reads[2] = isa.ReadInst{Valid: true, GR: 18, RT0: isa.ToRight(2)}
	loop.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
	loop.Writes[1] = isa.WriteInst{Valid: true, GR: 13}
	loop.Insts = []isa.Inst{
		{Op: isa.ADDI, Imm: 1, T0: isa.ToLeft(4)},           // i+1 -> fanout mov
		{Op: isa.ADD, T0: isa.ToWrite(1)},                   // sum+(i+1)
		{Op: isa.TLT, T0: isa.ToPred(5), T1: isa.ToPred(6)}, // (i+1) < n
		{Op: isa.NOP},
		{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToLeft(7)}, // i+1 -> W0 + next fan
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 0},
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: branchOffset(0x2000, 0x3000)},
		{Op: isa.MOV, T0: isa.ToRight(1), T1: isa.ToLeft(2)}, // i+1 -> adder, test
	}
	done := &isa.Block{Addr: 0x3000, Name: "done"}
	done.Insts = []isa.Inst{{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x3000)}}
	p, err := NewProgram(loop.Addr, []*isa.Block{loop, done})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoopWithPredictionAndFlush(t *testing.T) {
	p := loopProgram(t)
	c := newTestCore(t, p, nil)
	c.SetRegister(0, 8, 0)   // i
	c.SetRegister(0, 13, 0)  // sum
	c.SetRegister(0, 18, 10) // n
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 13); got != 55 {
		t.Errorf("sum = %d, want 55 (1+..+10)", got)
	}
	if got := c.Register(0, 8); got != 10 {
		t.Errorf("i = %d, want 10", got)
	}
	if res.CommittedBlocks != 11 {
		t.Errorf("committed %d blocks, want 11 (10 iterations + done)", res.CommittedBlocks)
	}
	// The loop exit must have mispredicted at least once (cold predictor),
	// exercising the distributed flush protocol.
	if res.Mispredicts == 0 {
		t.Error("expected at least one misprediction/flush on the loop exit")
	}
}
