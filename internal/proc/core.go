package proc

import (
	"fmt"

	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/micronet"
	"trips/internal/obs"
)

// horizonNever marks "no scheduled event" in NextEventCycle results (the
// shared sentinel; see micronet.MinHorizon for the fold helpers).
const horizonNever = micronet.HorizonNever

// haltAddr is the conventional halt target: a block whose committed exit
// branches to address 0 halts its thread.
const haltAddr = 0

// Config parameterizes one TRIPS core.
type Config struct {
	Program *Program
	Mem     MemBackend
	// Entries holds one entry address per SMT thread (1, 2 or 4 threads).
	Entries []uint64
	// TrackCritPath enables Fields-style critical-path accounting
	// (paper Section 5.4).
	TrackCritPath bool
	// OPNChannels is the number of operand-network channels per link
	// (1 in the prototype; 2 is the paper's proposed bandwidth extension).
	OPNChannels int
	// ConservativeLoads disables the dependence predictor's aggressive
	// issue: every load waits for all prior stores (ablation).
	ConservativeLoads bool
	// SlowOPNRouter adds one cycle of router latency to every OPN
	// delivery, the sensitivity the paper's timing analysis worries about
	// (Section 5.3: "increasing the latency in cycles would have a
	// significant effect on instruction throughput").
	SlowOPNRouter bool
	// MaxCycles bounds the simulation (0 = default bound).
	MaxCycles int64
	// TraceCommits logs every commit and flush (debugging aid).
	TraceCommits bool
	// ExternalMemTick suppresses the core's own memory-system tick so a
	// chip-level loop that shares one backend between two cores can tick
	// it exactly once per cycle.
	ExternalMemTick bool
	// RecordTimeline captures per-block protocol phase times (dispatch,
	// completion, commit command, commit acknowledgment) — the data behind
	// paper Figure 5b.
	RecordTimeline bool
	// NoFastPath disables the quiescence-aware stepping fast paths and
	// ticks every tile every cycle, the original full-scan discipline. The
	// fast paths are bit-identical by construction; this flag exists so the
	// determinism regression tests can prove it on every workload.
	NoFastPath bool
	// NoWarp disables clock warping: Run visits every cycle even when the
	// core is provably quiescent until a scheduled event. Warped runs are
	// bit-identical by construction (only no-op cycles are skipped, and the
	// skipped ticks' counter effects are replayed exactly); the flag exists
	// for the three-way A/B determinism tests, mirroring NoFastPath.
	// NoFastPath implies NoWarp: the full-scan baseline never warps.
	NoWarp bool
	// NoEventDriven disables per-tile doze scheduling: with it set, every
	// active tile ticks every cycle (the prior discipline), instead
	// of tiles whose remaining work is provably deadline-held (an ET waiting
	// out its pipeline latencies, a DT waiting out cache-hit latency, the GT
	// in a warpIdle state) skipping ticks until their wake cycle. Event-driven
	// stepping is bit-identical by construction — a dozing tile's skipped
	// ticks are exactly ticks that would have been no-ops — and the flag
	// exists for the A/B determinism suites, mirroring NoWarp. NoFastPath
	// implies NoEventDriven: the full-scan baseline never dozes.
	NoEventDriven bool
	// Trace, when non-nil, records block-protocol and operand-network
	// events into the ring. Tracing never mutates simulated state, so a
	// traced run's cycle counts are bit-identical to an untraced one.
	Trace *obs.Tracer
	// Metrics, when non-nil, samples core occupancy series (OPN occupancy,
	// LSQ depth, MSHR outstanding, in-flight blocks) once per sample
	// interval of stepped cycles.
	Metrics *obs.Sampler
}

// BlockTime is one block's protocol timeline (Figure 5b's phases).
type BlockTime struct {
	Seq                                  uint64
	Addr                                 uint64
	Dispatch, Complete, CommitCmd, Acked int64
}

// NumTiles is the tile count per core — the GT plus the IT, RT, ET and DT
// arrays (30 on the prototype) — and the denominator of the per-cycle tile
// tick/skip accounting identity.
const NumTiles = 1 + isa.NumITs + isa.NumRTs + isa.NumETs + isa.NumDTs

// Core is one TRIPS processor core.
type Core struct {
	cfg     Config
	program *Program
	mem     MemBackend

	gt  *gtTile
	its [isa.NumITs]*itTile
	rts [isa.NumRTs]*rtTile
	ets [isa.NumETs]*etTile
	dts [isa.NumDTs]*dtTile

	opns  []*micronet.Mesh[*opnMsg]
	gcn   *micronet.Broadcast[gcnMsg]
	gsnRT *micronet.Chain[gsnMsg]
	gsnDT *micronet.Chain[gsnMsg]
	gsnIT *micronet.Chain[gsnMsg]
	dsn   *micronet.BiChain[dsnMsg]

	gcnQueue micronet.Queue[gcnMsg]

	cycle int64
	// wheel is the delta-cycle event wheel behind scheduleEv: slot
	// cycle&wheelMask holds the events for that cycle. Every dispatch/refill
	// delay is far below wheelSize, so schedOverflow is a never-hit safety
	// net. Wheel slices are reused across revolutions, so steady-state
	// scheduling does not allocate.
	wheel         [wheelSize][]schedEvent
	schedOverflow map[int64][]schedEvent

	// msgFree pools operand-network messages: the OPN moves one message per
	// dependent instruction pair, making opnMsg the hottest allocation in
	// the simulator. Messages are recycled at their final consumer.
	msgFree []*opnMsg

	// Store-arrival critical-path events per frame (tracked at DT0's view).
	storeEvs [NumSlots]*critpath.Event
	storeSeq [NumSlots]uint64

	// Stats.
	CommittedBlocks uint64
	CommittedInsts  uint64
	FlushedBlocks   uint64
	// Warps counts clock-warp jumps; WarpedCycles the dead cycles skipped.
	Warps        uint64
	WarpedCycles int64
	// Per-tile stepping telemetry: across the SteppedCycles cycles this core
	// actually stepped (warped cycles excluded), TileTicks counts tile ticks
	// executed and TileSkips the tile ticks the gating elided (idle or dozing
	// tiles), with TileTicks+TileSkips == NumTiles*SteppedCycles. Host-side
	// observability only — deterministic for a given stepping discipline but
	// different across disciplines, so never part of simulated-state
	// comparisons and never serialized into checkpoints.
	TileTicks     uint64
	TileSkips     uint64
	SteppedCycles int64
	// eventDriven caches !NoFastPath && !NoEventDriven: tiles may doze.
	eventDriven bool
	nonNopCount map[uint64]uint64 // block addr -> useful instruction count

	// Timeline holds per-block protocol phases when RecordTimeline is set.
	Timeline  []BlockTime
	timelineI map[uint64]int // seq -> Timeline index

	// trace and metrics are nil when observability is off; every hot-path
	// hook is a single pointer compare.
	trace   *obs.Tracer
	metrics *obs.Sampler

	// Checkpoint hook: ckptFn fires once at the first block-commit cycle
	// boundary past ckptAt, then disarms. Nil when no checkpoint is armed.
	ckptAt int64
	ckptFn func(cycle int64) error
	// Rollback hook: forwarded to LagConfig.OnRollback by the RunLag
	// wrappers so observers (the flight recorder) see effect-gate rewinds.
	onRollback func(owner int, from, effect int64)
	// Fault-injection knobs forwarded to LagConfig by the RunLag wrappers
	// (see LagConfig.HorizonOverride/DeadlinePad). Test/debug only.
	lagHorizonOverride int64
	lagDeadlinePad     int64
}

// NewCore builds a core over the given configuration.
func NewCore(cfg Config) (*Core, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("proc: config needs a program")
	}
	if cfg.Mem == nil {
		return nil, fmt.Errorf("proc: config needs a memory backend")
	}
	if len(cfg.Entries) == 0 {
		cfg.Entries = []uint64{cfg.Program.Entry}
	}
	if n := len(cfg.Entries); n != 1 && n != 2 && n != 4 {
		return nil, fmt.Errorf("proc: %d threads unsupported (1, 2 or 4)", n)
	}
	if cfg.OPNChannels == 0 {
		cfg.OPNChannels = 1
	}
	c := &Core{
		cfg:         cfg,
		program:     cfg.Program,
		mem:         cfg.Mem,
		eventDriven: !cfg.NoFastPath && !cfg.NoEventDriven,
		nonNopCount: make(map[uint64]uint64),
		timelineI:   make(map[uint64]int),
		trace:       cfg.Trace,
		metrics:     cfg.Metrics,
	}
	for i := 0; i < cfg.OPNChannels; i++ {
		c.opns = append(c.opns, micronet.NewMesh[*opnMsg](fmt.Sprintf("opn%d", i), 5, 5))
		if i < 2 {
			c.opns[i].Attach(cfg.Trace, obs.NetOPN0+uint8(i))
		}
	}
	c.gcn = micronet.NewBroadcast[gcnMsg]("gcn", 5, 5)
	c.gsnRT = micronet.NewChain[gsnMsg]("gsn-rt", isa.NumRTs+1)
	c.gsnDT = micronet.NewChain[gsnMsg]("gsn-dt", isa.NumDTs+1)
	c.gsnIT = micronet.NewChain[gsnMsg]("gsn-it", isa.NumITs+1)
	c.dsn = micronet.NewBiChain[dsnMsg]("dsn", isa.NumDTs)

	c.gt = newGT(c)
	for i := range c.its {
		c.its[i] = newIT(c, i)
		c.its[i].port = c.mem.Port(fmt.Sprintf("it%d", i))
	}
	for i := range c.rts {
		c.rts[i] = newRT(c, i)
	}
	for i := range c.ets {
		c.ets[i] = newET(c, i)
	}
	for i := range c.dts {
		c.dts[i] = newDT(c, i)
		c.dts[i].port = c.mem.Port(fmt.Sprintf("dt%d", i))
		if cfg.ConservativeLoads {
			// Saturate the dependence predictor: every load stalls.
			for a := uint64(0); a < 1024; a++ {
				c.dts[i].dep.Mispredicted(a << 3)
			}
			c.dts[i].dep.ClearInterval = 1 << 60
		}
	}
	for a, b := range c.program.blocks {
		n := uint64(0)
		for i := range b.Insts {
			if b.Insts[i].Op != isa.NOP {
				n++
			}
		}
		c.nonNopCount[a] = n
	}
	if sm := cfg.Metrics; sm != nil {
		c.registerMetrics(sm)
	}
	for t, entry := range cfg.Entries {
		c.gt.startThread(t, entry)
	}
	return c, nil
}

// registerMetrics wires the core's occupancy series into a sampler. The
// closures read plain core state, so they must be sampled from the core's
// own stepping goroutine (Step calls Sample).
func (c *Core) registerMetrics(sm *obs.Sampler) {
	for i, m := range c.opns {
		m := m
		sm.Register(fmt.Sprintf("opn%d.occupancy", i), func() int64 { return int64(m.Occupancy()) })
		sm.Register(fmt.Sprintf("opn%d.links_busy", i), func() int64 { return int64(m.LinksBusy()) })
	}
	sm.Register("gsn.busy", func() int64 {
		return int64(c.gsnRT.Busy() + c.gsnDT.Busy() + c.gsnIT.Busy())
	})
	sm.Register("gcn.busy", func() int64 { return int64(c.gcn.Busy()) })
	sm.Register("lsq.occupancy", func() int64 {
		n := 0
		for _, d := range c.dts {
			for _, q := range d.lsqs {
				n += q.Len()
			}
		}
		return int64(n)
	})
	sm.Register("mshr.outstanding", func() int64 {
		n := 0
		for _, d := range c.dts {
			n += d.mshr.Outstanding()
		}
		return int64(n)
	})
	sm.Register("blocks.inflight", func() int64 {
		n := 0
		for s := range c.gt.slots {
			if c.gt.slots[s].valid {
				n++
			}
		}
		return int64(n)
	})
	sm.Register("warped.cycles", func() int64 { return c.WarpedCycles })
}

// traceBlock emits one block-protocol lifecycle event (nil-gated; callers
// on the hot path should guard with c.trace != nil themselves when they
// need to avoid computing arguments).
func (c *Core) traceBlock(kind obs.Kind, slot int, seq, addr uint64, cat critpath.Cat) {
	if c.trace == nil {
		return
	}
	var tag uint8
	if c.cfg.TrackCritPath {
		tag = uint8(cat) + 1
	}
	c.trace.Emit(obs.Event{
		Cycle: c.cycle, Seq: seq, Addr: addr,
		Kind: kind, Cat: tag, Slot: int16(slot),
	})
}

func (c *Core) activeThreads() int { return len(c.cfg.Entries) }

// Cycle returns the current cycle number.
func (c *Core) Cycle() int64 { return c.cycle }

// newEvent allocates a critical-path event, or nil when tracking is off.
func (c *Core) newEvent(cycle int64, parent *critpath.Event, split critpath.Split, rem critpath.Cat) *critpath.Event {
	if !c.cfg.TrackCritPath {
		return nil
	}
	return critpath.New(cycle, parent, split, rem)
}

// The event wheel replaces a map[int64][]func() of closures: GDN/GRN
// delivery delays are all bounded by a couple dozen cycles, so a
// power-of-two ring indexed by cycle&wheelMask covers every real schedule
// without hashing or per-event closure allocation.
const (
	wheelSize = 64
	wheelMask = wheelSize - 1
)

// evKind discriminates wheel events.
type evKind uint8

const (
	evBodyInst   evKind = iota // GDN body beat -> ET reservation station
	evHeaderBeat               // GDN header beat -> RT read/write queues
	evStoreMask                // store mask arrival at a DT
	evRefill                   // GRN refill command at an IT
	evSlowOPN                  // delayed OPN delivery (SlowOPNRouter ablation)
)

// schedEvent is one future delivery. Payloads are copied at schedule time
// (matching the old closures' captured values) and interpreted by kind.
type schedEvent struct {
	kind evKind
	slot int
	seq  uint64 // block seq; evRefill reuses it for the block address
	idx  int    // body: instruction index; header: beat number

	et *etTile
	rt *rtTile
	dt *dtTile
	it *itTile

	inst isa.Inst
	rd   isa.ReadInst
	wr   isa.WriteInst
	mask uint32

	at  micronet.Coord
	msg *opnMsg

	ev *critpath.Event
}

// scheduleEv registers an event to run at the start of the given cycle.
func (c *Core) scheduleEv(cycle int64, e schedEvent) {
	if cycle <= c.cycle {
		cycle = c.cycle + 1
	}
	if cycle-c.cycle >= wheelSize {
		if c.schedOverflow == nil {
			c.schedOverflow = make(map[int64][]schedEvent)
		}
		c.schedOverflow[cycle] = append(c.schedOverflow[cycle], e)
		return
	}
	c.wheel[cycle&wheelMask] = append(c.wheel[cycle&wheelMask], e)
}

// runEvents fires the events scheduled for this cycle, in schedule order.
// Handlers never schedule for the current cycle (scheduleEv clamps to
// cycle+1) and never reach delta wheelSize, so the slot cannot grow while
// it runs.
func (c *Core) runEvents(now int64) {
	slot := &c.wheel[now&wheelMask]
	if evs := *slot; len(evs) > 0 {
		*slot = evs[:0]
		for i := range evs {
			c.runEvent(now, &evs[i])
			evs[i] = schedEvent{}
		}
	}
	if len(c.schedOverflow) > 0 {
		if evs, ok := c.schedOverflow[now]; ok {
			delete(c.schedOverflow, now)
			for i := range evs {
				c.runEvent(now, &evs[i])
			}
		}
	}
}

func (c *Core) runEvent(now int64, e *schedEvent) {
	switch e.kind {
	case evBodyInst:
		ev := c.newEvent(now, e.ev, critpath.Split{}, critpath.CatIFetch)
		e.et.deliverInst(e.slot, e.seq, e.idx, e.inst, ev)
	case evHeaderBeat:
		ev := c.newEvent(now, e.ev, critpath.Split{}, critpath.CatIFetch)
		e.rt.deliverHeaderBeat(e.slot, e.seq, e.idx, e.rd, e.wr, ev)
	case evStoreMask:
		d := e.dt
		d.wake()
		if d.slotSeq[e.slot] == e.seq {
			d.storeMask[e.slot] = e.mask
			d.maskKnown[e.slot] = true
			d.bindEv[e.slot] = c.newEvent(now, e.ev, critpath.Split{}, critpath.CatIFetch)
			if c.trace != nil {
				c.trace.Emit(obs.Event{
					Cycle: now, Seq: e.seq, Arg: uint64(d.id),
					Kind: obs.KindStoreMask, Slot: int16(e.slot),
				})
			}
		}
	case evRefill:
		e.it.active = true
		e.it.onRefill(e.seq)
	case evSlowOPN:
		c.routeDelivered(now, e.at, e.msg)
	}
}

// newOPNMsg takes a message from the pool (or allocates one).
func (c *Core) newOPNMsg() *opnMsg {
	if n := len(c.msgFree); n > 0 {
		m := c.msgFree[n-1]
		c.msgFree = c.msgFree[:n-1]
		return m
	}
	return &opnMsg{}
}

// freeOPNMsg recycles a message whose final consumer has fully read it.
// Messages dropped on staleness/flush paths are deliberately NOT freed (the
// GC reclaims them): a flushed load's message can still be referenced from
// an MSHR waiter list, and leaking the rare flushed message is cheaper than
// proving every such path free of aliases.
func (c *Core) freeOPNMsg(m *opnMsg) {
	*m = opnMsg{}
	c.msgFree = append(c.msgFree, m)
}

// opnChannel selects the channel for a message (bandwidth ablation).
// Memory operations hash by cache line only, so accesses that could
// conflict (same line) stay ordered on one channel; operand deliveries
// spread by consumer.
func (c *Core) opnChannel(msg *opnMsg) *micronet.Mesh[*opnMsg] {
	if len(c.opns) == 1 {
		return c.opns[0]
	}
	var h uint64
	if msg.kind == opnLoadReq || msg.kind == opnStoreReq {
		h = msg.addr >> 6
	} else {
		h = uint64(msg.slot) + uint64(msg.target.Index)
	}
	return c.opns[h%uint64(len(c.opns))]
}

// injectOPN offers a message to the operand network.
func (c *Core) injectOPN(at micronet.Coord, msg *opnMsg) bool {
	return c.opnChannel(msg).Inject(at, msg)
}

// deliverOPN pops the next message delivered to a coordinate (GT pull).
func (c *Core) deliverOPN(at micronet.Coord) (*opnMsg, bool) {
	for _, m := range c.opns {
		if msg, ok := m.Deliver(at); ok {
			m.Pop(at)
			return msg, true
		}
	}
	return nil, false
}

// issueGCN queues a control command for broadcast (one launches per cycle;
// the queue is how commit commands pipeline, paper Section 4.4).
func (c *Core) issueGCN(msg gcnMsg) { c.gcnQueue.Push(msg) }

func (c *Core) canIssueGCN() bool { return true }

// issueGRN starts a distributed I-cache refill: the refill address reaches
// IT k after 1+k cycles (paper Section 4.1).
func (c *Core) issueGRN(addr uint64) {
	for k := range c.its {
		c.scheduleEv(c.cycle+1+int64(k), schedEvent{kind: evRefill, it: c.its[k], seq: addr})
	}
}

// noteStoreEv tracks the last-arriving store event per frame, from DT0's
// DSN-complete view, for completion-phase attribution.
func (c *Core) noteStoreEv(slot int, seq uint64, ev *critpath.Event) {
	if c.storeSeq[slot] != seq {
		c.storeEvs[slot] = nil
		c.storeSeq[slot] = seq
	}
	c.storeEvs[slot] = critpath.Latest(c.storeEvs[slot], ev)
}

func (c *Core) storeEv(slot int, seq uint64) *critpath.Event {
	if c.storeSeq[slot] != seq {
		return nil
	}
	return c.storeEvs[slot]
}

// cancelScheduled is a hook for dropping flushed dispatch work; staleness
// filtering at the tiles already guarantees correctness, so this only
// exists to document the GDN property that a refetch can never overtake a
// flush (paper Section 4.3).
func (c *Core) cancelScheduled(mask uint8, seqs [8]uint64) {}

// onBlockRetired records commit statistics.
func (c *Core) onBlockRetired(addr uint64) {
	c.CommittedBlocks++
	c.CommittedInsts += c.nonNopCount[addr]
}

// markTimeline records one protocol phase for a block.
func (c *Core) markTimeline(seq, addr uint64, phase string) {
	if !c.cfg.RecordTimeline {
		return
	}
	i, ok := c.timelineI[seq]
	if !ok {
		i = len(c.Timeline)
		c.Timeline = append(c.Timeline, BlockTime{Seq: seq, Addr: addr, Dispatch: -1, Complete: -1, CommitCmd: -1, Acked: -1})
		c.timelineI[seq] = i
	}
	bt := &c.Timeline[i]
	switch phase {
	case "dispatch":
		bt.Dispatch = c.cycle
	case "complete":
		bt.Complete = c.cycle
	case "commit":
		bt.CommitCmd = c.cycle
	case "acked":
		bt.Acked = c.cycle
	}
}

// scheduleDispatch plays out the pipelined GDN instruction distribution for
// one block (paper Section 4.1): the GT issues eight beat commands on
// consecutive cycles; ITs read their banks and stream four instructions per
// cycle eastward across their rows.
func (c *Core) scheduleDispatch(now int64, slot int, seq uint64, thread int, addr uint64, hdr *isa.HeaderInfo, dispEv *critpath.Event) {
	// The instruction payloads come from the IT banks (refilled over the
	// GRN), not from the program map: the ITs are the architects of what
	// actually executes.
	bodies := make([]*[isa.BodyChunkInsts]isa.Inst, hdr.BodyChunks)
	for chunk := 0; chunk < hdr.BodyChunks; chunk++ {
		insts, err := c.its[chunk+1].bodyOf(addr)
		if err != nil {
			panic(fmt.Sprintf("proc: dispatch without chunk %d: %v", chunk, err))
		}
		bodies[chunk] = insts
	}

	// Control-state binding happens as the dispatch command leaves the GT;
	// per-payload timing below models the pipelined distribution.
	for _, e := range c.ets {
		e.bindSlot(slot, seq, thread)
	}
	for _, r := range c.rts {
		r.bindSlot(slot, seq, thread)
	}
	for _, d := range c.dts {
		d.bindSlot(slot, seq, thread, 0)
		d.maskKnown[slot] = false
	}
	// The store mask reaches each DT a few cycles into dispatch.
	mask := hdr.StoreMask
	for i, d := range c.dts {
		c.scheduleEv(now+3+int64(i), schedEvent{
			kind: evStoreMask, dt: d, slot: slot, seq: seq, mask: mask, ev: dispEv,
		})
	}

	// Header beats: IT0 feeds row 0. Beat b carries read and write queue
	// entries with index b*4+rt for each RT (column rt+1).
	it0 := gdnCmdToIT + itBankCycles
	for b := 0; b < dispatchBeats; b++ {
		for rt := 0; rt < isa.NumRTs; rt++ {
			j := b*4 + rt
			arrive := now + int64(it0+b+(rt+1)+1)
			c.scheduleEv(arrive, schedEvent{
				kind: evHeaderBeat, rt: c.rts[rt], slot: slot, seq: seq,
				idx: b, rd: hdr.Reads[j], wr: hdr.Writes[j], ev: dispEv,
			})
		}
	}

	// Body beats: IT k+1 feeds ET row k with chunk k. Beat b carries chunk
	// positions b*4..b*4+3, one per column.
	for chunk := 0; chunk < hdr.BodyChunks; chunk++ {
		itk := gdnCmdToIT + (chunk + 1) + itBankCycles
		for b := 0; b < dispatchBeats; b++ {
			for col := 0; col < 4; col++ {
				idx := chunk*isa.BodyChunkInsts + b*4 + col
				if idx >= hdr.NumInsts {
					continue
				}
				arrive := now + int64(itk+b+(col+1)+1)
				c.scheduleEv(arrive, schedEvent{
					kind: evBodyInst, et: c.ets[isa.ETOf(idx)], slot: slot, seq: seq,
					idx: idx, inst: bodies[chunk][idx%isa.BodyChunkInsts], ev: dispEv,
				})
			}
		}
	}
}

// Step advances the core (and its memory system) by one cycle.
//
// The fast-path discipline: a tile ticks only when it has registered work
// (its active flag, set by every delivery/wake path and cleared by the tile
// itself once provably idle) or when its status chain carries traffic the
// tile must forward. Skipped ticks are exactly the ticks that would have
// been no-ops under the original tick-everything loop, so simulated cycle
// counts and all stats are bit-identical; cfg.NoFastPath restores the full
// scan for the determinism regression tests.
func (c *Core) Step() {
	now := c.cycle
	full := c.cfg.NoFastPath
	// Scheduled GDN/GRN deliveries land first.
	c.runEvents(now)
	// Route the operand network, then hand deliveries to the tiles.
	for _, m := range c.opns {
		m.Tick()
	}
	c.pumpOPNDeliveries(now)
	// Control network wave and command delivery.
	c.gcn.Tick()
	c.pumpGCNDeliveries(now)
	c.dsn.Tick()
	// A tile must tick while its chain carries traffic: chain clients
	// forward and consume chain messages inside their own ticks.
	itBusy := full || !c.gsnIT.Quiet()
	rtBusy := full || !c.gsnRT.Quiet()
	dtBusy := full || !c.gsnDT.Quiet() || !c.dsn.Quiet() || c.dsn.Pending() > 0
	// Tiles. Under event-driven stepping (the per-tile clock-domain split) a
	// tile whose remaining work is provably deadline-held dozes — it skips
	// ticks until its wake cycle or an incoming delivery, whichever is first.
	// A skipped tick is exactly a tick that would have been a no-op, so
	// simulated state stays bit-identical to the tick-active-every-cycle
	// discipline; TileTicks/TileSkips record the split for telemetry.
	ed := c.eventDriven
	if !ed || c.gt.wakeAt <= now || c.gtDeliverable() {
		c.gt.tick(now)
		c.TileTicks++
	} else {
		c.TileSkips++
	}
	for _, it := range c.its {
		if it.active || itBusy {
			it.tick(now)
			c.TileTicks++
		} else {
			c.TileSkips++
		}
	}
	for _, r := range c.rts {
		if r.active || rtBusy {
			r.tick(now)
			c.TileTicks++
		} else {
			c.TileSkips++
		}
	}
	for _, e := range c.ets {
		switch {
		case full:
			e.tick(now)
			c.TileTicks++
		case !e.active || (ed && e.wakeAt > now):
			c.TileSkips++
		default:
			e.tick(now)
			c.TileTicks++
		}
	}
	for _, d := range c.dts {
		switch {
		case dtBusy:
			d.tick(now)
			c.TileTicks++
		case !d.active || (ed && d.wakeAt > now):
			c.TileSkips++
		default:
			d.tick(now)
			c.TileTicks++
		}
	}
	// Launch at most one queued GCN command per cycle.
	if !c.gcnQueue.Empty() && c.gcn.CanInject() {
		if c.gcn.Inject(c.gcnQueue.Front()) {
			c.gcnQueue.Pop()
		}
	}
	// Advance all transports.
	for _, m := range c.opns {
		m.Propagate()
	}
	c.gcn.Propagate()
	c.gsnRT.Propagate()
	c.gsnDT.Propagate()
	c.gsnIT.Propagate()
	c.dsn.Propagate()
	if !c.cfg.ExternalMemTick {
		c.mem.Tick()
	}
	if sm := c.metrics; sm != nil {
		sm.Sample(now)
	}
	c.SteppedCycles++
	c.cycle++
}

// gtDeliverable reports whether a message is waiting for the GT right now:
// a status message at the head of any GSN chain, or an operand-network
// delivery addressed to the GT's node. A dozing GT must tick on any of
// these — its doze horizon (warpIdle) is only valid while no delivery can
// reach it, exactly the contract the whole-core warp gate establishes
// globally and this check establishes per-cycle.
func (c *Core) gtDeliverable() bool {
	if _, ok := c.gsnRT.Recv(0); ok {
		return true
	}
	if _, ok := c.gsnDT.Recv(0); ok {
		return true
	}
	if _, ok := c.gsnIT.Recv(0); ok {
		return true
	}
	for _, m := range c.opns {
		if m.PendingDeliveries() == 0 {
			continue
		}
		if _, ok := m.Deliver(gtCoord()); ok {
			return true
		}
	}
	return false
}

// pumpOPNDeliveries routes delivered operand-network messages into ET and
// RT state (the GT and DTs pull from their own queues).
func (c *Core) pumpOPNDeliveries(now int64) {
	for _, m := range c.opns {
		if m.PendingDeliveries() == 0 {
			continue
		}
		for row := 0; row < 5; row++ {
			for col := 0; col < 5; col++ {
				at := micronet.Coord{Row: row, Col: col}
				if at == gtCoord() {
					continue // the GT pulls in its own tick
				}
				for {
					msg, ok := m.Deliver(at)
					if !ok {
						break
					}
					m.Pop(at)
					if c.cfg.SlowOPNRouter {
						c.scheduleEv(now+1, schedEvent{kind: evSlowOPN, at: at, msg: msg})
						continue
					}
					c.routeDelivered(now, at, msg)
				}
			}
		}
	}
}

func (c *Core) routeDelivered(now int64, at micronet.Coord, msg *opnMsg) {
	switch {
	case at.Col == 0:
		// DT column: memory requests queue for the one-per-cycle LSQ port.
		c.dts[at.Row-1].enqueue(msg)
	case at.Row == 0:
		// RT row: register write values (and read-to-write copies).
		if msg.kind != opnOperand || !msg.target.IsWrite() {
			panic("proc: RT received non-write OPN message")
		}
		ev := c.newEvent(now, msg.ev, critpath.Split{
			critpath.CatOPNHop:        int64(msg.hops),
			critpath.CatOPNContention: int64(msg.waits),
		}, critpath.CatOPNHop)
		// Write entry j lives at local queue slot j/4 of RT j%4.
		c.rts[at.Col-1].deliverWrite(now, msg.slot, msg.seq, isa.RTSlotOf(msg.target.Index), msg.val, ev)
		if c.trace != nil {
			c.traceOperand(now, at, msg)
		}
		c.freeOPNMsg(msg)
	default:
		// ET array: operand deliveries.
		if msg.kind != opnOperand {
			panic("proc: ET received non-operand OPN message")
		}
		ev := c.newEvent(now, msg.ev, critpath.Split{
			critpath.CatOPNHop:        int64(msg.hops),
			critpath.CatOPNContention: int64(msg.waits),
		}, critpath.CatOPNHop)
		et := (at.Row-1)*4 + (at.Col - 1)
		c.ets[et].deliverOperand(msg.slot, msg.seq, msg.target, msg.val, ev)
		if c.trace != nil {
			c.traceOperand(now, at, msg)
		}
		c.freeOPNMsg(msg)
	}
}

// traceOperand records one operand delivery with its transport cost (hops
// and contention waits packed into Arg).
func (c *Core) traceOperand(now int64, at micronet.Coord, msg *opnMsg) {
	var tag uint8
	if c.cfg.TrackCritPath {
		tag = uint8(critpath.CatOPNHop) + 1
	}
	c.trace.Emit(obs.Event{
		Cycle: now, Seq: msg.seq, Addr: obs.PackCoord(at.Row, at.Col),
		Arg:  obs.PackPair(msg.hops, msg.waits),
		Kind: obs.KindOperand, Cat: tag, Slot: int16(msg.slot),
	})
}

// pumpGCNDeliveries hands arriving control commands to every tile.
func (c *Core) pumpGCNDeliveries(now int64) {
	if c.gcn.Pending() == 0 {
		return
	}
	for row := 0; row < 5; row++ {
		for col := 0; col < 5; col++ {
			at := micronet.Coord{Row: row, Col: col}
			for {
				cmd, ok := c.gcn.Deliver(at)
				if !ok {
					break
				}
				c.gcn.Pop(at)
				c.applyGCN(now, at, cmd)
			}
		}
	}
}

func (c *Core) applyGCN(now int64, at micronet.Coord, cmd gcnMsg) {
	if at == gtCoord() {
		return // the GT issued it
	}
	switch cmd.kind {
	case gcnCommit:
		switch {
		case at.Row == 0:
			c.rts[at.Col-1].onCommitCommand(now, cmd.slot, cmd.seq, cmd.ev)
		case at.Col == 0:
			c.dts[at.Row-1].onCommitCommand(now, cmd.slot, cmd.seq, cmd.ev)
		default:
			et := (at.Row-1)*4 + (at.Col - 1)
			c.ets[et].onCommit(cmd.slot, cmd.seq)
		}
	case gcnFlush:
		for s := 0; s < NumSlots; s++ {
			if cmd.mask&(1<<uint(s)) == 0 {
				continue
			}
			switch {
			case at.Row == 0:
				c.rts[at.Col-1].flush(s, cmd.seqs[s])
			case at.Col == 0:
				c.dts[at.Row-1].flush(s, cmd.seqs[s])
			default:
				et := (at.Row-1)*4 + (at.Col - 1)
				c.ets[et].flush(s, cmd.seqs[s])
			}
		}
	}
}

// Result summarizes a finished run.
type Result struct {
	Cycles          int64
	CommittedBlocks uint64
	CommittedInsts  uint64
	Flushes         uint64
	Mispredicts     uint64
	Violations      uint64
	IPC             float64
	CritPath        critpath.Report
}

// EventHorizon is optionally implemented by memory backends that can
// fast-forward through idle time. Quiet reports that the backend's next tick
// would do no per-cycle work beyond checking deadline-held completions;
// NextEventCycle returns the earliest backend cycle holding such a
// completion (horizonNever when none is outstanding) — note the backend
// clock runs one ahead of its owner's, so the owner services a backend event
// at cycle R during its own step at cycle R-1; Warp advances the backend
// clock by delta cycles, replaying whatever deterministic state changes the
// skipped ticks would have made (the caller guarantees delta never crosses a
// reported deadline).
//
// Quiet does not mean drained: a backend may report quiet with work in
// flight, as long as every outstanding action resolves at a deadline
// NextEventCycle accounts for — a drain deadline rather than a busy flag.
// nuca.System uses this to let the clock warp across a memory round-trip
// whose only traffic is a single OCN message in transit, whose per-hop
// progress Warp replays exactly.
type EventHorizon interface {
	Quiet() bool
	NextEventCycle() int64
	Warp(delta int64)
}

// Quiescent reports whether the core's next Step would be a pure no-op
// absent scheduled events: every micronet quiet with nothing awaiting
// delivery, no queued GCN command, every tile idle, and the GT in a
// pure-wait state. When the core is quiescent its entire future is a
// function of deadline-held events — the wheel, the GT's fetch-stage
// deadlines, and memory-system completions — so the clock may warp to the
// earliest such horizon (NextEventCycle) without changing any simulated
// outcome.
func (c *Core) Quiescent() bool {
	for _, m := range c.opns {
		if !m.Quiet() {
			return false
		}
	}
	if !c.gcn.Quiet() || c.gcn.Pending() > 0 || !c.gcnQueue.Empty() {
		return false
	}
	if !c.gsnRT.Quiet() || !c.gsnDT.Quiet() || !c.gsnIT.Quiet() {
		return false
	}
	if !c.dsn.Quiet() || c.dsn.Pending() > 0 {
		return false
	}
	for _, it := range c.its {
		if it.active {
			return false
		}
	}
	for _, r := range c.rts {
		if r.active {
			return false
		}
	}
	// A dozing ET or DT counts as quiescent: its remaining work resolves at
	// a wake deadline NextEventCycle folds in, so warping up to that horizon
	// skips only cycles the tile would have skipped anyway. This is how the
	// per-tile clock-domain split generalizes the whole-core warp — a core
	// whose only activity is an ET waiting out a divide or a DT waiting out
	// cache-hit latency can now warp through the wait.
	for _, e := range c.ets {
		if e.active && !(c.eventDriven && e.wakeAt > c.cycle) {
			return false
		}
	}
	for _, d := range c.dts {
		if d.active && !(c.eventDriven && d.wakeAt > c.cycle) {
			return false
		}
	}
	_, ok := c.gt.warpIdle(c.cycle)
	return ok
}

// NextEventCycle returns the earliest future cycle at which a core-internal
// scheduled event fires: the event wheel, its overflow safety map, and the
// GT's deadline-held fetch stages. horizonNever when nothing is scheduled.
// Only meaningful on a Quiescent core (otherwise per-cycle work exists that
// no deadline describes).
func (c *Core) NextEventCycle() int64 {
	h := horizonNever
	for delta := int64(0); delta < wheelSize; delta++ {
		if len(c.wheel[(c.cycle+delta)&wheelMask]) > 0 {
			h = c.cycle + delta
			break
		}
	}
	for cyc := range c.schedOverflow {
		h = micronet.MinHorizon(h, cyc)
	}
	if gh, ok := c.gt.warpIdle(c.cycle); ok {
		h = micronet.MinHorizon(h, gh)
	}
	// Dozing tiles hold deadline-bound work; their wake cycles are events.
	if c.eventDriven {
		for _, e := range c.ets {
			if e.active && e.wakeAt > c.cycle {
				h = micronet.MinHorizon(h, e.wakeAt)
			}
		}
		for _, d := range c.dts {
			if d.active && d.wakeAt > c.cycle {
				h = micronet.MinHorizon(h, d.wakeAt)
			}
		}
	}
	return h
}

// WarpTo jumps the core clock to target. The caller must have established
// quiescence and that no event fires before target: every skipped cycle is
// then exactly a no-op Step, whose only state change — the operand meshes'
// arbitration counters — is replayed here so post-warp arbitration matches
// an unwarped run bit for bit.
func (c *Core) WarpTo(target int64) {
	delta := target - c.cycle
	if delta <= 0 {
		return
	}
	for _, m := range c.opns {
		m.SkipTicks(delta)
	}
	c.cycle = target
}

// RewindTo is the inverse of WarpTo for a warp-only segment: it moves the
// core clock back to target and un-replays the operand meshes' skipped
// arbitration ticks. It is only sound when every cycle in [target, cycle)
// was reached by WarpTo — a warped cycle is exactly a no-op Step, so
// undoing the mesh tick counters restores the pre-warp state bit for bit.
// The bounded-lag coordinator uses this to roll a core back to the effect
// cycle of a response that arrived earlier than its stride assumed.
func (c *Core) RewindTo(target int64) {
	delta := c.cycle - target
	if delta <= 0 {
		return
	}
	for _, m := range c.opns {
		m.RewindTicks(delta)
	}
	c.cycle = target
	c.WarpedCycles -= delta
}

// drainsIdle reports whether every DT has finished pushing committed
// stores into its bank (the background tail of the commit protocol).
func (c *Core) drainsIdle() bool {
	for _, d := range c.dts {
		if d.drainOrder.Len() > 0 || d.wb.valid || len(d.uncachedSt) > 0 {
			return false
		}
	}
	return true
}

// Run executes until every thread halts and all committed stores have
// drained, returning summary statistics.
func (c *Core) Run() (Result, error) {
	limit := c.cfg.MaxCycles
	if limit == 0 {
		limit = 200_000_000
	}
	lastCommit := c.cycle
	lastCount := c.CommittedBlocks
	eh, hasEH := c.mem.(EventHorizon)
	warp := hasEH && !c.cfg.NoFastPath && !c.cfg.NoWarp && !c.cfg.ExternalMemTick
	for !(c.gt.allRetired() && c.drainsIdle()) {
		// Quiescent() is checked first: it fails O(1) on the first busy
		// operand mesh, which is the common case on a loaded core, while
		// the backend's Quiet() walks its banks and ports.
		if warp && c.Quiescent() && eh.Quiet() {
			h := c.NextEventCycle()
			// The backend clock runs one ahead: its event at cycle R is
			// serviced during our step at R-1.
			h = micronet.FoldBackendHorizon(h, eh.NextEventCycle())
			// Clamp so the limit check and commit watchdog below fire at
			// exactly the cycles an unwarped run would report. The clamps
			// also convert a horizonNever result (deadlock: nothing
			// scheduled anywhere) into a warp straight to the nearer
			// boundary, where the same checks fire as in an unwarped run.
			if h > limit {
				h = limit
			}
			if wl := lastCommit + 200_000; h > wl {
				h = wl
			}
			if h > c.cycle {
				c.Warps++
				c.WarpedCycles += h - c.cycle
				eh.Warp(h - c.cycle)
				c.WarpTo(h)
			}
		}
		// The step at cycle == limit still runs (a core retiring during
		// that very cycle succeeds); the error fires only once the clock
		// has passed the limit with blocks outstanding.
		if c.cycle > limit {
			return Result{}, fmt.Errorf("proc: cycle limit %d exceeded (%d blocks committed)", limit, c.CommittedBlocks)
		}
		c.Step()
		if c.CommittedBlocks != lastCount {
			lastCount = c.CommittedBlocks
			lastCommit = c.cycle
			if c.ckptFn != nil && c.cycle > c.ckptAt {
				fn := c.ckptFn
				c.ckptFn = nil
				if err := fn(c.cycle); err != nil {
					return Result{}, fmt.Errorf("proc: checkpoint at cycle %d: %w", c.cycle, err)
				}
			}
		} else if c.cycle-lastCommit > 200_000 {
			return Result{}, fmt.Errorf("proc: no commit in 200000 cycles at cycle %d (%d blocks committed): deadlock", c.cycle, c.CommittedBlocks)
		}
	}
	return c.buildResult(), nil
}

// buildResult summarizes the run; shared by Run and the bounded-lag runner.
func (c *Core) buildResult() Result {
	res := Result{
		Cycles:          c.cycle,
		CommittedBlocks: c.CommittedBlocks,
		CommittedInsts:  c.CommittedInsts,
		Flushes:         uint64(c.gt.Flushes),
		Mispredicts:     c.gt.Mispredicts,
		Violations:      c.gt.ViolationFlushes,
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.CommittedInsts) / float64(res.Cycles)
	}
	if c.cfg.TrackCritPath && c.gt.lastCommitEv != nil {
		res.CritPath = critpath.Finish(c.gt.lastCommitEv)
	}
	return res
}

// DebugState summarizes per-tile block state for deadlock diagnosis.
func (c *Core) DebugState() string {
	var b []byte
	app := func(f string, a ...any) { b = fmt.Appendf(b, f, a...) }
	for s := 0; s < NumSlots; s++ {
		bc := &c.gt.slots[s]
		if !bc.valid {
			continue
		}
		app("slot %d seq=%d addr=%#x br=%v w=%v s=%v cs=%v ackR=%v ackS=%v\n",
			s, bc.seq, bc.addr, bc.branchSeen, bc.writesDone, bc.storesDone, bc.commitSent, bc.ackR, bc.ackS)
		for i, d := range c.dts {
			app("  dt%d seen=%x mask=%x known=%v inQ=%d stalled=%d conflict=%d loads=%d stores=%d\n",
				i, d.storeSeen[s], d.storeMask[s], d.maskKnown[s], d.inQ.Len(), len(d.stalled), len(d.conflictLoads), d.Loads, d.Stores)
		}
		for i, e := range c.ets {
			live := 0
			for k := range e.stations[s] {
				st := &e.stations[s][k]
				if st.present && !st.fired {
					live++
				}
			}
			if live > 0 {
				app("  et%d unfired=%d outQ=%d pipe=%d\n", i, live, e.outQ.Len(), len(e.pipe))
			}
		}
	}
	return string(b)
}

// Done reports whether every thread has halted with all blocks retired and
// all committed stores drained.
func (c *Core) Done() bool { return c.gt.allRetired() && c.drainsIdle() }

// SetCheckpointHook arms fn to run once, at the first cycle boundary after
// `at` at which a block committed during the preceding cycle. Committing is
// the quiesce point of the distributed protocols: at that boundary every
// tile's state is a pure function of the architecture, so a checkpoint
// taken there restores bit-identically. fn receives the capture cycle.
func (c *Core) SetCheckpointHook(at int64, fn func(cycle int64) error) {
	c.ckptAt = at
	c.ckptFn = fn
}

// SetRollbackHook arms fn to observe bounded-lag effect-gate rewinds when
// this core runs under a RunLag wrapper: owner is the memory-port owner id,
// from the cycle the core had run ahead to, effect the rewound-to cycle.
// Observability only — fn must not touch simulated state.
func (c *Core) SetRollbackHook(fn func(owner int, from, effect int64)) {
	c.onRollback = fn
}

// SetLagFaults sets the bounded-lag fault-injection knobs the RunLag
// wrappers forward to the coordinator: horizonOverride forces every stride
// horizon to G+n, deadlinePad overshoots every response deadline by n
// cycles (see LagConfig). Both make rollbacks reachable on demand while
// results stay bit-identical; never set them outside tests or debugging
// walkthroughs.
func (c *Core) SetLagFaults(horizonOverride, deadlinePad int64) {
	c.lagHorizonOverride = horizonOverride
	c.lagDeadlinePad = deadlinePad
}

// Result returns the current run statistics (used by chip-level loops
// that step cores manually instead of calling Run).
func (c *Core) Result() Result {
	res := Result{
		Cycles:          c.cycle,
		CommittedBlocks: c.CommittedBlocks,
		CommittedInsts:  c.CommittedInsts,
		Flushes:         c.gt.Flushes,
		Mispredicts:     c.gt.Mispredicts,
		Violations:      c.gt.ViolationFlushes,
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.CommittedInsts) / float64(res.Cycles)
	}
	if c.cfg.TrackCritPath && c.gt.lastCommitEv != nil {
		res.CritPath = critpath.Finish(c.gt.lastCommitEv)
	}
	return res
}

// Register reads an architectural register after (or during) a run.
func (c *Core) Register(thread, r int) uint64 {
	return c.rts[r%4].regs[thread][r/4]
}

// SetRegister initializes an architectural register before a run.
func (c *Core) SetRegister(thread, r int, v uint64) {
	c.rts[r%4].regs[thread][r/4] = v
}

// FlushCaches writes all dirty data-cache lines back to memory so final
// results are visible in the backing store, retrying submissions that the
// port backpressures and ticking the memory system until they land.
func (c *Core) FlushCaches() {
	// Drain the commit pipelines and write buffers into the banks first.
	for i := 0; i < 1_000_000; i++ {
		busy := false
		for _, d := range c.dts {
			if d.drainOrder.Len() > 0 || d.wb.valid {
				busy = true
				d.pumpDrain(c.cycle)
				d.pumpFetch()
				d.drainWriteBuffer()
			}
		}
		if !busy {
			break
		}
		c.mem.Tick()
	}
	outstanding := 0
	for _, d := range c.dts {
		for _, v := range d.bank.DirtyLines() {
			req := &MemRequest{Addr: v.Addr, Data: v.Data, IsWrite: true,
				Done: func([]byte) { outstanding-- }}
			outstanding++
			for !d.port.Submit(req) {
				c.mem.Tick()
			}
		}
	}
	for i := 0; outstanding > 0 && i < 1_000_000; i++ {
		c.mem.Tick()
	}
}
