// Package proc assembles the TRIPS processor core: one global control tile,
// five instruction tiles, four register tiles, sixteen execution tiles and
// four data tiles, connected by the seven micronetworks of paper Figure 3,
// and running the four distributed protocols of Section 4 — block fetch,
// distributed execution, block/pipeline flush, and three-phase block commit.
package proc

import (
	"trips/internal/critpath"
	"trips/internal/isa"
	"trips/internal/micronet"
)

// Value is a 64-bit operand with a null bit. Nullified values propagate
// along untaken predicate paths so that stores and register writes on those
// paths still issue (as nullified outputs) and the block's output counts
// hold on every execution (paper Section 2.1).
type Value struct {
	Bits uint64
	Null bool
}

// opnKind discriminates the payloads carried on the operand network.
type opnKind uint8

const (
	opnOperand  opnKind = iota // value -> ET reservation station or RT write entry
	opnBranch                  // block exit -> GT
	opnLoadReq                 // ET -> DT: load address
	opnStoreReq                // ET -> DT: store address + data (possibly nullified)
)

// opnMsg is one operand-network message (141-bit links: a 64-bit data
// payload preceded by a control header, paper Section 3). The control
// header launched a cycle ahead of the data is modeled by delivering the
// message and allowing the consumer to wake and issue in back-to-back
// cycles, so each hop between dependent instructions costs exactly one
// cycle (Section 4.2).
type opnMsg struct {
	dst    micronet.Coord
	kind   opnKind
	slot   int    // block frame 0..7
	seq    uint64 // dynamic block number, for staleness filtering
	thread int

	// opnOperand / load reply payload.
	target isa.Target
	val    Value

	// opnBranch payload.
	brOp     isa.Opcode
	brExit   int
	brOffset int32

	// opnLoadReq / opnStoreReq payload.
	lsid  int
	memOp isa.Opcode
	addr  uint64
	data  Value
	ldT0  isa.Target // load reply targets
	ldT1  isa.Target

	// Transport accounting (paper Table 3: OPN hops vs contention).
	hops, waits int

	// tid is the per-message trace id stamped by a traced mesh at Inject
	// (0 when tracing is off; cleared by the pool reset in freeOPNMsg).
	tid uint64

	// Critical-path dependency carried with the message.
	ev *critpath.Event
}

func (m *opnMsg) Dest() micronet.Coord { return m.dst }
func (m *opnMsg) NoteHop()             { m.hops++ }
func (m *opnMsg) NoteWait()            { m.waits++ }

// SetTraceID / TraceID implement micronet.TraceIdent so a traced OPN can
// stitch a message's inject/hop/deliver events into one flow.
func (m *opnMsg) SetTraceID(id uint64) { m.tid = id }
func (m *opnMsg) TraceID() uint64      { return m.tid }

// gsnKind discriminates global status network messages.
type gsnKind uint8

const (
	gsnFinishR   gsnKind = iota // all register writes for a block received (RT chain)
	gsnFinishS                  // all stores for a block received (DT chain)
	gsnAckR                     // register commit acknowledged (RT chain)
	gsnAckS                     // store commit acknowledged (DT chain)
	gsnRefill                   // I-cache refill complete (IT chain)
	gsnViolation                // memory-ordering violation detected (DT chain)
)

// gsnMsg is one global status network message (6-bit links in Table 2; the
// violation report rides the same wires over multiple beats in hardware).
type gsnMsg struct {
	kind gsnKind
	slot int
	seq  uint64
	// violation payload
	violSeq  uint64 // block containing the violated load
	violAddr uint64 // load address, for dependence-predictor training
	ev       *critpath.Event
}

// gcnKind discriminates global control network commands.
type gcnKind uint8

const (
	gcnCommit gcnKind = iota
	gcnFlush
)

// gcnMsg is one global control network command (13-bit links): commit one
// block, or flush a set of blocks identified by a slot mask (Section 4.3:
// "The GCN includes a block identifier mask indicating which block or
// blocks must be flushed").
type gcnMsg struct {
	kind gcnKind
	slot int    // commit: the committing block's frame
	seq  uint64 // commit: its dynamic number
	mask uint8  // flush: bit per slot
	seqs [8]uint64
	ev   *critpath.Event
}

// grnMsg is one global refill network command (36-bit links): the physical
// address of the block whose chunks the ITs must fetch (Section 4.1).
type grnMsg struct {
	addr uint64
	slot int
	seq  uint64
}

// dsnMsg is one data status network notice (72-bit links): an executed
// store's LSID and block identity, broadcast among the DTs so each can
// track store completion without knowing the store's address (Section 4.4).
type dsnMsg struct {
	slot   int
	seq    uint64
	thread int
	lsid   int
	ev     *critpath.Event
}
