package proc

import (
	"testing"

	"trips/internal/isa"
	"trips/internal/mem"
)

// storeLoadProgram: block A stores r8 to [r12]; block B loads [r12] into
// r16; then halt. Exercises cross-block memory ordering: B's load issues
// aggressively and may be violated by A's store, forcing a distributed
// flush and replay, or may be correctly held back / forwarded.
func storeLoadProgram(t *testing.T) *Program {
	t.Helper()
	a := &isa.Block{Addr: 0x1000, Name: "store"}
	a.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(0)} // data
	a.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(0)} // address
	a.Insts = []isa.Inst{
		{Op: isa.SD, Imm: 0, LSID: 0},
		{Op: isa.BRO, Exit: 0, Offset: branchOffset(0x1000, 0x2000)},
	}
	b := &isa.Block{Addr: 0x2000, Name: "load"}
	b.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(0)}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
	b.Insts = []isa.Inst{
		{Op: isa.LD, Imm: 0, LSID: 0, T0: isa.ToWrite(0)},
		{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x2000)},
	}
	p, err := NewProgram(a.Addr, []*isa.Block{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCrossBlockStoreLoadOrdering(t *testing.T) {
	p := storeLoadProgram(t)
	c := newTestCore(t, p, nil)
	c.SetRegister(0, 8, 0xfeedface)
	c.SetRegister(0, 13, 0x8000)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 16); got != 0xfeedface {
		t.Errorf("loaded r16 = %#x, want 0xfeedface (violations=%d)", got, res.Violations)
	}
}

func TestDependencePredictorAvoidsRepeatViolations(t *testing.T) {
	// Loop the store/load pair many times through fresh cores sharing
	// nothing; within ONE run, a loop re-executing the same conflicting
	// pair must not violate every iteration once the predictor trains.
	loopA := &isa.Block{Addr: 0x1000, Name: "sl-loop"}
	loopA.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToRight(0)} // data = i
	loopA.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(0)} // addr
	loopA.Reads[2] = isa.ReadInst{Valid: true, GR: 14, RT0: isa.ToLeft(2)} // addr again for load
	loopA.Reads[3] = isa.ReadInst{Valid: true, GR: 19, RT0: isa.ToLeft(3)} // n
	loopA.Writes[0] = isa.WriteInst{Valid: true, GR: 8}                    // i+1
	loopA.Writes[1] = isa.WriteInst{Valid: true, GR: 17}                   // loaded value
	loopA.Insts = []isa.Inst{
		{Op: isa.SD, Imm: 0, LSID: 0}, // [addr] = i
		{Op: isa.NOP},
		{Op: isa.LD, Imm: 0, LSID: 1, T0: isa.ToWrite(1)},       // load [addr]
		{Op: isa.TGT, T0: isa.ToPred(4), T1: isa.ToPred(5)},     // n > i+1 ?
		{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 0}, // loop
		{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: haltOffset(0x1000)},
		{Op: isa.ADDI, Imm: 1, T0: isa.ToLeft(7)},             // i+1 -> fan
		{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToRight(3)}, // i+1 -> W0, test
	}
	// Wire: i (r8) feeds store data and the incrementer.
	loopA.Reads[0].RT1 = isa.ToLeft(6)
	p, err := NewProgram(loopA.Addr, []*isa.Block{loopA})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCore(t, p, nil)
	c.SetRegister(0, 8, 0)
	c.SetRegister(0, 13, 0x8000)
	c.SetRegister(0, 14, 0x8000)
	c.SetRegister(0, 19, 40)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 17); got != 39 {
		t.Errorf("final loaded value = %d, want 39", got)
	}
	if res.Violations >= 40 {
		t.Errorf("dependence predictor never learned: %d violations over 40 iterations", res.Violations)
	}
}

func TestEightBlocksInFlight(t *testing.T) {
	// A long chain of dependent-free blocks: with 8 frames and pipelined
	// fetch every 8 cycles, many blocks overlap. The run must commit all
	// blocks in order and the window must give real overlap (cycles much
	// less than blocks x single-block latency).
	var blocks []*isa.Block
	n := 32
	for i := 0; i < n; i++ {
		addr := uint64(0x1000 + i*0x100)
		b := &isa.Block{Addr: addr, Name: "chain"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		next := addr + 0x100
		off := branchOffset(addr, next)
		if i == n-1 {
			off = haltOffset(addr)
		}
		b.Insts = []isa.Inst{
			{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
			{Op: isa.BRO, Exit: 0, Offset: off},
		}
		blocks = append(blocks, b)
	}
	p, err := NewProgram(blocks[0].Addr, blocks)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCore(t, p, nil)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 8); got != uint64(n) {
		t.Errorf("r8 = %d, want %d", got, n)
	}
	if res.CommittedBlocks != uint64(n) {
		t.Errorf("committed %d blocks, want %d", res.CommittedBlocks, n)
	}
	// Sequential (unpipelined) execution would cost well over 60 cycles
	// per block (fetch 13 + execute + complete + commit round trips).
	// Overlap must bring the steady-state rate far below that.
	perBlock := float64(res.Cycles) / float64(n)
	if perBlock > 45 {
		t.Errorf("%.1f cycles/block: the 8-deep block window is not overlapping (total %d)", perBlock, res.Cycles)
	}
}

func TestSMTTwoThreads(t *testing.T) {
	// Two threads run independent accumulation loops over disjoint
	// registers (per-thread register files) and addresses.
	mk := func(base uint64) *isa.Block {
		b := &isa.Block{Addr: base, Name: "smt-loop"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		b.Reads[1] = isa.ReadInst{Valid: true, GR: 13, RT0: isa.ToLeft(1)}
		b.Reads[2] = isa.ReadInst{Valid: true, GR: 18, RT0: isa.ToRight(2)}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		b.Writes[1] = isa.WriteInst{Valid: true, GR: 13}
		b.Insts = []isa.Inst{
			{Op: isa.ADDI, Imm: 1, T0: isa.ToLeft(4)},
			{Op: isa.ADD, T0: isa.ToWrite(1)},
			{Op: isa.TLT, T0: isa.ToPred(5), T1: isa.ToPred(6)},
			{Op: isa.NOP},
			{Op: isa.MOV, T0: isa.ToWrite(0), T1: isa.ToLeft(7)},
			{Op: isa.BRO, Pred: isa.PredOnTrue, Exit: 1, Offset: 0},
			{Op: isa.BRO, Pred: isa.PredOnFalse, Exit: 0, Offset: haltOffset(base)},
			{Op: isa.MOV, T0: isa.ToRight(1), T1: isa.ToLeft(2)},
		}
		return b
	}
	b0 := mk(0x2000)
	b1 := mk(0x4000)
	p, err := NewProgram(b0.Addr, []*isa.Block{b0, b1})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if err := p.Image(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(Config{
		Program:   p,
		Mem:       NewFixedLatencyMem(m, 20),
		Entries:   []uint64{0x2000, 0x4000},
		MaxCycles: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetRegister(0, 18, 10) // thread 0: n = 10
	c.SetRegister(1, 18, 7)  // thread 1: n = 7
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 13); got != 55 {
		t.Errorf("thread 0 sum = %d, want 55", got)
	}
	if got := c.Register(1, 13); got != 28 {
		t.Errorf("thread 1 sum = %d, want 28", got)
	}
	if res.CommittedBlocks != 17 {
		t.Errorf("committed %d blocks, want 17", res.CommittedBlocks)
	}
}

func TestDivergentPredicationBothPaths(t *testing.T) {
	// abs(): w0 = r8 < 0 ? -r8 : r8, using complementary predicated movs
	// feeding one write entry.
	b := &isa.Block{Addr: 0x1000, Name: "abs"}
	b.Writes[0] = isa.WriteInst{Valid: true, GR: 16}
	b.Insts = []isa.Inst{
		{Op: isa.TLTI, Imm: 0, T0: isa.ToLeft(6)},               // p = r8 < 0 (I-format: one target)
		{Op: isa.MOV, T0: isa.ToRight(3), T1: isa.ToLeft(4)},    // fan r8
		{Op: isa.MOVI, Imm: 0, T0: isa.ToLeft(3)},               // 0
		{Op: isa.SUB, Pred: isa.PredOnTrue, T0: isa.ToWrite(0)}, // 0 - r8
		{Op: isa.ADDI, Pred: isa.PredOnFalse, Imm: 0, T0: isa.ToWrite(0)},
		{Op: isa.BRO, Exit: 0, Offset: haltOffset(0x1000)},
		{Op: isa.MOV, T0: isa.ToPred(3), T1: isa.ToPred(4)}, // fan the predicate
	}
	b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0), RT1: isa.ToLeft(1)}
	for _, tc := range []struct{ in, want int64 }{{-42, 42}, {42, 42}, {0, 0}} {
		p, err := NewProgram(b.Addr, []*isa.Block{b})
		if err != nil {
			t.Fatal(err)
		}
		c := newTestCore(t, p, nil)
		c.SetRegister(0, 8, uint64(tc.in))
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if got := int64(c.Register(0, 16)); got != tc.want {
			t.Errorf("abs(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestICacheCapacityEviction(t *testing.T) {
	// More than 128 static blocks forces tag evictions and re-refills.
	var blocks []*isa.Block
	n := 150
	for i := 0; i < n; i++ {
		addr := uint64(0x10000 + i*0x100)
		b := &isa.Block{Addr: addr, Name: "big"}
		b.Reads[0] = isa.ReadInst{Valid: true, GR: 8, RT0: isa.ToLeft(0)}
		b.Writes[0] = isa.WriteInst{Valid: true, GR: 8}
		off := branchOffset(addr, addr+0x100)
		if i == n-1 {
			off = haltOffset(addr)
		}
		b.Insts = []isa.Inst{
			{Op: isa.ADDI, Imm: 1, T0: isa.ToWrite(0)},
			{Op: isa.BRO, Exit: 0, Offset: off},
		}
		blocks = append(blocks, b)
	}
	p, err := NewProgram(blocks[0].Addr, blocks)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCore(t, p, nil)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Register(0, 8); got != uint64(n) {
		t.Errorf("r8 = %d, want %d", got, n)
	}
	if res.CommittedBlocks != uint64(n) {
		t.Errorf("committed %d, want %d", res.CommittedBlocks, n)
	}
	if len(c.gt.tags) > c.gt.tagCap {
		t.Errorf("tag array holds %d entries, cap %d", len(c.gt.tags), c.gt.tagCap)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Result, uint64) {
		p := loopProgram(t)
		c := newTestCore(t, p, nil)
		c.SetRegister(0, 18, 25)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, c.Register(0, 13)
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1.Cycles != r2.Cycles || s1 != s2 || r1.Mispredicts != r2.Mispredicts {
		t.Errorf("nondeterministic: run1 = (%d cycles, sum %d, %d misp), run2 = (%d, %d, %d)",
			r1.Cycles, s1, r1.Mispredicts, r2.Cycles, s2, r2.Mispredicts)
	}
}
