// Package ckpt defines the on-disk checkpoint container and the low-level
// serialization primitives the simulator's state savers build on.
//
// A checkpoint file is a self-describing framed binary:
//
//	offset  size  field
//	0       8     magic "TRIPSCKP"
//	8       4     format version (little-endian u32)
//	12      32    content hash: sha256 over the (program, config) identity
//	44      8     payload length (little-endian u64)
//	52      n     payload (written by the component SaveState methods)
//	52+n    32    sha256 of the payload
//
// The content hash binds a checkpoint to the exact program image and
// simulator configuration that produced it: restoring onto a mismatched
// build fails loudly (ErrContentHash) instead of silently diverging.
// The trailing payload checksum catches corruption and truncation.
//
// Within the payload, Writer/Reader provide little-endian primitives with
// a sticky error model: every Reader accessor bounds-checks, and the first
// failure poisons the reader so callers can decode a whole section and
// check Err() once. Section markers (a tag byte plus the section name)
// are interleaved with the data so a reader/writer drift fails at the
// mismatched section name instead of producing garbage state.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Version is the current checkpoint format version. Bump it whenever the
// payload layout changes; old files then fail with ErrVersion.
const Version = 1

var magic = [8]byte{'T', 'R', 'I', 'P', 'S', 'C', 'K', 'P'}

// Sentinel errors for the failure modes a restore can hit. All errors
// returned by ReadFile wrap one of these.
var (
	ErrMagic       = errors.New("ckpt: not a TRIPS checkpoint (bad magic)")
	ErrVersion     = errors.New("ckpt: unsupported checkpoint version")
	ErrContentHash = errors.New("ckpt: checkpoint does not match this program/config")
	ErrCorrupt     = errors.New("ckpt: checkpoint corrupted or truncated")
)

// maxPayload bounds how much ReadFile will allocate for a payload; real
// checkpoints are a few MB, so 1 GiB means a corrupted length field fails
// cleanly instead of attempting an absurd allocation.
const maxPayload = 1 << 30

// Hash is the 32-byte content hash binding a checkpoint to its origin.
type Hash [32]byte

func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// HashContent folds the given byte chunks into a content hash. Callers
// pass the program image plus a canonical rendering of the configuration.
func HashContent(parts ...[]byte) Hash {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// WriteFile frames the payload and writes the complete checkpoint to w.
func WriteFile(w io.Writer, content Hash, payload []byte) error {
	hdr := make([]byte, 0, 52)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = append(hdr, content[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("ckpt: writing payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("ckpt: writing checksum: %w", err)
	}
	noteWrite(len(hdr) + len(payload) + len(sum))
	return nil
}

// ReadFile validates the framing and returns the payload. The caller's
// expected content hash must match the one recorded in the file; pass the
// hash computed from the restoring run's own program and config.
func ReadFile(r io.Reader, want Hash) ([]byte, error) {
	var hdr [52]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if [8]byte(hdr[0:8]) != magic {
		return nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	var got Hash
	copy(got[:], hdr[12:44])
	if got != want {
		stats.hashFailures.Add(1)
		return nil, fmt.Errorf("%w: file was taken with %s, this run is %s", ErrContentHash, got, want)
	}
	stats.hashChecks.Add(1)
	n := binary.LittleEndian.Uint64(hdr[44:52])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	var sum [32]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorrupt, err)
	}
	if sum != sha256.Sum256(payload) {
		stats.hashFailures.Add(1)
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	stats.hashChecks.Add(1)
	noteRead(len(hdr) + len(payload) + len(sum))
	return payload, nil
}

// Writer accumulates a payload in memory. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Payload returns the accumulated payload.
func (w *Writer) Payload() []byte { return w.buf }

// Reset truncates the payload to zero length, keeping the allocated buffer
// for reuse. The flight recorder's rolling ring recycles slot buffers this
// way so steady-state captures stop allocating once the ring warms up.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

const sectionTag = 0xA5

// Section writes a named marker. Pair with Reader.Section to catch
// writer/reader drift at the point of divergence.
func (w *Writer) Section(name string) {
	w.buf = append(w.buf, sectionTag)
	w.String(name)
}

func (w *Writer) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }

// Int writes a host int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes writes a length-prefixed byte slice (nil writes length 0).
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes a payload produced by Writer. The first decoding failure
// sticks: every later accessor returns a zero value, so callers can decode
// a whole section and check Err once.
type Reader struct {
	buf   []byte
	off   int
	err   error
	maxID uint64
}

// NewReader wraps a payload for decoding.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err reports the first decoding failure, if any.
func (r *Reader) Err() error { return r.err }

// NoteID records an allocator-issued id decoded from the payload; MaxID
// returns the largest noted so far. Restore paths use the pair to resume
// host-side id allocators (message trace ids) past every restored id, so
// ids allocated after a restore never collide with ids still in flight.
func (r *Reader) NoteID(id uint64) {
	if id > r.maxID {
		r.maxID = id
	}
}

// MaxID returns the largest id recorded by NoteID.
func (r *Reader) MaxID() uint64 { return r.maxID }

// Remaining returns how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Failf records a structural mismatch discovered by the caller (for
// example, a serialized count that disagrees with the live topology) as a
// sticky corruption error. Subsequent accessors return zero values.
func (r *Reader) Failf(format string, args ...any) {
	r.fail(format, args...)
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format+" (offset %d)", append(append([]any{ErrCorrupt}, args...), r.off)...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) || n < 0 {
		r.fail("need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Section checks the next bytes are a marker for the named section.
func (r *Reader) Section(name string) {
	if r.err != nil {
		return
	}
	at := r.off
	tag := r.U8()
	if r.err == nil && tag != sectionTag {
		r.off = at
		r.fail("expected section %q, found data", name)
		return
	}
	got := r.String()
	if r.err == nil && got != name {
		r.fail("expected section %q, found %q", name, got)
	}
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a value written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes reads a length-prefixed byte slice. The result is a fresh copy.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Close asserts the payload was fully consumed; trailing bytes mean the
// reader and writer disagree about the layout.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		r.fail("%d trailing bytes", len(r.buf)-r.off)
	}
	return r.err
}
