package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// The save/restore counters sit at the WriteFile/ReadFile choke point:
// every successful write bumps frames/bytes written, every successful read
// bumps frames/bytes read plus two passed hash checks (content hash and
// payload checksum), and mismatches land in HashFailures instead.
func TestStatsCounters(t *testing.T) {
	ResetStats()
	content := HashContent([]byte("prog"), []byte("cfg"))
	payload := []byte("payload bytes")

	var buf bytes.Buffer
	if err := WriteFile(&buf, content, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	s := Stats()
	if s.FramesWritten != 1 {
		t.Fatalf("FramesWritten = %d, want 1", s.FramesWritten)
	}
	if want := uint64(len(frame)); s.BytesWritten != want {
		t.Fatalf("BytesWritten = %d, want %d (full frame)", s.BytesWritten, want)
	}
	if s.FramesRead != 0 || s.HashChecks != 0 || s.HashFailures != 0 {
		t.Fatalf("read-side counters dirty before any read: %+v", s)
	}

	if _, err := ReadFile(bytes.NewReader(frame), content); err != nil {
		t.Fatal(err)
	}
	s = Stats()
	if s.FramesRead != 1 {
		t.Fatalf("FramesRead = %d, want 1", s.FramesRead)
	}
	if want := uint64(len(frame)); s.BytesRead != want {
		t.Fatalf("BytesRead = %d, want %d", s.BytesRead, want)
	}
	if s.HashChecks != 2 {
		t.Fatalf("HashChecks = %d, want 2 (content hash + payload checksum)", s.HashChecks)
	}

	// A content-hash mismatch counts as a failure, not a read.
	other := HashContent([]byte("different"))
	if _, err := ReadFile(bytes.NewReader(frame), other); !errors.Is(err, ErrContentHash) {
		t.Fatalf("expected ErrContentHash, got %v", err)
	}
	// A flipped payload byte fails the checksum after the content hash
	// passes.
	bad := append([]byte(nil), frame...)
	bad[52] ^= 0xff
	if _, err := ReadFile(bytes.NewReader(bad), content); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
	s = Stats()
	if s.HashFailures != 2 {
		t.Fatalf("HashFailures = %d, want 2", s.HashFailures)
	}
	if s.FramesRead != 1 {
		t.Fatalf("FramesRead = %d after failed reads, want still 1", s.FramesRead)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.Bytes([]byte("0123456789"))
	if w.Len() == 0 {
		t.Fatal("expected non-empty payload")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.U32(7)
	r := NewReader(w.Payload())
	if got := r.U32(); got != 7 {
		t.Fatalf("U32 after Reset = %d, want 7", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
