package ckpt

import "sync/atomic"

// Package-level save/restore counters. Checkpoint traffic flows through
// WriteFile/ReadFile from several layers (tsim -checkpoint-out, SimPoint
// sampling, the flight recorder's rolling ring), so the counters live here
// at the choke point rather than in each caller. All fields are updated
// atomically; snapshots are safe from any goroutine.
var stats struct {
	framesWritten atomic.Uint64
	bytesWritten  atomic.Uint64
	framesRead    atomic.Uint64
	bytesRead     atomic.Uint64
	hashChecks    atomic.Uint64
	hashFailures  atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the package counters.
type StatsSnapshot struct {
	// FramesWritten / BytesWritten count successful WriteFile calls and the
	// total bytes they framed (header + payload + checksum).
	FramesWritten uint64
	BytesWritten  uint64
	// FramesRead / BytesRead count successful ReadFile calls — i.e.
	// restores — and the bytes they validated.
	FramesRead uint64
	BytesRead  uint64
	// HashChecks counts content-hash and payload-checksum verifications
	// that passed; HashFailures counts mismatches (ErrContentHash or
	// checksum corruption).
	HashChecks   uint64
	HashFailures uint64
}

// Stats returns a snapshot of the package counters.
func Stats() StatsSnapshot {
	return StatsSnapshot{
		FramesWritten: stats.framesWritten.Load(),
		BytesWritten:  stats.bytesWritten.Load(),
		FramesRead:    stats.framesRead.Load(),
		BytesRead:     stats.bytesRead.Load(),
		HashChecks:    stats.hashChecks.Load(),
		HashFailures:  stats.hashFailures.Load(),
	}
}

// ResetStats zeroes the package counters (tests only).
func ResetStats() {
	stats.framesWritten.Store(0)
	stats.bytesWritten.Store(0)
	stats.framesRead.Store(0)
	stats.bytesRead.Store(0)
	stats.hashChecks.Store(0)
	stats.hashFailures.Store(0)
}

func noteWrite(totalBytes int) {
	stats.framesWritten.Add(1)
	stats.bytesWritten.Add(uint64(totalBytes))
}

func noteRead(totalBytes int) {
	stats.framesRead.Add(1)
	stats.bytesRead.Add(uint64(totalBytes))
}
