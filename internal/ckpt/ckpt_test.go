package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var w Writer
	w.Section("hdr")
	w.U8(0xAB)
	w.U16(0xCDEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.String("hello")
	w.Section("tail")

	r := NewReader(w.Payload())
	r.Section("hdr")
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("nil Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	r.Section("tail")
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	var w Writer
	w.Section("alpha")
	w.U32(7)
	r := NewReader(w.Payload())
	r.Section("beta")
	if r.Err() == nil {
		t.Fatal("mismatched section name not detected")
	}
	// Missing marker entirely.
	r2 := NewReader([]byte{0, 0, 0, 0})
	r2.Section("alpha")
	if r2.Err() == nil {
		t.Fatal("absent section marker not detected")
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // out of bounds
	if r.Err() == nil {
		t.Fatal("short read not detected")
	}
	first := r.Err()
	_ = r.U32()
	_ = r.String()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestTrailingBytes(t *testing.T) {
	var w Writer
	w.U32(1)
	w.U32(2)
	r := NewReader(w.Payload())
	_ = r.U32()
	if err := r.Close(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestFileRoundTrip(t *testing.T) {
	payload := []byte("some machine state")
	h := HashContent([]byte("program"), []byte("config"))
	var buf bytes.Buffer
	if err := WriteFile(&buf, h, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(bytes.NewReader(buf.Bytes()), h)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestFileHashMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, HashContent([]byte("a")), []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(bytes.NewReader(buf.Bytes()), HashContent([]byte("b")))
	if !errors.Is(err, ErrContentHash) {
		t.Fatalf("want ErrContentHash, got %v", err)
	}
}

func TestFileBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, Hash{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xFF
	_, err := ReadFile(bytes.NewReader(b), Hash{})
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
}

func TestFileBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, Hash{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99
	_, err := ReadFile(bytes.NewReader(b), Hash{})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

// TestFileCorruptionFuzz flips or truncates random positions and asserts a
// clean sentinel error in every case — never a panic, never silent success.
func TestFileCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	payload := make([]byte, 4096)
	rng.Read(payload)
	h := HashContent(payload[:16])
	var buf bytes.Buffer
	if err := WriteFile(&buf, h, payload); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	for trial := 0; trial < 200; trial++ {
		b := append([]byte(nil), whole...)
		if trial%2 == 0 {
			// Truncate somewhere.
			b = b[:rng.Intn(len(b))]
		} else {
			// Flip a byte anywhere in the file.
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		got, err := ReadFile(bytes.NewReader(b), h)
		if err == nil {
			// A flip inside the payload must still be caught by the checksum;
			// the only acceptable "success" is a byte-identical payload (e.g.
			// a flip that restored the original — impossible with XOR != 0).
			if !bytes.Equal(got, payload) {
				t.Fatalf("trial %d: corruption accepted", trial)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMagic) &&
			!errors.Is(err, ErrVersion) && !errors.Is(err, ErrContentHash) {
			t.Fatalf("trial %d: non-sentinel error %v", trial, err)
		}
	}
}

func TestHashContentPartBoundaries(t *testing.T) {
	if HashContent([]byte("ab"), []byte("c")) == HashContent([]byte("a"), []byte("bc")) {
		t.Fatal("part boundaries not bound into the hash")
	}
}
