package mem

import (
	"sort"

	"trips/internal/ckpt"
)

// SaveState serializes the sparse memory, pages in ascending page-number
// order for a deterministic byte stream.
func (m *Memory) SaveState(w *ckpt.Writer) {
	w.Section("mem")
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.Int(len(pns))
	for _, pn := range pns {
		w.U64(pn)
		w.Bytes(m.pages[pn])
	}
}

// LoadState replaces the memory contents with the serialized pages.
func (m *Memory) LoadState(r *ckpt.Reader) {
	r.Section("mem")
	n := r.Int()
	if r.Err() != nil {
		return
	}
	m.pages = make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		pn := r.U64()
		data := r.Bytes()
		if r.Err() != nil {
			return
		}
		m.pages[pn] = data
	}
}
