// Package mem provides the sparse byte-addressable physical memory backing
// the simulated TRIPS chip: the SDRAM behind the secondary memory system,
// and the flat memory used by the golden-model interpreter and the Alpha
// baseline. Values are little-endian.
package mem

const pageBits = 12

// Memory is a sparse 64-bit physical address space allocated in 4KB pages.
// The zero value is an empty memory ready to use.
type Memory struct {
	pages map[uint64][]byte
}

// New returns an empty memory.
func New() *Memory { return &Memory{} }

func (m *Memory) page(addr uint64, create bool) []byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64][]byte)
	}
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && create {
		p = make([]byte, 1<<pageBits)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies n bytes starting at addr into a fresh slice. Unwritten
// memory reads as zero.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		a := addr + uint64(i)
		off := int(a & (1<<pageBits - 1))
		chunk := min(n-i, 1<<pageBits-off)
		if p := m.page(a, false); p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores data starting at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for i := 0; i < len(data); {
		a := addr + uint64(i)
		off := int(a & (1<<pageBits - 1))
		chunk := min(len(data)-i, 1<<pageBits-off)
		p := m.page(a, true)
		copy(p[off:off+chunk], data[i:i+chunk])
		i += chunk
	}
}

// Read loads a width-byte little-endian value (width 1, 2, 4 or 8),
// optionally sign-extending it to 64 bits.
func (m *Memory) Read(addr uint64, width int, signed bool) uint64 {
	b := m.ReadBytes(addr, width)
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	if signed && width < 8 {
		shift := uint(64 - 8*width)
		v = uint64(int64(v<<shift) >> shift)
	}
	return v
}

// Write stores the low width bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, width int, v uint64) {
	b := make([]byte, width)
	for i := 0; i < width; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteBytes(addr, b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
