package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Point is one retained sample of a series.
type Point struct {
	Cycle int64
	Value int64
}

// Histogram is a log2-bucketed value histogram: bucket i counts values v
// with bits.Len64(v) == i, i.e. bucket 0 holds zeros, bucket 1 holds 1,
// bucket 2 holds 2..3, bucket 3 holds 4..7, and so on.
type Histogram struct {
	Buckets [65]uint64
}

// Add counts one value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Buckets[bits.Len64(uint64(v))]++
}

// BucketRange returns the [lo, hi] value range of bucket i.
func (h *Histogram) BucketRange(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// String renders the non-empty buckets compactly.
func (h *Histogram) String() string {
	var parts []string
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := h.BucketRange(i)
		if lo == hi {
			parts = append(parts, fmt.Sprintf("%d:%d", lo, n))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d:%d", lo, hi, n))
		}
	}
	if parts == nil {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// Series is one sampled metric: a bounded time series (downsampled in place
// as it fills), an occupancy histogram, and running aggregates. The
// aggregates are published through atomics so a debug HTTP handler can read
// them while the simulation goroutine keeps sampling.
type Series struct {
	Name string
	Hist Histogram

	fn       func() int64
	pts      []Point
	interval int64 // current retention interval (doubles on downsample)

	last  atomic.Int64
	max   atomic.Int64
	sum   atomic.Int64
	count atomic.Int64
}

// Points returns the retained samples oldest-first.
func (s *Series) Points() []Point { return s.pts }

// Last, Max, Mean and Count report the running aggregates (atomic reads,
// safe from other goroutines).
func (s *Series) Last() int64  { return s.last.Load() }
func (s *Series) Max() int64   { return s.max.Load() }
func (s *Series) Count() int64 { return s.count.Load() }
func (s *Series) Mean() float64 {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	return float64(s.sum.Load()) / float64(n)
}

func (s *Series) record(cycle, v int64) {
	s.Hist.Add(v)
	s.last.Store(v)
	if v > s.max.Load() {
		s.max.Store(v)
	}
	s.sum.Add(v)
	s.count.Add(1)
	if len(s.pts) == cap(s.pts) {
		// Ring full: halve resolution (keep every other point) so a long
		// run retains full-span coverage in bounded memory.
		half := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			half = append(half, s.pts[i])
		}
		s.pts = half
	}
	s.pts = append(s.pts, Point{Cycle: cycle, Value: v})
}

// Sampler drives a set of Series at a fixed cycle interval. Components call
// Sample once per stepped cycle behind a nil check; Sample returns
// immediately until the next due cycle. Registration must finish before the
// run starts; sampling itself is single-goroutine (pair a Sampler with one
// stepping loop).
type Sampler struct {
	// Interval is the sampling period in cycles.
	Interval int64

	next   int64
	series []*Series
}

// DefaultSampleInterval balances resolution against sampling cost.
const DefaultSampleInterval = 256

// maxPoints bounds each series' retained time series (~1MB per series at
// the default; downsampling keeps whole-run coverage).
const maxPoints = 1 << 15

// NewSampler builds a sampler (interval <= 0 selects the default).
func NewSampler(interval int64) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{Interval: interval}
}

// Register adds a metric source. fn is called at every sample point from
// the owning simulation goroutine.
func (s *Sampler) Register(name string, fn func() int64) *Series {
	sr := &Series{Name: name, fn: fn, pts: make([]Point, 0, maxPoints)}
	s.series = append(s.series, sr)
	return sr
}

// Sample records one sample of every series when due. Clock-warped runs
// call it only on stepped cycles, so warped gaps appear as gaps in the
// retained series — which is exactly the warp-engagement signal.
func (s *Sampler) Sample(cycle int64) {
	if cycle < s.next {
		return
	}
	s.next = cycle + s.Interval
	for _, sr := range s.series {
		sr.record(cycle, sr.fn())
	}
}

// Series returns the registered series sorted by name.
func (s *Sampler) Series() []*Series {
	out := append([]*Series(nil), s.series...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Summary renders per-series aggregates and histograms.
func (s *Sampler) Summary() string {
	var b strings.Builder
	for _, sr := range s.Series() {
		fmt.Fprintf(&b, "%-22s samples %-8d last %-6d mean %-8.2f max %-6d hist %s\n",
			sr.Name, sr.Count(), sr.Last(), sr.Mean(), sr.Max(), sr.Hist.String())
	}
	return b.String()
}
