package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"trips/internal/critpath"
)

// TraceEvent is one Chrome trace-event JSON record (the subset the exporter
// emits; loadable by Perfetto and chrome://tracing). Timestamps are in the
// file's microsecond unit but carry simulated cycles directly: one trace
// "µs" = one cycle.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON object container ({"traceEvents": [...]}).
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Exporter track layout.
const (
	pidBlocks  = 1 // block protocol lifecycle; tid = frame slot
	pidNetBase = 2 // one pid per traced network (pidNetBase + net id)
	pidMetrics = 20
	tidFetch   = 100 // fetch-pipeline instants (no frame yet)
)

func catName(c uint8) string {
	if c == 0 {
		return ""
	}
	return critpath.Cat(c - 1).String()
}

// blockState accumulates one block's lifecycle while scanning the ring.
type blockState struct {
	seq          uint64
	addr         uint64
	slot         int
	first, last  int64
	firstOperand int64
	lastOperand  int64
	flushed      bool
}

// BuildChrome converts the tracer ring (and optional sampled metrics) into
// Chrome trace-event form.
func BuildChrome(t *Tracer, s *Sampler) *TraceFile {
	f := &TraceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "1 trace us = 1 simulated cycle"},
	}
	meta := func(pid int, name string) {
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidBlocks, "block protocol (tid = frame slot)")
	meta(pidMetrics, "sampled metrics")

	blocks := map[uint64]*blockState{}
	netsSeen := map[uint8]bool{}
	events := t.Events()
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindNetInject, KindNetHop, KindNetDeliver:
			f.TraceEvents = append(f.TraceEvents, netEvent(ev))
			if !netsSeen[ev.Net] {
				netsSeen[ev.Net] = true
				meta(pidNetBase+int(ev.Net), "net "+NetName(ev.Net))
			}
			continue
		case KindBlockFetch:
			f.TraceEvents = append(f.TraceEvents, TraceEvent{
				Name: ev.Kind.String(), Cat: catName(ev.Cat), Ph: "i", S: "t",
				Ts: ev.Cycle, Pid: pidBlocks, Tid: tidFetch,
				Args: map[string]any{"addr": hex(ev.Addr)},
			})
			continue
		case KindFlushWave:
			f.TraceEvents = append(f.TraceEvents, TraceEvent{
				Name: ev.Kind.String(), Cat: catName(ev.Cat), Ph: "i", S: "p",
				Ts: ev.Cycle, Pid: pidBlocks, Tid: tidFetch,
				Args: map[string]any{"from_seq": ev.Seq, "slot_mask": ev.Arg},
			})
			continue
		}
		// Per-block lifecycle events.
		b := blocks[ev.Seq]
		if b == nil {
			b = &blockState{seq: ev.Seq, slot: int(ev.Slot), first: ev.Cycle, firstOperand: -1}
			blocks[ev.Seq] = b
		}
		if ev.Cycle > b.last {
			b.last = ev.Cycle
		}
		switch ev.Kind {
		case KindBlockDispatch:
			b.addr = ev.Addr
			b.slot = int(ev.Slot)
			b.first = ev.Cycle
		case KindOperand:
			if b.firstOperand < 0 {
				b.firstOperand = ev.Cycle
			}
			b.lastOperand = ev.Cycle
			continue // rendered as first/last instants, not one per delivery
		}
		args := map[string]any{"seq": ev.Seq}
		if ev.Kind == KindStoreMask {
			args["dt"] = ev.Arg
		} else if ev.Addr != 0 {
			args["addr"] = hex(ev.Addr)
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: ev.Kind.String(), Cat: catName(ev.Cat), Ph: "i", S: "t",
			Ts: ev.Cycle, Pid: pidBlocks, Tid: int(ev.Slot), Args: args,
		})
	}

	// One "X" slice per block spanning dispatch..last-event, plus derived
	// first/last operand instants.
	seqs := make([]uint64, 0, len(blocks))
	for seq := range blocks {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		b := blocks[seq]
		dur := b.last - b.first
		if dur < 1 {
			dur = 1
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("block %s", hex(b.addr)), Ph: "X",
			Ts: b.first, Dur: dur, Pid: pidBlocks, Tid: b.slot,
			Args: map[string]any{"seq": b.seq, "addr": hex(b.addr)},
		})
		if b.firstOperand >= 0 {
			for _, p := range []struct {
				name string
				ts   int64
			}{{"first-operand", b.firstOperand}, {"last-operand", b.lastOperand}} {
				f.TraceEvents = append(f.TraceEvents, TraceEvent{
					Name: p.name, Ph: "i", S: "t", Ts: p.ts,
					Pid: pidBlocks, Tid: b.slot,
					Args: map[string]any{"seq": b.seq},
				})
			}
		}
	}

	// Sampled metrics as counter tracks.
	if s != nil {
		for _, sr := range s.Series() {
			for _, p := range sr.Points() {
				f.TraceEvents = append(f.TraceEvents, TraceEvent{
					Name: sr.Name, Ph: "C", Ts: p.Cycle, Pid: pidMetrics,
					Args: map[string]any{"value": p.Value},
				})
			}
		}
	}

	if d := t.Dropped(); d > 0 {
		f.OtherData["dropped_events"] = d
	}
	f.OtherData["total_events"] = t.Total()
	return f
}

// netEvent renders one micronet message event as an async ("b"/"n"/"e")
// event: Perfetto groups the three phases of one message by (cat, id) into
// a single flow, so each traced message becomes a row of hops.
func netEvent(ev *Event) TraceEvent {
	var ph string
	switch ev.Kind {
	case KindNetInject:
		ph = "b"
	case KindNetHop:
		ph = "n"
	default:
		ph = "e"
	}
	row, col := UnpackCoord(ev.Addr)
	args := map[string]any{"at": fmt.Sprintf("(%d,%d)", row, col)}
	if ev.Kind == KindNetInject {
		dr, dc := UnpackCoord(ev.Arg)
		args["dest"] = fmt.Sprintf("(%d,%d)", dr, dc)
	}
	if ev.Kind == KindNetDeliver && ev.Arg != 0 {
		hops, waits := UnpackPair(ev.Arg)
		args["hops"], args["waits"] = hops, waits
	}
	return TraceEvent{
		Name: "xfer", Cat: NetName(ev.Net), Ph: ph, Ts: ev.Cycle,
		Pid: pidNetBase + int(ev.Net), Tid: 0,
		ID:   fmt.Sprintf("%s-%d", NetName(ev.Net), ev.Seq),
		Args: args,
	}
}

func hex(v uint64) string { return fmt.Sprintf("%#x", v) }

// WriteChrome writes the trace as Chrome trace-event JSON.
func WriteChrome(w io.Writer, t *Tracer, s *Sampler) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChrome(t, s))
}

// WriteChromeFile writes the trace to a file.
func WriteChromeFile(path string, t *Tracer, s *Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, t, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
