// Package obs is the simulator's observability layer: a ring-buffered
// structured event tracer for block-protocol lifecycle and micronet hop
// events (exported as Chrome/Perfetto trace-event JSON), cycle-sampled
// metrics with occupancy histograms, and a debug HTTP endpoint serving
// expvar and pprof for long evaluation runs.
//
// Everything here is nil-gated at the call sites: a component holds a
// *Tracer or *Sampler pointer that is nil when observability is off, and
// every hot-path hook is a single pointer compare. With tracing disabled
// the simulated cycle counts are bit-identical (observation never mutates
// simulated state) and the hot path allocates nothing extra — both are
// enforced by tests.
package obs

// Kind discriminates trace events.
type Kind uint8

const (
	// Block protocol lifecycle (paper Figure 5: fetch, execute, commit).
	KindBlockFetch    Kind = iota + 1 // GT began fetching Addr (no seq yet)
	KindBlockDispatch                 // frame allocated, GDN dispatch scheduled
	KindOperand                       // OPN operand delivered to an ET/RT; Arg packs hops<<32|waits
	KindStoreMask                     // store mask arrived at DT Arg
	KindWritesDone                    // GSN finish-R reached the GT
	KindStoresDone                    // GSN finish-S reached the GT
	KindBlockComplete                 // branch + writes + stores all seen
	KindCommitCmd                     // GCN commit command issued
	KindCommitAckR                    // GSN register-commit ack reached the GT
	KindCommitAckS                    // GSN store-commit ack reached the GT
	KindBlockAcked                    // block deallocated (phase three done)
	KindFlushWave                     // GCN flush wave; Seq = oldest flushed seq, Arg = slot mask

	// Micronet transport (per-message; Seq carries the message trace id).
	KindNetInject  // Addr = packed source coord, Arg = packed dest coord
	KindNetHop     // Addr = packed coord the message left
	KindNetDeliver // Addr = packed destination coord

	// Checkpoint capture: a framed machine-state checkpoint was written at
	// this cycle (a block-commit boundary); Arg = payload length in bytes.
	KindCkpt
)

func (k Kind) String() string {
	switch k {
	case KindBlockFetch:
		return "fetch"
	case KindBlockDispatch:
		return "dispatch"
	case KindOperand:
		return "operand"
	case KindStoreMask:
		return "store-mask"
	case KindWritesDone:
		return "writes-done"
	case KindStoresDone:
		return "stores-done"
	case KindBlockComplete:
		return "complete"
	case KindCommitCmd:
		return "commit-cmd"
	case KindCommitAckR:
		return "commit-ack-r"
	case KindCommitAckS:
		return "commit-ack-s"
	case KindBlockAcked:
		return "acked"
	case KindFlushWave:
		return "flush"
	case KindNetInject:
		return "inject"
	case KindNetHop:
		return "hop"
	case KindNetDeliver:
		return "deliver"
	case KindCkpt:
		return "ckpt"
	}
	return "?"
}

// Network ids for Event.Net (Table 2's micronetworks; only the two meshes
// carry per-message trace hooks, the rest contribute aggregate counters).
const (
	NetOPN0 uint8 = iota
	NetOPN1
	NetOCN
	NumNets
)

// NetName names a network id in trace output.
func NetName(n uint8) string {
	switch n {
	case NetOPN0:
		return "OPN0"
	case NetOPN1:
		return "OPN1"
	case NetOCN:
		return "OCN"
	}
	return "net?"
}

// Event is one fixed-size trace record. The meaning of Seq/Addr/Arg depends
// on Kind (see the Kind constants). Cat carries critpath.Cat+1 when the
// critical-path analyzer is on, 0 when untagged.
type Event struct {
	Cycle int64
	Seq   uint64
	Addr  uint64
	Arg   uint64
	Kind  Kind
	Net   uint8
	Cat   uint8
	Slot  int16
}

// PackCoord packs a mesh coordinate into an Event field.
func PackCoord(row, col int) uint64 {
	return uint64(uint32(row))<<32 | uint64(uint32(col))
}

// UnpackCoord reverses PackCoord.
func UnpackCoord(v uint64) (row, col int) {
	return int(uint32(v >> 32)), int(uint32(v))
}

// PackPair packs two 32-bit counters (e.g. hops and waits) into an Arg.
func PackPair(hi, lo int) uint64 {
	return uint64(uint32(hi))<<32 | uint64(uint32(lo))
}

// UnpackPair reverses PackPair.
func UnpackPair(v uint64) (hi, lo int) {
	return int(uint32(v >> 32)), int(uint32(v))
}

// Tracer records events into a preallocated ring buffer. Emit never
// allocates; once the ring wraps, the oldest events are overwritten (the
// export notes how many were dropped). A Tracer is single-goroutine: under
// the chip's parallel core stepping each core needs its own Tracer.
type Tracer struct {
	buf    []Event
	n      uint64 // total events ever emitted
	nextID uint64 // message trace-id allocator
}

// DefaultTracerCap is the default ring capacity (~48MB of events); plenty
// for the Figure 5 workloads and bounded for long runs.
const DefaultTracerCap = 1 << 20

// NewTracer builds a tracer with the given ring capacity (0 = default).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event. Hot-path callers must guard with a nil check on
// their tracer pointer; Emit itself is also nil-safe for cold paths.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.n%uint64(cap(t.buf))] = ev
	}
	t.n++
}

// NextID allocates a message trace id (never 0).
func (t *Tracer) NextID() uint64 {
	t.nextID++
	return t.nextID
}

// ReserveIDs advances the trace-id allocator so every id up to and
// including max is considered spent. Restore paths call it with the largest
// trace id found in a checkpoint: in-flight messages keep their
// checkpointed ids, so without the reservation a restored run's fresh
// allocations would eventually collide with them. Nil-safe (untraced runs
// restore with no tracer attached).
func (t *Tracer) ReserveIDs(max uint64) {
	if t == nil {
		return
	}
	if max > t.nextID {
		t.nextID = max
	}
}

// Total returns the number of events ever emitted (including overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	if t.n <= uint64(cap(t.buf)) {
		return t.buf
	}
	// Ring wrapped: unroll around the write cursor.
	cut := int(t.n % uint64(cap(t.buf)))
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[cut:]...)
	out = append(out, t.buf[:cut]...)
	return out
}
