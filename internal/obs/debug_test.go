package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// debugGet drives one request through the debug mux and returns the body.
func debugGet(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugVarsExposesSampler(t *testing.T) {
	s := NewSampler(0)
	strides := s.Register("lag.strides", func() int64 { return 0 })
	s.Register("eval.progress", func() int64 { return 0 })
	PublishSampler("debugtest", s)
	strides.record(1, 7)
	strides.record(2, 3)

	code, body := debugGet(t, DebugMux(), "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	raw, ok := vars["debugtest"]
	if !ok {
		t.Fatalf("published sampler missing from expvar output; keys: %d", len(vars))
	}
	var agg map[string]struct {
		Last  int64   `json:"last"`
		Max   int64   `json:"max"`
		Mean  float64 `json:"mean"`
		Count int64   `json:"count"`
	}
	if err := json.Unmarshal(raw, &agg); err != nil {
		t.Fatal(err)
	}
	st, ok := agg["lag.strides"]
	if !ok {
		t.Fatalf("lag.strides series missing: %v", agg)
	}
	if st.Last != 3 || st.Max != 7 || st.Count != 2 || st.Mean != 5 {
		t.Errorf("lag.strides aggregates wrong: %+v", st)
	}
	if _, ok := agg["eval.progress"]; !ok {
		t.Errorf("eval.progress series missing: %v", agg)
	}
}

func TestPublishSamplerReplaces(t *testing.T) {
	a := NewSampler(0)
	a.Register("v", func() int64 { return 0 }).record(1, 1)
	PublishSampler("debugtest-replace", a)
	// A second publish under the same name must not panic (expvar.Publish
	// would) and must replace the sampler both in expvar and /metrics.
	b := NewSampler(0)
	b.Register("v", func() int64 { return 0 }).record(1, 42)
	PublishSampler("debugtest-replace", b)

	_, body := debugGet(t, DebugMux(), "/debug/vars")
	if !strings.Contains(body, `"debugtest-replace"`) {
		t.Fatal("replaced sampler missing from expvar output")
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatal(err)
	}
	var agg map[string]map[string]float64
	if err := json.Unmarshal(vars["debugtest-replace"], &agg); err != nil {
		t.Fatal(err)
	}
	if got := agg["v"]["last"]; got != 42 {
		t.Errorf("expvar reads the stale sampler: last = %v, want 42", got)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	s := NewSampler(0)
	s.Register("flight.dumps", func() int64 { return 0 }).record(1, 2)
	PublishSampler("debugtest-metrics", s)

	code, body := debugGet(t, DebugMux(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if !strings.Contains(body, "# TYPE trips_flight_dumps gauge") {
		t.Errorf("missing TYPE line for trips_flight_dumps:\n%s", body)
	}
	if !strings.Contains(body, `trips_flight_dumps{source="debugtest-metrics",agg="last"} 2`) {
		t.Errorf("missing last gauge:\n%s", body)
	}
	if !strings.Contains(body, `trips_flight_dumps{source="debugtest-metrics",agg="count"} 1`) {
		t.Errorf("missing count gauge:\n%s", body)
	}
	// Metric names must stay inside the Prometheus alphabet.
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, "trips_") && strings.Contains(line, ".") &&
			!strings.Contains(line, "\"") {
			t.Errorf("unsanitized metric name in %q", line)
		}
	}
}

func TestDebugPprofRoutes(t *testing.T) {
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		code, _ := debugGet(t, DebugMux(), path)
		if code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, code)
		}
	}
}

func TestDebugRootHelp(t *testing.T) {
	code, body := debugGet(t, DebugMux(), "/")
	if code != http.StatusOK {
		t.Fatalf("GET /: status %d", code)
	}
	for _, want := range []string{"/debug/vars", "/debug/pprof/", "/metrics"} {
		if !strings.Contains(body, want) {
			t.Errorf("root help does not mention %s: %q", want, body)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"lag.strides":        "lag_strides",
		"ckpt.bytes_written": "ckpt_bytes_written",
		"a-b c":              "a_b_c",
		"OK_9":               "OK_9",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
