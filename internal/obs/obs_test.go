package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: int64(i), Seq: uint64(i), Kind: KindOperand})
	}
	if got := tr.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	// Oldest-first: the survivors are events 6..9.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("Events()[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerNoWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Seq: uint64(i)})
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() returned %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("Events()[%d].Seq = %d, want %d", i, ev.Seq, i)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindBlockFetch}) // must not panic
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer should report zero events")
	}
}

func TestTracerNextID(t *testing.T) {
	tr := NewTracer(4)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := tr.NextID()
		if id == 0 {
			t.Fatal("NextID returned 0; 0 is reserved for untagged messages")
		}
		if seen[id] {
			t.Fatalf("NextID returned duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestPackUnpackCoord(t *testing.T) {
	for _, c := range []struct{ row, col int }{{0, 0}, {3, 9}, {4, 0}, {1, 2}} {
		r, cc := UnpackCoord(PackCoord(c.row, c.col))
		if r != c.row || cc != c.col {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.row, c.col, r, cc)
		}
	}
}

func TestPackUnpackPair(t *testing.T) {
	hi, lo := UnpackPair(PackPair(7, 1234))
	if hi != 7 || lo != 1234 {
		t.Errorf("round trip (7,1234) -> (%d,%d)", hi, lo)
	}
}

func TestKindStrings(t *testing.T) {
	// Every defined kind must have a distinct, non-"?" name: the Chrome
	// exporter uses them as event names.
	seen := map[string]Kind{}
	for k := KindBlockFetch; k <= KindNetDeliver; k++ {
		s := k.String()
		if s == "?" {
			t.Errorf("Kind(%d) has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Kind(%d) and Kind(%d) share name %q", k, prev, s)
		}
		seen[s] = k
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -5} {
		h.Add(v)
	}
	// bucket 0: {0, -5(clamped)}, bucket 1: {1}, bucket 2: {2,3},
	// bucket 3: {4,7}, bucket 4: {8}
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1}
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if lo, hi := h.BucketRange(3); lo != 4 || hi != 7 {
		t.Errorf("BucketRange(3) = [%d,%d], want [4,7]", lo, hi)
	}
}

func TestSamplerIntervalAndAggregates(t *testing.T) {
	s := NewSampler(10)
	v := int64(0)
	sr := s.Register("test", func() int64 { return v })
	for cyc := int64(0); cyc < 100; cyc++ {
		v = cyc
		s.Sample(cyc)
	}
	if got := sr.Count(); got != 10 {
		t.Errorf("Count() = %d, want 10 (one sample per interval)", got)
	}
	if got := sr.Last(); got != 90 {
		t.Errorf("Last() = %d, want 90", got)
	}
	if got := sr.Max(); got != 90 {
		t.Errorf("Max() = %d, want 90", got)
	}
	if got := sr.Mean(); got != 45 {
		t.Errorf("Mean() = %v, want 45", got)
	}
	pts := sr.Points()
	if len(pts) != 10 {
		t.Fatalf("retained %d points, want 10", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycle <= pts[i-1].Cycle {
			t.Errorf("points not cycle-ordered: %v then %v", pts[i-1], pts[i])
		}
	}
}

func TestSamplerSkipsWarpedGaps(t *testing.T) {
	// A warped run only calls Sample on stepped cycles; a jump past the due
	// point must sample once at the next stepped cycle, not retroactively.
	s := NewSampler(10)
	sr := s.Register("test", func() int64 { return 1 })
	s.Sample(0)
	s.Sample(500) // warp jumped 0 -> 500
	if got := sr.Count(); got != 2 {
		t.Errorf("Count() = %d, want 2 (no retroactive fill across the warp)", got)
	}
}

func TestBuildChromeRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	id := tr.NextID()
	tr.Emit(Event{Cycle: 5, Kind: KindBlockDispatch, Seq: 1, Addr: 0x10000, Slot: 2})
	tr.Emit(Event{Cycle: 6, Kind: KindNetInject, Seq: id, Net: NetOPN0,
		Addr: PackCoord(0, 0), Arg: PackCoord(2, 3)})
	tr.Emit(Event{Cycle: 7, Kind: KindNetHop, Seq: id, Net: NetOPN0, Addr: PackCoord(1, 0)})
	tr.Emit(Event{Cycle: 9, Kind: KindNetDeliver, Seq: id, Net: NetOPN0,
		Addr: PackCoord(2, 3), Arg: PackPair(5, 2)})
	tr.Emit(Event{Cycle: 9, Kind: KindOperand, Seq: 1, Slot: 2})
	tr.Emit(Event{Cycle: 12, Kind: KindBlockComplete, Seq: 1, Slot: 2})
	tr.Emit(Event{Cycle: 14, Kind: KindBlockAcked, Seq: 1, Slot: 2})

	s := NewSampler(1)
	s.Register("occ", func() int64 { return 3 })
	s.Sample(10)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, s); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}

	phases := map[string]int{}
	names := map[string]int{}
	for _, ev := range f.TraceEvents {
		phases[ev.Ph]++
		names[ev.Name]++
	}
	// One async begin/hop/end triple for the message, a block "X" slice,
	// lifecycle instants, a counter sample, and process metadata.
	for ph, want := range map[string]int{"b": 1, "n": 1, "e": 1, "X": 1, "C": 1} {
		if phases[ph] != want {
			t.Errorf("phase %q count = %d, want %d (events: %+v)", ph, phases[ph], want, names)
		}
	}
	for _, name := range []string{"dispatch", "complete", "acked", "first-operand", "last-operand", "block 0x10000"} {
		if names[name] == 0 {
			t.Errorf("missing expected event name %q", name)
		}
	}
	if f.OtherData["total_events"] == nil {
		t.Error("OtherData missing total_events")
	}
}

func TestBuildChromeReportsDropped(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindBlockFetch, Addr: 0x100})
	}
	f := BuildChrome(tr, nil)
	if d, ok := f.OtherData["dropped_events"].(uint64); !ok || d != 3 {
		t.Errorf("dropped_events = %v, want 3", f.OtherData["dropped_events"])
	}
}
