package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts a debug HTTP server on addr (e.g. "localhost:6060")
// serving expvar under /debug/vars and net/http/pprof under /debug/pprof/.
// It returns the bound listener address (useful with ":0") and runs the
// server on a background goroutine for the life of the process — intended
// for watching long evaluation runs, so there is no shutdown plumbing.
func ServeDebug(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "trips debug endpoint: /debug/vars (expvar), /debug/pprof/ (pprof)")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// PublishSampler exposes a sampler's running aggregates as one expvar map.
// Only the atomically-maintained aggregates are read (never the point
// slices), so the HTTP goroutine can poll while the simulation samples.
func PublishSampler(name string, s *Sampler) {
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		for _, sr := range s.Series() {
			out[sr.Name] = map[string]any{
				"last":  sr.Last(),
				"max":   sr.Max(),
				"mean":  sr.Mean(),
				"count": sr.Count(),
			}
		}
		return out
	}))
}
