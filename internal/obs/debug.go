package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// DebugMux builds the debug HTTP handler tree: expvar under /debug/vars,
// net/http/pprof under /debug/pprof/, and the published samplers in
// Prometheus text format under /metrics. Split out from ServeDebug so tests
// can drive it through httptest without binding a port.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", metricsHandler)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "trips debug endpoint: /debug/vars (expvar), /debug/pprof/ (pprof), /metrics (prometheus)")
	})
	return mux
}

// ServeDebug starts a debug HTTP server on addr (e.g. "localhost:6060")
// serving the DebugMux routes. It returns the bound listener address
// (useful with ":0") and runs the server on a background goroutine for the
// life of the process — intended for watching long evaluation runs, so
// there is no shutdown plumbing.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// published is the registry behind both /debug/vars sampler maps and
// /metrics. PublishSampler replaces an existing entry (a long-lived process
// can run many evaluations under one name); the expvar func reads through
// the registry so the replacement is visible there too.
var published struct {
	sync.Mutex
	samplers map[string]*Sampler
}

// PublishSampler exposes a sampler's running aggregates as one expvar map
// and as /metrics gauges. Only the atomically-maintained aggregates are
// read (never the point slices), so the HTTP goroutine can poll while the
// simulation samples. Publishing the same name again replaces the sampler.
func PublishSampler(name string, s *Sampler) {
	published.Lock()
	if published.samplers == nil {
		published.samplers = make(map[string]*Sampler)
	}
	_, replaced := published.samplers[name]
	published.samplers[name] = s
	published.Unlock()
	if replaced {
		// expvar.Publish panics on duplicate names; the registered func
		// below already reads the registry, so nothing else to do.
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		published.Lock()
		cur := published.samplers[name]
		published.Unlock()
		out := map[string]any{}
		if cur == nil {
			return out
		}
		for _, sr := range cur.Series() {
			out[sr.Name] = map[string]any{
				"last":  sr.Last(),
				"max":   sr.Max(),
				"mean":  sr.Mean(),
				"count": sr.Count(),
			}
		}
		return out
	}))
}

// metricsHandler renders every published sampler in the Prometheus text
// exposition format (version 0.0.4): one gauge per series aggregate, the
// series name sanitized into a metric name, the publishing source and the
// aggregate kind as labels. Deterministic output order (sorted sources,
// then series) keeps scrapes diffable.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	published.Lock()
	names := make([]string, 0, len(published.samplers))
	for n := range published.samplers {
		names = append(names, n)
	}
	samplers := make(map[string]*Sampler, len(published.samplers))
	for n, s := range published.samplers {
		samplers[n] = s
	}
	published.Unlock()
	sort.Strings(names)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	seen := map[string]bool{}
	for _, src := range names {
		series := samplers[src].Series()
		sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
		for _, sr := range series {
			metric := "trips_" + sanitizeMetricName(sr.Name)
			if !seen[metric] {
				seen[metric] = true
				fmt.Fprintf(w, "# TYPE %s gauge\n", metric)
			}
			fmt.Fprintf(w, "%s{source=%q,agg=\"last\"} %d\n", metric, src, sr.Last())
			fmt.Fprintf(w, "%s{source=%q,agg=\"max\"} %d\n", metric, src, sr.Max())
			fmt.Fprintf(w, "%s{source=%q,agg=\"mean\"} %g\n", metric, src, sr.Mean())
			fmt.Fprintf(w, "%s{source=%q,agg=\"count\"} %d\n", metric, src, sr.Count())
		}
	}
}

// sanitizeMetricName maps a series name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_] ("lag.strides" -> "lag_strides").
func sanitizeMetricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
