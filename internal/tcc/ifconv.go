package tcc

import (
	"trips/internal/tir"
)

// pinst is a possibly-predicated TIR instruction inside a hyperblock.
type pinst struct {
	inst     tir.Inst
	hasPred  bool
	pred     tir.Reg
	predTrue bool
	// isPhi marks a merge-point select: dst = pred ? phiT : phiF. It
	// expands to two complementary predicated movs at codegen.
	isPhi bool
	phiT  tir.Reg
	phiF  tir.Reg
}

func (p *pinst) uses() []tir.Reg {
	var u []tir.Reg
	if p.isPhi {
		u = append(u, p.phiT, p.phiF)
	} else {
		if p.inst.Op.UsesA() {
			u = append(u, p.inst.A)
		}
		if p.inst.Op.UsesB() {
			u = append(u, p.inst.B)
		}
	}
	if p.hasPred {
		u = append(u, p.pred)
	}
	return u
}

func (p *pinst) def() (tir.Reg, bool) {
	if p.isPhi {
		return p.inst.Dst, true
	}
	if p.inst.Op.WritesDst() {
		return p.inst.Dst, true
	}
	return 0, false
}

// hblock is a hyperblock: predicated straight-line code with one
// terminator. Initially hyperblocks mirror TIR basic blocks 1:1;
// if-conversion merges diamonds and triangles.
type hblock struct {
	label    string
	pinsts   []pinst
	term     tir.Term // Then/Else refer to TIR BBs; resolved via the cfg
	termCond tir.Reg
	merged   bool // contains predicated code (single-level predication)
	bb       *tir.BB
}

// cfg is the hyperblock-level control flow graph under construction.
type cfg struct {
	f     *tir.Func
	hbs   []*hblock
	owner map[*tir.BB]*hblock // which hyperblock a TIR BB now lives in
}

// succs resolves a hyperblock's successor hyperblocks.
func (c *cfg) succs(h *hblock) []*hblock {
	var out []*hblock
	switch h.term.Kind {
	case tir.TermJump:
		out = append(out, c.owner[h.term.Then])
	case tir.TermBranch:
		out = append(out, c.owner[h.term.Then], c.owner[h.term.Else])
	}
	return out
}

// fromCFG builds the initial 1:1 hyperblocks.
func fromCFG(f *tir.Func) *cfg {
	c := &cfg{f: f, owner: make(map[*tir.BB]*hblock, len(f.Blocks))}
	for _, b := range f.Blocks {
		hb := &hblock{label: b.Label, term: b.Term, termCond: b.Term.Cond, bb: b}
		for _, in := range b.Insts {
			hb.pinsts = append(hb.pinsts, pinst{inst: in})
		}
		c.owner[b] = hb
		c.hbs = append(c.hbs, hb)
	}
	return c
}

// ifConvertLimit bounds the merged hyperblock's TIR size so the TRIPS block
// stays within its 128-instruction / 32-memory-op budget after fanout and
// constant expansion.
const ifConvertLimit = 48

// ifConvert repeatedly merges branch diamonds and triangles into predicated
// hyperblocks (hand-optimized mode).
func (c *cfg) ifConvert() {
	preds := func() map[*hblock]int {
		p := map[*hblock]int{}
		for _, hb := range c.hbs {
			if hb == nil {
				continue
			}
			for _, s := range c.succs(hb) {
				p[s]++
			}
		}
		return p
	}
	for changed := true; changed; {
		changed = false
		p := preds()
		for _, h := range c.hbs {
			if h == nil || h.merged || h.term.Kind != tir.TermBranch {
				continue
			}
			thb := c.owner[h.term.Then]
			ehb := c.owner[h.term.Else]
			if thb == nil || ehb == nil || thb == ehb || thb == h || ehb == h {
				continue
			}
			// Diamond: H -> T, H -> E; T and E jump to common J.
			if c.isArm(thb, p) && c.isArm(ehb, p) {
				tj := c.owner[thb.term.Then]
				ej := c.owner[ehb.term.Then]
				if tj != nil && tj == ej && tj != h && p[tj] == 2 &&
					sizeOK(h, thb, ehb, tj) {
					c.mergeDiamond(h, thb, ehb, tj)
					c.remove(thb, ehb, tj)
					changed = true
					break
				}
			}
			// Triangle: H -> T -> J, H -> J.
			if c.isArm(thb, p) && c.owner[thb.term.Then] == ehb && p[ehb] == 2 &&
				sizeOK(h, thb, ehb) {
				c.mergeTriangle(h, thb, ehb, true)
				c.remove(thb, ehb)
				changed = true
				break
			}
			// Mirrored triangle: H -> J, H -> E -> J.
			if c.isArm(ehb, p) && c.owner[ehb.term.Then] == thb && p[thb] == 2 &&
				sizeOK(h, ehb, thb) {
				c.mergeTriangle(h, ehb, thb, false)
				c.remove(ehb, thb)
				changed = true
				break
			}
		}
		if changed {
			out := c.hbs[:0]
			for _, h := range c.hbs {
				if h != nil {
					out = append(out, h)
				}
			}
			c.hbs = out
		}
	}
}

// isArm reports whether hb can be an if-conversion arm: single predecessor,
// unpredicated, straight-line, ending in a jump.
func (c *cfg) isArm(hb *hblock, preds map[*hblock]int) bool {
	return hb != nil && !hb.merged && preds[hb] == 1 && hb.term.Kind == tir.TermJump
}

func sizeOK(hs ...*hblock) bool {
	n := 0
	for _, h := range hs {
		n += len(h.pinsts)
	}
	return n <= ifConvertLimit
}

func (c *cfg) remove(dead ...*hblock) {
	for i, h := range c.hbs {
		for _, d := range dead {
			if h == d {
				c.hbs[i] = nil
			}
		}
	}
}

// renameArm rewrites an arm's defs to fresh registers (and its internal
// uses after the def), returning the pinsts predicated on (pred, pol) and
// the ordered list of (original, renamed) defs.
func renameArm(f *tir.Func, arm *hblock, pred tir.Reg, pol bool) ([]pinst, [][2]tir.Reg) {
	rename := map[tir.Reg]tir.Reg{}
	var order [][2]tir.Reg
	var out []pinst
	for _, pi := range arm.pinsts {
		in := pi.inst
		if in.Op.UsesA() {
			if r, ok := rename[in.A]; ok {
				in.A = r
			}
		}
		if in.Op.UsesB() {
			if r, ok := rename[in.B]; ok {
				in.B = r
			}
		}
		if in.Op.WritesDst() {
			fresh, seen := rename[in.Dst]
			if !seen {
				fresh = f.NewReg()
				rename[in.Dst] = fresh
				order = append(order, [2]tir.Reg{in.Dst, fresh})
			}
			in.Dst = fresh
		}
		out = append(out, pinst{inst: in, hasPred: true, pred: pred, predTrue: pol})
	}
	return out, order
}

// mergeDiamond folds H -> (T | E) -> J into H.
func (cg *cfg) mergeDiamond(h, t, e, j *hblock) {
	c := h.term.Cond
	tp, tdefs := renameArm(cg.f, t, c, true)
	ep, edefs := renameArm(cg.f, e, c, false)
	h.pinsts = append(h.pinsts, tp...)
	h.pinsts = append(h.pinsts, ep...)
	// Phi for every register defined on either side.
	tMap := map[tir.Reg]tir.Reg{}
	for _, d := range tdefs {
		tMap[d[0]] = d[1]
	}
	eMap := map[tir.Reg]tir.Reg{}
	for _, d := range edefs {
		eMap[d[0]] = d[1]
	}
	seen := map[tir.Reg]bool{}
	emitPhi := func(orig tir.Reg) {
		if seen[orig] {
			return
		}
		seen[orig] = true
		tv, tok := tMap[orig]
		ev, eok := eMap[orig]
		if !tok {
			tv = orig // falls through: prior value
		}
		if !eok {
			ev = orig
		}
		h.pinsts = append(h.pinsts, pinst{
			inst:  tir.Inst{Op: tir.Mov, Dst: orig},
			isPhi: true, pred: c, phiT: tv, phiF: ev,
		})
	}
	for _, d := range tdefs {
		emitPhi(d[0])
	}
	for _, d := range edefs {
		emitPhi(d[0])
	}
	// Join block runs unpredicated after the merge.
	h.pinsts = append(h.pinsts, j.pinsts...)
	h.term = j.term
	h.termCond = j.term.Cond
	h.merged = true
	// H now owns all the merged BBs.
	for bb, owner := range cg.owner {
		if owner == t || owner == e || owner == j {
			cg.owner[bb] = h
		}
	}
}

// mergeTriangle folds H -> T -> J (with H -> J direct) into H. armTaken
// tells whether the arm runs when the branch condition is true.
func (cg *cfg) mergeTriangle(h, t, j *hblock, armTaken bool) {
	c := h.term.Cond
	tp, tdefs := renameArm(cg.f, t, c, armTaken)
	h.pinsts = append(h.pinsts, tp...)
	for _, d := range tdefs {
		phiT, phiF := d[1], d[0]
		if !armTaken {
			phiT, phiF = d[0], d[1]
		}
		h.pinsts = append(h.pinsts, pinst{
			inst:  tir.Inst{Op: tir.Mov, Dst: d[0]},
			isPhi: true, pred: c, phiT: phiT, phiF: phiF,
		})
	}
	h.pinsts = append(h.pinsts, j.pinsts...)
	h.term = j.term
	h.termCond = j.term.Cond
	h.merged = true
	for bb, owner := range cg.owner {
		if owner == t || owner == j {
			cg.owner[bb] = h
		}
	}
}
