package tcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trips/internal/mem"
	"trips/internal/proc"
	"trips/internal/tir"
)

// runTRIPS compiles f with the given mode and executes it on the processor
// model, returning the final value of each requested TIR register and the
// memory.
func runTRIPS(t *testing.T, f *tir.Func, mode Mode, init map[tir.Reg]uint64, m *mem.Memory) (map[tir.Reg]uint64, *Meta, proc.Result) {
	t.Helper()
	prog, meta, err := Compile(f, Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile(%v): %v", mode, err)
	}
	if m == nil {
		m = mem.New()
	}
	if err := prog.Image(m); err != nil {
		t.Fatal(err)
	}
	core, err := proc.NewCore(proc.Config{
		Program:   prog,
		Mem:       proc.NewFixedLatencyMem(m, 20),
		MaxCycles: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range init {
		gr, ok := meta.RegOf[v]
		if !ok {
			continue // dead input
		}
		core.SetRegister(0, gr, val)
	}
	res, err := core.Run()
	if err != nil {
		t.Fatalf("run(%v): %v", mode, err)
	}
	core.FlushCaches()
	out := map[tir.Reg]uint64{}
	for v, gr := range meta.RegOf {
		out[v] = core.Register(0, gr)
	}
	return out, meta, res
}

// golden interprets f and returns the final registers (indexed by vreg).
func golden(t *testing.T, f *tir.Func, init map[tir.Reg]uint64, m *mem.Memory) []uint64 {
	t.Helper()
	if m == nil {
		m = mem.New()
	}
	regs := make([]uint64, f.NumRegs())
	for v, val := range init {
		regs[v] = val
	}
	if _, err := tir.Interp(f, m, regs, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return regs
}

// sumLoop builds: sum = 0; for i = 1..n { sum += i }.
func sumLoop(t *testing.T) (*tir.Func, tir.Reg, tir.Reg) {
	f := tir.NewFunc("sum")
	n := f.NewReg()
	i := f.NewReg()
	sum := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: sum, Imm: 0})
	entry.Jump(loop)
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	loop.Emit(tir.Inst{Op: tir.Add, Dst: sum, A: sum, B: i})
	c := loop.Op(f, tir.SetLT, i, n)
	loop.Branch(c, loop, done)
	done.Ret()
	f.Keep(sum, i)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, n, sum
}

func TestCompileSumLoopBothModes(t *testing.T) {
	for _, mode := range []Mode{Compiled, Hand} {
		f, n, sum := sumLoop(t)
		init := map[tir.Reg]uint64{n: 20}
		out, _, res := runTRIPS(t, f, mode, init, nil)
		if out[sum] != 210 {
			t.Errorf("mode %v: sum = %d, want 210", mode, out[sum])
		}
		if res.CommittedBlocks == 0 {
			t.Errorf("mode %v: nothing committed", mode)
		}
	}
}

// absDiamond builds: if a < 0 { r = 0 - a } else { r = a }; plus a store of
// r so the predicated-store path is exercised under if-conversion.
func absDiamond(t *testing.T) (*tir.Func, tir.Reg, tir.Reg, tir.Reg) {
	f := tir.NewFunc("abs")
	a := f.NewReg()
	r := f.NewReg()
	addr := f.NewReg()
	entry := f.NewBB("entry")
	neg := f.NewBB("neg")
	pos := f.NewBB("pos")
	join := f.NewBB("join")
	c := entry.OpI(f, tir.SetLTI, a, 0)
	entry.Branch(c, neg, pos)
	zero := neg.Const(f, 0)
	neg.Emit(tir.Inst{Op: tir.Sub, Dst: r, A: zero, B: a})
	neg.Store(addr, 0, r, 8)
	neg.Jump(join)
	pos.Emit(tir.Inst{Op: tir.Mov, Dst: r, A: a})
	pos.Jump(join)
	join.Ret()
	f.Keep(r)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, a, r, addr
}

func TestIfConversionMergesDiamond(t *testing.T) {
	f, a, r, addr := absDiamond(t)
	_, metaC, _ := runTRIPS(t, f, Compiled, map[tir.Reg]uint64{a: ^uint64(6), addr: 0x8000}, nil)
	f2, a2, r2, addr2 := absDiamond(t)
	_, metaH, _ := runTRIPS(t, f2, Hand, map[tir.Reg]uint64{a2: ^uint64(6), addr2: 0x8000}, nil)
	if metaH.Blocks >= metaC.Blocks {
		t.Errorf("hand mode should merge the diamond: %d blocks vs %d compiled", metaH.Blocks, metaC.Blocks)
	}
	_ = r
	_ = r2
}

func TestDiamondBothPathsBothModes(t *testing.T) {
	for _, mode := range []Mode{Compiled, Hand} {
		for _, in := range []int64{-7, 7, 0} {
			f, a, r, addr := absDiamond(t)
			m := mem.New()
			init := map[tir.Reg]uint64{a: uint64(in), addr: 0x8000}
			gm := mem.New()
			gr := golden(t, f, init, gm)
			out, _, _ := runTRIPS(t, f, mode, init, m)
			if out[r] != gr[r] {
				t.Errorf("mode %v in %d: r = %d, want %d", mode, in, int64(out[r]), int64(gr[r]))
			}
			if got, want := m.Read(0x8000, 8, false), gm.Read(0x8000, 8, false); got != want {
				t.Errorf("mode %v in %d: mem = %d, want %d (predicated store)", mode, in, got, want)
			}
		}
	}
}

// arraySum builds: s = Σ a[i] for i < n (8-byte elements).
func arraySum(t *testing.T) (*tir.Func, tir.Reg, tir.Reg, tir.Reg) {
	f := tir.NewFunc("arraysum")
	base := f.NewReg()
	n := f.NewReg()
	s := f.NewReg()
	i := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: 0})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Jump(loop)
	off := loop.OpI(f, tir.ShlI, i, 3)
	addr := loop.Op(f, tir.Add, base, off)
	v := loop.Load(f, addr, 0, 8, false)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: v})
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	c := loop.Op(f, tir.SetLT, i, n)
	loop.Branch(c, loop, done)
	done.Ret()
	f.Keep(s)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f, base, n, s
}

func TestArraySumMatchesGolden(t *testing.T) {
	for _, mode := range []Mode{Compiled, Hand} {
		f, base, n, s := arraySum(t)
		m := mem.New()
		want := uint64(0)
		for i := 0; i < 32; i++ {
			m.Write(0x9000+uint64(i)*8, 8, uint64(i*i+1))
			want += uint64(i*i + 1)
		}
		init := map[tir.Reg]uint64{base: 0x9000, n: 32}
		out, _, _ := runTRIPS(t, f, mode, init, m)
		if out[s] != want {
			t.Errorf("mode %v: sum = %d, want %d", mode, out[s], want)
		}
	}
}

func TestLargeConstantsAndOffsets(t *testing.T) {
	f := tir.NewFunc("bigconst")
	r := f.NewReg()
	addr := f.NewReg()
	got := f.NewReg()
	entry := f.NewBB("entry")
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: r, Imm: int64(0x1122334455667788)})
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: addr, Imm: 0x4000})
	entry.Store(addr, 4096, r, 8) // offset beyond the 9-bit L/S field
	entry.Emit(tir.Inst{Op: tir.Load, Dst: got, A: addr, Imm: 4096, Width: 8})
	entry.Ret()
	f.Keep(got)
	for _, mode := range []Mode{Compiled, Hand} {
		m := mem.New()
		out, _, _ := runTRIPS(t, f, mode, nil, m)
		if out[got] != 0x1122334455667788 {
			t.Errorf("mode %v: got %#x", mode, out[got])
		}
		if v := m.Read(0x5000, 8, false); v != 0x1122334455667788 {
			t.Errorf("mode %v: mem = %#x", mode, v)
		}
	}
}

func TestFanoutManyConsumers(t *testing.T) {
	// One value consumed by 12 instructions forces a MOV fanout tree.
	f := tir.NewFunc("fanout")
	x := f.NewReg()
	entry := f.NewBB("entry")
	acc := entry.OpI(f, tir.AddI, x, 0)
	for k := 0; k < 12; k++ {
		y := entry.Op(f, tir.Add, x, x) // two uses of x each
		acc = entry.Op(f, tir.Add, acc, y)
	}
	sum := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.Mov, Dst: sum, A: acc})
	next := f.NewBB("next")
	entry.Jump(next)
	keep := next.Op(f, tir.Add, sum, x) // keeps sum and x live-out of entry
	final := f.NewReg()
	next.Emit(tir.Inst{Op: tir.Mov, Dst: final, A: keep})
	next.Ret()
	f.Keep(final)
	for _, mode := range []Mode{Compiled, Hand} {
		init := map[tir.Reg]uint64{x: 3}
		gr := golden(t, f, init, nil)
		out, meta, _ := runTRIPS(t, f, mode, init, nil)
		if out[final] != gr[final] {
			t.Errorf("mode %v: final = %d, want %d", mode, out[final], gr[final])
		}
		if mode == Hand && meta.FanoutMovs == 0 {
			t.Error("expected fanout movs for a 25-consumer value")
		}
	}
}

// randFunc generates a structured random TIR program: an arithmetic
// prologue, an optional diamond, and a counted loop with loads/stores.
func randFunc(r *rand.Rand) (*tir.Func, map[tir.Reg]uint64, []tir.Reg) {
	f := tir.NewFunc("rand")
	nIn := 2 + r.Intn(3)
	var inputs []tir.Reg
	init := map[tir.Reg]uint64{}
	for i := 0; i < nIn; i++ {
		v := f.NewReg()
		inputs = append(inputs, v)
		init[v] = uint64(r.Intn(1000))
	}
	base := f.NewReg()
	init[base] = 0x10000 * 8 // data region away from code
	entry := f.NewBB("entry")
	cur := inputs
	emitArith := func(b *tir.BB, n int) []tir.Reg {
		vals := append([]tir.Reg{}, cur...)
		ops := []tir.Op{tir.Add, tir.Sub, tir.Mul, tir.And, tir.Or, tir.Xor, tir.AddI, tir.ShlI, tir.Min, tir.Max}
		for i := 0; i < n; i++ {
			op := ops[r.Intn(len(ops))]
			a := vals[r.Intn(len(vals))]
			var d tir.Reg
			if op == tir.AddI || op == tir.ShlI {
				d = b.OpI(f, op, a, int64(r.Intn(7)))
			} else {
				d = b.Op(f, op, a, vals[r.Intn(len(vals))])
			}
			vals = append(vals, d)
		}
		return vals
	}
	vals := emitArith(entry, 3+r.Intn(5))
	// Store a couple of values.
	for i := 0; i < 2; i++ {
		entry.Store(base, int64(8*i), vals[len(vals)-1-i], 8)
	}
	// Diamond on a computed condition.
	c := entry.OpI(f, tir.SetLTI, vals[len(vals)-1], 500)
	thenB := f.NewBB("then")
	elseB := f.NewBB("else")
	join := f.NewBB("join")
	entry.Branch(c, thenB, elseB)
	x := f.NewReg()
	thenB.Emit(tir.Inst{Op: tir.AddI, Dst: x, A: vals[0], Imm: 7})
	thenB.Store(base, 64, x, 8)
	thenB.Jump(join)
	elseB.Emit(tir.Inst{Op: tir.MulI, Dst: x, A: vals[1], Imm: 3})
	elseB.Jump(join)
	// Counted loop accumulating loads of what we stored.
	i := f.NewReg()
	s := f.NewReg()
	join.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	join.Emit(tir.Inst{Op: tir.ConstI, Dst: s, Imm: 0})
	loop := f.NewBB("loop")
	done := f.NewBB("done")
	join.Jump(loop)
	v := loop.Load(f, base, 0, 8, false)
	loop.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: v})
	loop.Emit(tir.Inst{Op: tir.Add, Dst: s, A: s, B: x})
	loop.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	cc := loop.OpI(f, tir.SetLTI, i, int64(2+r.Intn(6)))
	loop.Branch(cc, loop, done)
	done.Ret()
	f.Keep(s, x, vals[len(vals)-1])
	outs := []tir.Reg{s, x, vals[len(vals)-1]}
	return f, init, outs
}

func TestQuickRandomProgramsMatchGolden(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, init, outs := randFunc(r)
		gm := mem.New()
		gr := golden(t, f, init, gm)
		for _, mode := range []Mode{Compiled, Hand} {
			m := mem.New()
			out, meta, _ := runTRIPS(t, f, mode, init, m)
			for _, v := range outs {
				if _, tracked := meta.RegOf[v]; !tracked {
					continue
				}
				if out[v] != gr[v] {
					t.Logf("seed %d mode %v: r%d = %d, want %d", seed, mode, v, out[v], gr[v])
					return false
				}
			}
			for a := uint64(0x80000); a < 0x80000+128; a += 8 {
				if m.Read(a, 8, false) != gm.Read(a, 8, false) {
					t.Logf("seed %d mode %v: mem[%#x] = %d, want %d", seed, mode, a, m.Read(a, 8, false), gm.Read(a, 8, false))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
