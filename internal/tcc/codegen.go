package tcc

import (
	"fmt"
	"math"
	"sort"

	"trips/internal/isa"
	"trips/internal/tir"
)

// sink is one destination of a produced value: an operand of another unit,
// or a header write-queue entry.
type sink struct {
	u        *unit
	kind     isa.OperandKind
	writeIdx int // >= 0: header write entry; u/kind unused
}

// unit is one TRIPS instruction under construction.
type unit struct {
	op   isa.Opcode
	imm  int64
	lsid int
	pred isa.PredMode

	outs  []sink
	prods []*unit // producing units (for placement and topo order)

	isBranch bool
	brTarget *hblock // nil = halt
	brExit   int

	seq   int // creation order
	index int // placed N index
}

// capacity returns how many targets the unit's encoding supports.
func (u *unit) capacity() int {
	switch u.op.Format() {
	case isa.FmtG:
		if u.op.IsBranch() {
			return 0
		}
		return 2
	case isa.FmtI, isa.FmtL, isa.FmtC:
		return 1
	}
	return 0 // stores, branches
}

// readEnt is a header read instruction under construction.
type readEnt struct {
	gr   int
	outs []sink
	j    int // header queue index
}

// prodRef is a value producer: exactly one of u, rd is set.
type prodRef struct {
	u  *unit
	rd *readEnt
}

func (p prodRef) addSink(s sink) {
	if p.u != nil {
		p.u.outs = append(p.u.outs, s)
	} else {
		p.rd.outs = append(p.rd.outs, s)
	}
}

// branchFix records a branch whose offset is patched after layout.
type branchFix struct {
	instIdx int
	target  *hblock
}

// codegen translates hyperblocks into isa.Blocks.
type codegen struct {
	regOf     map[tir.Reg]int
	placement Placement
	meta      *Meta
	fixes     map[*hblock][]branchFix
	g         *cfg

	// Per-block state.
	units   []*unit
	reads   []*readEnt
	readOf  map[tir.Reg]*readEnt
	defs    map[tir.Reg][]prodRef
	defined map[tir.Reg]bool
	liveIn  map[tir.Reg]bool
	nextSeq int
	memOps  int
	name    string
	label   string
}

func (cg *codegen) errf(format string, args ...any) error {
	return fmt.Errorf("tcc: %s/%s: %s", cg.name, cg.label, fmt.Sprintf(format, args...))
}

func (cg *codegen) newUnit(op isa.Opcode, imm int64) *unit {
	u := &unit{op: op, imm: imm, seq: cg.nextSeq, index: -1}
	cg.nextSeq++
	cg.units = append(cg.units, u)
	return u
}

// connect wires every current producer of v to the given operand of u.
func (cg *codegen) connect(v tir.Reg, u *unit, kind isa.OperandKind) error {
	prods, err := cg.producersOf(v)
	if err != nil {
		return err
	}
	for _, p := range prods {
		p.addSink(sink{u: u, kind: kind, writeIdx: -1})
		if p.u != nil {
			u.prods = append(u.prods, p.u)
		}
	}
	return nil
}

// producersOf resolves v to its in-block defs or a (lazily created) read.
func (cg *codegen) producersOf(v tir.Reg) ([]prodRef, error) {
	if ds, ok := cg.defs[v]; ok {
		return ds, nil
	}
	if rd, ok := cg.readOf[v]; ok {
		return []prodRef{{rd: rd}}, nil
	}
	gr, ok := cg.regOf[v]
	if !ok || !cg.liveIn[v] {
		return nil, cg.errf("use of r%d with no reaching definition", v)
	}
	rd := &readEnt{gr: gr, j: -1}
	cg.readOf[v] = rd
	cg.reads = append(cg.reads, rd)
	return []prodRef{{rd: rd}}, nil
}

// materialize emits units producing the 64-bit constant v, returning the
// final producer.
func (cg *codegen) materialize(v uint64) *unit {
	if sv := int64(v); sv >= -(1<<13) && sv < 1<<13 {
		return cg.newUnit(isa.MOVI, sv)
	}
	// GENC + APPC chain, high piece first.
	pieces := []int64{int64(v >> 48 & 0xffff), int64(v >> 32 & 0xffff), int64(v >> 16 & 0xffff), int64(v & 0xffff)}
	// Skip leading zero pieces only when the value is non-negative small.
	start := 0
	for start < 3 && pieces[start] == 0 {
		start++
	}
	u := cg.newUnit(isa.GENC, pieces[start])
	for i := start + 1; i < 4; i++ {
		nx := cg.newUnit(isa.APPC, pieces[i])
		u.outs = append(u.outs, sink{u: nx, kind: isa.OpLeft, writeIdx: -1})
		nx.prods = append(nx.prods, u)
		u = nx
	}
	return u
}

// opMap translates TIR register-register ops.
var opMap = map[tir.Op]isa.Opcode{
	tir.Add: isa.ADD, tir.Sub: isa.SUB, tir.Mul: isa.MUL, tir.Div: isa.DIV,
	tir.Mod: isa.MOD, tir.And: isa.AND, tir.Or: isa.OR, tir.Xor: isa.XOR,
	tir.Shl: isa.SLL, tir.Shr: isa.SRL, tir.Sra: isa.SRA,
	tir.Min: isa.MIN, tir.Max: isa.MAX,
	tir.SetEQ: isa.TEQ, tir.SetNE: isa.TNE, tir.SetLT: isa.TLT,
	tir.SetLE: isa.TLE, tir.SetGT: isa.TGT, tir.SetGE: isa.TGE,
	tir.SetLTU: isa.TLTU, tir.SetGEU: isa.TGEU,
	tir.Mov:  isa.MOV,
	tir.FAdd: isa.FADD, tir.FSub: isa.FSUB, tir.FMul: isa.FMUL, tir.FDiv: isa.FDIV,
	tir.FSetEQ: isa.FEQ, tir.FSetLT: isa.FLT, tir.FSetLE: isa.FLE,
	tir.IToF: isa.ITOF, tir.FToI: isa.FTOI,
}

// immMap translates TIR immediate ops (14-bit range permitting).
var immMap = map[tir.Op]isa.Opcode{
	tir.AddI: isa.ADDI, tir.MulI: isa.MULI, tir.AndI: isa.ANDI,
	tir.OrI: isa.ORI, tir.XorI: isa.XORI, tir.ShlI: isa.SLLI,
	tir.ShrI: isa.SRLI, tir.SraI: isa.SRAI,
	tir.SetEQI: isa.TEQI, tir.SetLTI: isa.TLTI, tir.SetGEI: isa.TGEI,
}

// regOp is the register-register fallback for immediate ops whose constant
// does not fit the 14-bit I-format field.
var regOp = map[tir.Op]isa.Opcode{
	tir.AddI: isa.ADD, tir.MulI: isa.MUL, tir.AndI: isa.AND,
	tir.OrI: isa.OR, tir.XorI: isa.XOR, tir.ShlI: isa.SLL,
	tir.ShrI: isa.SRL, tir.SraI: isa.SRA,
	tir.SetEQI: isa.TEQ, tir.SetLTI: isa.TLT, tir.SetGEI: isa.TGE,
}

func fitsI(imm int64) bool  { return imm >= -(1<<13) && imm < 1<<13 }
func fitsLS(imm int64) bool { return imm >= -(1<<8) && imm < 1<<8 }

// loadOp/storeOp pick the memory opcode for a width.
func loadOp(width int, signed bool) isa.Opcode {
	switch width {
	case 1:
		if signed {
			return isa.LB
		}
		return isa.LBU
	case 2:
		if signed {
			return isa.LH
		}
		return isa.LHU
	case 4:
		if signed {
			return isa.LW
		}
		return isa.LWU
	default:
		return isa.LD
	}
}

func storeOp(width int) isa.Opcode {
	switch width {
	case 1:
		return isa.SB
	case 2:
		return isa.SH
	case 4:
		return isa.SW
	default:
		return isa.SD
	}
}

// applyPred marks a unit predicated and wires the predicate producers.
func (cg *codegen) applyPred(u *unit, pi *pinst) error {
	if !pi.hasPred {
		return nil
	}
	if pi.predTrue {
		u.pred = isa.PredOnTrue
	} else {
		u.pred = isa.PredOnFalse
	}
	return cg.connect(pi.pred, u, isa.OpPred)
}

// predMov wraps a value in a predicated MOV so it only reaches its sinks on
// one predicate path (used for store operand gating).
func (cg *codegen) predMov(v tir.Reg, pred tir.Reg, pol bool) (*unit, error) {
	m := cg.newUnit(isa.MOV, 0)
	if pol {
		m.pred = isa.PredOnTrue
	} else {
		m.pred = isa.PredOnFalse
	}
	if err := cg.connect(v, m, isa.OpLeft); err != nil {
		return nil, err
	}
	if err := cg.connect(pred, m, isa.OpPred); err != nil {
		return nil, err
	}
	return m, nil
}

// genBlock translates one hyperblock into an isa.Block.
func (cg *codegen) genBlock(name string, hb *hblock, liveIn, liveOut map[tir.Reg]bool) (*isa.Block, error) {
	cg.units = nil
	cg.reads = nil
	cg.readOf = map[tir.Reg]*readEnt{}
	cg.defs = map[tir.Reg][]prodRef{}
	cg.defined = map[tir.Reg]bool{}
	cg.liveIn = liveIn
	cg.nextSeq = 0
	cg.memOps = 0
	cg.name = name
	cg.label = hb.label
	if cg.fixes == nil {
		cg.fixes = map[*hblock][]branchFix{}
	}

	for i := range hb.pinsts {
		if err := cg.genPinst(&hb.pinsts[i]); err != nil {
			return nil, err
		}
	}
	if err := cg.genTerm(hb); err != nil {
		return nil, err
	}

	// Register outputs: one write entry per defined live-out vreg.
	writeBank := [4]int{}
	readBank := [4]int{}
	var writes [isa.MaxBlockWrites]isa.WriteInst
	var outVregs []tir.Reg
	for v := range liveOut {
		if cg.defined[v] {
			outVregs = append(outVregs, v)
		}
	}
	sort.Slice(outVregs, func(i, j int) bool { return outVregs[i] < outVregs[j] })
	for _, v := range outVregs {
		gr, ok := cg.regOf[v]
		if !ok {
			return nil, cg.errf("live-out r%d has no architectural register", v)
		}
		bank := gr % 4
		if writeBank[bank] >= 8 {
			return nil, cg.errf("more than 8 register writes on bank %d", bank)
		}
		j := writeBank[bank]*4 + bank
		writeBank[bank]++
		writes[j] = isa.WriteInst{Valid: true, GR: gr}
		for _, p := range cg.defs[v] {
			p.addSink(sink{writeIdx: j})
		}
	}

	// Fanout expansion: replicate over MOV trees where sinks exceed the
	// encoding's target capacity.
	for _, u := range cg.units {
		cg.expandFanout(func() []sink { return u.outs }, func(s []sink) { u.outs = s }, u.capacity(), u)
	}
	for _, rd := range cg.reads {
		cg.expandFanout(func() []sink { return rd.outs }, func(s []sink) { rd.outs = s }, 2, nil)
	}

	if len(cg.units) > isa.MaxBlockInsts {
		return nil, cg.errf("%d instructions exceed the 128-instruction block (split the TIR block or reduce unrolling)", len(cg.units))
	}

	// Header read entries.
	var readInsts [isa.MaxBlockReads]isa.ReadInst
	for _, rd := range cg.reads {
		bank := rd.gr % 4
		if readBank[bank] >= 8 {
			return nil, cg.errf("more than 8 register reads on bank %d", bank)
		}
		rd.j = readBank[bank]*4 + bank
		readBank[bank]++
	}

	if err := cg.place(); err != nil {
		return nil, err
	}

	// Emit the final block.
	maxIdx := 0
	for _, u := range cg.units {
		if u.index > maxIdx {
			maxIdx = u.index
		}
	}
	blk := &isa.Block{Name: hb.label, Writes: writes}
	blk.Insts = make([]isa.Inst, maxIdx+1)
	for i := range blk.Insts {
		blk.Insts[i] = isa.Inst{Op: isa.NOP}
	}
	for _, u := range cg.units {
		in := isa.Inst{Op: u.op, Pred: u.pred, Imm: u.imm, LSID: u.lsid, Exit: u.brExit}
		ts, err := cg.sinkTargets(u.outs)
		if err != nil {
			return nil, err
		}
		if len(ts) > 0 {
			in.T0 = ts[0]
		}
		if len(ts) > 1 {
			in.T1 = ts[1]
		}
		blk.Insts[u.index] = in
		if u.isBranch {
			cg.fixes[hb] = append(cg.fixes[hb], branchFix{instIdx: u.index, target: u.brTarget})
		}
	}
	for _, rd := range cg.reads {
		ts, err := cg.sinkTargets(rd.outs)
		if err != nil {
			return nil, err
		}
		ri := isa.ReadInst{Valid: true, GR: rd.gr}
		if len(ts) > 0 {
			ri.RT0 = ts[0]
		}
		if len(ts) > 1 {
			ri.RT1 = ts[1]
		}
		readInsts[rd.j] = ri
	}
	blk.Reads = readInsts
	return blk, nil
}

func (cg *codegen) sinkTargets(outs []sink) ([]isa.Target, error) {
	var ts []isa.Target
	for _, s := range outs {
		if s.writeIdx >= 0 {
			ts = append(ts, isa.ToWrite(s.writeIdx))
			continue
		}
		if s.u.index < 0 {
			return nil, cg.errf("unplaced consumer")
		}
		ts = append(ts, isa.Target{Index: s.u.index, Kind: s.kind})
	}
	return ts, nil
}

// expandFanout rewrites a producer's sink list through a balanced MOV tree
// when it exceeds the target capacity.
func (cg *codegen) expandFanout(get func() []sink, set func([]sink), cap int, prod *unit) {
	outs := get()
	if len(outs) <= cap {
		return
	}
	set(cg.buildTree(outs, cap, prod))
}

func (cg *codegen) buildTree(outs []sink, cap int, prod *unit) []sink {
	if len(outs) <= cap {
		return outs
	}
	// Split sinks into cap nearly equal groups; each oversized group hangs
	// off a MOV with capacity 2.
	groups := make([][]sink, cap)
	for i, s := range outs {
		groups[i%cap] = append(groups[i%cap], s)
	}
	var top []sink
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) == 1 {
			top = append(top, g[0])
			continue
		}
		m := cg.newUnit(isa.MOV, 0)
		cg.meta.FanoutMovs++
		if prod != nil {
			m.prods = append(m.prods, prod)
		}
		m.outs = cg.buildTree(g, 2, m)
		for _, s := range m.outs {
			if s.u != nil {
				s.u.prods = append(s.u.prods, m)
			}
		}
		top = append(top, sink{u: m, kind: isa.OpLeft, writeIdx: -1})
	}
	return top
}

// genPinst translates one predicated TIR instruction.
func (cg *codegen) genPinst(pi *pinst) error {
	if pi.isPhi {
		return cg.genPhi(pi)
	}
	in := pi.inst
	switch in.Op {
	case tir.ConstI:
		u := cg.materialize(uint64(in.Imm))
		if pi.hasPred {
			// Predicate the final unit of the chain.
			if err := cg.applyPred(u, pi); err != nil {
				return err
			}
		}
		cg.define(in.Dst, prodRef{u: u})
		return nil
	case tir.Load:
		return cg.genLoad(pi)
	case tir.Store:
		return cg.genStore(pi)
	case tir.Mov:
		u := cg.newUnit(isa.MOV, 0)
		if err := cg.connect(in.A, u, isa.OpLeft); err != nil {
			return err
		}
		if err := cg.applyPred(u, pi); err != nil {
			return err
		}
		cg.define(in.Dst, prodRef{u: u})
		return nil
	}
	if op, ok := immMap[in.Op]; ok {
		if fitsI(in.Imm) {
			u := cg.newUnit(op, in.Imm)
			if err := cg.connect(in.A, u, isa.OpLeft); err != nil {
				return err
			}
			if err := cg.applyPred(u, pi); err != nil {
				return err
			}
			cg.define(in.Dst, prodRef{u: u})
			return nil
		}
		// Large immediate: materialize and fall back to the reg-reg form.
		c := cg.materialize(uint64(in.Imm))
		u := cg.newUnit(regOp[in.Op], 0)
		if err := cg.connect(in.A, u, isa.OpLeft); err != nil {
			return err
		}
		c.outs = append(c.outs, sink{u: u, kind: isa.OpRight, writeIdx: -1})
		u.prods = append(u.prods, c)
		if err := cg.applyPred(u, pi); err != nil {
			return err
		}
		cg.define(in.Dst, prodRef{u: u})
		return nil
	}
	op, ok := opMap[in.Op]
	if !ok {
		return cg.errf("unsupported TIR op %v", in.Op)
	}
	u := cg.newUnit(op, 0)
	if err := cg.connect(in.A, u, isa.OpLeft); err != nil {
		return err
	}
	if in.Op.UsesB() {
		if err := cg.connect(in.B, u, isa.OpRight); err != nil {
			return err
		}
	}
	if err := cg.applyPred(u, pi); err != nil {
		return err
	}
	cg.define(in.Dst, prodRef{u: u})
	return nil
}

// genPhi expands a merge select into two complementary predicated movs.
func (cg *codegen) genPhi(pi *pinst) error {
	mt, err := cg.predMov(pi.phiT, pi.pred, true)
	if err != nil {
		return err
	}
	mf, err := cg.predMov(pi.phiF, pi.pred, false)
	if err != nil {
		return err
	}
	cg.defs[pi.inst.Dst] = []prodRef{{u: mt}, {u: mf}}
	cg.defined[pi.inst.Dst] = true
	return nil
}

func (cg *codegen) define(v tir.Reg, p prodRef) {
	cg.defs[v] = []prodRef{p}
	cg.defined[v] = true
}

// memBase resolves a load/store base+offset into (baseProducerConn, imm):
// offsets beyond the 9-bit L/S immediate are folded into the address.
func (cg *codegen) memBase(a tir.Reg, imm int64, u *unit) (int64, error) {
	if fitsLS(imm) {
		if err := cg.connect(a, u, isa.OpLeft); err != nil {
			return 0, err
		}
		return imm, nil
	}
	var addr *unit
	if fitsI(imm) {
		addr = cg.newUnit(isa.ADDI, imm)
		if err := cg.connect(a, addr, isa.OpLeft); err != nil {
			return 0, err
		}
	} else {
		c := cg.materialize(uint64(imm))
		addr = cg.newUnit(isa.ADD, 0)
		if err := cg.connect(a, addr, isa.OpLeft); err != nil {
			return 0, err
		}
		c.outs = append(c.outs, sink{u: addr, kind: isa.OpRight, writeIdx: -1})
		addr.prods = append(addr.prods, c)
	}
	addr.outs = append(addr.outs, sink{u: u, kind: isa.OpLeft, writeIdx: -1})
	u.prods = append(u.prods, addr)
	return 0, nil
}

func (cg *codegen) genLoad(pi *pinst) error {
	if cg.memOps >= isa.MaxBlockMemOps {
		return cg.errf("more than %d memory operations", isa.MaxBlockMemOps)
	}
	in := pi.inst
	u := cg.newUnit(loadOp(in.Width, in.Signed), 0)
	u.lsid = cg.memOps
	cg.memOps++
	imm, err := cg.memBase(in.A, in.Imm, u)
	if err != nil {
		return err
	}
	u.imm = imm
	if err := cg.applyPred(u, pi); err != nil {
		return err
	}
	cg.define(in.Dst, prodRef{u: u})
	return nil
}

// genStore emits a store. A predicated store is emitted unpredicated with
// its operands gated by predicated movs on the taken path and a NULL on the
// complementary path, exactly the Figure 5a pattern, so the store issues
// (possibly nullified) on every execution and block completion detection
// works (paper Section 2.1).
func (cg *codegen) genStore(pi *pinst) error {
	if cg.memOps >= isa.MaxBlockMemOps {
		return cg.errf("more than %d memory operations", isa.MaxBlockMemOps)
	}
	in := pi.inst
	u := cg.newUnit(storeOp(in.Width), 0)
	u.lsid = cg.memOps
	cg.memOps++
	if !pi.hasPred {
		imm, err := cg.memBase(in.A, in.Imm, u)
		if err != nil {
			return err
		}
		u.imm = imm
		return cg.connect(in.B, u, isa.OpRight)
	}
	// Gate the address through a predicated mov (the offset folds into the
	// store's immediate only on the ungated path, so fold it here).
	maddr, err := cg.predMov(in.A, pi.pred, pi.predTrue)
	if err != nil {
		return err
	}
	u.imm = 0
	if fitsLS(in.Imm) {
		u.imm = in.Imm
	} else {
		maddr.op = isa.ADDI
		maddr.imm = in.Imm
		if !fitsI(in.Imm) {
			return cg.errf("predicated store offset %d too large", in.Imm)
		}
	}
	maddr.outs = append(maddr.outs, sink{u: u, kind: isa.OpLeft, writeIdx: -1})
	u.prods = append(u.prods, maddr)
	mdata, err := cg.predMov(in.B, pi.pred, pi.predTrue)
	if err != nil {
		return err
	}
	mdata.outs = append(mdata.outs, sink{u: u, kind: isa.OpRight, writeIdx: -1})
	u.prods = append(u.prods, mdata)
	// Complementary NULL feeds both operands so the store issues nullified
	// on the untaken path.
	nl := cg.newUnit(isa.NULL, 0)
	if pi.predTrue {
		nl.pred = isa.PredOnFalse
	} else {
		nl.pred = isa.PredOnTrue
	}
	if err := cg.connect(pi.pred, nl, isa.OpPred); err != nil {
		return err
	}
	nl.outs = append(nl.outs, sink{u: u, kind: isa.OpLeft, writeIdx: -1}, sink{u: u, kind: isa.OpRight, writeIdx: -1})
	u.prods = append(u.prods, nl)
	return nil
}

// genTerm emits the block's exit branches.
func (cg *codegen) genTerm(hb *hblock) error {
	switch hb.term.Kind {
	case tir.TermRet:
		u := cg.newUnit(isa.BRO, 0)
		u.isBranch = true
		u.brTarget = nil
		u.brExit = 0
	case tir.TermJump:
		u := cg.newUnit(isa.BRO, 0)
		u.isBranch = true
		u.brTarget = cg.g.owner[hb.term.Then]
		u.brExit = 0
	case tir.TermBranch:
		ut := cg.newUnit(isa.BRO, 0)
		ut.isBranch = true
		ut.brTarget = cg.g.owner[hb.term.Then]
		ut.brExit = 1
		ut.pred = isa.PredOnTrue
		if err := cg.connect(hb.termCond, ut, isa.OpPred); err != nil {
			return err
		}
		ue := cg.newUnit(isa.BRO, 0)
		ue.isBranch = true
		ue.brTarget = cg.g.owner[hb.term.Else]
		ue.brExit = 0
		ue.pred = isa.PredOnFalse
		if err := cg.connect(hb.termCond, ue, isa.OpPred); err != nil {
			return err
		}
	}
	return nil
}

// place assigns instruction indices.
func (cg *codegen) place() error {
	order := cg.topoOrder()
	switch cg.placement {
	case PlaceNaive:
		for i, u := range order {
			u.index = i
		}
	case PlaceGreedy:
		used := [isa.MaxBlockInsts]bool{}
		maxChunk := 0
		for _, u := range order {
			best, bestCost := -1, math.Inf(1)
			for idx := 0; idx < isa.MaxBlockInsts; idx++ {
				if used[idx] {
					continue
				}
				et := isa.ETOf(idx)
				row, col := isa.ETRowCol(et)
				grow, gcol := row+1, col+1 // grid coordinates
				cost := 0.0
				for _, p := range u.prods {
					if p.index < 0 {
						continue
					}
					pe := isa.ETOf(p.index)
					pr, pc := isa.ETRowCol(pe)
					cost += float64(abs(pr+1-grow) + abs(pc+1-gcol))
				}
				if u.op.IsMem() {
					cost += 0.8 * float64(gcol) // pull memory ops toward the DT column
				}
				if u.isBranch {
					cost += 0.3 * float64(grow+gcol) // branches travel to the GT
				}
				if c := idx / isa.BodyChunkInsts; c > maxChunk {
					cost += 2.5 * float64(c-maxChunk) // opening new chunks costs fetch footprint
				}
				cost += 0.01 * float64(isa.SlotOf(idx))
				if cost < bestCost {
					bestCost, best = cost, idx
				}
			}
			if best < 0 {
				return cg.errf("no free slot for instruction (block too large)")
			}
			u.index = best
			used[best] = true
			if c := best / isa.BodyChunkInsts; c > maxChunk {
				maxChunk = c
			}
		}
	}
	return nil
}

// topoOrder sorts units so producers precede consumers (Kahn's algorithm,
// ties broken by creation order for determinism).
func (cg *codegen) topoOrder() []*unit {
	indeg := map[*unit]int{}
	for _, u := range cg.units {
		indeg[u] += 0
		for _, s := range u.outs {
			if s.u != nil {
				indeg[s.u]++
			}
		}
	}
	ready := []*unit{}
	for _, u := range cg.units {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].seq < ready[j].seq })
	var order []*unit
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var woke []*unit
		for _, s := range u.outs {
			if s.u == nil {
				continue
			}
			indeg[s.u]--
			if indeg[s.u] == 0 {
				woke = append(woke, s.u)
			}
		}
		sort.Slice(woke, func(i, j int) bool { return woke[i].seq < woke[j].seq })
		ready = append(ready, woke...)
	}
	if len(order) != len(cg.units) {
		// A cycle would be a compiler bug; fall back to creation order.
		order = append([]*unit(nil), cg.units...)
		sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	}
	return order
}

// patchBranches fills branch offsets once block addresses are known.
func (cg *codegen) patchBranches(blk *isa.Block, hb *hblock, addrOf map[*hblock]uint64) error {
	for _, fix := range cg.fixes[hb] {
		var target uint64
		if fix.target != nil {
			target = addrOf[fix.target]
		}
		off := (int64(target) - int64(blk.Addr)) / isa.ChunkBytes
		if off < -(1<<19) || off >= 1<<19 {
			return cg.errf("branch offset %d out of range", off)
		}
		blk.Insts[fix.instIdx].Offset = int32(off)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
