package tcc

import (
	"fmt"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

func TestDebugDiamondRun(t *testing.T) {
	f, a, r, addr := absDiamond(t)
	_ = r
	prog, meta, err := Compile(f, Options{Mode: Compiled})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("meta: %+v\n", meta)
	m := mem.New()
	prog.Image(m)
	core, err := proc.NewCore(proc.Config{Program: prog, Mem: proc.NewFixedLatencyMem(m, 20), MaxCycles: 100000, TraceCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	core.SetRegister(0, meta.RegOf[a], ^uint64(6)) // -7
	core.SetRegister(0, meta.RegOf[addr], 0x8000)
	res, err := core.Run()
	fmt.Printf("res=%+v err=%v r=%d\n", res, err, int64(core.Register(0, meta.RegOf[r])))
}
