package tcc

import (
	"testing"

	"trips/internal/isa"
	"trips/internal/tir"
)

// compileOne compiles a single-function TIR program and returns its blocks.
func compileOne(t *testing.T, f *tir.Func, opt Options) []*isa.Block {
	t.Helper()
	prog, _, err := Compile(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	var out []*isa.Block
	for _, a := range prog.Addrs() {
		b, _ := prog.Block(a)
		out = append(out, b)
	}
	return out
}

func TestPlacementRespectsChunkRows(t *testing.T) {
	// A tiny block under naive placement must stay in chunk 0 (row 0 of
	// the ET array) — small blocks occupy few chunks.
	f := tir.NewFunc("tiny")
	a := f.NewReg()
	b := f.NewBB("b")
	x := b.OpI(f, tir.AddI, a, 1)
	y := b.OpI(f, tir.AddI, x, 2)
	_ = y
	b.Ret()
	f.Keep(y)
	blocks := compileOne(t, f, Options{Mode: Compiled})
	if got := blocks[0].NumBodyChunks(); got != 1 {
		t.Errorf("tiny block occupies %d chunks, want 1", got)
	}
}

func TestGreedyPlacementClustersDependents(t *testing.T) {
	// A pure dependence chain: greedy placement should produce mostly
	// same-ET or 1-hop placements, giving far less total producer-consumer
	// distance than naive placement does for long chains.
	mk := func() *tir.Func {
		f := tir.NewFunc("chain")
		a := f.NewReg()
		bb := f.NewBB("b")
		cur := a
		for i := 0; i < 30; i++ {
			cur = bb.OpI(f, tir.AddI, cur, 1)
		}
		bb.Ret()
		f.Keep(cur)
		return f
	}
	dist := func(placement Placement) int {
		blocks := compileOne(t, mk(), Options{Mode: Hand, Placement: placement})
		blk := blocks[0]
		total := 0
		for i := range blk.Insts {
			for _, tg := range blk.Insts[i].Targets() {
				if tg.IsWrite() {
					continue
				}
				pr, pc := isa.ETRowCol(isa.ETOf(i))
				cr, cc := isa.ETRowCol(isa.ETOf(tg.Index))
				d := abs(pr-cr) + abs(pc-cc)
				total += d
			}
		}
		return total
	}
	naive := dist(PlaceNaive)
	greedy := dist(PlaceGreedy)
	if greedy > naive {
		t.Errorf("greedy total producer-consumer distance %d exceeds naive %d", greedy, naive)
	}
	if greedy != 0 {
		// A pure chain can be placed entirely on one ET (8 slots) plus
		// spills to neighbors; expect mostly-local placement.
		t.Logf("greedy chain distance = %d (naive %d)", greedy, naive)
	}
}

func TestCompileDeterministic(t *testing.T) {
	mk := func() *tir.Func {
		f := tir.NewFunc("det")
		a := f.NewReg()
		b := f.NewReg()
		entry := f.NewBB("entry")
		thenB := f.NewBB("then")
		elseB := f.NewBB("else")
		join := f.NewBB("join")
		c := entry.Op(f, tir.SetLT, a, b)
		entry.Branch(c, thenB, elseB)
		x := f.NewReg()
		thenB.Emit(tir.Inst{Op: tir.AddI, Dst: x, A: a, Imm: 3})
		thenB.Store(b, 0, x, 8)
		thenB.Jump(join)
		elseB.Emit(tir.Inst{Op: tir.MulI, Dst: x, A: b, Imm: 5})
		elseB.Jump(join)
		join.Ret()
		f.Keep(x)
		return f
	}
	enc := func() []byte {
		blocks := compileOne(t, mk(), Options{Mode: Hand})
		var all []byte
		for _, b := range blocks {
			data, err := isa.EncodeBlock(b)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, data...)
		}
		return all
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("compilation is not deterministic")
	}
}

func TestEveryBlockValidatesAndEncodes(t *testing.T) {
	// Compile a branchy program in both modes; every produced block must
	// pass the ISA validator and encode (Compile already does this via
	// proc.NewProgram; this test asserts the per-block properties we rely
	// on: one unpredicated-or-covered exit set, LSIDs unique, etc.).
	f := tir.NewFunc("branchy")
	a := f.NewReg()
	base := f.NewReg()
	entry := f.NewBB("entry")
	loop := f.NewBB("loop")
	thenB := f.NewBB("then")
	elseB := f.NewBB("else")
	join := f.NewBB("join")
	done := f.NewBB("done")
	i := f.NewReg()
	entry.Emit(tir.Inst{Op: tir.ConstI, Dst: i, Imm: 0})
	entry.Jump(loop)
	v := loop.Load(f, base, 0, 8, false)
	c := loop.Op(f, tir.SetLT, v, a)
	loop.Branch(c, thenB, elseB)
	x := f.NewReg()
	thenB.Emit(tir.Inst{Op: tir.AddI, Dst: x, A: v, Imm: 1})
	thenB.Store(base, 8, x, 8)
	thenB.Jump(join)
	elseB.Emit(tir.Inst{Op: tir.Mov, Dst: x, A: v})
	elseB.Jump(join)
	join.Emit(tir.Inst{Op: tir.AddI, Dst: i, A: i, Imm: 1})
	cc := join.OpI(f, tir.SetLTI, i, 4)
	join.Branch(cc, loop, done)
	done.Ret()
	f.Keep(x)
	for _, mode := range []Mode{Compiled, Hand} {
		blocks := compileOne(t, f, Options{Mode: mode})
		for _, b := range blocks {
			if err := b.Validate(); err != nil {
				t.Errorf("mode %v: %v", mode, err)
			}
			branches := 0
			for idx := range b.Insts {
				if b.Insts[idx].Op.IsBranch() {
					branches++
				}
			}
			if branches == 0 {
				t.Errorf("mode %v block %q: no exit branch", mode, b.Name)
			}
		}
		if mode == Hand && len(blocks) >= len(f.Blocks) {
			t.Errorf("hand mode produced %d blocks from %d TIR blocks; expected if-conversion to merge", len(blocks), len(f.Blocks))
		}
	}
}

func TestFanoutTreeRespectsCapacity(t *testing.T) {
	// After compilation, no instruction may have more than two targets and
	// no I/L/C-format instruction more than one — the encoder would reject
	// them, but assert the invariant directly.
	f := tir.NewFunc("wide")
	x := f.NewReg()
	bb := f.NewBB("b")
	acc := bb.OpI(f, tir.AddI, x, 0)
	for k := 0; k < 20; k++ {
		acc = bb.Op(f, tir.Add, acc, x)
	}
	bb.Ret()
	f.Keep(acc)
	for _, mode := range []Mode{Compiled, Hand} {
		blocks := compileOne(t, f, Options{Mode: mode})
		for _, b := range blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				n := len(in.Targets())
				max := 2
				switch in.Op.Format() {
				case isa.FmtI, isa.FmtL, isa.FmtC:
					max = 1
				case isa.FmtS, isa.FmtB:
					max = 0
				}
				if in.Op == isa.NOP {
					continue
				}
				if n > max {
					t.Errorf("mode %v: %s has %d targets, format allows %d", mode, in.String(), n, max)
				}
			}
		}
	}
}
