// Package tcc compiles TIR programs into TRIPS blocks, standing in for the
// paper's Scale-based TRIPS compiler (Section 5.4, reference [19]). It
// supports two modes matching the paper's two configurations:
//
//   - Compiled (TCC): each TIR basic block becomes one TRIPS block with
//     naive (program-order) instruction placement — small blocks, which is
//     exactly why the paper's compiled numbers trail hand-optimized code;
//   - Hand: if-conversion merges branch diamonds into predicated
//     hyperblocks (Section 6's hyperblock heritage) and a greedy placer
//     minimizes operand-network hop counts (Section 7: "better scheduling
//     to reduce hop-counts").
//
// Workload generators provide additional hand-style restructuring (loop
// unrolling) at the TIR level.
package tcc

import (
	"fmt"
	"sort"

	"trips/internal/isa"
	"trips/internal/proc"
	"trips/internal/tir"
)

// Mode selects the compilation style.
type Mode int

const (
	// Compiled mimics the paper's TCC configuration.
	Compiled Mode = iota
	// Hand mimics the paper's hand-optimized configuration.
	Hand
)

// Placement selects the instruction placer.
type Placement int

const (
	// PlaceDefault picks naive for Compiled and greedy for Hand.
	PlaceDefault Placement = iota
	// PlaceNaive assigns instructions in program order.
	PlaceNaive
	// PlaceGreedy minimizes producer-consumer OPN distance.
	PlaceGreedy
)

// Options parameterizes a compilation.
type Options struct {
	Mode      Mode
	Placement Placement
	// BaseAddr is where the first block is laid out (128-byte aligned,
	// non-zero because address 0 is the halt convention).
	BaseAddr uint64
}

// Meta describes the compiled program's register binding and statistics.
type Meta struct {
	// RegOf maps cross-block TIR virtual registers to architectural
	// registers; TIR registers that never cross a block boundary have no
	// entry (they live entirely on the operand network).
	RegOf map[tir.Reg]int
	// Blocks, Insts count the static output.
	Blocks int
	Insts  int
	// FanoutMovs counts inserted operand-replication instructions.
	FanoutMovs int
	// AvgBlockSize is Insts/Blocks.
	AvgBlockSize float64
}

// Compile translates f into a TRIPS program.
func Compile(f *tir.Func, opt Options) (*proc.Program, *Meta, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	if opt.BaseAddr == 0 {
		opt.BaseAddr = 0x10000
	}
	if opt.BaseAddr%isa.ChunkBytes != 0 {
		return nil, nil, fmt.Errorf("tcc: base address %#x not 128-byte aligned", opt.BaseAddr)
	}
	placement := opt.Placement
	if placement == PlaceDefault {
		if opt.Mode == Hand {
			placement = PlaceGreedy
		} else {
			placement = PlaceNaive
		}
	}

	g := fromCFG(f)
	if opt.Mode == Hand {
		g.ifConvert()
	}
	hbs := g.hbs
	liveIn, liveOut := liveness(g)

	// Allocate architectural registers for every vreg that crosses a block
	// boundary (including program inputs, live into the entry block).
	cross := map[tir.Reg]bool{}
	for _, hb := range hbs {
		for v := range liveIn[hb] {
			cross[v] = true
		}
		for v := range liveOut[hb] {
			cross[v] = true
		}
	}
	var crossList []tir.Reg
	for v := range cross {
		crossList = append(crossList, v)
	}
	sort.Slice(crossList, func(i, j int) bool { return crossList[i] < crossList[j] })
	if len(crossList) > isa.NumArchRegs {
		return nil, nil, fmt.Errorf("tcc: %s needs %d architectural registers, machine has %d", f.Name, len(crossList), isa.NumArchRegs)
	}
	regOf := make(map[tir.Reg]int, len(crossList))
	for i, v := range crossList {
		regOf[v] = i
	}

	meta := &Meta{RegOf: regOf}
	cg := &codegen{
		regOf:     regOf,
		placement: placement,
		meta:      meta,
		g:         g,
	}
	var blocks []*isa.Block
	for _, hb := range hbs {
		blk, err := cg.genBlock(f.Name, hb, liveIn[hb], liveOut[hb])
		if err != nil {
			return nil, nil, err
		}
		blocks = append(blocks, blk)
	}

	// Lay out blocks and patch branch offsets.
	addrOf := make(map[*hblock]uint64, len(hbs))
	addr := opt.BaseAddr
	for i, hb := range hbs {
		blocks[i].Addr = addr
		addrOf[hb] = addr
		addr += uint64(1+blocks[i].NumBodyChunks()) * isa.ChunkBytes
	}
	for i, hb := range hbs {
		if err := cg.patchBranches(blocks[i], hb, addrOf); err != nil {
			return nil, nil, err
		}
	}

	meta.Blocks = len(blocks)
	for _, b := range blocks {
		for i := range b.Insts {
			if b.Insts[i].Op != isa.NOP {
				meta.Insts++
			}
		}
	}
	if meta.Blocks > 0 {
		meta.AvgBlockSize = float64(meta.Insts) / float64(meta.Blocks)
	}
	prog, err := proc.NewProgram(addrOf[hbs[0]], blocks)
	if err != nil {
		return nil, nil, err
	}
	return prog, meta, nil
}

// liveness computes per-hyperblock live-in/live-out virtual register sets
// with the standard backward dataflow.
func liveness(g *cfg) (liveIn, liveOut map[*hblock]map[tir.Reg]bool) {
	hbs := g.hbs
	liveIn = make(map[*hblock]map[tir.Reg]bool, len(hbs))
	liveOut = make(map[*hblock]map[tir.Reg]bool, len(hbs))
	use := make(map[*hblock]map[tir.Reg]bool, len(hbs))
	def := make(map[*hblock]map[tir.Reg]bool, len(hbs))
	for _, hb := range hbs {
		u, d := map[tir.Reg]bool{}, map[tir.Reg]bool{}
		addUse := func(v tir.Reg) {
			if !d[v] {
				u[v] = true
			}
		}
		for _, pi := range hb.pinsts {
			for _, v := range pi.uses() {
				addUse(v)
			}
			if dv, ok := pi.def(); ok {
				// Predicated (non-phi) defs exist only for arm-renamed
				// fresh registers introduced by if-conversion; those are
				// never upward-exposed or live across blocks, so every def
				// kills. Phi defs fully define their register by
				// construction (complementary mov pair).
				d[dv] = true
			}
		}
		if hb.term.Kind == tir.TermBranch {
			addUse(hb.termCond)
		}

		use[hb], def[hb] = u, d
		liveIn[hb] = map[tir.Reg]bool{}
		liveOut[hb] = map[tir.Reg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(hbs) - 1; i >= 0; i-- {
			hb := hbs[i]
			out := map[tir.Reg]bool{}
			for _, s := range g.succs(hb) {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			if hb.term.Kind == tir.TermRet {
				// Program results stay live past the exit.
				for _, v := range g.f.Keeps {
					out[v] = true
				}
			}
			in := map[tir.Reg]bool{}
			for v := range use[hb] {
				in[v] = true
			}
			for v := range out {
				if !def[hb][v] {
					in[v] = true
				}
			}
			if len(out) != len(liveOut[hb]) || len(in) != len(liveIn[hb]) {
				changed = true
			}
			liveOut[hb] = out
			liveIn[hb] = in
		}
	}
	return liveIn, liveOut
}
