package tasm

import (
	"strings"
	"testing"

	"trips/internal/mem"
	"trips/internal/proc"
)

const figure5aSrc = `
; Paper Figure 5a, with a halting callee.
entry figure5a

block figure5a @0x10000
    read  R[0] r4 -> N[1,L] N[2,L]
    N[0]  movi #0 -> N[1,R]
    N[1]  teq -> N[2,P] N[3,P]
    N[2]  muli_f #4 -> N[32,L]
    N[3]  null_t -> N[34,L] N[34,R]
    N[32] lw #8 L[0] -> N[33,L]
    N[33] mov -> N[34,L] N[34,R]    // fan the loaded value
    N[34] sw #0 L[1]
    N[35] callo exit=0 @func1
end

block func1 @0x20000
    N[0] bro exit=0 @halt
end
`

func TestAssembleFigure5aAndRun(t *testing.T) {
	prog, err := Assemble(figure5aSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 0x10000 {
		t.Fatalf("entry = %#x", prog.Entry)
	}
	m := mem.New()
	m.Write(4*4+8, 4, 0x7777)
	if err := prog.Image(m); err != nil {
		t.Fatal(err)
	}
	core, err := proc.NewCore(proc.Config{Program: prog, Mem: proc.NewFixedLatencyMem(m, 20), MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	core.SetRegister(0, 4, 4)
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	core.FlushCaches()
	if got := m.Read(0x7777, 4, false); got != 0x7777 {
		t.Errorf("assembled program stored %#x", got)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, err := Assemble(figure5aSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	prog2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if Disassemble(prog2) != text {
		t.Error("disassembly is not a fixed point")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"inst outside block":  "N[0] movi #0 -> N[1,L]",
		"unknown mnemonic":    "block b @0x1000\n N[0] frob\nend",
		"bad target":          "block b @0x1000\n N[0] movi #0 -> X[1]\nend",
		"undefined label":     "block b @0x1000\n N[0] bro exit=0 @nowhere\nend",
		"bad address":         "block b @zork\n",
		"duplicate block":     "block b @0x1000\nend\nblock b @0x2000\nend",
		"too many targets":    "block b @0x1000\n N[0] add -> N[1,L] N[2,L] N[3,L]\nend",
		"label on non-branch": "block b @0x1000\n N[0] movi @b\nend",
		"bad entry":           "entry zzz\nblock b @0x1000\n N[0] bro exit=0 @halt\nend",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; full-line comment
block b @0x1000   ; trailing comment

    N[0] movi #42 -> W[0]   // write it back
    write W[0] r8
    N[1] bro exit=0 @halt
end
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	if !strings.Contains(text, "movi #42") {
		t.Errorf("disassembly lost the instruction:\n%s", text)
	}
}
