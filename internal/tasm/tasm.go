// Package tasm implements the TRIPS assembly language (TASL), a textual
// form of TRIPS blocks mirroring the paper's examples (Figure 5a). A
// program is a sequence of blocks:
//
//	block figure5a @0x10000
//	    read  R[0] r4 -> N[1,L] N[2,L]
//	    write W[1] r13
//	    N[0]  movi #0 -> N[1,R]
//	    N[1]  teq -> N[2,P] N[3,P]
//	    N[2]  muli_f #4 -> N[32,L]
//	    N[3]  null_t -> N[34,L] N[34,R]
//	    N[32] lw #8 L[0] -> N[33,L]
//	    N[33] mov -> N[34,L] N[34,R]
//	    N[34] sw #0 L[1]
//	    N[35] callo exit=0 @func1
//	end
//
// Mnemonics take the `_t`/`_f` suffix for predication; loads and stores
// name their LSID as `L[n]`; branches name an exit number and either a
// `@label` (resolved across the program; `@halt` is address 0) or a raw
// `offset=n`. Targets are `N[i,L]`, `N[i,R]`, `N[i,P]` or `W[j]`.
// Comments run from `;` or `//` to end of line.
package tasm

import (
	"fmt"
	"strconv"
	"strings"

	"trips/internal/isa"
	"trips/internal/proc"
)

// Assemble parses TASL source into a runnable program. The first block is
// the entry unless a line `entry <name>` names another.
func Assemble(src string) (*proc.Program, error) {
	p := &parser{labels: map[string]uint64{}}
	if err := p.run(src); err != nil {
		return nil, err
	}
	if len(p.blocks) == 0 {
		return nil, fmt.Errorf("tasm: no blocks")
	}
	entry := p.blocks[0].Addr
	if p.entry != "" {
		a, ok := p.labels[p.entry]
		if !ok {
			return nil, fmt.Errorf("tasm: entry %q is not a block", p.entry)
		}
		entry = a
	}
	return proc.NewProgram(entry, p.blocks)
}

type parser struct {
	blocks []*isa.Block
	labels map[string]uint64
	entry  string
	cur    *isa.Block
	// branch fixups: block, inst index, label
	fixups []fixup
	line   int
}

type fixup struct {
	b     *isa.Block
	idx   int
	label string
	line  int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("tasm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := raw
		if j := strings.Index(line, ";"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "entry":
			if len(fields) != 2 {
				return p.errf("entry wants a block name")
			}
			p.entry = fields[1]
		case "block":
			err = p.beginBlock(fields[1:])
		case "end":
			p.cur = nil
		case "read":
			err = p.parseRead(fields[1:])
		case "write":
			err = p.parseWrite(fields[1:])
		default:
			err = p.parseInst(fields)
		}
		if err != nil {
			return err
		}
	}
	// Resolve branch labels.
	for _, f := range p.fixups {
		target, ok := p.labels[f.label]
		if !ok {
			if f.label == "halt" {
				target = 0
			} else {
				return fmt.Errorf("tasm: line %d: undefined label %q", f.line, f.label)
			}
		}
		off := (int64(target) - int64(f.b.Addr)) / isa.ChunkBytes
		f.b.Insts[f.idx].Offset = int32(off)
	}
	return nil
}

func (p *parser) beginBlock(args []string) error {
	if len(args) != 2 || !strings.HasPrefix(args[1], "@") {
		return p.errf("usage: block <name> @<addr>")
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(args[1], "@"), 0, 64)
	if err != nil {
		return p.errf("bad address %q: %v", args[1], err)
	}
	b := &isa.Block{Name: args[0], Addr: addr}
	if _, dup := p.labels[args[0]]; dup {
		return p.errf("duplicate block %q", args[0])
	}
	p.labels[args[0]] = addr
	p.blocks = append(p.blocks, b)
	p.cur = b
	return nil
}

// parseTargets parses the optional "-> tgt tgt" tail.
func (p *parser) parseTargets(fields []string) ([]isa.Target, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	if fields[0] != "->" {
		return nil, p.errf("expected '->', got %q", fields[0])
	}
	var out []isa.Target
	for _, tok := range fields[1:] {
		t, err := parseTarget(tok)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, p.errf("'->' with no targets")
	}
	return out, nil
}

func parseTarget(tok string) (isa.Target, error) {
	switch {
	case strings.HasPrefix(tok, "W[") && strings.HasSuffix(tok, "]"):
		j, err := strconv.Atoi(tok[2 : len(tok)-1])
		if err != nil {
			return isa.NoTarget, fmt.Errorf("bad write target %q", tok)
		}
		return isa.ToWrite(j), nil
	case strings.HasPrefix(tok, "N[") && strings.HasSuffix(tok, "]"):
		body := tok[2 : len(tok)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 2 {
			return isa.NoTarget, fmt.Errorf("bad target %q (want N[i,L|R|P])", tok)
		}
		i, err := strconv.Atoi(parts[0])
		if err != nil {
			return isa.NoTarget, fmt.Errorf("bad target index in %q", tok)
		}
		switch strings.ToUpper(parts[1]) {
		case "L":
			return isa.ToLeft(i), nil
		case "R":
			return isa.ToRight(i), nil
		case "P":
			return isa.ToPred(i), nil
		}
		return isa.NoTarget, fmt.Errorf("bad operand kind in %q", tok)
	}
	return isa.NoTarget, fmt.Errorf("bad target %q", tok)
}

func (p *parser) parseRead(fields []string) error {
	if p.cur == nil {
		return p.errf("read outside a block")
	}
	// read R[j] r<gr> -> targets
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "R[") {
		return p.errf("usage: read R[j] r<gr> -> targets")
	}
	j, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(fields[0], "R["), "]"))
	if err != nil || j < 0 || j >= isa.MaxBlockReads {
		return p.errf("bad read index %q", fields[0])
	}
	gr, err := strconv.Atoi(strings.TrimPrefix(fields[1], "r"))
	if err != nil {
		return p.errf("bad register %q", fields[1])
	}
	ts, err := p.parseTargets(fields[2:])
	if err != nil {
		return err
	}
	if len(ts) > 2 {
		return p.errf("reads take at most two targets")
	}
	rd := isa.ReadInst{Valid: true, GR: gr}
	if len(ts) > 0 {
		rd.RT0 = ts[0]
	}
	if len(ts) > 1 {
		rd.RT1 = ts[1]
	}
	p.cur.Reads[j] = rd
	return nil
}

func (p *parser) parseWrite(fields []string) error {
	if p.cur == nil {
		return p.errf("write outside a block")
	}
	if len(fields) != 2 || !strings.HasPrefix(fields[0], "W[") {
		return p.errf("usage: write W[j] r<gr>")
	}
	j, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(fields[0], "W["), "]"))
	if err != nil || j < 0 || j >= isa.MaxBlockWrites {
		return p.errf("bad write index %q", fields[0])
	}
	gr, err := strconv.Atoi(strings.TrimPrefix(fields[1], "r"))
	if err != nil {
		return p.errf("bad register %q", fields[1])
	}
	p.cur.Writes[j] = isa.WriteInst{Valid: true, GR: gr}
	return nil
}

func (p *parser) parseInst(fields []string) error {
	if p.cur == nil {
		return p.errf("instruction outside a block")
	}
	// N[i] mnemonic[_t|_f] [#imm] [L[id]] [exit=n] [@label|offset=n] [-> targets]
	if !strings.HasPrefix(fields[0], "N[") {
		return p.errf("unrecognized line %q", strings.Join(fields, " "))
	}
	idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(fields[0], "N["), "]"))
	if err != nil || idx < 0 || idx >= isa.MaxBlockInsts {
		return p.errf("bad instruction index %q", fields[0])
	}
	if len(fields) < 2 {
		return p.errf("missing mnemonic")
	}
	mn := fields[1]
	in := isa.Inst{}
	switch {
	case strings.HasSuffix(mn, "_t"):
		in.Pred = isa.PredOnTrue
		mn = strings.TrimSuffix(mn, "_t")
	case strings.HasSuffix(mn, "_f"):
		in.Pred = isa.PredOnFalse
		mn = strings.TrimSuffix(mn, "_f")
	}
	op, ok := isa.OpcodeByName(mn)
	if !ok {
		return p.errf("unknown mnemonic %q", mn)
	}
	in.Op = op

	rest := fields[2:]
	for len(rest) > 0 && rest[0] != "->" {
		tok := rest[0]
		switch {
		case strings.HasPrefix(tok, "#"):
			v, err := strconv.ParseInt(strings.TrimPrefix(tok, "#"), 0, 64)
			if err != nil {
				return p.errf("bad immediate %q", tok)
			}
			in.Imm = v
		case strings.HasPrefix(tok, "L[") && strings.HasSuffix(tok, "]"):
			v, err := strconv.Atoi(tok[2 : len(tok)-1])
			if err != nil {
				return p.errf("bad LSID %q", tok)
			}
			in.LSID = v
		case strings.HasPrefix(tok, "exit="):
			v, err := strconv.Atoi(strings.TrimPrefix(tok, "exit="))
			if err != nil {
				return p.errf("bad exit %q", tok)
			}
			in.Exit = v
		case strings.HasPrefix(tok, "offset="):
			v, err := strconv.ParseInt(strings.TrimPrefix(tok, "offset="), 0, 32)
			if err != nil {
				return p.errf("bad offset %q", tok)
			}
			in.Offset = int32(v)
		case strings.HasPrefix(tok, "@"):
			if !op.IsBranch() {
				return p.errf("@label on non-branch %q", mn)
			}
			p.fixups = append(p.fixups, fixup{b: p.cur, idx: idx, label: strings.TrimPrefix(tok, "@"), line: p.line})
		default:
			return p.errf("unexpected token %q", tok)
		}
		rest = rest[1:]
	}
	ts, err := p.parseTargets(rest)
	if err != nil {
		return err
	}
	if len(ts) > 2 {
		return p.errf("at most two targets")
	}
	if len(ts) > 0 {
		in.T0 = ts[0]
	}
	if len(ts) > 1 {
		in.T1 = ts[1]
	}
	for len(p.cur.Insts) <= idx {
		p.cur.Insts = append(p.cur.Insts, isa.Inst{Op: isa.NOP})
	}
	p.cur.Insts[idx] = in
	return nil
}

// Disassemble renders a program back to TASL (round-trip aid and debugger).
func Disassemble(p *proc.Program) string {
	var b strings.Builder
	for _, addr := range p.Addrs() {
		blk, _ := p.Block(addr)
		fmt.Fprintf(&b, "block %s @%#x\n", blockName(blk, addr), addr)
		for j, rd := range blk.Reads {
			if rd.Valid {
				fmt.Fprintf(&b, "    read R[%d] r%d%s\n", j, rd.GR, targetsStr(rd.RT0, rd.RT1))
			}
		}
		for j, w := range blk.Writes {
			if w.Valid {
				fmt.Fprintf(&b, "    write W[%d] r%d\n", j, w.GR)
			}
		}
		for i := range blk.Insts {
			in := &blk.Insts[i]
			if in.Op == isa.NOP {
				continue
			}
			fmt.Fprintf(&b, "    N[%d] %s%s", i, in.Op, in.Pred)
			switch in.Op.Format() {
			case isa.FmtI, isa.FmtC:
				fmt.Fprintf(&b, " #%d", in.Imm)
			case isa.FmtL, isa.FmtS:
				fmt.Fprintf(&b, " #%d L[%d]", in.Imm, in.LSID)
			case isa.FmtB:
				fmt.Fprintf(&b, " exit=%d offset=%d", in.Exit, in.Offset)
			}
			b.WriteString(targetsStr(in.T0, in.T1))
			b.WriteString("\n")
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func blockName(blk *isa.Block, addr uint64) string {
	if blk.Name != "" {
		return strings.ReplaceAll(blk.Name, " ", "_")
	}
	return fmt.Sprintf("b%x", addr)
}

func targetsStr(ts ...isa.Target) string {
	var out []string
	for _, t := range ts {
		if t.Valid() {
			out = append(out, t.String())
		}
	}
	if len(out) == 0 {
		return ""
	}
	return " -> " + strings.Join(out, " ")
}
