// Package alpha implements the baseline for the paper's performance
// comparison (Section 5.4): an Alpha 21264-class, four-wide, out-of-order,
// clustered uniprocessor with two L1 memory ports and a tournament-style
// branch predictor, simulated at cycle level over the same TIR programs the
// TRIPS compiler consumes. As in the paper, the secondary memory system is
// normalized: both machines see the same L1-miss latency to a perfect L2.
//
// The model mirrors sim-alpha's essentials: an 80-entry reorder buffer,
// four-instruction fetch/rename/commit, register renaming, address-known
// load disambiguation with store-to-load forwarding, a 64KB 2-way 3-cycle
// L1 data cache, and an 11-cycle-class branch misprediction redirect.
// TIR virtual registers map directly onto the machine's registers — a
// generosity toward the baseline (no spill code), noted in DESIGN.md.
package alpha

import (
	"fmt"

	"trips/internal/cache"
	"trips/internal/mem"
	"trips/internal/tir"
)

// Config parameterizes the baseline core.
type Config struct {
	FetchWidth  int // instructions fetched/renamed per cycle (4)
	IssueWidth  int // instructions issued per cycle (4)
	CommitWidth int // instructions committed per cycle (4)
	ROBSize     int // reorder buffer entries (80)
	MemPorts    int // L1 ports per cycle (2; TRIPS has 4 DTs — Section 5.4)
	L1Bytes     int
	L1Ways      int
	L1Hit       int // L1 hit latency
	MissLatency int // L1 miss to the perfect L2
	Redirect    int // front-end refill after a branch mispredict
	MaxCycles   int64
}

// DefaultConfig returns the 21264-class configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROBSize:     80,
		MemPorts:    2,
		L1Bytes:     64 << 10,
		L1Ways:      2,
		L1Hit:       3,
		MissLatency: 20,
		Redirect:    11,
		MaxCycles:   500_000_000,
	}
}

// aOp is a flattened machine operation: TIR ops plus explicit control.
type aOp uint8

const (
	aTIR aOp = iota // execute inst.Op
	aJmp
	aBr // conditional: taken -> Target
	aRet
)

// AInst is one instruction of the flattened program.
type AInst struct {
	kind   aOp
	inst   tir.Inst
	target int // aJmp/aBr destination (instruction index)
}

// Flatten linearizes a TIR function into straight-line code with explicit
// jumps, laying blocks out in creation order (fallthrough-friendly).
func Flatten(f *tir.Func) ([]AInst, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var code []AInst
	blockStart := map[*tir.BB]int{}
	// First pass: measure.
	pos := 0
	for _, b := range f.Blocks {
		blockStart[b] = pos
		pos += len(b.Insts)
		switch b.Term.Kind {
		case tir.TermRet:
			pos++
		case tir.TermJump:
			pos++
		case tir.TermBranch:
			pos += 2 // conditional + jump (the latter elided if fallthrough)
		}
	}
	// Fallthrough elision changes positions, so simply always emit both
	// (an extra jump per branch block is charged to the baseline; the
	// TRIPS side pays an exit branch per block too).
	for _, b := range f.Blocks {
		if got := blockStart[b]; got != len(code) {
			return nil, fmt.Errorf("alpha: layout drift in %s", b.Label)
		}
		for _, in := range b.Insts {
			code = append(code, AInst{kind: aTIR, inst: in})
		}
		switch b.Term.Kind {
		case tir.TermRet:
			code = append(code, AInst{kind: aRet})
		case tir.TermJump:
			code = append(code, AInst{kind: aJmp, target: blockStart[b.Term.Then]})
		case tir.TermBranch:
			code = append(code, AInst{kind: aBr, inst: tir.Inst{A: b.Term.Cond}, target: blockStart[b.Term.Then]})
			code = append(code, AInst{kind: aJmp, target: blockStart[b.Term.Else]})
		}
	}
	return code, nil
}

// latency returns the execution latency of a TIR op, aligned with the
// TRIPS functional units so neither machine gets a free lunch.
func latency(op tir.Op) int64 {
	switch op {
	case tir.Mul, tir.MulI:
		return 3
	case tir.Div, tir.Mod:
		return 24
	case tir.FAdd, tir.FSub, tir.FMul:
		return 4
	case tir.FDiv:
		return 12
	case tir.FSetEQ, tir.FSetLT, tir.FSetLE:
		return 2
	case tir.IToF, tir.FToI:
		return 3
	}
	return 1
}

// robState tracks an entry's progress.
type robState uint8

const (
	rsWaiting robState = iota
	rsExecuting
	rsDone
)

type robEntry struct {
	valid bool
	seq   uint64
	pc    int
	ai    AInst
	state robState
	// Source dependencies: -1 means the architectural value was captured.
	srcA, srcB int
	valA, valB uint64
	doneAt     int64
	val        uint64
	// Memory.
	addr      uint64
	addrKnown bool
	isLoad    bool
	isStore   bool
	// Branch bookkeeping.
	predTaken bool
	isBranch  bool
	predIdx   uint32 // predictor index captured at fetch
	ghrCkpt   uint32 // global history before this branch's update
}

// Result summarizes a run.
type Result struct {
	Cycles      int64
	Committed   uint64
	Mispredicts uint64
	IPC         float64
	L1Hits      uint64
	L1Misses    uint64
}

// Machine is one baseline core instance.
type Machine struct {
	cfg  Config
	code []AInst
	mem  *mem.Memory
	l1   *cache.Bank

	regs   []uint64
	regmap map[tir.Reg]int // register -> producing ROB slot (-1 none)

	rob        []robEntry
	head, tail int
	count      int
	nextSeq    uint64

	pc         int
	fetchStall int64 // front end blocked until this cycle (redirect)
	halted     bool  // aRet fetched; stop fetching until commit/flush

	// Tournament direction predictor (21264-style): a gshare global
	// component, a per-PC bimodal local component, and a chooser.
	ghr     uint32
	table   [4096]uint8 // gshare
	local   [4096]uint8
	chooser [4096]uint8

	cycle int64
	res   Result

	// In-flight cache fills: line -> ready cycle.
	fills map[uint64]int64
}

// New builds a machine for a flattened program.
func New(cfg Config, code []AInst, numRegs int, m *mem.Memory) *Machine {
	if m == nil {
		m = mem.New()
	}
	mc := &Machine{
		cfg:    cfg,
		code:   code,
		mem:    m,
		l1:     cache.NewBank(cfg.L1Bytes, cfg.L1Ways, 64),
		regs:   make([]uint64, numRegs),
		regmap: make(map[tir.Reg]int),
		rob:    make([]robEntry, cfg.ROBSize),
		fills:  make(map[uint64]int64),
	}
	return mc
}

// SetReg initializes a register before the run.
func (m *Machine) SetReg(r tir.Reg, v uint64) { m.regs[r] = v }

// Reg reads a register after the run.
func (m *Machine) Reg(r tir.Reg) uint64 { return m.regs[r] }

// FlushCache writes dirty L1 lines back to memory.
func (m *Machine) FlushCache() {
	for _, v := range m.l1.DirtyLines() {
		m.mem.WriteBytes(v.Addr, v.Data)
	}
}

func (m *Machine) robIdx(i int) *robEntry { return &m.rob[i%m.cfg.ROBSize] }

// Run executes to completion.
func (m *Machine) Run() (Result, error) {
	retired := false
	for !retired {
		if m.cycle >= m.cfg.MaxCycles {
			return m.res, fmt.Errorf("alpha: cycle limit exceeded at pc %d", m.pc)
		}
		retired = m.step()
		m.cycle++
	}
	m.res.Cycles = m.cycle
	if m.cycle > 0 {
		m.res.IPC = float64(m.res.Committed) / float64(m.cycle)
	}
	m.res.L1Hits = m.l1.Hits
	m.res.L1Misses = m.l1.Misses
	return m.res, nil
}

// step advances one cycle; returns true when the program has retired.
func (m *Machine) step() bool {
	if done := m.commit(); done {
		return true
	}
	m.complete()
	m.issue()
	m.fetch()
	return false
}

// commit retires up to CommitWidth done entries in order. Stores write the
// L1 at commit. Returns true when aRet retires.
func (m *Machine) commit() bool {
	for n := 0; n < m.cfg.CommitWidth && m.count > 0; n++ {
		e := &m.rob[m.head]
		if e.state != rsDone {
			return false
		}
		if e.ai.kind == aRet {
			m.res.Committed++
			return true
		}
		if e.isStore {
			m.storeCommit(e)
		}
		if e.ai.kind == aTIR && e.ai.inst.Op.WritesDst() {
			m.regs[e.ai.inst.Dst] = e.val
			if m.regmap[e.ai.inst.Dst] == m.head {
				delete(m.regmap, e.ai.inst.Dst)
			}
		}
		// Fold the retired value into consumers still holding this slot's
		// tag: the slot is about to be reused by a younger instruction.
		for j, n2 := (m.head+1)%m.cfg.ROBSize, 1; n2 < m.count; j, n2 = (j+1)%m.cfg.ROBSize, n2+1 {
			c := &m.rob[j]
			if !c.valid {
				continue
			}
			if c.srcA == m.head {
				c.srcA = -1
				c.valA = e.val
			}
			if c.srcB == m.head {
				c.srcB = -1
				c.valB = e.val
			}
		}
		m.res.Committed++
		e.valid = false
		m.head = (m.head + 1) % m.cfg.ROBSize
		m.count--
	}
	return false
}

func (m *Machine) storeCommit(e *robEntry) {
	w := e.ai.inst.Width
	data := make([]byte, w)
	for i := 0; i < w; i++ {
		data[i] = byte(e.valB >> (8 * i))
	}
	if !m.l1.Write(e.addr, data) {
		// Write-allocate instantly at commit; the timing cost was charged
		// when the load/store executed.
		line := m.l1.LineAddr(e.addr)
		if v := m.l1.Fill(line, m.mem.ReadBytes(line, 64)); v.Valid {
			m.mem.WriteBytes(v.Addr, v.Data)
		}
		m.l1.Write(e.addr, data)
	}
}

// complete finishes executing entries and broadcasts results.
func (m *Machine) complete() {
	for i := 0; i < m.cfg.ROBSize; i++ {
		e := &m.rob[i]
		if !e.valid || e.state != rsExecuting || e.doneAt > m.cycle {
			continue
		}
		e.state = rsDone
		if e.isBranch {
			taken := e.valA != 0
			m.train(e.pc, e.predIdx, taken)
			if taken != e.predTaken {
				m.mispredict(i, taken)
			}
		}
	}
}

// mispredict squashes everything younger than ROB index i and redirects.
func (m *Machine) mispredict(i int, taken bool) {
	m.res.Mispredicts++
	e := &m.rob[i]
	// Squash younger entries.
	j := (i + 1) % m.cfg.ROBSize
	for m.tail != j {
		m.tail = (m.tail - 1 + m.cfg.ROBSize) % m.cfg.ROBSize
		victim := &m.rob[m.tail]
		if victim.ai.kind == aTIR && victim.ai.inst.Op.WritesDst() {
			if m.regmap[victim.ai.inst.Dst] == m.tail {
				delete(m.regmap, victim.ai.inst.Dst)
			}
		}
		victim.valid = false
		m.count--
	}
	// Rebuild the register map conservatively: point at the youngest
	// surviving producer of each register.
	m.regmap = map[tir.Reg]int{}
	for k, n := m.head, 0; n < m.count; k, n = (k+1)%m.cfg.ROBSize, n+1 {
		v := &m.rob[k]
		if v.valid && v.ai.kind == aTIR && v.ai.inst.Op.WritesDst() {
			m.regmap[v.ai.inst.Dst] = k
		}
	}
	if taken {
		m.pc = e.ai.target
	} else {
		m.pc = e.pc + 1
	}
	// Repair the speculative global history with the actual outcome.
	m.ghr = e.ghrCkpt<<1 | b2u32(taken)
	m.halted = false
	m.fetchStall = m.cycle + int64(m.cfg.Redirect)
}

// predict returns the tournament prediction and the gshare index; the
// global history updates speculatively at fetch and is repaired on
// mispredicts.
func (m *Machine) predict(pc int) (bool, uint32) {
	gidx := (uint32(pc)*2654435761 ^ m.ghr) & 4095
	lidx := uint32(pc) * 2654435761 >> 20 & 4095
	g := m.table[gidx] >= 2
	l := m.local[lidx] >= 2
	taken := l
	if m.chooser[lidx] >= 2 {
		taken = g
	}
	m.ghr = m.ghr<<1 | b2u32(taken)
	return taken, gidx
}

func (m *Machine) train(pc int, gidx uint32, taken bool) {
	lidx := uint32(pc) * 2654435761 >> 20 & 4095
	g := m.table[gidx] >= 2
	l := m.local[lidx] >= 2
	if g != l {
		if g == taken {
			if m.chooser[lidx] < 3 {
				m.chooser[lidx]++
			}
		} else if m.chooser[lidx] > 0 {
			m.chooser[lidx]--
		}
	}
	bump := func(c *uint8) {
		if taken {
			if *c < 3 {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
	bump(&m.table[gidx])
	bump(&m.local[lidx])
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// issue starts execution of ready entries, oldest first, within issue and
// memory-port limits.
func (m *Machine) issue() {
	issued, memIssued := 0, 0
	for k, n := m.head, 0; n < m.count && issued < m.cfg.IssueWidth; k, n = (k+1)%m.cfg.ROBSize, n+1 {
		e := &m.rob[k]
		if !e.valid || e.state != rsWaiting {
			continue
		}
		if !m.srcReady(e.srcA) || !m.srcReady(e.srcB) {
			continue
		}
		valA, valB := m.srcVal(e.srcA, e.valA), m.srcVal(e.srcB, e.valB)
		if e.isLoad || e.isStore {
			if memIssued >= m.cfg.MemPorts {
				continue
			}
			e.addr = valA + uint64(e.ai.inst.Imm)
			e.addrKnown = true
			e.valA, e.valB = valA, valB
			if e.isStore {
				// Stores "execute" once address and data are known; memory
				// is written at commit.
				e.state = rsExecuting
				e.doneAt = m.cycle + 1
				issued++
				memIssued++
				continue
			}
			// Loads: wait until all older store addresses are known, then
			// forward or access the L1.
			stall, fwd, fv := m.disambiguate(k, e)
			if stall {
				e.addrKnown = false // retry next cycle
				continue
			}
			memIssued++
			issued++
			e.state = rsExecuting
			if fwd {
				e.val = m.extend(fv, e.ai.inst)
				e.doneAt = m.cycle + 1
				continue
			}
			e.val, e.doneAt = m.loadAccess(e)
			continue
		}
		e.valA, e.valB = valA, valB
		e.state = rsExecuting
		switch e.ai.kind {
		case aTIR:
			e.val = tir.EvalOp(e.ai.inst.Op, valA, valB, e.ai.inst.Imm)
			e.doneAt = m.cycle + latency(e.ai.inst.Op)
		case aBr:
			e.doneAt = m.cycle + 1
		case aJmp, aRet:
			e.doneAt = m.cycle + 1
		}
		issued++
	}
}

func (m *Machine) srcReady(src int) bool {
	if src < 0 {
		return true
	}
	return m.rob[src].state == rsDone
}

func (m *Machine) srcVal(src int, captured uint64) uint64 {
	if src < 0 {
		return captured
	}
	return m.rob[src].val
}

// disambiguate checks older stores: returns (stall, forwarded, value).
func (m *Machine) disambiguate(k int, e *robEntry) (bool, bool, uint64) {
	var best *robEntry
	for j, n := m.head, 0; n < m.count; j, n = (j+1)%m.cfg.ROBSize, n+1 {
		if j == k {
			break
		}
		s := &m.rob[j]
		if !s.valid || !s.isStore {
			continue
		}
		if !s.addrKnown && s.state == rsWaiting {
			return true, false, 0 // unknown older store address
		}
		if !s.addrKnown {
			return true, false, 0
		}
		w := uint64(s.ai.inst.Width)
		lw := uint64(e.ai.inst.Width)
		if s.addr < e.addr+lw && e.addr < s.addr+w {
			if s.addr <= e.addr && e.addr+lw <= s.addr+w {
				best = s
			} else {
				return true, false, 0 // partial overlap: wait for drain
			}
		}
	}
	if best != nil {
		shift := (e.addr - best.addr) * 8
		v := best.valB >> shift
		if e.ai.inst.Width < 8 {
			v &= 1<<(uint(e.ai.inst.Width)*8) - 1
		}
		return false, true, v
	}
	return false, false, 0
}

// loadAccess reads the L1, modeling hit latency and miss fills.
func (m *Machine) loadAccess(e *robEntry) (uint64, int64) {
	w := e.ai.inst.Width
	if raw, ok := m.l1.Read(e.addr, w); ok {
		var v uint64
		for i := w - 1; i >= 0; i-- {
			v = v<<8 | uint64(raw[i])
		}
		done := m.cycle + int64(m.cfg.L1Hit)
		// A line installed functionally but still timing-wise in flight
		// delays dependent loads until the fill completes.
		line := m.l1.LineAddr(e.addr)
		if ready, pending := m.fills[line]; pending {
			if ready > done {
				done = ready
			} else {
				delete(m.fills, line)
			}
		}
		return m.extend(v, e.ai.inst), done
	}
	line := m.l1.LineAddr(e.addr)
	ready, pending := m.fills[line]
	if !pending {
		ready = m.cycle + int64(m.cfg.MissLatency)
		m.fills[line] = ready
	}
	// Model the fill: data becomes architecturally visible now (functional
	// correctness), timing charged until the fill completes.
	if v := m.l1.Fill(line, m.mem.ReadBytes(line, 64)); v.Valid {
		m.mem.WriteBytes(v.Addr, v.Data)
	}
	raw, _ := m.l1.Read(e.addr, w)
	var v uint64
	for i := w - 1; i >= 0; i-- {
		v = v<<8 | uint64(raw[i])
	}
	if ready <= m.cycle {
		ready = m.cycle + int64(m.cfg.L1Hit)
		delete(m.fills, line)
	}
	return m.extend(v, e.ai.inst), ready
}

func (m *Machine) extend(v uint64, in tir.Inst) uint64 {
	if in.Width == 8 {
		return v
	}
	v &= 1<<(uint(in.Width)*8) - 1
	if in.Signed {
		shift := uint(64 - 8*in.Width)
		v = uint64(int64(v<<shift) >> shift)
	}
	return v
}

// fetch renames up to FetchWidth instructions along the predicted path.
func (m *Machine) fetch() {
	if m.halted || m.cycle < m.fetchStall {
		return
	}
	for n := 0; n < m.cfg.FetchWidth; n++ {
		if m.count >= m.cfg.ROBSize || m.pc >= len(m.code) {
			return
		}
		ai := m.code[m.pc]
		idx := m.tail
		e := &m.rob[idx]
		*e = robEntry{valid: true, seq: m.nextSeq, pc: m.pc, ai: ai, state: rsWaiting, srcA: -1, srcB: -1}
		m.nextSeq++

		capture := func(r tir.Reg) (int, uint64) {
			if p, ok := m.regmap[r]; ok {
				if m.rob[p].state == rsDone {
					return -1, m.rob[p].val
				}
				return p, 0
			}
			return -1, m.regs[r]
		}
		switch ai.kind {
		case aTIR:
			in := ai.inst
			if in.Op.UsesA() {
				e.srcA, e.valA = capture(in.A)
			}
			if in.Op.UsesB() {
				e.srcB, e.valB = capture(in.B)
			}
			e.isLoad = in.Op == tir.Load
			e.isStore = in.Op == tir.Store
			if in.Op.WritesDst() {
				m.regmap[in.Dst] = idx
			}
			m.pc++
		case aJmp:
			e.state = rsDone
			m.pc = ai.target
		case aBr:
			e.srcA, e.valA = capture(ai.inst.A)
			e.isBranch = true
			e.ghrCkpt = m.ghr
			e.predTaken, e.predIdx = m.predict(m.pc)
			if e.predTaken {
				m.pc = ai.target
			} else {
				m.pc++
			}
		case aRet:
			e.state = rsDone
			m.halted = true
		}
		m.tail = (m.tail + 1) % m.cfg.ROBSize
		m.count++
		if ai.kind == aRet {
			return
		}
		if ai.kind == aBr && e.predTaken {
			return // taken-branch fetch break
		}
	}
}
